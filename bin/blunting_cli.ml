(* Command-line interface to the reproduction:

     blunting solve -k 2            exact adversary value for ABD^k
     blunting solve --atomic         exact adversary value, atomic registers
     blunting figure1 --coin 0 --trace
     blunting bound -n 3 -r 1 -k 4
     blunting mc --registers abd -k 2 --trials 1000
     blunting lin-sweep --object abd --trials 50
*)

open Cmdliner
open Util

(* ---- solve ---------------------------------------------------------- *)

let solve_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Preamble iterations for ABD\\$(b,^k)." ~docv:"K")
  in
  let atomic_arg =
    Arg.(value & flag & info [ "atomic" ] ~doc:"Solve the atomic-register game instead.")
  in
  let servers_arg =
    Arg.(value & opt int 3 & info [ "s"; "servers" ] ~doc:"Number of ABD replicas (>= 3).")
  in
  let abd_c_arg =
    Arg.(value & flag & info [ "abd-c" ] ~doc:"Model register C as ABD too (validates the atomic-C reduction).")
  in
  let run k atomic servers abd_c =
    if atomic then begin
      let v = Model.Weakener_atomic.bad_probability () in
      Fmt.pr "weakener with atomic registers:@.";
      Fmt.pr "  adversary-optimal Prob[p2 loops forever] = %.6f@." v;
      Fmt.pr "  guaranteed termination probability      = %.6f@." (1.0 -. v)
    end
    else begin
      let v =
        Model.Weakener_abd.bad_probability ~atomic_c:(not abd_c) ~servers ~k ()
      in
      Fmt.pr "weakener with ABD^%d registers (%d replicas%s):@." k servers
        (if abd_c then ", C as ABD too" else "");
      Fmt.pr "  adversary-optimal Prob[p2 loops forever] = %.6f@." v;
      Fmt.pr "  guaranteed termination probability      = %.6f@." (1.0 -. v);
      Fmt.pr "  Theorem 4.2 upper bound on the former   = %.6f@."
        (Core.Bound.weakener_instance ~k);
      Fmt.pr "  explored states                          = %d@."
        (Model.Weakener_abd.explored_states ())
    end
  in
  let doc = "Solve the exact adversary-vs-coin game of the weakener program." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(const run $ k_arg $ atomic_arg $ servers_arg $ abd_c_arg)

(* ---- figure1 -------------------------------------------------------- *)

let figure1_cmd =
  let coin_arg =
    Arg.(value & opt int 0 & info [ "coin" ] ~doc:"Force the program coin (0 or 1)." ~docv:"COIN")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full execution trace.")
  in
  let run coin trace =
    let t = Adversary.Figure1.run ~coin in
    if trace then Fmt.pr "%a@.@." Sim.Trace.pp (Sim.Runtime.trace t);
    let o = Sim.Runtime.outcome t in
    List.iter
      (fun tag ->
        match History.Outcome.find1 o tag with
        | Some v -> Fmt.pr "%s = %a@." tag Value.pp v
        | None -> Fmt.pr "%s = ?@." tag)
      [ Programs.Weakener.tag_u1; Programs.Weakener.tag_u2; Programs.Weakener.tag_c ];
    Fmt.pr "p2 %s@."
      (if Programs.Weakener.bad o then "LOOPS FOREVER (adversary wins)"
       else "terminates")
  in
  let doc =
    "Replay the Figure 1 strong adversary against the simulated ABD weakener."
  in
  Cmd.v (Cmd.info "figure1" ~doc) Term.(const run $ coin_arg $ trace_arg)

(* ---- bound ---------------------------------------------------------- *)

let bound_cmd =
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.") in
  let r_arg = Arg.(value & opt int 1 & info [ "r" ] ~doc:"Program random steps.") in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Preamble iterations.") in
  let pa_arg =
    Arg.(value & opt float 0.5 & info [ "prob-atomic" ] ~doc:"Prob[O_a].")
  in
  let pl_arg = Arg.(value & opt float 1.0 & info [ "prob-lin" ] ~doc:"Prob[O].") in
  let run n r k prob_atomic prob_lin =
    Fmt.pr "blunting fraction 1 - ((k-r)/k)^(n-1) = %.6f@."
      (Core.Bound.blunt_fraction ~n ~r ~k);
    Fmt.pr "Theorem 4.2: Prob[O^k] <= %.6f@."
      (Core.Bound.theorem_4_2 ~n ~r ~k ~prob_atomic ~prob_lin)
  in
  let doc = "Evaluate the Theorem 4.2 blunting bound." in
  Cmd.v (Cmd.info "bound" ~doc)
    Term.(const run $ n_arg $ r_arg $ k_arg $ pa_arg $ pl_arg)

(* ---- mc ------------------------------------------------------------- *)

let mc_cmd =
  let registers_arg =
    let impl = Arg.enum [ ("atomic", `Atomic); ("abd", `Abd); ("abd-k", `Abd_k) ] in
    Arg.(value & opt impl `Abd
         & info [ "registers" ] ~doc:"Register implementation." ~docv:"atomic|abd|abd-k")
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"k for abd-k.") in
  let trials_arg = Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Trials.") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed.") in
  let run registers k trials seed =
    let config =
      match registers with
      | `Atomic -> Programs.Weakener.atomic_config
      | `Abd -> Programs.Weakener.abd_config
      | `Abd_k -> fun () -> Programs.Weakener.abd_k_config ~k
    in
    let r =
      Adversary.Monte_carlo.estimate ~trials ~seed
        ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad config
    in
    Fmt.pr "weakener, fair random scheduling: bad = %a@." Adversary.Monte_carlo.pp r
  in
  let doc = "Monte-Carlo estimate of the weakener's bad outcome under fair scheduling." in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(const run $ registers_arg $ k_arg $ trials_arg $ seed_arg)

(* ---- lin-sweep ------------------------------------------------------ *)

let lin_sweep_cmd =
  let obj_arg =
    let impl =
      Arg.enum
        [
          ("abd", `Abd);
          ("abd-k", `Abd_k);
          ("va", `Va);
          ("il", `Il);
          ("snapshot", `Snapshot);
        ]
    in
    Arg.(value & opt impl `Abd & info [ "object" ] ~doc:"Which implementation." ~docv:"OBJ")
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"k for abd-k.") in
  let trials_arg = Arg.(value & opt int 50 & info [ "trials" ] ~doc:"Random schedules.") in
  let run obj k trials =
    let open Sim.Proc.Syntax in
    let reg_spec = History.Spec.register ~init:(Value.int 0) in
    let snap_spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0) in
    let rw o ~self =
      let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
      let* _ = call "w1" "write" (Value.int (self + 10)) in
      let* _ = call "r1" "read" Value.unit in
      Sim.Proc.return ()
    in
    let mk () =
      match obj with
      | `Abd ->
          let o = Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Abd_k ->
          let o = Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Va ->
          let o = Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Il ->
          let o = Objects.Israeli_li.make ~name:"R" ~n:3 ~writer:0 ~init:(Value.int 0) in
          let prog ~self =
            let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
            if self = 0 then
              let* _ = call "w" "write" (Value.int 5) in
              Sim.Proc.return ()
            else
              let* _ = call "r" "read" Value.unit in
              Sim.Proc.return ()
          in
          (o, prog, reg_spec)
      | `Snapshot ->
          let o = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
          let prog ~self =
            let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
            let* _ = call "u" "update" (Value.pair (Value.int self) (Value.int self)) in
            let* _ = call "s" "scan" Value.unit in
            Sim.Proc.return ()
          in
          (o, prog, snap_spec)
    in
    let ok = ref 0 in
    for seed = 1 to trials do
      let o, program, spec = mk () in
      let config =
        {
          Sim.Runtime.n = 3;
          objects = [ o ];
          program;
          enable_crashes = false;
          max_crashes = 0;
        }
      in
      let rng = Rng.of_int seed in
      let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.split rng)) in
      (match Sim.Runtime.run t ~max_steps:1_000_000 (fun _ evs -> Rng.pick rng evs) with
      | Sim.Runtime.Completed ->
          if Lin.Check.check spec (Sim.Runtime.history t) then incr ok
      | _ -> ())
    done;
    Fmt.pr "linearizable histories: %d / %d@." !ok trials
  in
  let doc = "Check linearizability of an implementation over random schedules." in
  Cmd.v (Cmd.info "lin-sweep" ~doc) Term.(const run $ obj_arg $ k_arg $ trials_arg)

(* ---- ghw ------------------------------------------------------------ *)

let ghw_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Preamble iterations for Snapshot^k.")
  in
  let run k =
    Fmt.pr "snapshot weakener, adversary-optimal Prob[bad]:@.";
    Fmt.pr "  atomic snapshot:  %.6f@."
      (Model.Ghw_snapshot_game.atomic_bad_probability ());
    Fmt.pr "  Afek snapshot^%d:  %.6f@." k
      (Model.Ghw_snapshot_game.afek_bad_probability ~k)
  in
  let doc = "Solve the exact snapshot-weakener game (atomic vs Afek^k)." in
  Cmd.v (Cmd.info "ghw" ~doc) Term.(const run $ k_arg)

(* ---- main ----------------------------------------------------------- *)

let () =
  let doc =
    "Blunting an adversary against randomized concurrent programs (PODC 2022 \
     reproduction)."
  in
  let info = Cmd.info "blunting" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ solve_cmd; figure1_cmd; bound_cmd; mc_cmd; lin_sweep_cmd; ghw_cmd ]))
