(* Command-line interface to the reproduction:

     blunting solve -k 2            exact adversary value for ABD^k
     blunting solve --atomic         exact adversary value, atomic registers
     blunting figure1 --coin 0 --trace
     blunting bound -n 3 -r 1 -k 4
     blunting mc --registers abd -k 2 --trials 1000
     blunting lin-sweep --object abd --trials 50
     blunting trace --registers abd -o weakener.trace.json
     blunting trace analyze ring_dump.json --chrome lanes.json
     blunting solve -k 1 --jobs 4 --trace-out ring_dump.json
     blunting metrics --workload mc --json
     blunting bench-diff BASELINE.json CURRENT.json
     blunting fuzz --seed 42 --budget 10000 --jobs 4
     blunting fuzz --replay test/corpus/fuzz-lin-s7-i0.json
     blunting profile solve -k 1 --jobs 4 --collapsed solve.folded
     blunting solve -k 1 --memprof --memprof-rate 1e-3

   Every subcommand accepts --verbosity LEVEL (quiet|app|error|warning|
   info|debug) to surface the structured logs of the blunting.sim,
   blunting.mdp and blunting.adversary sources.
*)

open Cmdliner
open Util

(* ---- common --------------------------------------------------------- *)

(* Evaluated before each command body: install the Logs reporter. *)
let verbosity_term =
  let arg =
    Arg.(
      value
      & opt string "warning"
      & info [ "verbosity" ] ~docv:"LEVEL"
          ~doc:
            "Log verbosity: $(b,quiet), $(b,app), $(b,error), $(b,warning), \
             $(b,info) or $(b,debug).")
  in
  let setup v =
    match Obs.Log.set_verbosity v with
    | Ok () -> ()
    | Error e ->
        Fmt.epr "%s@." e;
        exit 2
  in
  Term.(const setup $ arg)

(* Shared --jobs flag: BLUNTING_JOBS sets the default, 1 otherwise. The
   solved values and Monte-Carlo tallies are bit-identical at every job
   count; only wall time (and the solver's work counters, which count
   per-domain) change. *)
let jobs_term =
  Arg.(
    value
    & opt int (Option.value (Par.Pool.env_jobs ()) ~default:1)
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run on $(docv) domains (default: $(b,BLUNTING_JOBS) or 1). \
           Results are bit-identical at every job count.")

(* Shared --memo-budget flag: a byte count with an optional K/M/G
   suffix. BLUNTING_MEMO_BUDGET sets the process default (read by the
   solver at startup); the flag overrides it, 0 disables. Budgeted
   solves spill resolved memo entries to temporary segment files once
   RAM passes the budget — values and state counts are bit-identical,
   only peak memory and wall time change. *)
let memo_budget_term =
  let bytes_conv =
    Arg.conv
      ( (fun s ->
          match Mdp.Solver.parse_memo_budget s with
          | Ok n -> Ok n
          | Error e -> Error (`Msg e)),
        fun ppf n -> Fmt.pf ppf "%d" n )
  in
  Arg.(
    value
    & opt (some bytes_conv) None
    & info [ "memo-budget" ] ~docv:"BYTES"
        ~doc:
          "Cap the solver memo's RAM at $(docv) (accepts K/M/G suffixes, \
           e.g. $(b,64M)); resolved states past the budget spill to \
           temporary segment files and are probed back through a block \
           cache. Values are bit-identical to the in-RAM solve. Default: \
           $(b,BLUNTING_MEMO_BUDGET), else unbounded; $(b,0) disables.")

let pp_store_stats_opt ppf = function
  | Some st -> Fmt.pf ppf "  store: %a@." Store.Memo.pp_stats st
  | None -> ()

let registers_enum =
  Arg.enum [ ("atomic", `Atomic); ("abd", `Abd); ("abd-k", `Abd_k) ]

let weakener_config registers k =
  match registers with
  | `Atomic -> Programs.Weakener.atomic_config ()
  | `Abd -> Programs.Weakener.abd_config ()
  | `Abd_k -> Programs.Weakener.abd_k_config ~k

(* ---- solve ---------------------------------------------------------- *)

let solve_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Preamble iterations for ABD\\$(b,^k)." ~docv:"K")
  in
  let atomic_arg =
    Arg.(value & flag & info [ "atomic" ] ~doc:"Solve the atomic-register game instead.")
  in
  let servers_arg =
    Arg.(value & opt int 3 & info [ "s"; "servers" ] ~doc:"Number of ABD replicas (>= 3).")
  in
  let abd_c_arg =
    Arg.(value & flag & info [ "abd-c" ] ~doc:"Model register C as ABD too (validates the atomic-C reduction).")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Emit live solver progress to stderr (memoized states, hit rate, \
             states/sec) every 50k states explored.")
  in
  let prune_arg =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Enable Theorem 4.2 interval branch-and-bound pruning on the ABD \
             solve: subtrees that provably cannot change a max or expectation \
             node's value are cut. The reported probability is bit-identical; \
             only the explored state count shrinks.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:
            "Record per-domain ring-buffer events (solver memo probes, pool \
             task/idle slices, GC) during the solve and write the dump to \
             $(docv); analyze it with $(b,blunting trace analyze).")
  in
  let memprof_arg =
    Arg.(
      value & flag
      & info [ "memprof" ]
          ~doc:
            "Sample allocations during the solve with $(b,Gc.Memprof) \
             (OCaml >= 5.3; prints a warning and solves unprofiled \
             otherwise) and print the allocation-site summary afterwards.")
  in
  let memprof_rate_arg =
    Arg.(
      value & opt float 1e-4
      & info [ "memprof-rate" ] ~docv:"R"
          ~doc:"Per-word sampling probability for $(b,--memprof).")
  in
  let run () k atomic servers abd_c prune progress trace_out memprof
      memprof_rate jobs memo_budget =
    if progress then
      Model.Weakener_abd.set_progress
        (Some (fun p -> Fmt.epr "  [mdp] %a@." Mdp.Solver.pp_progress p));
    (match trace_out with
    | Some _ -> (
        Obs.Ring.set_enabled true;
        match Obs.Ring.start_runtime_events () with
        | Ok () -> ()
        | Error e -> Fmt.epr "trace: runtime events unavailable (%s)@." e)
    | None -> ());
    (* must start before the solver's pool spawns its worker domains:
       Gc.Memprof only covers domains created after [start] *)
    (if memprof then
       match Obs.Memprof.start ~sampling_rate:memprof_rate () with
       | Ok () -> ()
       | Error e -> Fmt.epr "memprof: %s (solving unprofiled)@." e);
    if atomic then begin
      let v = Model.Weakener_atomic.bad_probability ?memo_budget () in
      Fmt.pr "weakener with atomic registers:@.";
      Fmt.pr "  adversary-optimal Prob[p2 loops forever] = %.6f@." v;
      Fmt.pr "  guaranteed termination probability      = %.6f@." (1.0 -. v);
      pp_store_stats_opt Fmt.stdout (Model.Weakener_atomic.store_stats ())
    end
    else begin
      let v =
        Model.Weakener_abd.bad_probability ?memo_budget ~atomic_c:(not abd_c)
          ~servers ~jobs ~prune ~k ()
      in
      let st = Model.Weakener_abd.solver_stats () in
      Fmt.pr "weakener with ABD^%d registers (%d replicas%s):@." k servers
        (if abd_c then ", C as ABD too" else "");
      Fmt.pr "  adversary-optimal Prob[p2 loops forever] = %.6f@." v;
      Fmt.pr "  guaranteed termination probability      = %.6f@." (1.0 -. v);
      Fmt.pr "  Theorem 4.2 upper bound on the former   = %.6f@."
        (Core.Bound.weakener_instance ~k);
      Fmt.pr "  solver: %a@." Mdp.Solver.pp_stats st;
      if prune then
        Fmt.pr "  pruned subtrees: %d@." (Model.Weakener_abd.pruned_subtrees ());
      pp_store_stats_opt Fmt.stdout (Model.Weakener_abd.store_stats ());
      match Model.Weakener_abd.last_par_stats () with
      | Some ps -> Fmt.pr "  %a@." Mdp.Solver.pp_par_stats ps
      | None -> ()
    end;
    (if memprof && Obs.Memprof.running () then begin
       Obs.Memprof.stop ();
       match Obs.Memprof.profile () with
       | Some p -> Fmt.pr "%a@." (Obs.Memprof.pp ~top:10) p
       | None -> ()
     end);
    match trace_out with
    | Some path ->
        Obs.Ring.set_enabled false;
        Obs.Ring.write_file path (Obs.Ring.dump ());
        Fmt.pr "  trace dump -> %s@." path
    | None -> ()
  in
  let doc = "Solve the exact adversary-vs-coin game of the weakener program." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(
      const run $ verbosity_term $ k_arg $ atomic_arg $ servers_arg $ abd_c_arg
      $ prune_arg $ progress_arg $ trace_out_arg $ memprof_arg
      $ memprof_rate_arg $ jobs_term $ memo_budget_term)

(* ---- figure1 -------------------------------------------------------- *)

let figure1_cmd =
  let coin_arg =
    Arg.(value & opt int 0 & info [ "coin" ] ~doc:"Force the program coin (0 or 1)." ~docv:"COIN")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full execution trace.")
  in
  let run () coin trace =
    let t = Adversary.Figure1.run ~coin in
    if trace then Fmt.pr "%a@.@." Sim.Trace.pp (Sim.Runtime.trace t);
    let o = Sim.Runtime.outcome t in
    List.iter
      (fun tag ->
        match History.Outcome.find1 o tag with
        | Some v -> Fmt.pr "%s = %a@." tag Value.pp v
        | None -> Fmt.pr "%s = ?@." tag)
      [ Programs.Weakener.tag_u1; Programs.Weakener.tag_u2; Programs.Weakener.tag_c ];
    Fmt.pr "p2 %s@."
      (if Programs.Weakener.bad o then "LOOPS FOREVER (adversary wins)"
       else "terminates")
  in
  let doc =
    "Replay the Figure 1 strong adversary against the simulated ABD weakener."
  in
  Cmd.v (Cmd.info "figure1" ~doc) Term.(const run $ verbosity_term $ coin_arg $ trace_arg)

(* ---- bound ---------------------------------------------------------- *)

let bound_cmd =
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.") in
  let r_arg = Arg.(value & opt int 1 & info [ "r" ] ~doc:"Program random steps.") in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Preamble iterations.") in
  let pa_arg =
    Arg.(value & opt float 0.5 & info [ "prob-atomic" ] ~doc:"Prob[O_a].")
  in
  let pl_arg = Arg.(value & opt float 1.0 & info [ "prob-lin" ] ~doc:"Prob[O].") in
  let run () n r k prob_atomic prob_lin =
    Fmt.pr "blunting fraction 1 - ((k-r)/k)^(n-1) = %.6f@."
      (Core.Bound.blunt_fraction ~n ~r ~k);
    Fmt.pr "Theorem 4.2: Prob[O^k] <= %.6f@."
      (Core.Bound.theorem_4_2 ~n ~r ~k ~prob_atomic ~prob_lin)
  in
  let doc = "Evaluate the Theorem 4.2 blunting bound." in
  Cmd.v (Cmd.info "bound" ~doc)
    Term.(const run $ verbosity_term $ n_arg $ r_arg $ k_arg $ pa_arg $ pl_arg)

(* ---- mc ------------------------------------------------------------- *)

let mc_cmd =
  let registers_arg =
    Arg.(value & opt registers_enum `Abd
         & info [ "registers" ] ~doc:"Register implementation." ~docv:"atomic|abd|abd-k")
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"k for abd-k.") in
  let trials_arg = Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Trials.") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed.") in
  let run () registers k trials seed jobs =
    let config () = weakener_config registers k in
    let r =
      Adversary.Monte_carlo.estimate ~jobs ~trials ~seed
        ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad config
    in
    Fmt.pr "weakener, fair random scheduling: bad = %a@." Adversary.Monte_carlo.pp r
  in
  let doc = "Monte-Carlo estimate of the weakener's bad outcome under fair scheduling." in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const run $ verbosity_term $ registers_arg $ k_arg $ trials_arg $ seed_arg
      $ jobs_term)

(* ---- lin-sweep ------------------------------------------------------ *)

let lin_sweep_cmd =
  let obj_arg =
    let impl =
      Arg.enum
        [
          ("abd", `Abd);
          ("abd-k", `Abd_k);
          ("va", `Va);
          ("il", `Il);
          ("snapshot", `Snapshot);
        ]
    in
    Arg.(value & opt impl `Abd & info [ "object" ] ~doc:"Which implementation." ~docv:"OBJ")
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"k for abd-k.") in
  let trials_arg = Arg.(value & opt int 50 & info [ "trials" ] ~doc:"Random schedules.") in
  let run () obj k trials =
    let open Sim.Proc.Syntax in
    let reg_spec = History.Spec.register ~init:(Value.int 0) in
    let snap_spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0) in
    let rw o ~self =
      let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
      let* _ = call "w1" "write" (Value.int (self + 10)) in
      let* _ = call "r1" "read" Value.unit in
      Sim.Proc.return ()
    in
    let mk () =
      match obj with
      | `Abd ->
          let o = Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Abd_k ->
          let o = Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Va ->
          let o = Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0) in
          (o, rw o, reg_spec)
      | `Il ->
          let o = Objects.Israeli_li.make ~name:"R" ~n:3 ~writer:0 ~init:(Value.int 0) in
          let prog ~self =
            let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
            if self = 0 then
              let* _ = call "w" "write" (Value.int 5) in
              Sim.Proc.return ()
            else
              let* _ = call "r" "read" Value.unit in
              Sim.Proc.return ()
          in
          (o, prog, reg_spec)
      | `Snapshot ->
          let o = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
          let prog ~self =
            let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
            let* _ = call "u" "update" (Value.pair (Value.int self) (Value.int self)) in
            let* _ = call "s" "scan" Value.unit in
            Sim.Proc.return ()
          in
          (o, prog, snap_spec)
    in
    let ok = ref 0 in
    for seed = 1 to trials do
      let o, program, spec = mk () in
      let config =
        {
          Sim.Runtime.n = 3;
          objects = [ o ];
          program;
          enable_crashes = false;
          max_crashes = 0;
        }
      in
      let rng = Rng.of_int seed in
      let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.split rng)) in
      (match Sim.Runtime.run t ~max_steps:1_000_000 (fun _ evs -> Rng.pick rng evs) with
      | Sim.Runtime.Completed ->
          if Lin.Check.check spec (Sim.Runtime.history t) then incr ok
      | _ -> ())
    done;
    Fmt.pr "linearizable histories: %d / %d@." !ok trials
  in
  let doc = "Check linearizability of an implementation over random schedules." in
  Cmd.v (Cmd.info "lin-sweep" ~doc)
    Term.(const run $ verbosity_term $ obj_arg $ k_arg $ trials_arg)

(* ---- ghw ------------------------------------------------------------ *)

let ghw_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Preamble iterations for Snapshot^k.")
  in
  let run () k jobs memo_budget =
    Fmt.pr "snapshot weakener, adversary-optimal Prob[bad]:@.";
    Fmt.pr "  atomic snapshot:  %.6f@."
      (Model.Ghw_snapshot_game.atomic_bad_probability ());
    Fmt.pr "  Afek snapshot^%d:  %.6f@." k
      (Model.Ghw_snapshot_game.afek_bad_probability ?memo_budget ~jobs ~k ());
    pp_store_stats_opt Fmt.stdout (Model.Ghw_snapshot_game.store_stats ())
  in
  let doc = "Solve the exact snapshot-weakener game (atomic vs Afek^k)." in
  Cmd.v (Cmd.info "ghw" ~doc)
    Term.(const run $ verbosity_term $ k_arg $ jobs_term $ memo_budget_term)

(* ---- trace ---------------------------------------------------------- *)

let trace_cmd =
  let registers_arg =
    Arg.(value & opt registers_enum `Abd
         & info [ "registers" ] ~doc:"Register implementation." ~docv:"atomic|abd|abd-k")
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"k for abd-k.") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scheduling seed.") in
  let sched_arg =
    let s = Arg.enum [ ("uniform", `Uniform); ("eager", `Eager) ] in
    Arg.(value & opt s `Uniform
         & info [ "scheduler" ] ~doc:"Event scheduler." ~docv:"uniform|eager")
  in
  let out_arg =
    Arg.(value & opt string "weakener.trace.json"
         & info [ "o"; "output" ] ~doc:"Output file." ~docv:"PATH")
  in
  let format_arg =
    let f = Arg.enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ] in
    Arg.(value & opt f `Chrome
         & info [ "format" ]
             ~doc:
               "Export format: $(b,chrome) (load in Perfetto / \
                chrome://tracing) or $(b,jsonl) (one JSON object per entry)."
             ~docv:"chrome|jsonl")
  in
  let run () registers k seed sched output format =
    let config = weakener_config registers k in
    let rng = Rng.of_int seed in
    let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.split rng)) in
    let scheduler =
      match sched with
      | `Uniform -> fun _st evs -> Rng.pick rng evs
      | `Eager -> Adversary.Schedulers.eager_delivery
    in
    let result = Sim.Runtime.run t ~max_steps:2_000_000 scheduler in
    let tr = Sim.Runtime.trace t in
    (try
       match format with
       | `Chrome -> Sim.Trace_export.write_chrome ~path:output tr
       | `Jsonl -> Sim.Trace_export.write_jsonl ~path:output tr
     with Sys_error e ->
       Fmt.epr "cannot write trace: %s@." e;
       exit 1);
    Fmt.pr "run %a: %d steps, %d messages@." Sim.Runtime.pp_run_result result
      (Sim.Trace.count_steps tr) (Sim.Trace.count_messages tr);
    Fmt.pr "%s trace written to %s@."
      (match format with `Chrome -> "Chrome/Perfetto" | `Jsonl -> "JSONL")
      output;
    match format with
    | `Chrome ->
        Fmt.pr "open it at https://ui.perfetto.dev or chrome://tracing@."
    | `Jsonl -> ()
  in
  (* `blunting trace analyze` — the offline side of the ring-buffer
     tracing: read a dump written by --trace-out (solve or bench) and
     render the per-domain utilization / hot-state / duplicated-work
     report, optionally with machine JSON and a Chrome/Perfetto export. *)
  let analyze_cmd =
    let trace_arg =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"TRACE"
            ~doc:"Ring dump written by $(b,--trace-out) (blunting-trace/1).")
    in
    let json_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"PATH"
            ~doc:"Also write the report as machine-readable JSON to $(docv).")
    in
    let chrome_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "chrome" ] ~docv:"PATH"
            ~doc:
              "Also export the dump as a Chrome/Perfetto trace with one lane \
               per domain to $(docv).")
    in
    let top_arg =
      Arg.(
        value & opt int 10
        & info [ "top" ] ~docv:"N" ~doc:"Hot states to list (default 10).")
    in
    let buckets_arg =
      Arg.(
        value & opt int 20
        & info [ "buckets" ] ~docv:"N"
            ~doc:"Utilization timeline resolution (default 20).")
    in
    let run () trace json chrome top buckets =
      if top < 1 || buckets < 1 then begin
        Fmt.epr "--top and --buckets expect positive integers@.";
        exit 2
      end;
      match Obs.Ring.load_file trace with
      | Error e ->
          Fmt.epr "%s: %s@." trace e;
          exit 1
      | Ok dump ->
          let report = Obs.Trace_analysis.analyze ~top ~buckets dump in
          Fmt.pr "%a@." Obs.Trace_analysis.pp report;
          (match json with
          | Some p ->
              Obs.Json.write_file p (Obs.Trace_analysis.to_json report);
              Fmt.pr "report -> %s@." p
          | None -> ());
          (match chrome with
          | Some p ->
              Obs.Chrome_trace.write_file p (Obs.Ring.chrome_events dump);
              Fmt.pr "chrome trace -> %s (open at https://ui.perfetto.dev)@." p
          | None -> ())
    in
    let doc =
      "Analyze a per-domain ring-buffer trace dump: memo hit rates, hot \
       states, cross-domain duplicated work, queue depths, adversary \
       decisions and a utilization timeline."
    in
    Cmd.v (Cmd.info "analyze" ~doc)
      Term.(
        const run $ verbosity_term $ trace_arg $ json_arg $ chrome_arg
        $ top_arg $ buckets_arg)
  in
  let doc =
    "Run the weakener once and export the execution as a structured trace \
     (Chrome/Perfetto or JSONL); $(b,trace analyze) reads ring dumps instead."
  in
  Cmd.group
    ~default:
      Term.(
        const run $ verbosity_term $ registers_arg $ k_arg $ seed_arg
        $ sched_arg $ out_arg $ format_arg)
    (Cmd.info "trace" ~doc) [ analyze_cmd ]

(* ---- metrics -------------------------------------------------------- *)

let metrics_cmd =
  let workload_arg =
    let w = Arg.enum [ ("mc", `Mc); ("solve", `Solve); ("figure1", `Figure1) ] in
    Arg.(value & opt w `Mc
         & info [ "workload" ]
             ~doc:"Workload to run before dumping the metrics registry."
             ~docv:"mc|solve|figure1")
  in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"k for the workload.") in
  let trials_arg = Arg.(value & opt int 200 & info [ "trials" ] ~doc:"MC trials.") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the snapshot as JSON instead of a table.")
  in
  let run () workload k trials json =
    (match workload with
    | `Mc ->
        ignore
          (Adversary.Monte_carlo.estimate ~trials ~seed:42
             ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
             Programs.Weakener.abd_config)
    | `Solve -> ignore (Model.Weakener_abd.bad_probability ~k ())
    | `Figure1 -> ignore (Adversary.Figure1.run ~coin:0));
    if json then print_endline (Obs.Json.to_string (Obs.Metrics.snapshot ()))
    else Fmt.pr "%a@." Obs.Metrics.pp ()
  in
  let doc =
    "Run a workload and dump the process-wide metrics registry (counters, \
     gauges, histograms)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run $ verbosity_term $ workload_arg $ k_arg $ trials_arg $ json_arg)

(* ---- bench-diff ----------------------------------------------------- *)

let bench_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline results document (BENCH_*.json).")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current results document to compare.")
  in
  let paper_tol_arg =
    Arg.(
      value
      & opt float Obs.Diff.default_config.paper_tol
      & info [ "paper-tol" ] ~docv:"F"
          ~doc:"Absolute tolerance for paper-vs-measured rows (hard failure).")
  in
  let value_rtol_arg =
    Arg.(
      value
      & opt float Obs.Diff.default_config.value_rtol
      & info [ "value-rtol" ] ~docv:"F"
          ~doc:"Relative tolerance for deterministic measured values (hard failure).")
  in
  let time_rtol_arg =
    Arg.(
      value
      & opt float Obs.Diff.default_config.time_rtol
      & info [ "time-rtol" ] ~docv:"F"
          ~doc:"Relative tolerance for timing/resource values (warning only).")
  in
  let no_spans_arg =
    Arg.(value & flag & info [ "no-spans" ] ~doc:"Skip span-duration comparison.")
  in
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"F"
          ~doc:
            "Require CURRENT's PAR section to show a sequential/parallel \
             solve-time ratio of at least $(docv) (hard failure below, or \
             when the PAR timings are missing).")
  in
  let max_alloc_ratio_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-alloc-ratio" ] ~docv:"F"
          ~doc:
            "Require every section's allocation (gc.minor_words, per \
             simulator step where the section counts steps) to stay within \
             $(docv) times the baseline's (hard failure past the ceiling, \
             or when no section pair carries GC data).")
  in
  let run () baseline current paper_tol value_rtol time_rtol no_spans min_speedup
      max_alloc_ratio =
    let config =
      {
        Obs.Diff.paper_tol;
        value_rtol;
        time_rtol;
        compare_spans = not no_spans;
        min_speedup;
        max_alloc_ratio;
      }
    in
    match Obs.Diff.run_files ~config ~baseline ~current Fmt.stdout with
    | Ok rc -> exit rc
    | Error e ->
        Fmt.epr "%s@." e;
        exit 2
  in
  let doc =
    "Diff two bench results documents: paper-vs-measured drift in CURRENT is \
     a hard failure, CURRENT-vs-BASELINE drift fails hard on deterministic \
     quantities and warns on timing/GC. Exits 1 on hard failures, 2 on \
     unreadable or schema-invalid input."
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(
      const run $ verbosity_term $ baseline_arg $ current_arg $ paper_tol_arg
      $ value_rtol_arg $ time_rtol_arg $ no_spans_arg $ min_speedup_arg
      $ max_alloc_ratio_arg)

(* ---- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Session seed. With an iteration budget the whole session — \
             cases, schedules, failures, corpus files — is a pure function \
             of the seed.")
  in
  let budget_arg =
    Arg.(
      value & opt string "10000"
      & info [ "budget" ] ~docv:"BUDGET"
          ~doc:
            "Fuzzing budget: an iteration count ($(b,10000)) or a duration \
             ($(b,300s), $(b,5m)). Durations trade determinism for \
             wall-clock control.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Write one replayable corpus file per shrunk failure to $(docv).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a single corpus file instead of fuzzing and check its \
             recorded expectation.")
  in
  let planted_arg =
    Arg.(
      value & flag
      & info [ "planted" ]
          ~doc:
            "Plant a known linearizability bug (ABD without read write-back) \
             in every case; used to exercise the shrinker and corpus paths.")
  in
  let dist_trials_arg =
    Arg.(
      value & opt int 400
      & info [ "dist-trials" ] ~docv:"N"
          ~doc:"Monte-Carlo trials per side for the distribution oracle.")
  in
  let run () seed budget corpus_dir replay planted dist_trials jobs =
    match replay with
    | Some path -> (
        match Fuzz.Engine.replay_file path with
        | Ok msg ->
            Fmt.pr "%s@." msg;
            exit 0
        | Error msg ->
            Fmt.epr "%s@." msg;
            exit 1)
    | None -> (
        match Fuzz.Engine.parse_budget budget with
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2
        | Ok budget ->
            let summary =
              Fuzz.Engine.run ~jobs ?corpus_dir ~planted ~dist_trials ~seed
                ~budget ()
            in
            Fmt.pr "%a" Fuzz.Engine.pp_summary summary;
            exit (if Fuzz.Engine.has_failures summary then 1 else 0))
  in
  let doc =
    "Fuzz the simulator against its four oracles: per-object \
     linearizability of every generated history, lockstep conformance with \
     the weakener game model, ABD-vs-ABD$(b,^k) outcome-distribution \
     compatibility (Theorem 4.1) and seq-vs-par identity. Failures are \
     shrunk to a minimal schedule prefix and written as replayable corpus \
     files. Exits 1 if any oracle failed."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ verbosity_term $ seed_arg $ budget_arg $ corpus_arg
      $ replay_arg $ planted_arg $ dist_trials_arg $ jobs_term)

(* ---- profile --------------------------------------------------------- *)

let profile_cmd =
  let workload_arg =
    let w =
      Arg.enum [ ("solve", `Solve); ("estimate", `Estimate); ("fuzz", `Fuzz) ]
    in
    Arg.(
      required
      & pos 0 (some w) None
      & info [] ~docv:"solve|estimate|fuzz"
          ~doc:
            "Workload to run under the profiler: the exact ABD$(b,^k) solve, \
             a Monte-Carlo estimate, or a fuzzing session.")
  in
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Preamble iterations for the solve workload." ~docv:"K")
  in
  let rate_arg =
    Arg.(
      value & opt float 1e-4
      & info [ "rate" ] ~docv:"R"
          ~doc:"Per-word sampling probability (default 1e-4).")
  in
  let stacks_arg =
    Arg.(
      value & opt int 32
      & info [ "stacks" ] ~docv:"N"
          ~doc:"Backtrace frames captured per sample (default 32).")
  in
  let trials_arg =
    Arg.(value & opt int 2000 & info [ "trials" ] ~doc:"Trials for the estimate workload.")
  in
  let budget_arg =
    Arg.(value & opt int 500 & info [ "budget" ] ~doc:"Iterations for the fuzz workload.")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Allocation sites to list (default 20).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write a results document (schema v5, with the \
             $(b,allocation_profile) block) to $(docv).")
  in
  let collapsed_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "collapsed" ] ~docv:"PATH"
          ~doc:
            "Write collapsed stacks to $(docv) for flamegraph.pl or \
             speedscope.")
  in
  let run () workload k rate stacks trials budget top json collapsed jobs =
    (* the profiler must be live before the pool spawns worker domains:
       Gc.Memprof covers the starting domain plus domains created after
       [start], so this ordering is what makes per-domain attribution
       cover the whole solve *)
    (match Obs.Memprof.start ~sampling_rate:rate ~callstack_size:stacks () with
    | Ok () -> ()
    | Error e ->
        Fmt.epr "blunting profile: %s@." e;
        exit 3);
    let label, detail =
      match workload with
      | `Solve ->
          let v, secs =
            Obs.Span.time
              (Fmt.str "profile.solve k=%d" k)
              (fun () -> Model.Weakener_abd.bad_probability ~k ~jobs ())
          in
          ("solve", Fmt.str "Prob[bad] = %.6f (%.2fs)" v secs)
      | `Estimate ->
          let r, secs =
            Obs.Span.time
              (Fmt.str "profile.estimate trials=%d" trials)
              (fun () ->
                Adversary.Monte_carlo.estimate ~jobs ~trials ~seed:42
                  ~scheduler:Adversary.Schedulers.uniform
                  ~bad:Programs.Weakener.bad Programs.Weakener.abd_config)
          in
          ("estimate", Fmt.str "bad = %a (%.2fs)" Adversary.Monte_carlo.pp r secs)
      | `Fuzz -> (
          match Fuzz.Engine.parse_budget (string_of_int budget) with
          | Error e ->
              Fmt.epr "%s@." e;
              exit 2
          | Ok b ->
              let summary, secs =
                Obs.Span.time
                  (Fmt.str "profile.fuzz budget=%d" budget)
                  (fun () ->
                    Fuzz.Engine.run ~jobs ~planted:false ~dist_trials:100
                      ~seed:42 ~budget:b ())
              in
              let failed = Fuzz.Engine.has_failures summary in
              ( "fuzz",
                Fmt.str "%s (%.2fs)"
                  (if failed then "failures found" else "no failures")
                  secs ))
    in
    Obs.Memprof.stop ();
    match Obs.Memprof.profile () with
    | None ->
        Fmt.epr "blunting profile: no profile collected@.";
        exit 1
    | Some p ->
        Fmt.pr "profiled workload %s: %s@.@." label detail;
        Fmt.pr "%a@." (Obs.Memprof.pp ~top) p;
        (match collapsed with
        | Some path ->
            Obs.Memprof.write_collapsed path;
            Fmt.pr "collapsed stacks -> %s (feed to flamegraph.pl or speedscope)@." path
        | None -> ());
        (match json with
        | Some path ->
            let doc = Obs.Results.create ~generated_by:"blunting profile" () in
            let sec =
              Obs.Results.section doc ~id:"PROFILE"
                ~title:"Allocation profiling workload"
            in
            Obs.Results.row sec ~quantity:("workload " ^ label) ~paper:"n/a"
              ~measured:detail ();
            Obs.Results.write doc ~path;
            Fmt.pr "results document (schema v5) -> %s@." path
        | None -> ())
  in
  let doc =
    "Run a workload under the $(b,Gc.Memprof) allocation-site profiler and \
     report where the sampled words were allocated — per site, per bench \
     section, per solver phase and per domain. Needs OCaml >= 5.3; exits 3 \
     with an explanation on earlier compilers."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ verbosity_term $ workload_arg $ k_arg $ rate_arg $ stacks_arg
      $ trials_arg $ budget_arg $ top_arg $ json_arg $ collapsed_arg $ jobs_term)

(* ---- main ----------------------------------------------------------- *)

let () =
  let doc =
    "Blunting an adversary against randomized concurrent programs (PODC 2022 \
     reproduction)."
  in
  let info = Cmd.info "blunting" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            figure1_cmd;
            bound_cmd;
            mc_cmd;
            lin_sweep_cmd;
            ghw_cmd;
            trace_cmd;
            metrics_cmd;
            bench_diff_cmd;
            fuzz_cmd;
            profile_cmd;
          ]))
