(** Preamble mappings (Section 3).

    A preamble mapping Π associates each method of each object with the
    control-point label that ends its preamble. Our object implementations
    emit the label ["preamble_end"] (or, once transformed,
    ["preamble_<i>_end"] / ["chosen_preamble"]) via {!Sim.Proc.label}, so
    "invocation [i] passed Π(M)" is decided by inspecting the trace. *)

type t = obj_name:string -> meth:string -> string option
(** [None] means the trivial preamble Π₀ (the invocation has passed it as
    soon as it is called). *)

(** [trivial] is Π₀ for every method: tail strong linearizability w.r.t. it
    is exactly strong linearizability. *)
val trivial : t

(** [standard] maps every method of every object to ["preamble_end"], the
    label our bundled base objects emit between preamble and tail. *)
val standard : t

(** [transformed] maps every method to ["chosen_preamble"], the label the
    preamble-iterating transformation emits right after the object random
    step: the preamble of a transformed method ends once an iteration has
    been chosen. *)
val transformed : t

(** [full ~trace] is the "preamble = whole method" extreme: an invocation has
    passed its preamble only once it returned. Tail strong linearizability
    w.r.t. it coincides with plain linearizability. It is encoded by
    requiring the invocation to have returned, which [passed] checks
    specially via the [ret] pseudo-label. *)
val full : t

(** [passed pm trace ~inv ~obj_name ~meth] decides whether invocation [inv]
    passed its preamble control point in [trace]. *)
val passed :
  t -> Sim.Trace.t -> inv:int -> obj_name:string -> meth:string -> bool

(** [execution_complete pm trace] decides whether the execution is complete
    w.r.t. Π: every invocation (of any object) passed its preamble. *)
val execution_complete : t -> Sim.Trace.t -> bool
