open Util

type op_info = {
  inv : int;
  meth : string;
  arg : Value.t;
  value : Value.t;
  ts : Value.t;
  returned : bool;
}

let calls_of ~obj_name entries =
  List.filter_map
    (function
      | Sim.Trace.Action (History.Action.Call c) when c.obj_name = obj_name ->
          Some c
      | _ -> None)
    entries

let ops_of_entries ~obj_name entries =
  let returned inv =
    List.exists
      (function
        | Sim.Trace.Action (History.Action.Ret r) -> r.inv = inv
        | _ -> false)
      entries
  in
  let adopted inv =
    List.find_map
      (function
        | Sim.Trace.Noted { name = "adopted"; value; inv = Some i; _ } when i = inv
          ->
            Some (Value.to_pair value)
        | _ -> None)
      entries
  in
  List.filter_map
    (fun (c : History.Action.call) ->
      match adopted c.inv with
      | None -> None
      | Some (value, ts) ->
          Some
            {
              inv = c.inv;
              meth = c.meth;
              arg = c.arg;
              value;
              ts;
              returned = returned c.inv;
            })
    (calls_of ~obj_name entries)

let complete ~obj_name entries =
  let with_ts = ops_of_entries ~obj_name entries in
  List.for_all
    (fun (c : History.Action.call) -> List.exists (fun o -> o.inv = c.inv) with_ts)
    (calls_of ~obj_name entries)

let logically_completed ops =
  let max_returned_ts =
    List.fold_left
      (fun acc o ->
        if o.returned then
          match acc with
          | None -> Some o.ts
          | Some t -> if Value.ts_compare o.ts t > 0 then Some o.ts else acc
        else acc)
      None ops
  in
  match max_returned_ts with
  | None -> []
  | Some t -> List.filter (fun o -> Value.ts_compare o.ts t <= 0) ops

let order a b =
  let c = Value.ts_compare a.ts b.ts in
  if c <> 0 then c
  else
    let kind o = if o.meth = "write" then 0 else 1 in
    let c = compare (kind a) (kind b) in
    if c <> 0 then c else compare a.inv b.inv

let linearize ~obj_name entries : Check.linearization =
  let ops = logically_completed (ops_of_entries ~obj_name entries) in
  List.map
    (fun o ->
      {
        Check.inv = o.inv;
        meth = o.meth;
        arg = o.arg;
        ret = (if o.meth = "read" then o.value else Value.unit);
      })
    (List.sort order ops)

let is_prefix_of short long =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | (a : Check.lin_step) :: ra, (b : Check.lin_step) :: rb ->
        a.inv = b.inv && Value.equal a.ret b.ret && go (ra, rb)
  in
  go (short, long)

let prefix_preserving ~obj_name trace =
  let entries = Sim.Trace.entries trace in
  let len = List.length entries in
  let prefix i = List.filteri (fun j _ -> j < i) entries in
  let complete_prefixes =
    List.filter_map
      (fun i ->
        let p = prefix i in
        if complete ~obj_name p then Some (linearize ~obj_name p) else None)
      (List.init (len + 1) Fun.id)
  in
  let rec chain = function
    | a :: (b :: _ as rest) -> is_prefix_of a b && chain rest
    | [ _ ] | [] -> true
  in
  chain complete_prefixes
