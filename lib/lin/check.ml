open Util
open History

module M = struct
  open Obs.Metrics

  let nodes = counter ~help:"DFS nodes visited by the linearizability checker" "lin.nodes_visited"
  let backtracks = counter ~help:"DFS nodes exhausted without extension" "lin.backtracks"
  let checks = counter ~help:"linearizability checks run" "lin.checks"
end

type lin_step = { inv : Action.inv_id; meth : string; arg : Value.t; ret : Value.t }
type linearization = lin_step list

let pp_step ppf s =
  Fmt.pf ppf "%s(%a)#%d->%a" s.meth Value.pp s.arg s.inv Value.pp s.ret

let pp_linearization ppf l =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp_step) l

(* An operation may be linearized next only when every operation that
   returned before its call is already linearized. *)
let is_minimal (ops : Hist.op list) chosen (o : Hist.op) =
  List.for_all
    (fun (o' : Hist.op) ->
      List.mem o'.call.inv chosen
      || not (match o'.ret_index with Some r -> r < o.call_index | None -> false))
    ops

let key chosen state = (List.sort compare chosen, state)

(* Generic DFS. [emit] is called with (reversed steps, chosen, state) whenever
   all completed operations are linearized; it returns [true] to stop. *)
let search (spec : Spec.t) (h : Hist.t) ~init_steps ~init_chosen ~init_state ~emit =
  let ops = Hist.ops h in
  let completed = List.filter (fun (o : Hist.op) -> o.ret <> None) ops in
  let failed = Hashtbl.create 97 in
  let rec dfs steps chosen state =
    Obs.Metrics.incr M.nodes;
    let all_done =
      List.for_all (fun (o : Hist.op) -> List.mem o.call.inv chosen) completed
    in
    if all_done && emit (steps, chosen, state) then true
    else begin
      let k = key chosen state in
      if Hashtbl.mem failed k then false
      else begin
        let try_op (o : Hist.op) =
          (not (List.mem o.call.inv chosen))
          && is_minimal ops chosen o
          &&
          match spec.apply state ~meth:o.call.meth ~arg:o.call.arg with
          | None -> false
          | Some (state', ret) -> (
              match o.ret with
              | Some expected when not (Value.equal expected ret) -> false
              | _ ->
                  let step =
                    { inv = o.call.inv; meth = o.call.meth; arg = o.call.arg; ret }
                  in
                  dfs (step :: steps) (o.call.inv :: chosen) state')
        in
        let found = List.exists try_op ops in
        if not found then begin
          Obs.Metrics.incr M.backtracks;
          Hashtbl.replace failed k ()
        end;
        found
      end
    end
  in
  Obs.Metrics.incr M.checks;
  dfs init_steps init_chosen init_state

let find spec h =
  let witness = ref None in
  let emit (steps, _chosen, _state) =
    witness := Some (List.rev steps);
    true
  in
  if search spec h ~init_steps:[] ~init_chosen:[] ~init_state:spec.init ~emit then
    !witness
  else None

let check spec h = find spec h <> None

(* Replay a proposed prefix, checking feasibility. Returns the chosen
   invocations and resulting state, or None. *)
let replay_prefix (spec : Spec.t) (h : Hist.t) prefix =
  let ops = Hist.ops h in
  let find_op inv = List.find_opt (fun (o : Hist.op) -> o.call.inv = inv) ops in
  let step acc (s : lin_step) =
    match acc with
    | None -> None
    | Some (chosen, state) -> (
        match find_op s.inv with
        | None -> None
        | Some o ->
            if List.mem s.inv chosen then None
            else if o.call.meth <> s.meth || not (Value.equal o.call.arg s.arg) then
              None
            else if not (is_minimal ops chosen o) then None
            else
              (match spec.apply state ~meth:s.meth ~arg:s.arg with
              | None -> None
              | Some (state', ret) ->
                  if not (Value.equal ret s.ret) then None
                  else
                    (match o.ret with
                    | Some expected when not (Value.equal expected ret) -> None
                    | _ -> Some (s.inv :: chosen, state'))))
  in
  List.fold_left step (Some ([], spec.init)) prefix

let validate spec h lin =
  match replay_prefix spec h lin with
  | None -> false
  | Some (chosen, _) ->
      let completed = List.filter (fun (o : Hist.op) -> o.ret <> None) (Hist.ops h) in
      List.for_all (fun (o : Hist.op) -> List.mem o.call.inv chosen) completed

let linearizations_extending (spec : Spec.t) (h : Hist.t) prefix : linearization Seq.t =
  match replay_prefix spec h prefix with
  | None -> Seq.empty
  | Some (chosen0, state0) ->
      let ops = Hist.ops h in
      let completed = List.filter (fun (o : Hist.op) -> o.ret <> None) ops in
      (* lazy DFS producing every valid extension of the prefix *)
      let rec gen steps chosen state () =
        let here =
          if
            List.for_all (fun (o : Hist.op) -> List.mem o.call.inv chosen) completed
          then Seq.return (prefix @ List.rev steps)
          else Seq.empty
        in
        let deeper =
          List.to_seq ops
          |> Seq.concat_map (fun (o : Hist.op) ->
                 if List.mem o.call.inv chosen then Seq.empty
                 else if not (is_minimal ops chosen o) then Seq.empty
                 else
                   match spec.apply state ~meth:o.call.meth ~arg:o.call.arg with
                   | None -> Seq.empty
                   | Some (state', ret) -> (
                       match o.ret with
                       | Some expected when not (Value.equal expected ret) ->
                           Seq.empty
                       | _ ->
                           let step =
                             {
                               inv = o.call.inv;
                               meth = o.call.meth;
                               arg = o.call.arg;
                               ret;
                             }
                           in
                           gen (step :: steps) (o.call.inv :: chosen) state'))
        in
        Seq.append here deeper ()
      in
      gen [] chosen0 state0
