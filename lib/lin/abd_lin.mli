(** The explicit linearization function of Theorem 5.1 for ABD executions.

    The timestamp of a Read is the timestamp returned by its (chosen) query
    phase; the timestamp of a Write is the one it sends in its update phase.
    An invocation is {e logically completed} in an execution [e] when some
    invocation with a greater-or-equal timestamp has returned in [e]. The
    function [f] maps [e] to the sequence of logically-completed invocations
    sorted by (timestamp, writes-before-reads, invocation id) — a valid
    linearization that Theorem 5.1 proves prefix-preserving on executions
    complete w.r.t. Π_ABD.

    Timestamps are read off the ["adopted"] trace notes our ABD emits as the
    first tail step (one local step after the paper's Π point; no effectful
    step separates them, so the prefix-preservation property is the same). *)

type op_info = {
  inv : int;
  meth : string;
  arg : Util.Value.t;
  value : Util.Value.t;  (** the value read (Read) or written (Write) *)
  ts : Util.Value.t;  (** the adopted timestamp *)
  returned : bool;
}

(** [ops_of_entries ~obj_name entries] extracts, from a trace-entry prefix,
    every invocation of [obj_name] that adopted a timestamp. *)
val ops_of_entries : obj_name:string -> Sim.Trace.entry list -> op_info list

(** [complete ~obj_name entries] holds when every invocation of [obj_name]
    called in the prefix has adopted a timestamp (the Π_ABD-completeness of
    the prefix, up to the one-local-step shift described above). *)
val complete : obj_name:string -> Sim.Trace.entry list -> bool

(** [linearize ~obj_name entries] is f(e): the logically-completed
    invocations in timestamp order, as checker linearization steps. *)
val linearize : obj_name:string -> Sim.Trace.entry list -> Check.linearization

(** [prefix_preserving ~obj_name trace] checks Theorem 5.1 on one execution:
    for every pair of Π-complete prefixes p1 ⊑ p2 of the trace,
    f(p1) is a prefix of f(p2). *)
val prefix_preserving : obj_name:string -> Sim.Trace.t -> bool
