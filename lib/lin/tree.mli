(** (Tail) strong linearizability over execution trees.

    Strong linearizability of a set of executions E asks for a function f
    from E to linearizations that is prefix-preserving: if e1 is a prefix of
    e2 then f(e1) is a prefix of f(e2). When E is organized as a prefix tree
    of executions, the existence of f is a consistent-labeling problem which
    this module decides by backtracking search over the (lazily enumerated)
    linearizations of every node.

    Tail strong linearizability w.r.t. a preamble mapping Π constrains only
    the nodes whose execution is {e complete} w.r.t. Π; nodes that are not
    complete are unconstrained, and a complete node's linearization must
    extend that of its nearest complete ancestor. *)

type node = {
  history : History.Hist.t;
  complete : bool;  (** membership in E(O, Π) *)
  children : node list;
  descr : string;  (** for diagnostics, e.g. the schedule suffix *)
}

(** [leaf ?descr ~complete h] is a childless node. *)
val leaf : ?descr:string -> complete:bool -> History.Hist.t -> node

(** [node ?descr ~complete h children]. *)
val node : ?descr:string -> complete:bool -> History.Hist.t -> node list -> node

(** [strongly_linearizable spec root] decides whether a prefix-preserving
    linearization function exists for the complete nodes of the tree.
    With all nodes marked complete this is strong linearizability of the
    execution set; with completeness computed from a preamble mapping it is
    tail strong linearizability. *)
val strongly_linearizable : History.Spec.t -> node -> bool

(** [first_violation spec root] when the labeling fails: a description of a
    node at which no linearization extending its ancestor's could be chosen
    consistently with its subtree. *)
val first_violation : History.Spec.t -> node -> string option

(** [size root] counts nodes. *)
val size : node -> int
