type node = {
  history : History.Hist.t;
  complete : bool;
  children : node list;
  descr : string;
}

let leaf ?(descr = "") ~complete history = { history; complete; children = []; descr }

let node ?(descr = "") ~complete history children =
  { history; complete; children; descr }

let rec size n = 1 + List.fold_left (fun acc c -> acc + size c) 0 n.children

(* Decide whether every complete node in [n]'s subtree can be labeled with a
   linearization extending [prefix] (the nearest complete ancestor's label),
   consistently. Returns the first failing node description on failure. *)
let rec solve spec prefix n : (unit, string) result =
  if not n.complete then
    (* unconstrained node: children still answer to the same ancestor *)
    solve_children spec prefix n.children
  else begin
    let candidates = Check.linearizations_extending spec n.history prefix in
    let rec try_candidates seq =
      match seq () with
      | Seq.Nil ->
          Error
            (Fmt.str "node %s: no linearization extending %a works" n.descr
               Check.pp_linearization prefix)
      | Seq.Cons (l, rest) -> (
          match solve_children spec l n.children with
          | Ok () -> Ok ()
          | Error _ -> try_candidates rest)
    in
    try_candidates candidates
  end

and solve_children spec prefix children =
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (
        match solve spec prefix c with Ok () -> go rest | Error e -> Error e)
  in
  go children

let strongly_linearizable spec root = solve spec [] root = Ok ()

let first_violation spec root =
  match solve spec [] root with Ok () -> None | Error e -> Some e
