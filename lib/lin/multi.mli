(** Multi-object linearizability and locality.

    Linearizability is {e local} (Herlihy–Wing): a history over several
    objects is linearizable iff each per-object projection is. The paper
    leans on the analogous locality of tail strong linearizability
    (Theorem 3.1) to reason about programs using several objects (the
    weakener uses two registers).

    This module offers both sides: the compositional check (project and
    check each object) and a direct monolithic check against the product
    specification, so the test suite can confirm their agreement on real
    program histories. *)

(** [check_local specs h] checks each object's projection against its
    specification; [specs] maps object names to specifications. Objects
    appearing in [h] but not in [specs] make the check fail. *)
val check_local : (string * History.Spec.t) list -> History.Hist.t -> bool

(** [check_local_result specs h] is {!check_local} with a diagnostic: on
    failure it names the first offending object (unknown to [specs], or
    with a non-linearizable projection). The fuzzer's linearizability
    oracle reports this string in corpus files. *)
val check_local_result :
  (string * History.Spec.t) list -> History.Hist.t -> (unit, string) result

(** [check_monolithic specs h] checks [h] directly against the product
    machine whose abstract state is the tuple of all objects' states.
    Exponentially more expensive than {!check_local}; exists as the
    locality cross-check. *)
val check_monolithic : (string * History.Spec.t) list -> History.Hist.t -> bool
