open Util
open History

let known specs h =
  List.for_all
    (fun (o : Hist.op) -> List.mem_assoc o.call.obj_name specs)
    (Hist.ops h)

let check_local specs h =
  known specs h
  && List.for_all
       (fun (name, spec) -> Check.check spec (Hist.project_obj h name))
       specs

let check_local_result specs h =
  match
    List.find_opt
      (fun (o : Hist.op) -> not (List.mem_assoc o.call.obj_name specs))
      (Hist.ops h)
  with
  | Some o -> Error (Fmt.str "object %s has no specification" o.call.obj_name)
  | None -> (
      match
        List.find_opt
          (fun (name, spec) -> not (Check.check spec (Hist.project_obj h name)))
          specs
      with
      | Some (name, _) ->
          Error (Fmt.str "history of object %s is not linearizable" name)
      | None -> Ok ())

(* The product specification: abstract state is the list of component
   states in [specs] order; methods are dispatched by prefixing the object
   name, which we encode by rewriting the history's method names. *)
let check_monolithic specs h =
  known specs h
  &&
  let product : Spec.t =
    {
      name = "product";
      init = Value.list (List.map (fun (_, (s : Spec.t)) -> s.init) specs);
      apply =
        (fun state ~meth ~arg ->
          match String.index_opt meth '/' with
          | None -> None
          | Some i ->
              let obj = String.sub meth 0 i in
              let m = String.sub meth (i + 1) (String.length meth - i - 1) in
              let rec go names states =
                match (names, states) with
                | (name, (spec : Spec.t)) :: names', st :: states' ->
                    if name = obj then
                      match spec.apply st ~meth:m ~arg with
                      | Some (st', ret) -> Some (st' :: states', ret)
                      | None -> None
                    else begin
                      match go names' states' with
                      | Some (rest, ret) -> Some (st :: rest, ret)
                      | None -> None
                    end
                | _ -> None
              in
              (match go specs (Value.to_list state) with
              | Some (states', ret) -> Some (Value.list states', ret)
              | None -> None));
    }
  in
  let tagged =
    List.map
      (fun a ->
        match a with
        | Action.Call c -> Action.Call { c with meth = c.obj_name ^ "/" ^ c.meth }
        | Action.Ret _ -> a)
      h
  in
  Check.check product tagged
