(** Linearizability checking (Herlihy–Wing).

    A history is linearizable w.r.t. a sequential specification iff the
    completed operations, plus a subset of the pending ones, can be ordered
    into a sequence that (i) replays through the specification with matching
    return values and (ii) respects real-time precedence (an operation that
    returned before another was called stays before it).

    The checker is a depth-first search over partial linearizations with
    memoization on (set of linearized invocations, abstract state) — the
    standard Wing–Gong/Lowe algorithm. *)

(** One step of a linearization: an invocation and the return value the
    specification assigns to it (for pending invocations, the value their
    completion would return). *)
type lin_step = { inv : History.Action.inv_id; meth : string; arg : Util.Value.t; ret : Util.Value.t }

type linearization = lin_step list

(** [check spec h] decides whether [h] is linearizable w.r.t. [spec].
    [h] must be well-formed. *)
val check : History.Spec.t -> History.Hist.t -> bool

(** [find spec h] additionally produces a witness linearization. *)
val find : History.Spec.t -> History.Hist.t -> linearization option

(** [validate spec h lin] checks that the given sequence is a valid
    linearization of [h]: legal replay, matching returns, real-time order
    respected, and containing every completed operation of [h]. *)
val validate : History.Spec.t -> History.Hist.t -> linearization -> bool

(** [linearizations_extending spec h prefix] lazily enumerates all valid
    linearizations of [h] that have [prefix] as a prefix. [prefix] itself is
    not re-validated beyond feasibility of its replay. Intended for the
    small histories used by the strong-linearizability tree checker. *)
val linearizations_extending :
  History.Spec.t -> History.Hist.t -> linearization -> linearization Seq.t

val pp_linearization : Format.formatter -> linearization -> unit
