(** Bounded exhaustive enumeration of executions.

    Builds the prefix tree of {e all} executions of a configuration, by
    branching on every enabled event (and on every outcome of every random
    step). Each node carries the history of the corresponding execution
    prefix and whether that prefix is complete w.r.t. a preamble mapping.

    Enumeration replays from the root for every node, so it is only meant
    for tiny configurations (a handful of operations on shared-memory
    objects); [max_nodes] caps the tree size. *)

exception Too_large

(** [tree ?max_nodes ~preamble_map config] enumerates until every execution
    terminates. Raises [Too_large] past [max_nodes] (default 200_000). *)
val tree :
  ?max_nodes:int -> preamble_map:Preamble_map.t -> Sim.Runtime.config -> Tree.node

(** [executions ?max_nodes config] lists the traces of all maximal
    executions (the tree's leaves). *)
val executions : ?max_nodes:int -> Sim.Runtime.config -> Sim.Trace.t list
