type t = obj_name:string -> meth:string -> string option

let trivial ~obj_name:_ ~meth:_ = None
let standard ~obj_name:_ ~meth:_ = Some Objects.Transform.preamble_end_label

let transformed ~obj_name:_ ~meth:_ = Some Objects.Transform.chosen_label
let ret_pseudo_label = "$returned"
let full ~obj_name:_ ~meth:_ = Some ret_pseudo_label

let passed (pm : t) trace ~inv ~obj_name ~meth =
  match pm ~obj_name ~meth with
  | None -> true
  | Some lbl when lbl = ret_pseudo_label ->
      List.exists
        (function
          | Sim.Trace.Action (History.Action.Ret r) -> r.inv = inv
          | _ -> false)
        (Sim.Trace.entries trace)
  | Some lbl -> Sim.Trace.passed trace ~inv ~lbl

let execution_complete pm trace =
  let calls =
    List.filter_map
      (function
        | Sim.Trace.Action (History.Action.Call c) -> Some c
        | _ -> None)
      (Sim.Trace.entries trace)
  in
  List.for_all
    (fun (c : History.Action.call) ->
      passed pm trace ~inv:c.inv ~obj_name:c.obj_name ~meth:c.meth)
    calls
