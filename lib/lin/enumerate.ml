open Sim

exception Too_large

(* Replay the given schedule with the given random tape from a fresh
   runtime. Returns the runtime after the replay. *)
let replay config events tape =
  let t = Runtime.create config (Runtime.Tape (Array.of_list (List.rev tape))) in
  Runtime.run_schedule t (List.rev events);
  t

let tree ?(max_nodes = 200_000) ~preamble_map config =
  let count = ref 0 in
  (* rev_events and rev_tape are reversed paths from the root *)
  let rec build rev_events rev_tape =
    incr count;
    if !count > max_nodes then raise Too_large;
    let t = replay config rev_events rev_tape in
    let trace = Runtime.trace t in
    let history = Runtime.history t in
    let complete = Preamble_map.execution_complete preamble_map trace in
    let descr =
      Fmt.str "%a"
        (Fmt.list ~sep:(Fmt.any ",") Runtime.pp_event)
        (List.rev rev_events)
    in
    let children =
      List.concat_map
        (fun ev ->
          match ev with
          | Runtime.Step p when Runtime.next_op_descr t p = "random" ->
              (* branch on every outcome of the random step; the bound is
                 recovered by probing with tape value 0 and reading the
                 recorded draw *)
              let probe = replay config (ev :: rev_events) (0 :: rev_tape) in
              let bound =
                match List.rev (Runtime.random_results probe) with
                | (_, bound, _) :: _ -> bound
                | [] -> 1
              in
              List.init bound (fun v -> build (ev :: rev_events) (v :: rev_tape))
          | _ -> [ build (ev :: rev_events) rev_tape ])
        (Runtime.enabled t)
    in
    Tree.node ~descr ~complete history children
  in
  build [] []

let executions ?(max_nodes = 200_000) config =
  let count = ref 0 in
  let acc = ref [] in
  let rec go rev_events rev_tape =
    incr count;
    if !count > max_nodes then raise Too_large;
    let t = replay config rev_events rev_tape in
    match Runtime.enabled t with
    | [] -> acc := Runtime.trace t :: !acc
    | evs ->
        List.iter
          (fun ev ->
            match ev with
            | Runtime.Step p when Runtime.next_op_descr t p = "random" ->
                let probe = replay config (ev :: rev_events) (0 :: rev_tape) in
                let bound =
                  match List.rev (Runtime.random_results probe) with
                  | (_, bound, _) :: _ -> bound
                  | [] -> 1
                in
                for v = 0 to bound - 1 do
                  go (ev :: rev_events) (v :: rev_tape)
                done
            | _ -> go (ev :: rev_events) rev_tape)
          evs
  in
  go [] [];
  !acc
