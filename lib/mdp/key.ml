(* Injectivity argument: byte 255 is reserved as the wide-int escape, so
   the one-byte codes 0..254 (= -120..134) and the escaped 8-byte form
   decode unambiguously; bools and option tags are fixed one-byte; lists
   are length-prefixed. Any fixed-order composition of these is a prefix
   code over states. *)

let int b v =
  if v >= -120 && v <= 134 then Buffer.add_uint8 b (v + 120)
  else begin
    Buffer.add_uint8 b 255;
    Buffer.add_int64_le b (Int64.of_int v)
  end

let bool b v = Buffer.add_uint8 b (if v then 1 else 0)

let option b f = function
  | None -> Buffer.add_uint8 b 0
  | Some x ->
      Buffer.add_uint8 b 1;
      f b x

let list b f xs =
  int b (List.length xs);
  List.iter (f b) xs

let run f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b
