(* Injectivity argument: byte 255 is reserved as the wide-int escape, so
   the one-byte codes 0..254 (= -120..134) and the escaped 8-byte form
   decode unambiguously; bools and option tags are fixed one-byte; lists
   are length-prefixed. Any fixed-order composition of these is a prefix
   code over states.

   The buffer is a bare (bytes, len) pair rather than Stdlib.Buffer: the
   solver probes the memo table with the (data, len) slice directly, so a
   probe of an already-seen state allocates nothing — no Buffer record,
   no [contents] copy, no string. The byte layout written here is
   byte-for-byte the layout the Stdlib.Buffer version produced, so keys
   recorded in committed baselines and fuzz corpora stay valid. *)

type buf = { mutable data : Bytes.t; mutable len : int }

let create ?(size = 64) () = { data = Bytes.create (max 16 size); len = 0 }
let reset b = b.len <- 0
let length b = b.len
let data b = b.data

let grow b need =
  let cap = ref (Bytes.length b.data * 2) in
  while !cap < need do
    cap := !cap * 2
  done;
  let data = Bytes.create !cap in
  Bytes.blit b.data 0 data 0 b.len;
  b.data <- data

let[@inline] ensure b extra =
  if b.len + extra > Bytes.length b.data then grow b (b.len + extra)

let[@inline] add_u8 b v =
  ensure b 1;
  Bytes.unsafe_set b.data b.len (Char.unsafe_chr (v land 0xff));
  b.len <- b.len + 1

let wide b v =
  ensure b 9;
  Bytes.unsafe_set b.data b.len '\xff';
  Bytes.set_int64_le b.data (b.len + 1) (Int64.of_int v);
  b.len <- b.len + 9

let[@inline] int b v =
  if v >= -120 && v <= 134 then add_u8 b (v + 120) else wide b v

let[@inline] bool b v = add_u8 b (if v then 1 else 0)

let option b f = function
  | None -> add_u8 b 0
  | Some x ->
      add_u8 b 1;
      f b x

(* fully-applied recursion: [List.iter (f b)] would allocate a partial-
   application closure on every call, and encoders run once per memo
   probe *)
let rec iter_enc f b = function
  | [] -> ()
  | x :: tl ->
      f b x;
      iter_enc f b tl

let list b f xs =
  int b (List.length xs);
  iter_enc f b xs

let raw b s =
  let n = String.length s in
  ensure b n;
  Bytes.blit_string s 0 b.data b.len n;
  b.len <- b.len + n

let contents b = Bytes.sub_string b.data 0 b.len

let run f =
  let b = create () in
  f b;
  contents b
