(** Exact adversary-vs-chance game solving.

    The paper's quantity [Prob\[P(O) -> B\]] is a supremum over strong
    adversaries. A strong adversary observes the entire execution so far —
    including past random outcomes — so on a finite explicit-state model the
    supremum is the value of a perfect-information stochastic game: at
    adversary states the value is the max over moves, at chance states the
    probability-weighted average, at terminal states the indicator of the
    bad outcome. This module computes that value by top-down dynamic
    programming with memoization (the model must be acyclic, which holds for
    terminating programs; a cycle raises [Cyclic]). *)

(** A game model. States must be pure data; memoization keys them by the
    canonical [encode] string. *)
module type GAME = sig
  type state
  type move

  (** [moves s] lists the adversary's choices; [\[\]] marks terminal
      states. *)
  val moves : state -> move list

  type transition = Det of state | Chance of (float * state) list

  (** [apply s m] is either a deterministic successor or a chance step with
      the given distribution (probabilities must sum to 1). *)
  val apply : state -> move -> transition

  (** [terminal_value s] is the payoff at a terminal state; it is consulted
      only when [moves s = \[\]]. *)
  val terminal_value : state -> float

  (** [encode s] is a canonical key: injective on reachable states (equal
      states produce equal strings, distinct states distinct strings). The
      memo table hashes and compares these flat strings instead of
      traversing the state on every probe — build encoders with {!Key} so
      injectivity holds by construction. Must be thread-safe (pure). *)
  val encode : state -> string

  val pp_move : Format.formatter -> move -> unit
end

exception Cyclic

(** Counters describing one solver instance's work since its last [reset]:
    distinct states memoized, memo-table hits/misses, and the deepest
    recursion reached. Aggregates across all instances also land in
    [Obs.Metrics] under the [mdp.] prefix — published at the end of each
    root solve from the calling domain, so parallel workers never touch
    the registry — and every root [value] call records an [mdp.value]
    span (its wall time feeds the [mdp.solve_seconds] histogram). *)
type stats = {
  states : int;
  memo_hits : int;
  memo_misses : int;
  max_depth : int;
}

(** [hit_rate s] is hits / (hits + misses), 0 when idle. *)
val hit_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** One parallel participant's work, keyed by its runtime domain id (the
    id {!Par.Pool.domain_ids} and trace dumps use). *)
type domain_stats = { domain_id : int; stats : stats }

(** Cross-domain telemetry of the most recent [value_par]: which share of
    the parallel work was wasted re-exploring states another domain also
    memoized. [distinct_keys] is the number of distinct state keys across
    every per-domain memo table (equal to the sequential solve's state
    count for the same root); [duplicated_keys] counts keys present in at
    least two tables; [duplicated_work_pct] is
    [100 * (sum of per-domain states - distinct) / sum] — the fraction of
    parallel state evaluations that were redundant, the quantity the
    work-stealing/shared-memo rewrite must drive toward 0. Exact (whole
    keys, not hashes), unlike the ring-trace estimate of
    [Obs.Trace_analysis]. *)
type par_stats = {
  domains : domain_stats list;  (** sorted by domain id *)
  distinct_keys : int;
  duplicated_keys : int;
  duplicated_work_pct : float;
}

val pp_par_stats : Format.formatter -> par_stats -> unit

(** A progress report from inside a running solve: the instance's stats so
    far, wall time since the root [value]/[best_move] call, and the
    evaluation rate (memo misses {e of this solve} per second — a reused
    instance does not count earlier solves' work in its rate). *)
type progress = { stats : stats; elapsed_s : float; states_per_sec : float }

val pp_progress : Format.formatter -> progress -> unit

(** How often progress fires when [set_progress] does not say: every 50 000
    memoized states (about twice during the 106 k-state E2 solve). *)
val default_progress_interval : int

(** The solver's [Logs] source, [blunting.mdp]; [best_move] logs candidate
    values and the chosen move (via the game's [pp_move]) at debug. *)
val log_src : Logs.src

module Make (G : GAME) : sig
  (** [value s] is the optimal (adversary-maximal) probability from [s]. *)
  val value : G.state -> float

  (** [value_par ?pool ~jobs s] is [value s] computed on [jobs] domains:
      the game tree is expanded a few plies to a frontier of distinct
      subtree roots, each domain solves its share against a private memo
      table, and the frontier values fold back through the expanded
      prefix with the sequential solver's exact arithmetic — the result
      is bit-identical to [value s] at every job count. [jobs <= 1] is
      exactly [value s]. With [pool] the caller's pool is reused,
      otherwise a fresh one is created for the call.

      Work counters merge into this instance's [stats] (summed across
      domains, so states reached by several domains count once per
      domain); the per-domain memo tables are discarded at the end, so
      parallel solving suits one-shot root evaluations, not incremental
      re-solving. Progress hooks do not fire from worker domains.

      When {!Obs.Ring} tracing is enabled, every memo probe records a
      [Solver_hit]/[Solver_expand] event (state-key hash, depth) into the
      probing domain's ring. *)
  val value_par : ?pool:Par.Pool.t -> jobs:int -> G.state -> float

  (** [last_par_stats ()] is the per-domain and cross-domain telemetry of
      the most recent [value_par] on this instance ([None] before the
      first, or after [reset]). Computed lazily from the retained worker
      memo tables — call it after the timed region, not inside it; the
      tables stay live until the next [value_par] or [reset]. *)
  val last_par_stats : unit -> par_stats option

  (** [best_move s] is a move achieving [value s]; [None] at terminals. *)
  val best_move : G.state -> G.move option

  (** [explored ()] is the number of distinct states memoized so far. *)
  val explored : unit -> int

  (** [stats ()] is this instance's work since the last [reset]. *)
  val stats : unit -> stats

  (** [set_progress ?interval_states hook] installs (or, with [None],
      removes) a progress hook for this instance. It fires synchronously
      from inside the recursion every [interval_states] newly memoized
      states — long solves report live, and the hook can never fire after
      [value] returns. Each tick is also logged at info level on the
      [blunting.mdp] source, hook or not. *)
  val set_progress : ?interval_states:int -> (progress -> unit) option -> unit

  (** [reset ()] clears the memo table, zeroes [stats], and re-arms the
      per-solve telemetry baselines (solve start time and the per-solve
      miss base), so a reused instance reports sane [elapsed_s] and
      [states_per_sec] on its next solve. *)
  val reset : unit -> unit
end
