(** Exact adversary-vs-chance game solving.

    The paper's quantity [Prob\[P(O) -> B\]] is a supremum over strong
    adversaries. A strong adversary observes the entire execution so far —
    including past random outcomes — so on a finite explicit-state model the
    supremum is the value of a perfect-information stochastic game: at
    adversary states the value is the max over moves, at chance states the
    probability-weighted average, at terminal states the indicator of the
    bad outcome. This module computes that value by top-down dynamic
    programming with memoization (the model must be acyclic, which holds for
    terminating programs; a cycle raises [Cyclic]). *)

(** A game model. States must be pure data; memoization keys them by the
    canonical [encode] string. *)
module type GAME = sig
  type state
  type move

  type transition = Det of state | Chance of (float * state) list

  (** [moves s] lists the adversary's choices; [\[\]] marks terminal
      states. *)
  val moves : state -> move list

  (** [apply s m] is either a deterministic successor or a chance step with
      the given distribution (probabilities must sum to 1). *)
  val apply : state -> move -> transition

  (** [terminal_value s] is the payoff at a terminal state; it is consulted
      only when [moves s = \[\]]. *)
  val terminal_value : state -> float

  (** [encode s] is a canonical key: injective on reachable states (equal
      states produce equal strings, distinct states distinct strings). The
      memo table hashes and compares these flat strings instead of
      traversing the state on every probe — build encoders with {!Key} so
      injectivity holds by construction. Must be thread-safe (pure). *)
  val encode : state -> string

  (** [encode_into s b] appends exactly the bytes of [encode s] to [b]
      (callers [Key.reset] first). The solver's hot path probes the memo
      table with the buffer slice directly, so a probe of an
      already-memoized state allocates nothing; [encode] stays as the
      cold-path/compatibility form and the two must agree byte-for-byte
      ([encode s = Key.run (encode_into s)]). *)
  val encode_into : state -> Key.buf -> unit

  val pp_move : Format.formatter -> move -> unit
end

(** The zero-copy counterpart of {!GAME}, for {!Make_inplace}: the whole
    DFS runs on one mutable working state, and exploring a child is
    do-move / recurse / restore instead of allocating a successor per
    edge. A game exposes its pure and in-place presentations side by
    side (e.g. {!Model.Weakener_va} / [Model.Weakener_va_packed]); the
    solvers produce bit-identical values when the presentations agree
    move-for-move (see below). *)
module type GAME_INPLACE = sig
  (** The single mutable working state. The solver never copies it. *)
  type state

  (** A restoration token from {!checkpoint} — typically a watermark into
      an undo journal of (cell, old value) pairs recorded by [apply]. *)
  type undo

  (** [moves s] is the bitmask of enabled move ids (bit [m] set = move
      [m] enabled, so at most [Sys.int_size - 1] distinct ids); [0]
      marks terminal states. The solver folds moves in ascending id
      order — the pure presentation's [moves] list must be ascending
      under the same numbering for bit-identical values. *)
  val moves : state -> int

  (** [branches s m] is [0] if move [m] is deterministic, else the
      number [n >= 1] of chance branches. Branch order must match the
      pure presentation's distribution order. *)
  val branches : state -> int -> int

  (** [prob s m j] is the probability of branch [j] of chance move [m],
      evaluated on the unmutated parent state. Must equal the pure
      presentation's probability bitwise (same float expression). *)
  val prob : state -> int -> int -> float

  val checkpoint : state -> undo

  (** [apply s ~move ~branch] mutates [s] to the successor (deterministic
      moves take [~branch:0]), recording enough in the journal for
      {!restore} to rebuild the parent exactly. *)
  val apply : state -> move:int -> branch:int -> unit

  (** [restore s u] rewinds every mutation made since [checkpoint]
      returned [u]. Restores must nest LIFO, as the DFS unwinds. *)
  val restore : state -> undo -> unit

  val terminal_value : state -> float

  (** Same contract as {!GAME.encode_into}: canonical, injective, and
      byte-identical to the pure presentation's encoding of the same
      abstract state — the two solvers then memoize identical key sets. *)
  val encode_into : state -> Key.buf -> unit
end

exception Cyclic

(** Raised (only) in prune-audit mode when an interval cut would have
    changed a computed value — see [set_prune_audit]. The payload pins the
    offending cut: kind, depth, the bound that justified the cut and the
    full value that beat it. *)
exception Prune_unsound of string

(** Counters describing one solver instance's work since its last [reset]:
    distinct states memoized, memo-table hits/misses, and the deepest
    recursion reached. Aggregates across all instances also land in
    [Obs.Metrics] under the [mdp.] prefix — published at the end of each
    root solve from the calling domain, so parallel workers never touch
    the registry — and every root [value] call records an [mdp.value]
    span (its wall time feeds the [mdp.solve_seconds] histogram). *)
type stats = {
  states : int;
  memo_hits : int;
  memo_misses : int;
  max_depth : int;
}

(** [hit_rate s] is hits / (hits + misses), 0 when idle. *)
val hit_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** One parallel participant's work, keyed by its runtime domain id (the
    id {!Par.Pool.domain_ids} and trace dumps use). Under the shared-memo
    solver a participant's [states] and [memo_misses] both count the
    states it won the claim for and evaluated; [memo_hits] counts its
    probes answered by an already-resolved entry (recorded as
    [Claim_hit] in traces). *)
type domain_stats = { domain_id : int; stats : stats }

(** Cross-domain telemetry of the most recent [value_par].
    [distinct_keys] is the number of distinct state keys resolved in the
    shared memo — equal to the sequential solve's state count for the
    same root (unpruned). The claim protocol evaluates every key exactly
    once, so [duplicated_keys] is 0 and [duplicated_work_pct] is 0.0 by
    construction; the fields remain so results documents can be compared
    against pre-rewrite baselines, where they measured the work the old
    private-memo scheme wasted. [steals] counts successful deque steals,
    [claim_hits]/[claim_misses] the shared-memo probes answered by a
    resolved value / by another worker's live claim (the helping
    protocol), and [pruned_subtrees] the interval cuts taken (0 unless
    [~prune:true]). All exact, unlike the ring-trace estimates of
    [Obs.Trace_analysis]. *)
type par_stats = {
  domains : domain_stats list;  (** sorted by domain id *)
  distinct_keys : int;
  duplicated_keys : int;
  duplicated_work_pct : float;
  steals : int;
  claim_hits : int;
  claim_misses : int;
  pruned_subtrees : int;
}

val pp_par_stats : Format.formatter -> par_stats -> unit

(** A progress report from inside a running solve: the instance's stats so
    far, wall time since the root [value]/[best_move] call, and the
    evaluation rate (memo misses {e of this solve} per second — a reused
    instance does not count earlier solves' work in its rate). *)
type progress = { stats : stats; elapsed_s : float; states_per_sec : float }

val pp_progress : Format.formatter -> progress -> unit

(** How often progress fires when [set_progress] does not say: every 50 000
    memoized states (about twice during the 106 k-state E2 solve). *)
val default_progress_interval : int

(** The solver's [Logs] source, [blunting.mdp]; [best_move] logs candidate
    values and the chosen move (via the game's [pp_move]) at debug. *)
val log_src : Logs.src

(** {2 Out-of-core memo budget}

    A solve given a memo budget (per-call [?memo_budget], or the
    process default below) runs its memo through {!Store.Memo}: an
    exactly-once claim/resolve table whose resolved entries spill to
    sorted-run segment files once the in-RAM tier passes the budget,
    probed back through a per-shard LRU block cache. The discipline
    mirrors the in-RAM memo's exactly, so budgeted solves return
    bit-identical values and identical hit/miss/state counts — only
    peak memory and wall time change. Games that fit in budget never
    touch the disk (no file is even created). Once armed, an instance
    stays on the store — accumulating cross-solve memoization like the
    in-RAM table — until its [reset]. *)

(** [parse_memo_budget s] parses a byte count with an optional K/M/G
    (binary) suffix, as accepted by [--memo-budget] and
    [BLUNTING_MEMO_BUDGET]. [Ok 0] means "no budget". *)
val parse_memo_budget : string -> (int, string) result

(** [set_default_memo_budget b] sets the process-wide default budget
    applied when a solve passes no [?memo_budget] ([None] or [Some 0]
    and below disable it). Initialized from [BLUNTING_MEMO_BUDGET] at
    startup. *)
val set_default_memo_budget : int option -> unit

(** [memo_budget ()] is the current process-wide default. *)
val memo_budget : unit -> int option

module Make (G : GAME) : sig
  (** [value ?prune s] is the optimal (adversary-maximal) probability from
      [s]. With [~prune:true], chance-node children whose interval upper
      bound (every unevaluated child at the [hi] of [bounds ()]) cannot
      beat the parent max are cut, and max folds stop once the
      accumulator reaches [hi] — both cuts are value-exact (the returned
      value is bit-identical to the unpruned solve; see [set_bounds] for
      the admissibility requirement), but fewer states are explored, so
      [explored ()] may be smaller. Only fully-evaluated state values
      enter the memo, so pruned and unpruned solves may share an
      instance.

      [?memo_budget] (or the process default) runs the memo
      out-of-core — see the "Out-of-core memo budget" section above;
      values and counts stay bit-identical. *)
  val value : ?memo_budget:int -> ?prune:bool -> G.state -> float

  (** [value_par ?pool ?prune ~jobs s] is [value s] computed by [jobs]
      cooperating workers over one shared sharded memo
      ({!Par.Sharded_tbl}): the game tree is expanded a few plies to a
      frontier of distinct subtree roots dealt into per-worker
      work-stealing deques ({!Par.Deque}); each worker drains its own
      deque and steals from the others when empty. Every state evaluation
      claims its key in the shared table first, so each state is
      evaluated by exactly one worker — no duplicated work — and a worker
      probing another's live claim helps by evaluating that state's
      children before waiting for the owner's value. The result is
      bit-identical to [value s] at every job count, and (unpruned) the
      summed worker evaluations equal the sequential solve's state count.
      [jobs <= 1] is exactly [value ?prune s]. With [pool] the caller's
      pool is reused ([pool] must have at least [jobs] slots to run all
      workers concurrently; fewer slots still terminate — a participant
      finishing one worker loop picks up the next — but with reduced
      parallelism), otherwise a fresh pool is created for the call.

      Work counters merge into this instance's [stats]: states/misses
      gain the distinct-state count, hits the shared-memo probe hits.
      Cycle detection is preserved — a worker re-entering its own claim
      raises [Cyclic], exactly the sequential [In_progress] re-entry.
      Progress hooks do not fire from worker domains.

      When {!Obs.Ring} tracing is enabled, workers record
      [Solver_expand] (claim won, evaluation begins), [Claim_hit]
      (probe answered by a resolved value), [Claim_miss] (probe hit a
      live claim; helping begins), [Steal] (successful deque steal) and
      [Solver_prune] (interval cut) events into their domains' rings.

      With a memo budget armed, the workers share the instance's
      spillable {!Store.Memo} instead of a fresh in-RAM table — same
      claim protocol, same bit-identical result; [Store_spill],
      [Store_cache_hit]/[Store_cache_miss] and [Store_evict] events
      additionally land in the rings. *)
  val value_par :
    ?pool:Par.Pool.t ->
    ?memo_budget:int ->
    ?prune:bool ->
    jobs:int ->
    G.state ->
    float

  (** [last_par_stats ()] is the cross-domain telemetry of the most recent
      [value_par] on this instance — [None] before the first, after
      [reset], and after any subsequent root solve ([value], [best_move]
      or [value_par] itself clear it on entry, so the report can never
      describe work an intervening solve overwrote). Computed eagerly
      when [value_par] returns; calling this costs nothing. *)
  val last_par_stats : unit -> par_stats option

  (** [best_move s] is a move achieving [value s]; [None] at terminals. *)
  val best_move : G.state -> G.move option

  (** [explored ()] is the number of distinct states memoized so far. *)
  val explored : unit -> int

  (** [stats ()] is this instance's work since the last [reset]. *)
  val stats : unit -> stats

  (** [store_stats ()] is the out-of-core backend's cumulative telemetry
      (spills, block-cache traffic, amplification inputs) since a memo
      budget armed it — [None] while the instance is purely in-RAM. *)
  val store_stats : unit -> Store.Memo.stats option

  (** {2 Interval pruning}

      Branch-and-bound needs an a-priori interval [lo, hi] containing
      every reachable state's value. Defaults to [(0, 1)] — always
      admissible for probabilities. Theorem 4.2 gives sharper instance
      bounds for the weakener games: [Prob\[O_a\]] below and the blunting
      bound above. Soundness additionally requires [hi] to bound the
      {e computed} (floating-point) child values, not only the exact
      ones; this holds for [hi = 1] with power-of-two chance
      probabilities (every model game), because round-to-nearest is
      monotone and the products/sums cannot round above a representable
      1.0. *)

  (** [set_bounds ~lo ~hi] installs the admissible value interval used by
      [~prune:true] solves. Raises [Invalid_argument] unless [lo <= hi].
      Instance-global: affects subsequent solves until changed. *)
  val set_bounds : lo:float -> hi:float -> unit

  (** [bounds ()] is the current [(lo, hi)]. *)
  val bounds : unit -> float * float

  (** [set_prune_audit true] makes every subsequent pruned solve evaluate
      each would-be cut subtree anyway and raise {!Prune_unsound} if the
      cut would have changed the parent's value — the pruning-soundness
      fuzz oracle's mode. Audit solves explore as much as unpruned ones
      (plus the verification folds); [pruned_subtrees ()] still counts
      the cuts that fired. Default off. *)
  val set_prune_audit : bool -> unit

  (** [pruned_subtrees ()] is the number of interval cuts taken since the
      last [reset] (sequential and parallel solves combined). *)
  val pruned_subtrees : unit -> int

  (** [set_progress ?interval_states hook] installs (or, with [None],
      removes) a progress hook for this instance. It fires synchronously
      from inside the recursion every [interval_states] newly memoized
      states — long solves report live, and the hook can never fire after
      [value] returns. Each tick is also logged at info level on the
      [blunting.mdp] source, hook or not. *)
  val set_progress : ?interval_states:int -> (progress -> unit) option -> unit

  (** [reset ()] clears the memo table, zeroes [stats] (including the
      pruned-subtree count), clears [last_par_stats], and re-arms the
      per-solve telemetry baselines (solve start time and the per-solve
      miss base), so a reused instance reports sane [elapsed_s] and
      [states_per_sec] on its next solve. *)
  val reset : unit -> unit
end

(** The in-place sequential solver: same memoized expectimax as
    {!Make.value} — same memo keys, same stats accounting, same
    [mdp.value] span and [mdp.*] metrics, same progress hooks, same
    interval-pruning cuts and audit mode — but the recursion explores
    children by mutate / recurse / undo on the single working state, so
    an expansion allocates no successor states at all. Values, explored
    counts and hit/miss sequences are bit-identical to [Make] over the
    pure presentation of the same game (see {!GAME_INPLACE} for the
    agreement obligations). There is no parallel entry point: workers
    would need a working state per domain; use {!Make.value_par} for
    that. *)
module Make_inplace (G : GAME_INPLACE) : sig
  (** [value ?memo_budget ?prune s] — see {!Make.value}. [s] is mutated
      during the solve and restored (journal-exactly) before
      returning. *)
  val value : ?memo_budget:int -> ?prune:bool -> G.state -> float

  val explored : unit -> int
  val stats : unit -> stats

  (** See {!Make.store_stats}. *)
  val store_stats : unit -> Store.Memo.stats option
  val set_bounds : lo:float -> hi:float -> unit
  val bounds : unit -> float * float
  val set_prune_audit : bool -> unit
  val pruned_subtrees : unit -> int

  val set_progress :
    ?interval_states:int -> (progress -> unit) option -> unit

  val reset : unit -> unit
end
