let log_src = Logs.Src.create "blunting.mdp" ~doc:"Exact game solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Aggregate, process-wide instrumentation across every solver instance;
   per-instance figures come from [stats ()]. *)
module M = struct
  open Obs.Metrics

  let memo_hits = counter ~help:"memo-table hits" "mdp.memo_hits"
  let memo_misses = counter ~help:"states evaluated (memo misses)" "mdp.memo_misses"
  let states = counter ~help:"distinct states memoized" "mdp.states_explored"
  let depth = gauge ~help:"deepest recursion seen" "mdp.max_depth"
  let solve_seconds = histogram ~help:"value() wall time per root solve" "mdp.solve_seconds"
end

module type GAME = sig
  type state
  type move

  type transition = Det of state | Chance of (float * state) list

  val moves : state -> move list
  val apply : state -> move -> transition

  val terminal_value : state -> float
  val pp_move : Format.formatter -> move -> unit
end

exception Cyclic

type stats = {
  states : int;  (** distinct states currently memoized *)
  memo_hits : int;
  memo_misses : int;
  max_depth : int;
}

let hit_rate { memo_hits; memo_misses; _ } =
  let total = memo_hits + memo_misses in
  if total = 0 then 0.0 else float_of_int memo_hits /. float_of_int total

let pp_stats ppf s =
  Fmt.pf ppf "%d states, %d hits / %d misses (%.1f%% hit rate), depth %d" s.states
    s.memo_hits s.memo_misses
    (100.0 *. hit_rate s)
    s.max_depth

type progress = { stats : stats; elapsed_s : float; states_per_sec : float }

let pp_progress ppf p =
  Fmt.pf ppf "%d states, %.1f%% hit rate, depth %d, %.1fs elapsed, %.0f states/s"
    p.stats.states
    (100.0 *. hit_rate p.stats)
    p.stats.max_depth p.elapsed_s p.states_per_sec

let default_progress_interval = 50_000

module Make (G : GAME) = struct
  type mark = In_progress | Value of float

  (* The default polymorphic hash stops after 10 meaningful nodes, which
     collides catastrophically on deep model states; hash much deeper. *)
  module H = Hashtbl.Make (struct
    type t = G.state

    let equal = ( = )
    let hash s = Hashtbl.hash_param 500 500 s
  end)

  let memo : mark H.t = H.create 65_536
  let hits = ref 0
  let misses = ref 0
  let max_depth = ref 0

  (* Progress telemetry: long solves (minutes at k >= 3) otherwise give no
     output until they return. The hook fires from inside the recursion,
     every [interval] newly memoized states — so never after [value] has
     returned — alongside an info log on the blunting.mdp source. *)
  let progress_hook : (progress -> unit) option ref = ref None
  let progress_interval = ref default_progress_interval
  let solve_start = ref (Obs.Span.now_us ())

  let set_progress ?(interval_states = default_progress_interval) hook =
    progress_interval := max 1 interval_states;
    progress_hook := hook

  let stats () =
    { states = H.length memo; memo_hits = !hits; memo_misses = !misses;
      max_depth = !max_depth }

  let progress_tick () =
    if !misses mod !progress_interval = 0 then begin
      let elapsed_s = (Obs.Span.now_us () -. !solve_start) /. 1e6 in
      let p =
        {
          stats = stats ();
          elapsed_s;
          states_per_sec =
            (if elapsed_s > 0.0 then float_of_int !misses /. elapsed_s else 0.0);
        }
      in
      Log.info (fun f -> f "progress: %a" pp_progress p);
      match !progress_hook with None -> () | Some hook -> hook p
    end

  let rec value_at depth s =
    if depth > !max_depth then begin
      max_depth := depth;
      Obs.Metrics.max_gauge M.depth (float_of_int depth)
    end;
    match H.find_opt memo s with
    | Some (Value v) ->
        incr hits;
        Obs.Metrics.incr M.memo_hits;
        v
    | Some In_progress -> raise Cyclic
    | None ->
        incr misses;
        Obs.Metrics.incr M.memo_misses;
        progress_tick ();
        H.replace memo s In_progress;
        let v =
          match G.moves s with
          | [] -> G.terminal_value s
          | ms ->
              List.fold_left
                (fun acc m -> Float.max acc (transition_value depth (G.apply s m)))
                neg_infinity ms
        in
        H.replace memo s (Value v);
        Obs.Metrics.incr M.states;
        v

  and transition_value depth = function
    | G.Det s -> value_at (depth + 1) s
    | G.Chance dist ->
        List.fold_left (fun acc (p, s) -> acc +. (p *. value_at (depth + 1) s)) 0.0 dist

  let value s =
    solve_start := Obs.Span.now_us ();
    let v, _ = Obs.Span.time ~observe:M.solve_seconds "mdp.value" (fun () -> value_at 0 s) in
    v

  let best_move s =
    solve_start := Obs.Span.now_us ();
    match G.moves s with
    | [] -> None
    | ms ->
        let scored = List.map (fun m -> (transition_value 0 (G.apply s m), m)) ms in
        Log.debug (fun f ->
            f "best_move: %d candidates: %a" (List.length scored)
              (Fmt.list ~sep:Fmt.comma (fun ppf (v, m) ->
                   Fmt.pf ppf "%a=%.6f" G.pp_move m v))
              scored);
        let best =
          List.fold_left
            (fun (bv, bm) (v, m) -> if v > bv then (v, m) else (bv, bm))
            (List.hd scored |> fun (v, m) -> (v, m))
            (List.tl scored)
        in
        Log.debug (fun f ->
            f "best_move: chose %a (value %.6f)" G.pp_move (snd best) (fst best));
        Some (snd best)

  let explored () = H.length memo

  let reset () =
    H.reset memo;
    hits := 0;
    misses := 0;
    max_depth := 0
end
