let log_src = Logs.Src.create "blunting.mdp" ~doc:"Exact game solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Aggregate, process-wide instrumentation across every solver instance;
   per-instance figures come from [stats ()]. Updated only at the end of a
   root solve (never from the recursion, never from worker domains), so
   the registry needs no synchronization and the hot loop pays nothing. *)
module M = struct
  open Obs.Metrics

  let memo_hits = counter ~help:"memo-table hits" "mdp.memo_hits"
  let memo_misses = counter ~help:"states evaluated (memo misses)" "mdp.memo_misses"
  let states = counter ~help:"distinct states memoized" "mdp.states_explored"
  let depth = gauge ~help:"deepest recursion seen" "mdp.max_depth"
  let solve_seconds = histogram ~help:"value() wall time per root solve" "mdp.solve_seconds"
end

module type GAME = sig
  type state
  type move

  type transition = Det of state | Chance of (float * state) list

  val moves : state -> move list
  val apply : state -> move -> transition

  val terminal_value : state -> float
  val encode : state -> string
  val pp_move : Format.formatter -> move -> unit
end

exception Cyclic

type stats = {
  states : int;  (** distinct states currently memoized *)
  memo_hits : int;
  memo_misses : int;
  max_depth : int;
}

let hit_rate { memo_hits; memo_misses; _ } =
  let total = memo_hits + memo_misses in
  if total = 0 then 0.0 else float_of_int memo_hits /. float_of_int total

let pp_stats ppf s =
  Fmt.pf ppf "%d states, %d hits / %d misses (%.1f%% hit rate), depth %d" s.states
    s.memo_hits s.memo_misses
    (100.0 *. hit_rate s)
    s.max_depth

type domain_stats = { domain_id : int; stats : stats }

type par_stats = {
  domains : domain_stats list;
  distinct_keys : int;
  duplicated_keys : int;
  duplicated_work_pct : float;
}

let pp_par_stats ppf p =
  Fmt.pf ppf "%d domains, %d distinct keys, %d duplicated (%.1f%% of work):@,"
    (List.length p.domains) p.distinct_keys p.duplicated_keys
    p.duplicated_work_pct;
  List.iter
    (fun d -> Fmt.pf ppf "  domain %d: %a@," d.domain_id pp_stats d.stats)
    p.domains

type progress = { stats : stats; elapsed_s : float; states_per_sec : float }

let pp_progress ppf p =
  Fmt.pf ppf "%d states, %.1f%% hit rate, depth %d, %.1fs elapsed, %.0f states/s"
    p.stats.states
    (100.0 *. hit_rate p.stats)
    p.stats.max_depth p.elapsed_s p.states_per_sec

let default_progress_interval = 50_000

module Make (G : GAME) = struct
  type mark = In_progress | Value of float

  (* All mutable solver state lives in an instance, so parallel solves can
     give every domain a private memo table and merge the counters
     afterwards. States are keyed by their canonical [G.encode] string:
     probing hashes a flat short string instead of walking a deep model
     state with the polymorphic hash (which either stops early and
     collides, or is told to traverse ~500 nodes per probe). *)
  type t = {
    memo : (string, mark) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    mutable states : int;  (* states memoized with a final Value *)
    mutable max_depth : int;
    mutable progress_hook : (progress -> unit) option;
    mutable progress_interval : int;
    mutable solve_start : float;
    mutable solve_base_misses : int;  (* misses when the root call began *)
  }

  let make_instance () =
    {
      memo = Hashtbl.create 65_536;
      hits = 0;
      misses = 0;
      states = 0;
      max_depth = 0;
      progress_hook = None;
      progress_interval = default_progress_interval;
      solve_start = Obs.Span.now_us ();
      solve_base_misses = 0;
    }

  (* The module-level instance behind the historical [value]/[stats] API. *)
  let default = make_instance ()

  let set_progress ?(interval_states = default_progress_interval) hook =
    default.progress_interval <- max 1 interval_states;
    default.progress_hook <- hook

  let stats_of i =
    { states = i.states; memo_hits = i.hits; memo_misses = i.misses;
      max_depth = i.max_depth }

  let stats () = stats_of default

  let progress_of i =
    let elapsed_s = (Obs.Span.now_us () -. i.solve_start) /. 1e6 in
    {
      stats = stats_of i;
      elapsed_s;
      states_per_sec =
        (if elapsed_s > 0.0 then
           float_of_int (i.misses - i.solve_base_misses) /. elapsed_s
         else 0.0);
    }

  (* Progress telemetry: long solves (minutes at k >= 3) otherwise give no
     output until they return. The hook fires from inside the recursion,
     every [interval] newly memoized states — so never after [value] has
     returned — alongside an info log on the blunting.mdp source. Worker
     instances carry no hook, so parallel solves never fire it off the
     calling domain. *)
  let progress_tick i =
    if i.misses mod i.progress_interval = 0 then begin
      let p = progress_of i in
      Log.info (fun f -> f "progress: %a" pp_progress p);
      match i.progress_hook with None -> () | Some hook -> hook p
    end

  let rec value_at i depth s =
    if depth > i.max_depth then i.max_depth <- depth;
    let key = G.encode s in
    match Hashtbl.find_opt i.memo key with
    | Some (Value v) ->
        i.hits <- i.hits + 1;
        (* the enabled () guard keeps the key hash off the disabled path *)
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_hit (Hashtbl.hash key) depth;
        v
    | Some In_progress -> raise Cyclic
    | None ->
        i.misses <- i.misses + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_expand (Hashtbl.hash key) depth;
        progress_tick i;
        Hashtbl.replace i.memo key In_progress;
        let v =
          match G.moves s with
          | [] ->
              if Obs.Ring.enabled () then
                Obs.Ring.record Obs.Ring.Solver_terminal (Hashtbl.hash key)
                  depth;
              G.terminal_value s
          | ms ->
              List.fold_left
                (fun acc m -> Float.max acc (transition_value i depth (G.apply s m)))
                neg_infinity ms
        in
        Hashtbl.replace i.memo key (Value v);
        i.states <- i.states + 1;
        v

  and transition_value i depth = function
    | G.Det s -> value_at i (depth + 1) s
    | G.Chance dist ->
        List.fold_left (fun acc (p, s) -> acc +. (p *. value_at i (depth + 1) s)) 0.0 dist

  (* Root-call bracketing: arm the per-solve telemetry baselines, then land
     the instance deltas in the process-wide registry once, at the end. *)
  let start_solve i =
    i.solve_start <- Obs.Span.now_us ();
    i.solve_base_misses <- i.misses

  let publish_delta (before : stats) (after : stats) =
    Obs.Metrics.add M.memo_hits (after.memo_hits - before.memo_hits);
    Obs.Metrics.add M.memo_misses (after.memo_misses - before.memo_misses);
    Obs.Metrics.add M.states (after.states - before.states);
    Obs.Metrics.max_gauge M.depth (float_of_int after.max_depth)

  let root_call i span_name f =
    start_solve i;
    let before = stats_of i in
    let finish () = publish_delta before (stats_of i) in
    match Obs.Span.time ~observe:M.solve_seconds span_name f with
    | v, _ ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let value s = root_call default "mdp.value" (fun () -> value_at default 0 s)

  let best_move s =
    match G.moves s with
    | [] -> None
    | ms ->
        root_call default "mdp.best_move" @@ fun () ->
        let scored =
          List.map (fun m -> (transition_value default 0 (G.apply s m), m)) ms
        in
        Log.debug (fun f ->
            f "best_move: %d candidates: %a" (List.length scored)
              (Fmt.list ~sep:Fmt.comma (fun ppf (v, m) ->
                   Fmt.pf ppf "%a=%.6f" G.pp_move m v))
              scored);
        let best =
          List.fold_left
            (fun (bv, bm) (v, m) -> if v > bv then (v, m) else (bv, bm))
            (List.hd scored |> fun (v, m) -> (v, m))
            (List.tl scored)
        in
        Log.debug (fun f ->
            f "best_move: chose %a (value %.6f)" G.pp_move (snd best) (fst best));
        Some (snd best)

  let explored () = default.states

  (* The per-domain instances of the most recent [value_par], retained so
     [last_par_stats] can compute the cross-domain duplicate-key figures
     lazily — counting key overlaps walks every worker table, which must
     not happen inside the timed solve. Cleared by [reset] and replaced
     by the next parallel solve. *)
  let last_par : (int * t) list ref = ref []

  let last_par_stats () =
    match !last_par with
    | [] -> None
    | workers ->
        let keys : (string, int) Hashtbl.t = Hashtbl.create 65_536 in
        List.iter
          (fun (_, (w : t)) ->
            Hashtbl.iter
              (fun k mark ->
                match mark with
                | Value _ ->
                    Hashtbl.replace keys k
                      (1 + Option.value ~default:0 (Hashtbl.find_opt keys k))
                | In_progress -> ())
              w.memo)
          workers;
        let distinct = Hashtbl.length keys in
        let duplicated =
          Hashtbl.fold (fun _ c acc -> if c >= 2 then acc + 1 else acc) keys 0
        in
        let total =
          List.fold_left (fun acc (_, (w : t)) -> acc + w.states) 0 workers
        in
        Some
          {
            domains =
              List.map
                (fun (domain_id, w) -> { domain_id; stats = stats_of w })
                workers
              |> List.sort (fun a b -> compare a.domain_id b.domain_id);
            distinct_keys = distinct;
            duplicated_keys = duplicated;
            duplicated_work_pct =
              (if total = 0 then 0.0
               else
                 100.0
                 *. float_of_int (total - distinct)
                 /. float_of_int total);
          }

  let reset () =
    last_par := [];
    Hashtbl.reset default.memo;
    default.hits <- 0;
    default.misses <- 0;
    default.states <- 0;
    default.max_depth <- 0;
    (* re-arm the per-solve telemetry too: a reused instance must not
       compute its second solve's states/sec against the first solve's
       start time or cumulative miss count *)
    default.solve_start <- Obs.Span.now_us ();
    default.solve_base_misses <- 0

  (* ---- parallel solving ------------------------------------------------

     The root frontier: expand the game tree a few plies down (without
     evaluating), hand the distinct frontier states to the pool — each
     domain evaluates its share against a private memo table — and fold
     the frontier values back up through the expanded prefix with exactly
     the sequential solver's arithmetic (Float.max over moves,
     left-to-right probability-weighted sum over chance branches). Every
     frontier value is the exact game value of its state, so the merged
     root value is bit-identical to the sequential one. *)

  type plan =
    | P_term of float
    | P_leaf of int  (* index into the frontier array *)
    | P_max of plan list
    | P_exp of (float * plan) list

  type pre =
    | R_term of float
    | R_state of G.state * int  (* frontier state at its tree depth *)
    | R_max of pre list
    | R_exp of (float * pre) list

  let rec expand depth limit s =
    match G.moves s with
    | [] -> R_term (G.terminal_value s)
    | ms ->
        if depth >= limit then R_state (s, depth)
        else
          R_max
            (List.map
               (fun m ->
                 match G.apply s m with
                 | G.Det s' -> expand (depth + 1) limit s'
                 | G.Chance dist ->
                     R_exp
                       (List.map
                          (fun (p, s') -> (p, expand (depth + 1) limit s'))
                          dist))
               ms)

  let rec count_states = function
    | R_term _ -> 0
    | R_state _ -> 1
    | R_max ps -> List.fold_left (fun a p -> a + count_states p) 0 ps
    | R_exp dist -> List.fold_left (fun a (_, p) -> a + count_states p) 0 dist

  (* Deduplicate frontier states by canonical key (several paths reach the
     same state) and compile the prefix into an index-based plan. *)
  let compile pre =
    let index : (string, int) Hashtbl.t = Hashtbl.create 256 in
    let leaves = ref [] in
    let n = ref 0 in
    let rec go = function
      | R_term v -> P_term v
      | R_state (s, depth) ->
          let key = G.encode s in
          let i =
            match Hashtbl.find_opt index key with
            | Some i -> i
            | None ->
                let i = !n in
                Hashtbl.add index key i;
                leaves := (s, depth) :: !leaves;
                incr n;
                i
          in
          P_leaf i
      | R_max ps -> P_max (List.map go ps)
      | R_exp dist -> P_exp (List.map (fun (p, q) -> (p, go q)) dist)
    in
    let plan = go pre in
    (plan, Array.of_list (List.rev !leaves))

  let rec eval_plan values = function
    | P_term v -> v
    | P_leaf i -> values.(i)
    | P_max ps ->
        List.fold_left (fun acc p -> Float.max acc (eval_plan values p)) neg_infinity ps
    | P_exp dist ->
        List.fold_left
          (fun acc (p, pl) -> acc +. (p *. eval_plan values pl))
          0.0 dist

  let frontier ~jobs s =
    (* deepen until the frontier offers real parallel slack (or stops
       growing — tiny games go sequential via the plan alone) *)
    let target = jobs * 8 in
    let rec go limit prev =
      let pre = expand 0 limit s in
      let c = count_states pre in
      if c >= target || c <= prev || limit >= 16 then pre else go (limit + 2) c
    in
    go 2 (-1)

  let value_par ?pool ~jobs s =
    if jobs <= 1 then value s
    else
      root_call default "mdp.value_par" @@ fun () ->
      let plan, leaves = compile (frontier ~jobs s) in
      let nleaves = Array.length leaves in
      Log.info (fun f -> f "value_par: %d frontier states on %d jobs" nleaves jobs);
      if nleaves = 0 then eval_plan [||] plan
      else begin
        (* one private instance per participating domain, created lazily
           and collected for the stats merge *)
        let created = ref [] in
        let created_mutex = Mutex.create () in
        let dls =
          Domain.DLS.new_key (fun () ->
              let inst = make_instance () in
              Mutex.lock created_mutex;
              created := ((Domain.self () :> int), inst) :: !created;
              Mutex.unlock created_mutex;
              inst)
        in
        let run_leaves pool =
          Par.Pool.map pool ~n:nleaves (fun i ->
              let inst = Domain.DLS.get dls in
              let s, depth = leaves.(i) in
              value_at inst depth s)
        in
        let values =
          match pool with
          | Some pool -> run_leaves pool
          | None -> Par.Pool.with_pool ~jobs run_leaves
        in
        (* Deterministic merge of the per-domain work counters into the
           calling instance (sum; states explored by several domains count
           once per domain — parallel work, not distinct-state count). The
           worker memo tables are retained in [last_par] for the lazy
           duplicate-key telemetry, but not consulted by later solves: a
           subsequent sequential solve re-explores; parallel roots are for
           one-shot values. *)
        List.iter
          (fun (_, (w : t)) ->
            default.hits <- default.hits + w.hits;
            default.misses <- default.misses + w.misses;
            default.states <- default.states + w.states;
            default.max_depth <- max default.max_depth w.max_depth)
          !created;
        last_par := !created;
        eval_plan values plan
      end
end
