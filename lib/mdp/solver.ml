module type GAME = sig
  type state
  type move

  type transition = Det of state | Chance of (float * state) list

  val moves : state -> move list
  val apply : state -> move -> transition

  val terminal_value : state -> float
  val pp_move : Format.formatter -> move -> unit
end

exception Cyclic

module Make (G : GAME) = struct
  type mark = In_progress | Value of float

  (* The default polymorphic hash stops after 10 meaningful nodes, which
     collides catastrophically on deep model states; hash much deeper. *)
  module H = Hashtbl.Make (struct
    type t = G.state

    let equal = ( = )
    let hash s = Hashtbl.hash_param 500 500 s
  end)

  let memo : mark H.t = H.create 65_536

  let rec value s =
    match H.find_opt memo s with
    | Some (Value v) -> v
    | Some In_progress -> raise Cyclic
    | None ->
        H.replace memo s In_progress;
        let v =
          match G.moves s with
          | [] -> G.terminal_value s
          | ms ->
              List.fold_left
                (fun acc m -> Float.max acc (transition_value (G.apply s m)))
                neg_infinity ms
        in
        H.replace memo s (Value v);
        v

  and transition_value = function
    | G.Det s -> value s
    | G.Chance dist ->
        List.fold_left (fun acc (p, s) -> acc +. (p *. value s)) 0.0 dist

  let best_move s =
    match G.moves s with
    | [] -> None
    | ms ->
        let scored = List.map (fun m -> (transition_value (G.apply s m), m)) ms in
        let best =
          List.fold_left
            (fun (bv, bm) (v, m) -> if v > bv then (v, m) else (bv, bm))
            (List.hd scored |> fun (v, m) -> (v, m))
            (List.tl scored)
        in
        Some (snd best)

  let explored () = H.length memo
  let reset () = H.reset memo
end
