let log_src = Logs.Src.create "blunting.mdp" ~doc:"Exact game solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Aggregate, process-wide instrumentation across every solver instance;
   per-instance figures come from [stats ()]. Updated only at the end of a
   root solve (never from the recursion, never from worker domains), so
   the registry needs no synchronization and the hot loop pays nothing. *)
module M = struct
  open Obs.Metrics

  let memo_hits = counter ~help:"memo-table hits" "mdp.memo_hits"
  let memo_misses = counter ~help:"states evaluated (memo misses)" "mdp.memo_misses"
  let states = counter ~help:"distinct states memoized" "mdp.states_explored"
  let depth = gauge ~help:"deepest recursion seen" "mdp.max_depth"
  let solve_seconds = histogram ~help:"value() wall time per root solve" "mdp.solve_seconds"
  let pruned = counter ~help:"subtrees cut by interval pruning" "mdp.pruned_subtrees"
  let steals = counter ~help:"work-stealing deque steals" "mdp.steals"
  let claim_misses = counter ~help:"shared-memo probes that hit a live claim" "mdp.claim_misses"
end

module type GAME = sig
  type state
  type move

  type transition = Det of state | Chance of (float * state) list

  val moves : state -> move list
  val apply : state -> move -> transition

  val terminal_value : state -> float
  val encode : state -> string
  val encode_into : state -> Key.buf -> unit
  val pp_move : Format.formatter -> move -> unit
end

(* The zero-copy counterpart of {!GAME}: one mutable working state that
   moves mutate in place, with an undo token to restore it before the
   next sibling. Moves are small-int ids delivered as a bitmask (so
   enumerating them allocates nothing); chance moves expose their branch
   count and per-branch probabilities instead of a materialized
   distribution list. *)
module type GAME_INPLACE = sig
  type state
  type undo

  val moves : state -> int
  val branches : state -> int -> int
  val prob : state -> int -> int -> float
  val checkpoint : state -> undo
  val apply : state -> move:int -> branch:int -> unit
  val restore : state -> undo -> unit
  val terminal_value : state -> float
  val encode_into : state -> Key.buf -> unit
end

exception Cyclic
exception Prune_unsound of string

type stats = {
  states : int;  (** distinct states currently memoized *)
  memo_hits : int;
  memo_misses : int;
  max_depth : int;
}

let hit_rate { memo_hits; memo_misses; _ } =
  let total = memo_hits + memo_misses in
  if total = 0 then 0.0 else float_of_int memo_hits /. float_of_int total

let pp_stats ppf s =
  Fmt.pf ppf "%d states, %d hits / %d misses (%.1f%% hit rate), depth %d" s.states
    s.memo_hits s.memo_misses
    (100.0 *. hit_rate s)
    s.max_depth

type domain_stats = { domain_id : int; stats : stats }

type par_stats = {
  domains : domain_stats list;
  distinct_keys : int;
  duplicated_keys : int;
  duplicated_work_pct : float;
  steals : int;
  claim_hits : int;
  claim_misses : int;
  pruned_subtrees : int;
}

let pp_par_stats ppf p =
  Fmt.pf ppf
    "%d domains, %d distinct keys, %d duplicated (%.1f%% of work), %d \
     steals, %d claim hits / %d claim misses, %d pruned:@,"
    (List.length p.domains) p.distinct_keys p.duplicated_keys
    p.duplicated_work_pct p.steals p.claim_hits p.claim_misses
    p.pruned_subtrees;
  List.iter
    (fun d -> Fmt.pf ppf "  domain %d: %a@," d.domain_id pp_stats d.stats)
    p.domains

type progress = { stats : stats; elapsed_s : float; states_per_sec : float }

let pp_progress ppf p =
  Fmt.pf ppf "%d states, %.1f%% hit rate, depth %d, %.1fs elapsed, %.0f states/s"
    p.stats.states
    (100.0 *. hit_rate p.stats)
    p.stats.max_depth p.elapsed_s p.states_per_sec

let default_progress_interval = 50_000

(* ---- out-of-core memo budget ------------------------------------------

   The switch for the third memo backend: when a budget is armed, solves
   route their memo through {!Store.Memo} — an in-RAM tier that spills
   resolved entries to sorted-run segment files once its byte estimate
   passes the budget. [None] (the default) keeps the plain in-RAM
   tables and costs nothing. The process-wide default comes from
   [BLUNTING_MEMO_BUDGET]; per-solve [?memo_budget] arguments override
   it. *)

let parse_memo_budget s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then Error "empty size"
  else
    let mult, ndigits =
      match Char.uppercase_ascii s.[len - 1] with
      | 'K' -> (1024, len - 1)
      | 'M' -> (1024 * 1024, len - 1)
      | 'G' -> (1024 * 1024 * 1024, len - 1)
      | _ -> (1, len)
    in
    match int_of_string_opt (String.sub s 0 ndigits) with
    | Some n when n >= 0 -> Ok (n * mult)
    | _ ->
        Error
          (Printf.sprintf "invalid size %S (bytes, or a K/M/G suffix)" s)

let default_memo_budget =
  ref
    (match Sys.getenv_opt "BLUNTING_MEMO_BUDGET" with
    | None | Some "" -> None
    | Some s -> (
        match parse_memo_budget s with
        | Ok 0 -> None
        | Ok n -> Some n
        | Error e ->
            Log.warn (fun f -> f "BLUNTING_MEMO_BUDGET ignored: %s" e);
            None))

let set_default_memo_budget b =
  default_memo_budget := (match b with Some n when n > 0 -> Some n | _ -> None)

let memo_budget () = !default_memo_budget

(* per-call override beats the process default; <= 0 disables *)
let effective_budget = function
  | Some b -> if b > 0 then Some b else None
  | None -> !default_memo_budget

(* ---- solver instances (shared by both functors) -----------------------

   All mutable solver state lives in an instance, so parallel solves can
   keep per-worker counters separate and merge them afterwards. States
   are keyed by their canonical [G.encode] bytes: probing hashes a flat
   short key instead of walking a deep model state with the polymorphic
   hash (which either stops early and collides, or is told to traverse
   ~500 nodes per probe). The key is encoded into the instance's
   reusable [keybuf] and the memo is probed on the (buffer, length)
   slice — a probe of an already-memoized state allocates nothing at
   all. Nothing here mentions the game, so [Make] and [Make_inplace]
   share the machinery. *)

type mark = In_progress | Value of float

type instance = {
  memo : mark Par.Slice_tbl.t;
  keybuf : Key.buf;
  mutable store : Store.Memo.t option;  (* armed by a memo budget *)
  mutable hits : int;
  mutable misses : int;
  mutable states : int;  (* states memoized with a final Value *)
  mutable max_depth : int;
  mutable prune_cuts : int;  (* subtrees cut by interval pruning *)
  mutable progress_hook : (progress -> unit) option;
  mutable progress_interval : int;
  mutable solve_start : float;
  mutable solve_base_misses : int;  (* misses when the root call began *)
}

let make_instance () =
  {
    memo = Par.Slice_tbl.create ~size:65_536 ();
    keybuf = Key.create ();
    store = None;
    hits = 0;
    misses = 0;
    states = 0;
    max_depth = 0;
    prune_cuts = 0;
    progress_hook = None;
    progress_interval = default_progress_interval;
    solve_start = Obs.Span.now_us ();
    solve_base_misses = 0;
  }

(* Arm the spillable backend on an instance. Entries already memoized in
   RAM migrate into the store (a reused instance keeps its cross-solve
   memoization through the backend switch); [In_progress] marks cannot
   exist outside a running solve, so only final values move. Once armed
   the instance stays on the store until [reset] — mixing backends
   within one memo would split the key space. *)
let arm_store i budget =
  match (i.store, budget) with
  | None, Some b ->
      let st = Store.Memo.create ~budget:b () in
      Par.Slice_tbl.iter i.memo (fun key mark ->
          match mark with
          | Value v -> Store.Memo.resolve st key v
          | In_progress -> ());
      Par.Slice_tbl.clear i.memo;
      i.store <- Some st
  | _ -> ()

let stats_of i =
  { states = i.states; memo_hits = i.hits; memo_misses = i.misses;
    max_depth = i.max_depth }

let progress_of i =
  let elapsed_s = (Obs.Span.now_us () -. i.solve_start) /. 1e6 in
  {
    stats = stats_of i;
    elapsed_s;
    states_per_sec =
      (if elapsed_s > 0.0 then
         float_of_int (i.misses - i.solve_base_misses) /. elapsed_s
       else 0.0);
  }

(* Progress telemetry: long solves (minutes at k >= 3) otherwise give no
   output until they return. The hook fires from inside the recursion,
   every [interval] newly memoized states — so never after [value] has
   returned — alongside an info log on the blunting.mdp source. Worker
   recursions carry no hook, so parallel solves never fire it off the
   calling domain. *)
let progress_tick i =
  if i.misses mod i.progress_interval = 0 then begin
    let p = progress_of i in
    Log.info (fun f -> f "progress: %a" pp_progress p);
    match i.progress_hook with None -> () | Some hook -> hook p
  end

let reset_instance i =
  Par.Slice_tbl.clear i.memo;
  (match i.store with Some st -> Store.Memo.close st | None -> ());
  i.store <- None;
  i.hits <- 0;
  i.misses <- 0;
  i.states <- 0;
  i.max_depth <- 0;
  i.prune_cuts <- 0;
  (* re-arm the per-solve telemetry too: a reused instance must not
     compute its second solve's states/sec against the first solve's
     start time or cumulative miss count *)
  i.solve_start <- Obs.Span.now_us ();
  i.solve_base_misses <- 0

let publish_delta (before : stats) (after : stats) =
  Obs.Metrics.add M.memo_hits (after.memo_hits - before.memo_hits);
  Obs.Metrics.add M.memo_misses (after.memo_misses - before.memo_misses);
  Obs.Metrics.add M.states (after.states - before.states);
  Obs.Metrics.max_gauge M.depth (float_of_int after.max_depth)

module Make (G : GAME) = struct
  (* The module-level instance behind the historical [value]/[stats] API. *)
  let default = make_instance ()

  let set_progress ?(interval_states = default_progress_interval) hook =
    default.progress_interval <- max 1 interval_states;
    default.progress_hook <- hook

  let stats () = stats_of default

  (* ---- admissible value bounds ---------------------------------------

     Interval branch-and-bound needs an a-priori interval [lo, hi]
     containing every reachable state's value. Game values here are
     probabilities, so (0, 1) is always admissible; Theorem 4.2 supplies
     sharper instance bounds for the weakener games (Prob[O_a] below,
     the blunting bound above). Soundness additionally needs [hi] to
     bound the COMPUTED (floating-point) values, not just the exact
     ones: that holds whenever the fold that produces a value cannot
     round above [hi] — in particular for [hi = 1] with power-of-two
     chance probabilities (exact scaling, and round-to-nearest is
     monotone with 1.0 representable), which covers every model game.
     [prune_audit] re-evaluates every would-be cut and raises
     [Prune_unsound] if the cut would have changed the parent's max —
     the fuzz oracle's mode. *)
  let bound_lo = ref 0.0
  let bound_hi = ref 1.0
  let prune_audit = ref false

  let set_bounds ~lo ~hi =
    if not (lo <= hi) then invalid_arg "Mdp.Solver.set_bounds: need lo <= hi";
    bound_lo := lo;
    bound_hi := hi

  let bounds () = (!bound_lo, !bound_hi)
  let set_prune_audit b = prune_audit := b

  (* The expectimax fold over one state's moves, shared verbatim between
     the sequential recursion and the work-stealing shared-memo recursion
     so both compute bit-identical values: Float.max over moves starting
     at -inf, left-to-right [acc +. (p *. v)] over chance branches
     starting at 0.

     With [prune] two admissible cuts apply, neither of which can change
     the value actually returned (so pruned and unpruned solves agree
     bitwise, and only full, exact values are ever memoized):
     - max cut: once [acc >= hi], every remaining child value is <= hi
       <= acc, so the rest of the max-fold is the identity;
     - chance cut: before each chance child, bound the rest of the fold
       by substituting [hi] for every unevaluated child — each +./*. is
       monotone under round-to-nearest, so the substituted fold is >=
       the computed one. If even that bound is <= the parent's [acc],
       the chance value cannot win the max; the partial sum (<= the
       bound) is returned and [Float.max acc partial = acc] as with the
       full value. Chance values are transition values, never memoized,
       so returning the partial sum is invisible outside the cut. *)
  let fold_value ~prune ~on_prune ~child depth s ms =
    let hi = !bound_hi in
    let audit = !prune_audit in
    let chance acc dist =
      let rec full partial = function
        | [] -> partial
        | (p, s') :: rest -> full (partial +. (p *. child (depth + 1) s')) rest
      in
      let upper partial rest =
        List.fold_left (fun u (p, _) -> u +. (p *. hi)) partial rest
      in
      let rec go partial = function
        | [] -> partial
        | (p, s') :: rest as pending ->
            if prune && upper partial pending <= acc then begin
              on_prune ();
              if audit then begin
                let v = full partial pending in
                if Float.max acc v <> acc then
                  raise
                    (Prune_unsound
                       (Fmt.str
                          "chance cut at depth %d: bound %.17g <= acc %.17g \
                           but full value %.17g beats it"
                          depth (upper partial pending) acc v));
                v
              end
              else partial
            end
            else go (partial +. (p *. child (depth + 1) s')) rest
      in
      go 0.0 dist
    in
    let rec full acc = function
      | [] -> acc
      | m :: rest ->
          let v =
            match G.apply s m with
            | G.Det s' -> child (depth + 1) s'
            | G.Chance dist -> chance acc dist
          in
          full (Float.max acc v) rest
    in
    let rec go acc = function
      | [] -> acc
      | m :: rest as pending ->
          if prune && acc >= hi then begin
            on_prune ();
            if audit then begin
              let v = full acc pending in
              if v <> acc then
                raise
                  (Prune_unsound
                     (Fmt.str
                        "max cut at depth %d: acc %.17g >= hi %.17g but full \
                         fold reaches %.17g"
                        depth acc hi v));
              v
            end
            else acc
          end
          else
            let v =
              match G.apply s m with
              | G.Det s' -> child (depth + 1) s'
              | G.Chance dist -> chance acc dist
            in
            go (Float.max acc v) rest
    in
    go neg_infinity ms

  (* The hot path. The state is encoded into the instance's reusable
     buffer and the memo probed on the slice: a hit touches no allocator.
     A miss installs [In_progress] (copying the key once, inside the
     table) and later overwrites the SAME entry with the value — entries
     survive table growth (growth only re-buckets them), so no second
     lookup. The buffer is dead the moment the probe returns; children
     clobber it freely.

     With a memo budget armed ([i.store]), the probe goes through
     {!Store.Memo}'s find-or-claim protocol instead (owner 0; [`Busy 0]
     is the sequential re-entry, i.e. a cycle). The claim/resolve
     discipline mirrors the [In_progress]/[Value] overwrite exactly, so
     hit/miss/state counts — and, the memo holding only fully-evaluated
     exact values, every computed value — are bit-identical to the
     in-RAM solve. The unbudgeted path is untouched: one [None] check
     per probe. *)
  let rec value_at ~prune i depth s =
    match i.store with
    | None -> ram_value ~prune i depth s
    | Some st -> store_value ~prune i st depth s

  and ram_value ~prune i depth s =
    if depth > i.max_depth then i.max_depth <- depth;
    let b = i.keybuf in
    Key.reset b;
    G.encode_into s b;
    let e =
      Par.Slice_tbl.probe_slice i.memo (Key.data b) ~len:(Key.length b)
        ~default:In_progress
    in
    if Par.Slice_tbl.last_was_new i.memo then begin
      i.misses <- i.misses + 1;
      (* the enabled () guard keeps the key hash off the disabled path *)
      if Obs.Ring.enabled () then
        Obs.Ring.record Obs.Ring.Solver_expand e.Par.Slice_tbl.hash depth;
      progress_tick i;
      let v =
        match G.moves s with
        | [] ->
            if Obs.Ring.enabled () then
              Obs.Ring.record Obs.Ring.Solver_terminal e.Par.Slice_tbl.hash
                depth;
            G.terminal_value s
        | ms ->
            fold_value ~prune
              ~on_prune:(fun () ->
                i.prune_cuts <- i.prune_cuts + 1;
                if Obs.Ring.enabled () then
                  Obs.Ring.record Obs.Ring.Solver_prune e.Par.Slice_tbl.hash
                    depth)
              ~child:(fun d s' -> value_at ~prune i d s')
              depth s ms
      in
      e.Par.Slice_tbl.value <- Value v;
      i.states <- i.states + 1;
      v
    end
    else
      match e.Par.Slice_tbl.value with
      | Value v ->
          i.hits <- i.hits + 1;
          if Obs.Ring.enabled () then
            Obs.Ring.record Obs.Ring.Solver_hit e.Par.Slice_tbl.hash depth;
          v
      | In_progress -> raise Cyclic

  and store_value ~prune i st depth s =
    if depth > i.max_depth then i.max_depth <- depth;
    let b = i.keybuf in
    Key.reset b;
    G.encode_into s b;
    match
      Store.Memo.find_or_claim_slice st (Key.data b) ~len:(Key.length b)
        ~owner:0
    with
    | `Value v ->
        i.hits <- i.hits + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_hit
            (Par.Slice_tbl.hash_slice (Key.data b) (Key.length b))
            depth;
        v
    | `Busy _ -> raise Cyclic
    | `Claimed key ->
        i.misses <- i.misses + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_expand
            (Par.Slice_tbl.hash_string key)
            depth;
        progress_tick i;
        let v =
          match G.moves s with
          | [] ->
              if Obs.Ring.enabled () then
                Obs.Ring.record Obs.Ring.Solver_terminal
                  (Par.Slice_tbl.hash_string key)
                  depth;
              G.terminal_value s
          | ms ->
              fold_value ~prune
                ~on_prune:(fun () ->
                  i.prune_cuts <- i.prune_cuts + 1;
                  if Obs.Ring.enabled () then
                    Obs.Ring.record Obs.Ring.Solver_prune
                      (Par.Slice_tbl.hash_string key)
                      depth)
                ~child:(fun d s' -> value_at ~prune i d s')
                depth s ms
        in
        Store.Memo.resolve st key v;
        i.states <- i.states + 1;
        v

  let transition_value i depth = function
    | G.Det s -> value_at ~prune:false i (depth + 1) s
    | G.Chance dist ->
        List.fold_left
          (fun acc (p, s) -> acc +. (p *. value_at ~prune:false i (depth + 1) s))
          0.0 dist

  (* The cross-domain telemetry of the most recent [value_par] on this
     instance. Computed eagerly at the end of the parallel region (the
     per-worker counters and the shared table's resolved count make it
     O(workers), unlike the old per-domain-table key walk) and cleared at
     the start of EVERY root solve — a reused solver must never report a
     previous run's telemetry after a sequential solve overwrote the
     work it describes. *)
  let last_par : par_stats option ref = ref None

  let last_par_stats () = !last_par

  (* Root-call bracketing: arm the per-solve telemetry baselines, then land
     the instance deltas in the process-wide registry once, at the end. *)
  let start_solve i =
    last_par := None;
    i.solve_start <- Obs.Span.now_us ();
    i.solve_base_misses <- i.misses

  let root_call i span_name f =
    start_solve i;
    let before = stats_of i in
    let pruned_before = i.prune_cuts in
    (* tag allocations in the solve as expansion work for Obs.Memprof;
       the parallel workers refine the tag (steal/claim-wait) themselves *)
    let prev_phase = Obs.Memprof.phase () in
    Obs.Memprof.set_phase (Some Obs.Memprof.Expand);
    let finish () =
      Obs.Memprof.set_phase prev_phase;
      publish_delta before (stats_of i);
      Obs.Metrics.add M.pruned (i.prune_cuts - pruned_before)
    in
    match Obs.Span.time ~observe:M.solve_seconds span_name f with
    | v, _ ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let value ?memo_budget ?(prune = false) s =
    arm_store default (effective_budget memo_budget);
    root_call default "mdp.value" (fun () -> value_at ~prune default 0 s)

  (* Live out-of-core telemetry: cumulative since the store was armed
     (parallel and sequential budgeted solves share the instance store),
     [None] while no budget has armed it. *)
  let store_stats () = Option.map Store.Memo.stats default.store

  let best_move s =
    match G.moves s with
    | [] -> None
    | ms ->
        root_call default "mdp.best_move" @@ fun () ->
        let scored =
          List.map (fun m -> (transition_value default 0 (G.apply s m), m)) ms
        in
        Log.debug (fun f ->
            f "best_move: %d candidates: %a" (List.length scored)
              (Fmt.list ~sep:Fmt.comma (fun ppf (v, m) ->
                   Fmt.pf ppf "%a=%.6f" G.pp_move m v))
              scored);
        let best =
          List.fold_left
            (fun (bv, bm) (v, m) -> if v > bv then (v, m) else (bv, bm))
            (List.hd scored |> fun (v, m) -> (v, m))
            (List.tl scored)
        in
        Log.debug (fun f ->
            f "best_move: chose %a (value %.6f)" G.pp_move (snd best) (fst best));
        Some (snd best)

  let explored () = default.states
  let pruned_subtrees () = default.prune_cuts

  let reset () =
    last_par := None;
    reset_instance default

  (* ---- parallel solving ------------------------------------------------

     Work-stealing over a sharded shared memo. The game tree is expanded
     a few plies (without evaluating) to a frontier of distinct subtree
     roots; the frontier-leaf indices are dealt round-robin into one
     Chase–Lev deque per worker, and [jobs] workers drain their own deque
     LIFO, stealing the oldest leaf from a victim when empty. Every state
     evaluation goes through one {!Par.Sharded_tbl} keyed on canonical
     encode strings: [find_or_claim] guarantees exactly one worker
     evaluates each state (so, unlike the old per-domain-table scheme,
     no work is duplicated — [distinct_keys] equals the sequential state
     count and [duplicated_keys] is 0 by construction), and the claim
     protocol doubles as cycle detection (re-entering your own claim is
     exactly the sequential [In_progress] re-entry).

     A worker probing another worker's live claim does not idle: it
     HELPS, evaluating the claimed state's children through the shared
     table (the same work the owner needs, each child again claimed by
     exactly one worker), then spins briefly for the owner's exact
     value. Waits only ever follow game-DAG edges downward — a worker
     holding a claim is executing inside that state's subtree, so every
     wait chain descends strictly and bottoms out at a worker that is
     not waiting; on a cyclic game some worker re-enters its own claim
     and [Cyclic] propagates, as sequentially.

     Values are bit-identical to the sequential solve at every job count
     because each state is evaluated exactly once, by [fold_value]'s
     sequential arithmetic, from child values that are themselves unique;
     induction over the (acyclic) state graph closes the argument. *)

  type pre =
    | R_term of float
    | R_state of G.state * int  (* frontier state at its tree depth *)
    | R_max of pre list
    | R_exp of (float * pre) list

  type plan =
    | P_term of float
    | P_leaf of int  (* index into the frontier array *)
    | P_max of plan list
    | P_exp of (float * plan) list

  let rec expand depth limit s =
    match G.moves s with
    | [] -> R_term (G.terminal_value s)
    | ms ->
        if depth >= limit then R_state (s, depth)
        else
          R_max
            (List.map
               (fun m ->
                 match G.apply s m with
                 | G.Det s' -> expand (depth + 1) limit s'
                 | G.Chance dist ->
                     R_exp
                       (List.map
                          (fun (p, s') -> (p, expand (depth + 1) limit s'))
                          dist))
               ms)

  let rec count_states = function
    | R_term _ -> 0
    | R_state _ -> 1
    | R_max ps -> List.fold_left (fun a p -> a + count_states p) 0 ps
    | R_exp dist -> List.fold_left (fun a (_, p) -> a + count_states p) 0 dist

  (* Deduplicate frontier states by canonical key (several paths reach the
     same state) and compile the prefix into an index-based plan. *)
  let compile pre =
    let index : (string, int) Hashtbl.t = Hashtbl.create 256 in
    let leaves = ref [] in
    let n = ref 0 in
    let rec go = function
      | R_term v -> P_term v
      | R_state (s, depth) ->
          let key = G.encode s in
          let i =
            match Hashtbl.find_opt index key with
            | Some i -> i
            | None ->
                let i = !n in
                Hashtbl.add index key i;
                leaves := (s, depth) :: !leaves;
                incr n;
                i
          in
          P_leaf i
      | R_max ps -> P_max (List.map go ps)
      | R_exp dist -> P_exp (List.map (fun (p, q) -> (p, go q)) dist)
    in
    let plan = go pre in
    (plan, Array.of_list (List.rev !leaves))

  let rec eval_plan values = function
    | P_term v -> v
    | P_leaf i -> values.(i)
    | P_max ps ->
        List.fold_left (fun acc p -> Float.max acc (eval_plan values p)) neg_infinity ps
    | P_exp dist ->
        List.fold_left
          (fun acc (p, pl) -> acc +. (p *. eval_plan values pl))
          0.0 dist

  let frontier ~jobs s =
    (* deepen until the frontier offers real parallel slack (or stops
       growing — tiny games go sequential via the plan alone) *)
    let target = jobs * 8 in
    let rec go limit prev =
      let pre = expand 0 limit s in
      let c = count_states pre in
      if c >= target || c <= prev || limit >= 16 then pre else go (limit + 2) c
    in
    go 2 (-1)

  (* Per-worker counters. A worker is a logical id in [0, jobs); the pool
     domain that runs its steal loop records its runtime domain id at
     loop entry (1:1 per solve — a domain may run several workers'
     loops, but only sequentially, after the previous loop finished). *)
  type worker = {
    wid : int;
    w_buf : Key.buf;  (* per-worker encode buffer: probes allocate nothing *)
    mutable w_domain : int;
    mutable w_hits : int;
    mutable w_misses : int;
    mutable w_depth : int;
    mutable w_claim_misses : int;
    mutable w_steals : int;
    mutable w_pruned : int;
  }

  (* Internal unwind used when another worker already failed: the real
     exception is kept aside and re-raised by [value_par]; workers seeing
     the abort flag just leave quietly (their claims stay unresolved,
     which is fine — the whole solve is being thrown away). Without it, a
     worker spin-waiting on a claim whose owner died (say, of [Cyclic])
     would wait forever. *)
  exception Abort

  (* The shared-memo surface the workers run against, abstracted over
     the two backends implementing the same exactly-once claim protocol:
     the in-RAM {!Par.Sharded_tbl} and, when a memo budget is armed, the
     spillable {!Store.Memo}. A record of closures instead of a functor
     keeps the worker recursion single-copy; the indirect call is noise
     next to the probe it wraps. *)
  type shared_memo = {
    sm_probe :
      Key.buf ->
      owner:int ->
      [ `Value of float | `Busy of int | `Claimed of string ];
    sm_resolve : string -> float -> unit;
    sm_get : string -> float option;
  }

  (* Worker hot path: encode into the worker's private buffer, probe the
     shared table on the slice. [`Value]/[`Busy] probes allocate nothing;
     only a fresh claim materializes the key (inside the table, which
     hands it back — the buffer will be reused by the children before
     [resolve] needs the key). Ring fingerprints are recomputed from the
     slice only when tracing is on. *)
  let rec shared_value ~abort ~prune sm w depth s =
    if depth > w.w_depth then w.w_depth <- depth;
    let b = w.w_buf in
    Key.reset b;
    G.encode_into s b;
    match sm.sm_probe b ~owner:w.wid with
    | `Value v ->
        w.w_hits <- w.w_hits + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Claim_hit
            (Par.Slice_tbl.hash_slice (Key.data b) (Key.length b))
            depth;
        v
    | `Busy o when o = w.wid -> raise Cyclic
    | `Busy o ->
        w.w_claim_misses <- w.w_claim_misses + 1;
        if Obs.Ring.enabled () then Obs.Ring.record Obs.Ring.Claim_miss o depth;
        (* the await needs the key after the buffer has been clobbered *)
        let key = Key.contents b in
        help ~abort ~prune sm w depth s key
    | `Claimed key ->
        w.w_misses <- w.w_misses + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_expand
            (Par.Slice_tbl.hash_string key)
            depth;
        let v =
          match G.moves s with
          | [] ->
              if Obs.Ring.enabled () then
                Obs.Ring.record Obs.Ring.Solver_terminal
                  (Par.Slice_tbl.hash_string key)
                  depth;
              G.terminal_value s
          | ms ->
              fold_value ~prune
                ~on_prune:(fun () ->
                  w.w_pruned <- w.w_pruned + 1;
                  if Obs.Ring.enabled () then
                    Obs.Ring.record Obs.Ring.Solver_prune
                      (Par.Slice_tbl.hash_string key)
                      depth)
                ~child:(fun d s' -> shared_value ~abort ~prune sm w d s')
                depth s ms
        in
        sm.sm_resolve key v;
        v

  (* Another worker owns the claim on [s]. Evaluate [s]'s children
     through the shared table — the claim protocol hands each to exactly
     one worker, so this is the owner's own pending work, not a
     duplicate — then wait for the owner's exact value. Note the helper
     never computes a value for [s] itself: [s]'s value must come from
     the owner's single [fold_value], or prune-cut folds could disagree
     with it. *)
  and help ~abort ~prune sm w depth s key =
    (* the whole helping protocol — evaluating the busy state's children
       plus the await spin — is claim-miss overhead; tag its allocations
       so the profiler can separate it from first-visit expansion *)
    let prev_phase = Obs.Memprof.phase () in
    Obs.Memprof.set_phase (Some Obs.Memprof.Claim_wait);
    (match G.moves s with
    | [] -> ()
    | ms ->
        List.iter
          (fun m ->
            match G.apply s m with
            | G.Det s' ->
                ignore (shared_value ~abort ~prune sm w (depth + 1) s')
            | G.Chance dist ->
                List.iter
                  (fun (_, s') ->
                    ignore (shared_value ~abort ~prune sm w (depth + 1) s'))
                  dist)
          ms);
    let rec await probes =
      match sm.sm_get key with
      | Some v -> v
      | None ->
          if Atomic.get abort then raise Abort;
          (* short spins first: with a core per domain the owner is
             folding over children that are all resolved now, so the
             wait is brief. If the value still hasn't appeared after
             ~256 probes the owner is likely preempted (more domains
             than cores) — sleep so it can actually run; cpu_relax
             never releases the core and would burn the owner's whole
             timeslice. *)
          if probes < 256 then
            for _ = 1 to 32 do
              Domain.cpu_relax ()
            done
          else Unix.sleepf 0.0002;
          await (probes + 1)
    in
    let v = await 0 in
    Obs.Memprof.set_phase prev_phase;
    v

  let merge_by_domain workers =
    let tbl : (int, stats) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun w ->
        let s =
          Option.value
            ~default:{ states = 0; memo_hits = 0; memo_misses = 0; max_depth = 0 }
            (Hashtbl.find_opt tbl w.w_domain)
        in
        Hashtbl.replace tbl w.w_domain
          {
            states = s.states + w.w_misses;
            memo_hits = s.memo_hits + w.w_hits;
            memo_misses = s.memo_misses + w.w_misses;
            max_depth = max s.max_depth w.w_depth;
          })
      workers;
    Hashtbl.fold (fun domain_id stats acc -> { domain_id; stats } :: acc) tbl []
    |> List.sort (fun a b -> compare a.domain_id b.domain_id)

  let value_par ?pool ?memo_budget ?(prune = false) ~jobs s =
    if jobs <= 1 then value ?memo_budget ~prune s
    else
      root_call default "mdp.value_par" @@ fun () ->
      arm_store default (effective_budget memo_budget);
      let plan, leaves = compile (frontier ~jobs s) in
      let nleaves = Array.length leaves in
      Log.info (fun f -> f "value_par: %d frontier states on %d jobs" nleaves jobs);
      if nleaves = 0 then eval_plan [||] plan
      else if nleaves < jobs then begin
        (* Frontier smaller than the worker count: the game is too small
           to occupy the pool, and spawning domains + claim traffic costs
           more than the whole solve (the sub-1x PAR rows on tiny games).
           Solve sequentially on the calling instance — bit-identical by
           the same argument as the worker path — and synthesize the
           telemetry honestly from the instance delta: one domain, one
           miss per distinct state, nothing stolen or claimed. *)
        Log.info (fun f ->
            f "value_par: frontier %d < jobs %d, sequential fallback" nleaves
              jobs);
        let before = stats_of default in
        let pruned_before = default.prune_cuts in
        let v = value_at ~prune default 0 s in
        let after = stats_of default in
        let delta =
          {
            states = after.states - before.states;
            memo_hits = after.memo_hits - before.memo_hits;
            memo_misses = after.memo_misses - before.memo_misses;
            max_depth = after.max_depth;
          }
        in
        last_par :=
          Some
            {
              domains =
                [ { domain_id = (Domain.self () :> int); stats = delta } ];
              distinct_keys = delta.memo_misses;
              duplicated_keys = 0;
              duplicated_work_pct = 0.0;
              steals = 0;
              claim_hits = 0;
              claim_misses = 0;
              pruned_subtrees = default.prune_cuts - pruned_before;
            };
        v
      end
      else begin
        (* Workers share one exactly-once memo. Unbudgeted solves get a
           fresh in-RAM [Par.Sharded_tbl], exactly as before; a budgeted
           solve runs over the instance's persistent spillable store, and
           the distinct-state count is the resolved-count delta across
           the region (the store may carry entries from earlier solves). *)
        let sm, distinct_after =
          match default.store with
          | Some st ->
              let base = Store.Memo.resolved st in
              ( {
                  sm_probe =
                    (fun b ~owner ->
                      Store.Memo.find_or_claim_slice st (Key.data b)
                        ~len:(Key.length b) ~owner);
                  sm_resolve = Store.Memo.resolve st;
                  sm_get = Store.Memo.get st;
                },
                fun () -> Store.Memo.resolved st - base )
          | None ->
              let tbl : float Par.Sharded_tbl.t = Par.Sharded_tbl.create () in
              ( {
                  sm_probe =
                    (fun b ~owner ->
                      Par.Sharded_tbl.find_or_claim_slice tbl (Key.data b)
                        ~len:(Key.length b) ~owner);
                  sm_resolve = Par.Sharded_tbl.resolve tbl;
                  sm_get = (fun k -> Par.Sharded_tbl.get tbl k);
                },
                fun () -> Par.Sharded_tbl.resolved tbl )
        in
        let deques = Array.init jobs (fun _ -> Par.Deque.create ()) in
        Array.iteri (fun i _ -> Par.Deque.push deques.(i mod jobs) i) leaves;
        let workers =
          Array.init jobs (fun wid ->
              {
                wid;
                w_buf = Key.create ();
                w_domain = -1;
                w_hits = 0;
                w_misses = 0;
                w_depth = 0;
                w_claim_misses = 0;
                w_steals = 0;
                w_pruned = 0;
              })
        in
        (* leaf values are published to the caller by the pool region's
           join; each index is written exactly once (deque items are
           handed out exactly once), so NaN survives only on a bug *)
        let values = Array.make nleaves Float.nan in
        let abort = Atomic.make false in
        let first_error : exn option Atomic.t = Atomic.make None in
        let eval_leaf w i =
          Obs.Memprof.set_phase (Some Obs.Memprof.Expand);
          let s, depth = leaves.(i) in
          values.(i) <- shared_value ~abort ~prune sm w depth s
        in
        let worker_loop wid =
          let w = workers.(wid) in
          w.w_domain <- (Domain.self () :> int);
          Obs.Memprof.set_phase (Some Obs.Memprof.Expand);
          (* drain the local deque LIFO; when empty, sweep the other
             deques for the oldest leaf. Leaves are only pushed before
             the region starts, so a sweep seeing every deque [Empty]
             means no work will ever appear again — but a [Contended]
             verdict is inconclusive (the CAS lost to another thief),
             so the sweep restarts after a backoff. *)
          let rec drain () =
            match Par.Deque.pop deques.(wid) with
            | Some i ->
                eval_leaf w i;
                drain ()
            | None ->
                Obs.Memprof.set_phase (Some Obs.Memprof.Steal);
                hunt 0 false
          and hunt k contended =
            if Atomic.get abort then ()
            else if k >= jobs - 1 then begin
              if contended then begin
                Domain.cpu_relax ();
                hunt 0 false
              end
            end
            else
              let victim = (wid + 1 + k) mod jobs in
              match Par.Deque.steal deques.(victim) with
              | Par.Deque.Stolen i ->
                  w.w_steals <- w.w_steals + 1;
                  if Obs.Ring.enabled () then
                    Obs.Ring.record Obs.Ring.Steal victim i;
                  eval_leaf w i;
                  drain ()
              | Par.Deque.Contended -> hunt (k + 1) true
              | Par.Deque.Empty -> hunt (k + 1) contended
          in
          (* a worker that fails publishes the exception and trips the
             abort flag so the others stop waiting on its claims; workers
             themselves always return normally, and the caller re-raises
             the first real error after the region joins *)
          try drain () with
          | Abort -> ()
          | e ->
              ignore (Atomic.compare_and_set first_error None (Some e));
              Atomic.set abort true
        in
        (match pool with
        | Some pool -> Par.Pool.scatter pool ~n:jobs worker_loop
        | None ->
            Par.Pool.with_pool ~jobs (fun pool ->
                Par.Pool.scatter pool ~n:jobs worker_loop));
        (match Atomic.get first_error with
        | Some e -> raise e
        | None -> ());
        (* Deterministic merge of the per-worker counters into the calling
           instance. With the shared memo every state is evaluated exactly
           once, so the summed misses equal the distinct-state count and
           [stats ()] reports the same explored figure as a sequential
           solve of the same root. *)
        let distinct = distinct_after () in
        let total = ref 0 in
        Array.iter
          (fun w ->
            total := !total + w.w_misses;
            default.hits <- default.hits + w.w_hits;
            default.misses <- default.misses + w.w_misses;
            default.max_depth <- max default.max_depth w.w_depth;
            default.prune_cuts <- default.prune_cuts + w.w_pruned)
          workers;
        default.states <- default.states + distinct;
        let steals =
          Array.fold_left (fun a w -> a + w.w_steals) 0 workers
        in
        let claim_hits = Array.fold_left (fun a w -> a + w.w_hits) 0 workers in
        let claim_misses =
          Array.fold_left (fun a w -> a + w.w_claim_misses) 0 workers
        in
        let pruned_subtrees =
          Array.fold_left (fun a w -> a + w.w_pruned) 0 workers
        in
        Obs.Metrics.add M.steals steals;
        Obs.Metrics.add M.claim_misses claim_misses;
        last_par :=
          Some
            {
              domains = merge_by_domain workers;
              distinct_keys = distinct;
              (* exactly-once evaluation: no key is ever claimed twice *)
              duplicated_keys = 0;
              duplicated_work_pct =
                (if !total = 0 then 0.0
                 else
                   100.0
                   *. float_of_int (!total - distinct)
                   /. float_of_int !total);
              steals;
              claim_hits;
              claim_misses;
              pruned_subtrees;
            };
        eval_plan values plan
      end
end

(* ---- in-place solving ---------------------------------------------------

   The sequential recursion over a GAME_INPLACE: the entire DFS runs on
   ONE working state. Exploring a child is do-move / recurse / restore —
   the per-edge state copy of the pure solver (a fresh record tree per
   [G.apply]) disappears, and with the slice-probing memo the whole
   expansion loop allocates only the per-expansion move closure and the
   memo entry of each distinct state.

   Values are bit-identical to [Make] over the pure presentation of the
   same game provided the two presentations agree move-for-move: same
   move order (ascending ids here, so the pure [moves] list must be
   ascending), same branch order and probabilities, and byte-identical
   [encode_into]. The folds below mirror [fold_value] line for line —
   Float.max from neg_infinity over moves, left-to-right
   [partial +. (p *. v)] from 0.0 over chance branches, and the same two
   interval cuts in the same positions — so induction over the shared
   acyclic state DAG gives bitwise equality. *)
module Make_inplace (G : GAME_INPLACE) = struct
  let default = make_instance ()

  let set_progress ?(interval_states = default_progress_interval) hook =
    default.progress_interval <- max 1 interval_states;
    default.progress_hook <- hook

  let stats () = stats_of default

  let bound_lo = ref 0.0
  let bound_hi = ref 1.0
  let prune_audit = ref false

  let set_bounds ~lo ~hi =
    if not (lo <= hi) then
      invalid_arg "Mdp.Solver.set_bounds: need lo <= hi";
    bound_lo := lo;
    bound_hi := hi

  let bounds () = (!bound_lo, !bound_hi)
  let set_prune_audit b = prune_audit := b

  (* index of the lowest set bit: moves fold in ascending id order *)
  let rec lowest m i = if m land 1 = 1 then i else lowest (m lsr 1) (i + 1)

  (* same backend dispatch as [Make.value_at]: the budgeted path swaps
     the [In_progress]/[Value] overwrite for the store's claim/resolve,
     which is the same exactly-once discipline, so counts and values are
     bit-identical; the unbudgeted path pays one [None] check *)
  let rec value_at ~prune i depth s =
    match i.store with
    | None -> ram_value ~prune i depth s
    | Some st -> store_value ~prune i st depth s

  and ram_value ~prune i depth s =
    if depth > i.max_depth then i.max_depth <- depth;
    let b = i.keybuf in
    Key.reset b;
    G.encode_into s b;
    let e =
      Par.Slice_tbl.probe_slice i.memo (Key.data b) ~len:(Key.length b)
        ~default:In_progress
    in
    if Par.Slice_tbl.last_was_new i.memo then begin
      i.misses <- i.misses + 1;
      if Obs.Ring.enabled () then
        Obs.Ring.record Obs.Ring.Solver_expand e.Par.Slice_tbl.hash depth;
      progress_tick i;
      let mask = G.moves s in
      let v =
        if mask = 0 then begin
          if Obs.Ring.enabled () then
            Obs.Ring.record Obs.Ring.Solver_terminal e.Par.Slice_tbl.hash
              depth;
          G.terminal_value s
        end
        else fold_moves ~prune i depth s mask e.Par.Slice_tbl.hash
      in
      e.Par.Slice_tbl.value <- Value v;
      i.states <- i.states + 1;
      v
    end
    else
      match e.Par.Slice_tbl.value with
      | Value v ->
          i.hits <- i.hits + 1;
          if Obs.Ring.enabled () then
            Obs.Ring.record Obs.Ring.Solver_hit e.Par.Slice_tbl.hash depth;
          v
      | In_progress -> raise Cyclic

  and store_value ~prune i st depth s =
    if depth > i.max_depth then i.max_depth <- depth;
    let b = i.keybuf in
    Key.reset b;
    G.encode_into s b;
    match
      Store.Memo.find_or_claim_slice st (Key.data b) ~len:(Key.length b)
        ~owner:0
    with
    | `Value v ->
        i.hits <- i.hits + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_hit
            (Par.Slice_tbl.hash_slice (Key.data b) (Key.length b))
            depth;
        v
    | `Busy _ -> raise Cyclic
    | `Claimed key ->
        i.misses <- i.misses + 1;
        let h = Par.Slice_tbl.hash_string key in
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_expand h depth;
        progress_tick i;
        let mask = G.moves s in
        let v =
          if mask = 0 then begin
            if Obs.Ring.enabled () then
              Obs.Ring.record Obs.Ring.Solver_terminal h depth;
            G.terminal_value s
          end
          else fold_moves ~prune i depth s mask h
        in
        Store.Memo.resolve st key v;
        i.states <- i.states + 1;
        v

  (* do-move / recurse / restore: the only state "copy" is the journal
     entries the move itself writes *)
  and branch_value ~prune i depth s m j =
    let u = G.checkpoint s in
    G.apply s ~move:m ~branch:j;
    let v = value_at ~prune i (depth + 1) s in
    G.restore s u;
    v

  (* mirror of [fold_value]'s [chance]: same fold direction, same cut,
     same audit re-evaluation *)
  and chance_value ~prune i depth s m n acc h =
    let hi = !bound_hi in
    let audit = !prune_audit in
    let rec full partial j =
      if j >= n then partial
      else
        let p = G.prob s m j in
        full (partial +. (p *. branch_value ~prune i depth s m j)) (j + 1)
    in
    let upper partial j =
      let u = ref partial in
      for l = j to n - 1 do
        u := !u +. (G.prob s m l *. hi)
      done;
      !u
    in
    let rec go partial j =
      if j >= n then partial
      else if prune && upper partial j <= acc then begin
        i.prune_cuts <- i.prune_cuts + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_prune h depth;
        if audit then begin
          let v = full partial j in
          if Float.max acc v <> acc then
            raise
              (Prune_unsound
                 (Fmt.str
                    "chance cut at depth %d: bound %.17g <= acc %.17g but \
                     full value %.17g beats it"
                    depth (upper partial j) acc v));
          v
        end
        else partial
      end
      else
        let p = G.prob s m j in
        go (partial +. (p *. branch_value ~prune i depth s m j)) (j + 1)
    in
    go 0.0 0

  and fold_moves ~prune i depth s mask0 h =
    let hi = !bound_hi in
    let audit = !prune_audit in
    let move_value acc m =
      match G.branches s m with
      | 0 -> branch_value ~prune i depth s m 0
      | n -> chance_value ~prune i depth s m n acc h
    in
    let rec full acc mask =
      if mask = 0 then acc
      else
        let m = lowest mask 0 in
        let v = move_value acc m in
        full (Float.max acc v) (mask land (mask - 1))
    in
    let rec go acc mask =
      if mask = 0 then acc
      else if prune && acc >= hi then begin
        i.prune_cuts <- i.prune_cuts + 1;
        if Obs.Ring.enabled () then
          Obs.Ring.record Obs.Ring.Solver_prune h depth;
        if audit then begin
          let v = full acc mask in
          if v <> acc then
            raise
              (Prune_unsound
                 (Fmt.str
                    "max cut at depth %d: acc %.17g >= hi %.17g but full \
                     fold reaches %.17g"
                    depth acc hi v));
          v
        end
        else acc
      end
      else
        let m = lowest mask 0 in
        let v = move_value acc m in
        go (Float.max acc v) (mask land (mask - 1))
    in
    go neg_infinity mask0

  let value ?memo_budget ?(prune = false) s =
    arm_store default (effective_budget memo_budget);
    default.solve_start <- Obs.Span.now_us ();
    default.solve_base_misses <- default.misses;
    let before = stats_of default in
    let pruned_before = default.prune_cuts in
    let prev_phase = Obs.Memprof.phase () in
    Obs.Memprof.set_phase (Some Obs.Memprof.Expand);
    let finish () =
      Obs.Memprof.set_phase prev_phase;
      publish_delta before (stats_of default);
      Obs.Metrics.add M.pruned (default.prune_cuts - pruned_before)
    in
    match
      Obs.Span.time ~observe:M.solve_seconds "mdp.value" (fun () ->
          value_at ~prune default 0 s)
    with
    | v, _ ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let store_stats () = Option.map Store.Memo.stats default.store
  let explored () = default.states
  let pruned_subtrees () = default.prune_cuts
  let reset () = reset_instance default
end
