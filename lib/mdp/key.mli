(** Combinators for canonical state keys ({!Solver.GAME.encode}).

    The solver memoizes on the byte string produced by [encode], so an
    encoder must be injective on reachable states: equal states must
    produce equal keys and distinct states distinct keys. These
    combinators guarantee injectivity compositionally — every value is
    either self-delimiting (fixed-width or tagged) or length-prefixed —
    so an encoder that writes each field of the state exactly once, in a
    fixed order, is injective by construction.

    Keys are compact binary: small ints are one byte, so a typical model
    state of a few dozen fields keys in well under 100 bytes. This is the
    whole point — the memo table then hashes and compares flat strings
    instead of traversing deep algebraic states on every probe.

    Encoders write into a reusable {!buf} ({!Solver.GAME.encode_into}):
    the solver keeps one buffer per instance (and per worker in the
    parallel solve), [reset]s it before each probe, and hands the
    [(data, length)] slice straight to the memo table — a probe of an
    already-memoized state allocates nothing. [run] recovers the old
    string-returning behavior for cold paths. *)

(** A reusable byte buffer: an append cursor over a growable byte array.
    Not thread-safe — use one per domain. *)
type buf

(** [create ?size ()] allocates an empty buffer (default capacity 64). *)
val create : ?size:int -> unit -> buf

(** [reset b] rewinds the cursor to 0 without shrinking the backing
    array. The next encoder reuses the same bytes. *)
val reset : buf -> unit

(** [length b] is the number of bytes written since the last [reset]. *)
val length : buf -> int

(** [data b] is the backing array. Only the first [length b] bytes are
    meaningful, and they are valid only until the next [reset]/append —
    callers that keep the key must copy ([contents]). *)
val data : buf -> Bytes.t

(** [int b v] appends an integer: one byte for [-120 <= v <= 134]
    (every value this repo's models store), nine bytes otherwise. *)
val int : buf -> int -> unit

(** [bool b v] appends one byte. *)
val bool : buf -> bool -> unit

(** [option b f v] appends a presence byte, then [f] on the payload. *)
val option : buf -> (buf -> 'a -> unit) -> 'a option -> unit

(** [list b f xs] appends the length (so adjacent lists cannot blur into
    each other), then each element. *)
val list : buf -> (buf -> 'a -> unit) -> 'a list -> unit

(** [raw b s] appends the bytes of [s] verbatim. For encoders that
    already produce a canonical string (test games, derived encoders) —
    the caller is responsible for injectivity of the composition. *)
val raw : buf -> string -> unit

(** [contents b] copies the written slice out as an owned string. *)
val contents : buf -> string

(** [run f] allocates a private buffer, runs the encoder, and returns
    the key as a string. Thread-safe: every call uses a fresh buffer, so
    [encode] may run concurrently on several domains. *)
val run : (buf -> unit) -> string
