(** Combinators for canonical state keys ({!Solver.GAME.encode}).

    The solver memoizes on the string produced by [encode], so an encoder
    must be injective on reachable states: equal states must produce equal
    keys and distinct states distinct keys. These combinators guarantee
    injectivity compositionally — every value is either self-delimiting
    (fixed-width or tagged) or length-prefixed — so an encoder that writes
    each field of the state exactly once, in a fixed order, is injective
    by construction.

    Keys are compact binary: small ints are one byte, so a typical model
    state of a few dozen fields keys in well under 100 bytes. This is the
    whole point — the memo table then hashes and compares flat strings
    instead of traversing deep algebraic states on every probe. *)

(** [int b v] appends an integer: one byte for [-120 <= v <= 134]
    (every value this repo's models store), nine bytes otherwise. *)
val int : Buffer.t -> int -> unit

(** [bool b v] appends one byte. *)
val bool : Buffer.t -> bool -> unit

(** [option b f v] appends a presence byte, then [f] on the payload. *)
val option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

(** [list b f xs] appends the length (so adjacent lists cannot blur into
    each other), then each element. *)
val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** [run f] allocates a buffer, runs the encoder, and returns the key.
    Thread-safe: every call uses a private buffer, so [encode] may run
    concurrently on several domains. *)
val run : (Buffer.t -> unit) -> string
