(** The quantitative blunting bound (Theorem 4.2).

    For a program with [n >= 1] processes and at most [r >= 1] program
    random steps, using tail strongly linearizable objects [O] with
    effect-free preambles:

    {[ Prob[O^k] <= Prob[O_a]
         + (1 - (max(0, k - r) / k)^(n-1)) * (Prob[O] - Prob[O_a]) ]}

    where [Prob[O_a]] is the bad-outcome probability with atomic objects and
    [Prob[O]] with the original linearizable ones. The fraction is an upper
    bound on the probability that the adversary manages to overlap a program
    random step with every chosen preamble iteration (Lemma 4.5). *)

(** [blunt_fraction ~n ~r ~k] is [1 - (max(0, k - r)/k)^(n-1)], the bracketed
    factor. It is 1 when [k <= r] (no blunting guarantee) and decreases to 0
    as [k] grows. Requires [n >= 1], [r >= 1], [k >= 1]. *)
val blunt_fraction : n:int -> r:int -> k:int -> float

(** [theorem_4_2 ~n ~r ~k ~prob_atomic ~prob_lin] is the right-hand side of
    the bound. Requires [0 <= prob_atomic <= prob_lin <= 1]. *)
val theorem_4_2 :
  n:int -> r:int -> k:int -> prob_atomic:float -> prob_lin:float -> float

(** [min_k_for ~n ~r ~epsilon] is the smallest [k] such that the bound's
    excess over [prob_atomic] is at most [epsilon * (prob_lin - prob_atomic)],
    i.e. [blunt_fraction <= epsilon]. *)
val min_k_for : n:int -> r:int -> epsilon:float -> int

(** [weakener_instance ~k] instantiates the bound for the weakener program
    of Algorithm 1 ([n = 3], [r = 1], [Prob\[O_a\] = 1/2], [Prob\[O\] = 1]):
    the upper bound on the probability that [p2] loops forever with
    [ABD^k]. For [k = 2] this is 7/8, matching Appendix A.3.1's "terminates
    with probability at least 1/8". *)
val weakener_instance : k:int -> float
