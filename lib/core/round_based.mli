(** The round-based mitigation sketched in Section 7 of the paper.

    Many randomized programs are round-based: each process takes at most [s]
    random steps per round and the program terminates with high probability
    within [T] rounds. Applying the preamble-iterating transformation with
    [k > T * s] blunts the adversary for the whole high-probability window;
    if the program has not terminated after [T] rounds it simply continues
    with the original linearizable object (same instance, same state), whose
    operations are cheaper.

    The switch is realized at the method-name level: the transformed invoke
    built by {!invoke_with_fallback} runs the [k]-iterated body for a method
    [m] and the original single-preamble body for [m ^ "!plain"], so a
    program can downgrade mid-run without changing object instances. *)

(** [recommended_k ~rounds ~steps_per_round] is [T * s + 1], the smallest
    [k] exceeding the number of random steps in the window (Section 7). *)
val recommended_k : rounds:int -> steps_per_round:int -> int

(** [plain m] is the method name that routes to the untransformed body. *)
val plain : string -> string

(** [invoke_with_fallback ~k split] dispatches between Algorithm 2's [M^k]
    and the original [M] according to the method-name convention above. *)
val invoke_with_fallback :
  k:int ->
  Objects.Transform.split ->
  self:int ->
  meth:string ->
  arg:Util.Value.t ->
  Util.Value.t Sim.Proc.t

(** [abd ~k ~name ~n ~init] is an ABD register exposing ["read"]/["write"]
    (transformed, [k] iterations) and ["read!plain"]/["write!plain"]
    (original) on the same replicated state. *)
val abd : k:int -> name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t
