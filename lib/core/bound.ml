let blunt_fraction ~n ~r ~k =
  if n < 1 || r < 1 || k < 1 then
    invalid_arg "Bound.blunt_fraction: n, r, k must be >= 1";
  let ratio = float_of_int (max 0 (k - r)) /. float_of_int k in
  1.0 -. (ratio ** float_of_int (n - 1))

let theorem_4_2 ~n ~r ~k ~prob_atomic ~prob_lin =
  if not (0.0 <= prob_atomic && prob_atomic <= prob_lin && prob_lin <= 1.0) then
    invalid_arg "Bound.theorem_4_2: need 0 <= prob_atomic <= prob_lin <= 1";
  prob_atomic +. (blunt_fraction ~n ~r ~k *. (prob_lin -. prob_atomic))

let min_k_for ~n ~r ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Bound.min_k_for: epsilon must be positive";
  let rec go k =
    if blunt_fraction ~n ~r ~k <= epsilon then k
    else if k > 1_000_000_000 then
      invalid_arg "Bound.min_k_for: epsilon unreachable"
    else go (k * 2)
  in
  let hi = go 1 in
  (* binary search the least k in (hi/2, hi] *)
  let rec bisect lo hi =
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if blunt_fraction ~n ~r ~k:mid <= epsilon then bisect lo mid
      else bisect (mid + 1) hi
  in
  bisect 1 hi

let weakener_instance ~k =
  theorem_4_2 ~n:3 ~r:1 ~k ~prob_atomic:0.5 ~prob_lin:1.0
