let recommended_k ~rounds ~steps_per_round =
  if rounds < 1 || steps_per_round < 1 then
    invalid_arg "Round_based.recommended_k: rounds and steps_per_round >= 1";
  (rounds * steps_per_round) + 1

let suffix = "!plain"
let plain m = m ^ suffix

let strip m =
  if String.length m > String.length suffix
     && String.sub m (String.length m - String.length suffix) (String.length suffix)
        = suffix
  then Some (String.sub m 0 (String.length m - String.length suffix))
  else None

let invoke_with_fallback ~k (split : Objects.Transform.split) ~self ~meth ~arg =
  match strip meth with
  | Some base -> Objects.Transform.base_invoke split ~self ~meth:base ~arg
  | None -> Objects.Transform.iterated_invoke ~k split ~self ~meth ~arg

let abd ~k ~name ~n ~init : Sim.Obj_impl.t =
  let transformed = Objects.Abd.make_k ~k ~name ~n ~init in
  let split = Objects.Abd.split ~name ~n in
  { transformed with invoke = invoke_with_fallback ~k split }
