(** The simulator runtime.

    A runtime instance holds the global state of one program execution: per
    process the remaining {!Proc.t} code and mailbox, the in-transit message
    multiset, the base-register store, per-object server states, and the
    trace. Executions advance one {!event} at a time; the set of enabled
    events is exactly the scheduling freedom the paper's strong adversary
    enjoys (which process steps next, which in-transit message is delivered
    next, optionally which process crashes).

    Executions are deterministic: the same configuration, random tape and
    event sequence yield the same trace — the paper's [e\[P(O), v, s\]]. *)

type config = {
  n : int;  (** number of processes, ids [0 .. n-1] *)
  objects : Obj_impl.t list;
  program : self:int -> unit Proc.t;  (** per-process top-level code *)
  enable_crashes : bool;
  max_crashes : int;
}

(** Where random steps draw their results from. *)
type rand_source =
  | Tape of int array
      (** the i-th random step returns [tape.(i) mod bound]; running past the
          end raises [Tape_exhausted] *)
  | Gen of Util.Rng.t

exception Tape_exhausted

type event =
  | Step of int  (** process [p] resolves its next operation *)
  | Deliver of int  (** deliver in-transit message with this id *)
  | Crash of int

type in_transit = { msg_id : int; src : int; dst : int; msg : Message.t }
type t

(** [create ?trace_level config rand] — [trace_level] (default
    {!Trace.Full}) selects how much the execution trace materializes:
    {!Trace.History} keeps only actions/labels/notes/crashes (enough for
    {!outcome} and label queries) and skips allocating the per-event
    entries, for long simulations that never replay or lin-check their
    trace. Step and message {e counts} stay exact at either level. *)
val create : ?trace_level:Trace.level -> config -> rand_source -> t

(** {1 Stepping} *)

(** [enabled t] lists the events the adversary may choose from, in a
    deterministic order. *)
val enabled : t -> event list

exception Not_enabled of event

(** [step t e] applies one event. Raises [Not_enabled] if [e] is not
    currently enabled. *)
val step : t -> event -> unit

(** [finished t] holds when every process has terminated or crashed. *)
val finished : t -> bool

type run_result = Completed | Deadlocked | Step_limit_reached

(** [run t ~max_steps choose] repeatedly asks [choose] for the next event.
    [choose] receives the full runtime (strong adversary: it observes
    everything, including past random results) and the enabled events. *)
val run : t -> max_steps:int -> (t -> event list -> event) -> run_result

(** [run_schedule t events] replays an explicit schedule; raises
    [Not_enabled] on a mismatch. *)
val run_schedule : t -> event list -> unit

type guided_result = Finished of run_result | Guide_stopped

(** [run_guided t ~max_steps guide] is {!run} for partial schedules: the
    guide may return [None] to stop the execution mid-run, leaving the
    runtime inspectable (pending invocations stay pending in the history).
    The fuzzer replays shrunk schedule {e prefixes} this way — a prefix of
    a failing schedule must remain runnable and checkable even though the
    program has not finished. *)
val run_guided :
  t -> max_steps:int -> (t -> event list -> event option) -> guided_result

(** {1 Observation (for adversaries, checkers and reports)} *)

val n : t -> int
val trace : t -> Trace.t
val history : t -> History.Hist.t
val outcome : t -> History.Outcome.t
val in_transit : t -> in_transit list
val mailbox : t -> int -> (int * Message.t) list
val is_active : t -> int -> bool
val is_crashed : t -> int -> bool

(** [blocked t p] holds when [p] is active but its next operation is a [Recv]
    with no matching mailbox message. *)
val blocked : t -> int -> bool

(** [current_inv t p] is the innermost open invocation of process [p]. *)
val current_inv : t -> int -> int option

(** [read_register t rid] peeks at a base register without discipline checks
    (observation only). *)
val read_register : t -> Base_reg.id -> Util.Value.t

(** [server_state t ~obj_name ~proc] is the server state of [obj_name] at
    process [proc], if that object has a server role. *)
val server_state : t -> obj_name:string -> proc:int -> Util.Value.t option

(** [random_results t] lists results of the random steps taken so far. *)
val random_results : t -> (Proc.rand_kind * int * int) list

(** [next_op_descr t p] is a short description of the operation process [p]
    will perform on its next step, for adversaries that pattern-match on it
    (e.g. ["recv:reply"], ["broadcast"], ["random"], ["ret"]). *)
val next_op_descr : t -> int -> string

val pp_event : Format.formatter -> event -> unit
val pp_run_result : Format.formatter -> run_result -> unit

(** The simulator's [Logs] source, [blunting.sim]; step-level events log at
    debug, run completions at info. Counters land in [Obs.Metrics] under
    the [sim.] prefix (steps, messages sent/delivered, register
    reads/writes, coin flips, crashes). *)
val log_src : Logs.src
