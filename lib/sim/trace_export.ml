open Obs

let rec value_to_json : Util.Value.t -> Json.t = function
  | Util.Value.Unit -> Json.Null
  | Util.Value.Bool b -> Json.Bool b
  | Util.Value.Int n -> Json.Int n
  | Util.Value.Str s -> Json.String s
  | Util.Value.Pair (a, b) -> Json.List [ value_to_json a; value_to_json b ]
  | Util.Value.List l -> Json.List (List.map value_to_json l)

let reg_to_json (r : Base_reg.id) =
  Json.Obj
    [
      ("obj", Json.String r.obj_name);
      ("reg", Json.String r.reg);
      ("index", Json.List (List.map (fun i -> Json.Int i) r.index));
    ]

let msg_to_json (m : Message.t) =
  Json.Obj [ ("obj", Json.String m.obj_name); ("body", value_to_json m.body) ]

let inv_to_json = function None -> Json.Null | Some i -> Json.Int i

let rand_kind_string = function
  | Proc.Program_random -> "program"
  | Proc.Object_random -> "object"

let entry_to_json ~seq (e : Trace.entry) =
  let mk type_ fields = Json.Obj (("seq", Json.Int seq) :: ("type", Json.String type_) :: fields) in
  match e with
  | Trace.Action (History.Action.Call c) ->
      mk "call"
        [
          ("proc", Json.Int c.proc);
          ("inv", Json.Int c.inv);
          ("object", Json.String c.obj_name);
          ("method", Json.String c.meth);
          ("arg", value_to_json c.arg);
          ("tag", Json.String c.tag);
        ]
  | Trace.Action (History.Action.Ret { inv; value; proc; obj_name }) ->
      mk "return"
        [
          ("proc", Json.Int proc);
          ("inv", Json.Int inv);
          ("object", Json.String obj_name);
          ("value", value_to_json value);
        ]
  | Trace.Reg_read { proc; reg; value; inv } ->
      mk "reg_read"
        [
          ("proc", Json.Int proc);
          ("reg", reg_to_json reg);
          ("value", value_to_json value);
          ("inv", inv_to_json inv);
        ]
  | Trace.Reg_write { proc; reg; value; inv } ->
      mk "reg_write"
        [
          ("proc", Json.Int proc);
          ("reg", reg_to_json reg);
          ("value", value_to_json value);
          ("inv", inv_to_json inv);
        ]
  | Trace.Sent { msg_id; src; dst; msg; inv } ->
      mk "sent"
        [
          ("msg_id", Json.Int msg_id);
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("msg", msg_to_json msg);
          ("inv", inv_to_json inv);
        ]
  | Trace.Delivered { msg_id; src; dst; msg; handled } ->
      mk "delivered"
        [
          ("msg_id", Json.Int msg_id);
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("msg", msg_to_json msg);
          ("handled", Json.Bool handled);
        ]
  | Trace.Received { msg_id; proc; msg; inv } ->
      mk "received"
        [
          ("msg_id", Json.Int msg_id);
          ("proc", Json.Int proc);
          ("msg", msg_to_json msg);
          ("inv", inv_to_json inv);
        ]
  | Trace.Randomized { proc; kind; bound; result; inv } ->
      mk "random"
        [
          ("proc", Json.Int proc);
          ("kind", Json.String (rand_kind_string kind));
          ("bound", Json.Int bound);
          ("result", Json.Int result);
          ("inv", inv_to_json inv);
        ]
  | Trace.Labeled { proc; name; inv } ->
      mk "label"
        [ ("proc", Json.Int proc); ("name", Json.String name); ("inv", inv_to_json inv) ]
  | Trace.Noted { proc; name; value; inv } ->
      mk "note"
        [
          ("proc", Json.Int proc);
          ("name", Json.String name);
          ("value", value_to_json value);
          ("inv", inv_to_json inv);
        ]
  | Trace.Crashed p -> mk "crash" [ ("proc", Json.Int p) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun seq e ->
      Buffer.add_string buf (Json.to_string (entry_to_json ~seq e));
      Buffer.add_char buf '\n')
    (Trace.entries t);
  Buffer.contents buf

let write_jsonl ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))

(* ---- Chrome trace --------------------------------------------------- *)

(* The lane an entry is drawn on: the acting process; deliveries land on
   the destination's lane (that is where the state changes). *)
let lane : Trace.entry -> int = function
  | Trace.Action a -> History.Action.proc a
  | Trace.Reg_read { proc; _ }
  | Trace.Reg_write { proc; _ }
  | Trace.Received { proc; _ }
  | Trace.Randomized { proc; _ }
  | Trace.Labeled { proc; _ }
  | Trace.Noted { proc; _ } ->
      proc
  | Trace.Sent { src; _ } -> src
  | Trace.Delivered { dst; _ } -> dst
  | Trace.Crashed p -> p

let chrome_events ?(pid = 0) t =
  let entries = Trace.entries t in
  let nprocs = List.fold_left (fun acc e -> max acc (lane e + 1)) 0 entries in
  let meta =
    Chrome_trace.process_name ~pid "blunting simulator"
    :: List.init nprocs (fun p -> Chrome_trace.thread_name ~pid ~tid:p (Fmt.str "p%d" p))
  in
  (* reuse the JSONL fields minus the redundant seq/type as slice args *)
  let args_of e =
    match entry_to_json ~seq:0 e with
    | Json.Obj kvs -> List.filter (fun (k, _) -> k <> "seq" && k <> "type") kvs
    | _ -> []
  in
  let body =
    List.mapi
      (fun seq e ->
        let ts = float_of_int seq in
        let tid = lane e in
        let mk ?(cat = "sim") name phase =
          Chrome_trace.event ~cat ~pid ~tid ~args:(args_of e) ~name ~ts phase
        in
        match e with
        | Trace.Action (History.Action.Call c) ->
            mk ~cat:"invocation" (Fmt.str "%s.%s" c.obj_name c.meth) Chrome_trace.Begin
        | Trace.Action (History.Action.Ret { obj_name; _ }) ->
            mk ~cat:"invocation" (Fmt.str "%s ret" obj_name) Chrome_trace.End
        | Trace.Reg_read { reg; _ } ->
            mk (Fmt.str "read %s.%s" reg.obj_name reg.reg) Chrome_trace.Instant
        | Trace.Reg_write { reg; _ } ->
            mk (Fmt.str "write %s.%s" reg.obj_name reg.reg) Chrome_trace.Instant
        | Trace.Sent { msg; dst; _ } ->
            mk ~cat:"message" (Fmt.str "send %s -> p%d" msg.obj_name dst) Chrome_trace.Instant
        | Trace.Delivered { msg; _ } ->
            mk ~cat:"message" (Fmt.str "deliver %s" msg.obj_name) Chrome_trace.Instant
        | Trace.Received { msg; _ } ->
            mk ~cat:"message" (Fmt.str "recv %s" msg.obj_name) Chrome_trace.Instant
        | Trace.Randomized { kind; bound; result; _ } ->
            mk ~cat:"random"
              (Fmt.str "%s-random(%d)=%d" (rand_kind_string kind) bound result)
              Chrome_trace.Instant
        | Trace.Labeled { name; _ } -> mk ("<" ^ name ^ ">") Chrome_trace.Instant
        | Trace.Noted { name; _ } -> mk ("note " ^ name) Chrome_trace.Instant
        | Trace.Crashed p -> mk (Fmt.str "crash p%d" p) Chrome_trace.Instant)
      entries
  in
  meta @ body

let write_chrome ~path t = Chrome_trace.write_file path (chrome_events t)
