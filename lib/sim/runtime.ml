open Util

let log_src = Logs.Src.create "blunting.sim" ~doc:"Simulator runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Process-wide instrumentation (see lib/obs): counters aggregate across
   every runtime instance created in the process; per-run figures come from
   the trace ([Trace.count_steps] etc.), these feed the registry snapshot. *)
module M = struct
  open Obs.Metrics

  let steps = counter ~help:"scheduled events executed" "sim.steps"
  let messages_sent = counter ~help:"messages enqueued" "sim.messages_sent"
  let messages_delivered = counter ~help:"messages delivered" "sim.messages_delivered"
  let reg_reads = counter ~help:"base-register reads" "sim.register_reads"
  let reg_writes = counter ~help:"base-register writes (incl. RMW)" "sim.register_writes"
  let coin_flips = counter ~help:"random draws (program + object)" "sim.coin_flips"
  let crashes = counter ~help:"crash events" "sim.crashes"
  let runs = counter ~help:"complete run loops" "sim.runs"
end

type config = {
  n : int;
  objects : Obj_impl.t list;
  program : self:int -> unit Proc.t;
  enable_crashes : bool;
  max_crashes : int;
}

type rand_source = Tape of int array | Gen of Rng.t

exception Tape_exhausted

type event = Step of int | Deliver of int | Crash of int

type in_transit = { msg_id : int; src : int; dst : int; msg : Message.t }

type pstatus = Active of unit Proc.t | Terminated | Crashed_p

(* A mailbox, flattened: ids and messages in parallel arrays, ARRIVAL
   order ascending. The old representation (a newest-first list ref)
   forced a List.rev allocation on every oldest-first read — and the
   enabled-set computation reads every blocked process's mailbox on
   every single step. Scans here touch no allocator; removal is a
   blit. *)
type mbox = {
  mutable mb_ids : int array;
  mutable mb_msgs : Message.t array;
  mutable mb_len : int;
}

type t = {
  config : config;
  store : Base_reg.store;
  procs : pstatus array;
  (* [active]/[crashed] mirror [procs] as bitsets (bit p = process p):
     the enabled-set scan and [finished] test them without touching the
     status array's boxed payloads *)
  mutable active : int;
  mutable crashed : int;
  mailboxes : mbox array;
  (* the in-transit multiset, flattened likewise: SEND order ascending,
     so the enabled scan needs no reversal. Delivery removes by blit. *)
  mutable tr_ids : int array;
  mutable tr_dst : int array;
  mutable tr_src : int array;
  mutable tr_msg : Message.t array;
  mutable tr_len : int;
  (* interned event values: [enabled] conses cached events instead of
     allocating fresh ones each step (structural equality is what the
     schedulers use, so sharing is invisible to them) *)
  step_evs : event array;
  crash_evs : event array;
  mutable deliver_evs : event array;  (* indexed by msg id *)
  servers : (string * int, Value.t) Hashtbl.t;
  inv_objs : (int, string) Hashtbl.t;  (* inv id -> obj name, for returns *)
  inv_stacks : int list array;
  trace : Trace.t;
  mutable next_msg : int;
  mutable next_inv : int;
  mutable next_nonce : int;
  mutable rand_pos : int;
  mutable crashes : int;
  rand : rand_source;
}

(* slot filler for vacated message cells, so removal drops the reference *)
let no_msg = Message.make ~obj_name:"" Value.unit

let create ?trace_level config rand =
  if config.n > Sys.int_size - 2 then
    Fmt.invalid_arg "Runtime.create: n = %d exceeds the bitset width" config.n;
  let store =
    Base_reg.create_store
      (List.concat_map (fun (o : Obj_impl.t) -> o.registers ~n:config.n) config.objects)
  in
  let servers = Hashtbl.create 16 in
  List.iter
    (fun (o : Obj_impl.t) ->
      match o.init_server with
      | None -> ()
      | Some init ->
          for p = 0 to config.n - 1 do
            Hashtbl.replace servers (o.name, p) (init ~n:config.n ~self:p)
          done)
    config.objects;
  {
    config;
    store;
    procs = Array.init config.n (fun p -> Active (config.program ~self:p));
    active = (1 lsl config.n) - 1;
    crashed = 0;
    mailboxes =
      Array.init config.n (fun _ ->
          { mb_ids = Array.make 8 0; mb_msgs = Array.make 8 no_msg; mb_len = 0 });
    tr_ids = Array.make 16 0;
    tr_dst = Array.make 16 0;
    tr_src = Array.make 16 0;
    tr_msg = Array.make 16 no_msg;
    tr_len = 0;
    step_evs = Array.init config.n (fun p -> Step p);
    crash_evs = Array.init config.n (fun p -> Crash p);
    deliver_evs = Array.make 16 (Deliver 0);
    servers;
    inv_objs = Hashtbl.create 64;
    inv_stacks = Array.make config.n [];
    trace = Trace.create ?level:trace_level ();
    next_msg = 0;
    next_inv = 0;
    next_nonce = 0;
    rand_pos = 0;
    crashes = 0;
    rand;
  }

let n t = t.config.n
let trace t = t.trace
let history t = Trace.history t.trace
let outcome t = History.Outcome.of_history (history t)

(* observation accessors materialize lists from the flat arrays — cold
   paths, for adversaries and checkers *)
let in_transit t =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ({ msg_id = t.tr_ids.(i); src = t.tr_src.(i); dst = t.tr_dst.(i);
           msg = t.tr_msg.(i) }
        :: acc)
  in
  go (t.tr_len - 1) []

let mailbox t p =
  let mb = t.mailboxes.(p) in
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) ((mb.mb_ids.(i), mb.mb_msgs.(i)) :: acc)
  in
  go (mb.mb_len - 1) []

let is_active t p = t.active land (1 lsl p) <> 0
let is_crashed t p = t.crashed land (1 lsl p) <> 0

let current_inv t p = match t.inv_stacks.(p) with [] -> None | i :: _ -> Some i
let read_register t rid = Base_reg.read t.store rid ~reader:(-1)

let server_state t ~obj_name ~proc = Hashtbl.find_opt t.servers (obj_name, proc)
let random_results t = Trace.random_draws t.trace

let find_obj t name =
  match List.find_opt (fun (o : Obj_impl.t) -> o.name = name) t.config.objects with
  | Some o -> o
  | None -> Fmt.invalid_arg "unknown object %s" name

let mailbox_has_match t p pred =
  let mb = t.mailboxes.(p) in
  let rec go i = i < mb.mb_len && (pred mb.mb_msgs.(i) || go (i + 1)) in
  go 0

let head_op_blocked t p =
  match t.procs.(p) with
  | Active (Proc.Op (Proc.Recv (_, pred), _)) -> not (mailbox_has_match t p pred)
  | Active _ | Terminated | Crashed_p -> false

let blocked = head_op_blocked

let next_op_descr t p =
  match t.procs.(p) with
  | Terminated -> "terminated"
  | Crashed_p -> "crashed"
  | Active (Proc.Ret ()) -> "ret"
  | Active (Proc.Op (op, _)) -> (
      match op with
      | Proc.Broadcast m -> "broadcast:" ^ m.obj_name
      | Proc.Send (_, m) -> "send:" ^ m.obj_name
      | Proc.Recv (descr, _) -> "recv:" ^ descr
      | Proc.Read_reg r -> Fmt.str "read_reg:%a" Base_reg.pp_id r
      | Proc.Write_reg (r, _) -> Fmt.str "write_reg:%a" Base_reg.pp_id r
      | Proc.Rmw_reg (r, _) -> Fmt.str "rmw_reg:%a" Base_reg.pp_id r
      | Proc.Random _ -> "random"
      | Proc.Fresh -> "fresh"
      | Proc.Label l -> "label:" ^ l
      | Proc.Note (name, _) -> "note:" ^ name
      | Proc.Call_marker { obj_name; meth; _ } -> Fmt.str "call:%s.%s" obj_name meth
      | Proc.Ret_marker _ -> "ret_marker")

(* The enabled set, rebuilt every step of every run: steps in process
   order, then delivers in send order, then crashes in process order —
   exactly the old list-pipeline's order, built back to front from the
   bitsets and flat arrays so the only allocation is the result's cons
   cells (the event values themselves are interned). *)
let enabled t =
  let acc = ref [] in
  if t.config.enable_crashes && t.crashes < t.config.max_crashes then
    for p = t.config.n - 1 downto 0 do
      if t.active land (1 lsl p) <> 0 then acc := t.crash_evs.(p) :: !acc
    done;
  for i = t.tr_len - 1 downto 0 do
    if t.crashed land (1 lsl t.tr_dst.(i)) = 0 then
      acc := t.deliver_evs.(t.tr_ids.(i)) :: !acc
  done;
  for p = t.config.n - 1 downto 0 do
    if t.active land (1 lsl p) <> 0 && not (head_op_blocked t p) then
      acc := t.step_evs.(p) :: !acc
  done;
  !acc

exception Not_enabled of event

let draw_random t bound =
  match t.rand with
  | Gen rng -> Rng.int rng bound
  | Tape tape ->
      if t.rand_pos >= Array.length tape then raise Tape_exhausted
      else begin
        let v = tape.(t.rand_pos) mod bound in
        t.rand_pos <- t.rand_pos + 1;
        v
      end

let grow_ints a =
  let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_msgs a =
  let b = Array.make (2 * Array.length a) no_msg in
  Array.blit a 0 b 0 (Array.length a);
  b

let enqueue_message t ~src ~dst msg =
  let msg_id = t.next_msg in
  t.next_msg <- msg_id + 1;
  if t.tr_len = Array.length t.tr_ids then begin
    t.tr_ids <- grow_ints t.tr_ids;
    t.tr_dst <- grow_ints t.tr_dst;
    t.tr_src <- grow_ints t.tr_src;
    t.tr_msg <- grow_msgs t.tr_msg
  end;
  t.tr_ids.(t.tr_len) <- msg_id;
  t.tr_dst.(t.tr_len) <- dst;
  t.tr_src.(t.tr_len) <- src;
  t.tr_msg.(t.tr_len) <- msg;
  t.tr_len <- t.tr_len + 1;
  (* intern the event now; [enabled] will cons it every step the message
     stays in transit *)
  if msg_id >= Array.length t.deliver_evs then begin
    let evs = Array.make (2 * Array.length t.deliver_evs) (Deliver 0) in
    Array.blit t.deliver_evs 0 evs 0 (Array.length t.deliver_evs);
    t.deliver_evs <- evs
  end;
  t.deliver_evs.(msg_id) <- Deliver msg_id;
  Obs.Metrics.incr M.messages_sent;
  if Trace.full t.trace then
    Trace.add t.trace
      (Trace.Sent { msg_id; src; dst; msg; inv = current_inv t src })
  else Trace.bump_sent t.trace;
  msg_id

let deliver t msg_id =
  let rec find i =
    if i >= t.tr_len then raise (Not_enabled (Deliver msg_id))
    else if t.tr_ids.(i) = msg_id then i
    else find (i + 1)
  in
  let i = find 0 in
  let src = t.tr_src.(i) and dst = t.tr_dst.(i) and msg = t.tr_msg.(i) in
  if is_crashed t dst then raise (Not_enabled (Deliver msg_id));
  let tail = t.tr_len - i - 1 in
  Array.blit t.tr_ids (i + 1) t.tr_ids i tail;
  Array.blit t.tr_dst (i + 1) t.tr_dst i tail;
  Array.blit t.tr_src (i + 1) t.tr_src i tail;
  Array.blit t.tr_msg (i + 1) t.tr_msg i tail;
  t.tr_len <- t.tr_len - 1;
  t.tr_msg.(t.tr_len) <- no_msg;
  let obj = find_obj t msg.Message.obj_name in
  let handled =
    match (obj.on_message, obj.init_server) with
    | Some handler, Some _ -> (
        let state = Hashtbl.find t.servers (obj.name, dst) in
        match handler ~self:dst ~state ~src ~body:msg.Message.body with
        | Some { state = state'; out } ->
            Hashtbl.replace t.servers (obj.name, dst) state';
            List.iter
              (fun (dst', body) ->
                ignore
                  (enqueue_message t ~src:dst ~dst:dst'
                     (Message.make ~obj_name:obj.name body)))
              out;
            true
        | None -> false)
    | _ -> false
  in
  if not handled then begin
    let mb = t.mailboxes.(dst) in
    if mb.mb_len = Array.length mb.mb_ids then begin
      mb.mb_ids <- grow_ints mb.mb_ids;
      mb.mb_msgs <- grow_msgs mb.mb_msgs
    end;
    mb.mb_ids.(mb.mb_len) <- msg_id;
    mb.mb_msgs.(mb.mb_len) <- msg;
    mb.mb_len <- mb.mb_len + 1
  end;
  Obs.Metrics.incr M.messages_delivered;
  if Trace.full t.trace then
    Trace.add t.trace (Trace.Delivered { msg_id; src; dst; msg; handled })
  else Trace.bump t.trace

(* consume the OLDEST matching message: arrival order ascending, so the
   first match wins and removal is a blit *)
let consume_matching t p pred =
  let mb = t.mailboxes.(p) in
  let rec find i =
    if i >= mb.mb_len then -1 else if pred mb.mb_msgs.(i) then i else find (i + 1)
  in
  let i = find 0 in
  if i < 0 then None
  else begin
    let id = mb.mb_ids.(i) and m = mb.mb_msgs.(i) in
    let tail = mb.mb_len - i - 1 in
    Array.blit mb.mb_ids (i + 1) mb.mb_ids i tail;
    Array.blit mb.mb_msgs (i + 1) mb.mb_msgs i tail;
    mb.mb_len <- mb.mb_len - 1;
    mb.mb_msgs.(mb.mb_len) <- no_msg;
    Some (id, m)
  end

let step_process t p =
  match t.procs.(p) with
  | Terminated | Crashed_p -> raise (Not_enabled (Step p))
  | Active (Proc.Ret ()) ->
      t.procs.(p) <- Terminated;
      t.active <- t.active land lnot (1 lsl p)
  | Active (Proc.Op (op, k)) ->
      let continue : type a. a -> (a -> unit Proc.t) -> unit =
       fun v k -> t.procs.(p) <- Active (k v)
      in
      let inv = current_inv t p in
      (match op with
      | Proc.Broadcast msg ->
          for dst = 0 to t.config.n - 1 do
            ignore (enqueue_message t ~src:p ~dst msg)
          done;
          continue () k
      | Proc.Send (dst, msg) ->
          ignore (enqueue_message t ~src:p ~dst msg);
          continue () k
      | Proc.Recv (_descr, pred) -> (
          match consume_matching t p pred with
          | None -> raise (Not_enabled (Step p))
          | Some (msg_id, msg) ->
              if Trace.full t.trace then
                Trace.add t.trace (Trace.Received { msg_id; proc = p; msg; inv })
              else Trace.bump t.trace;
              continue msg k)
      | Proc.Read_reg r ->
          let value = Base_reg.read t.store r ~reader:p in
          Obs.Metrics.incr M.reg_reads;
          if Trace.full t.trace then
            Trace.add t.trace (Trace.Reg_read { proc = p; reg = r; value; inv })
          else Trace.bump t.trace;
          continue value k
      | Proc.Write_reg (r, value) ->
          Base_reg.write t.store r ~writer:p value;
          Obs.Metrics.incr M.reg_writes;
          if Trace.full t.trace then
            Trace.add t.trace (Trace.Reg_write { proc = p; reg = r; value; inv })
          else Trace.bump t.trace;
          continue () k
      | Proc.Rmw_reg (r, f) ->
          let cur = Base_reg.read t.store r ~reader:p in
          let stored, result = f cur in
          Base_reg.write t.store r ~writer:p stored;
          Obs.Metrics.incr M.reg_writes;
          if Trace.full t.trace then
            Trace.add t.trace
              (Trace.Reg_write { proc = p; reg = r; value = stored; inv })
          else Trace.bump t.trace;
          continue result k
      | Proc.Random (bound, kind) ->
          let result = draw_random t bound in
          Obs.Metrics.incr M.coin_flips;
          Log.debug (fun m ->
              m "p%d %s-random(%d) = %d" p
                (match kind with
                | Proc.Program_random -> "program"
                | Proc.Object_random -> "object")
                bound result);
          if Trace.full t.trace then
            Trace.add t.trace
              (Trace.Randomized { proc = p; kind; bound; result; inv })
          else Trace.bump t.trace;
          continue result k
      | Proc.Fresh ->
          let v = t.next_nonce in
          t.next_nonce <- v + 1;
          continue v k
      | Proc.Label name ->
          Trace.add t.trace (Trace.Labeled { proc = p; name; inv });
          continue () k
      | Proc.Note (name, value) ->
          Trace.add t.trace (Trace.Noted { proc = p; name; value; inv });
          continue () k
      | Proc.Call_marker { obj_name; meth; arg; tag } ->
          let i = t.next_inv in
          t.next_inv <- i + 1;
          t.inv_stacks.(p) <- i :: t.inv_stacks.(p);
          Hashtbl.replace t.inv_objs i obj_name;
          Trace.add t.trace
            (Trace.Action
               (History.Action.Call { obj_name; meth; arg; inv = i; proc = p; tag }));
          continue i k
      | Proc.Ret_marker { inv = i; value } ->
          (match t.inv_stacks.(p) with
          | top :: rest when top = i -> t.inv_stacks.(p) <- rest
          | _ -> Fmt.invalid_arg "Ret_marker: invocation %d not open at p%d" i p);
          let obj_name =
            Option.value ~default:"?" (Hashtbl.find_opt t.inv_objs i)
          in
          Trace.add t.trace
            (Trace.Action (History.Action.Ret { inv = i; value; proc = p; obj_name }));
          continue () k)

let pp_event ppf = function
  | Step p -> Fmt.pf ppf "step(p%d)" p
  | Deliver id -> Fmt.pf ppf "deliver(m%d)" id
  | Crash p -> Fmt.pf ppf "crash(p%d)" p

let step t e =
  Obs.Metrics.incr M.steps;
  (match e with
  | Step p -> Obs.Ring.record Obs.Ring.Sim_step p 0
  | Deliver id -> Obs.Ring.record Obs.Ring.Sim_deliver id 0
  | Crash p -> Obs.Ring.record Obs.Ring.Sim_crash p 0);
  Log.debug (fun m -> m "%a" pp_event e);
  match e with
  | Step p -> step_process t p
  | Deliver id -> deliver t id
  | Crash p ->
      if (not t.config.enable_crashes) || t.crashes >= t.config.max_crashes then
        raise (Not_enabled e);
      (match t.procs.(p) with
      | Active _ ->
          t.procs.(p) <- Crashed_p;
          t.active <- t.active land lnot (1 lsl p);
          t.crashed <- t.crashed lor (1 lsl p);
          t.crashes <- t.crashes + 1;
          Obs.Metrics.incr M.crashes;
          Trace.add t.trace (Trace.Crashed p)
      | Terminated | Crashed_p -> raise (Not_enabled e))

let finished t = t.active = 0

type run_result = Completed | Deadlocked | Step_limit_reached

let pp_run_result ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Deadlocked -> Fmt.string ppf "deadlocked"
  | Step_limit_reached -> Fmt.string ppf "step limit reached"

(* Every scheduler decision funnels through the run loops, so adversary
   attribution is recorded centrally: the enabled-set size the scheduler
   chose from and the index it picked, whichever [Adversary.Schedulers]
   policy (or recorded code replay) is driving. *)
let record_decision evs e =
  if Obs.Ring.enabled () then begin
    let rec index i = function
      | [] -> -1
      | x :: rest -> if x = e then i else index (i + 1) rest
    in
    Obs.Ring.record Obs.Ring.Adv_decision (List.length evs) (index 0 evs)
  end

let run t ~max_steps choose =
  Obs.Metrics.incr M.runs;
  let rec go remaining =
    if finished t then Completed
    else if remaining = 0 then Step_limit_reached
    else
      match enabled t with
      | [] -> Deadlocked
      | evs ->
          let e = choose t evs in
          record_decision evs e;
          step t e;
          go (remaining - 1)
  in
  (* tag the simulation loop's allocations for Obs.Memprof; restore on
     the way out so a solver-driven run doesn't clobber its Expand tag *)
  let prev_phase = Obs.Memprof.phase () in
  Obs.Memprof.set_phase (Some Obs.Memprof.Sim_run);
  let result =
    Fun.protect ~finally:(fun () -> Obs.Memprof.set_phase prev_phase) (fun () ->
        go max_steps)
  in
  Log.info (fun m ->
      m "run %a after %d steps (%d msgs)" pp_run_result result
        (Trace.count_steps t.trace)
        (Trace.count_messages t.trace));
  result

let run_schedule t events = List.iter (step t) events

type guided_result = Finished of run_result | Guide_stopped

let run_guided t ~max_steps guide =
  Obs.Metrics.incr M.runs;
  let rec go remaining =
    if finished t then Finished Completed
    else if remaining = 0 then Finished Step_limit_reached
    else
      match enabled t with
      | [] -> Finished Deadlocked
      | evs -> (
          match guide t evs with
          | None -> Guide_stopped
          | Some e ->
              record_decision evs e;
              step t e;
              go (remaining - 1))
  in
  let prev_phase = Obs.Memprof.phase () in
  Obs.Memprof.set_phase (Some Obs.Memprof.Sim_run);
  let result =
    Fun.protect ~finally:(fun () -> Obs.Memprof.set_phase prev_phase) (fun () ->
        go max_steps)
  in
  Log.info (fun m ->
      m "guided run %s after %d steps"
        (match result with
        | Finished r -> Fmt.str "%a" pp_run_result r
        | Guide_stopped -> "stopped by guide")
        (Trace.count_steps t.trace));
  result
