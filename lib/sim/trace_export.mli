(** Structured export of execution traces.

    Two machine-readable renderings of a {!Trace.t}:

    - {b JSONL}: one compact JSON object per trace entry, stable field
      names ([seq], [type], plus per-type fields) — the grep-able,
      diff-able form consumed by tests and ad-hoc analysis;
    - {b Chrome trace}: the [chrome://tracing] / Perfetto event format,
      one lane per process, with invocation [Call]/[Ret] markers rendered
      as nested begin/end slices and every other entry as an instant
      event.

    Simulated executions carry no wall-clock; both exports use the entry's
    position in the trace as its timestamp (one simulated step = 1 µs in
    the Chrome rendering), which is exactly the step-level adversary's
    notion of time. *)

(** [value_to_json v] embeds a {!Util.Value.t}: [Unit] ↦ [null], pairs ↦
    two-element arrays. *)
val value_to_json : Util.Value.t -> Obs.Json.t

(** [entry_to_json ~seq e] is the JSONL object for entry number [seq]. *)
val entry_to_json : seq:int -> Trace.entry -> Obs.Json.t

(** [to_jsonl t] is the whole trace, one JSON object per line (with a
    trailing newline). *)
val to_jsonl : Trace.t -> string

val write_jsonl : path:string -> Trace.t -> unit

(** [chrome_events ?pid t] renders the trace as Chrome trace events:
    metadata lane names, per-process slices and instants. *)
val chrome_events : ?pid:int -> Trace.t -> Obs.Chrome_trace.event list

(** [write_chrome ~path t] writes the loadable trace document. *)
val write_chrome : path:string -> Trace.t -> unit
