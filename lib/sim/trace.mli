(** Execution traces.

    The runtime records every visible step; the history (call/return actions
    only) is a projection, and the richer entries drive the linearizability
    checkers (which need to know which control points an invocation passed)
    and the experiment reports (message and step counts). *)

type entry =
  | Action of History.Action.t
  | Reg_read of { proc : int; reg : Base_reg.id; value : Util.Value.t; inv : int option }
  | Reg_write of { proc : int; reg : Base_reg.id; value : Util.Value.t; inv : int option }
  | Sent of { msg_id : int; src : int; dst : int; msg : Message.t; inv : int option }
  | Delivered of { msg_id : int; src : int; dst : int; msg : Message.t; handled : bool }
  | Received of { msg_id : int; proc : int; msg : Message.t; inv : int option }
      (** a client consumed the message from its mailbox via [Recv] *)
  | Randomized of {
      proc : int;
      kind : Proc.rand_kind;
      bound : int;
      result : int;
      inv : int option;
    }
  | Labeled of { proc : int; name : string; inv : int option }
  | Noted of { proc : int; name : string; value : Util.Value.t; inv : int option }
  | Crashed of int

type t

(** What the trace materializes. [Full] records every entry. [History]
    records only the semantically-load-bearing entries — [Action],
    [Labeled], [Noted], [Crashed] — and counts (but does not allocate)
    the hot per-event ones, so outcome extraction ([history]) and label
    queries still work while a long simulation allocates nothing per
    register/message/coin event. [count_steps] and [count_messages]
    stay exact at either level; the linearizability checkers and replay
    tooling need [Full]. *)
type level = Full | History

val create : ?level:level -> unit -> t

(** [full t] — whether this trace records hot per-event entries. Callers
    sitting on a hot path guard entry construction on this and call
    {!bump}/{!bump_sent} instead when it is [false]. *)
val full : t -> bool

val add : t -> entry -> unit

(** [bump t] counts one skipped entry ([count_steps] parity with a
    [Full] trace of the same run). *)
val bump : t -> unit

(** [bump_sent t] counts one skipped [Sent] entry. *)
val bump_sent : t -> unit

(** [entries t] in temporal order. The forward list is cached between
    [add]s, and the projections below fold over the internal reversed list
    directly, so repeated accessor calls on a finished trace are linear,
    not quadratic. *)
val entries : t -> entry list

(** [history t] is the projection on call/return actions. *)
val history : t -> History.Hist.t

(** [labels_of_inv t inv] lists the control points passed by invocation
    [inv], in order. *)
val labels_of_inv : t -> int -> string list

(** [passed t ~inv ~lbl] holds when the invocation took a step at control
    point [lbl] (the paper's "passed" predicate, Section 3). *)
val passed : t -> inv:int -> lbl:string -> bool

(** [random_draws t] lists the random steps in order. *)
val random_draws : t -> (Proc.rand_kind * int * int) list
(** (kind, bound, result) triples. *)

(** [count_messages t] is the number of sends recorded. *)
val count_messages : t -> int

(** [count_steps t] is the total number of entries. *)
val count_steps : t -> int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
