open Util

type t = { obj_name : string; body : Value.t }

let make ~obj_name body = { obj_name; body }
let pp ppf t = Fmt.pf ppf "%s:%a" t.obj_name Value.pp t.body
let tagged tag payload = Value.pair (Value.str tag) payload
let tag_of body = Value.to_str (fst (Value.to_pair body))
let payload_of body = snd (Value.to_pair body)
