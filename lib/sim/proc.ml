type rand_kind = Program_random | Object_random

type _ op =
  | Broadcast : Message.t -> unit op
  | Send : int * Message.t -> unit op
  | Recv : string * (Message.t -> bool) -> Message.t op
  | Read_reg : Base_reg.id -> Util.Value.t op
  | Write_reg : Base_reg.id * Util.Value.t -> unit op
  | Rmw_reg : Base_reg.id * (Util.Value.t -> Util.Value.t * Util.Value.t) -> Util.Value.t op
  | Random : int * rand_kind -> int op
  | Fresh : int op
  | Label : string -> unit op
  | Note : string * Util.Value.t -> unit op
  | Call_marker : {
      obj_name : string;
      meth : string;
      arg : Util.Value.t;
      tag : string;
    }
      -> int op
  | Ret_marker : { inv : int; value : Util.Value.t } -> unit op

type 'a t = Ret : 'a -> 'a t | Op : 'b op * ('b -> 'a t) -> 'a t

let return x = Ret x

let rec bind : type a b. a t -> (a -> b t) -> b t =
 fun m f -> match m with Ret x -> f x | Op (op, k) -> Op (op, fun b -> bind (k b) f)

let map f m = bind m (fun x -> Ret (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

let op o = Op (o, return)
let broadcast m = op (Broadcast m)
let send dst m = op (Send (dst, m))
let recv ~descr pred = op (Recv (descr, pred))
let read_reg r = op (Read_reg r)
let write_reg r v = op (Write_reg (r, v))
let rmw_reg r f = op (Rmw_reg (r, f))
let random ~kind n = op (Random (n, kind))
let fresh = op Fresh
let label l = op (Label l)
let note name v = op (Note (name, v))

let repeat n body =
  let rec go i acc =
    if i = n then return (List.rev acc) else bind (body i) (fun x -> go (i + 1) (x :: acc))
  in
  go 0 []

let iter xs f =
  let rec go = function [] -> return () | x :: rest -> bind (f x) (fun () -> go rest) in
  go xs

let seq ps = iter ps (fun p -> p)
