open Util

type id = { obj_name : string; reg : string; index : int list }

type decl = {
  id : id;
  init : Value.t;
  writers : int list option;
  readers : int list option;
}

exception Discipline_violation of string

type cell = { decl : decl; mutable value : Value.t }

module IdMap = Map.Make (struct
  type t = id

  let compare = compare
end)

type store = { mutable cells : cell IdMap.t }

let id ~obj_name ?(index = []) reg = { obj_name; reg; index }

let pp_id ppf i =
  Fmt.pf ppf "%s.%s%a" i.obj_name i.reg
    (Fmt.list ~sep:Fmt.nop (fun ppf k -> Fmt.pf ppf "[%d]" k))
    i.index

let create_store decls =
  let cells =
    List.fold_left
      (fun acc d -> IdMap.add d.id { decl = d; value = d.init } acc)
      IdMap.empty decls
  in
  { cells }

let find store rid =
  match IdMap.find_opt rid store.cells with
  | Some c -> c
  | None ->
      raise (Discipline_violation (Fmt.str "undeclared register %a" pp_id rid))

let check_allowed kind allowed proc rid =
  match allowed with
  | None -> ()
  | Some procs ->
      if not (List.mem proc procs) then
        raise
          (Discipline_violation
             (Fmt.str "process %d may not %s %a" proc kind pp_id rid))

let read store rid ~reader =
  let c = find store rid in
  check_allowed "read" c.decl.readers reader rid;
  c.value

let write store rid ~writer v =
  let c = find store rid in
  check_allowed "write" c.decl.writers writer rid;
  c.value <- v

let snapshot store =
  IdMap.fold (fun rid c acc -> (rid, c.value) :: acc) store.cells []
