type entry =
  | Action of History.Action.t
  | Reg_read of { proc : int; reg : Base_reg.id; value : Util.Value.t; inv : int option }
  | Reg_write of { proc : int; reg : Base_reg.id; value : Util.Value.t; inv : int option }
  | Sent of { msg_id : int; src : int; dst : int; msg : Message.t; inv : int option }
  | Delivered of { msg_id : int; src : int; dst : int; msg : Message.t; handled : bool }
  | Received of { msg_id : int; proc : int; msg : Message.t; inv : int option }
  | Randomized of {
      proc : int;
      kind : Proc.rand_kind;
      bound : int;
      result : int;
      inv : int option;
    }
  | Labeled of { proc : int; name : string; inv : int option }
  | Noted of { proc : int; name : string; value : Util.Value.t; inv : int option }
  | Crashed of int

type level = Full | History

type t = {
  level : level;
  mutable rev_entries : entry list;
  mutable count : int;
  mutable forward : entry list option;  (* cache of [List.rev rev_entries] *)
  mutable sent : int;
}

let create ?(level = Full) () =
  { level; rev_entries = []; count = 0; forward = None; sent = 0 }

let full t = t.level = Full

let add t e =
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1;
  t.forward <- None;
  match e with Sent _ -> t.sent <- t.sent + 1 | _ -> ()

(* skipped-entry counting: [count]/[sent] agree with a [Full] trace *)
let bump t = t.count <- t.count + 1

let bump_sent t =
  t.count <- t.count + 1;
  t.sent <- t.sent + 1

let entries t =
  match t.forward with
  | Some l -> l
  | None ->
      let l = List.rev t.rev_entries in
      t.forward <- Some l;
      l

(* Selective projections fold over [rev_entries] directly: consing onto the
   accumulator while walking newest-to-oldest yields temporal order without
   materializing (or invalidating) the forward list. *)
let rev_fold_filter f t =
  List.fold_left (fun acc e -> match f e with Some x -> x :: acc | None -> acc)
    [] t.rev_entries

let history t = rev_fold_filter (function Action a -> Some a | _ -> None) t

let labels_of_inv t inv =
  rev_fold_filter
    (function
      | Labeled { name; inv = Some i; _ } when i = inv -> Some name | _ -> None)
    t

let passed t ~inv ~lbl =
  List.exists
    (function
      | Labeled { name; inv = Some i; _ } -> i = inv && String.equal name lbl
      | _ -> false)
    t.rev_entries

let random_draws t =
  rev_fold_filter
    (function
      | Randomized { kind; bound; result; _ } -> Some (kind, bound, result)
      | _ -> None)
    t

let count_messages t = t.sent
let count_steps t = t.count

let pp_inv ppf = function None -> () | Some i -> Fmt.pf ppf " #%d" i

let pp_entry ppf = function
  | Action a -> History.Action.pp ppf a
  | Reg_read { proc; reg; value; inv } ->
      Fmt.pf ppf "p%d reads %a = %a%a" proc Base_reg.pp_id reg Util.Value.pp value
        pp_inv inv
  | Reg_write { proc; reg; value; inv } ->
      Fmt.pf ppf "p%d writes %a := %a%a" proc Base_reg.pp_id reg Util.Value.pp
        value pp_inv inv
  | Sent { msg_id; src; dst; msg; inv } ->
      Fmt.pf ppf "p%d sends m%d to p%d: %a%a" src msg_id dst Message.pp msg pp_inv
        inv
  | Delivered { msg_id; src; dst; msg; handled } ->
      Fmt.pf ppf "m%d (p%d->p%d) delivered%s: %a" msg_id src dst
        (if handled then " [server]" else " [mailbox]")
        Message.pp msg
  | Received { msg_id; proc; msg; inv } ->
      Fmt.pf ppf "p%d consumes m%d: %a%a" proc msg_id Message.pp msg pp_inv inv
  | Randomized { proc; kind; bound; result; inv } ->
      Fmt.pf ppf "p%d %s-random(%d) = %d%a" proc
        (match kind with Proc.Program_random -> "program" | Proc.Object_random -> "object")
        bound result pp_inv inv
  | Labeled { proc; name; inv } -> Fmt.pf ppf "p%d at <%s>%a" proc name pp_inv inv
  | Noted { proc; name; value; inv } ->
      Fmt.pf ppf "p%d notes %s = %a%a" proc name Util.Value.pp value pp_inv inv
  | Crashed p -> Fmt.pf ppf "p%d crashes" p

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_entry) (entries t)
