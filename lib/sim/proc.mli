(** Process code as a free monad over schedulable operations.

    A ['a Proc.t] value is a pure description of a process: a chain of
    operations, each of which the runtime resolves as one scheduled step.
    Because the description is pure (no hidden mutable state — fresh nonces
    come from the runtime via {!fresh}), running the same program with the
    same random tape and event schedule reproduces the same execution, which
    realizes the paper's [e\[P(O), v, s\]].

    Local computation lives inside the continuations and is invisible to the
    scheduler, matching the paper's step granularity (shared-object accesses,
    sends/receives, and random samplings are the visible steps). *)

type rand_kind =
  | Program_random  (** a [random(V)] instruction of the program itself *)
  | Object_random  (** the iteration choice added by the O^k transformation *)

type _ op =
  | Broadcast : Message.t -> unit op
      (** send to all [n] processes, including the sender *)
  | Send : int * Message.t -> unit op
  | Recv : string * (Message.t -> bool) -> Message.t op
      (** consume the oldest matching mailbox message; blocks while none
          matches. The string describes what is awaited, for traces. *)
  | Read_reg : Base_reg.id -> Util.Value.t op
  | Write_reg : Base_reg.id * Util.Value.t -> unit op
  | Rmw_reg : Base_reg.id * (Util.Value.t -> Util.Value.t * Util.Value.t) -> Util.Value.t op
      (** atomic read-modify-write: one indivisible step applies the
          function to the current value, stores the first component and
          returns the second — the primitive from which single-step
          (strongly linearizable) reference objects are built *)
  | Random : int * rand_kind -> int op  (** uniform sample from [0..n-1] *)
  | Fresh : int op  (** runtime-unique nonce (deterministic) *)
  | Label : string -> unit op  (** named control point, for preamble maps *)
  | Note : string * Util.Value.t -> unit op
      (** structured trace annotation (e.g. the timestamp an ABD operation
          adopted), invisible to other processes *)
  | Call_marker : {
      obj_name : string;
      meth : string;
      arg : Util.Value.t;
      tag : string;
    }
      -> int op  (** records a call action; returns the invocation id *)
  | Ret_marker : { inv : int; value : Util.Value.t } -> unit op

type 'a t = Ret : 'a -> 'a t | Op : 'b op * ('b -> 'a t) -> 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

(** Binding operators: [let*] is {!bind}, [let+] is {!map}. *)
module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** {1 Smart constructors} *)

val broadcast : Message.t -> unit t
val send : int -> Message.t -> unit t
val recv : descr:string -> (Message.t -> bool) -> Message.t t
val read_reg : Base_reg.id -> Util.Value.t t
val write_reg : Base_reg.id -> Util.Value.t -> unit t
val rmw_reg : Base_reg.id -> (Util.Value.t -> Util.Value.t * Util.Value.t) -> Util.Value.t t
val random : kind:rand_kind -> int -> int t
val fresh : int t
val label : string -> unit t
val note : string -> Util.Value.t -> unit t

(** [repeat n body] runs [body 0], ..., [body (n-1)] and collects results. *)
val repeat : int -> (int -> 'a t) -> 'a list t

(** [iter xs f] runs [f x] for each [x] in order. *)
val iter : 'a list -> ('a -> unit t) -> unit t

(** [seq ps] runs the processes in order, discarding results. *)
val seq : unit t list -> unit t
