(** Base shared registers.

    Shared-memory implementations (snapshot, Vitányi–Awerbuch, Israeli–Li)
    are built from registers whose accesses execute atomically — one
    indivisible simulator step. Registers can be declared single-writer
    and/or single-reader; the store faults on violations, which lets the test
    suite check that each construction really uses only the register class
    the paper allows it. *)

type id = { obj_name : string; reg : string; index : int list }
(** A register identity: owning object, register family name, indices (e.g.
    [Report[i][j]] is [{ reg = "report"; index = [i; j] }]). *)

type decl = {
  id : id;
  init : Util.Value.t;
  writers : int list option;  (** [None]: any process may write *)
  readers : int list option;  (** [None]: any process may read *)
}

exception Discipline_violation of string

type store

val id : obj_name:string -> ?index:int list -> string -> id
val pp_id : Format.formatter -> id -> unit
val create_store : decl list -> store

(** [read store rid ~reader] returns the current value; enforces the reader
    discipline and that [rid] was declared. *)
val read : store -> id -> reader:int -> Util.Value.t

(** [write store rid ~writer v]; enforces the writer discipline. *)
val write : store -> id -> writer:int -> Util.Value.t -> unit

(** [snapshot store] lists all registers with their current values, for
    debugging and for hashing model states. *)
val snapshot : store -> (id * Util.Value.t) list
