(** Shared-object implementations hosted by the runtime.

    An implementation contributes (i) the client-side method code, a
    {!Proc.t} run by the invoking process, (ii) optionally a server role: a
    pure handler applied atomically when a message addressed to the object is
    delivered (I/O-automata style), and (iii) the base registers it needs.
    The runtime wraps invocations with call/return marker steps so histories
    come out of traces for free. *)

type handler_result = {
  state : Util.Value.t;  (** successor server state *)
  out : (int * Util.Value.t) list;  (** messages sent: (destination, body) *)
}

type t = {
  name : string;  (** instance name; also the message namespace *)
  invoke : self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Proc.t;
      (** method body, without call/return markers *)
  on_message :
    (self:int ->
    state:Util.Value.t ->
    src:int ->
    body:Util.Value.t ->
    handler_result option)
    option;
      (** server handler; [None] result routes the message to the client
          mailbox; a [None] field means the object has no server role. *)
  init_server : (n:int -> self:int -> Util.Value.t) option;
  registers : n:int -> Base_reg.decl list;
}

(** [call o ~self ~tag ~meth ~arg] is the method body bracketed by call and
    return markers; this is what programs bind into their own code. *)
val call :
  t -> self:int -> tag:string -> meth:string -> arg:Util.Value.t -> Util.Value.t Proc.t

(** [pure_shared_memory ~name ~registers ~invoke] builds an object with no
    server role (snapshot, Vitányi–Awerbuch, Israeli–Li). *)
val pure_shared_memory :
  name:string ->
  registers:(n:int -> Base_reg.decl list) ->
  invoke:(self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Proc.t) ->
  t
