type handler_result = {
  state : Util.Value.t;
  out : (int * Util.Value.t) list;
}

type t = {
  name : string;
  invoke : self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Proc.t;
  on_message :
    (self:int ->
    state:Util.Value.t ->
    src:int ->
    body:Util.Value.t ->
    handler_result option)
    option;
  init_server : (n:int -> self:int -> Util.Value.t) option;
  registers : n:int -> Base_reg.decl list;
}

let call o ~self ~tag ~meth ~arg =
  let open Proc in
  Op
    ( Call_marker { obj_name = o.name; meth; arg; tag },
      fun inv ->
        bind (o.invoke ~self ~meth ~arg) (fun value ->
            Op (Ret_marker { inv; value }, fun () -> Ret value)) )

let pure_shared_memory ~name ~registers ~invoke =
  { name; invoke; on_message = None; init_server = None; registers }
