(** Messages exchanged by object implementations.

    Every message belongs to one shared-object instance ([obj_name]); the
    runtime routes it and stamps source/destination. Bodies are structured
    {!Util.Value.t} data so traces stay printable. *)

type t = { obj_name : string; body : Util.Value.t }

val make : obj_name:string -> Util.Value.t -> t
val pp : Format.formatter -> t -> unit

(** [tagged tag payload] builds the conventional body [Pair (Str tag, payload)]
    used by all bundled objects (e.g. ["query"], ["reply"], ["update"],
    ["ack"]). *)
val tagged : string -> Util.Value.t -> Util.Value.t

(** [tag_of body] extracts the conventional tag; raises
    {!Util.Value.Type_error} for non-conventional bodies. *)
val tag_of : Util.Value.t -> string

(** [payload_of body] extracts the conventional payload. *)
val payload_of : Util.Value.t -> Util.Value.t
