(* Spillable sharded memo. See the mli for the protocol. *)

let log_src = Logs.Src.create "blunting.store" ~doc:"Out-of-core memo store"

module Log = (val Logs.src_log log_src : Logs.LOG)

type slot = Claimed of int | Done of float

type shard = {
  mutex : Mutex.t;
  id : int;
  mutable ram : slot Par.Slice_tbl.t;
  mutable resident : int;  (* byte estimate of [ram] *)
  mutable ram_done : int;  (* resolved entries still in RAM *)
  mutable seg : Segment.t option;  (* no file until the first spill *)
  seg_path : string;
  cache : Block_cache.t;
  water : int;  (* resident ceiling before a spill *)
  mutable s_spilled : int;
  mutable s_runs : int;
  mutable s_bytes_spilled : int;
  mutable s_payload : int;
  mutable s_disk_hits : int;
  mutable s_resolved : int;
}

type t = {
  dir : string;
  shards : shard array;
  shard_mask : int;
  budget : int;
  mutable closed : bool;
}

type stats = {
  budget_bytes : int;
  resident_bytes : int;
  spilled_entries : int;
  spill_runs : int;
  bytes_spilled : int;
  payload_bytes : int;
  evictions : int;
  cache_hits : int;
  cache_misses : int;
  bytes_read : int;
  bytes_written : int;
  disk_hits : int;
  resolved : int;
}

(* Per-entry RAM cost estimate: the Slice_tbl entry record, the owned
   key string (header + rounded payload), a bucket slot and the boxed
   slot variant. Deliberately a little high — the budget is a ceiling,
   not a target. *)
let entry_overhead = 80

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 1

(* best-effort cleanup of stray segment directories on exit *)
let live : t list ref = ref []
let live_mutex = Mutex.create ()

let unregister t =
  Mutex.lock live_mutex;
  live := List.filter (fun s -> s != t) !live;
  Mutex.unlock live_mutex

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun sh ->
        Mutex.lock sh.mutex;
        (match sh.seg with Some s -> Segment.delete s | None -> ());
        sh.seg <- None;
        Mutex.unlock sh.mutex)
      t.shards;
    (try Unix.rmdir t.dir with Unix.Unix_error _ -> ());
    unregister t
  end

let register t =
  Mutex.lock live_mutex;
  live := t :: !live;
  Mutex.unlock live_mutex

let () = at_exit (fun () -> List.iter close !live)

let store_seq = Atomic.make 0

let create ?dir ?(shards = 8) ?(block_size = 4096) ~budget () =
  let budget = max 65_536 budget in
  let nshards = round_pow2 (max 1 shards) in
  let dir =
    match dir with
    | Some d -> d
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "blunting-store-%d-%d" (Unix.getpid ())
             (Atomic.fetch_and_add store_seq 1))
  in
  (try Unix.mkdir dir 0o700 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
      failwith
        (Printf.sprintf "Store.Memo: cannot create %s: %s" dir
           (Unix.error_message e)));
  (* half the budget for the RAM tier, half for the block caches *)
  let water = max 4096 (budget / 2 / nshards) in
  let cache_blocks = max 1 (budget / 2 / nshards / block_size) in
  let t =
    {
      dir;
      shards =
        Array.init nshards (fun id ->
            {
              mutex = Mutex.create ();
              id;
              ram = Par.Slice_tbl.create ~size:1024 ();
              resident = 0;
              ram_done = 0;
              seg = None;
              seg_path =
                Filename.concat dir (Printf.sprintf "shard-%02d.seg" id);
              cache =
                Block_cache.create ~block_size ~shard:id
                  ~capacity:cache_blocks ();
              water;
              s_spilled = 0;
              s_runs = 0;
              s_bytes_spilled = 0;
              s_payload = 0;
              s_disk_hits = 0;
              s_resolved = 0;
            });
      shard_mask = nshards - 1;
      budget;
      closed = false;
    }
  in
  Log.debug (fun f ->
      f "created store %s: %d shards, %d byte budget (%d water, %d cache \
         blocks per shard)"
        dir nshards budget water cache_blocks);
  register t;
  t

let shard_count t = Array.length t.shards

let[@inline] shard_of_hash t h = t.shards.((h lsr 17) land t.shard_mask)

let segment sh =
  match sh.seg with
  | Some s -> s
  | None ->
      let s = Segment.create ~path:sh.seg_path ~cache:sh.cache in
      sh.seg <- Some s;
      s

(* Write every resolved RAM entry out as one sorted run and rebuild the
   shard table with only the live claims. Called with the shard lock
   held, from [resolve]. *)
let spill sh =
  let entries = Array.make sh.ram_done (0, "", 0.0) in
  let n = ref 0 in
  let claims = ref [] in
  Par.Slice_tbl.iter sh.ram (fun key slot ->
      match slot with
      | Done v ->
          entries.(!n) <- (Par.Slice_tbl.hash_string key, key, v);
          incr n
      | Claimed o -> claims := (key, o) :: !claims);
  assert (!n = sh.ram_done);
  let payload =
    Array.fold_left (fun a (_, k, _) -> a + String.length k + 8) 0 entries
  in
  let bytes = Segment.append_run (segment sh) entries in
  sh.s_spilled <- sh.s_spilled + sh.ram_done;
  sh.s_runs <- sh.s_runs + 1;
  sh.s_bytes_spilled <- sh.s_bytes_spilled + bytes;
  sh.s_payload <- sh.s_payload + payload;
  if Obs.Ring.enabled () then
    Obs.Ring.record Obs.Ring.Store_spill sh.ram_done bytes;
  Log.debug (fun f ->
      f "shard %d: spilled %d entries (%d bytes, %d claims stay)" sh.id
        sh.ram_done bytes
        (List.length !claims));
  let fresh = Par.Slice_tbl.create ~size:1024 () in
  let resident = ref 0 in
  List.iter
    (fun (key, o) ->
      ignore (Par.Slice_tbl.probe_string fresh key ~default:(Claimed o));
      resident := !resident + String.length key + entry_overhead)
    !claims;
  sh.ram <- fresh;
  sh.resident <- !resident;
  sh.ram_done <- 0

let find_or_claim_slice t data ~len ~owner =
  let hash = Par.Slice_tbl.hash_slice data len in
  let sh = shard_of_hash t hash in
  Mutex.lock sh.mutex;
  let r =
    match Par.Slice_tbl.find_slice sh.ram data ~len with
    | Some e -> (
        match e.Par.Slice_tbl.value with
        | Done v -> `Value v
        | Claimed o -> `Busy o)
    | None -> (
        let on_disk =
          match sh.seg with
          | None -> None
          | Some seg -> Segment.find seg ~hash ~key:data ~koff:0 ~klen:len
        in
        match on_disk with
        | Some v ->
            sh.s_disk_hits <- sh.s_disk_hits + 1;
            `Value v
        | None ->
            let e =
              Par.Slice_tbl.probe_slice sh.ram data ~len
                ~default:(Claimed owner)
            in
            sh.resident <- sh.resident + len + entry_overhead;
            `Claimed e.Par.Slice_tbl.key)
  in
  Mutex.unlock sh.mutex;
  r

let resolve t key v =
  let hash = Par.Slice_tbl.hash_string key in
  let sh = shard_of_hash t hash in
  Mutex.lock sh.mutex;
  (match Par.Slice_tbl.find_string sh.ram key with
  | Some e -> (
      match e.Par.Slice_tbl.value with
      | Claimed _ -> e.Par.Slice_tbl.value <- Done v
      | Done _ ->
          Mutex.unlock sh.mutex;
          invalid_arg "Store.Memo.resolve: key already resolved")
  | None ->
      (* absent from RAM: either never claimed, or already resolved AND
         spilled. The disk check keeps the second case a hard error —
         silently re-inserting would spill a duplicate record, breaking
         the segment's distinct-keys contract. *)
      (match sh.seg with
      | Some seg when Segment.find_string seg ~hash ~key <> None ->
          Mutex.unlock sh.mutex;
          invalid_arg "Store.Memo.resolve: key already resolved (spilled)"
      | _ -> ());
      (* a resolve may race no one here (claims precede resolves), but
         mirror Sharded_tbl: resolving an absent key inserts it *)
      ignore (Par.Slice_tbl.probe_string sh.ram key ~default:(Done v));
      sh.resident <- sh.resident + String.length key + entry_overhead);
  sh.ram_done <- sh.ram_done + 1;
  sh.s_resolved <- sh.s_resolved + 1;
  if sh.resident > sh.water && sh.ram_done > 0 then spill sh;
  Mutex.unlock sh.mutex

let get t key =
  let hash = Par.Slice_tbl.hash_string key in
  let sh = shard_of_hash t hash in
  Mutex.lock sh.mutex;
  let r =
    match Par.Slice_tbl.find_string sh.ram key with
    | Some e -> (
        match e.Par.Slice_tbl.value with Done v -> Some v | Claimed _ -> None)
    | None -> (
        match sh.seg with
        | None -> None
        | Some seg -> (
            match Segment.find_string seg ~hash ~key with
            | Some v ->
                sh.s_disk_hits <- sh.s_disk_hits + 1;
                Some v
            | None -> None))
  in
  Mutex.unlock sh.mutex;
  r

let resolved t =
  Array.fold_left
    (fun a sh ->
      Mutex.lock sh.mutex;
      let n = sh.s_resolved in
      Mutex.unlock sh.mutex;
      a + n)
    0 t.shards

let stats t =
  let z =
    {
      budget_bytes = t.budget;
      resident_bytes = 0;
      spilled_entries = 0;
      spill_runs = 0;
      bytes_spilled = 0;
      payload_bytes = 0;
      evictions = 0;
      cache_hits = 0;
      cache_misses = 0;
      bytes_read = 0;
      bytes_written = 0;
      disk_hits = 0;
      resolved = 0;
    }
  in
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mutex;
      let c = Block_cache.stats sh.cache in
      let acc =
        {
          acc with
          resident_bytes = acc.resident_bytes + sh.resident;
          spilled_entries = acc.spilled_entries + sh.s_spilled;
          spill_runs = acc.spill_runs + sh.s_runs;
          bytes_spilled = acc.bytes_spilled + sh.s_bytes_spilled;
          payload_bytes = acc.payload_bytes + sh.s_payload;
          evictions = acc.evictions + c.Block_cache.evictions;
          cache_hits = acc.cache_hits + c.Block_cache.hits;
          cache_misses = acc.cache_misses + c.Block_cache.misses;
          bytes_read = acc.bytes_read + c.Block_cache.bytes_read;
          bytes_written = acc.bytes_written + c.Block_cache.bytes_written;
          disk_hits = acc.disk_hits + sh.s_disk_hits;
          resolved = acc.resolved + sh.s_resolved;
        }
      in
      Mutex.unlock sh.mutex;
      acc)
    z t.shards

let cache_hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

let read_amplification s =
  if s.bytes_spilled = 0 then 0.0
  else float_of_int s.bytes_read /. float_of_int s.bytes_spilled

let write_amplification s =
  if s.payload_bytes = 0 then 0.0
  else float_of_int s.bytes_written /. float_of_int s.payload_bytes

let pp_stats ppf s =
  Fmt.pf ppf
    "budget %d B, resident %d B, spilled %d entries in %d runs (%d B), %d \
     disk hits, cache %d/%d hits (%.1f%%), %d evictions, read amp %.2f, \
     write amp %.2f"
    s.budget_bytes s.resident_bytes s.spilled_entries s.spill_runs
    s.bytes_spilled s.disk_hits s.cache_hits
    (s.cache_hits + s.cache_misses)
    (100.0 *. cache_hit_rate s)
    s.evictions (read_amplification s) (write_amplification s)
