(** One shard's on-disk segment: an append-only log of immutable sorted
    runs, read through a {!Block_cache}.

    A run is a batch of resolved memo entries written in one append —
    fixed-size records (the record is the canonical {!Mdp.Key} byte
    encoding stored verbatim, padded to the run's widest key) sorted by
    (key hash, key length, key bytes), preceded by a 16-byte header:

    {v
      offset  size  field
      0       4     magic "BLRN"
      4       4     record count (u32 LE)
      8       2     padded key width (u16 LE)
      10      2     reserved (zero)
      12      4     reserved (zero)
    v}

    followed by [count] records of [8 + 2 + padded + 8] bytes each —
    key hash (i64 LE), key length (u16 LE), key bytes zero-padded to the
    run's width, value (IEEE-754 bits, i64 LE; floats round-trip
    exactly). Runs start on block boundaries (the gap is zero-filled),
    so a cached block is immutable forever and recovery arithmetic is
    offset-only.

    A probe checks each run newest-first: an in-RAM bloom filter (two
    probes derived from the stored 64-bit hash) rejects most absent
    keys without touching the file; survivors binary-search the run's
    records through the block cache.

    Crash recovery is the open path: {!create} scans headers from
    offset 0, accepts each complete, magic-tagged run (rebuilding its
    bloom filter from the record hashes) and truncates the file at the
    first header that is missing, corrupt, or whose run extends past
    end-of-file — exactly the state a crash mid-append leaves behind.
    Entries never span runs, so truncation loses only the append in
    flight. *)

type t

(** [create ~path ~cache] opens (or creates) the segment file at [path]
    and recovers every complete run already in it. *)
val create : path:string -> cache:Block_cache.t -> t

(** [append_run t entries] sorts [(hash, key, value)] entries and
    appends them as one run; returns the bytes appended (header,
    records and block padding). Keys must be distinct and absent from
    every earlier run. Empty input appends nothing and returns 0. *)
val append_run : t -> (int * string * float) array -> int

(** [find t ~hash ~key ~koff ~klen] probes every run, newest first, for
    the key equal to [Bytes.sub key koff klen] (whose hash must be
    [hash], as computed by {!Par.Slice_tbl.hash_slice}). *)
val find : t -> hash:int -> key:Bytes.t -> koff:int -> klen:int -> float option

(** [find_string t ~hash ~key] — {!find} on a string key, no copy. *)
val find_string : t -> hash:int -> key:string -> float option

val runs : t -> int

(** [entries t] — records across all recovered runs. *)
val entries : t -> int

(** [size t] — current (block-aligned) file size in bytes. *)
val size : t -> int

val path : t -> string

(** [close t] closes the file descriptor (idempotent). *)
val close : t -> unit

(** [delete t] closes and removes the file (best-effort). *)
val delete : t -> unit
