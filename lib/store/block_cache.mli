(** A fixed-capacity LRU cache of file blocks, the read path of the
    out-of-core memo store ({!Memo}).

    The design is the single-level heart of the BlockCacheSystem from
    verified-betrfs: the file is an array of fixed-size blocks, reads go
    through an in-RAM cache of recently-touched blocks, and a block can
    be {e pinned} while a caller holds a reference into its bytes —
    pinned blocks are never evicted, evictions take the least-recently
    used unpinned block. Segment runs start on block boundaries and are
    never rewritten, so a cached block can never go stale.

    One cache serves one file ({!Segment} keeps a cache per shard
    segment). NOT thread-safe: the owning shard's mutex serializes every
    call, which is also what makes pin/unpin around a multi-block copy
    race-free.

    When every resident block is pinned the cache grows past its
    capacity rather than evicting a pinned block; it shrinks back as
    soon as unpins make eviction possible again. *)

type t

type stats = {
  hits : int;  (** block requests answered from the cache *)
  misses : int;  (** block requests that went to the file *)
  evictions : int;  (** blocks dropped to make room *)
  bytes_read : int;  (** bytes fetched from the file on misses *)
  bytes_written : int;  (** bytes appended through {!note_write} *)
}

(** [create ?block_size ~capacity ()] — a cache of at most [capacity]
    unpinned blocks (at least 1) of [block_size] bytes (default 4096,
    minimum 64). [shard] tags the cache's trace events. *)
val create : ?block_size:int -> ?shard:int -> capacity:int -> unit -> t

val block_size : t -> int

(** [read t fd ~off ~len ~dst ~dst_off] copies [len] bytes at file
    offset [off] into [dst] starting at [dst_off], faulting missing
    blocks in from [fd] and pinning each block only for the duration of
    its copy. Raises [Failure] if the file ends before [off + len] — the
    caller ({!Segment}) only ever reads inside a recovered run. *)
val read : t -> Unix.file_descr -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit

(** [pin t idx] / [unpin t idx] — manual pin management for callers that
    keep a reference across several [read]s. [pin] raises [Not_found] if
    the block is not resident; pins nest ([unpin] decrements). [unpin]
    of an unpinned resident block raises [Invalid_argument]. *)
val pin : t -> int -> unit

val unpin : t -> int -> unit

(** [cached t idx] — is block [idx] resident? *)
val cached : t -> int -> bool

(** [cached_blocks t] — resident block indices, most recently used
    first (test hook; O(resident)). *)
val cached_blocks : t -> int list

(** [note_write t n] accounts [n] bytes appended to the underlying file
    (writes bypass the cache; runs are read back through it). *)
val note_write : t -> int -> unit

(** [invalidate t] drops every resident unpinned block (used when the
    underlying file is truncated during recovery). *)
val invalidate : t -> unit

val stats : t -> stats
