(* Sorted-run segment files. See the mli for the on-disk format. *)

let magic = "BLRN"
let header_size = 16

type run = {
  r_off : int;  (* file offset of the header *)
  r_count : int;
  r_padded : int;  (* padded key width *)
  r_rsize : int;  (* record size: 18 + r_padded *)
  r_bloom : Bytes.t;
  r_mask : int;  (* bloom bit count - 1 *)
}

type t = {
  tpath : string;
  fd : Unix.file_descr;
  cache : Block_cache.t;
  mutable tsize : int;  (* logical end: next run's (aligned) offset *)
  mutable truns : run list;  (* newest first *)
  mutable scratch : Bytes.t;  (* record read buffer *)
  mutable closed : bool;
}

let align_up n bs = (n + bs - 1) / bs * bs

(* ---- bloom filters ----------------------------------------------------

   Two probes per key, both derived from the stored 64-bit FNV hash: the
   raw hash and a multiplicative remix. ~8 bits per entry gives a few
   percent false positives — each false positive costs one binary search
   through the cache, never a wrong answer. *)

let bloom_mix h = (h lsr 17) lxor (h * 0x27d4eb2f) land max_int

let bloom_bits count =
  let need = max 64 (8 * count) in
  let rec go c = if c >= need then c else go (c * 2) in
  go 64

let bloom_set bloom mask h =
  let set i = Bytes.set_uint8 bloom (i lsr 3)
      (Bytes.get_uint8 bloom (i lsr 3) lor (1 lsl (i land 7)))
  in
  set (h land mask);
  set (bloom_mix h land mask)

let bloom_maybe bloom mask h =
  let test i = Bytes.get_uint8 bloom (i lsr 3) land (1 lsl (i land 7)) <> 0 in
  test (h land mask) && test (bloom_mix h land mask)

(* ---- raw file IO (open-path scan only; probes go through the cache) -- *)

let pread_exact fd ~off buf ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go k =
    if k >= len then len
    else
      match Unix.read fd buf k (len - k) with 0 -> k | r -> go (k + r)
  in
  go 0

(* ---- recovery scan ---------------------------------------------------- *)

let scan_runs fd cache =
  let file_size = (Unix.fstat fd).Unix.st_size in
  let bs = Block_cache.block_size cache in
  let hdr = Bytes.create header_size in
  let rec go off acc =
    if off + header_size > file_size then (off, acc)
    else if pread_exact fd ~off hdr ~len:header_size <> header_size then
      (off, acc)
    else if Bytes.sub_string hdr 0 4 <> magic then (off, acc)
    else
      let count = Int32.to_int (Bytes.get_int32_le hdr 4) in
      let padded = Bytes.get_uint16_le hdr 8 in
      if count <= 0 || padded <= 0 then (off, acc)
      else
        let rsize = 18 + padded in
        let run_end = off + header_size + (count * rsize) in
        if run_end > file_size then (off, acc)
        else begin
          (* complete run: rebuild its bloom from the record hashes *)
          let mask = bloom_bits count - 1 in
          let bloom = Bytes.make ((mask + 1) lsr 3) '\000' in
          let chunk = Bytes.create (max rsize (65536 / rsize * rsize)) in
          let per = Bytes.length chunk / rsize in
          let rec fill i =
            if i < count then begin
              let n = min per (count - i) in
              let len = n * rsize in
              if
                pread_exact fd
                  ~off:(off + header_size + (i * rsize))
                  chunk ~len
                <> len
              then failwith "Segment: run shrank during scan";
              for j = 0 to n - 1 do
                bloom_set bloom mask
                  (Int64.to_int (Bytes.get_int64_le chunk (j * rsize)))
              done;
              fill (i + n)
            end
          in
          fill 0;
          let run =
            { r_off = off; r_count = count; r_padded = padded; r_rsize = rsize;
              r_bloom = bloom; r_mask = mask }
          in
          go (align_up run_end bs) (run :: acc)
        end
  in
  let logical_end, runs_newest_first = go 0 [] in
  (* anything past the last complete run is a torn append: drop it *)
  if logical_end < file_size then Unix.ftruncate fd logical_end;
  (logical_end, runs_newest_first)

let create ~path ~cache =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o600 in
  let tsize, truns = scan_runs fd cache in
  {
    tpath = path;
    fd;
    cache;
    tsize;
    truns;
    scratch = Bytes.create 256;
    closed = false;
  }

(* ---- appends ----------------------------------------------------------- *)

let write_exact fd ~off buf ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go k =
    if k < len then go (k + Unix.write fd buf k (len - k))
  in
  go 0

let append_run t entries =
  if Array.length entries = 0 then 0
  else begin
    Array.sort
      (fun (h1, k1, _) (h2, k2, _) ->
        match compare (h1 : int) h2 with
        | 0 -> (
            match compare (String.length k1) (String.length k2) with
            | 0 -> String.compare k1 k2
            | c -> c)
        | c -> c)
      entries;
    let count = Array.length entries in
    let padded =
      Array.fold_left (fun m (_, k, _) -> max m (String.length k)) 1 entries
    in
    let rsize = 18 + padded in
    let bs = Block_cache.block_size t.cache in
    let total = align_up (header_size + (count * rsize)) bs in
    let buf = Bytes.make total '\000' in
    Bytes.blit_string magic 0 buf 0 4;
    Bytes.set_int32_le buf 4 (Int32.of_int count);
    Bytes.set_uint16_le buf 8 padded;
    let mask = bloom_bits count - 1 in
    let bloom = Bytes.make ((mask + 1) lsr 3) '\000' in
    Array.iteri
      (fun i (h, k, v) ->
        let off = header_size + (i * rsize) in
        Bytes.set_int64_le buf off (Int64.of_int h);
        Bytes.set_uint16_le buf (off + 8) (String.length k);
        Bytes.blit_string k 0 buf (off + 10) (String.length k);
        Bytes.set_int64_le buf (off + 10 + padded) (Int64.bits_of_float v);
        bloom_set bloom mask h)
      entries;
    write_exact t.fd ~off:t.tsize buf ~len:total;
    Block_cache.note_write t.cache total;
    let run =
      { r_off = t.tsize; r_count = count; r_padded = padded; r_rsize = rsize;
        r_bloom = bloom; r_mask = mask }
    in
    t.tsize <- t.tsize + total;
    t.truns <- run :: t.truns;
    total
  end

(* ---- probes ------------------------------------------------------------ *)

let scratch_for t n =
  if Bytes.length t.scratch < n then t.scratch <- Bytes.create n;
  t.scratch

(* Compare the probe (hash, key) against record [i] of [run], reading the
   record through the cache into the scratch buffer; also leaves the
   record bytes in scratch so a match can pull the value out. *)
let compare_record t run i ~hash ~key ~koff ~klen =
  let rec_off = run.r_off + header_size + (i * run.r_rsize) in
  let buf = scratch_for t run.r_rsize in
  Block_cache.read t.cache t.fd ~off:rec_off ~len:run.r_rsize ~dst:buf
    ~dst_off:0;
  let rhash = Int64.to_int (Bytes.get_int64_le buf 0) in
  match compare hash rhash with
  | 0 -> (
      let rklen = Bytes.get_uint16_le buf 8 in
      match compare klen rklen with
      | 0 ->
          let rec cmp j =
            if j >= klen then 0
            else
              match
                compare (Bytes.get_uint8 key (koff + j))
                  (Bytes.get_uint8 buf (10 + j))
              with
              | 0 -> cmp (j + 1)
              | c -> c
          in
          cmp 0
      | c -> c)
  | c -> c

let find_in_run t run ~hash ~key ~koff ~klen =
  if not (bloom_maybe run.r_bloom run.r_mask hash) then None
  else
    let rec go lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        match compare_record t run mid ~hash ~key ~koff ~klen with
        | 0 ->
            (* the matching record is still in scratch *)
            Some
              (Int64.float_of_bits
                 (Bytes.get_int64_le t.scratch (10 + run.r_padded)))
        | c when c < 0 -> go lo (mid - 1)
        | _ -> go (mid + 1) hi
    in
    go 0 (run.r_count - 1)

let find t ~hash ~key ~koff ~klen =
  let rec go = function
    | [] -> None
    | run :: rest -> (
        match find_in_run t run ~hash ~key ~koff ~klen with
        | Some v -> Some v
        | None -> go rest)
  in
  go t.truns

let find_string t ~hash ~key =
  find t ~hash ~key:(Bytes.unsafe_of_string key) ~koff:0
    ~klen:(String.length key)

let runs t = List.length t.truns
let entries t = List.fold_left (fun a r -> a + r.r_count) 0 t.truns
let size t = t.tsize
let path t = t.tpath

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let delete t =
  close t;
  try Sys.remove t.tpath with Sys_error _ -> ()
