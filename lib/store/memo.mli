(** The out-of-core memo: a spillable, sharded computation cache with
    the same find-or-claim protocol as {!Par.Sharded_tbl}, backed by
    {!Segment} files through per-shard {!Block_cache}s once the in-RAM
    tier exceeds its budget.

    Keys are canonical state encodings (the {!Mdp.Key} byte packing);
    values are floats, stored as IEEE-754 bits so budgeted and in-RAM
    solves return bit-identical values. Keys hash to one of [shards]
    independent shards (same FNV routing as {!Par.Slice_tbl}), each a
    {!Par.Slice_tbl} of live claims and recently resolved values behind
    its own mutex, plus one segment file.

    The exactly-once discipline is {!Par.Sharded_tbl}'s: per key, one
    caller is told [`Claimed] and must {!resolve}; everyone else gets
    the value or the claim's owner id. Sequential solvers use owner 0 —
    [`Busy 0] on re-entry is the cycle signal. Because a key is claimed
    once, resolved once, and spilled at most once, budgeted and in-RAM
    solves see identical hit/miss/state counts.

    Spilling happens inside {!resolve}: when a shard's resident-byte
    estimate passes its share of the budget, every resolved entry in the
    shard is written out as one sorted run and the shard's RAM tier is
    rebuilt holding only live claims (claims never spill — they are
    transient and bounded by the solve's recursion depth or frontier).
    A probe that misses RAM checks the shard's runs newest-first (bloom
    filter, then binary search through the block cache).

    No file is created until the first spill, so an over-provisioned
    budget costs a pointer check per probe and nothing else. *)

type t

type stats = {
  budget_bytes : int;
  resident_bytes : int;  (** current in-RAM tier estimate, all shards *)
  spilled_entries : int;  (** entries living in segment files *)
  spill_runs : int;
  bytes_spilled : int;  (** file bytes appended by spills *)
  payload_bytes : int;  (** key + value bytes of spilled entries *)
  evictions : int;  (** block-cache evictions *)
  cache_hits : int;
  cache_misses : int;
  bytes_read : int;
  bytes_written : int;
  disk_hits : int;  (** probes answered from a segment file *)
  resolved : int;  (** total resolved entries (RAM + disk) *)
}

(** [create ?dir ?shards ?block_size ~budget ()] — a store that starts
    spilling once its RAM tier estimate exceeds [budget] bytes (clamped
    to at least 64 KiB). Segment files live under [dir] (default: a
    fresh directory under the system temp dir, removed on {!close} and
    at exit). [shards] (default 8) is rounded up to a power of two. *)
val create : ?dir:string -> ?shards:int -> ?block_size:int -> budget:int -> unit -> t

val shard_count : t -> int

(** [find_or_claim_slice t data ~len ~owner] probes the key
    [Bytes.sub_string data 0 len]:
    - [`Value v] — resolved (in RAM or on disk);
    - [`Busy o] — claimed by owner-id [o], not yet resolved;
    - [`Claimed key] — the claim is installed for this caller, which
      must eventually {!resolve} [key]. *)
val find_or_claim_slice :
  t -> Bytes.t -> len:int -> owner:int -> [ `Value of float | `Busy of int | `Claimed of string ]

(** [resolve t key v] publishes the value for a claimed (or absent) key
    and spills the shard if it is over budget. Raises
    [Invalid_argument] on a second resolution of the same key. *)
val resolve : t -> string -> float -> unit

(** [get t key] is the resolved value, [None] while absent or claimed. *)
val get : t -> string -> float option

(** [resolved t] — total entries ever resolved; with the exactly-once
    protocol this equals the distinct-state count of the solve. *)
val resolved : t -> int

val stats : t -> stats

(** [cache_hit_rate s] / [read_amplification s] (bytes read per spilled
    byte) / [write_amplification s] (file bytes per payload byte) —
    derived figures used by the v6 telemetry block. *)
val cache_hit_rate : stats -> float

val read_amplification : stats -> float
val write_amplification : stats -> float
val pp_stats : Format.formatter -> stats -> unit

(** [close t] closes and deletes every segment file and the store's own
    temp directory (idempotent; automatic at process exit). *)
val close : t -> unit
