(* LRU block cache over one segment file.

   Intrusive doubly-linked list threaded through the nodes (head = most
   recently used), plus a Hashtbl from block index to node. All four
   operations — hit, miss, evict, pin — are O(1); [cached_blocks] walks
   the list for the tests. The owning shard's mutex serializes callers,
   so nothing here synchronizes. *)

type node = {
  idx : int;
  data : Bytes.t;
  mutable valid : int;  (* bytes of [data] that came from the file *)
  mutable pins : int;
  mutable prev : node option;  (* toward the MRU end *)
  mutable next : node option;  (* toward the LRU end *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bytes_read : int;
  bytes_written : int;
}

type t = {
  block_size : int;
  capacity : int;
  shard : int;
  tbl : (int, node) Hashtbl.t;
  mutable head : node option;  (* MRU *)
  mutable tail : node option;  (* LRU *)
  mutable resident : int;
  mutable unpinned : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ?(block_size = 4096) ?(shard = 0) ~capacity () =
  {
    block_size = max 64 block_size;
    capacity = max 1 capacity;
    shard;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    resident = 0;
    unpinned = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let block_size t = t.block_size

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  unlink t n;
  push_front t n

(* Evict from the LRU end, skipping pinned nodes. If everything resident
   is pinned the cache temporarily exceeds capacity — a pinned block must
   stay byte-stable for whoever pinned it. *)
let evict_to_capacity t =
  let rec go = function
    | None -> ()
    | Some n when t.unpinned <= t.capacity -> ignore n
    | Some n ->
        let before = n.prev in
        if n.pins = 0 then begin
          unlink t n;
          Hashtbl.remove t.tbl n.idx;
          t.resident <- t.resident - 1;
          t.unpinned <- t.unpinned - 1;
          t.evictions <- t.evictions + 1;
          if Obs.Ring.enabled () then
            Obs.Ring.record Obs.Ring.Store_evict t.shard n.idx
        end;
        go before
  in
  if t.unpinned > t.capacity then go t.tail

let fault t fd idx =
  let data = Bytes.create t.block_size in
  let off = idx * t.block_size in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  (* a block read can come back in pieces; loop until EOF or full *)
  let rec fill k =
    if k >= t.block_size then k
    else
      match Unix.read fd data k (t.block_size - k) with
      | 0 -> k
      | r -> fill (k + r)
  in
  let valid = fill 0 in
  t.bytes_read <- t.bytes_read + valid;
  let n = { idx; data; valid; pins = 0; prev = None; next = None } in
  push_front t n;
  Hashtbl.add t.tbl idx n;
  t.resident <- t.resident + 1;
  t.unpinned <- t.unpinned + 1;
  evict_to_capacity t;
  n

let get_block t fd idx =
  match Hashtbl.find_opt t.tbl idx with
  | Some n ->
      t.hits <- t.hits + 1;
      if Obs.Ring.enabled () then
        Obs.Ring.record Obs.Ring.Store_cache_hit t.shard idx;
      touch t n;
      n
  | None ->
      t.misses <- t.misses + 1;
      if Obs.Ring.enabled () then
        Obs.Ring.record Obs.Ring.Store_cache_miss t.shard idx;
      fault t fd idx

let pin_node t n =
  if n.pins = 0 then t.unpinned <- t.unpinned - 1;
  n.pins <- n.pins + 1

let unpin_node t n =
  if n.pins <= 0 then invalid_arg "Block_cache.unpin: block is not pinned";
  n.pins <- n.pins - 1;
  if n.pins = 0 then begin
    t.unpinned <- t.unpinned + 1;
    evict_to_capacity t
  end

let pin t idx =
  match Hashtbl.find_opt t.tbl idx with
  | Some n -> pin_node t n
  | None -> raise Not_found

let unpin t idx =
  match Hashtbl.find_opt t.tbl idx with
  | Some n -> unpin_node t n
  | None -> raise Not_found

let cached t idx = Hashtbl.mem t.tbl idx

let cached_blocks t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.idx :: acc) n.next
  in
  go [] t.head

let read t fd ~off ~len ~dst ~dst_off =
  if len < 0 || off < 0 then invalid_arg "Block_cache.read";
  let bs = t.block_size in
  let rec go off len dst_off =
    if len > 0 then begin
      let idx = off / bs in
      let in_block = off - (idx * bs) in
      let chunk = min len (bs - in_block) in
      let n = get_block t fd idx in
      if n.valid < in_block + chunk then
        failwith
          (Printf.sprintf
             "Block_cache.read: short block %d (%d bytes valid, need %d)" idx
             n.valid (in_block + chunk));
      (* pinned for the copy: a multi-block read faulting block k+1 must
         not evict block k's bytes mid-copy in some future refactor —
         and the pin path is exactly what the tests exercise *)
      pin_node t n;
      Bytes.blit n.data in_block dst dst_off chunk;
      unpin_node t n;
      go (off + chunk) (len - chunk) (dst_off + chunk)
    end
  in
  go off len dst_off

let note_write t n = t.bytes_written <- t.bytes_written + n

let invalidate t =
  let drop =
    Hashtbl.fold (fun idx n acc -> if n.pins = 0 then (idx, n) :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun (idx, n) ->
      unlink t n;
      Hashtbl.remove t.tbl idx;
      t.resident <- t.resident - 1;
      t.unpinned <- t.unpinned - 1)
    drop

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
  }
