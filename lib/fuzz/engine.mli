(** The fuzzing engine: seeded case generation, oracle evaluation,
    shrinking and corpus management.

    One fuzz session is a pure function of [(seed, budget)] when the
    budget is an iteration count: case generation, scheduling, random
    tapes and lockstep playouts all derive from {!Util.Rng.stream} on
    disjoint per-iteration indices, failures are collected in iteration
    order, and shrinking is deterministic — two runs with the same seed
    and budget produce identical summaries (and byte-identical corpus
    files), at every [--jobs] count. Time budgets trade that determinism
    for wall-clock control; the nightly CI job uses them.

    Iterations fan out over a {!Par.Pool} ([jobs] domains). The pool is
    managed by {!Par.Pool.with_pool}, so a raised oracle failure or any
    other exception unwinds without leaving worker domains alive. *)

type budget = Iterations of int | Seconds of float

(** [parse_budget s] accepts an iteration count (["10000"]) or a duration
    (["300s"], ["5m"]). *)
val parse_budget : string -> (budget, string) result

val pp_budget : Format.formatter -> budget -> unit

type summary = {
  seed : int;
  iterations : int;  (** cases generated and executed *)
  lin_checks : int;
  model_checks : int;
  dist_checks : int;
  par_checks : int;
  prune_checks : int;
  failures : Oracle.failure list;  (** shrunk, in iteration order *)
  corpus_files : string list;  (** written for each failure, if a dir was given *)
}

(** [pp_summary] is deliberately wall-clock-free: two deterministic runs
    print byte-identical summaries (the acceptance criterion CI checks). *)
val pp_summary : Format.formatter -> summary -> unit

val has_failures : summary -> bool

(** [run ~seed ~budget ()] fuzzes. [jobs] (default 1) sizes the domain
    pool; [corpus_dir] (default none) receives one corpus file per shrunk
    failure; [planted] (default false) makes every case use the broken
    no-write-back ABD so the failure path is exercised; [dist_trials]
    (default 400) sizes the distribution oracle's samples;
    [max_failures] (default 10) stops the session early once that many
    failures are collected. *)
val run :
  ?jobs:int ->
  ?corpus_dir:string ->
  ?planted:bool ->
  ?dist_trials:int ->
  ?max_failures:int ->
  seed:int ->
  budget:budget ->
  unit ->
  summary

(** [replay_file path] re-executes a corpus entry and evaluates its
    oracle. [Ok message] when the recorded expectation (fail or pass) is
    met, [Error message] when the verdict flipped or the file is
    unreadable. The replay runs under {!Obs.Ring} tracing (enabled for
    its duration, restored to disabled after), so the message names the
    failing oracle with its diagnostic and attributes the adversary's
    decisions along the (shrunk) schedule — decision count, enabled-set
    size range and the step/deliver/crash split. *)
val replay_file : string -> (string, string) result
