(** Greedy schedule shrinking.

    Failing schedules are arrays of choice codes (interpreted modulo the
    number of enabled events, {!Adversary.Schedulers.of_codes}), so every
    sub-array of a schedule is itself a valid schedule — deletion and
    truncation never produce an unrunnable input. The shrinker exploits
    this: starting from a failing schedule it greedily (1) truncates to
    the shortest failing prefix, (2) deletes interior codes one at a time,
    and (3) canonicalizes surviving codes toward 0, re-checking the
    failure predicate after each candidate edit and keeping an edit only
    when the failure persists.

    The result is {e 1-minimal}: dropping the last code, deleting any
    single code, or zeroing any non-zero code makes the failure disappear
    (unless the attempt budget ran out first). Shrinking is deterministic
    — same predicate and input, same output — and idempotent: a shrunk
    schedule shrinks to itself. *)

(** [minimize ~fails schedule] greedily minimizes [schedule], assuming
    [fails schedule] holds (raises [Invalid_argument] otherwise). [fails]
    must be deterministic. [max_attempts] (default [10_000]) bounds the
    number of predicate evaluations; the best candidate so far is
    returned when the budget runs out. *)
val minimize :
  ?max_attempts:int -> fails:(int array -> bool) -> int array -> int array

(** [attempts_used ()] is the number of predicate evaluations made by the
    most recent [minimize] call — surfaced in engine summaries. *)
val attempts_used : unit -> int
