open Util

let log_src = Logs.Src.create "blunting.fuzz" ~doc:"Fuzzing engine events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type failure = {
  oracle : string;
  seed : int;
  iter : int;
  case : Case.t option;
  schedule : int array;
  detail : string;
}

let pp_failure ppf f =
  Fmt.pf ppf "[%s] seed %d iter %d%a: %s (schedule length %d)" f.oracle f.seed
    f.iter
    (Fmt.option (fun ppf c -> Fmt.pf ppf " %a" Case.pp c))
    f.case f.detail
    (Array.length f.schedule)

(* Stream indices: iteration [i] owns indices [4i .. 4i+3] — case
   generation, scheduler, random tape, lockstep playout — so no two
   consumers of the seed ever share a stream. *)
let case_stream ~seed ~iter = Rng.stream ~seed ~index:(4 * iter)
let sched_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 1)
let tape_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 2)
let lockstep_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 3)

let run_recorded ~seed ~iter case =
  let t =
    Sim.Runtime.create (Case.config case)
      (Sim.Runtime.Gen (tape_stream ~seed ~iter))
  in
  let recorded = ref [] in
  let rng = sched_stream ~seed ~iter in
  (* Half the runs schedule uniformly, half procrastinate deliveries —
     the adversary style that exposes stale-read protocol bugs. The
     recorded codes are policy-agnostic, so replay needs no flag. *)
  let policy =
    if Rng.int rng 2 = 0 then Adversary.Schedulers.uniform
    else Adversary.Schedulers.lazy_delivery
  in
  let scheduler = Adversary.Schedulers.recording policy rng recorded in
  (match Sim.Runtime.run t ~max_steps:(Case.max_steps case) scheduler with
  | Sim.Runtime.Completed -> ()
  | r ->
      Log.warn (fun m ->
          m "fuzz case %a: run %a" Case.pp case Sim.Runtime.pp_run_result r));
  (t, Array.of_list (List.rev !recorded))

let replay ~seed ~iter case codes =
  let t =
    Sim.Runtime.create (Case.config case)
      (Sim.Runtime.Gen (tape_stream ~seed ~iter))
  in
  let pos = ref 0 in
  let guide _t evs =
    if !pos >= Array.length codes then None
    else begin
      let code = codes.(!pos) in
      incr pos;
      Some (List.nth evs (abs code mod List.length evs))
    end
  in
  ignore (Sim.Runtime.run_guided t ~max_steps:(Array.length codes) guide);
  t

(* ---- oracle 1: linearizability -------------------------------------- *)

let lin_check case t =
  Lin.Multi.check_local_result (Case.specs case) (Sim.Runtime.history t)

let lin_fails ~seed ~iter case codes =
  match lin_check case (replay ~seed ~iter case codes) with
  | Ok () -> false
  | Error _ -> true

(* ---- oracle 3: model conformance (lockstep) ------------------------- *)

(* The atomic weakener is the one configuration where model and simulator
   share a step granularity: every [Model.Weakener_atomic] move is one
   register access or coin flip, which the simulator performs as exactly
   one significant trace entry (plus invisible call/return bookkeeping).
   We drive a random playout of the game and mirror each move in the
   simulator, then abstract the simulator state back into a game state
   and compare canonical [encode] keys. *)

module G = Model.Weakener_atomic.Game

let rid_r = Sim.Base_reg.id ~obj_name:"R" "cell"
let rid_c = Sim.Base_reg.id ~obj_name:"C" "cell"

let value_to_model = function Value.Int i -> i | _ -> -1

let significant_count t p =
  List.fold_left
    (fun acc e ->
      match e with
      | Sim.Trace.Reg_read { proc; _ }
      | Sim.Trace.Reg_write { proc; _ }
      | Sim.Trace.Randomized { proc; _ }
        when proc = p ->
          acc + 1
      | _ -> acc)
    0
    (Sim.Trace.entries (Sim.Runtime.trace t))

(* Advance process [p] through marker/label micro-steps until it performs
   its next register access or coin flip. *)
let advance_significant t p =
  let before = significant_count t p in
  let budget = ref 64 in
  while significant_count t p = before do
    decr budget;
    if !budget < 0 then failwith "lockstep: process stuck without access";
    Sim.Runtime.step t (Sim.Runtime.Step p)
  done

let abstract t : G.state =
  let entries = Sim.Trace.entries (Sim.Runtime.trace t) in
  let p2_reads =
    List.filter_map
      (function
        | Sim.Trace.Reg_read { proc = 2; reg; value; _ } -> Some (reg, value)
        | _ -> None)
      entries
  in
  let r_reads =
    List.filter_map
      (fun (reg, v) -> if reg = rid_r then Some (value_to_model v) else None)
      p2_reads
  in
  let c_reads =
    List.filter_map
      (fun (reg, v) -> if reg = rid_c then Some (value_to_model v) else None)
      p2_reads
  in
  let nth_opt xs i = List.nth_opt xs i in
  let coin =
    match
      List.find_map
        (function
          | Sim.Trace.Randomized { proc = 1; result; _ } -> Some result
          | _ -> None)
        entries
    with
    | Some c -> c
    | None -> -1
  in
  {
    G.r = value_to_model (Sim.Runtime.read_register t rid_r);
    c = value_to_model (Sim.Runtime.read_register t rid_c);
    pc0 = significant_count t 0;
    pc1 = significant_count t 1;
    pc2 = significant_count t 2;
    coin;
    u1 = nth_opt r_reads 0;
    u2 = nth_opt r_reads 1;
    cread = nth_opt c_reads 0;
  }

let hex s =
  String.to_seq s
  |> Seq.map (fun ch -> Printf.sprintf "%02x" (Char.code ch))
  |> List.of_seq |> String.concat ""

let model_lockstep ~seed ~iter =
  let rng = lockstep_stream ~seed ~iter in
  let coin = Rng.int rng 2 in
  let t =
    Sim.Runtime.create
      (Programs.Weakener.atomic_config ())
      (Sim.Runtime.Tape [| coin |])
  in
  let fail detail =
    Some
      { oracle = "model"; seed; iter; case = None; schedule = [||]; detail }
  in
  let rec play s step =
    match G.moves s with
    | [] ->
        (* Mop up the simulator's trailing return/label micro-steps, then
           compare terminal classifications. *)
        (match
           Sim.Runtime.run t ~max_steps:1_000 (fun _t evs -> List.hd evs)
         with
        | Sim.Runtime.Completed -> ()
        | r ->
            Fmt.failwith "lockstep mop-up: %a" Sim.Runtime.pp_run_result r);
        let sim_bad = Programs.Weakener.bad (Sim.Runtime.outcome t) in
        let model_bad = G.terminal_value s = 1.0 in
        if sim_bad <> model_bad then
          fail
            (Fmt.str
               "terminal disagreement after %d moves: sim bad=%b, model bad=%b"
               step sim_bad model_bad)
        else None
    | moves -> (
        let (G.Step p as move) = Rng.pick rng moves in
        let s' =
          match G.apply s move with
          | G.Det s' -> s'
          | G.Chance dist -> (
              match
                List.find_opt (fun (_, (c : G.state)) -> c.G.coin = coin) dist
              with
              | Some (_, s') -> s'
              | None ->
                  Fmt.invalid_arg "lockstep: no chance branch with coin %d"
                    coin)
        in
        match advance_significant t p with
        | exception e ->
            fail
              (Fmt.str "move %d (%a): simulator exception %s" step G.pp_move
                 move (Printexc.to_string e))
        | () ->
            let sim_key = G.encode (abstract t) in
            let model_key = G.encode s' in
            if not (String.equal sim_key model_key) then
              fail
                (Fmt.str
                   "key mismatch at move %d (%a): sim %s vs model %s"
                   step G.pp_move move (hex sim_key) (hex model_key))
            else play s' (step + 1))
  in
  play Model.Weakener_atomic.init 0

(* ---- oracle 2: O^k vs O outcome distributions ----------------------- *)

let dist ?pool ~seed ~trials ~k () =
  let estimate ~seed config =
    Adversary.Monte_carlo.estimate ?pool ~trials ~seed
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      config
  in
  let base = estimate ~seed Programs.Weakener.abd_config in
  let transformed =
    estimate ~seed:(seed + 1_000_003) (fun () ->
        Programs.Weakener.abd_k_config ~k)
  in
  if
    Stats.binomial_compatible ~successes1:base.bad ~trials1:trials
      ~successes2:transformed.bad ~trials2:trials
  then None
  else
    Some
      {
        oracle = "dist";
        seed;
        iter = 0;
        case = None;
        schedule = [||];
        detail =
          Fmt.str
            "ABD vs ABD^%d bad-outcome distributions incompatible over %d \
             trials: %a vs %a"
            k trials Adversary.Monte_carlo.pp base Adversary.Monte_carlo.pp
            transformed;
      }

(* ---- oracle 4: seq-vs-par identity ---------------------------------- *)

let par_identity ~seed ~trials () =
  let estimate ?pool ~jobs () =
    Adversary.Monte_carlo.estimate ?pool ~jobs ~trials ~seed
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.abd_config
  in
  let seq = estimate ~jobs:1 () in
  let par = Par.Pool.with_pool ~jobs:4 (fun pool -> estimate ~pool ~jobs:4 ()) in
  let fail detail =
    Some
      { oracle = "par"; seed; iter = 0; case = None; schedule = [||]; detail }
  in
  if
    (seq.bad, seq.deadlocks, seq.step_limited, seq.fraction)
    <> (par.bad, par.deadlocks, par.step_limited, par.fraction)
  then
    fail
      (Fmt.str "Monte-Carlo tallies differ at jobs 1 vs 4: %a vs %a"
         Adversary.Monte_carlo.pp seq Adversary.Monte_carlo.pp par)
  else begin
    Model.Weakener_va.reset ();
    let v_seq = Model.Weakener_va.bad_probability ~k:1 () in
    Model.Weakener_va.reset ();
    let v_par =
      Par.Pool.with_pool ~jobs:4 (fun pool ->
          Model.Weakener_va.bad_probability ~pool ~jobs:4 ~k:1 ())
    in
    Model.Weakener_va.reset ();
    if v_seq <> v_par then
      fail
        (Fmt.str "VA^1 solver value differs at jobs 1 vs 4: %.17g vs %.17g"
           v_seq v_par)
    else None
  end
