open Util

let log_src = Logs.Src.create "blunting.fuzz" ~doc:"Fuzzing engine events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type failure = {
  oracle : string;
  seed : int;
  iter : int;
  case : Case.t option;
  schedule : int array;
  detail : string;
}

let pp_failure ppf f =
  Fmt.pf ppf "[%s] seed %d iter %d%a: %s (schedule length %d)" f.oracle f.seed
    f.iter
    (Fmt.option (fun ppf c -> Fmt.pf ppf " %a" Case.pp c))
    f.case f.detail
    (Array.length f.schedule)

(* Stream indices: iteration [i] owns indices [4i .. 4i+3] — case
   generation, scheduler, random tape, lockstep playout — so no two
   consumers of the seed ever share a stream. *)
let case_stream ~seed ~iter = Rng.stream ~seed ~index:(4 * iter)
let sched_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 1)
let tape_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 2)
let lockstep_stream ~seed ~iter = Rng.stream ~seed ~index:((4 * iter) + 3)

let run_recorded ~seed ~iter case =
  let t =
    Sim.Runtime.create (Case.config case)
      (Sim.Runtime.Gen (tape_stream ~seed ~iter))
  in
  let recorded = ref [] in
  let rng = sched_stream ~seed ~iter in
  (* Half the runs schedule uniformly, half procrastinate deliveries —
     the adversary style that exposes stale-read protocol bugs. The
     recorded codes are policy-agnostic, so replay needs no flag. *)
  let policy =
    if Rng.int rng 2 = 0 then Adversary.Schedulers.uniform
    else Adversary.Schedulers.lazy_delivery
  in
  let scheduler = Adversary.Schedulers.recording policy rng recorded in
  (match Sim.Runtime.run t ~max_steps:(Case.max_steps case) scheduler with
  | Sim.Runtime.Completed -> ()
  | r ->
      Log.warn (fun m ->
          m "fuzz case %a: run %a" Case.pp case Sim.Runtime.pp_run_result r));
  (t, Array.of_list (List.rev !recorded))

let replay ~seed ~iter case codes =
  let t =
    Sim.Runtime.create (Case.config case)
      (Sim.Runtime.Gen (tape_stream ~seed ~iter))
  in
  let pos = ref 0 in
  let guide _t evs =
    if !pos >= Array.length codes then None
    else begin
      let code = codes.(!pos) in
      incr pos;
      Some (List.nth evs (abs code mod List.length evs))
    end
  in
  ignore (Sim.Runtime.run_guided t ~max_steps:(Array.length codes) guide);
  t

(* ---- oracle 1: linearizability -------------------------------------- *)

let lin_check case t =
  Lin.Multi.check_local_result (Case.specs case) (Sim.Runtime.history t)

let lin_fails ~seed ~iter case codes =
  match lin_check case (replay ~seed ~iter case codes) with
  | Ok () -> false
  | Error _ -> true

(* ---- oracle 3: model conformance (lockstep) ------------------------- *)

(* The atomic weakener is the one configuration where model and simulator
   share a step granularity: every [Model.Weakener_atomic] move is one
   register access or coin flip, which the simulator performs as exactly
   one significant trace entry (plus invisible call/return bookkeeping).
   We drive a random playout of the game and mirror each move in the
   simulator, then abstract the simulator state back into a game state
   and compare canonical [encode] keys. *)

module G = Model.Weakener_atomic.Game

let rid_r = Sim.Base_reg.id ~obj_name:"R" "cell"
let rid_c = Sim.Base_reg.id ~obj_name:"C" "cell"

let value_to_model = function Value.Int i -> i | _ -> -1

let significant_count t p =
  List.fold_left
    (fun acc e ->
      match e with
      | Sim.Trace.Reg_read { proc; _ }
      | Sim.Trace.Reg_write { proc; _ }
      | Sim.Trace.Randomized { proc; _ }
        when proc = p ->
          acc + 1
      | _ -> acc)
    0
    (Sim.Trace.entries (Sim.Runtime.trace t))

(* Advance process [p] through marker/label micro-steps until it performs
   its next register access or coin flip. *)
let advance_significant t p =
  let before = significant_count t p in
  let budget = ref 64 in
  while significant_count t p = before do
    decr budget;
    if !budget < 0 then failwith "lockstep: process stuck without access";
    Sim.Runtime.step t (Sim.Runtime.Step p)
  done

let abstract t : G.state =
  let entries = Sim.Trace.entries (Sim.Runtime.trace t) in
  let p2_reads =
    List.filter_map
      (function
        | Sim.Trace.Reg_read { proc = 2; reg; value; _ } -> Some (reg, value)
        | _ -> None)
      entries
  in
  let r_reads =
    List.filter_map
      (fun (reg, v) -> if reg = rid_r then Some (value_to_model v) else None)
      p2_reads
  in
  let c_reads =
    List.filter_map
      (fun (reg, v) -> if reg = rid_c then Some (value_to_model v) else None)
      p2_reads
  in
  let nth_opt xs i = List.nth_opt xs i in
  let coin =
    match
      List.find_map
        (function
          | Sim.Trace.Randomized { proc = 1; result; _ } -> Some result
          | _ -> None)
        entries
    with
    | Some c -> c
    | None -> -1
  in
  {
    G.r = value_to_model (Sim.Runtime.read_register t rid_r);
    c = value_to_model (Sim.Runtime.read_register t rid_c);
    pc0 = significant_count t 0;
    pc1 = significant_count t 1;
    pc2 = significant_count t 2;
    coin;
    u1 = nth_opt r_reads 0;
    u2 = nth_opt r_reads 1;
    cread = nth_opt c_reads 0;
  }

let hex s =
  String.to_seq s
  |> Seq.map (fun ch -> Printf.sprintf "%02x" (Char.code ch))
  |> List.of_seq |> String.concat ""

let model_lockstep ~seed ~iter =
  let rng = lockstep_stream ~seed ~iter in
  let coin = Rng.int rng 2 in
  let t =
    Sim.Runtime.create
      (Programs.Weakener.atomic_config ())
      (Sim.Runtime.Tape [| coin |])
  in
  let fail detail =
    Some
      { oracle = "model"; seed; iter; case = None; schedule = [||]; detail }
  in
  let rec play s step =
    match G.moves s with
    | [] ->
        (* Mop up the simulator's trailing return/label micro-steps, then
           compare terminal classifications. *)
        (match
           Sim.Runtime.run t ~max_steps:1_000 (fun _t evs -> List.hd evs)
         with
        | Sim.Runtime.Completed -> ()
        | r ->
            Fmt.failwith "lockstep mop-up: %a" Sim.Runtime.pp_run_result r);
        let sim_bad = Programs.Weakener.bad (Sim.Runtime.outcome t) in
        let model_bad = G.terminal_value s = 1.0 in
        if sim_bad <> model_bad then
          fail
            (Fmt.str
               "terminal disagreement after %d moves: sim bad=%b, model bad=%b"
               step sim_bad model_bad)
        else None
    | moves -> (
        let (G.Step p as move) = Rng.pick rng moves in
        let s' =
          match G.apply s move with
          | G.Det s' -> s'
          | G.Chance dist -> (
              match
                List.find_opt (fun (_, (c : G.state)) -> c.G.coin = coin) dist
              with
              | Some (_, s') -> s'
              | None ->
                  Fmt.invalid_arg "lockstep: no chance branch with coin %d"
                    coin)
        in
        match advance_significant t p with
        | exception e ->
            fail
              (Fmt.str "move %d (%a): simulator exception %s" step G.pp_move
                 move (Printexc.to_string e))
        | () ->
            let sim_key = G.encode (abstract t) in
            let model_key = G.encode s' in
            if not (String.equal sim_key model_key) then
              fail
                (Fmt.str
                   "key mismatch at move %d (%a): sim %s vs model %s"
                   step G.pp_move move (hex sim_key) (hex model_key))
            else play s' (step + 1))
  in
  play Model.Weakener_atomic.init 0

(* ---- oracle 2: O^k vs O outcome distributions ----------------------- *)

let dist ?pool ~seed ~trials ~k () =
  let estimate ~seed config =
    Adversary.Monte_carlo.estimate ?pool ~trials ~seed
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      config
  in
  let base = estimate ~seed Programs.Weakener.abd_config in
  let transformed =
    estimate ~seed:(seed + 1_000_003) (fun () ->
        Programs.Weakener.abd_k_config ~k)
  in
  if
    Stats.binomial_compatible ~successes1:base.bad ~trials1:trials
      ~successes2:transformed.bad ~trials2:trials
  then None
  else
    Some
      {
        oracle = "dist";
        seed;
        iter = 0;
        case = None;
        schedule = [||];
        detail =
          Fmt.str
            "ABD vs ABD^%d bad-outcome distributions incompatible over %d \
             trials: %a vs %a"
            k trials Adversary.Monte_carlo.pp base Adversary.Monte_carlo.pp
            transformed;
      }

(* ---- oracle 5: pruning soundness ------------------------------------ *)

(* A synthetic layered-DAG game family for exercising the solver's
   interval pruning far outside the hand-written models: states are
   (level, id) pairs, every transition goes to level + 1 (acyclic by
   construction), and the whole shape — fan-out, chance placement,
   successors, terminal payoffs — is a pure function of a per-check salt
   via the (deterministic, version-stable on ints) polymorphic hash.
   Chance steps are fair coins, so computed values cannot round above
   1.0 and the default (0, 1) bounds are FP-admissible (see
   [Mdp.Solver.set_bounds]); terminal payoffs are k/100 with k <= 100. *)
module Prune_game = struct
  type params = { salt : int; levels : int; width : int; branch : int }

  (* set per check, before any solve on the instantiated solver *)
  let params = ref { salt = 0; levels = 5; width = 4; branch = 3 }

  type state = int * int  (* level, id in [0, width) *)
  type move = Move of int
  type transition = Det of state | Chance of (float * state) list

  let h2 a b =
    let p = !params in
    Hashtbl.hash (p.salt, a, b)

  let moves (l, i) =
    let p = !params in
    if l >= p.levels then []
    else List.init (1 + (h2 (l * 31) i mod p.branch)) (fun j -> Move j)

  let apply (l, i) (Move j) =
    let p = !params in
    let h = h2 (l, i) j in
    let next salt = (l + 1, h2 salt (l, i, j) mod p.width) in
    if h mod 4 = 0 then Chance [ (0.5, next 1); (0.5, next 2) ]
    else Det (next 1)

  let terminal_value (l, i) = float_of_int (h2 (l + 17) i mod 101) /. 100.0

  let encode_into (l, i) b =
    Mdp.Key.int b l;
    Mdp.Key.int b i

  let encode s = Mdp.Key.run (encode_into s)

  let pp_move ppf (Move j) = Fmt.pf ppf "m%d" j
end

module Prune_solver = Mdp.Solver.Make (Prune_game)

(* Pruned solves must agree with unpruned ones bitwise while exploring no
   more states; audit mode re-evaluates every cut subtree and raises
   [Prune_unsound] if a cut would have changed a value; and pruning must
   compose with the work-stealing parallel solve. The RNG stream uses its
   own seed family so it can never collide with the per-iteration stream
   indices (4i .. 4i+3) of the same session seed. *)
let prune_vs_exact ?(configs = 4) ~seed () =
  let rng = Rng.stream ~seed:(seed + 7_777_777) ~index:0 in
  let fail detail =
    Some
      { oracle = "prune"; seed; iter = 0; case = None; schedule = [||]; detail }
  in
  let check_config n =
    let p =
      {
        Prune_game.salt = Rng.int rng 1_000_000_007;
        levels = 4 + Rng.int rng 3;
        width = 3 + Rng.int rng 4;
        branch = 2 + Rng.int rng 3;
      }
    in
    Prune_game.params := p;
    let ctx detail =
      fail
        (Fmt.str "config %d (salt %d, levels %d, width %d, branch %d): %s" n
           p.Prune_game.salt p.Prune_game.levels p.Prune_game.width
           p.Prune_game.branch detail)
    in
    let root = (0, 0) in
    Prune_solver.reset ();
    let v_plain = Prune_solver.value root in
    let explored_plain = Prune_solver.explored () in
    Prune_solver.reset ();
    let v_pruned = Prune_solver.value ~prune:true root in
    let explored_pruned = Prune_solver.explored () in
    let cuts = Prune_solver.pruned_subtrees () in
    if v_pruned <> v_plain then
      ctx
        (Fmt.str "pruned value %.17g differs from exact %.17g (%d cuts)"
           v_pruned v_plain cuts)
    else if explored_pruned > explored_plain then
      ctx
        (Fmt.str "pruned solve explored %d states > unpruned %d"
           explored_pruned explored_plain)
    else begin
      (* every cut's interval really excluded the max: audit mode
         recomputes each cut subtree and raises if one could have won *)
      Prune_solver.reset ();
      Prune_solver.set_prune_audit true;
      let audit_result =
        Fun.protect
          ~finally:(fun () -> Prune_solver.set_prune_audit false)
          (fun () ->
            match Prune_solver.value ~prune:true root with
            | v -> Ok v
            | exception Mdp.Solver.Prune_unsound detail -> Error detail)
      in
      match audit_result with
      | Error detail -> ctx ("audit: " ^ detail)
      | Ok v_audit ->
          if v_audit <> v_plain then
            ctx
              (Fmt.str "audited pruned value %.17g differs from exact %.17g"
                 v_audit v_plain)
          else begin
            Prune_solver.reset ();
            let v_par =
              Par.Pool.with_pool ~jobs:2 (fun pool ->
                  Prune_solver.value_par ~pool ~prune:true ~jobs:2 root)
            in
            Prune_solver.reset ();
            if v_par <> v_plain then
              ctx
                (Fmt.str
                   "parallel pruned value %.17g differs from exact %.17g"
                   v_par v_plain)
            else None
          end
    end
  in
  let rec go n = if n >= configs then None else
    match check_config n with Some f -> Some f | None -> go (n + 1)
  in
  go 0

(* ---- oracle 4: seq-vs-par identity ---------------------------------- *)

let par_identity ~seed ~trials () =
  let estimate ?pool ~jobs () =
    Adversary.Monte_carlo.estimate ?pool ~jobs ~trials ~seed
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.abd_config
  in
  let seq = estimate ~jobs:1 () in
  let par = Par.Pool.with_pool ~jobs:4 (fun pool -> estimate ~pool ~jobs:4 ()) in
  let fail detail =
    Some
      { oracle = "par"; seed; iter = 0; case = None; schedule = [||]; detail }
  in
  if
    (seq.bad, seq.deadlocks, seq.step_limited, seq.fraction)
    <> (par.bad, par.deadlocks, par.step_limited, par.fraction)
  then
    fail
      (Fmt.str "Monte-Carlo tallies differ at jobs 1 vs 4: %a vs %a"
         Adversary.Monte_carlo.pp seq Adversary.Monte_carlo.pp par)
  else begin
    Model.Weakener_va.reset ();
    let v_seq = Model.Weakener_va.bad_probability ~k:1 () in
    Model.Weakener_va.reset ();
    let v_par =
      Par.Pool.with_pool ~jobs:4 (fun pool ->
          Model.Weakener_va.bad_probability ~pool ~jobs:4 ~k:1 ())
    in
    Model.Weakener_va.reset ();
    if v_seq <> v_par then
      fail
        (Fmt.str "VA^1 solver value differs at jobs 1 vs 4: %.17g vs %.17g"
           v_seq v_par)
    else None
  end
