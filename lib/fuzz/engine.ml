module M = struct
  open Obs.Metrics

  let cases = counter ~help:"fuzz cases executed" "fuzz.cases"
  let failures = counter ~help:"oracle failures found" "fuzz.failures"

  let shrink_attempts =
    counter ~help:"shrinker predicate evaluations" "fuzz.shrink_attempts"
end

type budget = Iterations of int | Seconds of float

let parse_budget s =
  let s = String.trim s in
  let dur mult digits =
    match int_of_string_opt digits with
    | Some v when v >= 0 -> Ok (Seconds (float_of_int v *. mult))
    | _ -> Error (Fmt.str "invalid budget %S" s)
  in
  if s = "" then Error "empty budget"
  else
    match s.[String.length s - 1] with
    | 's' -> dur 1.0 (String.sub s 0 (String.length s - 1))
    | 'm' -> dur 60.0 (String.sub s 0 (String.length s - 1))
    | 'h' -> dur 3600.0 (String.sub s 0 (String.length s - 1))
    | _ -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (Iterations n)
        | _ -> Error (Fmt.str "invalid budget %S" s))

let pp_budget ppf = function
  | Iterations n -> Fmt.pf ppf "%d iterations" n
  | Seconds sec -> Fmt.pf ppf "%gs" sec

type summary = {
  seed : int;
  iterations : int;
  lin_checks : int;
  model_checks : int;
  dist_checks : int;
  par_checks : int;
  prune_checks : int;
  failures : Oracle.failure list;
  corpus_files : string list;
}

let has_failures s = s.failures <> []

let pp_summary ppf s =
  Fmt.pf ppf "fuzz seed=%d iterations=%d@." s.seed s.iterations;
  Fmt.pf ppf "  oracle checks: lin=%d model=%d dist=%d par=%d prune=%d@."
    s.lin_checks s.model_checks s.dist_checks s.par_checks s.prune_checks;
  (match s.failures with
  | [] -> Fmt.pf ppf "  failures: none@."
  | fs ->
      Fmt.pf ppf "  failures: %d@." (List.length fs);
      List.iter (fun f -> Fmt.pf ppf "    %a@." Oracle.pp_failure f) fs);
  match s.corpus_files with
  | [] -> ()
  | files ->
      Fmt.pf ppf "  corpus files:@.";
      List.iter (fun p -> Fmt.pf ppf "    %s@." p) files

(* Every [lockstep_every]-th iteration also runs the model-conformance
   oracle; per-case work stays bounded while a 10k-iteration smoke still
   performs 2.5k lockstep playouts. *)
let lockstep_every = 4

(* One iteration: generate the case, execute it under the recording
   scheduler, evaluate the per-case oracles. Pure in (seed, iter,
   planted), so iterations can run on any pool domain. *)
let iteration ~seed ~planted iter =
  let case = Case.generate ~planted (Oracle.case_stream ~seed ~iter) in
  let t, codes = Oracle.run_recorded ~seed ~iter case in
  Obs.Metrics.incr M.cases;
  let lin =
    match Oracle.lin_check case t with
    | Ok () -> None
    | Error detail ->
        Some
          {
            Oracle.oracle = "lin";
            seed;
            iter;
            case = Some case;
            schedule = codes;
            detail;
          }
  in
  let model =
    if iter mod lockstep_every = 0 then Oracle.model_lockstep ~seed ~iter
    else None
  in
  (lin, model)

let shrink_failure ~seed (f : Oracle.failure) =
  match (f.oracle, f.case) with
  | "lin", Some case ->
      let fails codes = Oracle.lin_fails ~seed ~iter:f.iter case codes in
      let schedule = Shrink.minimize ~fails f.schedule in
      Obs.Metrics.add M.shrink_attempts (Shrink.attempts_used ());
      { f with schedule }
  | _ -> f

let run ?(jobs = 1) ?corpus_dir ?(planted = false) ?(dist_trials = 400)
    ?(max_failures = 10) ~seed ~budget () =
  Par.Pool.with_pool ~jobs @@ fun pool ->
  let deadline =
    match budget with
    | Iterations _ -> None
    | Seconds sec -> Some ((Obs.Span.now_us () /. 1e6) +. sec)
  in
  let total = match budget with Iterations n -> n | Seconds _ -> max_int in
  let failures = ref [] (* newest first *) in
  let nfailures = ref 0 in
  let lin_checks = ref 0 in
  let model_checks = ref 0 in
  let iter = ref 0 in
  let stop = ref false in
  let batch_size = 128 in
  while
    (not !stop) && !iter < total
    && Option.fold ~none:true
         ~some:(fun d -> Obs.Span.now_us () /. 1e6 < d)
         deadline
  do
    let b = min batch_size (total - !iter) in
    let base = !iter in
    let results =
      Par.Pool.map pool ~n:b (fun j -> iteration ~seed ~planted (base + j))
    in
    Array.iteri
      (fun j (lin, model) ->
        incr lin_checks;
        if (base + j) mod lockstep_every = 0 then incr model_checks;
        List.iter
          (fun failure ->
            match failure with
            | None -> ()
            | Some f ->
                failures := f :: !failures;
                incr nfailures;
                Obs.Metrics.incr M.failures)
          [ lin; model ])
      results;
    iter := !iter + b;
    if !nfailures >= max_failures then stop := true
  done;
  (* Session oracles: distribution compatibility (Theorem 4.1),
     seq-vs-par identity and pruning soundness. Run on the calling
     domain, after the sweep, so the first's Monte-Carlo batches can
     reuse the pool; the latter two spawn private pools, keeping their
     verdicts (and the printed summary) independent of --jobs. *)
  let dist_failure = Oracle.dist ~pool ~seed ~trials:dist_trials ~k:2 () in
  let par_failure = Oracle.par_identity ~seed ~trials:200 () in
  let prune_failure = Oracle.prune_vs_exact ~seed () in
  List.iter
    (function
      | None -> ()
      | Some f ->
          failures := f :: !failures;
          Obs.Metrics.incr M.failures)
    [ dist_failure; par_failure; prune_failure ];
  let shrunk = List.rev_map (shrink_failure ~seed) !failures in
  let corpus_files =
    match corpus_dir with
    | None -> []
    | Some dir ->
        List.map
          (fun (f : Oracle.failure) ->
            Corpus.write ~dir
              {
                Corpus.seed;
                iter = f.iter;
                oracle = f.oracle;
                case = f.case;
                schedule = f.schedule;
                expect = Corpus.Fail;
                detail = f.detail;
              })
          shrunk
  in
  {
    seed;
    iterations = !iter;
    lin_checks = !lin_checks;
    model_checks = !model_checks;
    dist_checks = 1;
    par_checks = 1;
    prune_checks = 1;
    failures = shrunk;
    corpus_files;
  }

(* ---- corpus replay --------------------------------------------------- *)

(* The replay runs with {!Obs.Ring} tracing enabled so the verdict can be
   attributed: the Ok/Error message names the oracle and its diagnostic,
   and summarizes what the adversary chose at each decision point of the
   (shrunk) schedule — enabled-set sizes and the step/deliver/crash split
   come from the [Adv_decision]/[Sim_*] events the runtime records. *)
let replay_entry (e : Corpus.t) =
  Obs.Ring.reset ();
  Obs.Ring.set_enabled true;
  let failure_detail =
    Fun.protect
      ~finally:(fun () -> Obs.Ring.set_enabled false)
      (fun () ->
        match (e.oracle, e.case) with
        | "lin", Some case -> (
            match
              Oracle.lin_check case
                (Oracle.replay ~seed:e.seed ~iter:e.iter case e.schedule)
            with
            | Ok () -> None
            | Error detail -> Some detail)
        | "model", _ ->
            Option.map
              (fun (f : Oracle.failure) -> f.detail)
              (Oracle.model_lockstep ~seed:e.seed ~iter:e.iter)
        | "dist", _ ->
            Option.map
              (fun (f : Oracle.failure) -> f.detail)
              (Oracle.dist ~seed:e.seed ~trials:400 ~k:2 ())
        | "par", _ ->
            Option.map
              (fun (f : Oracle.failure) -> f.detail)
              (Oracle.par_identity ~seed:e.seed ~trials:200 ())
        | "prune", _ ->
            Option.map
              (fun (f : Oracle.failure) -> f.detail)
              (Oracle.prune_vs_exact ~seed:e.seed ())
        | oracle, _ ->
            Fmt.failwith "corpus entry with unknown oracle %S" oracle)
  in
  let attribution =
    let t = Obs.Trace_analysis.analyze (Obs.Ring.dump ()) in
    match t.decisions with
    | Some (s : Obs.Trace_analysis.decision_summary) when s.decisions > 0 ->
        Fmt.str
          "\n  adversary decisions: %d (%d forced), enabled set %d..%d (mean \
           %.1f); chosen: %d step%s, %d deliver%s, %d crash%s"
          s.decisions s.forced s.min_enabled s.max_enabled s.mean_enabled
          s.steps
          (if s.steps = 1 then "" else "s")
          s.delivers
          (if s.delivers = 1 then "y" else "ies")
          s.crashes
          (if s.crashes = 1 then "" else "es")
    | _ -> ""
  in
  let oracle_line =
    match failure_detail with
    | Some detail -> Fmt.str "\n  failing oracle: %s — %s" e.oracle detail
    | None -> ""
  in
  match (e.expect, failure_detail <> None) with
  | Corpus.Fail, true ->
      Ok
        (Fmt.str "reproduced expected failure: %a%s%s" Corpus.pp e oracle_line
           attribution)
  | Corpus.Pass, false ->
      Ok (Fmt.str "passed as expected: %a%s" Corpus.pp e attribution)
  | Corpus.Fail, false ->
      Error
        (Fmt.str "expected failure did not reproduce: %a (oracle %s now \
                  passes)%s" Corpus.pp e e.oracle attribution)
  | Corpus.Pass, true ->
      Error
        (Fmt.str "regression: previously passing entry fails: %a%s%s" Corpus.pp
           e oracle_line attribution)

let replay_file path =
  match Corpus.read path with
  | Error e -> Error (Fmt.str "%s: %s" path e)
  | Ok entry -> replay_entry entry
