(** Corpus files: replayable fuzz executions on disk.

    A corpus entry pins everything needed to reproduce one oracle verdict:
    the engine seed, the iteration index (both RNG streams derive from the
    pair), the generated {!Case.t}, the (shrunk) schedule of choice codes,
    which oracle to evaluate, and the expected verdict. Entries serialize
    as deterministic JSON ({!Obs.Json.pp} — same entry, byte-identical
    file), so replay determinism is testable by comparing file contents.

    Shrunk regression seeds live under [test/corpus/] and are replayed by
    the tier-1 test suite; the nightly fuzz workflow uploads fresh failing
    entries as CI artifacts. *)

type expect = Fail | Pass

type t = {
  seed : int;
  iter : int;
  oracle : string;  (** ["lin"], ["model"], ["dist"] or ["par"] *)
  case : Case.t option;  (** [None] for session oracles (dist/par) *)
  schedule : int array;  (** choice codes; empty for session oracles *)
  expect : expect;
  detail : string;  (** human-readable context (oracle diagnostic) *)
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

(** [filename t] is the canonical basename,
    [fuzz-<oracle>-s<seed>-i<iter>.json]. *)
val filename : t -> string

(** [write ~dir t] writes the entry under [dir] (created if missing) at
    its canonical name and returns the path. *)
val write : dir:string -> t -> string

val read : string -> (t, string) result
val pp : Format.formatter -> t -> unit
