(** Fuzz cases: randomly generated configurations.

    A case is the non-schedule half of an execution: which program runs,
    over which object implementation, with how many processes and which
    transformation parameter [k]. The schedule half is a choice-code array
    ({!Adversary.Schedulers.of_codes}); together with the engine seed and
    iteration index they reproduce an execution exactly, which is what
    makes every fuzz failure replayable from [(seed, case, schedule)]
    alone. *)

(** Register implementations the register workloads draw from.
    [Abd_no_writeback] is the deliberately broken ABD variant
    ({!Objects.Abd.make_no_writeback}) used to plant Figure-1-style
    linearizability violations in shrinker and corpus tests; the generator
    only emits it when [planted] is set. *)
type register_impl =
  | Atomic
  | Abd
  | Abd_k of int
  | Va
  | Va_k of int
  | Il  (** single-writer Israeli–Li; process 0 writes *)
  | Abd_no_writeback

type t =
  | Weakener of { registers : register_impl }
      (** the paper's 3-process weakener (Algorithm 1) over registers [R]
          and [C]; multi-writer implementations only *)
  | Registers of { impl : register_impl; n : int }
      (** [n] processes, each writing a distinct value to one shared
          register then reading it twice *)
  | Snapshots of { k : int; n : int }
      (** [n] processes over one Afek et al. snapshot ([k = 0]:
          untransformed; [k >= 1]: [Snapshot^k]), each updating its
          component then scanning *)

(** [generate ~planted rng] draws a case. With [planted] every case uses
    [Abd_no_writeback], so a linearizability violation is reachable; the
    normal generator only emits implementations the paper proves
    linearizable, and a failure is a real bug. *)
val generate : planted:bool -> Util.Rng.t -> t

(** [config case] assembles the simulator configuration. *)
val config : t -> Sim.Runtime.config

(** [specs case] maps each object of the configuration to its sequential
    specification, for the per-object linearizability oracle. *)
val specs : t -> (string * History.Spec.t) list

(** [max_steps case] is the per-run step budget (generous: runs complete
    far earlier under any fair schedule). *)
val max_steps : t -> int

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
