(** The five fuzz oracles.

    Each oracle checks one relational property the paper's development
    rests on; a failure of any of them on the healthy implementations is
    a real bug in the reproduction:

    - {b lin} (per case): every generated history — including histories
      of the transformed [O^k] wrappers and schedule {e prefixes} left by
      the shrinker — is per-object linearizable ({!Lin.Multi}).
    - {b model} (per iteration): a simulator execution of the atomic
      weakener, abstracted after every program step, matches the
      {!Model.Weakener_atomic} game transition-for-transition on
      canonical [Game.encode] keys, and both sides agree on the terminal
      bad-outcome classification.
    - {b dist} (per session): the empirical bad-outcome distributions of
      the weakener over ABD vs ABD^k under the same scheduler class are
      statistically compatible (Theorem 4.1 as a property test; Wilson
      intervals from {!Util.Stats}).
    - {b par} (per session): Monte-Carlo tallies and exact solver values
      are bit-identical at [--jobs 1] and [--jobs 4] ({!Par.Pool}).
    - {b prune} (per session): on randomly generated layered-DAG games,
      interval-pruned solves return bitwise the exact optimal value while
      exploring no more states, every cut survives audit-mode
      re-evaluation (each pruned subtree's interval really excluded the
      max — [Mdp.Solver.Prune_unsound] otherwise), and pruning composes
      with the work-stealing parallel solve.

    Every per-case execution is a pure function of [(seed, iter, case)]:
    the scheduler RNG, the random tape and the generated case all derive
    from {!Util.Rng.stream} on disjoint indices, so any failure replays
    from the corpus entry alone. *)

type failure = {
  oracle : string;
  seed : int;
  iter : int;
  case : Case.t option;
  schedule : int array;
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

(** {1 Per-case execution} *)

(** [case_stream ~seed ~iter] is the RNG stream iteration [iter] draws
    its case from; the engine and corpus replay share it. Streams for
    case generation, scheduling, the random tape and the lockstep playout
    use disjoint indices, so no consumer ever reuses another's draws. *)
val case_stream : seed:int -> iter:int -> Util.Rng.t

(** [run_recorded ~seed ~iter case] runs [case] to completion (or its
    step budget) under the uniform recording scheduler and returns the
    runtime plus the recorded choice codes. *)
val run_recorded :
  seed:int -> iter:int -> Case.t -> Sim.Runtime.t * int array

(** [replay ~seed ~iter case codes] re-executes exactly the schedule
    prefix [codes] (same RNG streams as [run_recorded]) and returns the
    runtime for inspection. *)
val replay : seed:int -> iter:int -> Case.t -> int array -> Sim.Runtime.t

(** {1 Oracles} *)

(** [lin_check case t] checks per-object linearizability of [t]'s
    history. *)
val lin_check : Case.t -> Sim.Runtime.t -> (unit, string) result

(** [lin_fails ~seed ~iter case codes] replays the prefix and reports
    whether the linearizability oracle fails on it — the shrinker's
    predicate. *)
val lin_fails : seed:int -> iter:int -> Case.t -> int array -> bool

(** [model_lockstep ~seed ~iter] drives a random playout of the atomic
    weakener game and the simulator in lockstep, comparing canonical
    encode keys after every move. *)
val model_lockstep : seed:int -> iter:int -> failure option

(** [dist ?pool ~seed ~trials ~k ()] compares the weakener's bad-outcome
    frequency over ABD vs ABD^k ([trials] runs each). *)
val dist : ?pool:Par.Pool.t -> seed:int -> trials:int -> k:int -> unit -> failure option

(** [par_identity ~seed ~trials ()] checks seq-vs-par identity of
    Monte-Carlo tallies and of the exact VA^1 solver value at jobs 1
    vs 4. Spawns (and always joins) its own 4-domain pool. *)
val par_identity : seed:int -> trials:int -> unit -> failure option

(** [prune_vs_exact ?configs ~seed ()] checks pruning soundness on
    [configs] (default 4) randomly shaped layered-DAG games: pruned vs
    unpruned value identity, explored-state monotonicity, audit-mode
    cleanliness, and pruned parallel identity (own 2-domain pool). Runs
    entirely on the calling domain (plus its private pool), with an RNG
    stream from a seed family disjoint from the per-iteration streams, so
    its verdict is independent of the session's [--jobs]. *)
val prune_vs_exact : ?configs:int -> seed:int -> unit -> failure option
