open Util

type register_impl =
  | Atomic
  | Abd
  | Abd_k of int
  | Va
  | Va_k of int
  | Il
  | Abd_no_writeback

type t =
  | Weakener of { registers : register_impl }
  | Registers of { impl : register_impl; n : int }
  | Snapshots of { k : int; n : int }

let equal (a : t) (b : t) = a = b

(* ---- generation ----------------------------------------------------- *)

let gen_k rng = 1 + Rng.int rng 3

let gen_weakener_registers rng =
  match Rng.int rng 4 with
  | 0 -> Atomic
  | 1 -> Abd
  | 2 -> Abd_k (gen_k rng)
  | _ -> Va

let gen_register_impl rng =
  match Rng.int rng 5 with
  | 0 -> Abd
  | 1 -> Abd_k (gen_k rng)
  | 2 -> Va
  | 3 -> Va_k (gen_k rng)
  | _ -> Il

let generate ~planted rng =
  (* n is pinned to 3 for the planted bug: with more writers the extra
     timestamp traffic masks the stale second read almost entirely. *)
  if planted then Registers { impl = Abd_no_writeback; n = 3 }
  else
    match Rng.int rng 6 with
    | 0 | 1 -> Weakener { registers = gen_weakener_registers rng }
    | 2 | 3 | 4 -> Registers { impl = gen_register_impl rng; n = 2 + Rng.int rng 3 }
    | _ -> Snapshots { k = Rng.int rng 3; n = 2 + Rng.int rng 2 }

(* ---- assembly ------------------------------------------------------- *)

let reg_object ~name ~n ~init = function
  | Atomic -> Objects.Atomic_register.make ~name ~init
  | Abd -> Objects.Abd.make ~name ~n ~init
  | Abd_k k -> Objects.Abd.make_k ~k ~name ~n ~init
  | Va -> Objects.Vitanyi_awerbuch.make ~name ~n ~init
  | Va_k k -> Objects.Vitanyi_awerbuch.make_k ~k ~name ~n ~init
  | Il -> Objects.Israeli_li.make ~name ~n ~writer:0 ~init
  | Abd_no_writeback -> Objects.Abd.make_no_writeback ~name ~n ~init

let single_writer = function Il -> true | _ -> false

let config = function
  | Weakener { registers } -> (
      match registers with
      | Atomic -> Programs.Weakener.atomic_config ()
      | Il | Abd_no_writeback ->
          invalid_arg "Fuzz.Case.config: weakener needs multi-writer registers"
      | impl ->
          let n = Programs.Weakener.n_processes in
          Programs.Weakener.config
            ~r:(reg_object ~name:"R" ~n ~init:Value.none impl)
            ~c:(reg_object ~name:"C" ~n ~init:(Value.int (-1)) impl))
  | Registers { impl; n } ->
      let o = reg_object ~name:"R" ~n ~init:(Value.int 0) impl in
      let open Sim.Proc.Syntax in
      let program ~self =
        let call tag meth arg =
          Sim.Obj_impl.call o ~self ~tag ~meth ~arg
        in
        let reads =
          let* _ = call "r1" "read" Value.unit in
          let* _ = call "r2" "read" Value.unit in
          Sim.Proc.return ()
        in
        if single_writer impl then
          (* The IL writer may never read (Val[writer] is not even
             declared); readers never write. *)
          if self = 0 then
            let* _ = call "w1" "write" (Value.int 10) in
            let* _ = call "w2" "write" (Value.int 11) in
            Sim.Proc.return ()
          else reads
        else
          let* _ = call "w1" "write" (Value.int (10 + self)) in
          reads
      in
      {
        Sim.Runtime.n;
        objects = [ o ];
        program;
        enable_crashes = false;
        max_crashes = 0;
      }
  | Snapshots { k; n } ->
      let o =
        if k = 0 then Objects.Afek_snapshot.make ~name:"S" ~n ~init:(Value.int 0)
        else Objects.Afek_snapshot.make_k ~k ~name:"S" ~n ~init:(Value.int 0)
      in
      let open Sim.Proc.Syntax in
      let program ~self =
        let call tag meth arg = Sim.Obj_impl.call o ~self ~tag ~meth ~arg in
        let* _ =
          call "u" "update"
            (Value.pair (Value.int self) (Value.int (self + 1)))
        in
        let* _ = call "s" "scan" Value.unit in
        Sim.Proc.return ()
      in
      {
        Sim.Runtime.n;
        objects = [ o ];
        program;
        enable_crashes = false;
        max_crashes = 0;
      }

let specs = function
  | Weakener _ ->
      [
        ("R", History.Spec.register ~init:Value.none);
        ("C", History.Spec.register ~init:(Value.int (-1)));
      ]
  | Registers _ -> [ ("R", History.Spec.register ~init:(Value.int 0)) ]
  | Snapshots { n; _ } ->
      [ ("S", History.Spec.snapshot ~n ~init:(Value.int 0)) ]

let max_steps _ = 200_000

(* ---- serialization -------------------------------------------------- *)

let impl_to_string = function
  | Atomic -> "atomic"
  | Abd -> "abd"
  | Abd_k _ -> "abd-k"
  | Va -> "va"
  | Va_k _ -> "va-k"
  | Il -> "il"
  | Abd_no_writeback -> "abd-no-writeback"

let impl_k = function Abd_k k | Va_k k -> k | _ -> 0

let impl_of_string ~k = function
  | "atomic" -> Ok Atomic
  | "abd" -> Ok Abd
  | "abd-k" -> Ok (Abd_k k)
  | "va" -> Ok Va
  | "va-k" -> Ok (Va_k k)
  | "il" -> Ok Il
  | "abd-no-writeback" -> Ok Abd_no_writeback
  | s -> Error (Fmt.str "unknown register implementation %S" s)

let to_json case =
  let open Obs.Json in
  match case with
  | Weakener { registers } ->
      Obj
        [
          ("shape", String "weakener");
          ("impl", String (impl_to_string registers));
          ("k", Int (impl_k registers));
        ]
  | Registers { impl; n } ->
      Obj
        [
          ("shape", String "registers");
          ("impl", String (impl_to_string impl));
          ("k", Int (impl_k impl));
          ("n", Int n);
        ]
  | Snapshots { k; n } ->
      Obj [ ("shape", String "snapshots"); ("k", Int k); ("n", Int n) ]

let of_json j =
  let open Obs.Json in
  let str key = Option.bind (member key j) to_string_opt in
  let int key = Option.bind (member key j) to_int_opt in
  let k = Option.value ~default:0 (int "k") in
  match str "shape" with
  | Some "weakener" -> (
      match str "impl" with
      | Some s ->
          Result.map (fun registers -> Weakener { registers })
            (impl_of_string ~k s)
      | None -> Error "weakener case: missing impl")
  | Some "registers" -> (
      match (str "impl", int "n") with
      | Some s, Some n ->
          Result.map (fun impl -> Registers { impl; n }) (impl_of_string ~k s)
      | _ -> Error "registers case: missing impl or n")
  | Some "snapshots" -> (
      match int "n" with
      | Some n -> Ok (Snapshots { k; n })
      | None -> Error "snapshots case: missing n")
  | Some s -> Error (Fmt.str "unknown case shape %S" s)
  | None -> Error "case: missing shape"

let pp ppf = function
  | Weakener { registers } ->
      Fmt.pf ppf "weakener(%s%s)" (impl_to_string registers)
        (match impl_k registers with 0 -> "" | k -> Fmt.str ", k=%d" k)
  | Registers { impl; n } ->
      Fmt.pf ppf "registers(%s%s, n=%d)" (impl_to_string impl)
        (match impl_k impl with 0 -> "" | k -> Fmt.str ", k=%d" k)
        n
  | Snapshots { k; n } -> Fmt.pf ppf "snapshots(k=%d, n=%d)" k n
