type expect = Fail | Pass

type t = {
  seed : int;
  iter : int;
  oracle : string;
  case : Case.t option;
  schedule : int array;
  expect : expect;
  detail : string;
}

let version = 1

let expect_to_string = function Fail -> "fail" | Pass -> "pass"

let expect_of_string = function
  | "fail" -> Ok Fail
  | "pass" -> Ok Pass
  | s -> Error (Fmt.str "corpus: unknown expectation %S" s)

let to_json t =
  let open Obs.Json in
  Obj
    [
      ("blunting_fuzz_corpus", Int version);
      ("seed", Int t.seed);
      ("iter", Int t.iter);
      ("oracle", String t.oracle);
      ( "case",
        match t.case with None -> Null | Some case -> Case.to_json case );
      ("schedule", List (Array.to_list (Array.map (fun c -> Int c) t.schedule)));
      ("expect", String (expect_to_string t.expect));
      ("detail", String t.detail);
    ]

let of_json j =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let int key err =
    match Option.bind (member key j) to_int_opt with
    | Some i -> Ok i
    | None -> Error err
  in
  let str key err =
    match Option.bind (member key j) to_string_opt with
    | Some s -> Ok s
    | None -> Error err
  in
  let* v = int "blunting_fuzz_corpus" "corpus: missing version marker" in
  if v <> version then Error (Fmt.str "corpus: unsupported version %d" v)
  else
    let* seed = int "seed" "corpus: missing seed" in
    let* iter = int "iter" "corpus: missing iter" in
    let* oracle = str "oracle" "corpus: missing oracle" in
    let* case =
      match member "case" j with
      | None | Some Null -> Ok None
      | Some cj -> Result.map Option.some (Case.of_json cj)
    in
    let* schedule =
      match Option.bind (member "schedule" j) to_list_opt with
      | None -> Error "corpus: missing schedule"
      | Some codes ->
          let ints = List.filter_map to_int_opt codes in
          if List.length ints <> List.length codes then
            Error "corpus: non-integer schedule code"
          else Ok (Array.of_list ints)
    in
    let* expect =
      let* s = str "expect" "corpus: missing expect" in
      expect_of_string s
    in
    let* detail = str "detail" "corpus: missing detail" in
    Ok { seed; iter; oracle; case; schedule; expect; detail }

let filename t = Fmt.str "fuzz-%s-s%d-i%d.json" t.oracle t.seed t.iter

let write ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename t) in
  Obs.Json.write_file path (to_json t);
  path

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> Result.bind (Obs.Json.of_string contents) of_json

let pp ppf t =
  Fmt.pf ppf "%s oracle, seed %d, iter %d, %a, %d-step schedule, expect %s"
    t.oracle t.seed t.iter
    (Fmt.option ~none:(Fmt.any "no case") Case.pp)
    t.case (Array.length t.schedule)
    (expect_to_string t.expect)
