let last_attempts = ref 0

let attempts_used () = !last_attempts

let minimize ?(max_attempts = 10_000) ~fails schedule =
  if not (fails schedule) then
    invalid_arg "Fuzz.Shrink.minimize: input schedule does not fail";
  let attempts = ref 1 in
  let check s =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      fails s
    end
  in
  let prefix s len = Array.sub s 0 len in
  let without s i =
    Array.init
      (Array.length s - 1)
      (fun j -> if j < i then s.(j) else s.(j + 1))
  in
  let cur = ref schedule in
  (* Truncation: repeated halving while the first half still fails, then
     peel single codes off the end. *)
  let truncate () =
    let shrank = ref false in
    let continue = ref true in
    while !continue do
      let len = Array.length !cur in
      let half = prefix !cur (len / 2) in
      if len > 1 && check half then begin
        cur := half;
        shrank := true
      end
      else continue := false
    done;
    continue := true;
    while !continue && Array.length !cur > 0 do
      let shorter = prefix !cur (Array.length !cur - 1) in
      if check shorter then begin
        cur := shorter;
        shrank := true
      end
      else continue := false
    done;
    !shrank
  in
  (* Deletion: remove interior codes one at a time (end-to-start, so
     untried indices stay valid as elements disappear). *)
  let delete () =
    let shrank = ref false in
    let i = ref (Array.length !cur - 1) in
    while !i >= 0 do
      let candidate = without !cur !i in
      if check candidate then begin
        cur := candidate;
        shrank := true
      end;
      decr i
    done;
    !shrank
  in
  (* Canonicalization: pull surviving codes toward 0 ("pick the first
     enabled event"), which makes shrunk corpora stable and readable. *)
  let canonicalize () =
    let shrank = ref false in
    for i = 0 to Array.length !cur - 1 do
      if !cur.(i) <> 0 then begin
        let candidate = Array.copy !cur in
        candidate.(i) <- 0;
        if check candidate then begin
          cur := candidate;
          shrank := true
        end
      end
    done;
    !shrank
  in
  (* Iterate the passes to a fixpoint of the full cycle, so [minimize] is
     idempotent: a shrunk schedule passes a whole cycle untouched. *)
  let changed = ref true in
  while !changed && !attempts < max_attempts do
    let t = truncate () in
    let d = delete () in
    let c = canonicalize () in
    changed := t || d || c
  done;
  last_attempts := !attempts;
  !cur
