(** Regression detection between two {!Results} documents.

    The repo's quantitative ground truth is its [BENCH_*.json] trajectory;
    this module is the consume side: it compares a current results document
    against a committed baseline and reports drift as typed findings.

    Two kinds of comparison run in one pass:
    - {b paper drift} (hard): within the {e current} document, every row
      carrying both [paper_value] and [measured_value] must agree to an
      absolute tolerance. All experiments here are deterministic (exact
      game values, seeded Monte-Carlo), so any drift is a real regression.
    - {b run-vs-baseline drift}: measured row values, per-section metrics
      (solver states, memo hit rate, GC profile, counter deltas) and
      span-duration totals compare under relative thresholds. Timing- and
      resource-shaped keys (seconds, latency, gc, heap, ...) get the
      generous [time_rtol] and at most a [Warn]; everything else is
      deterministic and fails hard beyond [value_rtol].

    Missing sections or rows degrade to warnings (subset runs via [--only]
    are routine); new sections and rows are informational. Baselines may be
    schema v1 while the current run is v2 — both validate, and the version
    skew is reported as an info finding. *)

type severity = Info | Warn | Fail

type finding = {
  severity : severity;
  section : string option;  (** experiment id, [None] for document-level *)
  subject : string;  (** row quantity, metric key, span name, ... *)
  detail : string;
}

type config = {
  paper_tol : float;  (** absolute, paper-vs-measured (default 1e-6) *)
  value_rtol : float;  (** relative, deterministic values (default 1e-9) *)
  time_rtol : float;  (** relative, timing/resource values (default 0.5) *)
  compare_spans : bool;  (** compare per-name span-duration totals *)
  min_speedup : float option;
      (** when set, the {e current} document's PAR section must show
          [solve_seq_seconds / solve_par_seconds >= f] — a hard [Fail]
          below the floor, and a hard [Fail] if the PAR section or either
          timing metric is missing (a speedup gate that silently skipped
          would defeat its purpose). Default [None] (no check): parallel
          wall time is machine-bound, so the gate is opt-in for CI legs
          that know their runner's core count. *)
  max_alloc_ratio : float option;
      (** when set, every section present in both documents with a
          [gc.minor_words] metric must show
          [current / baseline <= f] — normalized per simulator step
          ([counters.sim.steps]) when the section counted steps, so
          trial-count changes don't read as allocation changes. A hard
          [Fail] past the ceiling, and a hard [Fail] when {e no} section
          pair carries GC data (a silently skipped allocation gate would
          defeat its purpose). Allocation counts are deterministic per
          workload on a given compiler — unlike wall time — so this is a
          hard gate, not a warning. Default [None]. *)
}

val default_config : config

type report = {
  findings : finding list;  (** sorted [Fail], [Warn], [Info] *)
  sections_compared : int;
  rows_compared : int;
  metrics_compared : int;
  spans_compared : int;
}

(** [diff ?config ~baseline ~current ()] validates both documents
    ({!Results.validate}, so v1 and v2 are accepted) and compares them.
    [Error] means a document is unloadable or fails validation — distinct
    from a clean report with [Fail] findings. *)
val diff : ?config:config -> baseline:Json.t -> current:Json.t -> unit -> (report, string) result

val failures : report -> finding list

(** [exit_code r] is 0 when no [Fail] finding survived, 1 otherwise. *)
val exit_code : report -> int

(** [pp_report] renders the summary line, the findings table, and the
    OK/REGRESSION verdict. *)
val pp_report : Format.formatter -> report -> unit

(** [load_file path] reads and parses one JSON document. *)
val load_file : string -> (Json.t, string) result

(** [run_files ?config ~baseline ~current ppf] loads both paths, diffs,
    prints the report to [ppf] and returns the intended process exit code;
    [Error] for load/validation problems (callers conventionally exit 2). *)
val run_files :
  ?config:config -> baseline:string -> current:string -> Format.formatter -> (int, string) result
