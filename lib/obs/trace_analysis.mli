(** Analysis of ring-buffer trace dumps.

    Consumes a {!Ring.dump} (from [--trace-out] / [Ring.dump]) and
    computes the questions the parallel-engine work needs answered: where
    does [value_par] lose against the sequential solve (duplicated
    expansions — near zero under the shared-memo work-stealing solver —
    idle domains, helping/steal traffic), which states are hot, and what
    the adversary's schedule actually did. Rendered either as a
    human report ({!pp}) or machine JSON ({!to_json}) — the payloads of
    [blunting trace analyze] and [bench/analyze.exe].

    Solver figures here are derived from the {e retained} ring events and
    from state-key {e hashes}, so they are estimates once rings wrap or
    hashes collide; the exact per-domain duplicate-key counts come from
    [Mdp.Solver]'s [last_par_stats] and land in the results document's
    PAR section. The two agree on unwrapped traces. *)

type domain_report = {
  domain : int;
  events : int;  (** retained events *)
  dropped : int;
  solver_hits : int;  (** private-memo hits ([Solver_hit]) *)
  solver_misses : int;  (** [Solver_expand] events *)
  claim_hits : int;  (** shared-memo hits ([Claim_hit]) *)
  claim_misses : int;  (** probes of a live claim ([Claim_miss], helping) *)
  steals : int;  (** successful deque steals ([Steal]) *)
  pruned : int;  (** interval cuts ([Solver_prune]) *)
  spills : int;  (** out-of-core sorted runs written ([Store_spill]) *)
  spill_bytes : int;  (** bytes those runs occupy on disk *)
  store_cache_hits : int;  (** block-cache hits ([Store_cache_hit]) *)
  store_cache_misses : int;  (** block-cache misses ([Store_cache_miss]) *)
  store_evictions : int;  (** blocks evicted from the cache ([Store_evict]) *)
  alloc_samples : int;  (** {!Obs.Memprof} samples ([Alloc_sample]) *)
  alloc_words : int;  (** sampled allocation words on this domain *)
  hit_rate : float;
      (** (solver + claim hits) / (all hits + misses), 0 when idle *)
  busy_us : float;  (** total time inside pool task slices *)
  idle_us : float;  (** total time inside pool idle slices *)
  utilization : float;  (** busy / trace duration, 0 without tasks *)
}

type hot_state = {
  key_hash : int;
  expansions : int;  (** times expanded (memo misses) across domains *)
  hits : int;
  domains : int;  (** distinct domains that touched the key *)
}

(** One aggregated allocation site from [Alloc_sample] events. The hash
    is the one carried in the results document's ["allocation_profile"]
    [site_hash] fields, so trace timelines and named profile tables
    join. *)
type alloc_site = {
  site_hash : int;
  samples : int;
  words : int;  (** sampled words *)
  alloc_domains : int;  (** distinct domains that sampled the site *)
}

(** Attribution of adversary decisions recorded by the simulator's run
    loop: every [Adv_decision] event, with the enabled-set sizes the
    scheduler chose from and the kinds of the chosen events. *)
type decision_summary = {
  decisions : int;
  forced : int;  (** decisions with a single enabled event *)
  min_enabled : int;
  max_enabled : int;
  mean_enabled : float;
  steps : int;  (** chosen [Sim_step] events *)
  delivers : int;
  crashes : int;
}

type t = {
  t0_us : float;  (** earliest event timestamp *)
  t1_us : float;
  domains : domain_report list;  (** by domain id *)
  hot : hot_state list;  (** top-N by expansions, then hits *)
  total_expansions : int;
  distinct_keys : int;  (** distinct expanded key hashes *)
  duplicated_keys : int;  (** hashes expanded on >= 2 domains *)
  duplicated_work_pct : float;
      (** 100 * (expansions - distinct) / expansions over >= 2 domains *)
  allocators : alloc_site list;  (** top-N by sampled words *)
  queue_depths : (int * int) list;  (** depth -> samples, ascending *)
  decisions : decision_summary option;  (** None without [Adv_decision]s *)
  timeline_buckets : int;
  timeline : (int * float array) list;
      (** per domain: busy fraction per time bucket *)
}

(** [analyze ?top ?buckets d] computes the report; [top] (default 10)
    bounds the hot-state and allocator lists, [buckets] (default 20) the
    utilization timeline's resolution. *)
val analyze : ?top:int -> ?buckets:int -> Ring.dump -> t

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
