type point = { label : string; path : string; doc : Json.t }

let of_json ~label ?(path = label) doc =
  match Results.validate doc with
  | Ok () -> Ok { label; path; doc }
  | Error e -> Error (label ^ ": " ^ e)

let label_of_path path =
  let base = Filename.basename path in
  let base = Filename.remove_extension base in
  (* "BENCH_2026-08-06" -> "2026-08-06": the prefix carries no information
     within a trajectory table *)
  match String.index_opt base '_' with
  | Some i when String.length base > i + 1 ->
      String.sub base (i + 1) (String.length base - i - 1)
  | _ -> base

let load path =
  match Diff.load_file path with
  | Error e -> Error e
  | Ok doc -> of_json ~label:(label_of_path path) ~path doc

let is_bench_file name =
  String.length name > 6
  && String.sub name 0 6 = "BENCH_"
  && Filename.check_suffix name ".json"

let scan ~dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | names ->
      let files = List.filter is_bench_file (Array.to_list names) in
      let files = List.sort String.compare files in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match load (Filename.concat dir f) with
            | Ok p -> go (p :: acc) rest
            | Error e -> Error e)
      in
      go [] files

(* ---- extraction ------------------------------------------------------ *)

let sections_of doc =
  match Json.member "experiments" doc with
  | Some (Json.List l) ->
      List.filter_map
        (fun s ->
          match Option.bind (Json.member "id" s) Json.to_string_opt with
          | Some id -> Some (id, s)
          | None -> None)
        l
  | _ -> []

(* The per-section series: measured row values keyed by quantity, numeric
   section metrics keyed by name (nested objects flattened one level), and
   a derived states/sec wherever a states_kN / solve_seconds_kN pair
   exists. *)
let series_of_section section =
  let rows =
    match Json.member "rows" section with
    | Some (Json.List l) ->
        List.filter_map
          (fun r ->
            match
              ( Option.bind (Json.member "quantity" r) Json.to_string_opt,
                Option.bind (Json.member "measured_value" r) Json.to_number_opt )
            with
            | Some q, Some v -> Some (q, v)
            | _ -> None)
          l
    | _ -> []
  in
  let metrics =
    match Json.member "metrics" section with
    | Some (Json.Obj kvs) ->
        List.concat_map
          (fun (k, v) ->
            match v with
            | Json.Obj sub ->
                List.filter_map
                  (fun (k', v') ->
                    Option.map (fun n -> (k ^ "." ^ k', n)) (Json.to_number_opt v'))
                  sub
            | v -> (
                match Json.to_number_opt v with
                | Some n -> [ (k, n) ]
                | None -> []))
          kvs
    | _ -> []
  in
  let derived =
    List.filter_map
      (fun (k, states) ->
        let prefix = "states_" in
        let pl = String.length prefix in
        if String.length k > pl && String.sub k 0 pl = prefix then
          let suffix = String.sub k pl (String.length k - pl) in
          match List.assoc_opt ("solve_seconds_" ^ suffix) metrics with
          | Some secs when secs > 0.0 ->
              Some ("states/s_" ^ suffix, states /. secs)
          | _ -> None
        else None)
      metrics
  in
  (* GC trendline for the zero-alloc roadmap item: normalize the
     per-section minor-word count by the section's simulator steps, so
     allocation-rate regressions show across baselines whose step counts
     differ. *)
  let gc_derived =
    match
      ( List.assoc_opt "gc.minor_words" metrics,
        List.assoc_opt "counters.sim.steps" metrics )
    with
    | Some words, Some steps when steps > 0.0 ->
        [ ("gc.minor_words_per_step", words /. steps) ]
    | _ -> []
  in
  rows @ metrics @ derived @ gc_derived

(* ---- tables ---------------------------------------------------------- *)

type table = {
  section_id : string;
  title : string;
  columns : string list;  (** one per trajectory point *)
  rows : (string * float option list) list;
}

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let tables ?section points =
  let ids =
    dedup_keep_order
      (List.concat_map (fun p -> List.map fst (sections_of p.doc)) points)
  in
  let ids =
    match section with
    | None -> ids
    | Some id -> List.filter (fun i -> String.uppercase_ascii i = String.uppercase_ascii id) ids
  in
  List.map
    (fun id ->
      let per_point =
        List.map
          (fun p ->
            match List.assoc_opt id (sections_of p.doc) with
            | None -> (None, [])
            | Some s ->
                ( Option.bind (Json.member "title" s) Json.to_string_opt,
                  series_of_section s ))
          points
      in
      let title =
        Option.value ~default:""
          (List.find_map (fun (t, _) -> t) per_point)
      in
      let keys = dedup_keep_order (List.concat_map (fun (_, kv) -> List.map fst kv) per_point) in
      {
        section_id = id;
        title;
        columns = List.map (fun p -> p.label) points;
        rows =
          List.map
            (fun key ->
              (key, List.map (fun (_, kv) -> List.assoc_opt key kv) per_point))
            keys;
      })
    ids

let cell = function
  | None -> "—"
  | Some v ->
      if Float.is_integer v && abs_float v < 1e15 then Fmt.str "%.0f" v
      else Fmt.str "%.6g" v

let pp_text ppf t =
  let headers = ("quantity / metric" :: t.columns) in
  let body = List.map (fun (k, vs) -> k :: List.map cell vs) t.rows in
  let all = headers :: body in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    all;
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  Fmt.pf ppf "=== %s  %s@,@," t.section_id t.title;
  Fmt.pf ppf "%s@," (line headers);
  Fmt.pf ppf "%s@,"
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun row -> Fmt.pf ppf "%s@," (line row)) body

let pp_markdown ppf t =
  Fmt.pf ppf "### %s — %s@,@," t.section_id t.title;
  Fmt.pf ppf "| quantity / metric |%s@,"
    (String.concat "" (List.map (fun c -> " " ^ c ^ " |") t.columns));
  Fmt.pf ppf "|---|%s@,"
    (String.concat "" (List.map (fun _ -> "---|") t.columns));
  List.iter
    (fun (k, vs) ->
      Fmt.pf ppf "| %s |%s@," k
        (String.concat "" (List.map (fun v -> " " ^ cell v ^ " |") vs)))
    t.rows;
  Fmt.pf ppf "@,"
