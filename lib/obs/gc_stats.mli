(** GC and allocation profiling for spans and bench sections.

    Wall-clock alone cannot tell an algorithmic regression from an
    allocation regression; this module captures [Gc.quick_stat] deltas
    around a piece of work so every {!Span} and every bench section carries
    its resource profile (minor/major words, promotions, collection counts,
    heap high-water) into the results document, where {!Diff} can compare
    it across runs. *)

(** A [Gc.quick_stat] reading. *)
type sample = Gc.stat

val sample : unit -> sample

(** The GC work between two samples. All word counts are deltas except
    [top_heap_words], which is the process high-water mark at the later
    sample (a maximum cannot be meaningfully differenced). *)
type delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;
}

(** [delta before after] — fields are [after - before] (see [top_heap_words]
    above). *)
val delta : sample -> sample -> delta

(** [measure f] runs [f ()] and returns its result with the GC delta. *)
val measure : (unit -> 'a) -> 'a * delta

(** [allocated_words d] is total fresh allocation:
    [minor + major - promoted] (promoted words would otherwise be counted
    in both generations). *)
val allocated_words : delta -> float

val to_json : delta -> Json.t
val pp : Format.formatter -> delta -> unit

(** [publish_gauges ()] refreshes the [gc.*] gauges in {!Metrics} from the
    current [Gc.quick_stat], so registry snapshots include the process GC
    profile. *)
val publish_gauges : unit -> unit
