(** [Logs] wiring shared by the CLI, the bench harness and the examples.

    Each library owns its sources ([blunting.sim], [blunting.mdp],
    [blunting.adversary], ...) created next to the code they instrument;
    this module only installs a reporter and maps the [--verbosity] flag
    onto {!Logs.set_level}. With no reporter installed (the default for
    library consumers) every log statement is a cheap no-op, so the
    instrumentation can stay in hot paths. *)

(** [level_of_string s] parses [quiet], [app], [error], [warn]/[warning],
    [info], [debug] (case-insensitive). *)
val level_of_string : string -> (Logs.level option, string) result

(** [setup level] installs a stderr reporter tagged with the source name
    and sets the global level. Safe to call more than once. *)
val setup : Logs.level option -> unit

(** [set_verbosity s] = [level_of_string] + [setup]; the CLI entry point. *)
val set_verbosity : string -> (unit, string) result

(** The verbosity values accepted by {!set_verbosity}, for [--help] text. *)
val verbosity_values : string list
