type phase =
  | Begin
  | End
  | Complete of float
  | Instant
  | Counter
  | Metadata

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

let event ?(cat = "blunting") ?(pid = 0) ?(tid = 0) ?(args = []) ~name ~ts phase =
  { name; cat; phase; ts; pid; tid; args }

let thread_name ~pid ~tid name =
  event ~cat:"__metadata" ~pid ~tid
    ~args:[ ("name", Json.String name) ]
    ~name:"thread_name" ~ts:0.0 Metadata

let process_name ~pid name =
  event ~cat:"__metadata" ~pid
    ~args:[ ("name", Json.String name) ]
    ~name:"process_name" ~ts:0.0 Metadata

let ph_string = function
  | Begin -> "B"
  | End -> "E"
  | Complete _ -> "X"
  | Instant -> "i"
  | Counter -> "C"
  | Metadata -> "M"

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (ph_string e.phase));
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur = match e.phase with Complete d -> [ ("dur", Json.Float d) ] | _ -> [] in
  let scope = match e.phase with Instant -> [ ("s", Json.String "t") ] | _ -> [] in
  let args = match e.args with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ] in
  Json.Obj (base @ dur @ scope @ args)

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file path events = Json.write_file path (to_json events)
