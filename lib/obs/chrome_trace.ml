type phase =
  | Begin
  | End
  | Complete of float
  | Instant
  | Counter
  | Metadata

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

let event ?(cat = "blunting") ?(pid = 0) ?(tid = 0) ?(args = []) ~name ~ts phase =
  { name; cat; phase; ts; pid; tid; args }

let thread_name ~pid ~tid name =
  event ~cat:"__metadata" ~pid ~tid
    ~args:[ ("name", Json.String name) ]
    ~name:"thread_name" ~ts:0.0 Metadata

let process_name ~pid name =
  event ~cat:"__metadata" ~pid
    ~args:[ ("name", Json.String name) ]
    ~name:"process_name" ~ts:0.0 Metadata

let ph_string = function
  | Begin -> "B"
  | End -> "E"
  | Complete _ -> "X"
  | Instant -> "i"
  | Counter -> "C"
  | Metadata -> "M"

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (ph_string e.phase));
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur = match e.phase with Complete d -> [ ("dur", Json.Float d) ] | _ -> [] in
  let scope = match e.phase with Instant -> [ ("s", Json.String "t") ] | _ -> [] in
  let args = match e.args with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ] in
  Json.Obj (base @ dur @ scope @ args)

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file path events = Json.write_file path (to_json events)

(* The inverse of [to_json], for round-trip tests and external tooling
   that post-processes exported traces. Only the phases [ph_string] emits
   are understood; anything else is a parse error, not a silent drop. *)
let of_json j =
  let ( let* ) = Result.bind in
  let event_of_json i e =
    let str name = Option.bind (Json.member name e) Json.to_string_opt in
    let num name = Option.bind (Json.member name e) Json.to_number_opt in
    let int name = Option.bind (Json.member name e) Json.to_int_opt in
    let need what = function
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "traceEvents[%d]: missing %s" i what)
    in
    let* name = need "name (string)" (str "name") in
    let* ph = need "ph (string)" (str "ph") in
    let* ts = need "ts (number)" (num "ts") in
    let* pid = need "pid (int)" (int "pid") in
    let* tid = need "tid (int)" (int "tid") in
    let* phase =
      match ph with
      | "B" -> Ok Begin
      | "E" -> Ok End
      | "X" -> (
          match num "dur" with
          | Some d -> Ok (Complete d)
          | None -> Error (Printf.sprintf "traceEvents[%d]: X without dur" i))
      | "i" -> Ok Instant
      | "C" -> Ok Counter
      | "M" -> Ok Metadata
      | ph -> Error (Printf.sprintf "traceEvents[%d]: unknown phase %S" i ph)
    in
    let cat = Option.value ~default:"" (str "cat") in
    let args =
      match Json.member "args" e with Some (Json.Obj kvs) -> kvs | _ -> []
    in
    Ok { name; cat; phase; ts; pid; tid; args }
  in
  match Json.member "traceEvents" j with
  | Some (Json.List l) ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
            let* ev = event_of_json i e in
            go (i + 1) (ev :: acc) rest
      in
      go 0 [] l
  | _ -> Error "document lacks a traceEvents array"
