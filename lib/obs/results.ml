let schema_version = 6

(* v1 documents (no per-span "gc", no histogram percentiles), v2
   documents (no PAR per-domain telemetry), v3 documents (no
   work-stealing counters), v4 documents (no allocation profile) and v5
   documents (no out-of-core store telemetry) remain valid: older
   BENCH_*.json baselines must stay loadable by the differ. v3/v4 only
   add optional section-metric fields, v5 only an optional top-level
   "allocation_profile" block and v6 only an optional top-level "store"
   block, so the validator body is shared. *)
let accepted_versions = [ 1; 2; 3; 4; 5; 6 ]

type row = {
  quantity : string;
  paper : string;
  measured : string;
  paper_value : float option;
  measured_value : float option;
}

type section = {
  id : string;
  title : string;
  mutable rows : row list;  (* reversed *)
  mutable metrics : (string * Json.t) list;  (* reversed *)
}

type t = { generated_by : string; mutable sections : section list (* reversed *) }

let create ~generated_by () = { generated_by; sections = [] }

let section t ~id ~title =
  let s = { id; title; rows = []; metrics = [] } in
  t.sections <- s :: t.sections;
  s

let row section ?paper_value ?measured_value ~quantity ~paper ~measured () =
  section.rows <- { quantity; paper; measured; paper_value; measured_value } :: section.rows

let add_section_metrics section kvs = section.metrics <- List.rev_append kvs section.metrics

let row_to_json r =
  let opt name = function None -> [] | Some v -> [ (name, Json.Float v) ] in
  Json.Obj
    ([
       ("quantity", Json.String r.quantity);
       ("paper", Json.String r.paper);
       ("measured", Json.String r.measured);
     ]
    @ opt "paper_value" r.paper_value
    @ opt "measured_value" r.measured_value)

let section_to_json s =
  Json.Obj
    [
      ("id", Json.String s.id);
      ("title", Json.String s.title);
      ("rows", Json.List (List.rev_map row_to_json s.rows));
      ("metrics", Json.Obj (List.rev s.metrics));
    ]

let span_to_json (s : Span.span) =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("start_us", Json.Float s.start_us);
      ("dur_us", Json.Float s.dur_us);
      ("gc", Gc_stats.to_json s.gc);
    ]

(* v6: the out-of-core memo's telemetry, set by whoever ran a budgeted
   solve (this module cannot depend on the store library — the store
   records into [Ring], so the dependency runs the other way). Absent
   from purely in-RAM runs, keeping their documents structurally
   identical to v5. *)
let store_block : Json.t option ref = ref None
let set_store_block j = store_block := Some j

let to_json t =
  Gc_stats.publish_gauges ();
  (* v5: present only when a Memprof session ran, so unprofiled documents
     stay structurally identical to v4. *)
  let allocation_profile =
    match Memprof.profile () with
    | Some p -> [ ("allocation_profile", Memprof.to_json p) ]
    | None -> []
  in
  let store =
    match !store_block with Some s -> [ ("store", s) ] | None -> []
  in
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("generated_by", Json.String t.generated_by);
       ("generated_at_unix", Json.Float (Unix.time ()));
       ("experiments", Json.List (List.rev_map section_to_json t.sections));
       ("metrics", Metrics.snapshot ());
       ("spans", Json.List (List.map span_to_json (Span.spans ())));
     ]
    @ allocation_profile @ store)

let write t ~path = Json.write_file path (to_json t)

(* ---- validation ----------------------------------------------------- *)

let ( let* ) = Result.bind

let need what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what)

let field obj name = Json.member name obj

let check_string obj ~ctx name =
  let* _ =
    need
      (Printf.sprintf "%s.%s (string)" ctx name)
      (Option.bind (field obj name) Json.to_string_opt)
  in
  Ok ()

let check_number_opt obj ~ctx name =
  match field obj name with
  | None -> Ok ()
  (* [Null] is what the printers emit for non-finite floats (bare nan/inf
     would not be JSON); an absent measurement is as valid as a missing
     field. *)
  | Some Json.Null -> Ok ()
  | Some v -> (
      match Json.to_number_opt v with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "%s.%s must be a number or null" ctx name))

let check_obj obj ~ctx name =
  match field obj name with
  | Some (Json.Obj _) -> Ok ()
  | _ -> Error (Printf.sprintf "%s.%s must be an object" ctx name)

let rec check_all = function
  | [] -> Ok ()
  | check :: rest ->
      let* () = check in
      check_all rest

let check_list obj ~ctx name check_item =
  let* items =
    need
      (Printf.sprintf "%s.%s (array)" ctx name)
      (Option.bind (field obj name) Json.to_list_opt)
  in
  check_all (List.mapi check_item items)

let validate_row ~ctx i r =
  let ctx = Printf.sprintf "%s.rows[%d]" ctx i in
  check_all
    [
      check_string r ~ctx "quantity";
      check_string r ~ctx "paper";
      check_string r ~ctx "measured";
      check_number_opt r ~ctx "paper_value";
      check_number_opt r ~ctx "measured_value";
    ]

let validate_experiment i e =
  let ctx = Printf.sprintf "experiments[%d]" i in
  check_all
    [
      check_string e ~ctx "id";
      check_string e ~ctx "title";
      check_list e ~ctx "rows" (validate_row ~ctx);
      check_obj e ~ctx "metrics";
    ]

let validate_metrics_snapshot j =
  check_all
    [
      check_obj j ~ctx:"metrics" "counters";
      check_obj j ~ctx:"metrics" "gauges";
      check_obj j ~ctx:"metrics" "histograms";
    ]

let validate_span i s =
  let ctx = Printf.sprintf "spans[%d]" i in
  check_all
    [
      check_string s ~ctx "name";
      (match Option.bind (field s "start_us") Json.to_number_opt with
      | Some _ -> Ok ()
      | None -> Error (ctx ^ ".start_us must be a number"));
      (match Option.bind (field s "dur_us") Json.to_number_opt with
      | Some _ -> Ok ()
      | None -> Error (ctx ^ ".dur_us must be a number"));
      (* "gc" is new in v2; optional so v1 spans stay valid *)
      (match field s "gc" with
      | None | Some (Json.Obj _) -> Ok ()
      | Some _ -> Error (ctx ^ ".gc must be an object"));
    ]

(* v5's optional block; checked lightly (the site list shape plus the
   sampling rate) so future profile fields stay backward compatible. *)
let validate_allocation_profile j =
  match field j "allocation_profile" with
  | None -> Ok ()
  | Some (Json.Obj _ as a) ->
      let ctx = "allocation_profile" in
      check_all
        [
          (match Option.bind (field a "sampling_rate") Json.to_number_opt with
          | Some _ -> Ok ()
          | None -> Error (ctx ^ ".sampling_rate must be a number"));
          check_list a ~ctx "sites" (fun i s ->
              check_string s ~ctx:(Printf.sprintf "%s.sites[%d]" ctx i) "site");
        ]
  | Some _ -> Error "allocation_profile must be an object"

(* v6's optional block: the counters a spill/recovery gate asserts on
   must be numbers; extra fields stay legal for forward compatibility. *)
let validate_store j =
  match field j "store" with
  | None -> Ok ()
  | Some (Json.Obj _ as s) ->
      check_all
        (List.map
           (fun name ->
             match Option.bind (field s name) Json.to_number_opt with
             | Some _ -> Ok ()
             | None -> Error (Printf.sprintf "store.%s must be a number" name))
           [
             "budget_bytes"; "spilled_entries"; "spill_runs"; "bytes_spilled";
             "evictions"; "cache_hits"; "cache_misses"; "cache_hit_rate";
             "read_amplification"; "write_amplification"; "disk_hits";
           ])
  | Some _ -> Error "store must be an object"

let validate j =
  match j with
  | Json.Obj _ ->
      let* v =
        need "schema_version (int)"
          (Option.bind (field j "schema_version") Json.to_int_opt)
      in
      let* () =
        if List.mem v accepted_versions then Ok ()
        else
          Error
            (Printf.sprintf "unsupported schema_version %d (accept %s)" v
               (String.concat ", " (List.map string_of_int accepted_versions)))
      in
      let* () = check_string j ~ctx:"document" "generated_by" in
      let* () = check_list j ~ctx:"document" "experiments" validate_experiment in
      let* metrics = need "metrics (object)" (field j "metrics") in
      let* () = validate_metrics_snapshot metrics in
      let* () = check_list j ~ctx:"document" "spans" validate_span in
      let* () = validate_allocation_profile j in
      let* () = validate_store j in
      Ok ()
  | _ -> Error "document must be a JSON object"
