(* Selected by the dune rules in this directory on OCaml >= 5.3: the real
   statmemprof hookup. Callbacks run on the allocating domain, so the
   front-end can read per-domain state (phase, domain id) directly. A
   domain is profiled only if it is running — or is spawned — after
   [start], so profiling must begin before the worker pool exists.

   Only [Normal] allocations are forwarded: [Marshal]/[Custom] blocks
   carry no useful call site for the lib/ attribution this feeds. The
   sample callback is wrapped in a catch-all because an exception
   escaping a memprof callback would surface at an arbitrary allocation
   point in profiled code. *)

let supported = true
let handle : Gc.Memprof.t option ref = ref None

let start ~sampling_rate ~callstack_size
    ~(on_sample :
        minor:bool ->
        n_samples:int ->
        size:int ->
        callstack:Printexc.raw_backtrace ->
        unit) : (unit, string) result =
  match !handle with
  | Some _ -> Error "allocation profiler is already running"
  | None -> (
      let sample minor (a : Gc.Memprof.allocation) =
        (match a.Gc.Memprof.source with
        | Gc.Memprof.Normal -> (
            try
              on_sample ~minor ~n_samples:a.Gc.Memprof.n_samples
                ~size:a.Gc.Memprof.size ~callstack:a.Gc.Memprof.callstack
            with _ -> ())
        | Gc.Memprof.Marshal | Gc.Memprof.Custom -> ());
        None
      in
      let tracker =
        {
          Gc.Memprof.null_tracker with
          Gc.Memprof.alloc_minor = sample true;
          Gc.Memprof.alloc_major = sample false;
        }
      in
      match Gc.Memprof.start ~sampling_rate ~callstack_size tracker with
      | t ->
          handle := Some t;
          Ok ()
      | exception e -> Error (Printexc.to_string e))

let stop () =
  match !handle with
  | None -> ()
  | Some t ->
      handle := None;
      (try Gc.Memprof.stop () with _ -> ());
      (try Gc.Memprof.discard t with _ -> ())
