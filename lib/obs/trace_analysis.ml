type domain_report = {
  domain : int;
  events : int;
  dropped : int;
  solver_hits : int;
  solver_misses : int;
  claim_hits : int;
  claim_misses : int;
  steals : int;
  pruned : int;
  spills : int;
  spill_bytes : int;
  store_cache_hits : int;
  store_cache_misses : int;
  store_evictions : int;
  alloc_samples : int;
  alloc_words : int;
  hit_rate : float;
  busy_us : float;
  idle_us : float;
  utilization : float;
}

type hot_state = { key_hash : int; expansions : int; hits : int; domains : int }
type alloc_site = { site_hash : int; samples : int; words : int; alloc_domains : int }

type decision_summary = {
  decisions : int;
  forced : int;
  min_enabled : int;
  max_enabled : int;
  mean_enabled : float;
  steps : int;
  delivers : int;
  crashes : int;
}

type t = {
  t0_us : float;
  t1_us : float;
  domains : domain_report list;
  hot : hot_state list;
  total_expansions : int;
  distinct_keys : int;
  duplicated_keys : int;
  duplicated_work_pct : float;
  allocators : alloc_site list;
  queue_depths : (int * int) list;
  decisions : decision_summary option;
  timeline_buckets : int;
  timeline : (int * float array) list;
}

(* Per-key accumulator for the hot-state and duplicate-work figures. The
   domain list stays tiny (one entry per domain that expanded the key). *)
type key_acc = {
  mutable expansions : int;
  mutable hits : int;
  mutable expand_domains : int list;  (* distinct, unsorted *)
  mutable touch_domains : int list;
}

(* Per-allocation-site accumulator (site hash = the [Alloc_sample] [a]
   payload, joinable with the results document's [site_hash] fields). *)
type alloc_acc = {
  mutable al_samples : int;
  mutable al_words : int;
  mutable al_domains : int list;
}

let add_domain d ds = if List.mem d ds then ds else d :: ds

(* Sum the durations of (start, stop) slice pairs among a domain's events,
   also feeding per-bucket busy time. Slices have no reason to nest, but a
   depth counter keeps a truncated ring (lost [start]) from going
   negative. *)
let slice_time ~t0 ~t1 ~buckets ~bucket_acc ~start_tag ~stop_tag events =
  let total = ref 0.0 in
  let depth = ref 0 in
  let opened = ref 0.0 in
  let span = Float.max (t1 -. t0) 1e-9 in
  let credit s e =
    total := !total +. (e -. s);
    match bucket_acc with
    | None -> ()
    | Some acc ->
        let w = span /. float_of_int buckets in
        for i = 0 to buckets - 1 do
          let blo = t0 +. (float_of_int i *. w) in
          let bhi = blo +. w in
          let o = Float.min e bhi -. Float.max s blo in
          if o > 0.0 then acc.(i) <- acc.(i) +. (o /. w)
        done
  in
  List.iter
    (fun (e : Ring.event) ->
      if e.tag = start_tag then begin
        if !depth = 0 then opened := e.ts_us;
        incr depth
      end
      else if e.tag = stop_tag && !depth > 0 then begin
        decr depth;
        if !depth = 0 then credit !opened e.ts_us
      end)
    events;
  if !depth > 0 then credit !opened t1;
  !total

let analyze ?(top = 10) ?(buckets = 20) (d : Ring.dump) =
  let all_events =
    List.concat_map (fun (dd : Ring.domain_dump) -> dd.events) (d.domains @ d.runtime)
  in
  let t0, t1 =
    List.fold_left
      (fun (lo, hi) (e : Ring.event) ->
        (Float.min lo e.ts_us, Float.max hi e.ts_us))
      (infinity, neg_infinity) all_events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let t1 = if Float.is_finite t1 then t1 else 0.0 in
  let keys : (int, key_acc) Hashtbl.t = Hashtbl.create 4096 in
  let key h =
    match Hashtbl.find_opt keys h with
    | Some a -> a
    | None ->
        let a = { expansions = 0; hits = 0; expand_domains = []; touch_domains = [] } in
        Hashtbl.add keys h a;
        a
  in
  let queue : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let allocs : (int, alloc_acc) Hashtbl.t = Hashtbl.create 64 in
  let alloc h =
    match Hashtbl.find_opt allocs h with
    | Some a -> a
    | None ->
        let a = { al_samples = 0; al_words = 0; al_domains = [] } in
        Hashtbl.add allocs h a;
        a
  in
  let dec_count = ref 0
  and dec_forced = ref 0
  and dec_min = ref max_int
  and dec_max = ref 0
  and dec_sum = ref 0
  and dec_steps = ref 0
  and dec_delivers = ref 0
  and dec_crashes = ref 0 in
  let timeline = ref [] in
  let reports =
    List.map
      (fun (dd : Ring.domain_dump) ->
        let hits = ref 0 and misses = ref 0 in
        let c_hits = ref 0 and c_misses = ref 0 in
        let steals = ref 0 and pruned = ref 0 in
        let spills = ref 0 and spill_bytes = ref 0 in
        let s_hits = ref 0 and s_misses = ref 0 and s_evicts = ref 0 in
        let a_samples = ref 0 and a_words = ref 0 in
        let pending_decision = ref false in
        List.iter
          (fun (e : Ring.event) ->
            match e.tag with
            | Ring.Solver_hit ->
                incr hits;
                let a = key e.a in
                a.hits <- a.hits + 1;
                a.touch_domains <- add_domain dd.domain a.touch_domains
            | Ring.Claim_hit ->
                (* a shared-memo probe answered by a resolved value — a hit
                   for hit-rate purposes, kept separate in the report *)
                incr c_hits;
                let a = key e.a in
                a.hits <- a.hits + 1;
                a.touch_domains <- add_domain dd.domain a.touch_domains
            | Ring.Claim_miss ->
                (* payload is the claim's owner id, not a key hash — counted
                   but never fed to the key accumulator *)
                incr c_misses
            | Ring.Steal -> incr steals
            | Ring.Solver_prune -> incr pruned
            | Ring.Store_spill ->
                (* [a] = entries in the run, [b] = run bytes on disk *)
                incr spills;
                spill_bytes := !spill_bytes + e.b
            | Ring.Store_cache_hit -> incr s_hits
            | Ring.Store_cache_miss -> incr s_misses
            | Ring.Store_evict -> incr s_evicts
            | Ring.Alloc_sample ->
                incr a_samples;
                a_words := !a_words + e.b;
                let a = alloc e.a in
                a.al_samples <- a.al_samples + 1;
                a.al_words <- a.al_words + e.b;
                a.al_domains <- add_domain dd.domain a.al_domains
            | Ring.Solver_expand ->
                incr misses;
                let a = key e.a in
                a.expansions <- a.expansions + 1;
                a.expand_domains <- add_domain dd.domain a.expand_domains;
                a.touch_domains <- add_domain dd.domain a.touch_domains
            | Ring.Pool_queue_depth ->
                Hashtbl.replace queue e.a
                  (1 + Option.value ~default:0 (Hashtbl.find_opt queue e.a))
            | Ring.Adv_decision ->
                incr dec_count;
                if e.a <= 1 then incr dec_forced;
                dec_min := min !dec_min e.a;
                dec_max := max !dec_max e.a;
                dec_sum := !dec_sum + e.a;
                pending_decision := true
            | Ring.Sim_step | Ring.Sim_deliver | Ring.Sim_crash ->
                if !pending_decision then begin
                  pending_decision := false;
                  match e.tag with
                  | Ring.Sim_step -> incr dec_steps
                  | Ring.Sim_deliver -> incr dec_delivers
                  | _ -> incr dec_crashes
                end
            | _ -> ())
          dd.events;
        let bucket_acc = Array.make buckets 0.0 in
        let busy_us =
          slice_time ~t0 ~t1 ~buckets ~bucket_acc:(Some bucket_acc)
            ~start_tag:Ring.Pool_task_start ~stop_tag:Ring.Pool_task_stop
            dd.events
        in
        let idle_us =
          slice_time ~t0 ~t1 ~buckets ~bucket_acc:None
            ~start_tag:Ring.Pool_idle_start ~stop_tag:Ring.Pool_idle_stop
            dd.events
        in
        if busy_us > 0.0 then timeline := (dd.domain, bucket_acc) :: !timeline;
        let all_hits = !hits + !c_hits in
        let total = all_hits + !misses in
        {
          domain = dd.domain;
          events = List.length dd.events;
          dropped = dd.dropped;
          solver_hits = !hits;
          solver_misses = !misses;
          claim_hits = !c_hits;
          claim_misses = !c_misses;
          steals = !steals;
          pruned = !pruned;
          spills = !spills;
          spill_bytes = !spill_bytes;
          store_cache_hits = !s_hits;
          store_cache_misses = !s_misses;
          store_evictions = !s_evicts;
          alloc_samples = !a_samples;
          alloc_words = !a_words;
          hit_rate =
            (if total = 0 then 0.0
             else float_of_int all_hits /. float_of_int total);
          busy_us;
          idle_us;
          utilization =
            (if busy_us > 0.0 && t1 > t0 then busy_us /. (t1 -. t0) else 0.0);
        })
      d.domains
  in
  let total_expansions = ref 0
  and distinct = ref 0
  and duplicated = ref 0 in
  Hashtbl.iter
    (fun _ a ->
      if a.expansions > 0 then begin
        total_expansions := !total_expansions + a.expansions;
        incr distinct;
        if List.length a.expand_domains >= 2 then incr duplicated
      end)
    keys;
  let hot =
    Hashtbl.fold
      (fun h a acc ->
        { key_hash = h; expansions = a.expansions; hits = a.hits;
          domains = List.length a.touch_domains }
        :: acc)
      keys []
    |> List.sort (fun (x : hot_state) (y : hot_state) ->
           match compare (y.expansions, y.hits) (x.expansions, x.hits) with
           | 0 -> compare x.key_hash y.key_hash
           | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  let allocators =
    Hashtbl.fold
      (fun h a acc ->
        { site_hash = h; samples = a.al_samples; words = a.al_words;
          alloc_domains = List.length a.al_domains }
        :: acc)
      allocs []
    |> List.sort (fun (x : alloc_site) (y : alloc_site) ->
           match compare (y.words, y.samples) (x.words, x.samples) with
           | 0 -> compare x.site_hash y.site_hash
           | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  {
    t0_us = t0;
    t1_us = t1;
    domains = reports;
    hot;
    total_expansions = !total_expansions;
    distinct_keys = !distinct;
    duplicated_keys = !duplicated;
    duplicated_work_pct =
      (if !total_expansions = 0 then 0.0
       else
         100.0
         *. float_of_int (!total_expansions - !distinct)
         /. float_of_int !total_expansions);
    allocators;
    queue_depths =
      Hashtbl.fold (fun d c acc -> (d, c) :: acc) queue []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    decisions =
      (if !dec_count = 0 then None
       else
         Some
           {
             decisions = !dec_count;
             forced = !dec_forced;
             min_enabled = !dec_min;
             max_enabled = !dec_max;
             mean_enabled = float_of_int !dec_sum /. float_of_int !dec_count;
             steps = !dec_steps;
             delivers = !dec_delivers;
             crashes = !dec_crashes;
           });
    timeline_buckets = buckets;
    timeline = List.sort (fun (a, _) (b, _) -> compare a b) !timeline;
  }

(* ---- rendering ------------------------------------------------------- *)

let spark fractions =
  (* ten ASCII intensity levels, dense enough to eyeball idle domains *)
  let levels = " .:-=+*#%@" in
  String.init (Array.length fractions) (fun i ->
      let f = Float.min 1.0 (Float.max 0.0 fractions.(i)) in
      levels.[min 9 (int_of_float (f *. 10.0))])

let pp ppf t =
  let span_s = (t.t1_us -. t.t0_us) /. 1e6 in
  let total_events =
    List.fold_left (fun a (d : domain_report) -> a + d.events) 0 t.domains
  in
  let total_dropped =
    List.fold_left (fun a (d : domain_report) -> a + d.dropped) 0 t.domains
  in
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "trace: %d events on %d domain%s, %d dropped, span %.3fs@,"
    total_events
    (List.length t.domains)
    (if List.length t.domains = 1 then "" else "s")
    total_dropped span_s;
  if t.domains <> [] then begin
    Fmt.pf ppf "@,%-8s %9s %9s %9s %9s %8s %7s %10s@," "domain" "events"
      "expand" "hits" "hit-rate" "busy(s)" "util" "alloc(w)";
    List.iter
      (fun (d : domain_report) ->
        Fmt.pf ppf "%-8d %9d %9d %9d %8.1f%% %8.3f %6.1f%% %10d@," d.domain
          d.events d.solver_misses
          (d.solver_hits + d.claim_hits)
          (100.0 *. d.hit_rate)
          (d.busy_us /. 1e6)
          (100.0 *. d.utilization)
          d.alloc_words)
      t.domains;
    let sum f = List.fold_left (fun a d -> a + f d) 0 t.domains in
    let steals = sum (fun d -> d.steals)
    and c_hits = sum (fun (d : domain_report) -> d.claim_hits)
    and c_misses = sum (fun (d : domain_report) -> d.claim_misses)
    and pruned = sum (fun (d : domain_report) -> d.pruned) in
    if steals + c_hits + c_misses + pruned > 0 then
      Fmt.pf ppf
        "@,work stealing: %d steal%s, %d claim hit%s, %d claim miss%s \
         (helping), %d pruned subtree%s@,"
        steals
        (if steals = 1 then "" else "s")
        c_hits
        (if c_hits = 1 then "" else "s")
        c_misses
        (if c_misses = 1 then "" else "es")
        pruned
        (if pruned = 1 then "" else "s");
    let spills = sum (fun (d : domain_report) -> d.spills)
    and spill_bytes = sum (fun (d : domain_report) -> d.spill_bytes)
    and s_hits = sum (fun (d : domain_report) -> d.store_cache_hits)
    and s_misses = sum (fun (d : domain_report) -> d.store_cache_misses)
    and s_evicts = sum (fun (d : domain_report) -> d.store_evictions) in
    if spills + s_hits + s_misses + s_evicts > 0 then
      Fmt.pf ppf
        "@,out-of-core store: %d spill run%s (%d B), block cache %d/%d hits \
         (%.1f%%), %d eviction%s@,"
        spills
        (if spills = 1 then "" else "s")
        spill_bytes s_hits (s_hits + s_misses)
        (if s_hits + s_misses = 0 then 0.0
         else 100.0 *. float_of_int s_hits /. float_of_int (s_hits + s_misses))
        s_evicts
        (if s_evicts = 1 then "" else "s");
    let a_samples = sum (fun (d : domain_report) -> d.alloc_samples)
    and a_words = sum (fun (d : domain_report) -> d.alloc_words) in
    if a_samples > 0 then begin
      Fmt.pf ppf "@,allocation: %d sample%s, %d sampled words@," a_samples
        (if a_samples = 1 then "" else "s")
        a_words;
      Fmt.pf ppf "top allocators (by sampled words):@,";
      List.iter
        (fun (s : alloc_site) ->
          Fmt.pf ppf "  site %08x  words %d  samples %d  domains %d@,"
            s.site_hash s.words s.samples s.alloc_domains)
        t.allocators
    end
  end;
  if t.total_expansions > 0 then begin
    Fmt.pf ppf
      "@,duplicated work: %d expansions over %d distinct keys — %d key%s on \
       >=2 domains, %.1f%% of expansions duplicated@,"
      t.total_expansions t.distinct_keys t.duplicated_keys
      (if t.duplicated_keys = 1 then "" else "s")
      t.duplicated_work_pct;
    Fmt.pf ppf "top states (by expansions):@,";
    List.iter
      (fun h ->
        Fmt.pf ppf "  key %08x  expanded %d  hits %d  domains %d@," h.key_hash
          h.expansions h.hits h.domains)
      t.hot
  end;
  if t.queue_depths <> [] then begin
    Fmt.pf ppf "@,queue depth samples:@,";
    List.iter
      (fun (d, c) -> Fmt.pf ppf "  depth %2d: %d sample%s@," d c
          (if c = 1 then "" else "s"))
      t.queue_depths
  end;
  (match t.decisions with
  | None -> ()
  | Some s ->
      Fmt.pf ppf
        "@,adversary decisions: %d (%d forced), enabled set %d..%d (mean \
         %.1f)@,  chosen: %d step%s, %d deliver%s, %d crash%s@,"
        s.decisions s.forced s.min_enabled s.max_enabled s.mean_enabled s.steps
        (if s.steps = 1 then "" else "s")
        s.delivers
        (if s.delivers = 1 then "y" else "ies")
        s.crashes
        (if s.crashes = 1 then "" else "es"));
  if t.timeline <> [] then begin
    Fmt.pf ppf "@,utilization timeline (%d buckets of %.3fs):@,"
      t.timeline_buckets
      (span_s /. float_of_int t.timeline_buckets);
    List.iter
      (fun (d, fracs) -> Fmt.pf ppf "  domain %-3d |%s|@," d (spark fracs))
      t.timeline
  end;
  Fmt.pf ppf "@]"

let to_json t =
  let domain_json (d : domain_report) =
    Json.Obj
      [
        ("domain", Json.Int d.domain);
        ("events", Json.Int d.events);
        ("dropped", Json.Int d.dropped);
        ("solver_expansions", Json.Int d.solver_misses);
        ("solver_hits", Json.Int d.solver_hits);
        ("claim_hits", Json.Int d.claim_hits);
        ("claim_misses", Json.Int d.claim_misses);
        ("steals", Json.Int d.steals);
        ("pruned", Json.Int d.pruned);
        ("spills", Json.Int d.spills);
        ("spill_bytes", Json.Int d.spill_bytes);
        ("store_cache_hits", Json.Int d.store_cache_hits);
        ("store_cache_misses", Json.Int d.store_cache_misses);
        ("store_evictions", Json.Int d.store_evictions);
        ("alloc_samples", Json.Int d.alloc_samples);
        ("alloc_words", Json.Int d.alloc_words);
        ("hit_rate", Json.Float d.hit_rate);
        ("busy_us", Json.Float d.busy_us);
        ("idle_us", Json.Float d.idle_us);
        ("utilization", Json.Float d.utilization);
      ]
  in
  let hot_json h =
    Json.Obj
      [
        ("key_hash", Json.Int h.key_hash);
        ("expansions", Json.Int h.expansions);
        ("hits", Json.Int h.hits);
        ("domains", Json.Int h.domains);
      ]
  in
  let alloc_json (s : alloc_site) =
    Json.Obj
      [
        ("site_hash", Json.Int s.site_hash);
        ("samples", Json.Int s.samples);
        ("words", Json.Int s.words);
        ("domains", Json.Int s.alloc_domains);
      ]
  in
  Json.Obj
    ([
       ("t0_us", Json.Float t.t0_us);
       ("t1_us", Json.Float t.t1_us);
       ("domains", Json.List (List.map domain_json t.domains));
       ("hot_states", Json.List (List.map hot_json t.hot));
       ("total_expansions", Json.Int t.total_expansions);
       ("distinct_keys", Json.Int t.distinct_keys);
       ("duplicated_keys", Json.Int t.duplicated_keys);
       ("duplicated_work_pct", Json.Float t.duplicated_work_pct);
       ("allocators", Json.List (List.map alloc_json t.allocators));
       ( "queue_depths",
         Json.Obj
           (List.map
              (fun (d, c) -> (string_of_int d, Json.Int c))
              t.queue_depths) );
       ( "timeline",
         Json.Obj
           (List.map
              (fun (d, fracs) ->
                ( string_of_int d,
                  Json.List
                    (Array.to_list (Array.map (fun f -> Json.Float f) fracs)) ))
              t.timeline) );
     ]
    @
    match t.decisions with
    | None -> []
    | Some s ->
        [
          ( "decisions",
            Json.Obj
              [
                ("count", Json.Int s.decisions);
                ("forced", Json.Int s.forced);
                ("min_enabled", Json.Int s.min_enabled);
                ("max_enabled", Json.Int s.max_enabled);
                ("mean_enabled", Json.Float s.mean_enabled);
                ("steps", Json.Int s.steps);
                ("delivers", Json.Int s.delivers);
                ("crashes", Json.Int s.crashes);
              ] );
        ])
