(** Per-domain structured event tracing.

    Each domain that records gets its own fixed-capacity ring buffer
    (created lazily through domain-local storage and registered globally),
    so the record path takes no lock and never contends with other
    domains. An event is three integers — an {!tag} code and two
    tag-specific payload words — plus a wall-clock timestamp on the
    {!Span.now_us} clock, stored into pre-allocated parallel arrays: the
    hot path allocates nothing that survives a minor collection (the
    timestamp read produces one transient boxed float). When the ring
    wraps, the oldest events are overwritten and counted as dropped.

    Recording is globally flag-gated ({!set_enabled}); the disabled path
    is a single atomic load and branch, so permanently-instrumented hot
    loops ({!Mdp.Solver}, {!Par.Pool}, {!Sim.Runtime}) cost nothing when
    tracing is off. Callers whose payload computation is itself non-free
    (hashing a state key) should guard with [if Ring.enabled () then ...].

    {!start_runtime_events} additionally subscribes to the OCaml 5
    runtime's own event stream, so GC phases and domain lifecycle land on
    the same timeline as the application events; {!poll_runtime_events}
    drains them (call it after the traced region, from one domain).

    Dumps ({!dump}, {!to_json}) merge every registered ring plus the
    collected runtime events into one JSON document
    ([{"schema": "blunting-trace/1", ...}]) that {!of_json} reads back —
    the contract between trace capture ([--trace-out]) and the analysis
    toolchain ({!Trace_analysis}, [blunting trace analyze],
    [bench/analyze.exe]). [chrome_events] renders the same dump with one
    Perfetto lane per domain. *)

(** Event tags. Payload conventions ([a], [b]):
    - solver events: [a] = state-key hash, [b] = recursion depth
      ([Solver_expand] is a memo miss — evaluation of a new state begins;
      [Solver_prune] is reserved for the work-stealing solver);
    - pool events: [Pool_task_start]/[stop] bracket one chunk of a
      parallel region ([a] = first index, [b] = one past the last);
      [Pool_idle_start]/[stop] bracket a worker blocking on the queue;
      [Pool_queue_depth] samples the task queue ([a] = depth,
      [b] = participants);
    - simulator events: [a] = process id ([Sim_step], [Sim_crash]) or
      message id ([Sim_deliver]);
    - [Adv_decision]: a scheduler chose from the enabled set
      ([a] = enabled-set size, [b] = index of the chosen event);
    - runtime events: [Gc_minor]/[Gc_major] with [a] = 0 (begin) or 1
      (end); [Domain_spawn]/[Domain_stop] from the runtime's lifecycle
      stream;
    - work-stealing solver events: [Steal] is a successful deque steal
      ([a] = victim worker id, [b] = stolen frontier-leaf index);
      [Claim_hit] is a shared-memo probe that found a resolved value
      ([a] = state-key hash, [b] = depth); [Claim_miss] is a probe that
      found another worker's live claim and entered the helping protocol
      ([a] = the claim's owner worker id, [b] = depth);
    - [Alloc_sample]: a statistical allocation sample from
      {!Obs.Memprof} ([a] = allocation-site hash as in the results
      document's ["allocation_profile"] [site_hash] fields,
      [b] = sampled block size in words);
    - out-of-core memo store events: [Store_spill] is one sorted run
      written to a shard's segment file ([a] = entries written,
      [b] = bytes, header and padding included); [Store_cache_hit]/
      [Store_cache_miss] are block-cache probes ([a] = shard id,
      [b] = block index); [Store_evict] is an unpinned block leaving
      the cache ([a] = shard id, [b] = block index). *)
type tag =
  | Solver_expand
  | Solver_hit
  | Solver_terminal
  | Solver_prune
  | Pool_task_start
  | Pool_task_stop
  | Pool_idle_start
  | Pool_idle_stop
  | Pool_queue_depth
  | Sim_step
  | Sim_deliver
  | Sim_crash
  | Adv_decision
  | Gc_minor
  | Gc_major
  | Domain_spawn
  | Domain_stop
  | Steal
  | Claim_hit
  | Claim_miss
  | Alloc_sample
  | Store_spill
  | Store_cache_hit
  | Store_cache_miss
  | Store_evict

(** Stable wire codes for dump files: [tag_code] is injective and
    [tag_of_code (tag_code t) = Some t]. *)
val tag_code : tag -> int

val tag_of_code : int -> tag option

(** [tag_name t] is the snake_case name used in dump [tag_names] and
    reports (e.g. ["solver_hit"]). *)
val tag_name : tag -> string

(** {1 Recording} *)

(** [enabled ()] is the global recording flag (default off). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [set_capacity n] sizes rings created {e after} the call (rounded up to
    a power of two, minimum 1024; default 65536 events/domain). Existing
    rings keep their size. *)
val set_capacity : int -> unit

(** [record tag a b] appends an event to the calling domain's ring; a
    no-op (one atomic load) when disabled. Solver memo-probe tags
    ([Solver_expand]/[Solver_hit]/[Solver_terminal]/[Claim_hit]/
    [Claim_miss]/[Store_cache_hit]/[Store_cache_miss]) reuse a cached
    timestamp refreshed at least every 64 events — they fire millions of
    times per solve and the clock read dominates the record cost; all
    other tags (interval and decision events) always read the clock.
    Timestamps stay non-decreasing within a ring either way. *)
val record : tag -> int -> int -> unit

(** [reset ()] discards every ring, all collected runtime events and the
    drop counts; recording state and capacity are kept. *)
val reset : unit -> unit

(** {1 Runtime events} *)

(** [start_runtime_events ()] starts the OCaml runtime's event stream and
    opens a cursor on it; [Error] if the runtime refuses (already started
    with a consumer, unsupported platform). Safe to call once per
    process. *)
val start_runtime_events : unit -> (unit, string) result

(** [poll_runtime_events ()] drains pending runtime events (GC phase
    begin/end, domain spawn/terminate) into the trace; returns how many
    were consumed, 0 when the stream was never started. Timestamps are
    mapped onto the {!Span.now_us} clock with an offset taken at the
    first poll — alignment is approximate (sub-millisecond), good enough
    for lane rendering. *)
val poll_runtime_events : unit -> int

(** {1 Dumping} *)

type event = { tag : tag; a : int; b : int; ts_us : float }

type domain_dump = {
  domain : int;  (** the recording domain's id *)
  recorded : int;  (** events ever recorded (>= retained) *)
  dropped : int;  (** overwritten by ring wrap-around *)
  events : event list;  (** retained events, oldest first *)
}

type dump = {
  capacity : int;
  domains : domain_dump list;  (** sorted by domain id *)
  runtime : domain_dump list;  (** runtime-event lanes, by runtime ring id *)
}

(** [dump ()] snapshots every registered ring. Call it after parallel
    regions have joined (the pool's shutdown provides the needed
    happens-before); a dump taken while another domain records may see a
    torn tail. *)
val dump : unit -> dump

val to_json : dump -> Json.t

(** [of_json j] parses a dump document; [Error] names the first offending
    field. Unknown tag codes are dropped (forward compatibility). *)
val of_json : Json.t -> (dump, string) result

val write_file : string -> dump -> unit
val load_file : string -> (dump, string) result

(** [chrome_events d] renders the dump as Chrome trace events: pid 0 with
    one named lane per recording domain (task/idle slices, queue-depth
    counters, instants for solver/simulator events), pid 1 with one lane
    per runtime-event ring (GC slices, lifecycle instants). *)
val chrome_events : dump -> Chrome_trace.event list
