(** A process-wide metrics registry: counters, gauges and histograms.

    Instrumentation points across the simulator, the solver, the
    linearizability checker and the Monte-Carlo harness register named
    metrics here; the bench harness and the CLI snapshot the registry into
    JSON (a stable, versioned shape consumed by [BENCH_*.json] files) or a
    pretty table. Creation is idempotent by name — calling [counter "x"]
    twice returns the same counter — so libraries can declare their
    instruments at module-initialization time without coordination.

    The registry is global mutable state by design (instrumentation must
    not thread a handle through every API); [reset] zeroes all values for
    tests and for per-run reporting. *)

type counter
type gauge
type histogram

(** {1 Counters} — monotonically increasing integer values. *)

(** [counter ?help name] registers (or retrieves) the counter [name].
    Raises [Invalid_argument] if [name] is already a gauge or histogram. *)
val counter : ?help:string -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-written float values. *)

val gauge : ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit

(** [max_gauge g v] sets [g] to [max v (current value)] — for high-water
    marks such as recursion depth. *)
val max_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} — distribution of observed values over fixed buckets. *)

(** [histogram ?buckets ?help name]: [buckets] is the increasing list of
    upper bounds (an implicit [+inf] bucket is always appended). The
    default covers 1e-6 .. 1e7 in a 1–2–5 progression, adequate both for
    wall-clock seconds and for step counts. *)
val histogram : ?buckets:float list -> ?help:string -> string -> histogram

val observe : histogram -> float -> unit

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  p50 : float;  (** [nan] when empty *)
  p90 : float;  (** [nan] when empty *)
  p99 : float;  (** [nan] when empty *)
  buckets : (float * int) list;  (** (upper bound, cumulative count) *)
}

val histogram_summary : histogram -> histogram_summary

(** [percentile h q] estimates the [q]-quantile ([0 <= q <= 1]) by linear
    interpolation inside the bucket holding rank [q * count], clamped to
    the observed min/max; [nan] when the histogram is empty. *)
val percentile : histogram -> float -> float

(** {1 Registry-wide operations} *)

(** [find_counter name] reads a counter registered elsewhere (e.g. a test
    peeking at [sim.steps]); [None] if absent or not a counter. *)
val find_counter : string -> int option

(** [counters ()] lists every registered counter with its current value,
    sorted by name — the basis for per-phase counter deltas. *)
val counters : unit -> (string * int) list

(** [snapshot ()] is the whole registry as JSON:
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}], keys sorted. *)
val snapshot : unit -> Json.t

(** [reset ()] zeroes every registered metric (registrations persist). *)
val reset : unit -> unit

(** [pp ppf ()] renders the registry as an aligned text table. *)
val pp : Format.formatter -> unit -> unit
