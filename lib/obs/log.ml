let verbosity_values = [ "quiet"; "app"; "error"; "warn"; "info"; "debug" ]

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "none" | "off" -> Ok None
  | "app" -> Ok (Some Logs.App)
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | _ ->
      Error
        (Printf.sprintf "unknown verbosity %S (expected one of: %s)" s
           (String.concat ", " verbosity_values))

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags:_ fmt ->
    let src_name = Logs.Src.name src in
    let hdr = match header with None -> "" | Some h -> h ^ " " in
    Format.kfprintf k Format.err_formatter
      ("%s[%a] %s: @[" ^^ fmt ^^ "@]@.")
      hdr Logs.pp_level level src_name
  in
  { Logs.report }

let setup level =
  Logs.set_reporter (reporter ());
  Logs.set_level ~all:true level

let set_verbosity s =
  match level_of_string s with
  | Ok level ->
      setup level;
      Ok ()
  | Error _ as e -> e
