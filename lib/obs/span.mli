(** Wall-clock spans for timing experiment phases.

    [time "solve k=2" f] runs [f], records a named span, and returns the
    result with its duration. Completed spans accumulate in a global log
    (like {!Metrics}, deliberately ambient) that exports to Chrome-trace
    events so a whole bench run can be opened in Perfetto alongside a
    simulator trace. The clock is [Unix.gettimeofday] — the only portable
    sub-millisecond clock available without extra dependencies; bench runs
    are far longer than any plausible NTP slew, and spans are never
    compared across processes. *)

type span = {
  name : string;
  start_us : float;  (** microseconds since the first span *)
  dur_us : float;
  gc : Gc_stats.delta;  (** GC work inside the span *)
}

(** [now_us ()] is the current clock reading in microseconds, relative to
    the module's load time (so Chrome-trace timestamps start near 0). *)
val now_us : unit -> float

(** [time ?observe name f] runs [f ()], records the span (wall clock plus
    the {!Gc_stats} delta across [f]), and returns [(result, seconds)].
    When [observe] is given, the duration in seconds is also fed to that
    histogram. Exceptions propagate; the span is recorded only on normal
    return. *)
val time : ?observe:Metrics.histogram -> string -> (unit -> 'a) -> 'a * float

(** [current ()] is the name of the innermost span currently inside
    {!time} (the enclosing bench section), if any. Readable from any
    domain; {!Memprof} uses it to attribute allocation samples to the
    section in flight. *)
val current : unit -> string option

(** [spans ()] lists completed spans in completion order. *)
val spans : unit -> span list

(** [chrome_events ?pid ?tid ()] renders the span log as complete slices. *)
val chrome_events : ?pid:int -> ?tid:int -> unit -> Chrome_trace.event list

val reset : unit -> unit
