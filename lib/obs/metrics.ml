type hist = {
  bounds : float array;  (* increasing upper bounds, +inf excluded *)
  counts : int array;  (* length bounds + 1; last = overflow bucket *)
  mutable sum : float;
  mutable count : int;
  mutable vmin : float;
  mutable vmax : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Hist of hist

type counter = int ref
type gauge = float ref
type histogram = hist

type entry = { metric : metric; help : string }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let counter ?(help = "") name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Counter c; _ } -> c
  | Some { metric; _ } ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name
           (kind_name metric))
  | None ->
      let c = ref 0 in
      Hashtbl.replace registry name { metric = Counter c; help };
      c

let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c

let gauge ?(help = "") name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Gauge g; _ } -> g
  | Some { metric; _ } ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name
           (kind_name metric))
  | None ->
      let g = ref 0.0 in
      Hashtbl.replace registry name { metric = Gauge g; help };
      g

let set_gauge g v = g := v
let max_gauge g v = if v > !g then g := v
let gauge_value g = !g

let default_buckets =
  (* a 1-2-5 progression spanning microseconds to ~10M steps *)
  let rec go acc m =
    if m > 1e7 then List.rev acc else go ((5.0 *. m) :: (2.0 *. m) :: m :: acc) (m *. 10.0)
  in
  go [] 1e-6

let histogram ?(buckets = default_buckets) ?(help = "") name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Hist h; _ } -> h
  | Some { metric; _ } ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name
           (kind_name metric))
  | None ->
      let bounds = Array.of_list buckets in
      Array.sort Float.compare bounds;
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.0;
          count = 0;
          vmin = Float.nan;
          vmax = Float.nan;
        }
      in
      Hashtbl.replace registry name { metric = Hist h; help };
      h

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  if Float.is_nan h.vmin || v < h.vmin then h.vmin <- v;
  if Float.is_nan h.vmax || v > h.vmax then h.vmax <- v

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
}

(* Prometheus-style interpolation: walk the per-bucket counts to the bucket
   holding rank [q * count], then interpolate linearly inside it. Bucket
   edges are the configured bounds, tightened by the observed min/max (the
   first bucket has no lower bound, the overflow bucket no upper one). *)
let percentile (h : hist) q =
  if h.count = 0 then Float.nan
  else if h.count = 1 then
    (* every percentile of a single observation is that observation; skip
       the bucket interpolation, which would otherwise only land here via
       the closing min/max clamp *)
    h.vmin
  else begin
    let target = q *. float_of_int h.count in
    let nbuckets = Array.length h.counts in
    let rec find i below =
      let upto = below + h.counts.(i) in
      if float_of_int upto >= target || i = nbuckets - 1 then (i, below, upto)
      else find (i + 1) upto
    in
    let i, below, upto = find 0 0 in
    let lo = if i = 0 then h.vmin else Float.max h.bounds.(i - 1) h.vmin in
    let hi = if i < Array.length h.bounds then Float.min h.bounds.(i) h.vmax else h.vmax in
    let v =
      if upto = below || hi <= lo then hi
      else
        lo
        +. (hi -. lo)
           *. ((target -. float_of_int below) /. float_of_int (upto - below))
    in
    Float.min (Float.max v h.vmin) h.vmax
  end

let histogram_summary h =
  (* only non-empty buckets are reported: (upper bound, cumulative count)
     pairs where the cumulative count increased *)
  let cumulative = ref 0 in
  let buckets = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        cumulative := !cumulative + c;
        let le =
          if i < Array.length h.bounds then h.bounds.(i) else Float.infinity
        in
        buckets := (le, !cumulative) :: !buckets
      end)
    h.counts;
  {
    count = h.count;
    sum = h.sum;
    min = h.vmin;
    max = h.vmax;
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
    buckets = List.rev !buckets;
  }

let find_counter name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Counter c; _ } -> Some !c
  | _ -> None

let sorted_entries () =
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.filter_map
    (function name, { metric = Counter c; _ } -> Some (name, !c) | _ -> None)
    (sorted_entries ())

let snapshot () =
  let entries = sorted_entries () in
  let counters =
    List.filter_map
      (function name, { metric = Counter c; _ } -> Some (name, Json.Int !c) | _ -> None)
      entries
  in
  let gauges =
    List.filter_map
      (function
        | name, { metric = Gauge g; _ } -> Some (name, Json.Float !g) | _ -> None)
      entries
  in
  let histograms =
    List.filter_map
      (function
        | name, { metric = Hist h; _ } ->
            let s = histogram_summary h in
            let num v = if s.count = 0 then Json.Null else Json.Float v in
            Some
              ( name,
                Json.Obj
                  [
                    ("count", Json.Int s.count);
                    ("sum", Json.Float s.sum);
                    ("min", num s.min);
                    ("max", num s.max);
                    ("p50", num s.p50);
                    ("p90", num s.p90);
                    ("p99", num s.p99);
                    ( "buckets",
                      Json.List
                        (List.map
                           (fun (le, c) ->
                             Json.Obj
                               [
                                 ( "le",
                                   if Float.is_finite le then Json.Float le
                                   else Json.String "+inf" );
                                 ("count", Json.Int c);
                               ])
                           s.buckets) );
                  ] )
        | _ -> None)
      entries
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let reset () =
  Hashtbl.iter
    (fun _ { metric; _ } ->
      match metric with
      | Counter c -> c := 0
      | Gauge g -> g := 0.0
      | Hist h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.0;
          h.count <- 0;
          h.vmin <- Float.nan;
          h.vmax <- Float.nan)
    registry

let pp ppf () =
  let entries = sorted_entries () in
  let width =
    List.fold_left (fun acc (n, _) -> Stdlib.max acc (String.length n)) 0 entries
  in
  let pad n = n ^ String.make (width - String.length n) ' ' in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (name, { metric; _ }) ->
      match metric with
      | Counter c -> Fmt.pf ppf "%s  %d@," (pad name) !c
      | Gauge g -> Fmt.pf ppf "%s  %g@," (pad name) !g
      | Hist h ->
          if h.count = 0 then Fmt.pf ppf "%s  (no observations)@," (pad name)
          else
            Fmt.pf ppf
              "%s  count=%d sum=%g min=%g max=%g mean=%g p50=%g p90=%g p99=%g@,"
              (pad name) h.count h.sum h.vmin h.vmax
              (h.sum /. float_of_int h.count)
              (percentile h 0.50) (percentile h 0.90) (percentile h 0.99))
    entries;
  Fmt.pf ppf "@]"
