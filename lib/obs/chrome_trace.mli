(** The Chrome trace-event JSON format ([chrome://tracing] / Perfetto).

    A neutral event model: producers (the simulator's trace exporter, the
    {!Span} phase timer) build [event] values; [to_json] renders the
    standard [{"traceEvents": [...]}] document that Perfetto and Chrome's
    legacy viewer load directly. Only the phases this repo emits are
    modelled: complete slices ([X]), begin/end pairs ([B]/[E]), instants
    ([I]), counters ([C]) and metadata ([M], used to name process/thread
    lanes). Timestamps are in microseconds, per the format. *)

type phase =
  | Begin  (** "B" — opens a nested slice on a lane *)
  | End  (** "E" — closes the innermost open slice *)
  | Complete of float  (** "X" with the given duration (µs) *)
  | Instant  (** "i" — a zero-duration marker (thread scope) *)
  | Counter  (** "C" — [args] hold the sampled series values *)
  | Metadata  (** "M" — e.g. [process_name] / [thread_name] *)

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;  (** microseconds *)
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

val event :
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  name:string ->
  ts:float ->
  phase ->
  event

(** [thread_name ~pid ~tid name] is the metadata event labelling a lane. *)
val thread_name : pid:int -> tid:int -> string -> event

val process_name : pid:int -> string -> event

(** [to_json events] is the loadable trace document. *)
val to_json : event list -> Json.t

val write_file : string -> event list -> unit

(** [of_json j] parses a document produced by [to_json] back into its
    event list (order preserved) — the round-trip the test suite asserts,
    and the entry point for tooling that post-processes exported traces.
    Unknown phases are an [Error], not a silent drop. *)
val of_json : Json.t -> (event list, string) result
