(* Selected by the dune rules in this directory on OCaml < 5.3, where
   [Gc.Memprof] is either absent or raises at runtime under multicore
   ("not implemented in multicore" on 5.1/5.2). Keeps [Obs.Memprof]
   linkable on every compiler in the CI matrix; [start] reports the
   unsupported configuration so callers can exit gracefully. *)

let supported = false

let start ~sampling_rate:(_ : float) ~callstack_size:(_ : int)
    ~on_sample:
      (_ :
        minor:bool ->
        n_samples:int ->
        size:int ->
        callstack:Printexc.raw_backtrace ->
        unit) : (unit, string) result =
  Error
    "allocation profiling needs OCaml >= 5.3 (Gc.Memprof is not implemented \
     under multicore on 5.1/5.2)"

let stop () = ()
