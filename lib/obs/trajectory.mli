(** The bench trajectory, made inspectable.

    Each bench run can land a [BENCH_*.json] results document at the repo
    root; this module scans them into per-section time-series tables —
    measured row values, numeric section metrics (solver states, wall
    times, GC words), a derived states/sec wherever a
    [states_kN]/[solve_seconds_kN] pair exists, and a derived
    [gc.minor_words_per_step] wherever a section carries both
    [gc.minor_words] and [counters.sim.steps] (the zero-alloc roadmap
    item's trendline) — one column per trajectory point, rendered as
    aligned text or markdown. *)

type point = { label : string; path : string; doc : Json.t }

(** [of_json ~label ?path doc] validates [doc] ({!Results.validate}; v1 and
    v2 both accepted) and wraps it as a trajectory point. *)
val of_json : label:string -> ?path:string -> Json.t -> (point, string) result

(** [load path] reads one document; the label is the filename without the
    [BENCH_] prefix and extension (typically the date). *)
val load : string -> (point, string) result

(** [scan ~dir] loads every [BENCH_*.json] in [dir], sorted by filename
    (dates sort chronologically). Any unreadable or invalid file is an
    error — a corrupt trajectory point should be noticed, not skipped. *)
val scan : dir:string -> (point list, string) result

type table = {
  section_id : string;
  title : string;
  columns : string list;  (** point labels, in trajectory order *)
  rows : (string * float option list) list;
      (** series key, one value per column; [None] where a point lacks it *)
}

(** [tables ?section points] builds one table per experiment section (in
    first-seen order across points), or only the named section. *)
val tables : ?section:string -> point list -> table list

val pp_text : Format.formatter -> table -> unit
val pp_markdown : Format.formatter -> table -> unit
