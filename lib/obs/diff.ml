type severity = Info | Warn | Fail

let severity_label = function Info -> "info" | Warn -> "WARN" | Fail -> "FAIL"
let severity_rank = function Fail -> 0 | Warn -> 1 | Info -> 2

type finding = {
  severity : severity;
  section : string option;
  subject : string;
  detail : string;
}

type config = {
  paper_tol : float;
  value_rtol : float;
  time_rtol : float;
  compare_spans : bool;
  min_speedup : float option;
  max_alloc_ratio : float option;
}

let default_config =
  {
    (* paper-vs-measured agreement is exact on this repo's deterministic
       experiments; 1e-6 absorbs only float printing noise *)
    paper_tol = 1e-6;
    value_rtol = 1e-9;
    (* wall-clock and GC figures legitimately move with machine load *)
    time_rtol = 0.5;
    compare_spans = true;
    min_speedup = None;
    max_alloc_ratio = None;
  }

type report = {
  findings : finding list;
  sections_compared : int;
  rows_compared : int;
  metrics_compared : int;
  spans_compared : int;
}

let failures r = List.filter (fun f -> f.severity = Fail) r.findings
let exit_code r = if failures r = [] then 0 else 1

(* ---- helpers --------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Resource and timing figures drift with the machine, not the algorithm:
   flag them softly and generously. Everything else in a results document
   is deterministic (seeded RNGs, exact game values) and diffs tightly. *)
let is_soft_key k =
  let k = String.lowercase_ascii k in
  let has needle =
    let nl = String.length needle and kl = String.length k in
    let rec go i = i + nl <= kl && (String.sub k i nl = needle || go (i + 1)) in
    go 0
  in
  has "second" || has "time" || has "latency" || has "duration" || has "gc."
  || has "_ns" || has "ns)" || has "words" || has "heap" || has "collection"
  || has "hit_rate" || has "states/s"
  (* schema-v3/v4 parallel telemetry: per-domain splits, duplicate-key
     figures and the steal/claim/helping counters depend on how the
     scheduler interleaved the worker domains, not on the algorithm
     ("jobs" itself stays a hard key); prune counts move with the
     evaluation order too *)
  || has "domain" || has "duplicat" || has "queue" || has "par_solve"
  || has "utilization" || has "speedup" || has "steal" || has "claim"
  || has "prune"
  (* out-of-core store telemetry: run/eviction/cache-traffic counts move
     with the budget and, under jobs > 1, with the worker schedule; the
     solved values and distinct-state counts stay hard keys *)
  || has "spill" || has "evict" || has "amplification" || has "disk_hit"
  || has "cache" || has "budget"

let rel_drift ~from ~to_ =
  if from = to_ then 0.0
  else abs_float (to_ -. from) /. Float.max (abs_float from) 1e-12

let pp_num ppf v =
  if Float.is_integer v && abs_float v < 1e15 then Fmt.pf ppf "%.0f" v
  else Fmt.pf ppf "%.6g" v

let number j = Json.to_number_opt j

let sections_of doc =
  match Json.member "experiments" doc with
  | Some (Json.List l) ->
      List.filter_map
        (fun s ->
          match Option.bind (Json.member "id" s) Json.to_string_opt with
          | Some id -> Some (id, s)
          | None -> None)
        l
  | _ -> []

let rows_of section =
  match Json.member "rows" section with
  | Some (Json.List l) ->
      List.filter_map
        (fun r ->
          match Option.bind (Json.member "quantity" r) Json.to_string_opt with
          | Some q -> Some (q, r)
          | None -> None)
        l
  | _ -> []

(* Section metrics, flattened one level so nested "gc"/"counters" objects
   compare per leaf ("gc.minor_words", "counters.sim.steps", ...). *)
let metrics_of section =
  match Json.member "metrics" section with
  | Some (Json.Obj kvs) ->
      List.concat_map
        (fun (k, v) ->
          match v with
          | Json.Obj sub ->
              List.filter_map
                (fun (k', v') ->
                  Option.map (fun n -> (k ^ "." ^ k', n)) (number v'))
                sub
          | v -> (
              match number v with Some n -> [ (k, n) ] | None -> []))
        kvs
  | _ -> []

(* Spans aggregated by name: (count, total seconds). Individual spans are
   not comparable across runs (names repeat per solve), totals are. *)
let spans_of doc =
  match Json.member "spans" doc with
  | Some (Json.List l) ->
      let tbl = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun s ->
          match
            ( Option.bind (Json.member "name" s) Json.to_string_opt,
              Option.bind (Json.member "dur_us" s) number )
          with
          | Some name, Some dur ->
              (match Hashtbl.find_opt tbl name with
              | None ->
                  order := name :: !order;
                  Hashtbl.replace tbl name (1, dur /. 1e6)
              | Some (n, total) -> Hashtbl.replace tbl name (n + 1, total +. (dur /. 1e6)))
          | _ -> ())
        l;
      List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  | _ -> []

(* ---- the comparison -------------------------------------------------- *)

let paper_findings cfg ~section_id rows =
  List.filter_map
    (fun (quantity, r) ->
      match
        ( Option.bind (Json.member "paper_value" r) number,
          Option.bind (Json.member "measured_value" r) number )
      with
      | Some pv, Some mv
        when Float.is_finite pv && Float.is_finite mv
             && abs_float (mv -. pv) > cfg.paper_tol ->
          Some
            {
              severity = Fail;
              section = Some section_id;
              subject = quantity;
              detail =
                Fmt.str "measured %a drifted from paper %a (|Δ| = %.3g > tol %.3g)"
                  pp_num mv pp_num pv
                  (abs_float (mv -. pv))
                  cfg.paper_tol;
            }
      | _ -> None)
    rows

let drift_finding cfg ~section ~subject ~from ~to_ =
  let soft = is_soft_key subject in
  let tol = if soft then cfg.time_rtol else cfg.value_rtol in
  let d = rel_drift ~from ~to_ in
  if d > tol then
    Some
      {
        severity = (if soft then Warn else Fail);
        section;
        subject;
        detail =
          Fmt.str "%a -> %a (drift %.2f%% > %s tolerance %.2f%%)" pp_num from
            pp_num to_ (100.0 *. d)
            (if soft then "soft" else "hard")
            (100.0 *. tol);
      }
  else None

let compare_rows cfg ~section_id base cur =
  let compared = ref 0 in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  List.iter
    (fun (quantity, brow) ->
      match List.assoc_opt quantity cur with
      | None ->
          emit
            {
              severity = Warn;
              section = Some section_id;
              subject = quantity;
              detail = "row present in baseline but missing in current run";
            }
      | Some crow -> (
          incr compared;
          match
            ( Option.bind (Json.member "measured_value" brow) number,
              Option.bind (Json.member "measured_value" crow) number )
          with
          | Some from, Some to_ when Float.is_finite from && Float.is_finite to_
            -> (
              match
                drift_finding cfg ~section:(Some section_id) ~subject:quantity
                  ~from ~to_
              with
              | Some f -> emit f
              | None -> ())
          | _ -> ()))
    base;
  List.iter
    (fun (quantity, _) ->
      if not (List.mem_assoc quantity base) then
        emit
          {
            severity = Info;
            section = Some section_id;
            subject = quantity;
            detail = "new row, absent from baseline";
          })
    cur;
  (!compared, List.rev !findings)

let compare_metrics cfg ~section_id base cur =
  let compared = ref 0 in
  let findings =
    List.filter_map
      (fun (key, from) ->
        match List.assoc_opt key cur with
        | Some to_ when Float.is_finite from && Float.is_finite to_ ->
            incr compared;
            drift_finding cfg ~section:(Some section_id) ~subject:("metrics." ^ key)
              ~from ~to_
        | _ -> None)
      base
  in
  (!compared, findings)

let compare_spans cfg base cur =
  let base = spans_of base and cur = spans_of cur in
  let compared = ref 0 in
  let findings =
    List.filter_map
      (fun (name, (_, from)) ->
        match List.assoc_opt name cur with
        | None ->
            Some
              {
                severity = Info;
                section = None;
                subject = "span " ^ name;
                detail = "present in baseline, absent in current run";
              }
        | Some (_, to_) ->
            incr compared;
            if rel_drift ~from ~to_ > cfg.time_rtol then
              Some
                {
                  severity = Warn;
                  section = None;
                  subject = "span " ^ name;
                  detail =
                    Fmt.str "total %.3fs -> %.3fs (drift %.0f%% > %.0f%%)" from
                      to_
                      (100.0 *. rel_drift ~from ~to_)
                      (100.0 *. cfg.time_rtol);
                }
            else None)
      base
  in
  (!compared, findings)

(* The --min-speedup gate judges only the CURRENT document: parallel wall
   time is machine-bound so baselines have nothing to add, and the check
   must fail loudly (not soften to a Warn) when the PAR section or its
   timing metrics are missing — a gated CI leg that silently skipped
   would defeat its purpose. *)
let speedup_findings cfg csec =
  match cfg.min_speedup with
  | None -> []
  | Some floor ->
      let fail detail =
        [ { severity = Fail; section = Some "PAR"; subject = "solve_speedup"; detail } ]
      in
      (match List.assoc_opt "PAR" csec with
      | None -> fail "min-speedup check requested but current run has no PAR section"
      | Some s -> (
          let metrics = metrics_of s in
          match
            ( List.assoc_opt "solve_seq_seconds" metrics,
              List.assoc_opt "solve_par_seconds" metrics )
          with
          | Some seq, Some par when Float.is_finite seq && Float.is_finite par && par > 0.0 ->
              let speedup = seq /. par in
              if speedup < floor then
                fail
                  (Fmt.str
                     "parallel solve %.3fs vs sequential %.3fs: %.2fx < required %.2fx"
                     par seq speedup floor)
              else
                [
                  {
                    severity = Info;
                    section = Some "PAR";
                    subject = "solve_speedup";
                    detail =
                      Fmt.str "%.2fx (seq %.3fs / par %.3fs) >= required %.2fx"
                        speedup seq par floor;
                  };
                ]
          | _ ->
              fail
                "min-speedup check requested but PAR metrics lack \
                 solve_seq_seconds/solve_par_seconds"))

(* The --max-alloc-ratio gate compares allocation pressure section by
   section against the BASELINE: minor words normalized per simulator
   step when the section counted steps (so trial-count changes don't
   masquerade as allocation changes — the same normalization the
   trajectory's derived gc.minor_words_per_step series uses), raw minor
   words otherwise. Allocation counts are deterministic per workload on
   a given compiler, unlike wall time, so a hard gate is sound here.
   Like --min-speedup, the check fails loudly when it finds nothing to
   compare: a gated CI leg that silently skipped would defeat its
   purpose. Sections present only in the CURRENT document (added after
   the baseline was recorded, like a new store section) get a Warn, not
   a Fail — there is nothing to compare them against, and they count as
   the gate having engaged, so they don't trip the nothing-compared
   failure either. *)
let alloc_findings cfg bsec csec =
  match cfg.max_alloc_ratio with
  | None -> []
  | Some ceiling ->
      let words_per_unit s =
        let metrics = metrics_of s in
        match List.assoc_opt "gc.minor_words" metrics with
        | Some words when Float.is_finite words -> (
            match List.assoc_opt "counters.sim.steps" metrics with
            | Some steps when steps > 0.0 -> Some (words /. steps, "minor words/step")
            | _ -> Some (words, "minor words"))
        | _ -> None
      in
      let compared = ref 0 in
      let findings =
        List.filter_map
          (fun (id, bs) ->
            match Option.bind (List.assoc_opt id csec) words_per_unit with
            | None -> None
            | Some (to_, unit_) -> (
                match words_per_unit bs with
                | None -> None
                | Some (from, _) when from > 0.0 ->
                    incr compared;
                    let ratio = to_ /. from in
                    if ratio > ceiling then
                      Some
                        {
                          severity = Fail;
                          section = Some id;
                          subject = "alloc_ratio";
                          detail =
                            Fmt.str
                              "%s %a -> %a: %.2fx baseline > allowed %.2fx"
                              unit_ pp_num from pp_num to_ ratio ceiling;
                        }
                    else
                      Some
                        {
                          severity = Info;
                          section = Some id;
                          subject = "alloc_ratio";
                          detail =
                            Fmt.str "%s %a -> %a (%.2fx <= %.2fx)" unit_
                              pp_num from pp_num to_ ratio ceiling;
                        }
                | Some _ ->
                    (* zero-allocation baseline: any current allocation is
                       a regression past every finite ratio *)
                    incr compared;
                    if to_ > 0.0 then
                      Some
                        {
                          severity = Fail;
                          section = Some id;
                          subject = "alloc_ratio";
                          detail =
                            Fmt.str
                              "baseline allocated nothing, current %s %a"
                              unit_ pp_num to_;
                        }
                    else None))
          bsec
      in
      let new_section_findings =
        List.filter_map
          (fun (id, cs) ->
            if List.mem_assoc id bsec then None
            else
              match words_per_unit cs with
              | None -> None
              | Some (to_, unit_) ->
                  Some
                    {
                      severity = Warn;
                      section = Some id;
                      subject = "alloc_ratio";
                      detail =
                        Fmt.str
                          "section absent from baseline — %s %a not gated \
                           (re-record the baseline to cover it)"
                          unit_ pp_num to_;
                    })
          csec
      in
      if !compared = 0 && new_section_findings = [] then
        [
          {
            severity = Fail;
            section = None;
            subject = "alloc_ratio";
            detail =
              "max-alloc-ratio check requested but no section carries \
               gc.minor_words in both documents";
          };
        ]
      else findings @ new_section_findings

(* Per-row speedup surfacing, always on: every "*_speedup_timing" metric
   in the CURRENT document's PAR section lands in the human summary —
   Info at >= 1.0x, a soft Warn below it (a parallel row silently slower
   than sequential, like the 0.19x ABD^2 solve the 2026-08-08-par4
   baseline carried). Never a Fail: the hard floor stays opt-in via
   --min-speedup above. *)
let speedup_suffix = "_speedup_timing"

let par_row_findings csec =
  match List.assoc_opt "PAR" csec with
  | None -> []
  | Some s ->
      List.filter_map
        (fun (k, v) ->
          let klen = String.length k and slen = String.length speedup_suffix in
          if klen > slen && String.sub k (klen - slen) slen = speedup_suffix
          then
            let row = String.sub k 0 (klen - slen) in
            if not (Float.is_finite v) then None
            else if v < 1.0 then
              Some
                {
                  severity = Warn;
                  section = Some "PAR";
                  subject = "speedup " ^ row;
                  detail =
                    Fmt.str "%.2fx — parallel %s row slower than sequential" v
                      row;
                }
            else
              Some
                {
                  severity = Info;
                  section = Some "PAR";
                  subject = "speedup " ^ row;
                  detail = Fmt.str "%.2fx" v;
                }
          else None)
        (metrics_of s)

let schema_note baseline current =
  let version doc =
    Option.bind (Json.member "schema_version" doc) Json.to_int_opt
  in
  match (version baseline, version current) with
  | Some a, Some b when a <> b ->
      [
        {
          severity = Info;
          section = None;
          subject = "schema_version";
          detail = Fmt.str "baseline v%d vs current v%d (both accepted)" a b;
        };
      ]
  | _ -> []

let diff ?(config = default_config) ~baseline ~current () =
  let* () =
    Result.map_error (fun e -> "baseline: " ^ e) (Results.validate baseline)
  in
  let* () =
    Result.map_error (fun e -> "current: " ^ e) (Results.validate current)
  in
  let bsec = sections_of baseline and csec = sections_of current in
  let findings = ref (schema_note baseline current) in
  let add fs = findings := !findings @ fs in
  let sections = ref 0 and rows = ref 0 and metrics = ref 0 in
  (* the current document's own paper-vs-measured agreement: the hard gate *)
  List.iter
    (fun (id, s) -> add (paper_findings config ~section_id:id (rows_of s)))
    csec;
  add (speedup_findings config csec);
  add (alloc_findings config bsec csec);
  add (par_row_findings csec);
  List.iter
    (fun (id, bs) ->
      match List.assoc_opt id csec with
      | None ->
          add
            [
              {
                severity = Warn;
                section = Some id;
                subject = "section";
                detail = "present in baseline, missing in current run (skipped)";
              };
            ]
      | Some cs ->
          incr sections;
          let n, fs = compare_rows config ~section_id:id (rows_of bs) (rows_of cs) in
          rows := !rows + n;
          add fs;
          let n, fs =
            compare_metrics config ~section_id:id (metrics_of bs) (metrics_of cs)
          in
          metrics := !metrics + n;
          add fs)
    bsec;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id bsec) then
        add
          [
            {
              severity = Info;
              section = Some id;
              subject = "section";
              detail = "new section, absent from baseline";
            };
          ])
    csec;
  let spans_compared, span_findings =
    if config.compare_spans then compare_spans config baseline current else (0, [])
  in
  add span_findings;
  Ok
    {
      findings =
        List.stable_sort
          (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
          !findings;
      sections_compared = !sections;
      rows_compared = !rows;
      metrics_compared = !metrics;
      spans_compared;
    }

(* ---- rendering ------------------------------------------------------- *)

let pp_report ppf r =
  let count sev = List.length (List.filter (fun f -> f.severity = sev) r.findings) in
  Fmt.pf ppf
    "compared %d sections (%d rows, %d metrics, %d span groups): %d fail, %d \
     warn, %d info@,"
    r.sections_compared r.rows_compared r.metrics_compared r.spans_compared
    (count Fail) (count Warn) (count Info);
  if r.findings <> [] then begin
    let w_sev = 4 in
    let w_sec =
      List.fold_left
        (fun acc f ->
          max acc (String.length (Option.value ~default:"-" f.section)))
        3 r.findings
    in
    let w_sub =
      List.fold_left (fun acc f -> max acc (String.length f.subject)) 7 r.findings
    in
    let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
    Fmt.pf ppf "%s  %s  %s  %s@," (pad w_sev "sev") (pad w_sec "sec")
      (pad w_sub "subject") "detail";
    Fmt.pf ppf "%s  %s  %s  %s@,"
      (String.make w_sev '-') (String.make w_sec '-') (String.make w_sub '-')
      "------";
    List.iter
      (fun f ->
        Fmt.pf ppf "%s  %s  %s  %s@,"
          (pad w_sev (severity_label f.severity))
          (pad w_sec (Option.value ~default:"-" f.section))
          (pad w_sub f.subject) f.detail)
      r.findings
  end;
  if failures r = [] then Fmt.pf ppf "OK — no hard regressions"
  else Fmt.pf ppf "REGRESSION — %d hard failure(s)" (List.length (failures r))

(* ---- file plumbing --------------------------------------------------- *)

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      Result.map_error (fun e -> path ^ ": " ^ e) (Json.of_string contents)

let run_files ?config ~baseline ~current ppf =
  match load_file baseline with
  | Error e -> Error e
  | Ok b -> (
      match load_file current with
      | Error e -> Error e
      | Ok c -> (
          match diff ?config ~baseline:b ~current:c () with
          | Error e -> Error e
          | Ok report ->
              Fmt.pf ppf "%s -> %s@.@[<v>%a@]@." baseline current pp_report report;
              Ok (exit_code report)))
