(** A minimal JSON tree, printer and parser.

    The repo deliberately carries no third-party JSON dependency; every
    machine-readable artifact (metrics snapshots, Chrome traces, bench
    results) goes through this module, and the parser exists so tests and
    the schema checker can round-trip what the printers emit. Numbers are
    split into [Int] and [Float] so counters serialize without a decimal
    point; the parser maps any number with a fraction or exponent to
    [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Printing} *)

(** [to_string t] is compact single-line JSON (RFC 8259 escaping; non-finite
    floats print as [null], which Chrome's trace viewer tolerates). *)
val to_string : t -> string

(** [pp] prints multi-line, two-space-indented JSON. *)
val pp : Format.formatter -> t -> unit

(** [write_file path t] writes [pp]-formatted JSON plus a trailing newline. *)
val write_file : string -> t -> unit

(** {1 Parsing} *)

(** [of_string s] parses one JSON value (surrounding whitespace allowed). *)
val of_string : string -> (t, string) result

(** {1 Accessors} *)

(** [member key t] is the value bound to [key] when [t] is an object. *)
val member : string -> t -> t option

(** [to_list_opt], [to_int_opt], ... are shape-checking projections. *)
val to_list_opt : t -> t list option

val to_int_opt : t -> int option
val to_float_opt : t -> float option

(** [to_number_opt] accepts both [Int] and [Float]. *)
val to_number_opt : t -> float option

val to_string_opt : t -> string option
