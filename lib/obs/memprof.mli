(** Statistical allocation-site profiler over [Gc.Memprof] (OCaml 5.3+).

    Samples minor/major heap allocations with captured backtraces and
    aggregates them into an allocation-site table: a site is the innermost
    backtrace frame located under [lib/], so stdlib allocations (Hashtbl
    resizes, List.map cells, ...) are charged to the library code that
    asked for them. Each sample is also attributed to the enclosing
    {!Span} section, the allocating domain, and the solver {!phase} in
    flight, and mirrored onto the per-domain {!Ring} timeline as an
    [Alloc_sample] event so allocation bursts line up with steals, claims
    and GC events.

    The backend is feature-gated at build time: on OCaml 5.1/5.2 (where
    [Gc.Memprof.start] raises under multicore) a stub is linked instead
    and {!start} returns [Error _] with {!supported} [= false]. The
    aggregation, JSON and collapsed-stack layers run everywhere — tests
    drive them through {!inject} — so only the sampling itself needs 5.3.

    On 5.3, [Gc.Memprof] profiles the starting domain plus any domain
    spawned afterwards: call {!start} before creating a [Par.Pool].

    Exports three artifacts: the schema-v5 ["allocation_profile"] block
    in {!Results} documents ({!to_json}), a collapsed-stack file for
    [flamegraph.pl]/speedscope ({!write_collapsed}), and the
    per-site/per-phase rollups printed by {!pp}. *)

(** Coarse solver/simulator phase, set at transition points by
    [Mdp.Solver], [Sim.Runtime] and [Par.Pool]; read on the allocating
    domain by the sample callback. *)
type phase = Expand | Claim_wait | Steal | Sim_run

val phase_name : phase -> string

(** [set_phase p] tags subsequent allocations on the calling domain;
    [None] clears the tag. A per-domain store: cheap enough to call
    unconditionally on coarse transitions even when profiling is off. *)
val set_phase : phase option -> unit

(** [phase ()] is the calling domain's current tag (to save/restore
    around a nested region). *)
val phase : unit -> phase option

(** Whether the linked backend can sample (true only on OCaml >= 5.3). *)
val supported : bool

(** [start ()] begins sampling. [sampling_rate] is the per-word sampling
    probability (default [1e-4]); [callstack_size] bounds captured frames
    (default 32). Clears any previously collected samples. [Error _] when
    the backend is unsupported or already running. *)
val start : ?sampling_rate:float -> ?callstack_size:int -> unit -> (unit, string) result

(** [stop ()] stops sampling but keeps the aggregated data for
    {!profile} / {!write_collapsed}. Idempotent. *)
val stop : unit -> unit

(** [running ()] is true between a successful {!start} and {!stop}. *)
val running : unit -> bool

(** [reset ()] stops sampling and drops all collected data. *)
val reset : unit -> unit

(** One aggregated allocation site. [site] is
    ["<fn>@<file>:<line>"] of the innermost [lib/] frame (or
    ["<unattributed>"] when no sampled frame is under [lib/]);
    [site_hash] is the stable [Hashtbl.hash] of that string — the same
    value carried by the ring [Alloc_sample] events, so trace timelines
    and profile tables join. Word counts are sampled words (sum of
    sampled block sizes), not estimated totals. *)
type site = {
  site : string;
  site_hash : int;
  frames : string list;  (** representative [lib/] frames, innermost first *)
  minor_samples : int;
  major_samples : int;
  minor_words : int;
  major_words : int;
  share_pct : float;  (** share of all sampled words, 0..100 *)
  by_section : (string * int) list;  (** sampled words per {!Span} section *)
  by_phase : (string * int) list;  (** sampled words per phase name *)
  by_domain : (int * int) list;  (** sampled words per domain id *)
}

type profile = {
  sampling_rate : float;
  callstack_size : int;
  blocks : int;  (** sampled allocation events (callback invocations) *)
  samples : int;  (** Memprof samples (sum of n_samples) *)
  sampled_minor_words : int;
  sampled_major_words : int;
  estimated_total_words : float;  (** samples / sampling_rate *)
  attributed_pct : float;
      (** % of sampled words charged to a named [lib/] site *)
  sites : site list;  (** sorted by sampled words, descending *)
  by_section : (string * int) list;
  by_phase : (string * int) list;
  by_domain : (int * int) list;
}

(** [profile ()] snapshots the aggregation — [None] until a profiling
    session has started (via {!start} or {!inject}) since the last
    {!reset}, so result documents only grow an ["allocation_profile"]
    block when profiling actually ran. *)
val profile : unit -> profile option

val to_json : profile -> Json.t

(** [of_json j] parses a profile previously rendered by {!to_json} (used
    by [bench/analyze.exe --alloc] on saved results documents). *)
val of_json : Json.t -> (profile, string) result

(** [pp ?top ppf p] prints the rollups and the top-[top] (default 20)
    site table, flagging every site holding more than 10% of sampled
    words. *)
val pp : ?top:int -> Format.formatter -> profile -> unit

(** [collapsed_lines ()] renders every aggregated stack in collapsed
    format — root-first frames joined by [';'], a space, then the
    sampled-word weight — one stack per line, ready for [flamegraph.pl]
    or speedscope. *)
val collapsed_lines : unit -> string list

val write_collapsed : string -> unit

(** [inject ()] feeds one synthetic sample straight into the aggregation
    (marking the profiler as started), bypassing the backend: the test
    hook that lets the site table, rollups, JSON and collapsed output be
    exercised on compilers where real sampling is unavailable. [frames]
    are formatted ["<fn>@<file>:<line>"], innermost first; [section]
    defaults to [Span.current ()], [phase] to the calling domain's tag,
    [domain] to the calling domain. *)
val inject :
  ?domain:int ->
  ?section:string ->
  ?phase:phase ->
  frames:string list ->
  minor:bool ->
  n_samples:int ->
  words:int ->
  unit ->
  unit
