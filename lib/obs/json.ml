type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (float_repr f)
        else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go v)
          kvs;
        Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

let pp_string ppf s =
  let buf = Buffer.create (String.length s + 2) in
  escape buf s;
  Format.pp_print_string ppf (Buffer.contents buf)

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Int n -> Format.pp_print_int ppf n
  | Float f ->
      Format.pp_print_string ppf (if Float.is_finite f then float_repr f else "null")
  | String s -> pp_string ppf s
  | List [] -> Format.pp_print_string ppf "[]"
  | List l ->
      Format.fprintf ppf "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        l
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj kvs ->
      let pp_kv ppf (k, v) = Format.fprintf ppf "@[<hov 2>%a:@ %a@]" pp_string k pp v in
      Format.fprintf ppf "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp_kv)
        kvs

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." pp t)

(* ---- parsing -------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "invalid \\u escape"
            in
            c.pos <- c.pos + 4;
            (* re-encode the code point as UTF-8 (surrogates are kept raw —
               the printers never emit them) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error c "invalid escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let lexeme = String.sub c.s start (c.pos - start) in
  if lexeme = "" then error c "expected number";
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lexeme
  in
  if is_float then
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> error c "invalid number"
  else
    match int_of_string_opt lexeme with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> error c "invalid number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let pair () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec items acc =
          let kv = pair () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (items [])
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_float_opt = function Float f -> Some f | _ -> None

let to_number_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
