type tag =
  | Solver_expand
  | Solver_hit
  | Solver_terminal
  | Solver_prune
  | Pool_task_start
  | Pool_task_stop
  | Pool_idle_start
  | Pool_idle_stop
  | Pool_queue_depth
  | Sim_step
  | Sim_deliver
  | Sim_crash
  | Adv_decision
  | Gc_minor
  | Gc_major
  | Domain_spawn
  | Domain_stop
  | Steal
  | Claim_hit
  | Claim_miss
  | Alloc_sample
  | Store_spill
  | Store_cache_hit
  | Store_cache_miss
  | Store_evict

(* Wire codes are part of the dump format: append only, never renumber. *)
let tag_code = function
  | Solver_expand -> 0
  | Solver_hit -> 1
  | Solver_terminal -> 2
  | Solver_prune -> 3
  | Pool_task_start -> 4
  | Pool_task_stop -> 5
  | Pool_idle_start -> 6
  | Pool_idle_stop -> 7
  | Pool_queue_depth -> 8
  | Sim_step -> 9
  | Sim_deliver -> 10
  | Sim_crash -> 11
  | Adv_decision -> 12
  | Gc_minor -> 13
  | Gc_major -> 14
  | Domain_spawn -> 15
  | Domain_stop -> 16
  | Steal -> 17
  | Claim_hit -> 18
  | Claim_miss -> 19
  | Alloc_sample -> 20
  | Store_spill -> 21
  | Store_cache_hit -> 22
  | Store_cache_miss -> 23
  | Store_evict -> 24

let all_tags =
  [
    Solver_expand; Solver_hit; Solver_terminal; Solver_prune; Pool_task_start;
    Pool_task_stop; Pool_idle_start; Pool_idle_stop; Pool_queue_depth;
    Sim_step; Sim_deliver; Sim_crash; Adv_decision; Gc_minor; Gc_major;
    Domain_spawn; Domain_stop; Steal; Claim_hit; Claim_miss; Alloc_sample;
    Store_spill; Store_cache_hit; Store_cache_miss; Store_evict;
  ]

let tag_of_code c = List.find_opt (fun t -> tag_code t = c) all_tags

let tag_name = function
  | Solver_expand -> "solver_expand"
  | Solver_hit -> "solver_hit"
  | Solver_terminal -> "solver_terminal"
  | Solver_prune -> "solver_prune"
  | Pool_task_start -> "pool_task_start"
  | Pool_task_stop -> "pool_task_stop"
  | Pool_idle_start -> "pool_idle_start"
  | Pool_idle_stop -> "pool_idle_stop"
  | Pool_queue_depth -> "pool_queue_depth"
  | Sim_step -> "sim_step"
  | Sim_deliver -> "sim_deliver"
  | Sim_crash -> "sim_crash"
  | Adv_decision -> "adv_decision"
  | Gc_minor -> "gc_minor"
  | Gc_major -> "gc_major"
  | Domain_spawn -> "domain_spawn"
  | Domain_stop -> "domain_stop"
  | Steal -> "steal"
  | Claim_hit -> "claim_hit"
  | Claim_miss -> "claim_miss"
  | Alloc_sample -> "alloc_sample"
  | Store_spill -> "store_spill"
  | Store_cache_hit -> "store_cache_hit"
  | Store_cache_miss -> "store_cache_miss"
  | Store_evict -> "store_evict"

(* ---- per-domain rings ------------------------------------------------ *)

(* One event is 4 consecutive [data] slots — tag code, payload a, payload
   b, timestamp in integer µs — so a record touches one cache line
   instead of four parallel arrays; the instrumented solver competes with
   its own memo table for cache, and the interleaved layout keeps the
   tracer's footprint per event minimal. *)
type ring = {
  domain : int;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  data : int array;  (* 4 * capacity slots *)
  mutable next : int;  (* total events ever recorded *)
  mutable registered : bool;  (* false after [reset] until the next record *)
  mutable last_ts : float;  (* clock cache for the solver fast path *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let default_capacity = 65_536
let capacity_req = Atomic.make default_capacity

let round_pow2 n =
  let n = max n 1024 in
  let rec go c = if c >= n then c else go (c * 2) in
  go 1024

let set_capacity n = Atomic.set capacity_req (round_pow2 n)

(* Every ring ever created, protected by [registry_mutex]. The record path
   takes the lock only when a ring (re-)registers: once at DLS creation,
   and once after a [reset] dropped it from the registry — a live domain's
   ring stays reachable through its DLS slot across resets, so it must
   re-announce itself or its post-reset events would never appear in a
   dump. *)
let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()

let register r =
  Mutex.lock registry_mutex;
  if not (List.memq r !registry) then registry := r :: !registry;
  r.registered <- true;
  Mutex.unlock registry_mutex

let make_ring () =
  let cap = Atomic.get capacity_req in
  let r =
    {
      domain = (Domain.self () :> int);
      mask = cap - 1;
      data = Array.make (4 * cap) 0;
      next = 0;
      registered = false;
      last_ts = 0.0;
    }
  in
  register r;
  r

let ring_key = Domain.DLS.new_key make_ring

(* Solver memo probes fire millions of times per solve and the clock read
   is the bulk of the record cost, so those tags reuse a cached timestamp
   refreshed at least every [ts_stride] events (staleness is a few µs —
   invisible at the analyzer's timeline resolution). Every other tag
   feeds interval math (task/idle slices, GC phases), so it always reads
   the clock — and refreshes the cache, keeping per-ring timestamps
   non-decreasing. *)
let ts_stride_mask = 63

let record tag a b =
  if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get ring_key in
    if not r.registered then register r;
    let i = r.next land r.mask in
    let ts =
      match tag with
      | ( Solver_expand | Solver_hit | Solver_terminal | Claim_hit | Claim_miss
        | Store_cache_hit | Store_cache_miss )
        when r.next land ts_stride_mask <> 0 ->
          r.last_ts
      | _ ->
          let t = Span.now_us () in
          r.last_ts <- t;
          t
    in
    let base = 4 * i in
    r.data.(base) <- tag_code tag;
    r.data.(base + 1) <- a;
    r.data.(base + 2) <- b;
    r.data.(base + 3) <- int_of_float ts;
    r.next <- r.next + 1
  end

(* ---- runtime events -------------------------------------------------- *)

(* Runtime events arrive outside the ring discipline (they are drained in
   bulk from the runtime's own ring files), so they go to plain growable
   per-ring-id buffers, newest first. *)
type rt_event = { rt_tag : tag; rt_a : int; rt_ts_us : float }

let rt_buffers : (int, rt_event list ref) Hashtbl.t = Hashtbl.create 8
let rt_cursor : Runtime_events.cursor option ref = ref None

(* Offset mapping the runtime's monotonic-ns clock onto [Span.now_us],
   fixed at the first polled event. The first poll's drain latency bounds
   the alignment error; lanes render correctly regardless. *)
let rt_offset_us : float option ref = ref None

let rt_buffer ring_id =
  match Hashtbl.find_opt rt_buffers ring_id with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace rt_buffers ring_id b;
      b

let rt_add ring_id tag a raw_ts =
  let raw_us = Int64.to_float (Runtime_events.Timestamp.to_int64 raw_ts) /. 1e3 in
  let offset =
    match !rt_offset_us with
    | Some o -> o
    | None ->
        let o = raw_us -. Span.now_us () in
        rt_offset_us := Some o;
        o
  in
  let b = rt_buffer ring_id in
  b := { rt_tag = tag; rt_a = a; rt_ts_us = raw_us -. offset } :: !b

let rt_callbacks =
  lazy
    (let phase_tag = function
       | Runtime_events.EV_MINOR -> Some Gc_minor
       | Runtime_events.EV_MAJOR -> Some Gc_major
       | _ -> None
     in
     let runtime_begin ring_id ts phase =
       match phase_tag phase with
       | Some t -> rt_add ring_id t 0 ts
       | None -> ()
     in
     let runtime_end ring_id ts phase =
       match phase_tag phase with
       | Some t -> rt_add ring_id t 1 ts
       | None -> ()
     in
     let lifecycle ring_id ts kind arg =
       match kind with
       | Runtime_events.EV_DOMAIN_SPAWN ->
           rt_add ring_id Domain_spawn (Option.value arg ~default:0) ts
       | Runtime_events.EV_DOMAIN_TERMINATE ->
           rt_add ring_id Domain_stop (Option.value arg ~default:0) ts
       | _ -> ()
     in
     Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lifecycle ())

let start_runtime_events () =
  match !rt_cursor with
  | Some _ -> Ok ()
  | None -> (
      try
        Runtime_events.start ();
        rt_cursor := Some (Runtime_events.create_cursor None);
        Ok ()
      with e -> Error (Printexc.to_string e))

let poll_runtime_events () =
  match !rt_cursor with
  | None -> 0
  | Some cursor -> (
      try Runtime_events.read_poll cursor (Lazy.force rt_callbacks) None
      with _ -> 0)

(* ---- dumping --------------------------------------------------------- *)

type event = { tag : tag; a : int; b : int; ts_us : float }

type domain_dump = {
  domain : int;
  recorded : int;
  dropped : int;
  events : event list;
}

type dump = {
  capacity : int;
  domains : domain_dump list;
  runtime : domain_dump list;
}

let dump_ring r =
  let cap = r.mask + 1 in
  let retained = min r.next cap in
  let first = r.next - retained in
  let events = ref [] in
  for k = r.next - 1 downto first do
    let base = 4 * (k land r.mask) in
    match tag_of_code r.data.(base) with
    | Some tag ->
        events :=
          {
            tag;
            a = r.data.(base + 1);
            b = r.data.(base + 2);
            ts_us = float_of_int r.data.(base + 3);
          }
          :: !events
    | None -> ()
  done;
  {
    domain = r.domain;
    recorded = r.next;
    dropped = r.next - retained;
    events = !events;
  }

let dump () =
  let rings =
    Mutex.lock registry_mutex;
    let rs = !registry in
    Mutex.unlock registry_mutex;
    rs
  in
  ignore (poll_runtime_events ());
  let domains =
    List.filter (fun r -> r.next > 0) rings
    |> List.map dump_ring
    |> List.sort (fun a b -> compare a.domain b.domain)
  in
  let runtime =
    Hashtbl.fold
      (fun ring_id buf acc ->
        let events =
          List.rev_map
            (fun e -> { tag = e.rt_tag; a = e.rt_a; b = 0; ts_us = e.rt_ts_us })
            !buf
        in
        let n = List.length events in
        if n = 0 then acc
        else { domain = ring_id; recorded = n; dropped = 0; events } :: acc)
      rt_buffers []
    |> List.sort (fun a b -> compare a.domain b.domain)
  in
  { capacity = Atomic.get capacity_req; domains; runtime }

let reset () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  registry := [];
  Mutex.unlock registry_mutex;
  (* rings still reachable through a live domain's DLS are zeroed so a
     stale reference cannot resurrect pre-reset events, and marked
     unregistered so their next record re-announces them; rings of dead
     domains become garbage *)
  List.iter
    (fun r ->
      r.next <- 0;
      r.registered <- false)
    rs;
  Hashtbl.reset rt_buffers;
  rt_offset_us := None

(* ---- JSON ------------------------------------------------------------ *)

let schema_id = "blunting-trace/1"

let event_to_json e =
  Json.List
    [ Json.Int (tag_code e.tag); Json.Int e.a; Json.Int e.b; Json.Float e.ts_us ]

let domain_dump_to_json d =
  Json.Obj
    [
      ("domain", Json.Int d.domain);
      ("recorded", Json.Int d.recorded);
      ("dropped", Json.Int d.dropped);
      ("events", Json.List (List.map event_to_json d.events));
    ]

let to_json d =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ( "tag_names",
        Json.Obj
          (List.map
             (fun t -> (string_of_int (tag_code t), Json.String (tag_name t)))
             all_tags) );
      ("capacity", Json.Int d.capacity);
      ("domains", Json.List (List.map domain_dump_to_json d.domains));
      ("runtime", Json.List (List.map domain_dump_to_json d.runtime));
    ]

let ( let* ) = Result.bind

let event_of_json = function
  | Json.List [ code; a; b; ts ] -> (
      match
        ( Json.to_int_opt code,
          Json.to_int_opt a,
          Json.to_int_opt b,
          Json.to_number_opt ts )
      with
      | Some code, Some a, Some b, Some ts_us ->
          (* unknown codes (from a newer writer) drop silently *)
          Ok (Option.map (fun tag -> { tag; a; b; ts_us }) (tag_of_code code))
      | _ -> Error "event cells must be [int, int, int, number]")
  | _ -> Error "event must be a 4-element array"

let domain_dump_of_json j =
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %s (int)" name)
  in
  let* domain = int_field "domain" in
  let* recorded = int_field "recorded" in
  let* dropped = int_field "dropped" in
  let* raw =
    match Option.bind (Json.member "events" j) Json.to_list_opt with
    | Some l -> Ok l
    | None -> Error "missing events array"
  in
  let* events =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = event_of_json e in
        Ok (match e with Some e -> e :: acc | None -> acc))
      (Ok []) raw
  in
  Ok { domain; recorded; dropped; events = List.rev events }

let dump_list_of_json j name =
  match Option.bind (Json.member name j) Json.to_list_opt with
  | None -> Ok []
  | Some l ->
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* d = domain_dump_of_json d in
          Ok (d :: acc))
        (Ok []) l
      |> Result.map List.rev

let of_json j =
  match Option.bind (Json.member "schema" j) Json.to_string_opt with
  | Some s when s = schema_id ->
      let capacity =
        Option.value ~default:default_capacity
          (Option.bind (Json.member "capacity" j) Json.to_int_opt)
      in
      let* domains = dump_list_of_json j "domains" in
      let* runtime = dump_list_of_json j "runtime" in
      Ok { capacity; domains; runtime }
  | Some s -> Error (Printf.sprintf "unsupported trace schema %S" s)
  | None -> Error "missing schema field (not a blunting trace dump?)"

let write_file path d = Json.write_file path (to_json d)

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      let* j = Result.map_error (fun e -> path ^ ": " ^ e) (Json.of_string contents) in
      Result.map_error (fun e -> path ^ ": " ^ e) (of_json j)

(* ---- Chrome export --------------------------------------------------- *)

let app_pid = 0
let runtime_pid = 1

let chrome_domain_events ~pid d =
  let tid = d.domain in
  let ev = Chrome_trace.event ~pid ~tid in
  List.filter_map
    (fun e ->
      let instant name args =
        Some (ev ~cat:"trace" ~args ~name ~ts:e.ts_us Chrome_trace.Instant)
      in
      match e.tag with
      | Pool_task_start ->
          Some
            (ev ~cat:"pool"
               ~args:[ ("lo", Json.Int e.a); ("hi", Json.Int e.b) ]
               ~name:"task" ~ts:e.ts_us Chrome_trace.Begin)
      | Pool_task_stop ->
          Some (ev ~cat:"pool" ~name:"task" ~ts:e.ts_us Chrome_trace.End)
      | Pool_idle_start ->
          Some (ev ~cat:"pool" ~name:"idle" ~ts:e.ts_us Chrome_trace.Begin)
      | Pool_idle_stop ->
          Some (ev ~cat:"pool" ~name:"idle" ~ts:e.ts_us Chrome_trace.End)
      | Pool_queue_depth ->
          Some
            (ev ~cat:"pool"
               ~args:[ ("depth", Json.Int e.a) ]
               ~name:"queue_depth" ~ts:e.ts_us Chrome_trace.Counter)
      | Gc_minor | Gc_major ->
          let name = tag_name e.tag in
          Some
            (ev ~cat:"gc" ~name ~ts:e.ts_us
               (if e.a = 0 then Chrome_trace.Begin else Chrome_trace.End))
      | Adv_decision ->
          instant "adv_decision"
            [ ("enabled", Json.Int e.a); ("chosen", Json.Int e.b) ]
      | Solver_expand | Solver_hit | Solver_terminal | Solver_prune ->
          instant (tag_name e.tag)
            [ ("key", Json.Int e.a); ("depth", Json.Int e.b) ]
      | Claim_hit ->
          instant "claim_hit" [ ("key", Json.Int e.a); ("depth", Json.Int e.b) ]
      | Claim_miss ->
          instant "claim_miss"
            [ ("owner", Json.Int e.a); ("depth", Json.Int e.b) ]
      | Steal ->
          instant "steal" [ ("victim", Json.Int e.a); ("item", Json.Int e.b) ]
      | Alloc_sample ->
          instant "alloc_sample"
            [ ("site", Json.Int e.a); ("words", Json.Int e.b) ]
      | Store_spill ->
          instant "store_spill"
            [ ("entries", Json.Int e.a); ("bytes", Json.Int e.b) ]
      | Store_cache_hit | Store_cache_miss ->
          instant (tag_name e.tag)
            [ ("shard", Json.Int e.a); ("block", Json.Int e.b) ]
      | Store_evict ->
          instant "store_evict"
            [ ("shard", Json.Int e.a); ("block", Json.Int e.b) ]
      | Sim_step | Sim_deliver | Sim_crash ->
          instant (tag_name e.tag) [ ("id", Json.Int e.a) ]
      | Domain_spawn | Domain_stop ->
          instant (tag_name e.tag) [ ("domain", Json.Int e.a) ])
    d.events

let chrome_events d =
  let meta =
    Chrome_trace.process_name ~pid:app_pid "blunting"
    :: Chrome_trace.process_name ~pid:runtime_pid "ocaml-runtime"
    :: List.map
         (fun dd ->
           Chrome_trace.thread_name ~pid:app_pid ~tid:dd.domain
             (Printf.sprintf "domain %d" dd.domain))
         d.domains
    @ List.map
        (fun dd ->
          Chrome_trace.thread_name ~pid:runtime_pid ~tid:dd.domain
            (Printf.sprintf "runtime ring %d" dd.domain))
        d.runtime
  in
  meta
  @ List.concat_map (chrome_domain_events ~pid:app_pid) d.domains
  @ List.concat_map (chrome_domain_events ~pid:runtime_pid) d.runtime
