type phase = Expand | Claim_wait | Steal | Sim_run

let phase_name = function
  | Expand -> "expand"
  | Claim_wait -> "claim-wait"
  | Steal -> "steal"
  | Sim_run -> "sim-run"

let phase_code = function Expand -> 0 | Claim_wait -> 1 | Steal -> 2 | Sim_run -> 3
let phase_of_code = function 0 -> Expand | 1 -> Claim_wait | 2 -> Steal | _ -> Sim_run

(* One slot per phase plus a trailing "untagged" bucket. *)
let n_phase_slots = 5
let untagged_slot = 4

(* Per-domain phase tag: written by the solver/sim at coarse transitions,
   read by the sample callback (which 5.3 runs on the allocating domain).
   A plain DLS ref — one store per transition, nothing on allocation
   paths. *)
let phase_key = Domain.DLS.new_key (fun () -> ref (-1))

let set_phase p =
  Domain.DLS.get phase_key := (match p with None -> -1 | Some p -> phase_code p)

let current_slot () =
  match !(Domain.DLS.get phase_key) with -1 -> untagged_slot | c -> c

let phase () =
  match !(Domain.DLS.get phase_key) with -1 -> None | c -> Some (phase_of_code c)

(* ---- aggregation ----------------------------------------------------- *)

let unattributed = "<unattributed>"

(* Frames are formatted "<fn>@<file>:<line>"; the site of a stack is its
   innermost frame whose file lives under lib/, so stdlib allocations are
   charged to the library code that asked for them. *)
let frame_file f =
  match String.index_opt f '@' with
  | Some i -> String.sub f (i + 1) (String.length f - i - 1)
  | None -> f

let is_lib_frame f =
  let file = frame_file f in
  String.length file >= 4 && String.sub file 0 4 = "lib/"

type acc = {
  mutable minor_samples : int;
  mutable major_samples : int;
  mutable minor_words : int;  (* sampled block sizes, words *)
  mutable major_words : int;
  by_section : (string, int) Hashtbl.t;  (* sampled words per section *)
  by_phase : int array;  (* sampled words per phase slot *)
  by_domain : (int, int) Hashtbl.t;  (* sampled words per domain id *)
}

let new_acc () =
  {
    minor_samples = 0;
    major_samples = 0;
    minor_words = 0;
    major_words = 0;
    by_section = Hashtbl.create 7;
    by_phase = Array.make n_phase_slots 0;
    by_domain = Hashtbl.create 7;
  }

type stack_entry = {
  frames : string array;  (* innermost first *)
  site : string;
  site_hash : int;
  lib_frames : string list;
  acc : acc;
}

let mutex = Mutex.create ()
let stacks : (string, stack_entry) Hashtbl.t = Hashtbl.create 256
let started = ref false
let is_running = ref false
let rate = ref 0.0
let depth = ref 0
let sampled_blocks = ref 0

let bump tbl key words =
  match Hashtbl.find_opt tbl key with
  | Some w -> Hashtbl.replace tbl key (w + words)
  | None -> Hashtbl.add tbl key words

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let record ~frames ~minor ~n_samples ~words ~section ~phase_slot ~domain =
  let key = String.concat ";" (Array.to_list frames) in
  Mutex.lock mutex;
  let e =
    match Hashtbl.find_opt stacks key with
    | Some e -> e
    | None ->
        let lib_frames =
          take 4 (List.filter is_lib_frame (Array.to_list frames))
        in
        let site = match lib_frames with f :: _ -> f | [] -> unattributed in
        let e =
          { frames; site; site_hash = Hashtbl.hash site; lib_frames; acc = new_acc () }
        in
        Hashtbl.add stacks key e;
        e
  in
  incr sampled_blocks;
  let a = e.acc in
  if minor then begin
    a.minor_samples <- a.minor_samples + n_samples;
    a.minor_words <- a.minor_words + words
  end
  else begin
    a.major_samples <- a.major_samples + n_samples;
    a.major_words <- a.major_words + words
  end;
  bump a.by_section (Option.value section ~default:"(none)") words;
  a.by_phase.(phase_slot) <- a.by_phase.(phase_slot) + words;
  bump a.by_domain domain words;
  let site_hash = e.site_hash in
  Mutex.unlock mutex;
  (* the same hash lands on the per-domain ring so allocation bursts line
     up with steals/claims/GC events on one timeline *)
  Ring.record Ring.Alloc_sample site_hash words

let frames_of_callstack bt =
  match Printexc.backtrace_slots bt with
  | None -> [||]
  | Some slots ->
      let out = ref [] in
      Array.iter
        (fun slot ->
          match Printexc.Slot.location slot with
          | None -> ()
          | Some loc ->
              let name =
                match Printexc.Slot.name slot with Some n -> n | None -> "?"
              in
              out :=
                Printf.sprintf "%s@%s:%d" name loc.Printexc.filename
                  loc.Printexc.line_number
                :: !out)
        slots;
      Array.of_list (List.rev !out)

let on_sample ~minor ~n_samples ~size ~callstack =
  record
    ~frames:(frames_of_callstack callstack)
    ~minor ~n_samples ~words:size ~section:(Span.current ())
    ~phase_slot:(current_slot ())
    ~domain:(Domain.self () :> int)

(* ---- lifecycle ------------------------------------------------------- *)

let supported = Memprof_backend.supported
let default_rate = 1e-4
let default_depth = 32

let clear_locked () =
  Hashtbl.reset stacks;
  sampled_blocks := 0;
  started := false;
  rate := 0.0;
  depth := 0

let start ?(sampling_rate = default_rate) ?(callstack_size = default_depth) () =
  match
    Memprof_backend.start ~sampling_rate ~callstack_size ~on_sample
  with
  | Ok () ->
      Mutex.lock mutex;
      clear_locked ();
      started := true;
      is_running := true;
      rate := sampling_rate;
      depth := callstack_size;
      Mutex.unlock mutex;
      Ok ()
  | Error _ as e -> e

let stop () =
  Memprof_backend.stop ();
  Mutex.lock mutex;
  is_running := false;
  Mutex.unlock mutex

let running () = !is_running

let reset () =
  Memprof_backend.stop ();
  Mutex.lock mutex;
  is_running := false;
  clear_locked ();
  Mutex.unlock mutex

let inject ?domain ?section ?phase ~frames ~minor ~n_samples ~words () =
  let domain = match domain with Some d -> d | None -> (Domain.self () :> int) in
  let section = match section with Some _ as s -> s | None -> Span.current () in
  let phase_slot =
    match phase with Some p -> phase_code p | None -> current_slot ()
  in
  Mutex.lock mutex;
  started := true;
  Mutex.unlock mutex;
  record ~frames:(Array.of_list frames) ~minor ~n_samples ~words ~section
    ~phase_slot ~domain

(* ---- snapshot -------------------------------------------------------- *)

type site = {
  site : string;
  site_hash : int;
  frames : string list;
  minor_samples : int;
  major_samples : int;
  minor_words : int;
  major_words : int;
  share_pct : float;
  by_section : (string * int) list;
  by_phase : (string * int) list;
  by_domain : (int * int) list;
}

type profile = {
  sampling_rate : float;
  callstack_size : int;
  blocks : int;
  samples : int;
  sampled_minor_words : int;
  sampled_major_words : int;
  estimated_total_words : float;
  attributed_pct : float;
  sites : site list;
  by_section : (string * int) list;
  by_phase : (string * int) list;
  by_domain : (int * int) list;
}

let pct part whole = if whole <= 0 then 0.0 else 100.0 *. float part /. float whole

let sorted_words tbl =
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.sort (fun (ka, wa) (kb, wb) ->
         if wa <> wb then compare wb wa else compare ka kb)

let phase_words arr =
  let out = ref [] in
  for slot = n_phase_slots - 1 downto 0 do
    if arr.(slot) > 0 then
      let name =
        if slot = untagged_slot then "untagged" else phase_name (phase_of_code slot)
      in
      out := (name, arr.(slot)) :: !out
  done;
  !out

let profile () =
  Mutex.lock mutex;
  if not !started then begin
    Mutex.unlock mutex;
    None
  end
  else begin
    (* group per-stack accumulators by site *)
    let by_site : (string, string list * int * acc) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (e : stack_entry) ->
        let _, _, a =
          match Hashtbl.find_opt by_site e.site with
          | Some g -> g
          | None ->
              let g = (e.lib_frames, e.site_hash, new_acc ()) in
              Hashtbl.add by_site e.site g;
              g
        in
        a.minor_samples <- a.minor_samples + e.acc.minor_samples;
        a.major_samples <- a.major_samples + e.acc.major_samples;
        a.minor_words <- a.minor_words + e.acc.minor_words;
        a.major_words <- a.major_words + e.acc.major_words;
        Hashtbl.iter (fun k w -> bump a.by_section k w) e.acc.by_section;
        Array.iteri (fun i w -> a.by_phase.(i) <- a.by_phase.(i) + w) e.acc.by_phase;
        Hashtbl.iter (fun k w -> bump a.by_domain k w) e.acc.by_domain)
      stacks;
    let totals = new_acc () in
    Hashtbl.iter
      (fun _ ((_, _, a) : string list * int * acc) ->
        totals.minor_samples <- totals.minor_samples + a.minor_samples;
        totals.major_samples <- totals.major_samples + a.major_samples;
        totals.minor_words <- totals.minor_words + a.minor_words;
        totals.major_words <- totals.major_words + a.major_words;
        Hashtbl.iter (fun k w -> bump totals.by_section k w) a.by_section;
        Array.iteri (fun i w -> totals.by_phase.(i) <- totals.by_phase.(i) + w) a.by_phase;
        Hashtbl.iter (fun k w -> bump totals.by_domain k w) a.by_domain)
      by_site;
    let total_words = totals.minor_words + totals.major_words in
    let sites =
      Hashtbl.fold
        (fun name ((frames, hash, a) : string list * int * acc) l ->
          {
            site = name;
            site_hash = hash;
            frames;
            minor_samples = a.minor_samples;
            major_samples = a.major_samples;
            minor_words = a.minor_words;
            major_words = a.major_words;
            share_pct = pct (a.minor_words + a.major_words) total_words;
            by_section = sorted_words a.by_section;
            by_phase = phase_words a.by_phase;
            by_domain =
              List.sort compare
                (Hashtbl.fold (fun k v l -> (k, v) :: l) a.by_domain []);
          }
          :: l)
        by_site []
      |> List.sort (fun a b ->
             let wa = a.minor_words + a.major_words
             and wb = b.minor_words + b.major_words in
             if wa <> wb then compare wb wa else compare a.site b.site)
    in
    let unattributed_words =
      List.fold_left
        (fun acc s ->
          if s.site = unattributed then acc + s.minor_words + s.major_words
          else acc)
        0 sites
    in
    let samples = totals.minor_samples + totals.major_samples in
    let p =
      {
        sampling_rate = !rate;
        callstack_size = !depth;
        blocks = !sampled_blocks;
        samples;
        sampled_minor_words = totals.minor_words;
        sampled_major_words = totals.major_words;
        estimated_total_words =
          (if !rate > 0.0 then float samples /. !rate else 0.0);
        attributed_pct = pct (total_words - unattributed_words) total_words;
        sites;
        by_section = sorted_words totals.by_section;
        by_phase = phase_words totals.by_phase;
        by_domain =
          List.sort compare
            (Hashtbl.fold (fun k v l -> (k, v) :: l) totals.by_domain []);
      }
    in
    Mutex.unlock mutex;
    Some p
  end

(* ---- collapsed stacks ------------------------------------------------ *)

let collapsed_lines () =
  Mutex.lock mutex;
  let lines =
    Hashtbl.fold
      (fun _ (e : stack_entry) l ->
        let words = e.acc.minor_words + e.acc.major_words in
        let frames =
          match e.frames with
          | [||] -> [ "[unknown]" ]
          | fs -> List.rev (Array.to_list fs)  (* collapsed format is root-first *)
        in
        Printf.sprintf "%s %d" (String.concat ";" frames) words :: l)
      stacks []
  in
  Mutex.unlock mutex;
  List.sort compare lines

let write_collapsed path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (collapsed_lines ()))

(* ---- JSON ------------------------------------------------------------ *)

let words_json l = Json.Obj (List.map (fun (k, w) -> (k, Json.Int w)) l)

let domain_words_json l =
  Json.Obj (List.map (fun (d, w) -> (string_of_int d, Json.Int w)) l)

let site_to_json s =
  Json.Obj
    [
      ("site", Json.String s.site);
      ("site_hash", Json.Int s.site_hash);
      ("frames", Json.List (List.map (fun f -> Json.String f) s.frames));
      ("minor_samples", Json.Int s.minor_samples);
      ("major_samples", Json.Int s.major_samples);
      ("minor_words", Json.Int s.minor_words);
      ("major_words", Json.Int s.major_words);
      ("share_pct", Json.Float s.share_pct);
      ("by_section", words_json s.by_section);
      ("by_phase", words_json s.by_phase);
      ("by_domain", domain_words_json s.by_domain);
    ]

let to_json p =
  Json.Obj
    [
      ("sampling_rate", Json.Float p.sampling_rate);
      ("callstack_size", Json.Int p.callstack_size);
      ("blocks", Json.Int p.blocks);
      ("samples", Json.Int p.samples);
      ("sampled_minor_words", Json.Int p.sampled_minor_words);
      ("sampled_major_words", Json.Int p.sampled_major_words);
      ("estimated_total_words", Json.Float p.estimated_total_words);
      ("attributed_pct", Json.Float p.attributed_pct);
      ("by_section", words_json p.by_section);
      ("by_phase", words_json p.by_phase);
      ("by_domain", domain_words_json p.by_domain);
      ("sites", Json.List (List.map site_to_json p.sites));
    ]

let words_of_json j =
  match j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun w -> (k, w)) (Json.to_int_opt v))
        kvs
  | _ -> []

let domain_words_of_json j =
  match j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match (int_of_string_opt k, Json.to_int_opt v) with
          | Some d, Some w -> Some (d, w)
          | _ -> None)
        kvs
  | _ -> []

let int_field j name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int_opt)

let float_field j name =
  Option.value ~default:0.0 (Option.bind (Json.member name j) Json.to_number_opt)

let site_of_json j =
  match Option.bind (Json.member "site" j) Json.to_string_opt with
  | None -> Error "allocation_profile site entry is missing \"site\""
  | Some name ->
      Ok
        {
          site = name;
          site_hash = int_field j "site_hash";
          frames =
            (match Option.bind (Json.member "frames" j) Json.to_list_opt with
            | Some fs -> List.filter_map Json.to_string_opt fs
            | None -> []);
          minor_samples = int_field j "minor_samples";
          major_samples = int_field j "major_samples";
          minor_words = int_field j "minor_words";
          major_words = int_field j "major_words";
          share_pct = float_field j "share_pct";
          by_section = words_of_json (Json.member "by_section" j);
          by_phase = words_of_json (Json.member "by_phase" j);
          by_domain = domain_words_of_json (Json.member "by_domain" j);
        }

let of_json j =
  match j with
  | Json.Obj _ ->
      let rec sites_of = function
        | [] -> Ok []
        | s :: rest ->
            Result.bind (site_of_json s) (fun site ->
                Result.map (fun l -> site :: l) (sites_of rest))
      in
      let sites_json =
        Option.value ~default:[] (Option.bind (Json.member "sites" j) Json.to_list_opt)
      in
      Result.map
        (fun sites ->
          {
            sampling_rate = float_field j "sampling_rate";
            callstack_size = int_field j "callstack_size";
            blocks = int_field j "blocks";
            samples = int_field j "samples";
            sampled_minor_words = int_field j "sampled_minor_words";
            sampled_major_words = int_field j "sampled_major_words";
            estimated_total_words = float_field j "estimated_total_words";
            attributed_pct = float_field j "attributed_pct";
            sites;
            by_section = words_of_json (Json.member "by_section" j);
            by_phase = words_of_json (Json.member "by_phase" j);
            by_domain = domain_words_of_json (Json.member "by_domain" j);
          })
        (sites_of sites_json)
  | _ -> Error "allocation_profile must be a JSON object"

(* ---- report ---------------------------------------------------------- *)

let hot_share_pct = 10.0

let pp_words_line ppf label l total =
  if l <> [] then begin
    Format.fprintf ppf "  %s" label;
    List.iter
      (fun (k, w) -> Format.fprintf ppf " %s=%d (%.1f%%)" k w (pct w total))
      l;
    Format.fprintf ppf "@."
  end

let pp ?(top = 20) ppf p =
  let total = p.sampled_minor_words + p.sampled_major_words in
  Format.fprintf ppf
    "allocation profile: rate %.1e, callstack depth %d@.  %d blocks, %d \
     samples, %d sampled words (minor %d, major %d)@.  estimated total %.3e \
     words; %.1f%% attributed to lib/ sites@."
    p.sampling_rate p.callstack_size p.blocks p.samples total
    p.sampled_minor_words p.sampled_major_words p.estimated_total_words
    p.attributed_pct;
  pp_words_line ppf "by section:" p.by_section total;
  pp_words_line ppf "by phase:  " p.by_phase total;
  pp_words_line ppf "by domain: "
    (List.map (fun (d, w) -> (string_of_int d, w)) p.by_domain)
    total;
  Format.fprintf ppf "top allocation sites (by sampled words):@.";
  Format.fprintf ppf "  %10s  %6s  site@." "words" "share";
  let shown = take top p.sites in
  List.iter
    (fun s ->
      Format.fprintf ppf "  %10d  %5.1f%%  %s%s@."
        (s.minor_words + s.major_words)
        s.share_pct s.site
        (if s.share_pct > hot_share_pct then "  [>10%]" else ""))
    shown;
  if List.length p.sites > top then
    Format.fprintf ppf "  ... %d more site(s)@." (List.length p.sites - top);
  let hot =
    List.filter (fun s -> s.share_pct > hot_share_pct && s.site <> unattributed) p.sites
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "WARN: site %s holds %.1f%% of sampled words (> %.0f%%)@."
        s.site s.share_pct hot_share_pct)
    hot
