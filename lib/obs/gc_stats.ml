type sample = Gc.stat

let sample () = Gc.quick_stat ()

type delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;
}

let delta (before : sample) (after : sample) =
  {
    minor_words = after.Gc.minor_words -. before.Gc.minor_words;
    promoted_words = after.Gc.promoted_words -. before.Gc.promoted_words;
    major_words = after.Gc.major_words -. before.Gc.major_words;
    minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
    major_collections = after.Gc.major_collections - before.Gc.major_collections;
    compactions = after.Gc.compactions - before.Gc.compactions;
    top_heap_words = after.Gc.top_heap_words;
  }

(* [Gc.quick_stat] only refreshes [minor_words] at collection
   boundaries, so a measured region that does not trigger a minor GC
   would report zero allocation; [Gc.minor_words ()] reads the
   allocation pointer and is exact. *)
let measure f =
  let before = sample () in
  let mw0 = Gc.minor_words () in
  let v = f () in
  let mw1 = Gc.minor_words () in
  let d = delta before (sample ()) in
  (v, { d with minor_words = mw1 -. mw0 })

let allocated_words d = d.minor_words +. d.major_words -. d.promoted_words

let to_json d =
  Json.Obj
    [
      ("minor_words", Json.Float d.minor_words);
      ("promoted_words", Json.Float d.promoted_words);
      ("major_words", Json.Float d.major_words);
      ("allocated_words", Json.Float (allocated_words d));
      ("minor_collections", Json.Int d.minor_collections);
      ("major_collections", Json.Int d.major_collections);
      ("compactions", Json.Int d.compactions);
      ("top_heap_words", Json.Int d.top_heap_words);
    ]

let pp ppf d =
  Fmt.pf ppf
    "%.0f minor + %.0f major words (%.0f promoted), %d minor / %d major \
     collections, heap high-water %d words"
    d.minor_words d.major_words d.promoted_words d.minor_collections
    d.major_collections d.top_heap_words

(* Gauges mirroring the absolute [Gc.quick_stat] of this process, refreshed
   on demand so a metrics snapshot always carries a current GC profile. *)
module G = struct
  let minor_words = Metrics.gauge ~help:"cumulative minor words" "gc.minor_words"
  let major_words = Metrics.gauge ~help:"cumulative major words" "gc.major_words"

  let promoted_words =
    Metrics.gauge ~help:"cumulative promoted words" "gc.promoted_words"

  let minor_collections =
    Metrics.gauge ~help:"minor collections" "gc.minor_collections"

  let major_collections =
    Metrics.gauge ~help:"major collections" "gc.major_collections"

  let top_heap_words =
    Metrics.gauge ~help:"major heap high-water (words)" "gc.top_heap_words"
end

let publish_gauges () =
  let s = sample () in
  Metrics.set_gauge G.minor_words s.Gc.minor_words;
  Metrics.set_gauge G.major_words s.Gc.major_words;
  Metrics.set_gauge G.promoted_words s.Gc.promoted_words;
  Metrics.set_gauge G.minor_collections (float_of_int s.Gc.minor_collections);
  Metrics.set_gauge G.major_collections (float_of_int s.Gc.major_collections);
  Metrics.set_gauge G.top_heap_words (float_of_int s.Gc.top_heap_words)
