type span = { name : string; start_us : float; dur_us : float; gc : Gc_stats.delta }

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6
let log : span list ref = ref []

let time ?observe name f =
  let gc0 = Gc_stats.sample () in
  let start_us = now_us () in
  let v = f () in
  let dur_us = now_us () -. start_us in
  let gc = Gc_stats.delta gc0 (Gc_stats.sample ()) in
  log := { name; start_us; dur_us; gc } :: !log;
  let seconds = dur_us /. 1e6 in
  (match observe with None -> () | Some h -> Metrics.observe h seconds);
  (v, seconds)

let spans () = List.rev !log

let chrome_events ?(pid = 0) ?(tid = 0) () =
  List.map
    (fun s ->
      Chrome_trace.event ~cat:"phase" ~pid ~tid ~name:s.name ~ts:s.start_us
        (Chrome_trace.Complete s.dur_us))
    (spans ())

let reset () = log := []
