type span = { name : string; start_us : float; dur_us : float; gc : Gc_stats.delta }

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6
let log : span list ref = ref []

(* Stack of span names currently inside [time], innermost first. Only the
   domain running [time] mutates it; the Atomic gives concurrent readers
   (the Memprof sample callback, on any domain) a consistent snapshot. *)
let sections : string list Atomic.t = Atomic.make []

let current () =
  match Atomic.get sections with [] -> None | name :: _ -> Some name

let time ?observe name f =
  let gc0 = Gc_stats.sample () in
  let start_us = now_us () in
  Atomic.set sections (name :: Atomic.get sections);
  let v =
    Fun.protect
      ~finally:(fun () ->
        match Atomic.get sections with
        | [] -> ()
        | _ :: rest -> Atomic.set sections rest)
      f
  in
  let dur_us = now_us () -. start_us in
  let gc = Gc_stats.delta gc0 (Gc_stats.sample ()) in
  log := { name; start_us; dur_us; gc } :: !log;
  let seconds = dur_us /. 1e6 in
  (match observe with None -> () | Some h -> Metrics.observe h seconds);
  (v, seconds)

let spans () = List.rev !log

let chrome_events ?(pid = 0) ?(tid = 0) () =
  List.map
    (fun s ->
      Chrome_trace.event ~cat:"phase" ~pid ~tid ~name:s.name ~ts:s.start_us
        (Chrome_trace.Complete s.dur_us))
    (spans ())

let reset () = log := []
