(** The machine-readable experiment-results document.

    The bench harness compares paper-claimed values against measured ones
    (EXPERIMENTS.md, sections E1–E11); this module gives those comparisons
    a stable JSON schema so each bench run can land as a [BENCH_*.json]
    trajectory point. The document carries, per experiment section, the
    (quantity, paper, measured) rows — with optional numeric fields when
    the cell has a canonical number — plus free-form section metrics (e.g.
    solver statistics), and globally the {!Metrics} snapshot and the
    {!Span} phase timings of the producing run.

    Schema (version {!schema_version}):
    {v
    { "schema_version": 6,
      "generated_by": "<tool>",
      "generated_at_unix": <float>,
      "experiments": [
        { "id": "E1", "title": "...",
          "rows": [ { "quantity": "...", "paper": "...", "measured": "...",
                      "paper_value"?: <number|null>,
                      "measured_value"?: <number|null> } ],
          "metrics": { ... } } ],
      "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} },
      "spans": [ { "name": "...", "start_us": <number>, "dur_us": <number>,
                   "gc"?: { "minor_words": .., "major_words": .., ... } } ] }
    v}
    Version history: v2 added the per-span ["gc"] objects ({!Gc_stats}),
    [p50]/[p90]/[p99] percentile fields inside histogram snapshots, and
    [null] as the rendering of non-finite numeric fields. v3 added the
    parallel-engine telemetry the bench PAR section publishes in its
    section [metrics]: ["spawned_domains"] (int), ["domain_ids"] (int
    list) and a ["par_solve"] object — per-domain
    [{"domain", "states", "memo_hits", "memo_misses", "hit_rate"}]
    entries plus cross-domain ["distinct_keys"], ["duplicated_keys"] and
    ["duplicated_work_pct"]. v4 added the shared-memo work-stealing
    counters to the ["par_solve"] object: ["steals"], ["claim_hits"],
    ["claim_misses"] and ["pruned_subtrees"] (ints). All v3/v4 additions
    live inside the free-form section metrics, so every v4 document is
    structurally valid v2. v5 added an optional top-level
    ["allocation_profile"] object ({!Memprof.to_json}: sampling rate,
    sampled/estimated word counts, the allocation-site table with
    per-section/per-phase/per-domain rollups), emitted only when an
    {!Memprof} session ran during the producing process. v6 added an
    optional top-level ["store"] object — the out-of-core memo's
    telemetry ([budget_bytes], [spilled_entries], [spill_runs],
    [bytes_spilled], [evictions], [cache_hits]/[cache_misses]/
    [cache_hit_rate], [read_amplification], [write_amplification],
    [disk_hits], all numbers), installed via [set_store_block] by
    whichever harness ran a budgeted solve. [validate] accepts v1–v6
    documents — saved baselines must stay loadable — and is shared by
    the smoke schema checker, the differ and the test suite, so the
    schema cannot silently drift from its validator. *)

(** The version written by [to_json]; [validate] also accepts earlier
    versions (see [accepted_versions] in the implementation). *)
val schema_version : int

type t
type section

(** [create ~generated_by ()] starts an empty document. *)
val create : generated_by:string -> unit -> t

(** [section t ~id ~title] appends a new experiment section (e.g.
    [~id:"E3"]). Sections appear in creation order. *)
val section : t -> id:string -> title:string -> section

(** [row section ~quantity ~paper ~measured] appends a comparison row; the
    [_value] fields attach canonical numbers when the prose cells have
    one. *)
val row :
  section ->
  ?paper_value:float ->
  ?measured_value:float ->
  quantity:string ->
  paper:string ->
  measured:string ->
  unit ->
  unit

(** [add_section_metrics section kvs] merges free-form metrics (solver
    stats, trial counts, ...) into the section's [metrics] object. *)
val add_section_metrics : section -> (string * Json.t) list -> unit

(** [set_store_block j] installs the v6 out-of-core store telemetry
    object, included in every subsequent [to_json]. Process-global, like
    the {!Metrics} snapshot: the store library cannot be depended on
    from here, so the producer hands the rendered block over. *)
val set_store_block : Json.t -> unit

(** [to_json t] renders the document, snapshotting {!Metrics} and {!Span}
    at call time. *)
val to_json : t -> Json.t

val write : t -> path:string -> unit

(** [validate j] checks the schema; [Error] names the first offending
    field. *)
val validate : Json.t -> (unit, string) result
