(** Small statistics helpers for Monte-Carlo experiment reporting. *)

(** [mean xs] is the arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** [variance xs] is the unbiased sample variance; 0 for fewer than 2 points. *)
val variance : float list -> float

(** [stddev xs] is [sqrt (variance xs)]. *)
val stddev : float list -> float

(** [binomial_ci ~successes ~trials] is the 95% Wilson score interval for a
    Bernoulli success probability. Returns [(lo, hi)]. *)
val binomial_ci : successes:int -> trials:int -> float * float

(** [fraction ~successes ~trials] is the empirical success rate (0 when
    [trials = 0]). *)
val fraction : successes:int -> trials:int -> float
