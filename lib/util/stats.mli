(** Small statistics helpers for Monte-Carlo experiment reporting. *)

(** [mean xs] is the arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** [variance xs] is the unbiased sample variance; 0 for fewer than 2 points. *)
val variance : float list -> float

(** [stddev xs] is [sqrt (variance xs)]. *)
val stddev : float list -> float

(** [binomial_ci ~successes ~trials] is the 95% Wilson score interval for a
    Bernoulli success probability. Returns [(lo, hi)]. *)
val binomial_ci : successes:int -> trials:int -> float * float

(** [fraction ~successes ~trials] is the empirical success rate (0 when
    [trials = 0]). *)
val fraction : successes:int -> trials:int -> float

(** [intervals_overlap (lo1, hi1) (lo2, hi2)] holds when the two closed
    intervals intersect. *)
val intervals_overlap : float * float -> float * float -> bool

(** [binomial_compatible ~successes1 ~trials1 ~successes2 ~trials2] holds
    when the two samples' 95% Wilson intervals overlap — the equivalence
    criterion the fuzzer's distribution oracle uses for Theorem 4.1
    ([O^k] observationally equivalent to [O]). Overlapping 95% intervals
    is a conservative compatibility test: it rejects only blatant
    distribution drift, which is the right trade-off for an oracle that
    must never flag a true positive as a failure. *)
val binomial_compatible :
  successes1:int -> trials1:int -> successes2:int -> trials2:int -> bool
