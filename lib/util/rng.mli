(** Deterministic splittable pseudo-random generator (splitmix64).

    The simulator never touches OCaml's global [Random] state: every source of
    randomness is an explicit [Rng.t] so that executions are reproducible from
    a seed and independent streams can be split off for parallel experiments. *)

type t

(** [create seed] builds a generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create (Int64.of_int seed)]. *)
val of_int : int -> t

(** [copy t] is an independent generator with the same future output. *)
val copy : t -> t

(** [split t] returns a fresh generator whose stream is statistically
    independent from the remainder of [t]'s. Splitting advances [t], so
    sequentially split streams depend on the split order — for
    order-independent derivation use {!stream}. *)
val split : t -> t

(** [stream ~seed ~index] is an independent generator derived purely from
    the [(seed, index)] pair: the same stream results whatever order (or
    domain) the streams are created in. This is what makes Monte-Carlo
    trials embarrassingly parallel with bit-identical merged tallies —
    trial [i] draws from [stream ~seed ~index:i] instead of the [i]-th
    split of a sequentially-consumed master generator. Requires
    [index >= 0]. *)
val stream : seed:int -> index:int -> t

(** [bits64 t] draws 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t n] draws uniformly from [0 .. n-1] by rejection sampling (no
    modulo bias: residues are exactly equiprobable even when [n] does not
    divide the generator's 2^62 range). Raises [Invalid_argument] when
    [n <= 0]. *)
val int : t -> int -> int

(** [bool t] draws a fair boolean. *)
val bool : t -> bool

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** [pick t xs] draws a uniformly random element of the non-empty list in
    one traversal (always consuming exactly one 64-bit draw when no
    rejection occurs, regardless of the list's length). *)
val pick : t -> 'a list -> 'a

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list
