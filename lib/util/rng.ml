type t = { mutable state : int64 }

(* splitmix64, Steele et al.; passes BigCrush and splits cleanly. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  create (mix (Int64.logxor s 0xA3EC647659359ACDL))

let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: index must be non-negative";
  (* one splitmix step over the seed, then a golden-ratio jump per index:
     distinct (seed, index) pairs land on well-separated states, and the
     derivation is a pure function of the pair — stream i can be built
     before, after, or concurrently with stream j *)
  let s = mix (Int64.add (Int64.of_int seed) golden) in
  create (mix (Int64.logxor s (Int64.mul golden (Int64.of_int (index + 1)))))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling (same scheme as Stdlib.Random.int): draw 62
     uniform bits and retry in the top partial slice, so every residue is
     equally likely even when n does not divide 2^62 *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod n in
    if v - r > max_int - n + 1 then go () else r
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | [ x ] ->
      ignore (bits64 t);  (* keep the stream in lockstep with the n>1 case *)
      x
  | _ ->
      (* one traversal: materialize once, then O(1) index — List.nth after
         List.length walked the list half again on average *)
      let a = Array.of_list xs in
      a.(int t (Array.length a))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
