type t = { mutable state : int64 }

(* splitmix64, Steele et al.; passes BigCrush and splits cleanly. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  create (mix (Int64.logxor s 0xA3EC647659359ACDL))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
