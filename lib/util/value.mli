(** Universal data values.

    Registers, messages, operation arguments/results and server states in the
    simulator all carry values of this single type, so that every trace is
    printable, every state is comparable and hashable, and no part of the
    substrate needs to be functorized over a value type. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** [triple a b c] is [Pair (a, Pair (b, c))]. *)
val triple : t -> t -> t -> t

(** [none] encodes an absent value (the register initial value ⊥). *)
val none : t

(** [some v] tags [v] as present; [none]/[some] round-trip via {!to_option}. *)
val some : t -> t

(** {1 Destructors}

    Each raises [Type_error] when the value has the wrong shape; object
    implementations use them as dynamic type assertions. *)

exception Type_error of string * t

val to_bool : t -> bool
val to_int : t -> int
val to_str : t -> string
val to_pair : t -> t * t
val to_list : t -> t list
val to_triple : t -> t * t * t
val to_option : t -> t option

(** {1 Comparison, hashing, printing} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Timestamps}

    ABD-style timestamps are [(integer, process id)] pairs compared
    lexicographically; they are pervasive enough to deserve helpers. *)

val ts : int -> int -> t
val ts_compare : t -> t -> int
val ts_zero : t
