type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let list l = List l
let triple a b c = Pair (a, Pair (b, c))
let none = Str "\xe2\x8a\xa5" (* ⊥ *)
let some v = Pair (Str "some", v)

exception Type_error of string * t

let type_error expected v = raise (Type_error (expected, v))

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int n -> n | v -> type_error "int" v
let to_str = function Str s -> s | v -> type_error "str" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v
let to_list = function List l -> l | v -> type_error "list" v

let to_triple = function
  | Pair (a, Pair (b, c)) -> (a, b, c)
  | v -> type_error "triple" v

let to_option = function
  | Str "\xe2\x8a\xa5" -> None
  | Pair (Str "some", v) -> Some v
  | v -> type_error "option" v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> ( try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _), _ -> false

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> List.compare compare xs ys

let rec hash = function
  | Unit -> 17
  | Bool b -> if b then 29 else 31
  | Int n -> Hashtbl.hash n
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 65599) + hash b
  | List l -> List.fold_left (fun acc v -> (acc * 131) + hash v) 7 l

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.string ppf s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List l -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) l

let to_string v = Fmt.str "%a" pp v
let ts n i = Pair (Int n, Int i)

let ts_compare a b =
  let n1, i1 = to_pair a and n2, i2 = to_pair b in
  let c = Int.compare (to_int n1) (to_int n2) in
  if c <> 0 then c else Int.compare (to_int i1) (to_int i2)

let ts_zero = ts 0 0
