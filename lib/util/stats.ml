let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let binomial_ci ~successes ~trials =
  if trials = 0 then (0.0, 1.0)
  else begin
    let z = 1.959964 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

let fraction ~successes ~trials =
  if trials = 0 then 0.0 else float_of_int successes /. float_of_int trials

let intervals_overlap (lo1, hi1) (lo2, hi2) = lo1 <= hi2 && lo2 <= hi1

let binomial_compatible ~successes1 ~trials1 ~successes2 ~trials2 =
  intervals_overlap
    (binomial_ci ~successes:successes1 ~trials:trials1)
    (binomial_ci ~successes:successes2 ~trials:trials2)
