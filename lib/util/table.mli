(** Plain-text table rendering for the benchmark harness output. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row; short rows are padded with blanks. *)
val add_row : t -> string list -> unit

(** [is_empty t] — no headers and no rows (nothing to print). *)
val is_empty : t -> bool

(** [render t] lays the table out with aligned columns and a header rule. *)
val render : t -> string

(** [print t] writes [render t] to stdout followed by a newline. *)
val print : t -> unit
