type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t cells = t.rows <- cells :: t.rows
let is_empty t = t.headers = [] && t.rows = []

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  List.iter measure all;
  let line row =
    String.concat "  " (List.mapi (fun i c -> c ^ String.make (widths.(i) - String.length c) ' ') row)
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  match all with
  | header :: body -> String.concat "\n" (line header :: rule :: List.map line body)
  | [] -> ""

let print t = print_endline (render t)
