(** The Vitányi–Awerbuch multi-writer multi-reader register from
    single-writer registers (Section 5.3 of the paper).

    One single-writer register [Val\[i\]] per process holds a
    [(value, timestamp)] pair, timestamps being [(integer, process id)]
    pairs ordered lexicographically. A [read] collects all [Val] registers
    and returns the value with the largest timestamp. A [write v] at
    process [i] collects all [Val] registers, forms the timestamp
    [(max_t + 1, i)], and writes [(v, ts)] to [Val\[i\]].

    No strongly linearizable wait-free MWMR register from single-writer
    registers exists (Helmi–Higham–Woelfel); this implementation is tail
    strongly linearizable with the read preamble ending just before the
    return and the write preamble ending just before the write to
    [Val\[i\]] — both preambles are collects, hence effect-free. *)

val split : name:string -> n:int -> Transform.split

(** [make ~name ~n ~init] — methods ["read"] and ["write"]. *)
val make : name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** [make_k ~k ~name ~n ~init] is the transformed register. *)
val make_k : k:int -> name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t
