open Util
open Sim
open Sim.Proc.Syntax

let bit ~name j = Base_reg.id ~obj_name:name ~index:[ j ] "bit"

let make ~name ~bound : Obj_impl.t =
  if bound < 1 then invalid_arg "Max_register.make: bound must be >= 1";
  Obj_impl.pure_shared_memory ~name
    ~registers:(fun ~n:_ ->
      List.init bound (fun j ->
          {
            Base_reg.id = bit ~name j;
            init = Value.bool false;
            writers = None;
            readers = None;
          }))
    ~invoke:(fun ~self:_ ~meth ~arg ->
      match meth with
      | "write" ->
          let v = Value.to_int arg in
          if v < 0 || v >= bound then
            Fmt.invalid_arg "max register %s: value %d out of bounds" name v;
          (* level 0 is the initial value: setting its bit is a no-op *)
          if v = 0 then Proc.return Value.unit
          else
            let* () = Proc.write_reg (bit ~name v) (Value.bool true) in
            Proc.return Value.unit
      | "read" ->
          let rec scan j =
            if j <= 0 then Proc.return (Value.int 0)
            else
              let* b = Proc.read_reg (bit ~name j) in
              if Value.to_bool b then Proc.return (Value.int j) else scan (j - 1)
          in
          scan (bound - 1)
      | _ -> Fmt.invalid_arg "max register %s: unknown method %s" name meth)
