open Util
open Sim
open Sim.Proc.Syntax

let readers ~n ~writer = List.filter (fun p -> p <> writer) (List.init n Fun.id)
let val_reg ~name i = Base_reg.id ~obj_name:name ~index:[ i ] "val"
let report_reg ~name i j = Base_reg.id ~obj_name:name ~index:[ i; j ] "report"

let registers ~name ~init ~writer ~n =
  let rs = readers ~n ~writer in
  let vals =
    List.map
      (fun i ->
        {
          Base_reg.id = val_reg ~name i;
          init = Value.pair init (Value.int 0);
          writers = Some [ writer ];
          readers = Some [ i ];
        })
      rs
  in
  let reports =
    List.concat_map
      (fun i ->
        List.map
          (fun j ->
            {
              Base_reg.id = report_reg ~name i j;
              init = Value.pair init (Value.int 0);
              writers = Some [ i ];
              readers = Some [ j ];
            })
          rs)
      rs
  in
  vals @ reports

let seq_of pair = Value.to_int (snd (Value.to_pair pair))

(* Reader preamble: read Val[self] and column self of Report, keep the pair
   with the largest sequence number. *)
let read_collect ~name ~n ~writer ~self =
  let* own = Proc.read_reg (val_reg ~name self) in
  let rec go js best =
    match js with
    | [] -> Proc.return best
    | j :: rest ->
        let* r = Proc.read_reg (report_reg ~name j self) in
        go rest (if seq_of r > seq_of best then r else best)
  in
  go (readers ~n ~writer) own

let split ~name ~n ~writer : Transform.split =
  {
    preamble =
      (fun ~self ~meth ~arg:_ ->
        match meth with
        | "read" -> read_collect ~name ~n ~writer ~self
        | "write" -> Proc.return Value.unit (* empty preamble *)
        | m -> Fmt.invalid_arg "IL register %s: unknown method %s" name m);
    tail =
      (fun ~self ~meth ~arg locals ->
        match meth with
        | "read" ->
            if self = writer then
              Fmt.invalid_arg "IL register %s: the writer cannot read" name;
            (* announce the chosen pair on row self, then return its value *)
            let* () =
              Proc.note "adopted"
                (Value.pair (fst (Value.to_pair locals))
                   (Value.ts (seq_of locals) 0))
            in
            let* () =
              Proc.iter (readers ~n ~writer) (fun j ->
                  Proc.write_reg (report_reg ~name self j) locals)
            in
            Proc.return (fst (Value.to_pair locals))
        | "write" ->
            if self <> writer then
              Fmt.invalid_arg "IL register %s: process %d is not the writer" name
                self;
            let* nonce = Proc.fresh in
            let pair = Value.pair arg (Value.int (nonce + 1)) in
            let* () = Proc.note "adopted" (Value.pair arg (Value.ts (nonce + 1) 0)) in
            let* () =
              Proc.iter (readers ~n ~writer) (fun i ->
                  Proc.write_reg (val_reg ~name i) pair)
            in
            Proc.return Value.unit
        | m -> Fmt.invalid_arg "IL register %s: unknown method %s" name m);
  }

let make_with invoke ~name ~init ~writer : Obj_impl.t =
  {
    name;
    invoke;
    on_message = None;
    init_server = None;
    registers = (fun ~n -> registers ~name ~init ~writer ~n);
  }

let make ~name ~n ~writer ~init =
  make_with (Transform.base_invoke (split ~name ~n ~writer)) ~name ~init ~writer

let make_k ~k ~name ~n ~writer ~init =
  make_with (Transform.iterated_invoke ~k (split ~name ~n ~writer)) ~name ~init ~writer
