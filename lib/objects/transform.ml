open Sim.Proc.Syntax

type split = {
  preamble :
    self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Sim.Proc.t;
  tail :
    self:int ->
    meth:string ->
    arg:Util.Value.t ->
    Util.Value.t ->
    Util.Value.t Sim.Proc.t;
}

let preamble_end_label = "preamble_end"
let iter_label i = Printf.sprintf "preamble_%d_end" i
let chosen_label = "chosen_preamble"

let base_invoke split ~self ~meth ~arg =
  let* locals = split.preamble ~self ~meth ~arg in
  let* () = Sim.Proc.label preamble_end_label in
  split.tail ~self ~meth ~arg locals

let iterated_invoke ~k split ~self ~meth ~arg =
  if k < 1 then invalid_arg "Transform.iterated_invoke: k must be >= 1";
  let* results =
    Sim.Proc.repeat k (fun i ->
        let* locals = split.preamble ~self ~meth ~arg in
        let* () = Sim.Proc.label (iter_label (i + 1)) in
        Sim.Proc.return locals)
  in
  let* j = Sim.Proc.random ~kind:Sim.Proc.Object_random k in
  let* () = Sim.Proc.label chosen_label in
  split.tail ~self ~meth ~arg (List.nth results j)
