open Util
open Sim
open Sim.Proc.Syntax

let reg ~name i = Base_reg.id ~obj_name:name ~index:[ i ] "val"

let registers ~name ~init ~n =
  List.init n (fun i ->
      {
        Base_reg.id = reg ~name i;
        init = Value.pair init Value.ts_zero;
        writers = Some [ i ];
        readers = None;
      })

(* Collect every Val register and keep the pair with the largest timestamp. *)
let collect_max ~name ~n =
  let rec go j best =
    if j = n then Proc.return best
    else
      let* c = Proc.read_reg (reg ~name j) in
      let _, ts = Value.to_pair c in
      let _, bts = Value.to_pair best in
      go (j + 1) (if Value.ts_compare ts bts > 0 then c else best)
  in
  let* first = Proc.read_reg (reg ~name 0) in
  go 1 first

let split ~name ~n : Transform.split =
  {
    preamble = (fun ~self:_ ~meth:_ ~arg:_ -> collect_max ~name ~n);
    tail =
      (fun ~self ~meth ~arg locals ->
        let v, ts = Value.to_pair locals in
        match meth with
        | "read" ->
            let* () = Proc.note "adopted" (Value.pair v ts) in
            Proc.return v
        | "write" ->
            let t, _ = Value.to_pair ts in
            let ts' = Value.ts (Value.to_int t + 1) self in
            let* () = Proc.note "adopted" (Value.pair arg ts') in
            let* () = Proc.write_reg (reg ~name self) (Value.pair arg ts') in
            Proc.return Value.unit
        | _ -> Fmt.invalid_arg "VA register %s: unknown method %s" name meth);
  }

let make_with invoke ~name ~init : Obj_impl.t =
  {
    name;
    invoke;
    on_message = None;
    init_server = None;
    registers = (fun ~n -> registers ~name ~init ~n);
  }

let make ~name ~n ~init =
  make_with (Transform.base_invoke (split ~name ~n)) ~name ~init

let make_k ~k ~name ~n ~init =
  make_with (Transform.iterated_invoke ~k (split ~name ~n)) ~name ~init
