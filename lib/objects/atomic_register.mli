(** Atomic (strongly linearizable) reference register.

    Each method performs exactly one base-register access, so its
    linearization point is that single indivisible step: the object is
    strongly linearizable, and by Theorem 2.3 a program using it has the same
    outcome distribution as with a truly atomic register. It is the baseline
    [O_a] of all experiments. *)

(** [make ~name ~init] is a multi-writer multi-reader atomic register.
    Methods: ["read"] and ["write"]. *)
val make : name:string -> init:Util.Value.t -> Sim.Obj_impl.t
