open Util

let make ~name ~init : Sim.Obj_impl.t =
  let rid = Sim.Base_reg.id ~obj_name:name "cell" in
  Sim.Obj_impl.pure_shared_memory ~name
    ~registers:(fun ~n:_ ->
      [ { Sim.Base_reg.id = rid; init; writers = None; readers = None } ])
    ~invoke:(fun ~self:_ ~meth ~arg ->
      match meth with
      | "read" -> Sim.Proc.read_reg rid
      | "write" ->
          Sim.Proc.bind (Sim.Proc.write_reg rid arg) (fun () ->
              Sim.Proc.return Value.unit)
      | _ -> Fmt.invalid_arg "atomic register %s: unknown method %s" name meth)
