(** The Israeli–Li single-writer multi-reader register from single-writer
    single-reader registers (Section 5.4 of the paper).

    The unique [writer] writes [(v, seq)] with an increasing sequence number
    into one SWSR register [Val\[i\]] per reader [i]. Readers communicate
    through a matrix [Report\[i\]\[j\]] of SWSR registers: reader [i] writes
    row [i] and reads column [i]. A [read] at reader [i] collects [Val\[i\]]
    and column [i] of [Report], picks the pair with the largest sequence
    number, writes it to row [i], and returns the value — the row writes let
    later readers see at least as new a value, preventing new/old
    inversions between non-overlapping reads by different readers.

    The implementation is not strongly linearizable (mimicking the ABD
    counter-example); it is tail strongly linearizable with the read
    preamble ending just before the first [Report] write and the write
    preamble empty — the collect is effect-free, so the transformation
    applies (to reads; writes are unchanged up to the trivial random step). *)

(** [readers ~n ~writer] lists the reader processes (everyone but the
    writer). *)
val readers : n:int -> writer:int -> int list

val split : name:string -> n:int -> writer:int -> Transform.split

(** [make ~name ~n ~writer ~init] — methods ["read"] (readers only) and
    ["write"] (writer only). *)
val make : name:string -> n:int -> writer:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** [make_k ~k ~name ~n ~writer ~init] is the transformed register. *)
val make_k :
  k:int -> name:string -> n:int -> writer:int -> init:Util.Value.t -> Sim.Obj_impl.t
