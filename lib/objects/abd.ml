open Util
open Sim
open Sim.Proc.Syntax

let quorum n = (n / 2) + 1

(* Server role (lines 11-12 and 18-20 of Algorithm 3). State: Pair (val, ts). *)
let handler ~self:_ ~state ~src ~body : Obj_impl.handler_result option =
  let v, ts = Value.to_pair state in
  match Message.tag_of body with
  | "query" ->
      let sn = Message.payload_of body in
      Some { state; out = [ (src, Message.tagged "reply" (Value.triple v ts sn)) ] }
  | "update" ->
      let nv, nts, sn = Value.to_triple (Message.payload_of body) in
      let state' =
        if Value.ts_compare nts ts > 0 then Value.pair nv nts else state
      in
      Some { state = state'; out = [ (src, Message.tagged "ack" sn) ] }
  | _ -> None (* replies and acks are client messages *)

(* Lines 5-10: broadcast a query, await a majority of matching replies, and
   return the (value, timestamp) pair with the largest timestamp. *)
let query_phase ~name ~n =
  let* sn = Proc.fresh in
  let* () =
    Proc.broadcast (Message.make ~obj_name:name (Message.tagged "query" (Value.int sn)))
  in
  let matches (m : Message.t) =
    m.obj_name = name
    && Message.tag_of m.body = "reply"
    &&
    let _, _, sn' = Value.to_triple (Message.payload_of m.body) in
    Value.to_int sn' = sn
  in
  let rec collect count best =
    if count >= quorum n then Proc.return best
    else
      let* m = Proc.recv ~descr:(name ^ ".reply") matches in
      let v, ts, _ = Value.to_triple (Message.payload_of m.body) in
      let best' =
        let _, bts = Value.to_pair best in
        if Value.ts_compare ts bts > 0 then Value.pair v ts else best
      in
      collect (count + 1) best'
  in
  collect 0 (Value.pair Value.none (Value.ts (-1) (-1)))

(* Lines 13-16: broadcast the update and await a majority of acks. *)
let update_phase ~name ~n v ts =
  let* sn = Proc.fresh in
  let* () =
    Proc.broadcast
      (Message.make ~obj_name:name
         (Message.tagged "update" (Value.triple v ts (Value.int sn))))
  in
  let matches (m : Message.t) =
    m.obj_name = name
    && Message.tag_of m.body = "ack"
    && Value.to_int (Message.payload_of m.body) = sn
  in
  let rec collect count =
    if count >= quorum n then Proc.return ()
    else
      let* _ = Proc.recv ~descr:(name ^ ".ack") matches in
      collect (count + 1)
  in
  collect 0

let split ~name ~n : Transform.split =
  {
    preamble = (fun ~self:_ ~meth:_ ~arg:_ -> query_phase ~name ~n);
    tail =
      (fun ~self ~meth ~arg locals ->
        let v, ts = Value.to_pair locals in
        match meth with
        | "read" ->
            (* write-back, then return the value read (lines 22-24) *)
            let* () = Proc.note "adopted" (Value.pair v ts) in
            let* () = update_phase ~name ~n v ts in
            Proc.return v
        | "write" ->
            (* bump the integer part, tag with own id (lines 26-28) *)
            let t, _ = Value.to_pair ts in
            let ts' = Value.ts (Value.to_int t + 1) self in
            let* () = Proc.note "adopted" (Value.pair arg ts') in
            let* () = update_phase ~name ~n arg ts' in
            Proc.return Value.unit
        | _ -> Fmt.invalid_arg "ABD %s: unknown method %s" name meth);
  }

let make_with invoke ~name ~init : Obj_impl.t =
  {
    name;
    invoke;
    on_message = Some handler;
    init_server = Some (fun ~n:_ ~self:_ -> Value.pair init Value.ts_zero);
    registers = (fun ~n:_ -> []);
  }

let make ~name ~n ~init =
  make_with (Transform.base_invoke (split ~name ~n)) ~name ~init

let make_k ~k ~name ~n ~init =
  make_with (Transform.iterated_invoke ~k (split ~name ~n)) ~name ~init

(* Single-writer variant: the unique writer skips the query phase and uses a
   locally increasing sequence number (a runtime nonce: globally increasing,
   hence increasing at the writer). Its preamble is empty; the read is as in
   the multi-writer version. *)
let sw_split ~name ~n ~writer : Transform.split =
  let mw = split ~name ~n in
  {
    preamble =
      (fun ~self ~meth ~arg ->
        match meth with
        | "write" -> Proc.return Value.unit
        | _ -> mw.preamble ~self ~meth ~arg);
    tail =
      (fun ~self ~meth ~arg locals ->
        match meth with
        | "write" ->
            if self <> writer then
              Fmt.invalid_arg "ABD(sw) %s: process %d is not the writer" name self;
            let* seq = Proc.fresh in
            let* () = update_phase ~name ~n arg (Value.ts (seq + 1) writer) in
            Proc.return Value.unit
        | _ -> mw.tail ~self ~meth ~arg locals);
  }

let make_single_writer ~name ~n ~writer ~init =
  make_with (Transform.base_invoke (sw_split ~name ~n ~writer)) ~name ~init

let make_single_writer_k ~k ~name ~n ~writer ~init =
  make_with (Transform.iterated_invoke ~k (sw_split ~name ~n ~writer)) ~name ~init

let make_no_writeback ~name ~n ~init =
  let broken : Transform.split =
    let base = split ~name ~n in
    {
      base with
      tail =
        (fun ~self ~meth ~arg locals ->
          match meth with
          | "read" ->
              (* line 23's updatePhase is skipped: only regular *)
              let v, _ = Value.to_pair locals in
              Proc.return v
          | _ -> base.tail ~self ~meth ~arg locals);
    }
  in
  make_with (Transform.base_invoke broken) ~name ~init
