open Util
open Sim
open Sim.Proc.Syntax

let reg ~name i = Base_reg.id ~obj_name:name ~index:[ i ] "m"

let registers ~name ~init ~n =
  List.init n (fun i ->
      {
        Base_reg.id = reg ~name i;
        init = Value.triple init (Value.int 0) (Value.list (List.init n (fun _ -> init)));
        writers = Some [ i ];
        readers = None;
      })

(* One collect: read M[0..n-1] in index order. *)
let collect ~name ~n =
  Proc.repeat n (fun j ->
      let+ c = Proc.read_reg (reg ~name j) in
      Value.to_triple c)

let seq_of (_, s, _) = Value.to_int s
let value_of (v, _, _) = v
let view_of (_, _, w) = w

(* The scan body: repeat collects until two agree or someone moved twice. *)
let scan_body ~name ~n =
  let rec go prev moved =
    let* c = collect ~name ~n in
    match prev with
    | None -> go (Some c) moved
    | Some p ->
        let changed =
          List.filteri (fun j _ -> seq_of (List.nth p j) <> seq_of (List.nth c j)) c
        in
        if changed = [] then Proc.return (Value.list (List.map value_of c))
        else begin
          let moved' =
            List.mapi
              (fun j m ->
                if seq_of (List.nth p j) <> seq_of (List.nth c j) then m + 1 else m)
              moved
          in
          (* a process seen moving twice performed a complete update inside
             our interval: borrow its embedded view *)
          match
            List.find_opt
              (fun j -> List.nth moved' j >= 2)
              (List.init n Fun.id)
          with
          | Some j -> Proc.return (view_of (List.nth c j))
          | None -> go (Some c) moved'
        end
  in
  go None (List.init n (fun _ -> 0))

let split ~name ~n : Transform.split =
  {
    preamble =
      (fun ~self:_ ~meth:_ ~arg:_ ->
        (* both methods' preamble is a full (embedded) scan *)
        scan_body ~name ~n);
    tail =
      (fun ~self ~meth ~arg view ->
        match meth with
        | "scan" -> Proc.return view
        | "update" ->
            let idx, v = Value.to_pair arg in
            let i = Value.to_int idx in
            if i <> self then
              Fmt.invalid_arg "snapshot %s: process %d updating component %d" name
                self i;
            let* cur = Proc.read_reg (reg ~name i) in
            let seq = seq_of (Value.to_triple cur) in
            let* () =
              Proc.write_reg (reg ~name i)
                (Value.triple v (Value.int (seq + 1)) view)
            in
            Proc.return Value.unit
        | _ -> Fmt.invalid_arg "snapshot %s: unknown method %s" name meth);
  }

let make_with invoke ~name ~init : Obj_impl.t =
  {
    name;
    invoke;
    on_message = None;
    init_server = None;
    registers = (fun ~n -> registers ~name ~init ~n);
  }

let make ~name ~n ~init =
  make_with (Transform.base_invoke (split ~name ~n)) ~name ~init

let make_k ~k ~name ~n ~init =
  make_with (Transform.iterated_invoke ~k (split ~name ~n)) ~name ~init
