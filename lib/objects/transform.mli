(** The preamble-iterating transformation (Algorithm 2 of the paper).

    An object implementation whose every method factors into an effect-free
    {e preamble} (computing some local values) followed by a {e tail} (which
    alone performs effectful steps) is represented as a {!split}. The
    transformation [O -> O^k] replaces each method body

    {[ locals := PREAMBLE(v); TAIL(locals) ]}

    by

    {[ for i = 1 to k do locals_[i] := PREAMBLE(v) done;
       j := random([1..k]);  (* an "object random step" *)
       TAIL(locals_[j]) ]}

    Theorem 4.1: when preambles are effect-free, [O^k] is equivalent to [O];
    Theorem 4.2 quantifies how the extra randomization blunts a strong
    adversary. *)

type split = {
  preamble :
    self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Sim.Proc.t;
      (** effect-free prefix; its result is the [locals] value *)
  tail :
    self:int ->
    meth:string ->
    arg:Util.Value.t ->
    Util.Value.t ->
    Util.Value.t Sim.Proc.t;
      (** rest of the method, consuming the chosen [locals] *)
}

(** [base_invoke split] is the original method body: one preamble, the
    control-point label ["preamble_end"] (the point Π(M) of the preamble
    mapping), then the tail. *)
val base_invoke :
  split -> self:int -> meth:string -> arg:Util.Value.t -> Util.Value.t Sim.Proc.t

(** [iterated_invoke ~k split] is the transformed method body [M^k]: [k]
    preamble iterations (each ending at label ["preamble_<i>_end"]), an
    object random step choosing the iteration, label ["chosen_preamble"],
    then the tail. Requires [k >= 1]. *)
val iterated_invoke :
  k:int ->
  split ->
  self:int ->
  meth:string ->
  arg:Util.Value.t ->
  Util.Value.t Sim.Proc.t

(** [preamble_end_label] = ["preamble_end"]. *)
val preamble_end_label : string

(** [iter_label i] = ["preamble_<i>_end"] (1-based, as in Algorithm 2). *)
val iter_label : int -> string

(** [chosen_label] = ["chosen_preamble"]. *)
val chosen_label : string
