(** A wait-free bounded max register from multi-writer registers.

    Section 6 of the paper surveys strong linearizability: "the only known
    strongly-linearizable wait-free implementation is of a bounded max
    register (using multi-writer registers)" (Helmi, Higham, Woelfel). This
    is that object, in its simplest unary form: one boolean multi-writer
    register per value level.

    - [write v] sets bit [v] — a single indivisible base step, so the
      write's linearization point is fixed when it happens;
    - [read] scans the bits from the highest level downwards and returns
      the first set level (0 if none). Scanning downwards is what makes the
      object strongly linearizable: once the read passes level [j] without
      seeing it set, any later write of [j' <= j]... is still allowed to be
      linearized after the read, and the read's linearization point can be
      fixed at the step where it found its answer, independent of the
      future.

    Because writes are single steps, the object's preamble mapping is the
    trivial one and the preamble-iterating transformation leaves it
    unchanged (Section 6: "applying the preamble-iterating transformation
    results in no change"). The object serves as the strongly linearizable
    baseline in tests: by Theorem 2.3, programs using it have atomic-object
    outcome distributions. *)

(** [make ~name ~bound] is a max register over values [0 .. bound-1].
    Methods: ["read"] and ["write"] with an [Int] argument in range. *)
val make : name:string -> bound:int -> Sim.Obj_impl.t
