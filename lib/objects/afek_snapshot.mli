(** The wait-free atomic snapshot of Afek, Attiya, Dolev, Gafni, Merritt and
    Shavit, from single-writer registers (Section 5.2 of the paper).

    One single-writer register [M\[i\]] per process holds a triple
    [(value, seq, view)]. [scan] performs successive collects until either
    two consecutive collects agree (a {e direct} scan) or some process is
    seen to move twice, in which case that process's embedded [view] — a
    snapshot it took entirely within the scanner's interval — is {e borrowed}
    and returned. [update i v] first scans, then atomically writes
    [(v, seq+1, view)] to [M\[i\]].

    The object is linearizable and wait-free but not strongly linearizable
    (Golab–Higham–Woelfel); it is tail strongly linearizable with the scan's
    preamble ending just before it returns and the update's preamble
    covering its embedded scan (both effect-free: reads only), so the
    preamble-iterating transformation applies. *)

(** The preamble/tail factoring used by the transformation: both methods'
    preamble is a full scan; the update's tail performs the single atomic
    write, the scan's tail just returns. *)
val split : name:string -> n:int -> Transform.split

(** [make ~name ~n ~init] is the snapshot object for [n] processes.
    Methods: ["scan"] (argument ignored; returns the [List] of components)
    and ["update"] with argument [Pair (Int i, v)] where [i] must be the
    invoking process. *)
val make : name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** [make_k ~k ~name ~n ~init] is the transformed [Snapshot^k]. *)
val make_k : k:int -> name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t
