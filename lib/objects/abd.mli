(** The ABD register simulation in a message-passing system.

    Multi-writer variant (Lynch–Shvartsman [20], Algorithm 3 in the paper):
    both [read] and [write] start with a {e query} phase — broadcast
    ["query"], wait for a majority of ["reply"] messages, keep the
    (value, timestamp) pair with the largest timestamp — followed by an
    {e update} phase — broadcast ["update"], wait for a majority of ["ack"]s.
    A reader writes back the value it read; a writer announces the new value
    under timestamp [(t+1, self)].

    Every process also runs the server role: it answers queries with its
    current (value, timestamp) pair and applies updates with larger
    timestamps (the {!Sim.Obj_impl.t} message handler).

    The object is linearizable but famously {e not} strongly linearizable
    [6, 8]; it {e is} tail strongly linearizable w.r.t. the preamble mapping
    that ends preambles right after the query phase (Theorem 5.1), and the
    query phase is effect-free, so the preamble-iterating transformation
    applies — [make_k] is Algorithm 4's [ABD^k].

    The single-writer variant ([3]) lets the unique writer skip the query
    phase and use a locally increasing sequence number (here a runtime
    nonce, which is globally increasing and therefore increasing at the
    writer). *)

(** [quorum n] is the majority size [n/2 + 1] used by both phases. *)
val quorum : int -> int

(** The preamble/tail factoring of ABD: the preamble of both methods is the
    query phase, the tail is the update phase (Section 5.1). *)
val split : name:string -> n:int -> Transform.split

(** [make ~name ~n ~init] is the plain multi-writer ABD register for [n]
    processes. Methods: ["read"] (returns the value) and ["write"] (returns
    [Unit]). *)
val make : name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** [make_k ~k ~name ~n ~init] is [ABD^k] (Algorithm 4): each operation runs
    [k] query phases and uses a uniformly chosen one. [make_k ~k:1] performs
    the degenerate object random step [random(\[1..1\])], as Algorithm 2
    prescribes. *)
val make_k : k:int -> name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** Single-writer original ABD [3]: only [writer] may invoke ["write"]; the
    write's preamble is empty. *)
val make_single_writer :
  name:string -> n:int -> writer:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** Transformed single-writer variant. *)
val make_single_writer_k :
  k:int -> name:string -> n:int -> writer:int -> init:Util.Value.t -> Sim.Obj_impl.t

(** Negative control: ABD with the reader's write-back (line 23 of
    Algorithm 3) removed. The result is {e regular} but not linearizable —
    two sequential reads can observe a concurrent write in new-then-old
    order. It exists so the test suite can demonstrate the linearizability
    checker catching a real protocol bug. *)
val make_no_writeback : name:string -> n:int -> init:Util.Value.t -> Sim.Obj_impl.t
