(* The in-place presentation of {!Weakener_va}: the same game, packed
   into one mutable int array and solved by {!Mdp.Solver.Make_inplace}.
   Every mutation goes through a trail journal of (cell, old value)
   pairs — the constraint-solver idiom — so exploring a child is
   do-move / recurse / rewind instead of allocating a successor record
   tree per edge. The pure module stays the specification: move ids,
   branch orders, probabilities and the canonical encoding here must
   agree with it exactly (the lockstep tests drive both presentations
   through identical walks and compare encodings byte-for-byte), which
   makes the two solvers' values bit-identical.

   Cell layout ([k] fixed at [init]):

     0                cread present (0/1 — [Some (-1)] is reachable when
                      p2 reads C before the coin was written, so -1
                      cannot double as the absence marker)
     1                cread value
     2, 3             coin, creg (-1 = unset)
     4 + 3p ..        Val[p] as (value, ts, ts-pid), p in 0..2
     13 + p*psz ..    process p's block, psz = 17 + 3k:
       +0  pc                +7..9   current collect's best (v, t, p)
       +1  op present        +10..12 write payload (v, t, p)
       +2  kind (0 R, 1 W)   +13     #results
       +3  write value       +14     #reads
       +5  collect index     +15..16 p2's C-read outcomes
       +6  collect position  +17..   results, sorted, 3 ints each

   Completed ops leave their block's fields stale rather than zeroing
   them: [start_op] rewrites every field it reads and the encoder only
   walks live fields, so stale cells can neither leak into a key nor
   into a transition. *)

module Game = struct
  type state = {
    k : int;
    psz : int;  (* process block stride: 17 + 3k *)
    cells : int array;
    mutable j_idx : int array;  (* trail: cell index / old value pairs *)
    mutable j_old : int array;
    mutable j_len : int;
  }

  type undo = int  (* trail watermark *)

  let c_cread_p = 0
  let c_cread_v = 1
  let c_coin = 2
  let c_creg = 3
  let val_base p = 4 + (3 * p)
  let proc_base s p = 13 + (p * s.psz)

  (* process-block offsets *)
  let o_pc = 0
  let o_op = 1
  let o_kind = 2
  let o_wval = 3
  let o_phase = 4
  let o_idx = 5
  let o_pos = 6
  let o_best = 7
  let o_payload = 10
  let o_nres = 13
  let o_nreads = 14
  let o_reads = 15
  let o_res = 17
  let ph_choose = 1
  let ph_write = 2

  let[@inline] get s i = Array.unsafe_get s.cells i

  let grow_journal s =
    let n = Array.length s.j_idx in
    let idx = Array.make (2 * n) 0 and old = Array.make (2 * n) 0 in
    Array.blit s.j_idx 0 idx 0 n;
    Array.blit s.j_old 0 old 0 n;
    s.j_idx <- idx;
    s.j_old <- old

  let[@inline] set s i v =
    let old = Array.unsafe_get s.cells i in
    if old <> v then begin
      if s.j_len = Array.length s.j_idx then grow_journal s;
      Array.unsafe_set s.j_idx s.j_len i;
      Array.unsafe_set s.j_old s.j_len old;
      s.j_len <- s.j_len + 1;
      Array.unsafe_set s.cells i v
    end

  let checkpoint s = s.j_len

  (* rewind newest-first so a cell trailed twice gets its oldest value *)
  let restore s w =
    for l = s.j_len - 1 downto w do
      s.cells.(s.j_idx.(l)) <- s.j_old.(l)
    done;
    s.j_len <- w

  let outcome_impossible s =
    get s c_coin >= 0
    &&
    let b2 = proc_base s 2 in
    let n = get s (b2 + o_nreads) in
    n >= 1
    && (get s (b2 + o_reads) <> get s c_coin
       || (n >= 2 && get s (b2 + o_reads + 1) <> 1 - get s c_coin))

  let live s p =
    let b = proc_base s p in
    get s (b + o_op) = 1
    ||
    match (p, get s (b + o_pc)) with
    | 0, 0 -> true
    | 1, (0 | 1 | 2) -> true
    | 2, (0 | 1 | 2) -> true
    | _ -> false

  let moves s =
    if get s (proc_base s 2 + o_pc) >= 3 then 0
    else if outcome_impossible s then 0
    else
      (if live s 0 then 1 else 0)
      lor (if live s 1 then 2 else 0)
      lor (if live s 2 then 4 else 0)

  let branches s p =
    let b = proc_base s p in
    if get s (b + o_op) = 1 then
      if get s (b + o_phase) = ph_choose then get s (b + o_nres) else 0
    else if p = 1 && get s (b + o_pc) = 1 then 2
    else 0

  (* same float expressions as the pure distributions: 1/|results| for
     the object's uniform choice, 0.5 for the coin *)
  let prob s p _j =
    let b = proc_base s p in
    if get s (b + o_op) = 1 then 1.0 /. float_of_int (get s (b + o_nres))
    else 0.5

  let ts_lt t1 p1 t2 p2 = t1 < t2 || (t1 = t2 && p1 < p2)

  let cmp_vts v1 t1 p1 v2 t2 p2 =
    if v1 <> v2 then if v1 < v2 then -1 else 1
    else if t1 <> t2 then if t1 < t2 then -1 else 1
    else if p1 < p2 then -1
    else if p1 > p2 then 1
    else 0

  let start_op s b kind wval =
    set s (b + o_op) 1;
    set s (b + o_kind) kind;
    set s (b + o_wval) wval;
    set s (b + o_phase) 0;
    set s (b + o_idx) 0;
    set s (b + o_pos) 0;
    set s (b + o_best) (-1);
    set s (b + o_best + 1) 0;
    set s (b + o_best + 2) 0;
    set s (b + o_nres) 0

  (* sorted insert at the [List.sort]-stable position: before the first
     existing entry that is >= the new one (equal entries are identical
     triples, so stability is only about matching the spec exactly) *)
  let insert_result s b v t p =
    let n = get s (b + o_nres) in
    let pos = ref 0 in
    while
      !pos < n
      &&
      let e = b + o_res + (3 * !pos) in
      cmp_vts (get s e) (get s (e + 1)) (get s (e + 2)) v t p < 0
    do
      incr pos
    done;
    for r = n - 1 downto !pos do
      let src = b + o_res + (3 * r) and dst = b + o_res + (3 * (r + 1)) in
      set s dst (get s src);
      set s (dst + 1) (get s (src + 1));
      set s (dst + 2) (get s (src + 2))
    done;
    let e = b + o_res + (3 * !pos) in
    set s e v;
    set s (e + 1) t;
    set s (e + 2) p;
    set s (b + o_nres) (n + 1)

  let apply s ~move:p ~branch:j =
    let b = proc_base s p in
    if get s (b + o_op) = 1 then
      match get s (b + o_phase) with
      | 0 ->
          (* one single-step cell read of the current collect *)
          let pos = get s (b + o_pos) in
          let vb = val_base pos in
          let cv = get s vb and ct = get s (vb + 1) and cp = get s (vb + 2) in
          let bt = get s (b + o_best + 1) and bp = get s (b + o_best + 2) in
          let nv, nt, np =
            if ts_lt bt bp ct cp then (cv, ct, cp)
            else (get s (b + o_best), bt, bp)
          in
          if pos + 1 < 3 then begin
            set s (b + o_pos) (pos + 1);
            set s (b + o_best) nv;
            set s (b + o_best + 1) nt;
            set s (b + o_best + 2) np
          end
          else begin
            insert_result s b nv nt np;
            if get s (b + o_idx) + 1 < s.k then begin
              set s (b + o_idx) (get s (b + o_idx) + 1);
              set s (b + o_pos) 0;
              set s (b + o_best) (-1);
              set s (b + o_best + 1) 0;
              set s (b + o_best + 2) 0
            end
            else set s (b + o_phase) ph_choose
          end
      | 1 ->
          (* the object's uniform choice: branch j picks results[j] *)
          let e = b + o_res + (3 * j) in
          if get s (b + o_kind) = 0 then begin
            let n = get s (b + o_nreads) in
            set s (b + o_reads + n) (get s e);
            set s (b + o_nreads) (n + 1);
            set s (b + o_pc) (get s (b + o_pc) + 1);
            set s (b + o_op) 0
          end
          else begin
            set s (b + o_phase) ph_write;
            set s (b + o_payload) (get s (b + o_wval));
            set s (b + o_payload + 1) (get s (e + 1) + 1);
            set s (b + o_payload + 2) p
          end
      | _ ->
          (* the single Val[p] write, then the op completes *)
          let vb = val_base p in
          set s vb (get s (b + o_payload));
          set s (vb + 1) (get s (b + o_payload + 1));
          set s (vb + 2) (get s (b + o_payload + 2));
          set s (b + o_pc) (get s (b + o_pc) + 1);
          set s (b + o_op) 0
    else
      match (p, get s (b + o_pc)) with
      | 0, 0 -> start_op s b 1 0
      | 1, 0 -> start_op s b 1 1
      | 1, 1 ->
          (* coin flip: branch 0 writes 0, branch 1 writes 1 *)
          set s c_coin j;
          set s (b + o_pc) 2
      | 1, 2 ->
          set s c_creg (get s c_coin);
          set s (b + o_pc) 3
      | 2, (0 | 1) -> start_op s b 0 0
      | 2, 2 ->
          set s c_cread_p 1;
          set s c_cread_v (get s c_creg);
          set s (b + o_pc) 3
      | _ -> assert false

  let terminal_value s =
    if get s c_cread_p = 1 then begin
      let c = get s c_cread_v in
      if c = 0 || c = 1 then begin
        let b2 = proc_base s 2 in
        if
          get s (b2 + o_nreads) = 2
          && get s (b2 + o_reads) = c
          && get s (b2 + o_reads + 1) = 1 - c
        then 1.0
        else 0.0
      end
      else 0.0
    end
    else 0.0

  (* Byte-identical to {!Weakener_va.Game.encode_into}: same fields in
     the same order through the same {!Mdp.Key} combinators ([bool]
     writes the option-presence byte — both are a raw 0/1). *)
  let enc_vts s kb i =
    Mdp.Key.int kb (get s i);
    Mdp.Key.int kb (get s (i + 1));
    Mdp.Key.int kb (get s (i + 2))

  let enc_results s kb b =
    let n = get s (b + o_nres) in
    Mdp.Key.int kb n;
    for r = 0 to n - 1 do
      enc_vts s kb (b + o_res + (3 * r))
    done

  let enc_pstate s kb b =
    Mdp.Key.int kb (get s (b + o_pc));
    (if get s (b + o_op) = 0 then Mdp.Key.bool kb false
     else begin
       Mdp.Key.bool kb true;
       (if get s (b + o_kind) = 0 then Mdp.Key.int kb 0
        else begin
          Mdp.Key.int kb 1;
          Mdp.Key.int kb (get s (b + o_wval))
        end);
       match get s (b + o_phase) with
       | 0 ->
           Mdp.Key.int kb 0;
           Mdp.Key.int kb (get s (b + o_idx));
           enc_results s kb b;
           Mdp.Key.int kb (get s (b + o_pos));
           enc_vts s kb (b + o_best)
       | 1 ->
           Mdp.Key.int kb 1;
           enc_results s kb b
       | _ ->
           Mdp.Key.int kb 2;
           enc_vts s kb (b + o_payload)
     end);
    let n = get s (b + o_nreads) in
    Mdp.Key.int kb n;
    for r = 0 to n - 1 do
      Mdp.Key.int kb (get s (b + o_reads + r))
    done

  let encode_into s kb =
    Mdp.Key.int kb s.k;
    enc_vts s kb (val_base 0);
    enc_vts s kb (val_base 1);
    enc_vts s kb (val_base 2);
    enc_pstate s kb (proc_base s 0);
    enc_pstate s kb (proc_base s 1);
    enc_pstate s kb (proc_base s 2);
    Mdp.Key.int kb (get s c_coin);
    Mdp.Key.int kb (get s c_creg);
    if get s c_cread_p = 0 then Mdp.Key.bool kb false
    else begin
      Mdp.Key.bool kb true;
      Mdp.Key.int kb (get s c_cread_v)
    end
end

module S = Mdp.Solver.Make_inplace (Game)

let init ~k : Game.state =
  if k < 1 then invalid_arg "Weakener_va_packed.init: k >= 1 required";
  let psz = 17 + (3 * k) in
  let cells = Array.make (13 + (3 * psz)) 0 in
  cells.(Game.c_coin) <- -1;
  cells.(Game.c_creg) <- -1;
  (* Val cells start at bottom = (-1, (0, 0)) *)
  for p = 0 to 2 do
    cells.(Game.val_base p) <- -1
  done;
  {
    Game.k;
    psz;
    cells;
    j_idx = Array.make 64 0;
    j_old = Array.make 64 0;
    j_len = 0;
  }

let copy (s : Game.state) : Game.state =
  {
    s with
    Game.cells = Array.copy s.Game.cells;
    j_idx = Array.copy s.Game.j_idx;
    j_old = Array.copy s.Game.j_old;
  }

let equal (a : Game.state) (b : Game.state) =
  a.Game.k = b.Game.k && a.Game.cells = b.Game.cells

let bad_probability ?memo_budget ?prune ~k () =
  S.value ?memo_budget ?prune (init ~k)

let store_stats () = S.store_stats ()
let explored_states () = S.explored ()
let reset () = S.reset ()
let solver_stats () = S.stats ()
let set_progress = S.set_progress
