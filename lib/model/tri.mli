(** Immutable 3-element containers (one slot per process of the weakener),
    with structural equality and hashing — the building block of the
    explicit-state models. *)

type 'a t = 'a * 'a * 'a

val make : 'a -> 'a t
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val to_list : 'a t -> 'a list
val for_all : ('a -> bool) -> 'a t -> bool
val indices : int list
