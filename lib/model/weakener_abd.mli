(** Exact game model of the weakener program over [ABD^k] registers
    (Appendices A.2 and A.3 of the paper), at full message granularity.

    Register [R] is the multi-writer ABD of Algorithm 3 transformed per
    Algorithm 4: each operation runs [k] query phases (broadcast query,
    adversary-chosen delivery of queries and replies, majority wait), a
    uniformly random choice of one phase's result (a chance node — the
    object random step), then the update phase (broadcast update, majority
    of acks). Every process is also an ABD server. Update messages that are
    still in transit when their operation completes remain deliverable —
    exactly the straggler deliveries Figure 1's adversary exploits.

    Register [C] is modelled atomically. This loses no adversary power: the
    only use of [C] is [p1]'s single write and [p2]'s single read, and the
    adversary maximizes its winning probability by making the read return
    the coin value, which atomic [C] already permits (Figure 1's adversary
    also just orders the [C] read after the [C] write). The paper's A.3
    analysis likewise conditions only on [R]'s query phases.

    Solving the game (memoized expectimax, {!Mdp.Solver}) yields the exact
    adversary-optimal probability that [p2] loops forever:

    - [k = 1] (plain ABD): 1 — reproducing Figure 1 / A.2;
    - [k = 2]: at most 5/8 by the paper's refined analysis (A.3.2), at
      least [1 - 7/8 = 1/8]-complement by the generic bound; the solver
      gives the exact value;
    - as [k] grows the value approaches the atomic 1/2 (Theorem 4.2). *)

type k = int

module Game : Mdp.Solver.GAME

(** [init ?atomic_c ?servers ~k ()] is the initial state for [ABD^k].
    [atomic_c] (default [true]) selects whether register [C] is atomic or a
    second ABD^k instance; the former is the documented value-preserving
    reduction, the latter validates it. [servers] (default 3, minimum 3) is
    the number of ABD replicas: the three program processes are servers
    0-2, any further servers are pure replicas, and quorums are majorities
    of [servers]. Requires [k >= 1]. *)
val init : ?atomic_c:bool -> ?servers:int -> k:k -> unit -> Game.state

(** [bad_probability ?atomic_c ?jobs ~k ()] solves the game for [ABD^k]:
    the exact adversary-optimal probability that [p2] loops forever.
    Exponential in [k]; practical for [k <= 4] (atomic [C]) and [k <= 2]
    (ABD [C]). [jobs] (default 1) solves the root frontier on that many
    domains via {!Mdp.Solver.Make.value_par}; the value is bit-identical
    at every job count. [prune] (default [false]) enables the Theorem 4.2
    interval branch-and-bound cuts ({!Mdp.Solver.Make.value}'s [~prune]);
    the value is unchanged, the explored set only shrinks.
    [memo_budget] (or [BLUNTING_MEMO_BUDGET]) caps the memo's RAM,
    spilling resolved states to disk past it — values and counts stay
    bit-identical (see the solver's out-of-core section). *)
val bad_probability :
  ?pool:Par.Pool.t ->
  ?memo_budget:int ->
  ?atomic_c:bool ->
  ?servers:int ->
  ?jobs:int ->
  ?prune:bool ->
  k:k ->
  unit ->
  float

(** [best_move s] is a move attaining the optimal value at [s] (an optimal
    adversary strategy, computable after [bad_probability] filled the memo
    table or directly — the solver recurses as needed). *)
val best_move : Game.state -> Game.move option

(** [explored_states ()] is the cumulative number of memoized states. *)
val explored_states : unit -> int

(** [pruned_subtrees ()] is the number of branch-and-bound cuts taken
    since the last [reset] (0 unless [bad_probability ~prune:true]). *)
val pruned_subtrees : unit -> int

(** [reset ()] clears the solver's memo table (states are keyed by the full
    state including [k], so solving several [k] in sequence is safe; reset
    only frees memory). *)
val reset : unit -> unit

(** [solver_stats ()] is the underlying solver instance's work counters
    (states, memo hits/misses, max depth) since the last [reset] — the
    cost side of the cost-vs-[k] trade-off reported by the bench harness. *)
val solver_stats : unit -> Mdp.Solver.stats

(** [store_stats ()] is the out-of-core memo's telemetry once a
    [memo_budget] armed it — [None] on purely in-RAM solves (see
    {!Mdp.Solver.Make.store_stats}). *)
val store_stats : unit -> Store.Memo.stats option

(** [last_par_stats ()] is the per-domain and cross-domain telemetry of
    the most recent parallel [bad_probability] (see
    {!Mdp.Solver.Make.last_par_stats}): per-domain memo hit rates and the
    exact duplicated-work percentage the bench PAR section publishes. *)
val last_par_stats : unit -> Mdp.Solver.par_stats option

(** [set_progress ?interval_states hook] installs a live progress hook on
    the underlying solver (see {!Mdp.Solver.Make.set_progress}) — the
    multi-minute solves at [k >= 3] otherwise emit nothing until done. *)
val set_progress :
  ?interval_states:int -> (Mdp.Solver.progress -> unit) option -> unit
