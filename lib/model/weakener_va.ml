module Game = struct
  type ts = int * int
  type vts = int * ts (* value (-1 = ⊥), timestamp *)

  (* a collect in progress: next cell to read and the largest pair so far *)
  type coll = { pos : int; best : vts }

  type phase =
    | Collect of { idx : int; results : vts list; cur : coll }
        (* [results] kept sorted: only the multiset feeds the choice *)
    | Choose of { results : vts list }
    | Write_step of { payload : vts }  (* writes only: the single Val write *)

  type opkind = KWrite of int | KRead

  type op_st = { kind : opkind; phase : phase }

  type pstate = { pc : int; op : op_st option; reads : int list }

  type state = {
    k : int;
    vals : vts Tri.t;  (* Val[0..2] *)
    procs : pstate Tri.t;
    coin : int;
    creg : int;
    cread : int option;
  }

  type move = Step of int

  type transition = Det of state | Chance of (float * state) list

  (* Monomorphic: agrees with polymorphic [compare] on every pair, so the
     sorted results lists (and hence the canonical encodings) are
     unchanged, without calls into the generic comparison runtime. *)
  let ts_lt ((a1, a2) : ts) ((b1, b2) : ts) = a1 < b1 || (a1 = b1 && a2 < b2)

  let cmp_vts ((v1, (t1, p1)) : vts) ((v2, (t2, p2)) : vts) =
    if v1 <> v2 then if v1 < v2 then -1 else 1
    else if t1 <> t2 then if t1 < t2 then -1 else 1
    else if p1 < p2 then -1
    else if p1 > p2 then 1
    else 0

  let bot_vts : vts = (-1, (0, 0))
  let fresh_coll = { pos = 0; best = bot_vts }

  let outcome_impossible s =
    s.coin >= 0
    &&
    match (Tri.get s.procs 2).reads with
    | u1 :: rest ->
        u1 <> s.coin || (match rest with u2 :: _ -> u2 <> 1 - s.coin | [] -> false)
    | [] -> false

  let moves s =
    if (Tri.get s.procs 2).pc >= 3 then []
    else if outcome_impossible s then []
    else
      List.filter_map
        (fun p ->
          let ps = Tri.get s.procs p in
          let live =
            ps.op <> None
            ||
            match (p, ps.pc) with
            | 0, 0 -> true
            | 1, (0 | 1 | 2) -> true
            | 2, (0 | 1 | 2) -> true
            | _ -> false
          in
          if live then Some (Step p) else None)
        Tri.indices

  let with_proc s p ps = { s with procs = Tri.set s.procs p ps }

  let set_op s p op =
    let ps = Tri.get s.procs p in
    with_proc s p { ps with op }

  let start_op s p kind =
    set_op s p
      (Some { kind; phase = Collect { idx = 0; results = []; cur = fresh_coll } })

  let complete s p kind payload =
    let ps = Tri.get s.procs p in
    let reads =
      match kind with KRead -> ps.reads @ [ fst payload ] | KWrite _ -> ps.reads
    in
    with_proc s p { pc = ps.pc + 1; op = None; reads }

  let op_step s p (o : op_st) =
    match o.phase with
    | Collect { idx; results; cur } ->
        (* one single-step cell read *)
        let cell = Tri.get s.vals cur.pos in
        let best = if ts_lt (snd cur.best) (snd cell) then cell else cur.best in
        if cur.pos + 1 < 3 then
          Det
            (set_op s p
               (Some { o with phase = Collect { idx; results; cur = { pos = cur.pos + 1; best } } }))
        else begin
          let results = List.sort cmp_vts (best :: results) in
          let phase =
            if idx + 1 < s.k then Collect { idx = idx + 1; results; cur = fresh_coll }
            else Choose { results }
          in
          Det (set_op s p (Some { o with phase }))
        end
    | Choose { results } ->
        let continue chosen =
          match o.kind with
          | KRead -> complete s p o.kind chosen
          | KWrite v ->
              let t, _ = snd chosen in
              set_op s p (Some { o with phase = Write_step { payload = (v, (t + 1, p)) } })
        in
        let pr = 1.0 /. float_of_int (List.length results) in
        Chance (List.map (fun r -> (pr, continue r)) results)
    | Write_step { payload } ->
        let s = { s with vals = Tri.set s.vals p payload } in
        Det (complete s p o.kind payload)

  let apply s (Step p) =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some o -> op_step s p o
    | None -> (
        match (p, ps.pc) with
        | 0, 0 -> Det (start_op s p (KWrite 0))
        | 1, 0 -> Det (start_op s p (KWrite 1))
        | 1, 1 ->
            let flip v = with_proc { s with coin = v } 1 { ps with pc = 2 } in
            Chance [ (0.5, flip 0); (0.5, flip 1) ]
        | 1, 2 -> Det (with_proc { s with creg = s.coin } 1 { ps with pc = 3 })
        | 2, 0 -> Det (start_op s p KRead)
        | 2, 1 -> Det (start_op s p KRead)
        | 2, 2 -> Det (with_proc { s with cread = Some s.creg } 2 { ps with pc = 3 })
        | _ -> assert false)

  let terminal_value s =
    match s.cread with
    | Some c when c = 0 || c = 1 -> (
        match (Tri.get s.procs 2).reads with
        | [ u1; u2 ] -> if u1 = c && u2 = 1 - c then 1.0 else 0.0
        | _ -> 0.0)
    | _ -> 0.0

  (* Canonical key: every field once, in declaration order; variants carry
     a tag byte. Injective by Mdp.Key's construction. *)
  (* Buffer passed as an argument (not captured) so the hot-path encoder
     allocates no closures. *)
  let enc_vts b (v, (t, p)) =
    Mdp.Key.int b v;
    Mdp.Key.int b t;
    Mdp.Key.int b p

  let enc_phase b = function
    | Collect { idx; results; cur } ->
        Mdp.Key.int b 0;
        Mdp.Key.int b idx;
        Mdp.Key.list b enc_vts results;
        Mdp.Key.int b cur.pos;
        enc_vts b cur.best
    | Choose { results } ->
        Mdp.Key.int b 1;
        Mdp.Key.list b enc_vts results
    | Write_step { payload } ->
        Mdp.Key.int b 2;
        enc_vts b payload

  let enc_op b (o : op_st) =
    (match o.kind with
    | KRead -> Mdp.Key.int b 0
    | KWrite v ->
        Mdp.Key.int b 1;
        Mdp.Key.int b v);
    enc_phase b o.phase

  let enc_pstate b (p : pstate) =
    Mdp.Key.int b p.pc;
    Mdp.Key.option b enc_op p.op;
    Mdp.Key.list b Mdp.Key.int p.reads

  let encode_into (s : state) b =
    Mdp.Key.int b s.k;
    enc_vts b (Tri.get s.vals 0);
    enc_vts b (Tri.get s.vals 1);
    enc_vts b (Tri.get s.vals 2);
    enc_pstate b (Tri.get s.procs 0);
    enc_pstate b (Tri.get s.procs 1);
    enc_pstate b (Tri.get s.procs 2);
    Mdp.Key.int b s.coin;
    Mdp.Key.int b s.creg;
    Mdp.Key.option b Mdp.Key.int s.cread

  let encode (s : state) = Mdp.Key.run (encode_into s)

  let pp_move ppf (Step p) = Fmt.pf ppf "step(p%d)" p
end

module S = Mdp.Solver.Make (Game)

let init ~k : Game.state =
  if k < 1 then invalid_arg "Weakener_va.init: k >= 1 required";
  {
    k;
    vals = Tri.make Game.bot_vts;
    procs = Tri.make { Game.pc = 0; op = None; reads = [] };
    coin = -1;
    creg = -1;
    cread = None;
  }

(* Sequential solves run on the in-place presentation
   ({!Weakener_va_packed}) — bit-identical values and stats, no per-edge
   successor allocation. The pure game stays the engine for parallel
   solves (workers would each need a private working state) and the
   specification the packed one is tested against. The stats accessors
   follow whichever engine solved last. *)
let last_inplace = ref false

let bad_probability ?pool ?memo_budget ?(jobs = 1) ~k () =
  if jobs <= 1 then begin
    last_inplace := true;
    Weakener_va_packed.bad_probability ?memo_budget ~k ()
  end
  else begin
    last_inplace := false;
    S.value_par ?pool ?memo_budget ~jobs (init ~k)
  end

let store_stats () =
  if !last_inplace then Weakener_va_packed.store_stats ()
  else S.store_stats ()

let explored_states () =
  if !last_inplace then Weakener_va_packed.explored_states ()
  else S.explored ()

let reset () =
  last_inplace := false;
  S.reset ();
  Weakener_va_packed.reset ()

let solver_stats () =
  if !last_inplace then Weakener_va_packed.solver_stats () else S.stats ()

let set_progress ?interval_states hook =
  S.set_progress ?interval_states hook;
  Weakener_va_packed.set_progress ?interval_states hook
