type k = int

(* Two sound state-space reductions are applied relative to the raw
   message-level semantics; neither changes the adversary-optimal value:

   - Reply fusion. Delivering a query to a server freezes the reply content
     (the server's current pair); consuming the reply later only updates the
     client's private (got, best) accumulator, which is invisible to other
     processes until the client's own advance step — itself an adversary
     move. Delivering at most [quorum] queries per phase and folding the
     reply into the accumulator at query-delivery time therefore reaches
     exactly the same set of outcomes (a frozen-but-unconsumed third reply
     is equivalent to never delivering that query, because ABD query
     processing does not change server state).

   - Ack fusion. An ack only increments the counter that enables the
     client's completion step, again adversary-controlled; folding the ack
     into update delivery (when the originating operation is still waiting
     and below quorum) preserves the value for the same reason.

   Update messages, by contrast, must remain independently deliverable
   after their operation completes: Figure 1's adversary relies on such
   straggler updates, and they do change server state. *)

module Game = struct
  (* Values: -1 encodes ⊥. Timestamps are (integer, process id) pairs with
     lexicographic order; (0, 0) is the initial timestamp. *)
  type ts = int * int
  type vts = int * ts

  (* The two shared registers; [CO] is modelled either atomically or as a
     second, independent ABD^k instance, per [atomic_c]. *)
  type obj_id = RO | CO

  type iter_st = {
    queried : bool list;  (* query to server s already delivered *)
    got : int;  (* replies folded in (= number of delivered queries) *)
    best : vts;  (* largest-timestamp reply so far *)
  }

  type phase =
    | Query of { idx : int; results : vts list; cur : iter_st }
        (* [results] is kept sorted: only the multiset feeds the uniform
           choice, so the order carries no information *)
    | Choose of { results : vts list }  (* the object random step is next *)
    | Waiting of { payload : vts; acks : int }  (* update sent, awaiting acks *)

  type opkind = KWrite of int | KRead

  type op_st = { obj : obj_id; kind : opkind; opseq : int; phase : phase }

  type upd_msg = { obj : obj_id; payload : vts; dest : int; origin : int * int }

  type pstate = { pc : int; op : op_st option; reads : int list }

  type state = {
    k : int;
    ns : int;  (* number of replicas; the 3 program processes are servers
                  0-2, any further servers are pure replicas *)
    atomic_c : bool;
    servers_r : vts list;
    servers_c : vts list;
    procs : pstate Tri.t;
    upd_out : upd_msg list;  (* canonically sorted *)
    coin : int;
    creg : int;  (* atomic-C register *)
    cread : int option;  (* p2's C read result *)
  }

  type move =
    | Client of int  (* process p performs its next client step *)
    | DQuery of int * int  (* deliver p's query to server s (reply fused) *)
    | DUpdate of int  (* deliver the i-th in-transit update message *)

  type transition = Det of state | Chance of (float * state) list

  (* Monomorphic comparisons. These agree with polymorphic [compare] on
     every pair (ints compare numerically, constant constructors by
     declaration order, tuples/records lexicographically field by field)
     — so every sort below produces the order [List.sort compare] did,
     and the canonical encodings are unchanged — but they compile to int
     compares instead of calls into the generic comparison runtime,
     which dominated the solver's expansion profile. *)
  let[@inline] cmp_int (a : int) (b : int) =
    if a < b then -1 else if a > b then 1 else 0

  let ts_lt ((a1, a2) : ts) ((b1, b2) : ts) = a1 < b1 || (a1 = b1 && a2 < b2)

  let cmp_vts ((v1, (t1, p1)) : vts) ((v2, (t2, p2)) : vts) =
    if v1 <> v2 then cmp_int v1 v2
    else if t1 <> t2 then cmp_int t1 t2
    else cmp_int p1 p2

  let bot_vts : vts = (-1, (-1, -1))
  let quorum s = (s.ns / 2) + 1
  let server_indices s = List.init s.ns Fun.id

  let fresh_iter s =
    { queried = List.init s.ns (fun _ -> false); got = 0; best = bot_vts }

  let nth = List.nth
  let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l
  let servers_of s = function RO -> s.servers_r | CO -> s.servers_c

  let set_servers s obj v =
    match obj with RO -> { s with servers_r = v } | CO -> { s with servers_c = v }

  (* ---- normalization: prune inert update messages ---- *)

  let origin_waiting s (p, opseq) =
    match (Tri.get s.procs p).op with
    | Some { opseq = o; phase = Waiting { acks; _ }; _ } ->
        o = opseq && acks < quorum s
    | _ -> false

  (* Field-by-field in declaration order, first difference wins — exactly
     polymorphic [compare] on [upd_msg]. *)
  let cmp_upd (a : upd_msg) (b : upd_msg) =
    let c =
      match (a.obj, b.obj) with
      | RO, RO | CO, CO -> 0
      | RO, CO -> -1
      | CO, RO -> 1
    in
    if c <> 0 then c
    else
      let c = cmp_vts a.payload b.payload in
      if c <> 0 then c
      else
        let c = cmp_int a.dest b.dest in
        if c <> 0 then c
        else
          let ap, as_ = a.origin and bp, bs = b.origin in
          let c = cmp_int ap bp in
          if c <> 0 then c else cmp_int as_ bs

  let normalize s =
    let upd_out =
      List.filter
        (fun (m : upd_msg) ->
          let server_ts = snd (nth (servers_of s m.obj) m.dest) in
          ts_lt server_ts (snd m.payload) || origin_waiting s m.origin)
        s.upd_out
      |> List.sort cmp_upd
    in
    { s with upd_out }

  (* ---- enabled moves ---- *)

  let client_enabled s p =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some { phase = Query { cur; _ }; _ } -> cur.got >= quorum s
    | Some { phase = Choose _; _ } -> true
    | Some { phase = Waiting { acks; _ }; _ } -> acks >= quorum s
    | None -> (
        match (p, ps.pc) with
        | 0, 0 -> true
        | 1, (0 | 1 | 2) -> true
        | 2, (0 | 1 | 2) -> true
        | _ -> false)

  (* The bad outcome is already impossible when a completed read of p2
     mismatches the (known) coin: the game value from here is 0 whatever the
     adversary does, so such states are terminal. This prunes roughly half
     of the tree below every "wrong" read. *)
  let outcome_impossible s =
    s.coin >= 0
    &&
    match (Tri.get s.procs 2).reads with
    | u1 :: rest ->
        u1 <> s.coin || (match rest with u2 :: _ -> u2 <> 1 - s.coin | [] -> false)
    | [] -> false

  let moves s =
    (* once p2 finished, the outcome is fixed: treat as terminal *)
    if (Tri.get s.procs 2).pc >= 3 then []
    else if outcome_impossible s then []
    else begin
      let clients =
        List.filter_map
          (fun p -> if client_enabled s p then Some (Client p) else None)
          Tri.indices
      in
      let queries =
        List.concat_map
          (fun p ->
            match (Tri.get s.procs p).op with
            | Some { phase = Query { cur; _ }; _ } when cur.got < quorum s ->
                List.filter_map
                  (fun srv ->
                    if not (nth cur.queried srv) then Some (DQuery (p, srv))
                    else None)
                  (server_indices s)
            | _ -> [])
          Tri.indices
      in
      let updates = List.mapi (fun i _ -> DUpdate i) s.upd_out in
      clients @ queries @ updates
    end

  (* ---- applying moves ---- *)

  let with_proc s p ps = { s with procs = Tri.set s.procs p ps }

  let set_op s p op =
    let ps = Tri.get s.procs p in
    with_proc s p { ps with op }

  let start_op s p obj kind opseq =
    set_op s p
      (Some
         {
           obj;
           kind;
           opseq;
           phase = Query { idx = 0; results = []; cur = fresh_iter s };
         })

  let advance_query s p =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some ({ phase = Query { idx; results; cur }; _ } as o) ->
        let results = List.sort cmp_vts (cur.best :: results) in
        let phase =
          if idx + 1 < s.k then
            Query { idx = idx + 1; results; cur = fresh_iter s }
          else Choose { results }
        in
        set_op s p (Some { o with phase })
    | _ -> assert false

  let choose_iteration s p =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some ({ phase = Choose { results }; _ } as o) ->
        let outcomes =
          List.map
            (fun chosen ->
              let payload =
                match o.kind with
                | KRead -> chosen
                | KWrite v ->
                    let t, _ = snd chosen in
                    (v, (t + 1, p))
              in
              let upd_out =
                List.map
                  (fun dest -> { obj = o.obj; payload; dest; origin = (p, o.opseq) })
                  (server_indices s)
                @ s.upd_out
              in
              normalize
                (set_op
                   { s with upd_out }
                   p
                   (Some { o with phase = Waiting { payload; acks = 0 } })))
            results
        in
        let pr = 1.0 /. float_of_int (List.length results) in
        Chance (List.map (fun st -> (pr, st)) outcomes)
    | _ -> assert false

  let complete_op s p =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some { obj; kind; phase = Waiting { payload; _ }; _ } ->
        let s =
          match (obj, kind) with
          | RO, KRead ->
              with_proc s p { ps with reads = ps.reads @ [ fst payload ] }
          | CO, KRead -> { s with cread = Some (fst payload) }
          | (RO | CO), KWrite _ -> s
        in
        let ps = Tri.get s.procs p in
        normalize (with_proc s p { ps with pc = ps.pc + 1; op = None })
    | _ -> assert false

  let client_step s p =
    let ps = Tri.get s.procs p in
    match ps.op with
    | Some { phase = Query _; _ } -> Det (advance_query s p)
    | Some { phase = Choose _; _ } -> choose_iteration s p
    | Some { phase = Waiting _; _ } -> Det (complete_op s p)
    | None -> (
        match (p, ps.pc) with
        | 0, 0 -> Det (start_op s p RO (KWrite 0) 0)
        | 1, 0 -> Det (start_op s p RO (KWrite 1) 0)
        | 1, 1 ->
            let flip v = with_proc { s with coin = v } 1 { ps with pc = 2 } in
            Chance [ (0.5, flip 0); (0.5, flip 1) ]
        | 1, 2 ->
            if s.atomic_c then
              Det (with_proc { s with creg = s.coin } 1 { ps with pc = 3 })
            else Det (start_op s p CO (KWrite s.coin) 2)
        | 2, 0 -> Det (start_op s p RO KRead 0)
        | 2, 1 -> Det (start_op s p RO KRead 1)
        | 2, 2 ->
            if s.atomic_c then
              Det (with_proc { s with cread = Some s.creg } 2 { ps with pc = 3 })
            else Det (start_op s p CO KRead 2)
        | _ -> assert false)

  let apply s move =
    match move with
    | Client p -> client_step s p
    | DQuery (p, srv) ->
        (* fused: freeze the server's pair and fold it into the client's
           accumulator in one indivisible event *)
        let ps = Tri.get s.procs p in
        (match ps.op with
        | Some ({ phase = Query q; _ } as o) ->
            let reply = nth (servers_of s o.obj) srv in
            let cur = q.cur in
            let best =
              if ts_lt (snd cur.best) (snd reply) then reply else cur.best
            in
            let cur =
              { queried = set_nth cur.queried srv true; got = cur.got + 1; best }
            in
            Det (set_op s p (Some { o with phase = Query { q with cur } }))
        | _ -> assert false)
    | DUpdate i ->
        let m = List.nth s.upd_out i in
        let upd_out = List.filteri (fun j _ -> j <> i) s.upd_out in
        let s =
          let servers = servers_of s m.obj in
          let cur = nth servers m.dest in
          if ts_lt (snd cur) (snd m.payload) then
            set_servers s m.obj (set_nth servers m.dest m.payload)
          else s
        in
        let s = { s with upd_out } in
        (* fused ack *)
        let s =
          let p, opseq = m.origin in
          let ps = Tri.get s.procs p in
          match ps.op with
          | Some ({ opseq = o; phase = Waiting w; _ } as op)
            when o = opseq && w.acks < quorum s ->
              set_op s p (Some { op with phase = Waiting { w with acks = w.acks + 1 } })
          | _ -> s
        in
        Det (normalize s)

  let terminal_value s =
    match s.cread with
    | Some c when c = 0 || c = 1 -> (
        match (Tri.get s.procs 2).reads with
        | [ u1; u2 ] -> if u1 = c && u2 = 1 - c then 1.0 else 0.0
        | _ -> 0.0)
    | _ -> 0.0

  (* Canonical key: every field once, in declaration order; variants carry
     a tag byte. Injective by Mdp.Key's construction. The solver hashes
     and compares this flat ~100-byte string on each memo probe instead of
     traversing the whole nested state. *)
  (* The helpers take the buffer as an argument (instead of closing over
     it) so [encode_into] allocates no closures: on the solver's hot path
     it runs once per memo probe. *)
  let enc_obj b = function RO -> Mdp.Key.int b 0 | CO -> Mdp.Key.int b 1

  let enc_vts b (v, (t, p)) =
    Mdp.Key.int b v;
    Mdp.Key.int b t;
    Mdp.Key.int b p

  let enc_iter b (it : iter_st) =
    Mdp.Key.list b Mdp.Key.bool it.queried;
    Mdp.Key.int b it.got;
    enc_vts b it.best

  let enc_phase b = function
    | Query { idx; results; cur } ->
        Mdp.Key.int b 0;
        Mdp.Key.int b idx;
        Mdp.Key.list b enc_vts results;
        enc_iter b cur
    | Choose { results } ->
        Mdp.Key.int b 1;
        Mdp.Key.list b enc_vts results
    | Waiting { payload; acks } ->
        Mdp.Key.int b 2;
        enc_vts b payload;
        Mdp.Key.int b acks

  let enc_op b (o : op_st) =
    enc_obj b o.obj;
    (match o.kind with
    | KRead -> Mdp.Key.int b 0
    | KWrite v ->
        Mdp.Key.int b 1;
        Mdp.Key.int b v);
    Mdp.Key.int b o.opseq;
    enc_phase b o.phase

  let enc_upd b (m : upd_msg) =
    enc_obj b m.obj;
    enc_vts b m.payload;
    Mdp.Key.int b m.dest;
    let p, seq = m.origin in
    Mdp.Key.int b p;
    Mdp.Key.int b seq

  let enc_pstate b (p : pstate) =
    Mdp.Key.int b p.pc;
    Mdp.Key.option b enc_op p.op;
    Mdp.Key.list b Mdp.Key.int p.reads

  let encode_into (s : state) b =
    Mdp.Key.int b s.k;
    Mdp.Key.int b s.ns;
    Mdp.Key.bool b s.atomic_c;
    Mdp.Key.list b enc_vts s.servers_r;
    Mdp.Key.list b enc_vts s.servers_c;
    enc_pstate b (Tri.get s.procs 0);
    enc_pstate b (Tri.get s.procs 1);
    enc_pstate b (Tri.get s.procs 2);
    Mdp.Key.list b enc_upd s.upd_out;
    Mdp.Key.int b s.coin;
    Mdp.Key.int b s.creg;
    Mdp.Key.option b Mdp.Key.int s.cread

  let encode (s : state) = Mdp.Key.run (encode_into s)

  let pp_move ppf = function
    | Client p -> Fmt.pf ppf "client(p%d)" p
    | DQuery (p, srv) -> Fmt.pf ppf "query(p%d->s%d)" p srv
    | DUpdate i -> Fmt.pf ppf "update[%d]" i
end

module S = Mdp.Solver.Make (Game)

let init ?(atomic_c = true) ?(servers = 3) ~k () : Game.state =
  if k < 1 then invalid_arg "Weakener_abd.init: k >= 1 required";
  if servers < 3 then invalid_arg "Weakener_abd.init: at least 3 servers";
  {
    k;
    ns = servers;
    atomic_c;
    servers_r = List.init servers (fun _ -> (-1, (0, 0)));
    servers_c = List.init servers (fun _ -> (-1, (0, 0)));
    procs = Tri.make { Game.pc = 0; op = None; reads = [] };
    upd_out = [];
    coin = -1;
    creg = -1;
    cread = None;
  }

let bad_probability ?pool ?memo_budget ?(atomic_c = true) ?(servers = 3)
    ?(jobs = 1) ?(prune = false) ~k () =
  S.value_par ?pool ?memo_budget ~prune ~jobs (init ~atomic_c ~servers ~k ())
let best_move = S.best_move
let store_stats () = S.store_stats ()
let explored_states () = S.explored ()
let pruned_subtrees () = S.pruned_subtrees ()
let reset () = S.reset ()
let solver_stats () = S.stats ()
let last_par_stats () = S.last_par_stats ()
let set_progress = S.set_progress
