(** Exact game models of the snapshot weakener
    ({!Programs.Ghw_snapshot}): processes [p0] and [p1] update components 0
    and 1 of a shared snapshot, [p1] then flips a coin and publishes it
    through an atomic register [C], and [p2] scans; the bad outcome is that
    the scan shows {e exactly} the update selected by the coin.

    Two models are solved:

    - {!atomic_bad_probability}: scan and update are single indivisible
      steps. The adversary-optimal value is 1/2 by the Appendix A.1-style
      argument (a post-flip scan can be made to show only [p1]'s update,
      never only [p0]'s; pre-committing wins with probability 1/2).

    - {!afek_bad_probability}: the Afek et al. implementation at register
      granularity, transformed to [Snapshot^k] — the scan runs [k]
      scan-bodies (each a series of three-read collects until two
      consecutive collects agree) and uses a uniformly chosen body's result.

    Two simplifications are applied to the Afek model, both exact for this
    program: (i) each process writes its component at most once, so no scan
    can ever observe a process move twice — the borrowed-view path of the
    algorithm is unreachable and the embedded views need not be modelled;
    (ii) consequently an update's embedded scan is read-only computation
    whose result is never consumed, so the update collapses to its single
    (adversary-scheduled) register write. The scan bodies, where all the
    adversary leverage lives, are modelled read by read. *)

module Game : Mdp.Solver.GAME

(** [init ~k] — the Afek^k game. Requires [k >= 1]. *)
val init : k:int -> Game.state

(** Adversary-optimal bad probability with the atomic snapshot. *)
val atomic_bad_probability : unit -> float

(** Adversary-optimal bad probability with [Afek Snapshot^k]. [jobs]
    (default 1) solves the root frontier on that many domains. *)
val afek_bad_probability :
  ?pool:Par.Pool.t -> ?memo_budget:int -> ?jobs:int -> k:int -> unit -> float

(** [store_stats ()] — out-of-core memo telemetry once a [memo_budget]
    armed it (see {!Mdp.Solver.Make.store_stats}). *)
val store_stats : unit -> Store.Memo.stats option

val explored_states : unit -> int
val reset : unit -> unit
