(** The in-place presentation of {!Weakener_va}: the same
    weakener-over-VA game packed into one mutable int array with a trail
    journal, solved by {!Mdp.Solver.Make_inplace}. [Weakener_va] is the
    specification — move numbering ([Step p] = move id [p]), chance
    branch order, probabilities and the canonical encoding agree
    exactly, so values, explored counts and hit/miss sequences are
    bit-identical between the two solvers (the lockstep tests in
    [test_inplace.ml] enforce the agreement move by move).

    {!Weakener_va.bad_probability} routes sequential ([jobs <= 1])
    solves here; the pure presentation remains the engine for
    [value_par]. *)

module Game : Mdp.Solver.GAME_INPLACE

(** [init ~k] — requires [k >= 1]. The returned working state is private
    to the caller: the solver mutates it during a solve and rewinds it
    before returning. *)
val init : k:int -> Game.state

(** [copy s] is an independent deep copy (for snapshot-vs-rewind
    tests). *)
val copy : Game.state -> Game.state

(** [equal a b] — exact cell-for-cell equality, including dead fields of
    completed operations: a rewind must restore the journal's every
    write, not just the semantically live cells. *)
val equal : Game.state -> Game.state -> bool

(** [bad_probability ?prune ~k ()] is the exact adversary-optimal
    probability that [p2] loops forever with [VA^k] registers —
    bit-identical to [Weakener_va.bad_probability ~jobs:1 ~k ()]. *)
val bad_probability : ?memo_budget:int -> ?prune:bool -> k:int -> unit -> float

(** See {!Mdp.Solver.Make_inplace.store_stats}. *)
val store_stats : unit -> Store.Memo.stats option

val explored_states : unit -> int
val reset : unit -> unit
val solver_stats : unit -> Mdp.Solver.stats

val set_progress :
  ?interval_states:int -> (Mdp.Solver.progress -> unit) option -> unit
