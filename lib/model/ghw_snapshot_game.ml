module Game = struct
  type cell = int * int (* value, seq *)
  type collect = cell list (* one entry per component, 3 of them *)

  type scan_body = {
    prev : collect option;  (* last completed collect *)
    cur : cell list;  (* current collect, components read so far *)
  }

  type scanning = {
    body : scan_body;
    idx : int;  (* which of the k bodies is running *)
    results : int list;  (* classifications of completed bodies *)
  }

  type p2state =
    | Atomic_scan  (* atomic mode: the scan is one indivisible step *)
    | Scanning of scanning  (* Afek mode *)
    | Read_c
    | P2_done

  type state = {
    k : int;
    afek : bool;
    m : cell list;
    p0_done : bool;
    p1pc : int;  (* 0: write M[1]; 1: flip; 2: write C; 3: done *)
    p2 : p2state;
    u1 : int;  (* -2 unset; -1 "mixed"; 0/1 the classification *)
    coin : int;
    creg : int;
    cread : int;  (* -2 unset *)
  }

  type move = Step of int

  type transition = Det of state | Chance of (float * state) list

  let fresh_body = { prev = None; cur = [] }

  (* u(s): 0 if only component 0 is set, 1 if only component 1, -1 mixed *)
  let classify collect =
    match collect with
    | (v0, _) :: (v1, _) :: _ -> (
        match (v0 = 1, v1 = 1) with
        | true, false -> 0
        | false, true -> 1
        | _ -> -1)
    | _ -> -1

  let seqs_equal c1 c2 = List.for_all2 (fun (_, s1) (_, s2) -> s1 = s2) c1 c2

  let moves s =
    if s.p2 = P2_done then []
    else begin
      let p0 = if s.p0_done then [] else [ Step 0 ] in
      let p1 = if s.p1pc < 3 then [ Step 1 ] else [] in
      p0 @ p1 @ [ Step 2 ]
    end

  let set_m s i v = { s with m = List.mapi (fun j c -> if j = i then v else c) s.m }

  let finish_scan s results =
    (* the object random step: choose one body's classification uniformly *)
    let pr = 1.0 /. float_of_int (List.length results) in
    Chance
      (List.map (fun u -> (pr, { s with u1 = u; p2 = Read_c })) results)

  let scan_step s (sc : scanning) =
    let j = List.length sc.body.cur in
    let cur = sc.body.cur @ [ List.nth s.m j ] in
    if List.length cur < List.length s.m then
      Det { s with p2 = Scanning { sc with body = { sc.body with cur } } }
    else begin
      (* a collect just completed *)
      match sc.body.prev with
      | Some p when seqs_equal p cur ->
          (* the body returns this collect's values *)
          let results = sc.results @ [ classify cur ] in
          if sc.idx + 1 < s.k then
            Det
              { s with p2 = Scanning { body = fresh_body; idx = sc.idx + 1; results } }
          else finish_scan s results
      | _ ->
          Det { s with p2 = Scanning { sc with body = { prev = Some cur; cur = [] } } }
    end

  let apply s (Step p) =
    match p with
    | 0 -> Det (set_m { s with p0_done = true } 0 (1, 1))
    | 1 -> (
        match s.p1pc with
        | 0 -> Det (set_m { s with p1pc = 1 } 1 (1, 1))
        | 1 ->
            Chance
              [
                (0.5, { s with coin = 0; p1pc = 2 });
                (0.5, { s with coin = 1; p1pc = 2 });
              ]
        | _ -> Det { s with creg = s.coin; p1pc = 3 })
    | _ -> (
        match s.p2 with
        | Atomic_scan -> Det { s with u1 = classify s.m; p2 = Read_c }
        | Scanning sc -> scan_step s sc
        | Read_c -> Det { s with cread = s.creg; p2 = P2_done }
        | P2_done -> assert false)

  let terminal_value s =
    if (s.cread = 0 || s.cread = 1) && s.u1 = s.cread then 1.0 else 0.0

  (* Canonical key: every field once, in declaration order; variants carry
     a tag byte. Injective by Mdp.Key's construction. *)
  let enc_cell b (v, seq) =
    Mdp.Key.int b v;
    Mdp.Key.int b seq

  let enc_cells b cs = Mdp.Key.list b enc_cell cs

  let enc_p2 b = function
    | Atomic_scan -> Mdp.Key.int b 0
    | Scanning sc ->
        Mdp.Key.int b 1;
        Mdp.Key.option b enc_cells sc.body.prev;
        enc_cells b sc.body.cur;
        Mdp.Key.int b sc.idx;
        Mdp.Key.list b Mdp.Key.int sc.results
    | Read_c -> Mdp.Key.int b 2
    | P2_done -> Mdp.Key.int b 3

  let encode_into (s : state) b =
    Mdp.Key.int b s.k;
    Mdp.Key.bool b s.afek;
    enc_cells b s.m;
    Mdp.Key.bool b s.p0_done;
    Mdp.Key.int b s.p1pc;
    enc_p2 b s.p2;
    Mdp.Key.int b s.u1;
    Mdp.Key.int b s.coin;
    Mdp.Key.int b s.creg;
    Mdp.Key.int b s.cread

  let encode (s : state) = Mdp.Key.run (encode_into s)

  let pp_move ppf (Step p) = Fmt.pf ppf "step(p%d)" p
end

module S = Mdp.Solver.Make (Game)

let base ~afek ~k : Game.state =
  {
    k;
    afek;
    m = [ (0, 0); (0, 0); (0, 0) ];
    p0_done = false;
    p1pc = 0;
    p2 = (if afek then Game.Scanning { body = Game.fresh_body; idx = 0; results = [] } else Game.Atomic_scan);
    u1 = -2;
    coin = -1;
    creg = -1;
    cread = -2;
  }

let init ~k =
  if k < 1 then invalid_arg "Ghw_snapshot_game.init: k >= 1 required";
  base ~afek:true ~k

let atomic_bad_probability () = S.value (base ~afek:false ~k:1)
let afek_bad_probability ?pool ?memo_budget ?(jobs = 1) ~k () =
  S.value_par ?pool ?memo_budget ~jobs (init ~k)
let store_stats () = S.store_stats ()
let explored_states () = S.explored ()
let reset () = S.reset ()
