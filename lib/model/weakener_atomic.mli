(** Exact game model of the weakener program over atomic registers
    (Appendix A.1 of the paper).

    Every register access is a single indivisible step, so the adversary's
    only power is the interleaving of eight program steps plus the timing of
    the coin flip (a chance node). The optimal probability of the bad
    outcome ([u1 = c] and [u2 = 1 - c], i.e. [p2] looping forever) is
    exactly 1/2 — the adversary schedules [p2]'s first read before or after
    [p1]'s write according to the coin, but the second read can only match
    for one coin value. *)

(** The game state is exposed concretely (unlike the message-level ABD
    games) so the fuzzer's differential oracle can {e abstract} a simulator
    execution of the atomic weakener into a game state and compare
    [Game.encode] keys step for step against the model's own transitions. *)
module Game : sig
  (** -1 encodes the registers' initial values (⊥ for [R], -1 for [C]);
      [u1]/[u2]/[cread] use [None] for "not read yet". [pc0] counts p0's
      completed register accesses (0-1), [pc1] p1's accesses plus the coin
      flip (0-3), [pc2] p2's reads (0-3). *)
  type state = {
    r : int;
    c : int;
    pc0 : int;
    pc1 : int;
    pc2 : int;
    coin : int;
    u1 : int option;
    u2 : int option;
    cread : int option;
  }

  type move = Step of int

  include Mdp.Solver.GAME with type state := state and type move := move
end

(** The initial state. *)
val init : Game.state

(** [bad_probability ()] solves the game: the adversary-optimal probability
    that [p2] loops forever. The paper's claim is that this equals 1/2. *)
val bad_probability : ?memo_budget:int -> unit -> float

(** [store_stats ()] — out-of-core memo telemetry once a [memo_budget]
    armed it (see {!Mdp.Solver.Make.store_stats}). *)
val store_stats : unit -> Store.Memo.stats option

(** [explored_states ()] after solving. *)
val explored_states : unit -> int
