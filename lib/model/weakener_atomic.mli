(** Exact game model of the weakener program over atomic registers
    (Appendix A.1 of the paper).

    Every register access is a single indivisible step, so the adversary's
    only power is the interleaving of eight program steps plus the timing of
    the coin flip (a chance node). The optimal probability of the bad
    outcome ([u1 = c] and [u2 = 1 - c], i.e. [p2] looping forever) is
    exactly 1/2 — the adversary schedules [p2]'s first read before or after
    [p1]'s write according to the coin, but the second read can only match
    for one coin value. *)

module Game : Mdp.Solver.GAME

(** The initial state. *)
val init : Game.state

(** [bad_probability ()] solves the game: the adversary-optimal probability
    that [p2] loops forever. The paper's claim is that this equals 1/2. *)
val bad_probability : unit -> float

(** [explored_states ()] after solving. *)
val explored_states : unit -> int
