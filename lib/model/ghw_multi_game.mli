(** Exact game model of the {e multi-update} snapshot weakener, exercising
    the borrowed-view path of the Afek et al. algorithm — the mechanism
    behind Golab–Higham–Woelfel's original snapshot counterexample.

    Program: [p0] updates component 0 twice (values 1 then 2); [p1] updates
    component 1 once, flips the coin and publishes it through an atomic
    register; [p2] scans once and reads the coin. Bad outcome: the scan
    shows exactly the coin-selected component ([u(s1) = c] with [u] as in
    {!Programs.Ghw_snapshot}).

    Because [p0] writes twice, a scan {e can} observe it move twice and
    borrow the view embedded in its second update — a view computed by
    [p0]'s own (preamble) scan, potentially long before the borrow. The
    model therefore implements the full algorithm for [p0]'s updates and
    [p2]'s scan: embedded scan bodies (k of them, with the object random
    step), views stored in the cells, moved counters and the borrow return.
    [p1]'s single update still collapses to its write (it can never be
    observed moving twice, so its view is never borrowed and its embedded
    scan is read-only computation with unconsumed results).

    The solved values answer whether borrowed views give a strong adversary
    leverage on this program — the atomic baseline is 1/2 by the usual
    argument. *)

module Game : Mdp.Solver.GAME

(** [init ~k] — the Afek^k game (both [p0]'s update preambles and [p2]'s
    scan run [k] iterations). Requires [k >= 1]. *)
val init : k:int -> Game.state

(** Adversary-optimal bad probability with the atomic snapshot (updates and
    scans as single steps). *)
val atomic_bad_probability : unit -> float

(** Adversary-optimal bad probability with [Afek Snapshot^k]. [jobs]
    (default 1) solves the root frontier on that many domains. *)
val afek_bad_probability :
  ?pool:Par.Pool.t -> ?memo_budget:int -> ?jobs:int -> k:int -> unit -> float

(** [store_stats ()] — out-of-core memo telemetry once a [memo_budget]
    armed it (see {!Mdp.Solver.Make.store_stats}). *)
val store_stats : unit -> Store.Memo.stats option

val explored_states : unit -> int
val reset : unit -> unit
