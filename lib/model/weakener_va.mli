(** Exact game model of the weakener program over Vitányi–Awerbuch
    registers (Section 5.3 of the paper) — the shared-memory counterpart of
    {!Weakener_abd}.

    Register [R] is the VA construction transformed per Algorithm 2: one
    single-writer cell [Val\[i\]] per process holding a (value, timestamp)
    pair; a read operation performs [k] collects (three single-step cell
    reads each, keeping the largest timestamp), chooses one uniformly (the
    object random step) and returns its value; a write performs [k]
    collects, chooses one, and writes (value, (t+1, self)) to its own cell
    in a single step. Register [C] is atomic, as in {!Weakener_abd} (same
    value-preserving argument). Every shared step is an adversary-scheduled
    move; the coin flip and the iteration choices are chance nodes.

    The VA register is linearizable but not strongly linearizable, and tail
    strongly linearizable with collect preambles (the paper's Section 5.3);
    this model measures how much a strong adversary extracts from it, and
    how the preamble-iterating transformation blunts that, exactly. *)

module Game : Mdp.Solver.GAME

(** [init ~k] — requires [k >= 1]. *)
val init : k:int -> Game.state

(** [bad_probability ?jobs ~k ()] is the exact adversary-optimal
    probability that [p2] loops forever with [VA^k] registers. [jobs]
    (default 1) solves the root frontier on that many domains via
    {!Mdp.Solver.Make.value_par}; the value is bit-identical at every job
    count. Sequential solves ([jobs <= 1]) run on the in-place packed
    presentation ({!Weakener_va_packed} via
    {!Mdp.Solver.Make_inplace}) — same value, same stats, no per-edge
    successor allocation. *)
val bad_probability :
  ?pool:Par.Pool.t -> ?memo_budget:int -> ?jobs:int -> k:int -> unit -> float

(** [store_stats ()] — the out-of-core memo's telemetry when a
    [memo_budget] armed it, from whichever engine solved last. *)
val store_stats : unit -> Store.Memo.stats option

val explored_states : unit -> int
val reset : unit -> unit

(** [solver_stats ()] is the underlying solver instance's work counters
    since the last [reset]. *)
val solver_stats : unit -> Mdp.Solver.stats

(** [set_progress ?interval_states hook] installs a live progress hook on
    the underlying solver (see {!Mdp.Solver.Make.set_progress}). *)
val set_progress :
  ?interval_states:int -> (Mdp.Solver.progress -> unit) option -> unit
