module Game = struct
  (* -1 encodes the registers' initial values (⊥ for R, -1 for C); u1/u2 and
     cread use None for "not read yet". *)
  type state = {
    r : int;
    c : int;
    pc0 : int;  (* 0: write R; 1: done *)
    pc1 : int;  (* 0: write R; 1: flip; 2: write C; 3: done *)
    pc2 : int;  (* 0: read u1; 1: read u2; 2: read C; 3: done *)
    coin : int;
    u1 : int option;
    u2 : int option;
    cread : int option;
  }

  type move = Step of int

  type transition = Det of state | Chance of (float * state) list

  let moves s =
    List.filter_map
      (fun p ->
        let live =
          match p with 0 -> s.pc0 < 1 | 1 -> s.pc1 < 3 | _ -> s.pc2 < 3
        in
        if live then Some (Step p) else None)
      [ 0; 1; 2 ]

  let apply s (Step p) =
    match p with
    | 0 -> Det { s with r = 0; pc0 = 1 }
    | 1 -> (
        match s.pc1 with
        | 0 -> Det { s with r = 1; pc1 = 1 }
        | 1 ->
            Chance
              [
                (0.5, { s with coin = 0; pc1 = 2 });
                (0.5, { s with coin = 1; pc1 = 2 });
              ]
        | _ -> Det { s with c = s.coin; pc1 = 3 })
    | _ -> (
        match s.pc2 with
        | 0 -> Det { s with u1 = Some s.r; pc2 = 1 }
        | 1 -> Det { s with u2 = Some s.r; pc2 = 2 }
        | _ -> Det { s with cread = Some s.c; pc2 = 3 })

  let terminal_value s =
    match (s.u1, s.u2, s.cread) with
    | Some u1, Some u2, Some c when c = 0 || c = 1 ->
        if u1 = c && u2 = 1 - c then 1.0 else 0.0
    | _ -> 0.0

  let encode_into (s : state) b =
    Mdp.Key.int b s.r;
    Mdp.Key.int b s.c;
    Mdp.Key.int b s.pc0;
    Mdp.Key.int b s.pc1;
    Mdp.Key.int b s.pc2;
    Mdp.Key.int b s.coin;
    Mdp.Key.option b Mdp.Key.int s.u1;
    Mdp.Key.option b Mdp.Key.int s.u2;
    Mdp.Key.option b Mdp.Key.int s.cread

  let encode (s : state) = Mdp.Key.run (encode_into s)

  let pp_move ppf (Step p) = Fmt.pf ppf "step(p%d)" p
end

module S = Mdp.Solver.Make (Game)

let init : Game.state =
  {
    r = -1;
    c = -1;
    pc0 = 0;
    pc1 = 0;
    pc2 = 0;
    coin = -1;
    u1 = None;
    u2 = None;
    cread = None;
  }

let bad_probability ?memo_budget () = S.value ?memo_budget init
let store_stats () = S.store_stats ()
let explored_states () = S.explored ()
