type 'a t = 'a * 'a * 'a

let make x = (x, x, x)

let get (a, b, c) = function
  | 0 -> a
  | 1 -> b
  | 2 -> c
  | i -> Fmt.invalid_arg "Tri.get %d" i

let set (a, b, c) i v =
  match i with
  | 0 -> (v, b, c)
  | 1 -> (a, v, c)
  | 2 -> (a, b, v)
  | _ -> Fmt.invalid_arg "Tri.set %d" i

let map f (a, b, c) = (f a, f b, f c)
let to_list (a, b, c) = [ a; b; c ]
let for_all p (a, b, c) = p a && p b && p c
let indices = [ 0; 1; 2 ]
