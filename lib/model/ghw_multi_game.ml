module Game = struct
  type view = int * int (* component-0 and component-1 values *)
  type cell = { v : int; seq : int; view : view }
  type collect = cell list

  type body = {
    prev : collect option;
    cur : cell list;  (* current collect, components read so far *)
    moved : int list;  (* per component: moves observed by this body *)
  }

  type scanning = { body : body; idx : int; results : view list }

  type p0state =
    | U_atomic of int  (* atomic mode: number of updates still to do *)
    | U_scan of { upd : int; sc : scanning }  (* embedded scan running *)
    | U_write of { upd : int; view : view }  (* chosen; the write is next *)
    | P0_done

  type p2state = Atomic_scan | Scanning of scanning | Read_c | P2_done

  type state = {
    k : int;
    m : cell list;
    p0 : p0state;
    p1pc : int;  (* 0: write M[1]; 1: flip; 2: write C; 3: done *)
    p2 : p2state;
    u1 : int;  (* -2 unset; -1 mixed; 0/1 *)
    coin : int;
    creg : int;
    cread : int;
  }

  type move = Step of int

  type transition = Det of state | Chance of (float * state) list

  let n_components = 3
  let fresh_body = { prev = None; cur = []; moved = List.init n_components (fun _ -> 0) }
  let fresh_scanning = { body = fresh_body; idx = 0; results = [] }

  let classify ((v0, v1) : view) =
    match (v0 > 0, v1 > 0) with
    | true, false -> 0
    | false, true -> 1
    | _ -> -1

  let view_of_collect c = ((List.nth c 0).v, (List.nth c 1).v)
  let seqs_equal c1 c2 = List.for_all2 (fun a b -> a.seq = b.seq) c1 c2

  (* One read step of a scan body; mirrors Afek et al.: return on two
     consecutive seq-equal collects, else count moves and borrow the view of
     a component seen moving twice. *)
  let advance_scanning s (sc : scanning) =
    let j = List.length sc.body.cur in
    let cur = sc.body.cur @ [ List.nth s.m j ] in
    if List.length cur < n_components then
      `Cont { sc with body = { sc.body with cur } }
    else begin
      let finish_body result =
        let results = sc.results @ [ result ] in
        if sc.idx + 1 < s.k then
          `Cont { body = fresh_body; idx = sc.idx + 1; results }
        else `Finished results
      in
      match sc.body.prev with
      | Some p when seqs_equal p cur -> finish_body (view_of_collect cur)
      | Some p ->
          let moved =
            List.mapi
              (fun i m ->
                if (List.nth p i).seq <> (List.nth cur i).seq then m + 1 else m)
              sc.body.moved
          in
          (match
             List.find_opt
               (fun i -> List.nth moved i >= 2)
               (List.init n_components Fun.id)
           with
          | Some i ->
              (* borrow: the view embedded by the second observed update *)
              finish_body (List.nth cur i).view
          | None -> `Cont { sc with body = { prev = Some cur; cur = []; moved } })
      | None ->
          `Cont { sc with body = { prev = Some cur; cur = []; moved = sc.body.moved } }
    end

  let uniform_choice results continue =
    let pr = 1.0 /. float_of_int (List.length results) in
    Chance (List.map (fun r -> (pr, continue r)) results)

  let moves s =
    if s.p2 = P2_done then []
    else begin
      let p0 = if s.p0 = P0_done then [] else [ Step 0 ] in
      let p1 = if s.p1pc < 3 then [ Step 1 ] else [] in
      p0 @ p1 @ [ Step 2 ]
    end

  let set_m s i c = { s with m = List.mapi (fun j x -> if j = i then c else x) s.m }

  let p0_write s upd view =
    let seq = (List.nth s.m 0).seq in
    let s = set_m s 0 { v = upd; seq = seq + 1; view } in
    { s with p0 = (if upd >= 2 then P0_done else U_scan { upd = upd + 1; sc = fresh_scanning }) }

  let apply s (Step p) =
    match p with
    | 0 -> (
        match s.p0 with
        | U_atomic remaining ->
            let upd = 3 - remaining (* 1 then 2 *) in
            let seq = (List.nth s.m 0).seq in
            let s = set_m s 0 { v = upd; seq = seq + 1; view = (0, 0) } in
            Det
              {
                s with
                p0 = (if remaining = 1 then P0_done else U_atomic (remaining - 1));
              }
        | U_scan { upd; sc } -> (
            match advance_scanning s sc with
            | `Cont sc' -> Det { s with p0 = U_scan { upd; sc = sc' } }
            | `Finished results ->
                uniform_choice results (fun view ->
                    { s with p0 = U_write { upd; view } }))
        | U_write { upd; view } -> Det (p0_write s upd view)
        | P0_done -> assert false)
    | 1 -> (
        match s.p1pc with
        | 0 ->
            (* p1's single update collapses to its write: it can never be
               seen moving twice, so its view is never borrowed *)
            Det (set_m { s with p1pc = 1 } 1 { v = 1; seq = 1; view = (0, 0) })
        | 1 ->
            Chance
              [
                (0.5, { s with coin = 0; p1pc = 2 });
                (0.5, { s with coin = 1; p1pc = 2 });
              ]
        | _ -> Det { s with creg = s.coin; p1pc = 3 })
    | _ -> (
        match s.p2 with
        | Atomic_scan ->
            Det { s with u1 = classify ((List.nth s.m 0).v, (List.nth s.m 1).v); p2 = Read_c }
        | Scanning sc -> (
            match advance_scanning s sc with
            | `Cont sc' -> Det { s with p2 = Scanning sc' }
            | `Finished results ->
                uniform_choice results (fun view ->
                    { s with u1 = classify view; p2 = Read_c }))
        | Read_c -> Det { s with cread = s.creg; p2 = P2_done }
        | P2_done -> assert false)

  let terminal_value s =
    if (s.cread = 0 || s.cread = 1) && s.u1 = s.cread then 1.0 else 0.0

  (* Canonical key: every field once, in declaration order; variants carry
     a tag byte. Injective by Mdp.Key's construction. *)
  let enc_view b (v0, v1) =
    Mdp.Key.int b v0;
    Mdp.Key.int b v1

  let enc_cell b (c : cell) =
    Mdp.Key.int b c.v;
    Mdp.Key.int b c.seq;
    enc_view b c.view

  let enc_cells b cs = Mdp.Key.list b enc_cell cs

  let enc_scanning b (sc : scanning) =
    Mdp.Key.option b enc_cells sc.body.prev;
    enc_cells b sc.body.cur;
    Mdp.Key.list b Mdp.Key.int sc.body.moved;
    Mdp.Key.int b sc.idx;
    Mdp.Key.list b enc_view sc.results

  let enc_p0 b = function
    | U_atomic remaining ->
        Mdp.Key.int b 0;
        Mdp.Key.int b remaining
    | U_scan { upd; sc } ->
        Mdp.Key.int b 1;
        Mdp.Key.int b upd;
        enc_scanning b sc
    | U_write { upd; view = v } ->
        Mdp.Key.int b 2;
        Mdp.Key.int b upd;
        enc_view b v
    | P0_done -> Mdp.Key.int b 3

  let enc_p2 b = function
    | Atomic_scan -> Mdp.Key.int b 0
    | Scanning sc ->
        Mdp.Key.int b 1;
        enc_scanning b sc
    | Read_c -> Mdp.Key.int b 2
    | P2_done -> Mdp.Key.int b 3

  let encode_into (s : state) b =
    Mdp.Key.int b s.k;
    enc_cells b s.m;
    enc_p0 b s.p0;
    Mdp.Key.int b s.p1pc;
    enc_p2 b s.p2;
    Mdp.Key.int b s.u1;
    Mdp.Key.int b s.coin;
    Mdp.Key.int b s.creg;
    Mdp.Key.int b s.cread

  let encode (s : state) = Mdp.Key.run (encode_into s)

  let pp_move ppf (Step p) = Fmt.pf ppf "step(p%d)" p
end

module S = Mdp.Solver.Make (Game)

let base ~afek ~k : Game.state =
  {
    k;
    m = List.init Game.n_components (fun _ -> { Game.v = 0; seq = 0; view = (0, 0) });
    p0 = (if afek then Game.U_scan { upd = 1; sc = Game.fresh_scanning } else Game.U_atomic 2);
    p1pc = 0;
    p2 = (if afek then Game.Scanning Game.fresh_scanning else Game.Atomic_scan);
    u1 = -2;
    coin = -1;
    creg = -1;
    cread = -2;
  }

let init ~k =
  if k < 1 then invalid_arg "Ghw_multi_game.init: k >= 1 required";
  base ~afek:true ~k

let atomic_bad_probability () = S.value (base ~afek:false ~k:1)
let afek_bad_probability ?pool ?memo_budget ?(jobs = 1) ~k () =
  S.value_par ?pool ?memo_budget ~jobs (init ~k)
let store_stats () = S.store_stats ()
let explored_states () = S.explored ()
let reset () = S.reset ()
