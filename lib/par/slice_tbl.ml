(* A string-keyed hash table that can be probed with a (bytes, length)
   slice without materializing the key. The solver's memo probe is the
   hottest operation in the repo: a state is encoded into a reusable
   buffer, and looking it up must not allocate. [Hashtbl] cannot do this
   — [Hashtbl.find_opt tbl (Bytes.sub_string buf 0 len)] copies the key
   on every probe, hit or miss. Here the probe hashes the slice in
   place, walks one chain comparing bytes, and copies the key out
   exactly once: when the slice is genuinely new.

   Entries are exposed (with a mutable [value] field) so callers can
   read-modify-write a binding from a single probe — the solver probes
   once with an [In_progress] default and later overwrites the same
   entry with the computed value, where a [Hashtbl] would pay a second
   hash + chain walk for the [replace]. *)

type 'a entry = { hash : int; key : string; mutable value : 'a }

type 'a t = {
  mutable buckets : 'a entry list array;
  mutable mask : int;  (* Array.length buckets - 1; power of two *)
  mutable size : int;
  mutable fresh : bool;  (* did the last probe insert? *)
}

let create ?(size = 1024) () =
  let cap = ref 16 in
  while !cap < size do
    cap := !cap * 2
  done;
  { buckets = Array.make !cap []; mask = !cap - 1; size = 0; fresh = false }

let length t = t.size
let last_was_new t = t.fresh

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.size <- 0;
  t.fresh <- false

(* FNV-1a over the bytes, folded in OCaml's native int (wrapping
   multiplication is fine — both forms below MUST fold identically so a
   slice and its materialized string always land in the same chain, and
   in the same shard of a sharded wrapper). *)
let fnv_prime = 0x100000001b3
let fnv_seed = 0x3bf29ce484222325

let hash_slice data len =
  let h = ref fnv_seed in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get data i)) * fnv_prime
  done;
  !h

let hash_string s =
  let h = ref fnv_seed in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h

(* Word-wise equality: 8 bytes per iteration. The [int64] comparisons
   are compiler-specialized (monomorphic annotation) so the loads stay
   unboxed — no allocation. Probes compare the full key on every hit, so
   this runs for ~the key length on the solver's hottest path. *)
let rec words_match key data len i =
  if i + 8 <= len then
    (String.get_int64_le key i : int64) = Bytes.get_int64_le data i
    && words_match key data len (i + 8)
  else tail_match key data len i

and tail_match key data len i =
  i >= len
  || String.unsafe_get key i = Bytes.unsafe_get data i
     && tail_match key data len (i + 1)

let[@inline] slice_matches key data len =
  String.length key = len && words_match key data len 0

let grow t =
  let old = t.buckets in
  let cap = Array.length old * 2 in
  let buckets = Array.make cap [] in
  let mask = cap - 1 in
  Array.iter
    (fun chain ->
      List.iter
        (fun e ->
          let i = e.hash land mask in
          buckets.(i) <- e :: buckets.(i))
        chain)
    old;
  t.buckets <- buckets;
  t.mask <- mask

let[@inline] insert t h key default =
  let e = { hash = h; key; value = default } in
  let i = h land t.mask in
  t.buckets.(i) <- e :: t.buckets.(i);
  t.size <- t.size + 1;
  t.fresh <- true;
  if t.size > Array.length t.buckets then grow t;
  e

(* Chain walks as top-level fully-applied recursions: an inner [let rec]
   closure would allocate on every probe. *)
let rec probe_slice_chain t h data len default = function
  | [] -> insert t h (Bytes.sub_string data 0 len) default
  | e :: rest ->
      if e.hash = h && slice_matches e.key data len then begin
        t.fresh <- false;
        e
      end
      else probe_slice_chain t h data len default rest

let probe_slice t data ~len ~default =
  let h = hash_slice data len in
  probe_slice_chain t h data len default t.buckets.(h land t.mask)

let rec probe_string_chain t h key default = function
  | [] -> insert t h key default
  | e :: rest ->
      if e.hash = h && String.equal e.key key then begin
        t.fresh <- false;
        e
      end
      else probe_string_chain t h key default rest

let probe_string t key ~default =
  let h = hash_string key in
  probe_string_chain t h key default t.buckets.(h land t.mask)

let rec find_slice_chain h data len = function
  | [] -> None
  | e :: rest ->
      if e.hash = h && slice_matches e.key data len then Some e
      else find_slice_chain h data len rest

let find_slice t data ~len =
  let h = hash_slice data len in
  find_slice_chain h data len t.buckets.(h land t.mask)

let rec find_string_chain h key = function
  | [] -> None
  | e :: rest ->
      if e.hash = h && String.equal e.key key then Some e
      else find_string_chain h key rest

let find_string t key =
  let h = hash_string key in
  find_string_chain h key t.buckets.(h land t.mask)

let iter t f =
  Array.iter (fun chain -> List.iter (fun e -> f e.key e.value) chain) t.buckets

let fold t f init =
  Array.fold_left
    (fun acc chain ->
      List.fold_left (fun acc e -> f e.key e.value acc) acc chain)
    init t.buckets
