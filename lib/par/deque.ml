(* A Chase–Lev work-stealing deque over int items (the solver stores
   frontier-leaf indices, so a monomorphic int deque avoids boxing on the
   hot path). The owner pushes and pops at the bottom; thieves steal from
   the top with a CAS. OCaml 5 atomics are sequentially consistent, which
   is stronger than the C11 orderings the published algorithm needs, so
   the classic structure carries over without fences.

   The buffer lives behind an [Atomic.t] so a thief that races an
   owner-side grow still reads a coherent array: grow copies the live
   range [top, bottom) into a fresh array and publishes it with a single
   atomic store — the old array is never mutated again, and the values a
   stale thief reads out of it at indices in [top, bottom) are exactly the
   values the copy preserved. A slot is only reused for a new item after
   [top] has advanced past it, at which point the thief's CAS on [top]
   fails and the stale read is discarded. *)

type t = {
  top : int Atomic.t;  (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
  buf : int array Atomic.t;  (* circular; length is a power of two *)
}

type steal = Empty | Contended | Stolen of int

let min_capacity = 16

let rec round_pow2 c n = if c >= n then c else round_pow2 (c * 2) n

let create ?(capacity = min_capacity) () =
  let cap = round_pow2 min_capacity (max capacity min_capacity) in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make cap 0);
  }

let capacity q = Array.length (Atomic.get q.buf)

(* Owner-only. Grows by doubling; the live range keeps its logical
   indices, so [top]/[bottom] never change during a grow. *)
let grow q t b =
  let old = Atomic.get q.buf in
  let olen = Array.length old in
  let nu = Array.make (2 * olen) 0 in
  for i = t to b - 1 do
    nu.(i land ((2 * olen) - 1)) <- old.(i land (olen - 1))
  done;
  Atomic.set q.buf nu

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let a = Atomic.get q.buf in
  let a =
    if b - t >= Array.length a then begin
      grow q t b;
      Atomic.get q.buf
    end
    else a
  in
  a.(b land (Array.length a - 1)) <- x;
  (* the seq-cst store publishes the slot write to thieves *)
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* already empty: restore the canonical empty shape *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let a = Atomic.get q.buf in
    let x = a.(b land (Array.length a - 1)) in
    if b > t then Some x
    else begin
      (* last item: race the thieves for it via [top] *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then Some x else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else begin
    let a = Atomic.get q.buf in
    let x = a.(t land (Array.length a - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then Stolen x else Contended
  end

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
let is_empty q = length q = 0
