(** A sharded concurrent hash table with a find-or-claim protocol.

    Keys hash to one of [shard_count] independent shards, each a plain
    [Hashtbl] behind its own mutex — the bucket-ownership idiom: because
    a key belongs to exactly one shard, per-key operations never take
    more than one lock, critical sections are a few instructions, and
    [n] domains contend only when their keys collide on a shard.

    The claim protocol turns the table into a computation cache with an
    exactly-once guarantee. A slot is either [Claimed owner] (some caller
    is computing the value) or [Done v]. {!find_or_claim} atomically
    returns the finished value, reports the claim's owner, or installs a
    claim for the caller — so across any number of domains, exactly one
    caller is told [`Claimed] per key and computes it; everyone else
    either reads the value or knows who to wait for. The work-stealing
    solver keys this table by canonical game-state encodings: one domain
    evaluates each state, the rest share the result. *)

type 'a t

(** [create ?shards ()] makes an empty table with [shards] (default 128,
    rounded up to a power of two) independent shards. *)
val create : ?shards:int -> unit -> 'a t

val shard_count : 'a t -> int

type 'a claim = [ `Value of 'a | `Busy of int | `Claimed ]
type 'a slice_claim = [ `Value of 'a | `Busy of int | `Claimed of string ]

(** [find_or_claim t key ~owner] atomically probes [key]:
    - [`Value v] — the key is resolved; [v] is shared.
    - [`Busy o] — claimed by owner-id [o] and not yet resolved. [o] is
      whatever id the claimant passed; callers use it to detect
      self-re-entry (a cycle) vs. another domain to help or wait for.
    - [`Claimed] — the claim was installed for this caller, which must
      eventually {!resolve} the key. *)
val find_or_claim : 'a t -> string -> owner:int -> 'a claim

(** [find_or_claim_slice t data ~len ~owner] is {!find_or_claim} keyed by
    the slice [Bytes.sub_string data 0 len] — without materializing it.
    The hot path for solver workers probing with a reusable encode
    buffer: [`Value]/[`Busy] outcomes allocate nothing; only a fresh
    claim copies the slice to an owned string, returned as
    [`Claimed key] so the claimant can {!resolve} it after the buffer
    has been reused. *)
val find_or_claim_slice :
  'a t -> Bytes.t -> len:int -> owner:int -> 'a slice_claim

(** [resolve t key v] publishes the value for a claimed (or absent) key.
    Raises [Invalid_argument] if the key is already resolved — a second
    resolution would mean two domains computed the same key, the bug the
    claim protocol exists to rule out. *)
val resolve : 'a t -> string -> 'a -> unit

(** [get t key] is the resolved value, [None] while absent or claimed. *)
val get : 'a t -> string -> 'a option

(** [get_slice t data ~len] is {!get} keyed by the slice, allocating
    nothing beyond the result option. *)
val get_slice : 'a t -> Bytes.t -> len:int -> 'a option

(** [length t] counts all bindings (claimed and resolved); exact when
    quiescent, a racy snapshot under concurrency. *)
val length : 'a t -> int

(** [resolved t] counts resolved bindings only. *)
val resolved : 'a t -> int

(** [iter_resolved t f] applies [f] to every resolved binding. Each shard
    is snapshotted under its lock, then [f] runs outside it. *)
val iter_resolved : 'a t -> (string -> 'a -> unit) -> unit
