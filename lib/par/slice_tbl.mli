(** A string-keyed hash table probeable by a [(bytes, length)] slice.

    Built for the solver's memo probe — the single hottest operation in
    the repo. A state is encoded into a reusable {!Mdp.Key.buf}; probing
    with the buffer slice hashes in place, walks one chain comparing
    bytes, and only copies the key out to an owned string when the slice
    is genuinely new. A probe of an already-present key allocates
    nothing. Not thread-safe — callers shard and lock (see
    {!Sharded_tbl}) or keep one table per domain. *)

(** A binding. [value] is mutable so a caller can probe once and later
    overwrite the same entry in place — no second lookup. [hash] is the
    table's internal (FNV-1a) hash of [key]; the solver reuses it as a
    cheap state fingerprint for trace events. *)
type 'a entry = { hash : int; key : string; mutable value : 'a }

type 'a t

(** [create ?size ()] makes an empty table with capacity for about
    [size] (default 1024) bindings before the first resize. *)
val create : ?size:int -> unit -> 'a t

val length : 'a t -> int

(** [clear t] drops every binding, keeping the bucket array. *)
val clear : 'a t -> unit

(** [probe_slice t data ~len ~default] finds the entry whose key equals
    [Bytes.sub_string data 0 len], inserting a fresh entry bound to
    [default] (and copying the key) if absent. {!last_was_new} tells
    which happened. Allocation-free when the key is present. *)
val probe_slice : 'a t -> Bytes.t -> len:int -> default:'a -> 'a entry

(** [probe_string t key ~default] — same protocol, string key (no copy
    on insert: [key] itself is stored). *)
val probe_string : 'a t -> string -> default:'a -> 'a entry

(** [last_was_new t] is [true] iff the most recent probe inserted. *)
val last_was_new : 'a t -> bool

val find_slice : 'a t -> Bytes.t -> len:int -> 'a entry option
val find_string : 'a t -> string -> 'a entry option
val iter : 'a t -> (string -> 'a -> unit) -> unit
val fold : 'a t -> (string -> 'a -> 'b -> 'b) -> 'b -> 'b

(** The FNV-1a fold used internally, exposed so a sharded wrapper can
    route a slice and its materialized string to the same shard. The two
    forms agree: [hash_string (Bytes.sub_string d 0 len) = hash_slice d len]. *)
val hash_slice : Bytes.t -> int -> int

val hash_string : string -> int
