(** A domain pool for data-parallel sections (no dependencies beyond the
    tracing hooks of {!Obs.Ring}).

    OCaml 5 domains are expensive to spawn (~hundreds of microseconds) and
    the runtime caps their total count, so parallel workloads share a pool:
    [create ~jobs] spawns [jobs - 1] worker domains that block on a
    mutex/condition-protected task queue, and the submitting domain itself
    participates in every parallel region (so [jobs = 1] means "fully
    sequential, zero domains spawned" and a pool never deadlocks on a
    single-core machine).

    The pool makes no fairness or ordering promises inside a region — work
    items are handed out as chunks of the index space on a first-come
    basis — so callers must make per-index work independent and
    deterministic (derive per-index RNG streams from the index, merge
    results positionally). Everything in this module is safe to call from
    the domain that created the pool; pools must not be shared across
    domains or nested inside a running region.

    When {!Obs.Ring} tracing is enabled, workers record task slices (one
    per chunk grabbed from the region cursor), idle slices (blocking on
    the task queue) and task-queue depth samples into their per-domain
    rings — the raw material for the per-domain utilization timeline of
    [blunting trace analyze]. Disabled, the hooks are single atomic
    loads. *)

type t

(** [create ~jobs] builds a pool running at most [jobs] tasks
    concurrently ([jobs - 1] spawned worker domains plus the caller).
    Raises [Invalid_argument] when [jobs < 1]. *)
val create : jobs:int -> t

(** [jobs t] is the configured concurrency (including the caller). *)
val jobs : t -> int

(** [shutdown t] joins the worker domains. Idempotent; the pool is
    unusable afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, including on exceptions — the exception-safe entry point the
    fuzzer, the bench harness and the CLI use, so a raised oracle failure
    never leaves a worker domain alive. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [spawned_domains ()] is the process-wide number of currently live
    worker domains across all pools (spawned and not yet joined). After
    every [with_pool] has unwound — normally or exceptionally — this is
    0; the test suite asserts it. *)
val spawned_domains : unit -> int

(** [domain_ids t] is the runtime {!Domain.id} of each spawned worker, in
    spawn order ([jobs - 1] entries — the caller participates in regions
    under its own id, which is not listed). Stable for the pool's
    lifetime; the bench harness records them in the results document so
    traces can be joined to the PAR section. *)
val domain_ids : t -> int list

(** [map t ~n f] is [Array.init n f] with the index space partitioned
    into chunks executed across the pool. [f] runs concurrently on
    several domains and must not touch shared mutable state; the result
    array is positional, so the outcome is independent of the schedule.
    The first exception raised by any index is re-raised (after the
    region quiesces); remaining indices may or may not have run. *)
val map : t -> n:int -> (int -> 'a) -> 'a array

(** [iter t ~n f] is [map] without results. *)
val iter : t -> n:int -> (int -> unit) -> unit

(** [scatter t ~n f] runs [f 0 .. f (n-1)] across the pool with no index
    evaluated before the region opens — unlike [map], which computes
    [f 0] inline on the caller to seed its result array. Use it when the
    indices are long-running cooperative loops (the solver's per-worker
    steal loops) rather than small data-parallel items: under [map], the
    first loop would run to completion before any worker started. Each
    index is handed out exactly once; [min (jobs t) n] participants run
    concurrently (the caller included), and a participant finishing one
    index may pick up another. Exceptions propagate as in [map]. *)
val scatter : t -> n:int -> (int -> unit) -> unit

(** The concurrency used when a [--jobs] flag or explicit argument does
    not say: [BLUNTING_JOBS] from the environment if set and positive,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [env_jobs ()] is [BLUNTING_JOBS] if set and positive. *)
val env_jobs : unit -> int option
