(* Worker domains block on [work]; a parallel region enqueues one task per
   worker that repeatedly grabs chunks of the index space from a shared
   cursor. The caller runs the same chunk loop, so all [jobs] domains pull
   from one queue and the region ends when the cursor is exhausted AND every
   participant has finished its last chunk (tracked by [active]). *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when a task is enqueued or on shutdown *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    if Queue.is_empty t.queue && not t.stopping then begin
      (* traced as an idle slice only when the worker actually blocks *)
      Obs.Ring.record Obs.Ring.Pool_idle_start 0 0;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.work t.mutex
      done;
      Obs.Ring.record Obs.Ring.Pool_idle_stop 0 0
    end;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      (* a task's leftover Memprof phase tag must not leak into the next
         (unrelated) task or the idle wait *)
      Obs.Memprof.set_phase None;
      loop ()
    end
  in
  loop ()

(* Process-wide count of live worker domains across every pool: incremented
   at spawn, decremented after the join in [shutdown]. Lets callers (and the
   test suite) assert that an exception unwinding through [with_pool] left
   no domain behind. *)
let spawned = Atomic.make 0

let spawned_domains () = Atomic.get spawned

let domain_ids t = List.map (fun d -> (Domain.get_id d :> int)) t.workers

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ ->
        let d = Domain.spawn (fun () -> worker_loop t) in
        Atomic.incr spawned;
        d);
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter
    (fun d ->
      Domain.join d;
      Atomic.decr spawned)
    ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* A region: a cursor over [0, n), a completion latch, and the first
   exception any participant hit. *)
type 'a region = {
  n : int;
  chunk : int;
  next : int Atomic.t;
  results : 'a array;
  f : int -> 'a;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable active : int;  (* participants still inside the chunk loop *)
  mutable error : exn option;
}

let chunk_loop r =
  (try
     let rec go () =
       let lo = Atomic.fetch_and_add r.next r.chunk in
       if lo < r.n && (Mutex.lock r.done_mutex; let e = r.error in Mutex.unlock r.done_mutex; e = None)
       then begin
         let hi = min r.n (lo + r.chunk) in
         Obs.Ring.record Obs.Ring.Pool_task_start lo hi;
         for i = lo to hi - 1 do
           r.results.(i) <- r.f i
         done;
         Obs.Ring.record Obs.Ring.Pool_task_stop lo hi;
         go ()
       end
     in
     go ()
   with e ->
     Mutex.lock r.done_mutex;
     if r.error = None then r.error <- Some e;
     Mutex.unlock r.done_mutex);
  Mutex.lock r.done_mutex;
  r.active <- r.active - 1;
  if r.active = 0 then Condition.broadcast r.done_cond;
  Mutex.unlock r.done_mutex

let map t ~n f =
  if n < 0 then invalid_arg "Par.Pool.map: negative size";
  if t.stopping then invalid_arg "Par.Pool.map: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.init n f
  else begin
    let first = f 0 in
    let results = Array.make n first in
    (* hand out several chunks per participant to absorb imbalance without
       paying cursor contention on every index *)
    let participants = min t.jobs n in
    let chunk = max 1 (n / (participants * 4)) in
    let r =
      {
        n;
        chunk;
        next = Atomic.make 1 (* index 0 already computed *);
        results;
        f;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
        active = participants;
        error = None;
      }
    in
    Mutex.lock t.mutex;
    for _ = 2 to participants do
      Queue.add (fun () -> chunk_loop r) t.queue
    done;
    Obs.Ring.record Obs.Ring.Pool_queue_depth (Queue.length t.queue) participants;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    chunk_loop r;
    Mutex.lock r.done_mutex;
    while r.active > 0 do
      Condition.wait r.done_cond r.done_mutex
    done;
    let error = r.error in
    Mutex.unlock r.done_mutex;
    (match error with Some e -> raise e | None -> ());
    results
  end

let iter t ~n f = ignore (map t ~n (fun i : unit -> f i))

(* Unlike [map], no index is evaluated inline before the region opens:
   [map] computes [f 0] on the caller to seed the result array, which is
   harmless for small per-index tasks but serializes a region of [n]
   long-running cooperative loops (the first loop would run to completion
   before any worker started). [scatter] enqueues first, then joins the
   region, so all [min jobs n] participants run concurrently from the
   start. Chunk size is pinned to 1: each index is one long-lived task. *)
let scatter t ~n (f : int -> unit) =
  if n < 0 then invalid_arg "Par.Pool.scatter: negative size";
  if t.stopping then invalid_arg "Par.Pool.scatter: pool is shut down";
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let participants = min t.jobs n in
    let r =
      {
        n;
        chunk = 1;
        next = Atomic.make 0;
        results = Array.make n ();
        f;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
        active = participants;
        error = None;
      }
    in
    Mutex.lock t.mutex;
    for _ = 2 to participants do
      Queue.add (fun () -> chunk_loop r) t.queue
    done;
    Obs.Ring.record Obs.Ring.Pool_queue_depth (Queue.length t.queue) participants;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    chunk_loop r;
    Mutex.lock r.done_mutex;
    while r.active > 0 do
      Condition.wait r.done_cond r.done_mutex
    done;
    let error = r.error in
    Mutex.unlock r.done_mutex;
    match error with Some e -> raise e | None -> ()
  end

let env_jobs () =
  match Sys.getenv_opt "BLUNTING_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some j -> j
  | None -> Domain.recommended_domain_count ()
