(** A Chase–Lev work-stealing deque of [int] items.

    One domain owns each deque and is the only one allowed to {!push} and
    {!pop} (LIFO, at the bottom); any other domain may {!steal} (FIFO,
    from the top, one CAS per attempt). The solver's work-stealing
    parallel solve gives every worker its own deque of frontier-leaf
    indices: owners drain locally in LIFO order for cache locality, idle
    workers steal the oldest — typically largest — subtree from a victim.

    Every pushed item is returned by exactly one [pop] or [steal]; the
    implementation never drops or duplicates work. All three operations
    are lock-free ([push] may allocate to grow the buffer; the owner's
    operations never spin). *)

type t

(** [Steal] outcomes: [Empty] means the deque held no items at the time
    of the attempt; [Contended] means another thief (or the owner taking
    the last item) won the CAS — the deque may still be non-empty, so
    callers sweeping for work should retry a [Contended] victim before
    concluding the system is drained. *)
type steal = Empty | Contended | Stolen of int

(** [create ?capacity ()] makes an empty deque. [capacity] (default 16,
    rounded up to a power of two) only sizes the initial buffer; pushes
    beyond it grow the buffer by doubling. *)
val create : ?capacity:int -> unit -> t

(** Owner only. Adds [x] at the bottom. *)
val push : t -> int -> unit

(** Owner only. Removes the most recently pushed item, [None] when
    empty. *)
val pop : t -> int option

(** Any domain. Attempts to remove the oldest item. *)
val steal : t -> steal

(** A snapshot of the item count; racy under concurrency, exact when
    quiescent. *)
val length : t -> int

val is_empty : t -> bool

(** Current buffer capacity (for tests of the growth invariant). *)
val capacity : t -> int
