(* A sharded concurrent hash table with a claim protocol: the bucket-
   ownership idiom (each key hashes to exactly one shard, each shard is
   protected by its own mutex) keeps critical sections a few instructions
   long and spreads contention across [shard_count] locks, while the
   [Claimed]/[Done] slot states make "exactly one caller computes each
   key" a table-level guarantee rather than a caller convention. *)

type 'a slot = Claimed of int | Done of 'a

type 'a shard = {
  lock : Mutex.t;
  tbl : (string, 'a slot) Hashtbl.t;
  mutable resolved : int;  (* [Done] bindings in this shard *)
}

type 'a t = { shards : 'a shard array; mask : int }

let default_shards = 128

let rec round_pow2 c n = if c >= n then c else round_pow2 (c * 2) n

let create ?(shards = default_shards) () =
  let n = round_pow2 1 (max 1 shards) in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 512; resolved = 0 });
    mask = n - 1;
  }

let shard_count t = Array.length t.shards
let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

type 'a claim = [ `Value of 'a | `Busy of int | `Claimed ]

let find_or_claim t key ~owner : 'a claim =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some (Done v) -> `Value v
    | Some (Claimed o) -> `Busy o
    | None ->
        Hashtbl.add s.tbl key (Claimed owner);
        `Claimed
  in
  Mutex.unlock s.lock;
  r

let resolve t key v =
  let s = shard_of t key in
  Mutex.lock s.lock;
  (match Hashtbl.find_opt s.tbl key with
  | Some (Done _) ->
      Mutex.unlock s.lock;
      invalid_arg "Par.Sharded_tbl.resolve: key already resolved"
  | Some (Claimed _) | None ->
      Hashtbl.replace s.tbl key (Done v);
      s.resolved <- s.resolved + 1);
  Mutex.unlock s.lock

let get t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some (Done v) -> Some v
    | Some (Claimed _) | None -> None
  in
  Mutex.unlock s.lock;
  r

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let resolved t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = s.resolved in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let iter_resolved t f =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      let pairs =
        Hashtbl.fold
          (fun k slot acc ->
            match slot with Done v -> (k, v) :: acc | Claimed _ -> acc)
          s.tbl []
      in
      Mutex.unlock s.lock;
      List.iter (fun (k, v) -> f k v) pairs)
    t.shards
