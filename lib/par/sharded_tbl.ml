(* A sharded concurrent hash table with a claim protocol: the bucket-
   ownership idiom (each key hashes to exactly one shard, each shard is
   protected by its own mutex) keeps critical sections a few instructions
   long and spreads contention across [shard_count] locks, while the
   [Claimed]/[Done] slot states make "exactly one caller computes each
   key" a table-level guarantee rather than a caller convention.

   Shards hold [Slice_tbl]s so the hot probe can run on an encode-buffer
   slice: [find_or_claim_slice] hashes the slice once, routes on the high
   bits, and only materializes an owned key string when the probe
   installs a fresh claim — the claimant gets that string back (it must
   keep it to [resolve] later). Probes of already-claimed or resolved
   states allocate nothing. Shard routing uses bits *above* the ones
   [Slice_tbl] uses for its bucket index: with low bits every key in a
   shard would share them and pile into a fraction of the buckets. *)

type 'a slot = Claimed of int | Done of 'a

type 'a shard = {
  lock : Mutex.t;
  tbl : 'a slot Slice_tbl.t;
  mutable resolved : int;  (* [Done] bindings in this shard *)
}

type 'a t = { shards : 'a shard array; mask : int }

let default_shards = 128

let rec round_pow2 c n = if c >= n then c else round_pow2 (c * 2) n

let create ?(shards = default_shards) () =
  let n = round_pow2 1 (max 1 shards) in
  {
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Slice_tbl.create ~size:512 ();
            resolved = 0;
          });
    mask = n - 1;
  }

let shard_count t = Array.length t.shards
let[@inline] shard_of_hash t h = t.shards.((h lsr 17) land t.mask)
let shard_of t key = shard_of_hash t (Slice_tbl.hash_string key)

type 'a claim = [ `Value of 'a | `Busy of int | `Claimed ]
type 'a slice_claim = [ `Value of 'a | `Busy of int | `Claimed of string ]

let find_or_claim t key ~owner : 'a claim =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let e = Slice_tbl.probe_string s.tbl key ~default:(Claimed owner) in
  let r =
    if Slice_tbl.last_was_new s.tbl then `Claimed
    else match e.Slice_tbl.value with Done v -> `Value v | Claimed o -> `Busy o
  in
  Mutex.unlock s.lock;
  r

let find_or_claim_slice t data ~len ~owner : 'a slice_claim =
  let s = shard_of_hash t (Slice_tbl.hash_slice data len) in
  Mutex.lock s.lock;
  let e = Slice_tbl.probe_slice s.tbl data ~len ~default:(Claimed owner) in
  let r =
    if Slice_tbl.last_was_new s.tbl then `Claimed e.Slice_tbl.key
    else match e.Slice_tbl.value with Done v -> `Value v | Claimed o -> `Busy o
  in
  Mutex.unlock s.lock;
  r

let resolve t key v =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let e = Slice_tbl.probe_string s.tbl key ~default:(Done v) in
  if Slice_tbl.last_was_new s.tbl then s.resolved <- s.resolved + 1
  else begin
    match e.Slice_tbl.value with
    | Done _ ->
        Mutex.unlock s.lock;
        invalid_arg "Par.Sharded_tbl.resolve: key already resolved"
    | Claimed _ ->
        e.Slice_tbl.value <- Done v;
        s.resolved <- s.resolved + 1
  end;
  Mutex.unlock s.lock

let get t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r =
    match Slice_tbl.find_string s.tbl key with
    | Some { Slice_tbl.value = Done v; _ } -> Some v
    | Some { Slice_tbl.value = Claimed _; _ } | None -> None
  in
  Mutex.unlock s.lock;
  r

let get_slice t data ~len =
  let s = shard_of_hash t (Slice_tbl.hash_slice data len) in
  Mutex.lock s.lock;
  let r =
    match Slice_tbl.find_slice s.tbl data ~len with
    | Some { Slice_tbl.value = Done v; _ } -> Some v
    | Some { Slice_tbl.value = Claimed _; _ } | None -> None
  in
  Mutex.unlock s.lock;
  r

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Slice_tbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let resolved t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = s.resolved in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let iter_resolved t f =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      let pairs =
        Slice_tbl.fold s.tbl
          (fun k slot acc ->
            match slot with Done v -> (k, v) :: acc | Claimed _ -> acc)
          []
      in
      Mutex.unlock s.lock;
      List.iter (fun (k, v) -> f k v) pairs)
    t.shards
