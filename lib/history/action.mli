(** Call and return actions (Section 2.1 of the paper).

    A history is a sequence of these actions; every internal step of an
    implementation is invisible at this level. Invocation identifiers [inv]
    are unique within an execution and match a call action with its return
    action. *)

type inv_id = int

type call = {
  obj_name : string;  (** which shared object instance is invoked *)
  meth : string;  (** method name, e.g. ["read"], ["write"], ["scan"] *)
  arg : Util.Value.t;  (** the (single) argument; [Unit] when absent *)
  inv : inv_id;
  proc : int;  (** invoking process *)
  tag : string;  (** stable call-site tag used to key program outcomes *)
}

type t =
  | Call of call
  | Ret of { inv : inv_id; value : Util.Value.t; proc : int; obj_name : string }

val pp : Format.formatter -> t -> unit

(** [inv a] is the invocation identifier carried by [a]. *)
val inv : t -> inv_id

(** [proc a] is the process that performed [a]. *)
val proc : t -> int

(** [obj_name a] is the object the action belongs to. *)
val obj_name : t -> string

(** [is_call a] holds for call actions. *)
val is_call : t -> bool
