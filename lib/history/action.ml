type inv_id = int

type call = {
  obj_name : string;
  meth : string;
  arg : Util.Value.t;
  inv : inv_id;
  proc : int;
  tag : string;
}

type t =
  | Call of call
  | Ret of { inv : inv_id; value : Util.Value.t; proc : int; obj_name : string }

let pp ppf = function
  | Call c ->
      Fmt.pf ppf "call %s.%s(%a)@%d#%d" c.obj_name c.meth Util.Value.pp c.arg
        c.proc c.inv
  | Ret r ->
      Fmt.pf ppf "ret %s %a@%d#%d" r.obj_name Util.Value.pp r.value r.proc r.inv

let inv = function Call c -> c.inv | Ret r -> r.inv
let proc = function Call c -> c.proc | Ret r -> r.proc
let obj_name = function Call c -> c.obj_name | Ret r -> r.obj_name
let is_call = function Call _ -> true | Ret _ -> false
