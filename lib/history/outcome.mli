(** Program outcomes (Section 2.3).

    An outcome maps shared-object method invocations — identified by their
    stable call-site tag plus occurrence number, which relates executions of
    the same program syntax — to the values they returned. Sets of "bad"
    outcomes are represented as predicates. *)

type t

val empty : t

(** [record t ~tag ~occurrence value] extends the outcome. *)
val record : t -> tag:string -> occurrence:int -> Util.Value.t -> t

(** [find t ~tag ~occurrence] is the recorded return value, if any. *)
val find : t -> tag:string -> occurrence:int -> Util.Value.t option

(** [find1 t tag] is [find t ~tag ~occurrence:0]. *)
val find1 : t -> string -> Util.Value.t option

(** [of_history h] builds an outcome from the completed operations of a
    history, using each call's [tag] and counting repeated tags. *)
val of_history : Hist.t -> t

val bindings : t -> ((string * int) * Util.Value.t) list
val pp : Format.formatter -> t -> unit
