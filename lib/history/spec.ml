open Util

type t = {
  name : string;
  init : Value.t;
  apply : Value.t -> meth:string -> arg:Value.t -> (Value.t * Value.t) option;
}

let run t ops =
  let step acc (meth, arg) =
    match acc with
    | None -> None
    | Some (state, rets) -> (
        match t.apply state ~meth ~arg with
        | Some (state', ret) -> Some (state', ret :: rets)
        | None -> None)
  in
  match List.fold_left step (Some (t.init, [])) ops with
  | Some (state, rets) -> Some (state, List.rev rets)
  | None -> None

let register ~init =
  {
    name = "register";
    init;
    apply =
      (fun state ~meth ~arg ->
        match meth with
        | "read" -> Some (state, state)
        | "write" -> Some (arg, Value.unit)
        | _ -> None);
  }

let snapshot ~n ~init =
  {
    name = "snapshot";
    init = Value.list (List.init n (fun _ -> init));
    apply =
      (fun state ~meth ~arg ->
        let cells = Value.to_list state in
        match meth with
        | "scan" -> Some (state, state)
        | "update" ->
            let idx, v = Value.to_pair arg in
            let i = Value.to_int idx in
            if i < 0 || i >= n then None
            else
              let cells' = List.mapi (fun j c -> if j = i then v else c) cells in
              Some (Value.list cells', Value.unit)
        | _ -> None);
  }

let max_register =
  {
    name = "max_register";
    init = Value.int 0;
    apply =
      (fun state ~meth ~arg ->
        match meth with
        | "read" -> Some (state, state)
        | "write" ->
            let v = Value.to_int arg and cur = Value.to_int state in
            Some (Value.int (max cur v), Value.unit)
        | _ -> None);
  }

let counter =
  {
    name = "counter";
    init = Value.int 0;
    apply =
      (fun state ~meth ~arg:_ ->
        match meth with
        | "read" -> Some (state, state)
        | "inc" -> Some (Value.int (Value.to_int state + 1), Value.unit)
        | _ -> None);
  }
