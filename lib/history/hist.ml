type t = Action.t list

type op = {
  call : Action.call;
  ret : Util.Value.t option;
  call_index : int;
  ret_index : int option;
}

let ops h =
  let rets = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      match a with
      | Action.Ret r -> Hashtbl.replace rets r.inv (r.value, i)
      | Action.Call _ -> ())
    h;
  let collect i a acc =
    match a with
    | Action.Call c ->
        let ret, ret_index =
          match Hashtbl.find_opt rets c.inv with
          | Some (v, j) -> (Some v, Some j)
          | None -> (None, None)
        in
        { call = c; ret; call_index = i; ret_index } :: acc
    | Action.Ret _ -> acc
  in
  List.rev (List.fold_left (fun (i, acc) a -> (i + 1, collect i a acc)) (0, []) h |> snd)

let pending h = List.filter (fun o -> o.ret = None) (ops h)

let complete h =
  let pending_invs =
    List.filter_map (fun o -> if o.ret = None then Some o.call.inv else None) (ops h)
  in
  List.filter
    (fun a ->
      match a with
      | Action.Call c -> not (List.mem c.inv pending_invs)
      | Action.Ret _ -> true)
    h

let project_obj h name = List.filter (fun a -> Action.obj_name a = name) h
let project_proc h p = List.filter (fun a -> Action.proc a = p) h

let well_formed h =
  let seen_call = Hashtbl.create 16 and seen_ret = Hashtbl.create 16 in
  let pending_of_proc = Hashtbl.create 16 in
  let step ok a =
    ok
    &&
    match a with
    | Action.Call c ->
        if Hashtbl.mem seen_call c.inv then false
        else if Hashtbl.mem pending_of_proc c.proc then false
        else begin
          Hashtbl.replace seen_call c.inv ();
          Hashtbl.replace pending_of_proc c.proc c.inv;
          true
        end
    | Action.Ret r ->
        if (not (Hashtbl.mem seen_call r.inv)) || Hashtbl.mem seen_ret r.inv then false
        else if Hashtbl.find_opt pending_of_proc r.proc <> Some r.inv then false
        else begin
          Hashtbl.replace seen_ret r.inv ();
          Hashtbl.remove pending_of_proc r.proc;
          true
        end
  in
  List.fold_left step true h

let is_sequential h =
  let rec go = function
    | [] -> true
    | Action.Call c :: Action.Ret r :: rest -> r.inv = c.inv && go rest
    | _ -> false
  in
  go h

let precedes _h a b =
  match a.ret_index with Some i -> i < b.call_index | None -> false

let pp ppf h = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Action.pp) h
