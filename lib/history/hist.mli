(** Histories: the projection of an execution on call and return actions. *)

type t = Action.t list
(** Actions in temporal order. *)

(** A completed or pending operation extracted from a history. *)
type op = {
  call : Action.call;
  ret : Util.Value.t option;  (** [None] when the invocation is pending *)
  call_index : int;  (** position of the call action in the history *)
  ret_index : int option;  (** position of the return action, if any *)
}

(** [ops h] lists the operations of [h] in call order. *)
val ops : t -> op list

(** [pending h] lists the operations without a matching return. *)
val pending : t -> op list

(** [complete h] removes the call actions of pending invocations. *)
val complete : t -> t

(** [project_obj h name] keeps only the actions of object [name]. *)
val project_obj : t -> string -> t

(** [project_proc h p] keeps only the actions of process [p]. *)
val project_proc : t -> int -> t

(** [well_formed h] checks the conditions of Section 2.1: at most one call and
    one return per invocation identifier, every return preceded by its call,
    and per-process sequentiality (a process has at most one pending
    invocation at a time). *)
val well_formed : t -> bool

(** [is_sequential h] holds when every call is immediately followed by its
    return, i.e. [h] could be a history of an atomic object. *)
val is_sequential : t -> bool

(** [precedes h a b] holds when operation [a] returns before operation [b] is
    called (the real-time order that linearizations must respect). *)
val precedes : t -> op -> op -> bool

val pp : Format.formatter -> t -> unit
