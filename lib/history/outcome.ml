module Key = struct
  type t = string * int

  let compare = compare
end

module M = Map.Make (Key)

type t = Util.Value.t M.t

let empty = M.empty
let record t ~tag ~occurrence v = M.add (tag, occurrence) v t
let find t ~tag ~occurrence = M.find_opt (tag, occurrence) t
let find1 t tag = find t ~tag ~occurrence:0

let of_history h =
  let counts = Hashtbl.create 16 in
  let next tag =
    let c = Option.value ~default:0 (Hashtbl.find_opt counts tag) in
    Hashtbl.replace counts tag (c + 1);
    c
  in
  List.fold_left
    (fun acc (op : Hist.op) ->
      match op.ret with
      | None -> acc
      | Some v -> record acc ~tag:op.call.tag ~occurrence:(next op.call.tag) v)
    empty (Hist.ops h)

let bindings = M.bindings

let pp ppf t =
  let item ppf ((tag, occ), v) = Fmt.pf ppf "%s/%d = %a" tag occ Util.Value.pp v in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") item) (bindings t)
