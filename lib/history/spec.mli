(** Sequential specifications.

    A specification is a deterministic abstract machine: applying a method to
    an abstract state yields the successor state and the return value. A
    history is linearizable w.r.t. a specification iff some permutation of its
    completed operations (plus possibly some pending ones) replays through the
    machine with matching return values while respecting real-time order. *)

type t = {
  name : string;
  init : Util.Value.t;  (** initial abstract state *)
  apply : Util.Value.t -> meth:string -> arg:Util.Value.t -> (Util.Value.t * Util.Value.t) option;
      (** [apply state ~meth ~arg] is [Some (state', ret)], or [None] when the
          method/argument is not part of the object's interface. *)
}

(** [run t ops] replays a sequential history, returning the final state and
    the produced return values; [None] if some call is illegal. *)
val run : t -> (string * Util.Value.t) list -> (Util.Value.t * Util.Value.t list) option

(** {1 Standard specifications} *)

(** Read/write register initialised to [init]. Methods: ["read"] (arg
    ignored) and ["write"] (returns [Unit]). *)
val register : init:Util.Value.t -> t

(** [n]-component snapshot object initialised to [init] everywhere. Methods:
    ["update"] with argument [Pair (Int i, v)] and ["scan"] returning the
    [List] of components. *)
val snapshot : n:int -> init:Util.Value.t -> t

(** Max-register over integers. Methods: ["read"] and ["write"] with an
    [Int] argument. *)
val max_register : t

(** Monotone counter. Methods: ["inc"] and ["read"]. *)
val counter : t
