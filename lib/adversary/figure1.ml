open Sim

(* ---- script driver primitives ------------------------------------- *)

(* Step process p while it has an enabled client step: runs it up to its
   next blocking receive (or to termination). *)
let run_to_block t p =
  let continue () = List.mem (Runtime.Step p) (Runtime.enabled t) in
  while continue () do
    Runtime.step t (Runtime.Step p)
  done

(* Deliver the newest in-transit message matching the given shape: older
   same-shape messages are stale leftovers of completed phases (their
   sequence numbers no longer match), and the script always targets the
   process's current operation. *)
let deliver t ~obj ~tag ~src ~dst =
  let matches (m : Runtime.in_transit) =
    m.src = src && m.dst = dst
    && m.msg.obj_name = obj
    && Message.tag_of m.msg.body = tag
  in
  match List.find_opt matches (List.rev (Runtime.in_transit t)) with
  | Some m -> Runtime.step t (Runtime.Deliver m.msg_id)
  | None ->
      Fmt.failwith "figure1: no in-transit %s %s message p%d->p%d (transit: %a)"
        obj tag src dst
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (m : Runtime.in_transit) ->
             Fmt.pf ppf "m%d p%d->p%d %a" m.msg_id m.src m.dst Message.pp m.msg))
        (Runtime.in_transit t)

(* Deliver a message and then let the receiving client run to its next
   block, consuming it. *)
let deliver_and_run t ~obj ~tag ~src ~dst =
  deliver t ~obj ~tag ~src ~dst;
  run_to_block t dst

(* Run everything concerning object [obj] and the given processes to
   quiescence: step any of them when possible, else deliver any in-transit
   message of [obj]. Messages of other objects are left untouched. *)
let drain t ~obj procs =
  let progress () =
    let evs = Runtime.enabled t in
    match List.find_opt (fun p -> List.mem (Runtime.Step p) evs) procs with
    | Some p ->
        Runtime.step t (Runtime.Step p);
        true
    | None -> (
        match
          List.find_opt
            (fun (m : Runtime.in_transit) -> m.msg.obj_name = obj)
            (Runtime.in_transit t)
        with
        | Some m ->
            Runtime.step t (Runtime.Deliver m.msg_id);
            true
        | None -> false)
  in
  while progress () do
    ()
  done

(* ---- the scripted attack ------------------------------------------ *)

(* Process ids: p0, p1 write R; p2 reads. Every process is also an ABD
   server for R and C. *)

let shared_prefix t =
  (* p0 invokes Write(0) on R and broadcasts its query *)
  run_to_block t 0;
  (* p0 receives the first reply to its query from itself: ⊥, (0,0) *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:0 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:0 ~dst:0;
  (* p1 invokes Write(1): full query phase with replies from servers 0, 1
     (all still ⊥, (0,0)), then broadcasts its update (1, (1,1)) *)
  run_to_block t 1;
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:1 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:1 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:0 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:1 ~dst:1;
  (* p2 invokes its first Read of R; its query reaches server 0 before
     p1's update does, so the frozen reply carries ⊥, (0,0) *)
  run_to_block t 2;
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:0 ~dst:2;
  (* p1's update reaches servers 0 and 1; both ack; its Write completes *)
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:1 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:1 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:1 ~dst:1;
  (* p1 now flips the coin (run_to_block above stopped at the write's
     pending acks; after completion p1's next step IS the coin flip, which
     run_to_block already executed as part of the ack consumption run).
     Then p1 performs its Write on C in full. *)
  drain t ~obj:"C" [ 1 ]

let case_coin_0 t =
  (* p0's second reply comes from the still-⊥ server 2 *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:2 ~dst:0;
  (* p0 adopts timestamp (1,0) and broadcasts its update; it reaches
     servers 0 and 2 (server 0 keeps (1,1), server 2 becomes (0,(1,0))) *)
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:0 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:2 ~dst:0;
  (* p2's second reply comes from itself, now holding (0,(1,0)): its first
     Read adopts (0,(1,0)) and returns 0 after writing back to servers 2
     and 0 *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:2 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:2 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:2;
  (* p2's second Read queries servers 0 and 1, both holding (1,(1,1)):
     it returns 1 *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:1 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:1 ~dst:2;
  (* p2 reads C (after p1's write): c = 0 = u1, u2 = 1 = 1 - c *)
  drain t ~obj:"C" [ 2 ]

let case_coin_1 t =
  (* p0's second reply comes from server 1, carrying (1,(1,1)) *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:0 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:1 ~dst:0;
  (* p2's second reply also comes from server 1: its first Read adopts
     (1,(1,1)) and returns 1, writing back to servers 1 and 2 *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:1 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:1 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:2 ~dst:2;
  (* p0 adopts timestamp (2,0); its update (0,(2,0)) reaches every server *)
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:0 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:0 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:1 ~dst:0;
  (* p2's second Read queries servers 0 and 1, both holding (0,(2,0)):
     it returns 0 *)
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"query" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"reply" ~src:1 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:0;
  deliver_and_run t ~obj:"R" ~tag:"update" ~src:2 ~dst:1;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:0 ~dst:2;
  deliver_and_run t ~obj:"R" ~tag:"ack" ~src:1 ~dst:2;
  (* p2 reads C: c = 1 = u1, u2 = 0 = 1 - c *)
  drain t ~obj:"C" [ 2 ]

let run ~coin =
  if coin <> 0 && coin <> 1 then invalid_arg "Figure1.run: coin must be 0 or 1";
  let config = Programs.Weakener.abd_config () in
  let t = Runtime.create config (Runtime.Tape [| coin |]) in
  shared_prefix t;
  if coin = 0 then case_coin_0 t else case_coin_1 t;
  (* mop up: finish every pending operation fairly so the schedule is
     complete (Section 2.4 assumes complete schedules) *)
  let rng = Util.Rng.of_int 0xF16 in
  (match
     Runtime.run t ~max_steps:100_000 (fun _t evs -> Util.Rng.pick rng evs)
   with
  | Runtime.Completed -> ()
  | Runtime.Deadlocked -> failwith "figure1: deadlock during mop-up"
  | Runtime.Step_limit_reached -> failwith "figure1: mop-up step limit");
  t

let always_wins () =
  List.for_all
    (fun coin ->
      let t = run ~coin in
      Programs.Weakener.bad (Runtime.outcome t))
    [ 0; 1 ]
