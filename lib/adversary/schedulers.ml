open Sim

type t = Runtime.t -> Runtime.event list -> Runtime.event

let uniform rng _t evs = Util.Rng.pick rng evs

let round_robin () =
  let next = ref 0 in
  fun t evs ->
    let n = Runtime.n t in
    let rec find tries =
      if tries >= n then
        match
          List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs
        with
        | Some e -> e
        | None -> List.hd evs
      else begin
        let p = (!next + tries) mod n in
        if List.mem (Runtime.Step p) evs then begin
          next := (p + 1) mod n;
          Runtime.Step p
        end
        else find (tries + 1)
      end
    in
    find 0

let eager_delivery _t evs =
  match List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs with
  | Some e -> e
  | None -> List.hd evs

let prefer_process p fallback t evs =
  if List.mem (Runtime.Step p) evs then Runtime.Step p else fallback t evs

let of_codes ?fallback codes =
  let pos = ref 0 in
  fun t evs ->
    if !pos >= Array.length codes then
      match fallback with
      | Some f -> f t evs
      | None -> List.hd evs
    else begin
      let code = codes.(!pos) in
      incr pos;
      List.nth evs (abs code mod List.length evs)
    end

let lazy_delivery rng _t evs =
  let steps = List.filter (function Runtime.Step _ -> true | _ -> false) evs in
  let pool = if steps = [] then evs else steps in
  Util.Rng.pick rng pool

let recording policy rng recorded t evs =
  let e = policy rng t evs in
  let i =
    let rec index j = function
      | [] -> invalid_arg "Schedulers.recording: policy chose a disabled event"
      | e' :: rest -> if e' = e then j else index (j + 1) rest
    in
    index 0 evs
  in
  recorded := i :: !recorded;
  e
