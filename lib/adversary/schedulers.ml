open Sim

type t = Runtime.t -> Runtime.event list -> Runtime.event

let uniform rng _t evs = Util.Rng.pick rng evs

let round_robin () =
  let next = ref 0 in
  fun t evs ->
    let n = Runtime.n t in
    let rec find tries =
      if tries >= n then
        match
          List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs
        with
        | Some e -> e
        | None -> List.hd evs
      else begin
        let p = (!next + tries) mod n in
        if List.mem (Runtime.Step p) evs then begin
          next := (p + 1) mod n;
          Runtime.Step p
        end
        else find (tries + 1)
      end
    in
    find 0

let eager_delivery _t evs =
  match List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs with
  | Some e -> e
  | None -> List.hd evs

let prefer_process p fallback t evs =
  if List.mem (Runtime.Step p) evs then Runtime.Step p else fallback t evs
