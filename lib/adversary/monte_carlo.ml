open Util

type result = {
  trials : int;
  bad : int;
  fraction : float;
  ci_low : float;
  ci_high : float;
}

let estimate ~trials ~seed ~scheduler ~bad mk_config =
  let master = Rng.of_int seed in
  let bad_count = ref 0 in
  for _ = 1 to trials do
    let sched_rng = Rng.split master in
    let tape_rng = Rng.split master in
    let t = Sim.Runtime.create (mk_config ()) (Sim.Runtime.Gen tape_rng) in
    (match Sim.Runtime.run t ~max_steps:1_000_000 (scheduler sched_rng) with
    | Sim.Runtime.Completed ->
        if bad (Sim.Runtime.outcome t) then incr bad_count
    | Sim.Runtime.Deadlocked -> failwith "Monte_carlo.estimate: deadlock"
    | Sim.Runtime.Step_limit_reached ->
        failwith "Monte_carlo.estimate: step limit reached");
  done;
  let fraction = Stats.fraction ~successes:!bad_count ~trials in
  let ci_low, ci_high = Stats.binomial_ci ~successes:!bad_count ~trials in
  { trials; bad = !bad_count; fraction; ci_low; ci_high }

let pp ppf r =
  Fmt.pf ppf "%d/%d = %.4f [%.4f, %.4f]" r.bad r.trials r.fraction r.ci_low
    r.ci_high
