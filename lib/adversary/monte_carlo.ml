open Util

let log_src = Logs.Src.create "blunting.adversary" ~doc:"Monte-Carlo estimation"

module Log = (val Logs.src_log log_src : Logs.LOG)

module M = struct
  open Obs.Metrics

  let trials = counter ~help:"Monte-Carlo trials run" "mc.trials"
  let bad = counter ~help:"trials with the bad outcome" "mc.bad_outcomes"
  let deadlocks = counter ~help:"trials ending deadlocked" "mc.deadlocks"
  let step_limited = counter ~help:"trials hitting the step limit" "mc.step_limited"
  let trial_steps = histogram ~help:"per-trial simulated step count" "mc.trial_steps"
end

type result = {
  trials : int;
  bad : int;
  deadlocks : int;
  step_limited : int;
  fraction : float;
  ci_low : float;
  ci_high : float;
}

let estimate ?(max_steps = 1_000_000) ~trials ~seed ~scheduler ~bad mk_config =
  let master = Rng.of_int seed in
  let bad_count = ref 0 in
  let deadlocks = ref 0 in
  let step_limited = ref 0 in
  for trial = 1 to trials do
    let sched_rng = Rng.split master in
    let tape_rng = Rng.split master in
    let t = Sim.Runtime.create (mk_config ()) (Sim.Runtime.Gen tape_rng) in
    let outcome = Sim.Runtime.run t ~max_steps (scheduler sched_rng) in
    Obs.Metrics.incr M.trials;
    Obs.Metrics.observe M.trial_steps
      (float_of_int (Sim.Trace.count_steps (Sim.Runtime.trace t)));
    (match outcome with
    | Sim.Runtime.Completed ->
        if bad (Sim.Runtime.outcome t) then begin
          incr bad_count;
          Obs.Metrics.incr M.bad
        end
    | Sim.Runtime.Deadlocked ->
        incr deadlocks;
        Obs.Metrics.incr M.deadlocks
    | Sim.Runtime.Step_limit_reached ->
        incr step_limited;
        Obs.Metrics.incr M.step_limited);
    Log.debug (fun m ->
        m "trial %d/%d: %a, bad so far %d" trial trials Sim.Runtime.pp_run_result
          outcome !bad_count)
  done;
  if !deadlocks > 0 || !step_limited > 0 then
    Log.warn (fun m ->
        m "%d/%d trials deadlocked, %d/%d hit the %d-step limit" !deadlocks trials
          !step_limited trials max_steps);
  let fraction = Stats.fraction ~successes:!bad_count ~trials in
  let ci_low, ci_high = Stats.binomial_ci ~successes:!bad_count ~trials in
  Log.info (fun m ->
      m "%d trials: bad %d (%.4f [%.4f, %.4f])" trials !bad_count fraction ci_low
        ci_high);
  {
    trials;
    bad = !bad_count;
    deadlocks = !deadlocks;
    step_limited = !step_limited;
    fraction;
    ci_low;
    ci_high;
  }

let pp ppf r =
  Fmt.pf ppf "%d/%d = %.4f [%.4f, %.4f]" r.bad r.trials r.fraction r.ci_low
    r.ci_high;
  if r.deadlocks > 0 then Fmt.pf ppf " (%d deadlocked)" r.deadlocks;
  if r.step_limited > 0 then Fmt.pf ppf " (%d step-limited)" r.step_limited
