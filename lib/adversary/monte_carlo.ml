open Util

let log_src = Logs.Src.create "blunting.adversary" ~doc:"Monte-Carlo estimation"

module Log = (val Logs.src_log log_src : Logs.LOG)

module M = struct
  open Obs.Metrics

  let trials = counter ~help:"Monte-Carlo trials run" "mc.trials"
  let bad = counter ~help:"trials with the bad outcome" "mc.bad_outcomes"
  let deadlocks = counter ~help:"trials ending deadlocked" "mc.deadlocks"
  let step_limited = counter ~help:"trials hitting the step limit" "mc.step_limited"
  let trial_steps = histogram ~help:"per-trial simulated step count" "mc.trial_steps"
end

type result = {
  trials : int;
  bad : int;
  deadlocks : int;
  step_limited : int;
  fraction : float;
  ci_low : float;
  ci_high : float;
}

(* What one trial reports back for the sequential merge. Trials are pure
   functions of (seed, index): both RNG streams are derived from the pair,
   so any domain can run any trial and the merged tallies cannot depend on
   the schedule. *)
type trial = { outcome : Sim.Runtime.run_result; steps : int; is_bad : bool }

let run_trial ~max_steps ~seed ~scheduler ~bad mk_config i =
  let sched_rng = Rng.stream ~seed ~index:(2 * i) in
  let tape_rng = Rng.stream ~seed ~index:((2 * i) + 1) in
  (* trials only read the outcome and the step count — a History-level
     trace skips allocating the per-event entries on the hot loop *)
  let t =
    Sim.Runtime.create ~trace_level:Sim.Trace.History (mk_config ())
      (Sim.Runtime.Gen tape_rng)
  in
  let outcome = Sim.Runtime.run t ~max_steps (scheduler sched_rng) in
  let steps = Sim.Trace.count_steps (Sim.Runtime.trace t) in
  let is_bad =
    match outcome with
    | Sim.Runtime.Completed -> bad (Sim.Runtime.outcome t)
    | Sim.Runtime.Deadlocked | Sim.Runtime.Step_limit_reached -> false
  in
  { outcome; steps; is_bad }

let estimate ?(max_steps = 1_000_000) ?pool ?(jobs = 1) ~trials ~seed
    ~scheduler ~bad mk_config =
  let run = run_trial ~max_steps ~seed ~scheduler ~bad mk_config in
  let results =
    if jobs <= 1 && pool = None then Array.init trials run
    else
      match pool with
      | Some p -> Par.Pool.map p ~n:trials run
      | None -> Par.Pool.with_pool ~jobs (fun p -> Par.Pool.map p ~n:trials run)
  in
  (* merge on the calling domain, in trial order: counters, metrics and
     logging all stay single-domain *)
  let bad_count = ref 0 in
  let deadlocks = ref 0 in
  let step_limited = ref 0 in
  Array.iteri
    (fun i r ->
      Obs.Metrics.incr M.trials;
      Obs.Metrics.observe M.trial_steps (float_of_int r.steps);
      (match r.outcome with
      | Sim.Runtime.Completed ->
          if r.is_bad then begin
            incr bad_count;
            Obs.Metrics.incr M.bad
          end
      | Sim.Runtime.Deadlocked ->
          incr deadlocks;
          Obs.Metrics.incr M.deadlocks
      | Sim.Runtime.Step_limit_reached ->
          incr step_limited;
          Obs.Metrics.incr M.step_limited);
      Log.debug (fun m ->
          m "trial %d/%d: %a, bad so far %d" (i + 1) trials
            Sim.Runtime.pp_run_result r.outcome !bad_count))
    results;
  if !deadlocks > 0 || !step_limited > 0 then
    Log.warn (fun m ->
        m "%d/%d trials deadlocked, %d/%d hit the %d-step limit" !deadlocks trials
          !step_limited trials max_steps);
  let fraction = Stats.fraction ~successes:!bad_count ~trials in
  let ci_low, ci_high = Stats.binomial_ci ~successes:!bad_count ~trials in
  Log.info (fun m ->
      m "%d trials: bad %d (%.4f [%.4f, %.4f])" trials !bad_count fraction ci_low
        ci_high);
  {
    trials;
    bad = !bad_count;
    deadlocks = !deadlocks;
    step_limited = !step_limited;
    fraction;
    ci_low;
    ci_high;
  }

let pp ppf r =
  Fmt.pf ppf "%d/%d = %.4f [%.4f, %.4f]" r.bad r.trials r.fraction r.ci_low
    r.ci_high;
  if r.deadlocks > 0 then Fmt.pf ppf " (%d deadlocked)" r.deadlocks;
  if r.step_limited > 0 then Fmt.pf ppf " (%d step-limited)" r.step_limited
