(** The strong adversary of Figure 1 / Appendix A.2, replayed against the
    {e real} simulated ABD implementation.

    The adversary drives the weakener program (Algorithm 1, both registers
    implemented with plain ABD) so that [p2] passes the test at line 7 and
    loops forever, {e whatever} the coin returns:

    - shared prefix (independent of the coin): [p0]'s Write(0) obtains one
      query reply (from itself, still ⊥); [p1]'s Write(1) completes its
      query phase and broadcasts its update with timestamp (1,1); [p2]'s
      first Read obtains one query reply from server 0 {e before} [p1]'s
      update reaches it; [p1]'s update is delivered to servers 0 and 1 and
      its Write completes; [p1] flips the coin and writes [C];

    - coin = 0: [p0]'s second reply comes from the still-⊥ server 2, so its
      Write uses timestamp (1,0); the update reaches server 2; [p2]'s
      second reply comes from server 2 carrying (0,(1,0)), so the first
      Read returns 0; the second Read queries servers 0 and 1, both
      holding (1,(1,1)), and returns 1;

    - coin = 1: [p0]'s second reply comes from server 1 carrying (1,(1,1)),
      so its Write uses timestamp (2,0); [p2]'s second reply also comes
      from server 1, so the first Read returns 1; [p0]'s update (0,(2,0))
      then reaches every server, and the second Read returns 0.

    Because the two branches share their schedule up to (and including) the
    coin flip, the script is a legitimate strong adversary (Section 2.4).

    This is the machine-checked counterpart of the paper's claim that the
    termination probability of [p2] is 0 with plain ABD. *)

(** [run ~coin] executes the full scripted attack with the program coin
    forced to [coin] (0 or 1) and returns the finished runtime. Raises
    [Failure] if any scripted event is impossible (i.e. the ABD
    implementation diverged from Algorithm 3's message flow). *)
val run : coin:int -> Sim.Runtime.t

(** [always_wins ()] replays both branches and checks that the outcome is
    bad — [u1 = c] and [u2 = 1 - c] — in each: the adversary forces
    non-termination with probability 1. *)
val always_wins : unit -> bool
