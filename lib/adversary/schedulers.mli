(** Schedulers: adversaries as functions from the full runtime state (strong
    adversaries observe everything, including past random results) and the
    enabled events to a choice. *)

type t = Sim.Runtime.t -> Sim.Runtime.event list -> Sim.Runtime.event

(** [uniform rng] picks uniformly among enabled events — a probabilistically
    fair, non-adversarial baseline. *)
val uniform : Util.Rng.t -> t

(** [round_robin ()] cycles through processes, delivering the oldest
    in-transit message when the favoured process is blocked. Stateful;
    create one per run. *)
val round_robin : unit -> t

(** [eager_delivery] always prefers delivering the oldest in-transit message,
    else steps the lowest-id runnable process: produces almost-sequential
    executions. *)
val eager_delivery : t

(** [prefer_process p fallback] steps [p] whenever possible, otherwise
    defers to [fallback] — a starvation-style adversary building block. *)
val prefer_process : int -> t -> t
