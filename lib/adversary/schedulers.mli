(** Schedulers: adversaries as functions from the full runtime state (strong
    adversaries observe everything, including past random results) and the
    enabled events to a choice. *)

type t = Sim.Runtime.t -> Sim.Runtime.event list -> Sim.Runtime.event

(** [uniform rng] picks uniformly among enabled events — a probabilistically
    fair, non-adversarial baseline. *)
val uniform : Util.Rng.t -> t

(** [round_robin ()] cycles through processes, delivering the oldest
    in-transit message when the favoured process is blocked. Stateful;
    create one per run. *)
val round_robin : unit -> t

(** [eager_delivery] always prefers delivering the oldest in-transit message,
    else steps the lowest-id runnable process: produces almost-sequential
    executions. *)
val eager_delivery : t

(** [prefer_process p fallback] steps [p] whenever possible, otherwise
    defers to [fallback] — a starvation-style adversary building block. *)
val prefer_process : int -> t -> t

(** [of_codes codes] replays a schedule of {e choice codes}: the i-th
    event is [List.nth evs (codes.(i) mod length evs)]. Because each code
    is reduced modulo the number of currently enabled events, {e every}
    integer array is a valid schedule for every configuration — the
    property the fuzzer's shrinker relies on (deleting or truncating
    codes always yields a runnable schedule). After the array is
    exhausted the scheduler defers to [fallback] (default: the first
    enabled event). Stateful; create one per run. *)
val of_codes : ?fallback:t -> int array -> t

(** [lazy_delivery rng] steps a uniformly chosen runnable process and
    delivers a message only when every process is blocked — the
    delivery-procrastinating adversary style that starves update phases
    and exposes stale-read protocol bugs uniform scheduling essentially
    never finds. *)
val lazy_delivery : Util.Rng.t -> t

(** [recording policy rng recorded] drives [policy rng] and prepends the
    chosen event's index among the enabled events to [recorded] (newest
    first) — the recorded reversed list replayed through {!of_codes}
    reproduces the run regardless of which policy generated it.
    Stateful; create one per run. *)
val recording : (Util.Rng.t -> t) -> Util.Rng.t -> int list ref -> t
