(** Monte-Carlo estimation of bad-outcome probabilities on the simulator. *)

type result = {
  trials : int;
  bad : int;
  fraction : float;
  ci_low : float;  (** 95% Wilson interval *)
  ci_high : float;
}

(** [estimate ~trials ~seed ~scheduler ~bad mk_config] runs [trials]
    independent executions of freshly built configurations (so object state
    never leaks between trials) under the given scheduler factory, and
    counts outcomes satisfying [bad]. *)
val estimate :
  trials:int ->
  seed:int ->
  scheduler:(Util.Rng.t -> Schedulers.t) ->
  bad:(History.Outcome.t -> bool) ->
  (unit -> Sim.Runtime.config) ->
  result

val pp : Format.formatter -> result -> unit
