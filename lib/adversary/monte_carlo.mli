(** Monte-Carlo estimation of bad-outcome probabilities on the simulator. *)

type result = {
  trials : int;
  bad : int;  (** completed trials satisfying the predicate *)
  deadlocks : int;  (** trials that ended with no enabled event *)
  step_limited : int;  (** trials that exhausted the step budget *)
  fraction : float;  (** [bad / trials] *)
  ci_low : float;  (** 95% Wilson interval *)
  ci_high : float;
}

(** [estimate ?max_steps ?pool ?jobs ~trials ~seed ~scheduler ~bad
    mk_config] runs [trials] independent executions of freshly built
    configurations (so object state never leaks between trials) under the
    given scheduler factory, and counts outcomes satisfying [bad].

    Trial [i] draws its scheduler and tape randomness from
    [Rng.stream ~seed ~index:(2i)] and [Rng.stream ~seed ~index:(2i+1)] —
    pure functions of [(seed, i)], not splits of a shared master — so
    trials are embarrassingly parallel: with [jobs > 1] (or an explicit
    [pool]) they run across that many domains and the merged tallies,
    metrics and result are bit-identical at every job count. Counting,
    [Obs] metrics and logging all happen on the calling domain after the
    trials return.

    Abnormal terminations do not raise: trials that deadlock or hit
    [max_steps] (default 1,000,000) are counted in the corresponding
    fields — and in the [mc.deadlocks] / [mc.step_limited] metrics — and
    the estimate degrades gracefully. [fraction] and the confidence
    interval keep all [trials] in the denominator, so an abnormal trial
    counts as "bad not observed"; callers needing a conditional estimate
    can recompute from the fields. Progress logs at debug on the
    [blunting.adversary] source; a warning summarizes abnormal trials. *)
val estimate :
  ?max_steps:int ->
  ?pool:Par.Pool.t ->
  ?jobs:int ->
  trials:int ->
  seed:int ->
  scheduler:(Util.Rng.t -> Schedulers.t) ->
  bad:(History.Outcome.t -> bool) ->
  (unit -> Sim.Runtime.config) ->
  result

val pp : Format.formatter -> result -> unit

val log_src : Logs.src
