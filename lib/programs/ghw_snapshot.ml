open Util
open Sim
open Sim.Proc.Syntax

let tag_s1 = "p2.s1"
let tag_s2 = "p2.s2"
let tag_c = "p2.c"

let config ~(snapshot : Obj_impl.t) ~(c : Obj_impl.t) : Runtime.config =
  let program ~self =
    match self with
    | 0 ->
        let* _ =
          Obj_impl.call snapshot ~self ~tag:"p0.update" ~meth:"update"
            ~arg:(Value.pair (Value.int 0) (Value.int 1))
        in
        Proc.return ()
    | 1 ->
        let* _ =
          Obj_impl.call snapshot ~self ~tag:"p1.update" ~meth:"update"
            ~arg:(Value.pair (Value.int 1) (Value.int 1))
        in
        let* coin = Proc.random ~kind:Proc.Program_random 2 in
        let* _ =
          Obj_impl.call c ~self ~tag:"p1.writeC" ~meth:"write"
            ~arg:(Value.int coin)
        in
        Proc.return ()
    | 2 ->
        let* _ = Obj_impl.call snapshot ~self ~tag:tag_s1 ~meth:"scan" ~arg:Value.unit in
        let* _ = Obj_impl.call snapshot ~self ~tag:tag_s2 ~meth:"scan" ~arg:Value.unit in
        let* _ = Obj_impl.call c ~self ~tag:tag_c ~meth:"read" ~arg:Value.unit in
        Proc.return ()
    | p -> Fmt.invalid_arg "ghw_snapshot: no process %d" p
  in
  {
    n = 3;
    objects = [ snapshot; c ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let u scan_value =
  match Value.to_list scan_value with
  | c0 :: c1 :: _ -> (
      let set v = Value.equal v (Value.int 1) in
      match (set c0, set c1) with
      | true, false -> Some 0
      | false, true -> Some 1
      | _ -> None)
  | _ -> None

let bad outcome =
  match History.Outcome.find1 outcome tag_c with
  | Some (Value.Int coin) when coin = 0 || coin = 1 -> (
      match History.Outcome.find1 outcome tag_s1 with
      | Some s1 -> u s1 = Some coin
      | None -> false)
  | _ -> false

let c_reg () = Objects.Atomic_register.make ~name:"C" ~init:(Value.int (-1))

let afek_config () =
  config
    ~snapshot:(Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0))
    ~c:(c_reg ())

let afek_k_config ~k =
  config
    ~snapshot:(Objects.Afek_snapshot.make_k ~k ~name:"S" ~n:3 ~init:(Value.int 0))
    ~c:(c_reg ())

(* An atomic-equivalent snapshot: the whole component array lives in one
   base register; scan is a single read and update a single atomic
   read-modify-write, so both methods linearize at one indivisible step —
   the object is strongly linearizable and serves as the O_a baseline. *)
let atomic_snapshot ~name ~n:_ ~init : Obj_impl.t =
  let rid = Base_reg.id ~obj_name:name "array" in
  Obj_impl.pure_shared_memory ~name
    ~registers:(fun ~n ->
      [
        {
          Base_reg.id = rid;
          init = Value.list (List.init n (fun _ -> init));
          writers = None;
          readers = None;
        };
      ])
    ~invoke:(fun ~self:_ ~meth ~arg ->
      match meth with
      | "scan" -> Proc.read_reg rid
      | "update" ->
          Proc.rmw_reg rid (fun cur ->
              let idx, v = Value.to_pair arg in
              let i = Value.to_int idx in
              let cells = Value.to_list cur in
              let cells' = List.mapi (fun j x -> if j = i then v else x) cells in
              (Value.list cells', Value.unit))
      | _ -> Fmt.invalid_arg "atomic snapshot %s: unknown method %s" name meth)

let atomic_config () =
  config ~snapshot:(atomic_snapshot ~name:"S" ~n:3 ~init:(Value.int 0)) ~c:(c_reg ())
