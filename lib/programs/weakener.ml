open Util
open Sim
open Sim.Proc.Syntax

let tag_u1 = "p2.u1"
let tag_u2 = "p2.u2"
let tag_c = "p2.c"
let n_processes = 3
let r_random_steps = 1

let config ~(r : Obj_impl.t) ~(c : Obj_impl.t) : Runtime.config =
  let call obj ~self ~tag ~meth ~arg = Obj_impl.call obj ~self ~tag ~meth ~arg in
  let program ~self =
    match self with
    | 0 ->
        (* p0: R := 0 *)
        let* _ = call r ~self ~tag:"p0.write" ~meth:"write" ~arg:(Value.int 0) in
        Proc.return ()
    | 1 ->
        (* p1: R := 1; C := coin *)
        let* _ = call r ~self ~tag:"p1.write" ~meth:"write" ~arg:(Value.int 1) in
        let* coin = Proc.random ~kind:Proc.Program_random 2 in
        let* _ =
          call c ~self ~tag:"p1.writeC" ~meth:"write" ~arg:(Value.int coin)
        in
        Proc.return ()
    | 2 ->
        (* p2: u1 := R; u2 := R; c := C; test *)
        let* u1 = call r ~self ~tag:tag_u1 ~meth:"read" ~arg:Value.unit in
        let* u2 = call r ~self ~tag:tag_u2 ~meth:"read" ~arg:Value.unit in
        let* cv = call c ~self ~tag:tag_c ~meth:"read" ~arg:Value.unit in
        let bad =
          match cv with
          | Value.Int ci when ci = 0 || ci = 1 ->
              Value.equal u1 (Value.int ci) && Value.equal u2 (Value.int (1 - ci))
          | _ -> false
        in
        Proc.label (if bad then "loop_forever" else "terminate")
    | p -> Fmt.invalid_arg "weakener: no process %d" p
  in
  {
    n = n_processes;
    objects = [ r; c ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let bad outcome =
  match History.Outcome.find1 outcome tag_c with
  | Some (Value.Int ci) when ci = 0 || ci = 1 -> (
      match
        ( History.Outcome.find1 outcome tag_u1,
          History.Outcome.find1 outcome tag_u2 )
      with
      | Some u1, Some u2 ->
          Value.equal u1 (Value.int ci) && Value.equal u2 (Value.int (1 - ci))
      | _ -> false)
  | _ -> false

let terminates outcome = not (bad outcome)

let atomic_config () =
  config
    ~r:(Objects.Atomic_register.make ~name:"R" ~init:Value.none)
    ~c:(Objects.Atomic_register.make ~name:"C" ~init:(Value.int (-1)))

let abd_config () =
  config
    ~r:(Objects.Abd.make ~name:"R" ~n:n_processes ~init:Value.none)
    ~c:(Objects.Abd.make ~name:"C" ~n:n_processes ~init:(Value.int (-1)))

let abd_k_config ~k =
  config
    ~r:(Objects.Abd.make_k ~k ~name:"R" ~n:n_processes ~init:Value.none)
    ~c:(Objects.Abd.make_k ~k ~name:"C" ~n:n_processes ~init:(Value.int (-1)))
