open Util
open Sim
open Sim.Proc.Syntax

(* Each process owns register "F<i>" holding its full vote history (a list
   of (round, coin) pairs, newest first). Votes are immutable once
   published, so if all round-r votes agree, every process that completes
   round r observes the same agreement and decides consistently. *)

let plain_suffix = "!plain"

let fallback_invoke ~k split ~self ~meth ~arg =
  let l = String.length plain_suffix in
  if
    String.length meth > l
    && String.sub meth (String.length meth - l) l = plain_suffix
  then
    Objects.Transform.base_invoke split ~self
      ~meth:(String.sub meth 0 (String.length meth - l))
      ~arg
  else Objects.Transform.iterated_invoke ~k split ~self ~meth ~arg

let reg_name i = Fmt.str "F%d" i

let make_reg ~k ~n i : Obj_impl.t =
  let name = reg_name i in
  let base = Objects.Abd.make_k ~k ~name ~n ~init:(Value.list []) in
  { base with invoke = fallback_invoke ~k (Objects.Abd.split ~name ~n) }

let vote_of history r =
  match history with
  | Value.List entries ->
      List.find_map
        (fun e ->
          match e with
          | Value.Pair (Value.Int r', c) when r' = r -> Some c
          | _ -> None)
        entries
  | _ -> None

let config ~n ~rounds_before_fallback ~max_rounds ~k : Runtime.config =
  let regs = List.init n (make_reg ~k ~n) in
  let meth base round =
    if round < rounds_before_fallback then base else base ^ plain_suffix
  in
  let program ~self =
    let own = List.nth regs self in
    let rec round r history =
      if r >= max_rounds then
        Proc.label (Fmt.str "gave_up.%d" self)
      else begin
        let* coin = Proc.random ~kind:Proc.Program_random 2 in
        let history = Value.Pair (Value.int r, Value.int coin) :: history in
        let* _ =
          Obj_impl.call own ~self
            ~tag:(Fmt.str "publish.%d.%d" self r)
            ~meth:(meth "write" r)
            ~arg:(Value.list history)
        in
        (* collect everyone's round-r vote, re-reading until present *)
        let rec fetch j =
          let* v =
            Obj_impl.call (List.nth regs j) ~self
              ~tag:(Fmt.str "collect.%d.%d" self r)
              ~meth:(meth "read" r) ~arg:Value.unit
          in
          match vote_of v r with Some c -> Proc.return c | None -> fetch j
        in
        let rec collect j acc =
          if j = n then Proc.return (List.rev acc)
          else
            let* c = fetch j in
            collect (j + 1) (c :: acc)
        in
        let* votes = collect 0 [] in
        let agreed =
          match votes with
          | [] -> false
          | c :: rest -> List.for_all (Value.equal c) rest
        in
        if agreed then Proc.label (Fmt.str "agreed.%d.%d" self r)
        else round (r + 1) history
      end
    in
    round 0 []
  in
  { n; objects = regs; program; enable_crashes = false; max_crashes = 0 }

let agreed_round_of_trace trace ~n ~max_rounds =
  let labels =
    List.filter_map
      (function Trace.Labeled { name; _ } -> Some name | _ -> None)
      (Trace.entries trace)
  in
  let round_of p =
    let rec find r =
      if r >= max_rounds then None
      else if List.mem (Fmt.str "agreed.%d.%d" p r) labels then Some r
      else find (r + 1)
    in
    find 0
  in
  let rounds = List.filter_map round_of (List.init n Fun.id) in
  match rounds with
  | r :: rest when List.length rest = n - 1 -> Some (List.fold_left max r rest)
  | _ -> None
