open Util
open Sim
open Sim.Proc.Syntax

let obj_name = "benor"
let bottom = -1

(* the protocol is pure message passing: the object only names the message
   namespace, it has no server role and no registers *)
let channel : Obj_impl.t =
  {
    name = obj_name;
    invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
    on_message = None;
    init_server = None;
    registers = (fun ~n:_ -> []);
  }

let phase_msg tag round v =
  Message.make ~obj_name (Message.tagged tag (Value.pair (Value.int round) (Value.int v)))

let decide_msg v = Message.make ~obj_name (Message.tagged "decide" (Value.int v))

(* Await [need] phase messages of (tag, round); a "decide" message
   short-circuits the wait. *)
let collect ~tag ~round ~need =
  let wanted (m : Message.t) =
    m.obj_name = obj_name
    &&
    let t = Message.tag_of m.body in
    (t = "decide")
    || t = tag
       && Value.to_int (fst (Value.to_pair (Message.payload_of m.body))) = round
  in
  let rec go got =
    if List.length got >= need then Proc.return (`Votes got)
    else
      let* m = Proc.recv ~descr:(tag ^ "@" ^ string_of_int round) wanted in
      match Message.tag_of m.body with
      | "decide" -> Proc.return (`Decided (Value.to_int (Message.payload_of m.body)))
      | _ ->
          let v = Value.to_int (snd (Value.to_pair (Message.payload_of m.body))) in
          go (v :: got)
  in
  go []

let count x votes = List.length (List.filter (( = ) x) votes)

let config ~n ~f ~inputs ~max_rounds : Runtime.config =
  if n <= 2 * f then invalid_arg "Ben_or.config: need n > 2f";
  if List.length inputs <> n then invalid_arg "Ben_or.config: |inputs| <> n";
  let need = n - f in
  let program ~self =
    let decide v =
      let* () = Proc.note "decision" (Value.int v) in
      let* () = Proc.broadcast (decide_msg v) in
      Proc.label (Fmt.str "decided.%d" self)
    in
    let rec round r x =
      if r >= max_rounds then Proc.label (Fmt.str "gave_up.%d" self)
      else begin
        (* phase 1: report the estimate *)
        let* () = Proc.broadcast (phase_msg "p1" r x) in
        let* r1 = collect ~tag:"p1" ~round:r ~need in
        match r1 with
        | `Decided v -> decide v
        | `Votes votes ->
            let proposal =
              match List.find_opt (fun v -> 2 * count v votes > n) [ 0; 1 ] with
              | Some v -> v
              | None -> bottom
            in
            (* phase 2: report the proposal *)
            let* () = Proc.broadcast (phase_msg "p2" r proposal) in
            let* r2 = collect ~tag:"p2" ~round:r ~need in
            (match r2 with
            | `Decided v -> decide v
            | `Votes props -> (
                match
                  List.find_opt (fun v -> count v props >= f + 1) [ 0; 1 ]
                with
                | Some v -> decide v
                | None -> (
                    match List.find_opt (fun v -> count v props >= 1) [ 0; 1 ] with
                    | Some v -> round (r + 1) v
                    | None ->
                        let* c = Proc.random ~kind:Proc.Program_random 2 in
                        round (r + 1) c)))
      end
    in
    round 0 (List.nth inputs self)
  in
  { n; objects = [ channel ]; program; enable_crashes = true; max_crashes = f }

let decisions trace ~n =
  let noted =
    List.filter_map
      (function
        | Trace.Noted { proc; name = "decision"; value; _ } ->
            Some (proc, Value.to_int value)
        | _ -> None)
      (Trace.entries trace)
  in
  List.init n (fun p -> List.assoc_opt p noted)

let agreement ds =
  let decided = List.filter_map Fun.id ds in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity ~inputs ds =
  List.for_all
    (function Some v -> List.mem v inputs | None -> true)
    ds
