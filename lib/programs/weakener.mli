(** The weakener program (Algorithm 1 of the paper), distilled from
    Hadzilacos–Hu–Toueg's weakener.

    Three processes share registers [R] (written by [p0] and [p1], read by
    [p2]) and [C] (written by [p1], read by [p2]):

    - [p0]: [R := 0]
    - [p1]: [R := 1]; [C := flip fair coin]
    - [p2]: [u1 := R]; [u2 := R]; [c := C]; if [u1 = c && u2 = 1 - c] then
      loop forever else terminate.

    With atomic registers [p2] terminates with probability at least 1/2
    against any strong adversary; with ABD registers an adversary forces
    non-termination with probability 1 (Figure 1); with ABD^k the
    termination probability is bounded below by Theorem 4.2.

    In the simulator [p2] does not actually diverge: the branch it would
    take is determined by the {e outcome} (the return values of [u1], [u2]
    and [c]), which is exactly how the paper phrases the bad set [B]. *)

(** [config ~r ~c] assembles the 3-process program over the two register
    objects, which must be named ["R"] and ["C"]. *)
val config : r:Sim.Obj_impl.t -> c:Sim.Obj_impl.t -> Sim.Runtime.config

(** Stable outcome tags of [p2]'s three reads. *)
val tag_u1 : string

val tag_u2 : string
val tag_c : string

(** [bad outcome] holds when [u1 = c] and [u2 = 1 - c] with [c] in {0, 1} —
    the set [B] that makes [p2] loop forever. *)
val bad : History.Outcome.t -> bool

(** [terminates outcome] is [not (bad outcome)]. *)
val terminates : History.Outcome.t -> bool

(** [n_processes = 3], [r_random_steps = 1] (the single coin flip): the
    parameters that instantiate Theorem 4.2 for this program. *)
val n_processes : int

val r_random_steps : int

(** {1 Pre-assembled register choices} *)

(** [atomic_config ()] uses atomic (strongly linearizable) registers. *)
val atomic_config : unit -> Sim.Runtime.config

(** [abd_config ()] uses plain ABD for both [R] and [C]. *)
val abd_config : unit -> Sim.Runtime.config

(** [abd_k_config ~k] uses ABD^k for both registers. *)
val abd_k_config : k:int -> Sim.Runtime.config
