(** A weakener-style randomized program over a snapshot object, after Golab,
    Higham and Woelfel's motivating example (reference [12] of the paper):
    the first demonstration that linearizable implementations do not
    preserve probability distributions used exactly the snapshot
    implementation of Afek et al.

    Processes [p0] and [p1] update components 0 and 1 of a shared snapshot
    [S]; [p1] then flips a coin and publishes it through register [C]; [p2]
    scans twice and reads [C]. Writing [u(s) = 0] when scan [s] shows only
    [p0]'s update, [u(s) = 1] when it shows only [p1]'s and ⊥ otherwise,
    the bad outcome is [u(s1) = c]: the first scan shows exactly the update
    selected by the coin.

    With an atomic snapshot the bad probability is exactly 1/2: [p1]'s
    update precedes the flip, so a post-flip scan can be made to show only
    [p1]'s update (delay [p0]'s) but never only [p0]'s — the adversary wins
    post-flip only when the coin is 1, and pre-committing the scan wins
    with probability 1/2. Note that the weakener's two-sided conflict
    [u(s1) = c && u(s2) = 1 - c] is {e unsatisfiable} for snapshots: scans
    are monotone under any linearizable implementation, so a later scan
    cannot drop an update an earlier one showed. The adversary's leverage
    against implementations therefore shows up in the one-sided event. *)

(** [config ~snapshot ~c] assembles the 3-process program; [snapshot] must
    be named ["S"] (with at least 2 components for 3 processes) and [c]
    ["C"]. *)
val config : snapshot:Sim.Obj_impl.t -> c:Sim.Obj_impl.t -> Sim.Runtime.config

val tag_s1 : string
val tag_s2 : string
val tag_c : string

(** [u scan_value] classifies a scan result: [Some 0], [Some 1] or [None]. *)
val u : Util.Value.t -> int option

(** [bad outcome] is the analogue of the weakener's bad set. *)
val bad : History.Outcome.t -> bool

(** [afek_config ()] instantiates with the Afek et al. snapshot and an
    atomic [C]. *)
val afek_config : unit -> Sim.Runtime.config

(** [afek_k_config ~k] uses the transformed [Snapshot^k]. *)
val afek_k_config : k:int -> Sim.Runtime.config

(** [atomic_config ()] uses an atomic-equivalent snapshot: one realized on a
    single atomic register holding the whole array (strongly linearizable,
    single-step methods). *)
val atomic_config : unit -> Sim.Runtime.config
