(** Ben-Or's randomized binary consensus, directly on the message-passing
    substrate.

    Randomized consensus is the paper's motivating application class (its
    reference [2] is Aspnes' survey): round-based, a constant number of
    coin flips per process per round, termination with probability 1 under
    a fair scheduler — exactly the shape Section 7's recipe addresses when
    the protocol is built over implemented shared objects. This
    implementation communicates by broadcast directly, exercising the
    simulator's network beyond the ABD patterns.

    Protocol (binary values, [n] processes, tolerating [f] crashes,
    [n > 2f]): each round has two phases. Phase 1: broadcast your estimate,
    await [n - f] phase-1 messages of this round; if more than [n/2] carry
    the same value [v], propose [v], else propose ⊥. Phase 2: broadcast
    the proposal, await [n - f]; if at least [f + 1] carry the same
    non-⊥ [v], decide [v]; else if any carries non-⊥ [v], adopt [v];
    else adopt a fresh coin flip. A decided process broadcasts a
    ["decide"] message and halts; processes adopt a received decision
    immediately (sufficient for crash faults).

    Properties checked by the test suite over many schedules: agreement
    (all decisions equal), validity (unanimous input decides that input),
    and crash tolerance ([f = 1] with three processes). *)

(** [config ~n ~f ~inputs ~max_rounds] builds the program. [inputs] gives
    each process's initial value (0 or 1). Gives up (with a ["gave_up"]
    trace label) after [max_rounds]. Requires [n > 2 * f] and
    [List.length inputs = n]. *)
val config : n:int -> f:int -> inputs:int list -> max_rounds:int -> Sim.Runtime.config

(** [decisions trace ~n] is each process's decision, if recorded. *)
val decisions : Sim.Trace.t -> n:int -> int option list

(** [agreement ds] — no two [Some] decisions differ. *)
val agreement : int option list -> bool

(** [validity ~inputs ds] — every decision equals some input. *)
val validity : inputs:int list -> int option list -> bool
