(** A round-based randomized program (Section 7 of the paper).

    [n] processes play "agreement by luck" through one shared register per
    process: in each round every process flips a fair coin, writes it to its
    register, reads all registers, and terminates when all written coins of
    the current round agree. Each process takes [s = 1] random step per
    round, and a round succeeds with probability [2^(1-n)], so the program
    terminates within [T] rounds with probability [1 - (1 - 2^(1-n))^T].

    Per Section 7, running the registers as [O^k] with [k > T * s] blunts a
    strong adversary for the whole high-probability window; our
    implementation downgrades to the plain (cheap) methods after [T]
    rounds via {!Core.Round_based.plain} method names. *)

(** [config ~n ~rounds_before_fallback ~max_rounds ~k] builds the program
    over ABD registers shared by the [n] processes. After
    [rounds_before_fallback] rounds each process switches to plain
    (untransformed) operations; after [max_rounds] it gives up (recorded as
    a ["gave_up"] outcome). *)
val config :
  n:int -> rounds_before_fallback:int -> max_rounds:int -> k:int -> Sim.Runtime.config

(** [agreed_round_of_trace trace ~n ~max_rounds] is [Some r] when every
    process decided, [r] being the latest deciding round (0-based);
    [None] when some process gave up. *)
val agreed_round_of_trace :
  Sim.Trace.t -> n:int -> max_rounds:int -> int option
