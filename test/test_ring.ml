(* Tests for the per-domain tracing ring: enable gating, record/dump
   accounting, wrap-around drops, the dump JSON round-trip, the Chrome
   trace export/parse round-trip over a multi-domain dump (lane
   assignment, per-lane timestamp order), and the trace analyzer on a
   synthetic dump with known duplicate work. *)

(* Every test starts from a clean slate and leaves tracing disabled: the
   suite shares one process with the fuzz and par tests, which also
   record when tracing is on. *)
let with_tracing f =
  Obs.Ring.reset ();
  Obs.Ring.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Ring.set_enabled false;
      Obs.Ring.reset ())
    f

let test_disabled_is_noop () =
  Obs.Ring.reset ();
  Obs.Ring.set_enabled false;
  Obs.Ring.record Obs.Ring.Sim_step 1 0;
  Obs.Ring.record Obs.Ring.Solver_expand 42 1;
  let d = Obs.Ring.dump () in
  Alcotest.(check int) "nothing recorded" 0 (List.length d.Obs.Ring.domains);
  Alcotest.(check bool) "flag reads false" false (Obs.Ring.enabled ())

let test_record_dump_accounting () =
  with_tracing @@ fun () ->
  Obs.Ring.record Obs.Ring.Solver_expand 11 1;
  Obs.Ring.record Obs.Ring.Solver_hit 11 2;
  Obs.Ring.record Obs.Ring.Adv_decision 4 2;
  Obs.Ring.set_enabled false;
  let d = Obs.Ring.dump () in
  match d.domains with
  | [ dd ] ->
      Alcotest.(check int) "recording domain id" (Domain.self () :> int) dd.domain;
      Alcotest.(check int) "recorded" 3 dd.recorded;
      Alcotest.(check int) "dropped" 0 dd.dropped;
      Alcotest.(check (list string))
        "tags in record order"
        [ "solver_expand"; "solver_hit"; "adv_decision" ]
        (List.map (fun (e : Obs.Ring.event) -> Obs.Ring.tag_name e.tag) dd.events);
      Alcotest.(check (list int))
        "payload a preserved" [ 11; 11; 4 ]
        (List.map (fun (e : Obs.Ring.event) -> e.a) dd.events);
      let ts = List.map (fun (e : Obs.Ring.event) -> e.ts_us) dd.events in
      Alcotest.(check bool) "timestamps monotone" true (List.sort compare ts = ts)
  | ds -> Alcotest.failf "expected 1 domain dump, got %d" (List.length ds)

(* A domain keeps its DLS ring across [reset] — its events must show up
   in dumps taken after the reset (the ring re-registers on record). *)
let test_survives_reset () =
  with_tracing @@ fun () ->
  Obs.Ring.record Obs.Ring.Sim_step 1 0;
  Obs.Ring.reset ();
  Obs.Ring.record Obs.Ring.Sim_crash 2 0;
  let d = Obs.Ring.dump () in
  match d.domains with
  | [ dd ] ->
      Alcotest.(check int) "only the post-reset event" 1 dd.recorded;
      Alcotest.(check (list string))
        "pre-reset event gone" [ "sim_crash" ]
        (List.map (fun (e : Obs.Ring.event) -> Obs.Ring.tag_name e.tag) dd.events)
  | ds -> Alcotest.failf "expected 1 domain dump, got %d" (List.length ds)

(* Wrap-around: [set_capacity] only sizes rings created after the call,
   so record from a freshly spawned domain (fresh DLS slot => fresh
   ring) rather than this one, whose ring already exists. *)
let test_wrap_drops_oldest () =
  Obs.Ring.reset ();
  Obs.Ring.set_capacity 1024;
  Obs.Ring.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Ring.set_enabled false;
      Obs.Ring.set_capacity 65536;
      Obs.Ring.reset ())
  @@ fun () ->
  let total = 1500 in
  let did =
    Domain.join
      (Domain.spawn (fun () ->
           for i = 1 to total do
             Obs.Ring.record Obs.Ring.Sim_step i 0
           done;
           (Domain.self () :> int)))
  in
  let d = Obs.Ring.dump () in
  Alcotest.(check int) "capacity rounded as requested" 1024 d.capacity;
  match List.find_opt (fun (dd : Obs.Ring.domain_dump) -> dd.domain = did) d.domains with
  | None -> Alcotest.fail "spawned domain's ring missing from dump"
  | Some dd ->
      Alcotest.(check int) "recorded counts every event" total dd.recorded;
      Alcotest.(check int) "dropped = overflow" (total - 1024) dd.dropped;
      Alcotest.(check int) "retained = capacity" 1024 (List.length dd.events);
      let a_of (e : Obs.Ring.event) = e.a in
      Alcotest.(check int)
        "oldest retained event survives"
        (total - 1024 + 1)
        (a_of (List.hd dd.events));
      Alcotest.(check int)
        "newest event is last" total
        (a_of (List.nth dd.events (List.length dd.events - 1)))

let test_json_round_trip () =
  with_tracing @@ fun () ->
  Obs.Ring.record Obs.Ring.Solver_expand 7 1;
  Obs.Ring.record Obs.Ring.Pool_queue_depth 3 2;
  Obs.Ring.set_enabled false;
  let d = Obs.Ring.dump () in
  match Obs.Ring.of_json (Obs.Ring.to_json d) with
  | Error e -> Alcotest.failf "dump did not parse back: %s" e
  | Ok d' ->
      (* the JSON printer's %.17g float repr makes this exact *)
      Alcotest.(check bool) "parsed dump equals original" true (d = d')

(* Satellite: multi-domain Chrome export -> parse round-trip. Two domains
   record slices and instants; the exported trace must keep every event,
   put each domain's events on its own lane (tid = domain id, pid 0) and
   keep timestamps non-decreasing within each lane. *)
let test_chrome_round_trip_two_domains () =
  with_tracing @@ fun () ->
  Obs.Ring.record Obs.Ring.Pool_task_start 0 10;
  Obs.Ring.record Obs.Ring.Solver_expand 42 1;
  Obs.Ring.record Obs.Ring.Solver_hit 42 2;
  Obs.Ring.record Obs.Ring.Pool_task_stop 0 10;
  let other =
    Domain.join
      (Domain.spawn (fun () ->
           Obs.Ring.record Obs.Ring.Pool_idle_start 0 0;
           Obs.Ring.record Obs.Ring.Pool_idle_stop 0 0;
           Obs.Ring.record Obs.Ring.Sim_deliver 3 0;
           (Domain.self () :> int)))
  in
  Obs.Ring.set_enabled false;
  let d = Obs.Ring.dump () in
  Alcotest.(check int) "two domains recorded" 2 (List.length d.domains);
  let events = Obs.Ring.chrome_events d in
  match Obs.Chrome_trace.of_json (Obs.Chrome_trace.to_json events) with
  | Error e -> Alcotest.failf "chrome trace did not parse back: %s" e
  | Ok events' ->
      Alcotest.(check int)
        "every event survives the round-trip" (List.length events)
        (List.length events');
      Alcotest.(check bool) "round-trip preserves events" true (events = events');
      let is_meta (e : Obs.Chrome_trace.event) = e.phase = Obs.Chrome_trace.Metadata in
      let app =
        List.filter (fun (e : Obs.Chrome_trace.event) -> e.pid = 0 && not (is_meta e)) events'
      in
      let lanes = List.sort_uniq compare (List.map (fun (e : Obs.Chrome_trace.event) -> e.tid) app) in
      let domains =
        List.sort compare (List.map (fun (dd : Obs.Ring.domain_dump) -> dd.domain) d.domains)
      in
      Alcotest.(check (list int)) "one lane per recording domain" domains lanes;
      Alcotest.(check bool) "spawned domain has its own lane" true (List.mem other lanes);
      (* per-domain event counts carry over to the lanes *)
      List.iter
        (fun (dd : Obs.Ring.domain_dump) ->
          let on_lane =
            List.filter (fun (e : Obs.Chrome_trace.event) -> e.tid = dd.domain) app
          in
          Alcotest.(check int)
            (Fmt.str "lane %d event count" dd.domain)
            (List.length dd.events) (List.length on_lane);
          let ts = List.map (fun (e : Obs.Chrome_trace.event) -> e.ts) on_lane in
          Alcotest.(check bool)
            (Fmt.str "lane %d timestamps non-decreasing" dd.domain)
            true
            (List.sort compare ts = ts))
        d.domains

(* The analyzer over a hand-built dump: two domains expand an overlapping
   key set, one decision event, known busy/idle windows. *)
let test_analyze_synthetic_dump () =
  let ev tag a b ts_us = { Obs.Ring.tag; a; b; ts_us } in
  let d0 =
    {
      Obs.Ring.domain = 0;
      recorded = 5;
      dropped = 0;
      events =
        [
          ev Obs.Ring.Pool_task_start 0 4 0.0;
          ev Obs.Ring.Solver_expand 101 1 10.0;
          ev Obs.Ring.Solver_hit 101 2 20.0;
          ev Obs.Ring.Solver_expand 202 1 30.0;
          ev Obs.Ring.Pool_task_stop 0 4 100.0;
        ];
    }
  in
  let d1 =
    {
      Obs.Ring.domain = 1;
      recorded = 5;
      dropped = 0;
      events =
        [
          ev Obs.Ring.Pool_idle_start 0 0 0.0;
          ev Obs.Ring.Pool_idle_stop 0 0 50.0;
          ev Obs.Ring.Adv_decision 3 1 55.0;
          ev Obs.Ring.Sim_step 1 0 60.0;
          ev Obs.Ring.Solver_expand 101 1 70.0;
        ];
    }
  in
  let dump = { Obs.Ring.capacity = 1024; domains = [ d0; d1 ]; runtime = [] } in
  let t = Obs.Trace_analysis.analyze ~top:5 ~buckets:4 dump in
  Alcotest.(check int) "total expansions" 3 t.total_expansions;
  Alcotest.(check int) "distinct keys" 2 t.distinct_keys;
  Alcotest.(check int) "key 101 expanded on both domains" 1 t.duplicated_keys;
  Alcotest.(check (float 1e-9))
    "duplicated work pct = (3 - 2) / 3" (100.0 /. 3.0) t.duplicated_work_pct;
  (match t.hot with
  | (h : Obs.Trace_analysis.hot_state) :: _ ->
      Alcotest.(check int) "hottest key" 101 h.key_hash;
      Alcotest.(check int) "its expansions" 2 h.expansions;
      Alcotest.(check int) "domains touching it" 2 h.domains
  | [] -> Alcotest.fail "hot-state list is empty");
  (match List.find_opt (fun (r : Obs.Trace_analysis.domain_report) -> r.domain = 0) t.domains with
  | Some r ->
      Alcotest.(check int) "d0 misses" 2 r.solver_misses;
      Alcotest.(check int) "d0 hits" 1 r.solver_hits;
      Alcotest.(check (float 1e-9)) "d0 hit rate" (1.0 /. 3.0) r.hit_rate;
      Alcotest.(check (float 1e-9)) "d0 busy time" 100.0 r.busy_us;
      Alcotest.(check (float 1e-9)) "d0 utilization" 1.0 r.utilization
  | None -> Alcotest.fail "domain 0 missing from report");
  (match List.find_opt (fun (r : Obs.Trace_analysis.domain_report) -> r.domain = 1) t.domains with
  | Some r ->
      Alcotest.(check (float 1e-9)) "d1 idle time" 50.0 r.idle_us;
      Alcotest.(check (float 1e-9)) "d1 never busy" 0.0 r.busy_us
  | None -> Alcotest.fail "domain 1 missing from report");
  (match t.decisions with
  | Some (s : Obs.Trace_analysis.decision_summary) ->
      Alcotest.(check int) "one decision" 1 s.decisions;
      Alcotest.(check int) "none forced" 0 s.forced;
      Alcotest.(check int) "enabled-set size" 3 s.min_enabled;
      Alcotest.(check int) "step chosen" 1 s.steps;
      Alcotest.(check int) "no deliveries" 0 s.delivers
  | None -> Alcotest.fail "decision summary missing");
  (* the report renders and exports without tripping over the synthetic data *)
  let rendered = Fmt.str "%a" Obs.Trace_analysis.pp t in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report mentions duplicated work" true
    (contains ~affix:"duplicated" rendered);
  match Obs.Trace_analysis.to_json t with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "to_json is not an object"

(* ---- edge cases: the analyzer and parser on degenerate inputs -------- *)

(* An empty dump (no domain ever recorded) must analyze to a report with
   all-zero aggregates, and render/export without raising. *)
let test_analyze_empty_dump () =
  let dump = { Obs.Ring.capacity = 1024; domains = []; runtime = [] } in
  let t = Obs.Trace_analysis.analyze ~top:5 ~buckets:4 dump in
  Alcotest.(check int) "no expansions" 0 t.total_expansions;
  Alcotest.(check int) "no distinct keys" 0 t.distinct_keys;
  Alcotest.(check int) "no domains" 0 (List.length t.domains);
  Alcotest.(check int) "no allocators" 0 (List.length t.allocators);
  Alcotest.(check bool) "no decision summary" true (t.decisions = None);
  ignore (Fmt.str "%a" Obs.Trace_analysis.pp t);
  match Obs.Trace_analysis.to_json t with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "to_json is not an object"

(* With tracing disabled the live dump is empty, and that dump feeds the
   analyzer cleanly — the path a user hits running `trace analyze` on a
   run that never enabled --trace-out. *)
let test_analyze_disabled_tracing () =
  Obs.Ring.reset ();
  Obs.Ring.set_enabled false;
  Obs.Ring.record Obs.Ring.Solver_expand 1 1;
  let d = Obs.Ring.dump () in
  Alcotest.(check int) "nothing recorded while disabled" 0
    (List.length d.domains);
  let t = Obs.Trace_analysis.analyze ~top:5 ~buckets:4 d in
  Alcotest.(check int) "empty report" 0 t.total_expansions

(* Single-domain dump: duplicated-work accounting must stay zero (nothing
   can be duplicated across domains) and utilization still computes. *)
let test_analyze_single_domain () =
  let ev tag a b ts_us = { Obs.Ring.tag; a; b; ts_us } in
  let d0 =
    {
      Obs.Ring.domain = 0;
      recorded = 4;
      dropped = 0;
      events =
        [
          ev Obs.Ring.Pool_task_start 0 2 0.0;
          ev Obs.Ring.Solver_expand 7 1 5.0;
          ev Obs.Ring.Solver_expand 7 1 10.0;
          ev Obs.Ring.Pool_task_stop 0 2 20.0;
        ];
    }
  in
  let dump = { Obs.Ring.capacity = 1024; domains = [ d0 ]; runtime = [] } in
  let t = Obs.Trace_analysis.analyze ~top:5 ~buckets:4 dump in
  Alcotest.(check int) "both expansions counted" 2 t.total_expansions;
  Alcotest.(check int) "one distinct key" 1 t.distinct_keys;
  Alcotest.(check int) "re-expansion on one domain is not cross-domain dup" 0
    t.duplicated_keys;
  match t.domains with
  | [ r ] -> Alcotest.(check (float 1e-9)) "busy time" 20.0 r.busy_us
  | ds -> Alcotest.failf "expected 1 domain report, got %d" (List.length ds)

(* Forward compatibility: a dump written by a newer ring with an extra
   event tag must parse — the unknown event is skipped, not an error. *)
let test_of_json_skips_unknown_tag () =
  with_tracing @@ fun () ->
  Obs.Ring.record Obs.Ring.Solver_expand 7 1;
  Obs.Ring.set_enabled false;
  let j = Obs.Ring.to_json (Obs.Ring.dump ()) in
  let unknown = Obs.Json.List [ Obs.Json.Int 99; Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Float 3.0 ] in
  let j =
    match j with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "domains", Obs.Json.List [ Obs.Json.Obj dd ] ->
                   ( k,
                     Obs.Json.List
                       [
                         Obs.Json.Obj
                           (List.map
                              (fun (dk, dv) ->
                                match (dk, dv) with
                                | "events", Obs.Json.List evs ->
                                    (dk, Obs.Json.List (evs @ [ unknown ]))
                                | _ -> (dk, dv))
                              dd);
                       ] )
               | _ -> (k, v))
             kvs)
    | _ -> Alcotest.fail "dump JSON is not an object"
  in
  match Obs.Ring.of_json j with
  | Error e -> Alcotest.failf "unknown tag made the parse fail: %s" e
  | Ok d -> (
      match d.domains with
      | [ dd ] ->
          Alcotest.(check (list string))
            "known event kept, unknown skipped" [ "solver_expand" ]
            (List.map
               (fun (e : Obs.Ring.event) -> Obs.Ring.tag_name e.tag)
               dd.events)
      | ds -> Alcotest.failf "expected 1 domain, got %d" (List.length ds))

(* Alloc_sample events land in the per-domain counters and the top
   allocator table, keyed by the site hash they carry. *)
let test_analyze_alloc_samples () =
  let ev tag a b ts_us = { Obs.Ring.tag; a; b; ts_us } in
  let site_a = 1111 and site_b = 2222 in
  let d0 =
    {
      Obs.Ring.domain = 0;
      recorded = 3;
      dropped = 0;
      events =
        [
          ev Obs.Ring.Alloc_sample site_a 24 1.0;
          ev Obs.Ring.Alloc_sample site_b 8 2.0;
          ev Obs.Ring.Alloc_sample site_a 16 3.0;
        ];
    }
  in
  let d1 =
    {
      Obs.Ring.domain = 1;
      recorded = 1;
      dropped = 0;
      events = [ ev Obs.Ring.Alloc_sample site_a 2 4.0 ];
    }
  in
  let dump = { Obs.Ring.capacity = 1024; domains = [ d0; d1 ]; runtime = [] } in
  let t = Obs.Trace_analysis.analyze ~top:5 ~buckets:4 dump in
  (match List.find_opt (fun (r : Obs.Trace_analysis.domain_report) -> r.domain = 0) t.domains with
  | Some r ->
      Alcotest.(check int) "d0 alloc samples" 3 r.alloc_samples;
      Alcotest.(check int) "d0 alloc words" 48 r.alloc_words
  | None -> Alcotest.fail "domain 0 missing");
  (match t.allocators with
  | (top : Obs.Trace_analysis.alloc_site) :: rest ->
      Alcotest.(check int) "hottest allocator by words" site_a top.site_hash;
      Alcotest.(check int) "its words across domains" 42 top.words;
      Alcotest.(check int) "its samples" 3 top.samples;
      Alcotest.(check int) "seen on both domains" 2 top.alloc_domains;
      Alcotest.(check int) "runner-up present" 1 (List.length rest)
  | [] -> Alcotest.fail "allocator table empty");
  let rendered = Fmt.str "%a" Obs.Trace_analysis.pp t in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report renders the allocator table" true
    (contains ~affix:"top allocators" rendered)

let tests =
  [
    Alcotest.test_case "disabled record is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "record/dump accounting" `Quick test_record_dump_accounting;
    Alcotest.test_case "ring survives reset" `Quick test_survives_reset;
    Alcotest.test_case "wrap drops oldest events" `Quick test_wrap_drops_oldest;
    Alcotest.test_case "dump JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "chrome round-trip, two domains" `Quick
      test_chrome_round_trip_two_domains;
    Alcotest.test_case "analyzer on synthetic dump" `Quick test_analyze_synthetic_dump;
    Alcotest.test_case "analyzer on empty dump" `Quick test_analyze_empty_dump;
    Alcotest.test_case "analyzer with tracing disabled" `Quick
      test_analyze_disabled_tracing;
    Alcotest.test_case "analyzer on single-domain dump" `Quick
      test_analyze_single_domain;
    Alcotest.test_case "of_json skips unknown event tags" `Quick
      test_of_json_skips_unknown_tag;
    Alcotest.test_case "analyzer aggregates alloc samples" `Quick
      test_analyze_alloc_samples;
  ]
