(* The out-of-core store's soundness battery: the segment run format
   round-trips through close/reopen, crash-truncated tails are recovered
   away without losing complete runs, the block cache evicts in LRU order
   and never evicts a pinned block, the memo upholds the exactly-once
   claim protocol across spills, and — the property the whole engine
   exists for — budgeted solves are bit-identical to in-RAM solves
   (values AND distinct-state counts) for every model game at jobs 1
   and 4. *)

let exact = Alcotest.(check (float 0.0))

(* A tiny budget: the Memo clamps to its 64 KiB floor, whose per-shard
   watermark (4 KiB) forces even the k=1 weakener games to spill. *)
let tiny_budget = 1

(* ---- scratch files --------------------------------------------------- *)

let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "blunting-test-store-%d-%d" (Unix.getpid ())
         !scratch_counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf d =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
       (Sys.readdir d)
   with Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error _ -> ()

let with_scratch f =
  let d = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---- Store.Segment --------------------------------------------------- *)

let entry i =
  (* mixed-width keys: the run pads to the widest, and probes must honor
     the true length *)
  let key = Printf.sprintf "key-%d%s" i (String.make (i mod 7) 'x') in
  (Par.Slice_tbl.hash_string key, key, float_of_int i /. 16.0)

let probe_all seg n =
  for i = 0 to n - 1 do
    let h, key, v = entry i in
    match Store.Segment.find_string seg ~hash:h ~key with
    | Some got -> exact (Printf.sprintf "probe %s" key) v got
    | None -> Alcotest.failf "key %s lost" key
  done

let test_segment_roundtrip () =
  with_scratch @@ fun dir ->
  let path = Filename.concat dir "seg.blk" in
  let cache = Store.Block_cache.create ~capacity:4 () in
  let seg = Store.Segment.create ~path ~cache in
  Alcotest.(check int) "fresh segment has no runs" 0 (Store.Segment.runs seg);
  let run1 = Array.init 100 entry in
  let b1 = Store.Segment.append_run seg run1 in
  Alcotest.(check bool) "append reports bytes" true (b1 > 0);
  let run2 = Array.init 50 (fun i -> entry (100 + i)) in
  let _ = Store.Segment.append_run seg run2 in
  Alcotest.(check int) "two runs" 2 (Store.Segment.runs seg);
  Alcotest.(check int) "entries across runs" 150 (Store.Segment.entries seg);
  probe_all seg 150;
  let absent = "no-such-key" in
  Alcotest.(check (option (float 0.0)))
    "absent key" None
    (Store.Segment.find_string seg
       ~hash:(Par.Slice_tbl.hash_string absent)
       ~key:absent);
  Alcotest.(check int)
    "empty run appends nothing" 0
    (Store.Segment.append_run seg [||]);
  let size = Store.Segment.size seg in
  Store.Segment.close seg;
  (* reopen: recovery must find both complete runs byte-for-byte *)
  let cache2 = Store.Block_cache.create ~capacity:4 () in
  let seg2 = Store.Segment.create ~path ~cache:cache2 in
  Alcotest.(check int) "runs recovered" 2 (Store.Segment.runs seg2);
  Alcotest.(check int) "entries recovered" 150 (Store.Segment.entries seg2);
  Alcotest.(check int) "size recovered" size (Store.Segment.size seg2);
  probe_all seg2 150;
  Store.Segment.delete seg2;
  Alcotest.(check bool) "delete removes the file" false (Sys.file_exists path)

(* Crash mid-append: whatever tail a crash leaves — a partial header, a
   corrupt magic, or a header whose run extends past end-of-file — reopen
   truncates it and keeps every complete run. *)
let test_segment_recovery () =
  let crash_tail tail =
    with_scratch @@ fun dir ->
    let path = Filename.concat dir "seg.blk" in
    let cache = Store.Block_cache.create ~capacity:4 () in
    let seg = Store.Segment.create ~path ~cache in
    let _ = Store.Segment.append_run seg (Array.init 100 entry) in
    let size = Store.Segment.size seg in
    Store.Segment.close seg;
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o600 in
    let n = Unix.write_substring fd tail 0 (String.length tail) in
    Alcotest.(check int) "tail written" (String.length tail) n;
    Unix.close fd;
    let cache2 = Store.Block_cache.create ~capacity:4 () in
    let seg2 = Store.Segment.create ~path ~cache:cache2 in
    Alcotest.(check int) "complete run survives" 1 (Store.Segment.runs seg2);
    Alcotest.(check int) "entries survive" 100 (Store.Segment.entries seg2);
    Alcotest.(check int) "tail truncated away" size (Store.Segment.size seg2);
    probe_all seg2 100;
    (* the recovered segment must accept appends again *)
    let _ = Store.Segment.append_run seg2 [| entry 100 |] in
    probe_all seg2 101;
    Store.Segment.close seg2
  in
  crash_tail "BLRN\x08";
  (* header cut mid-write *)
  crash_tail "GARBAGEGARBAGEGARBAGE";
  (* corrupt magic *)
  (* valid header promising 10_000 records the crash never wrote *)
  let b = Buffer.create 32 in
  Buffer.add_string b "BLRN";
  Buffer.add_int32_le b 10_000l;
  Buffer.add_uint16_le b 16;
  Buffer.add_string b (String.make 6 '\x00');
  Buffer.add_string b "only-a-few-record-bytes";
  crash_tail (Buffer.contents b)

(* ---- Store.Block_cache ----------------------------------------------- *)

let test_block_cache_lru () =
  with_scratch @@ fun dir ->
  let bs = 64 in
  let path = Filename.concat dir "blocks.bin" in
  let nblocks = 6 in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o600 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  for i = 0 to nblocks - 1 do
    let block = String.make bs (Char.chr (Char.code 'a' + i)) in
    let n = Unix.write_substring fd block 0 bs in
    Alcotest.(check int) "block written" bs n
  done;
  let c = Store.Block_cache.create ~block_size:bs ~capacity:2 () in
  let buf = Bytes.create bs in
  let read_block i =
    Store.Block_cache.read c fd ~off:(i * bs) ~len:bs ~dst:buf ~dst_off:0;
    Alcotest.(check char)
      (Printf.sprintf "block %d content" i)
      (Char.chr (Char.code 'a' + i))
      (Bytes.get buf 0)
  in
  read_block 0;
  read_block 1;
  Alcotest.(check (list int))
    "MRU order after 0,1" [ 1; 0 ]
    (Store.Block_cache.cached_blocks c);
  read_block 0;
  Alcotest.(check (list int))
    "re-read refreshes recency" [ 0; 1 ]
    (Store.Block_cache.cached_blocks c);
  read_block 2;
  (* capacity 2: the LRU block (1) goes, not the refreshed one (0) *)
  Alcotest.(check (list int))
    "LRU evicted" [ 2; 0 ]
    (Store.Block_cache.cached_blocks c);
  Alcotest.(check bool) "1 gone" false (Store.Block_cache.cached c 1);
  let s = Store.Block_cache.stats c in
  Alcotest.(check int) "one eviction so far" 1 s.Store.Block_cache.evictions;
  Alcotest.(check int) "one hit (the re-read)" 1 s.Store.Block_cache.hits;
  Alcotest.(check int) "three misses" 3 s.Store.Block_cache.misses;
  Alcotest.(check int)
    "miss bytes came from the file" (3 * bs)
    s.Store.Block_cache.bytes_read;
  (* pinned blocks survive any amount of cache pressure *)
  Store.Block_cache.pin c 2;
  read_block 3;
  read_block 4;
  read_block 5;
  Alcotest.(check bool) "pinned block still resident" true
    (Store.Block_cache.cached c 2);
  Store.Block_cache.unpin c 2;
  read_block 3;
  read_block 4;
  read_block 5;
  Alcotest.(check bool) "unpinned block evictable again" false
    (Store.Block_cache.cached c 2);
  Alcotest.check_raises "pin of a non-resident block" Not_found (fun () ->
      Store.Block_cache.pin c 2);
  (* block 5 is resident (just read) but unpinned *)
  (match Store.Block_cache.unpin c 5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unpin of an unpinned block must raise");
  (* a read spanning several blocks reassembles the file bytes *)
  let span = Bytes.create (2 * bs) in
  Store.Block_cache.read c fd ~off:(bs / 2) ~len:(2 * bs) ~dst:span ~dst_off:0;
  Alcotest.(check char) "span start" 'a' (Bytes.get span (bs / 2 - 1));
  Alcotest.(check char) "span middle" 'b' (Bytes.get span (bs / 2));
  Alcotest.(check char) "span end" 'c' (Bytes.get span (2 * bs - 1))

(* ---- Store.Memo ------------------------------------------------------ *)

let memo_key i = Printf.sprintf "state-%06d-%s" i (String.make (i mod 5) 'p')
let memo_val i = float_of_int i *. 0.0625

let test_memo_exactly_once_across_spills () =
  let n = 5_000 in
  let st = Store.Memo.create ~budget:tiny_budget () in
  Fun.protect ~finally:(fun () -> Store.Memo.close st) @@ fun () ->
  let buf = Bytes.create 64 in
  let claim i =
    let key = memo_key i in
    Bytes.blit_string key 0 buf 0 (String.length key);
    Store.Memo.find_or_claim_slice st buf ~len:(String.length key) ~owner:0
  in
  for i = 0 to n - 1 do
    (match claim i with
    | `Claimed key ->
        Alcotest.(check string) "claim echoes the key" (memo_key i) key;
        (* a re-probe of a live claim by the same owner is the cycle
           signal, never a second claim *)
        (match claim i with
        | `Busy 0 -> ()
        | _ -> Alcotest.fail "re-probe of a live claim must be `Busy");
        Store.Memo.resolve st key (memo_val i)
    | `Value _ | `Busy _ -> Alcotest.fail "fresh key already present");
    match claim i with
    | `Value v -> exact "resolved value readable immediately" (memo_val i) v
    | _ -> Alcotest.fail "resolved key must answer `Value"
  done;
  let s = Store.Memo.stats st in
  Alcotest.(check bool)
    "the budget forced spilling" true
    (s.Store.Memo.spilled_entries > 0 && s.Store.Memo.spill_runs > 0);
  Alcotest.(check int) "every entry resolved once" n (Store.Memo.resolved st);
  (* every key — spilled or resident — still answers bit-exactly *)
  for i = 0 to n - 1 do
    match Store.Memo.get st (memo_key i) with
    | Some v -> exact "get after spills" (memo_val i) v
    | None -> Alcotest.failf "key %d lost across spills" i
  done;
  let s = Store.Memo.stats st in
  Alcotest.(check bool)
    "full sweep read through the disk tier" true
    (s.Store.Memo.disk_hits > 0);
  match Store.Memo.resolve st (memo_key 0) 0.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double resolve must raise"

let test_memo_stats_shape () =
  let st = Store.Memo.create ~budget:tiny_budget () in
  Fun.protect ~finally:(fun () -> Store.Memo.close st) @@ fun () ->
  for i = 0 to 2_000 do
    let key = memo_key i in
    match
      Store.Memo.find_or_claim_slice st
        (Bytes.of_string key)
        ~len:(String.length key) ~owner:0
    with
    | `Claimed key -> Store.Memo.resolve st key (memo_val i)
    | _ -> Alcotest.fail "fresh key"
  done;
  let s = Store.Memo.stats st in
  Alcotest.(check bool)
    "write amplification >= 1 once spilled" true
    (Store.Memo.write_amplification s >= 1.0);
  Alcotest.(check bool)
    "hit rate within [0,1]" true
    (let r = Store.Memo.cache_hit_rate s in
     r >= 0.0 && r <= 1.0);
  Alcotest.(check bool)
    "resident estimate positive" true
    (s.Store.Memo.resident_bytes >= 0)

(* ---- budgeted solves are bit-identical to in-RAM solves --------------- *)

(* Weakener_atomic exposes no [reset]; a private functor instantiation
   gives this test its own memo table. *)
module Atomic_solver = Mdp.Solver.Make (Model.Weakener_atomic.Game)

let check_spilled label (ss : Store.Memo.stats option) =
  match ss with
  | None -> Alcotest.failf "%s: budgeted solve armed no store" label
  | Some s ->
      Alcotest.(check bool)
        (label ^ ": budget forced spilling")
        true
        (s.Store.Memo.spilled_entries > 0)

(* Solve twice — in-RAM, then under a spill-forcing budget — and demand
   bit-identical values and distinct-state counts. The exactly-once claim
   protocol makes both deterministic even at jobs > 1 (memo hit counts
   are schedule-dependent there, so only jobs = 1 compares them). *)
let game_determinism ~label ~jobs ~expect_spill ~reset ~states ~store_stats
    solve =
  reset ();
  let v_ram = solve ~memo_budget:None ~jobs in
  let st_ram = states () in
  reset ();
  let v_sp = solve ~memo_budget:(Some tiny_budget) ~jobs in
  let st_sp = states () in
  exact (label ^ ": value bit-identical") v_ram v_sp;
  Alcotest.(check int) (label ^ ": distinct states identical") st_ram st_sp;
  if expect_spill then check_spilled label (store_stats ());
  reset ()

let test_games_deterministic ~jobs () =
  game_determinism
    ~label:(Printf.sprintf "abd k=1 jobs=%d" jobs)
    ~jobs ~expect_spill:true ~reset:Model.Weakener_abd.reset
    ~states:(fun () -> Model.Weakener_abd.explored_states ())
    ~store_stats:Model.Weakener_abd.store_stats
    (fun ~memo_budget ~jobs ->
      Model.Weakener_abd.bad_probability ?memo_budget ~jobs ~k:1 ());
  game_determinism
    ~label:(Printf.sprintf "va k=1 jobs=%d" jobs)
    ~jobs ~expect_spill:true ~reset:Model.Weakener_va.reset
    ~states:(fun () -> (Model.Weakener_va.solver_stats ()).Mdp.Solver.states)
    ~store_stats:Model.Weakener_va.store_stats
    (fun ~memo_budget ~jobs ->
      Model.Weakener_va.bad_probability ?memo_budget ~jobs ~k:1 ());
  game_determinism
    ~label:(Printf.sprintf "ghw-snapshot k=1 jobs=%d" jobs)
    ~jobs
      (* ~260 states sit under even the clamped budget's watermark *)
    ~expect_spill:false ~reset:Model.Ghw_snapshot_game.reset
    ~states:(fun () -> Model.Ghw_snapshot_game.explored_states ())
    ~store_stats:Model.Ghw_snapshot_game.store_stats
    (fun ~memo_budget ~jobs ->
      Model.Ghw_snapshot_game.afek_bad_probability ?memo_budget ~jobs ~k:1 ());
  game_determinism
    ~label:(Printf.sprintf "ghw-multi k=1 jobs=%d" jobs)
    ~jobs ~expect_spill:true ~reset:Model.Ghw_multi_game.reset
    ~states:(fun () -> Model.Ghw_multi_game.explored_states ())
    ~store_stats:Model.Ghw_multi_game.store_stats
    (fun ~memo_budget ~jobs ->
      Model.Ghw_multi_game.afek_bad_probability ?memo_budget ~jobs ~k:1 ());
  (* the atomic weakener is sequential-only: cover it on the jobs=1 leg *)
  if jobs = 1 then
    game_determinism ~label:"atomic jobs=1" ~jobs ~expect_spill:false
      ~reset:Atomic_solver.reset
      ~states:(fun () -> Atomic_solver.explored ())
      ~store_stats:Atomic_solver.store_stats
      (fun ~memo_budget ~jobs:_ ->
        Atomic_solver.value ?memo_budget Model.Weakener_atomic.init)

(* At jobs = 1 the solve order is fixed, so the budgeted run must also
   reproduce the exact memo hit/miss split and recursion depth. *)
let test_full_stats_identical_seq () =
  Model.Weakener_abd.reset ();
  let _ = Model.Weakener_abd.bad_probability ~k:1 () in
  let st_ram = Model.Weakener_abd.solver_stats () in
  Model.Weakener_abd.reset ();
  let _ = Model.Weakener_abd.bad_probability ~memo_budget:tiny_budget ~k:1 () in
  let st_sp = Model.Weakener_abd.solver_stats () in
  Model.Weakener_abd.reset ();
  Alcotest.(check int) "states" st_ram.Mdp.Solver.states st_sp.Mdp.Solver.states;
  Alcotest.(check int) "memo hits" st_ram.Mdp.Solver.memo_hits
    st_sp.Mdp.Solver.memo_hits;
  Alcotest.(check int) "memo misses" st_ram.Mdp.Solver.memo_misses
    st_sp.Mdp.Solver.memo_misses;
  Alcotest.(check int) "max depth" st_ram.Mdp.Solver.max_depth
    st_sp.Mdp.Solver.max_depth

let test_budget_parse () =
  let ok s = function
    | exp -> (
        match Mdp.Solver.parse_memo_budget s with
        | Ok n -> Alcotest.(check int) s exp n
        | Error e -> Alcotest.failf "%s: %s" s e)
  in
  ok "0" 0;
  ok "1024" 1024;
  ok "64K" (64 * 1024);
  ok "2M" (2 * 1024 * 1024);
  ok "1G" (1024 * 1024 * 1024);
  List.iter
    (fun s ->
      match Mdp.Solver.parse_memo_budget s with
      | Ok n -> Alcotest.failf "%S parsed to %d, expected an error" s n
      | Error _ -> ())
    [ ""; "-1"; "12Q"; "K"; "1.5M"; "abc" ]

let tests =
  [
    Alcotest.test_case "segment round-trip through reopen" `Quick
      test_segment_roundtrip;
    Alcotest.test_case "segment crash-tail recovery" `Quick
      test_segment_recovery;
    Alcotest.test_case "block cache LRU order and pinning" `Quick
      test_block_cache_lru;
    Alcotest.test_case "memo exactly-once across spills" `Quick
      test_memo_exactly_once_across_spills;
    Alcotest.test_case "memo stats shape" `Quick test_memo_stats_shape;
    Alcotest.test_case "memo budget parsing" `Quick test_budget_parse;
    Alcotest.test_case "all games bit-identical when spilled (jobs 1)" `Quick
      (test_games_deterministic ~jobs:1);
    Alcotest.test_case "all games bit-identical when spilled (jobs 4)" `Slow
      (test_games_deterministic ~jobs:4);
    Alcotest.test_case "full solver stats identical at jobs 1" `Slow
      test_full_stats_identical_seq;
  ]
