(* Tests for the paper's quantitative content: the Theorem 4.2 bound and
   the Section 7 round-based recipe. *)

open Core

let feq = Alcotest.(check (float 1e-9))

let test_bound_weakener_instance () =
  (* Appendix A.3.1: with k = 2 the bound gives bad <= 7/8, i.e. p2
     terminates with probability at least 1/8 *)
  feq "k=2 instance" 0.875 (Bound.weakener_instance ~k:2);
  (* k = 1 <= r: no guarantee beyond the linearizable probability *)
  feq "k=1 instance" 1.0 (Bound.weakener_instance ~k:1)

let test_bound_hand_computed () =
  (* n=3, r=1, k=4: fraction = 1 - (3/4)^2 = 7/16 *)
  feq "fraction" (7.0 /. 16.0) (Bound.blunt_fraction ~n:3 ~r:1 ~k:4);
  feq "bound" (0.5 +. (7.0 /. 16.0 *. 0.5))
    (Bound.theorem_4_2 ~n:3 ~r:1 ~k:4 ~prob_atomic:0.5 ~prob_lin:1.0)

let test_bound_no_blunting_when_k_le_r () =
  List.iter
    (fun (k, r) ->
      feq (Fmt.str "k=%d r=%d" k r) 1.0 (Bound.blunt_fraction ~n:4 ~r ~k))
    [ (1, 1); (2, 2); (2, 5); (3, 7) ]

let test_bound_two_processes_vacuous () =
  (* n = 1: exponent 0, fraction 0: a single process cannot be raced *)
  feq "n=1" 0.0 (Bound.blunt_fraction ~n:1 ~r:1 ~k:5)

let prop_bound_monotone_in_k =
  QCheck.Test.make ~count:200 ~name:"bound decreases with k"
    QCheck.(triple (int_range 2 6) (int_range 1 5) (int_range 1 40))
    (fun (n, r, k) ->
      Bound.blunt_fraction ~n ~r ~k >= Bound.blunt_fraction ~n ~r ~k:(k + 1) -. 1e-12)

let prop_bound_sandwich =
  QCheck.Test.make ~count:200 ~name:"bound between prob_atomic and prob_lin"
    QCheck.(quad (int_range 1 6) (int_range 1 5) (int_range 1 60) (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (n, r, k, (a, b)) ->
      let prob_atomic = Float.min a b and prob_lin = Float.max a b in
      let v = Bound.theorem_4_2 ~n ~r ~k ~prob_atomic ~prob_lin in
      prob_atomic -. 1e-12 <= v && v <= prob_lin +. 1e-12)

let prop_bound_limit =
  QCheck.Test.make ~count:50 ~name:"bound tends to prob_atomic"
    QCheck.(pair (int_range 2 5) (int_range 1 4))
    (fun (n, r) ->
      Bound.theorem_4_2 ~n ~r ~k:100_000 ~prob_atomic:0.3 ~prob_lin:0.9 < 0.31)

let test_min_k_for () =
  let k = Bound.min_k_for ~n:3 ~r:1 ~epsilon:0.1 in
  Alcotest.(check bool) "achieves epsilon" true (Bound.blunt_fraction ~n:3 ~r:1 ~k <= 0.1);
  Alcotest.(check bool) "minimal" true
    (k = 1 || Bound.blunt_fraction ~n:3 ~r:1 ~k:(k - 1) > 0.1)

let test_bound_invalid_args () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Bound.blunt_fraction: n, r, k must be >= 1")
    (fun () -> ignore (Bound.blunt_fraction ~n:3 ~r:1 ~k:0));
  Alcotest.check_raises "prob order"
    (Invalid_argument "Bound.theorem_4_2: need 0 <= prob_atomic <= prob_lin <= 1")
    (fun () -> ignore (Bound.theorem_4_2 ~n:3 ~r:1 ~k:2 ~prob_atomic:0.9 ~prob_lin:0.2))

let test_round_based_recipe () =
  Alcotest.(check int) "k > T*s" 13 (Round_based.recommended_k ~rounds:4 ~steps_per_round:3);
  Alcotest.(check string) "plain naming" "read!plain" (Round_based.plain "read")

let test_round_based_fallback_abd () =
  (* the plain methods on the fallback ABD behave like the base object and
     share state with the transformed ones *)
  let open Sim in
  let open Sim.Proc.Syntax in
  let obj = Round_based.abd ~k:3 ~name:"R" ~n:3 ~init:(Util.Value.int 0) in
  let got = ref None in
  let program ~self =
    if self = 0 then begin
      let* _ =
        Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Util.Value.int 7)
      in
      let* v =
        Obj_impl.call obj ~self ~tag:"r" ~meth:(Round_based.plain "read")
          ~arg:Util.Value.unit
      in
      got := Some v;
      Proc.return ()
    end
    else Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = 3; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Gen (Util.Rng.of_int 3))
  in
  let rng = Util.Rng.of_int 4 in
  (match Runtime.run t ~max_steps:100_000 (fun _ evs -> Util.Rng.pick rng evs) with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  (match !got with
  | Some v -> Alcotest.(check bool) "plain read sees transformed write" true (Util.Value.equal v (Util.Value.int 7))
  | None -> Alcotest.fail "no read result");
  (* the plain read performed exactly one query broadcast *)
  let queries_by_p0 =
    List.length
      (List.filter
         (function
           | Trace.Sent { src = 0; msg; dst = 0; _ } ->
               Message.tag_of msg.body = "query"
           | _ -> false)
         (Trace.entries (Runtime.trace t)))
  in
  (* write: 3 query phases; plain read: 1 query phase => 4 query broadcasts
     (counting only the copy addressed to p0 itself to count broadcasts) *)
  Alcotest.(check int) "k + 1 query phases total" 4 queries_by_p0

let tests =
  [
    Alcotest.test_case "Thm 4.2: weakener instance (1/8 claim)" `Quick
      test_bound_weakener_instance;
    Alcotest.test_case "Thm 4.2: hand-computed values" `Quick test_bound_hand_computed;
    Alcotest.test_case "Thm 4.2: k <= r gives no guarantee" `Quick
      test_bound_no_blunting_when_k_le_r;
    Alcotest.test_case "Thm 4.2: single process vacuous" `Quick
      test_bound_two_processes_vacuous;
    Alcotest.test_case "min_k_for" `Quick test_min_k_for;
    Alcotest.test_case "bound argument validation" `Quick test_bound_invalid_args;
    Alcotest.test_case "round-based recipe" `Quick test_round_based_recipe;
    Alcotest.test_case "round-based plain fallback on ABD" `Quick
      test_round_based_fallback_abd;
    QCheck_alcotest.to_alcotest prop_bound_monotone_in_k;
    QCheck_alcotest.to_alcotest prop_bound_sandwich;
    QCheck_alcotest.to_alcotest prop_bound_limit;
  ]
