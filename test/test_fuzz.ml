(* The fuzzing subsystem: shrinker laws, replay determinism, corpus
   round-trips, oracle health on healthy implementations, and the
   committed regression corpus. *)

(* The committed planted failure every shrinker test leans on: seed 7,
   iteration 464 of the planted (ABD-without-write-back) session is a
   linearizability violation — see test/corpus/fuzz-lin-s7-i464.json. *)
let planted_seed = 7
let planted_iter = 464

let planted_failure () =
  let case =
    Fuzz.Case.generate ~planted:true
      (Fuzz.Oracle.case_stream ~seed:planted_seed ~iter:planted_iter)
  in
  let _t, codes =
    Fuzz.Oracle.run_recorded ~seed:planted_seed ~iter:planted_iter case
  in
  let fails =
    Fuzz.Oracle.lin_fails ~seed:planted_seed ~iter:planted_iter case
  in
  (case, codes, fails)

(* ---- shrinker ------------------------------------------------------- *)

let test_shrink_requires_failing_input () =
  match Fuzz.Shrink.minimize ~fails:(fun _ -> false) [| 1; 2; 3 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a passing schedule"

(* Synthetic predicate with a known unique minimum: fails iff the codes
   at two positions are >= 1 in order. The minimum is [| 1; 1 |]. *)
let test_shrink_synthetic_minimum () =
  let fails codes =
    let hits = Array.to_list codes |> List.filter (fun c -> c >= 1) in
    List.length hits >= 2
  in
  let shrunk = Fuzz.Shrink.minimize ~fails [| 0; 7; 0; 0; 3; 9; 0 |] in
  Alcotest.(check (array int)) "unique minimum" [| 7; 3 |] shrunk;
  Alcotest.(check bool) "still fails" true (fails shrunk)

let test_shrink_planted_violation () =
  let _case, codes, fails = planted_failure () in
  Alcotest.(check bool) "recorded schedule fails" true (fails codes);
  let shrunk = Fuzz.Shrink.minimize ~fails codes in
  Alcotest.(check bool) "shrunk schedule still fails" true (fails shrunk);
  Alcotest.(check bool) "shrunk no longer than input" true
    (Array.length shrunk <= Array.length codes)

let test_shrink_idempotent () =
  let _case, codes, fails = planted_failure () in
  let once = Fuzz.Shrink.minimize ~fails codes in
  let twice = Fuzz.Shrink.minimize ~fails once in
  Alcotest.(check (array int)) "shrinking a shrunk schedule is identity" once
    twice

let test_shrink_one_minimal () =
  let _case, codes, fails = planted_failure () in
  let shrunk = Fuzz.Shrink.minimize ~fails codes in
  (* dropping the last code no longer fails *)
  let n = Array.length shrunk in
  Alcotest.(check bool) "truncating the last code passes" false
    (fails (Array.sub shrunk 0 (n - 1)));
  (* deleting any single code no longer fails *)
  for i = 0 to n - 1 do
    let deleted =
      Array.init (n - 1) (fun j -> if j < i then shrunk.(j) else shrunk.(j + 1))
    in
    if fails deleted then
      Alcotest.failf "deleting code %d still fails (not 1-minimal)" i
  done;
  (* zeroing any non-zero code no longer fails *)
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        let zeroed = Array.copy shrunk in
        zeroed.(i) <- 0;
        if fails zeroed then
          Alcotest.failf "zeroing code %d still fails (not 1-minimal)" i
      end)
    shrunk

(* ---- replay determinism --------------------------------------------- *)

let test_replay_matches_recording () =
  (* replaying the full recorded schedule reproduces the same history,
     hence the same lin verdict, for healthy and planted cases alike *)
  List.iter
    (fun (seed, iter, planted) ->
      let case =
        Fuzz.Case.generate ~planted (Fuzz.Oracle.case_stream ~seed ~iter)
      in
      let t, codes = Fuzz.Oracle.run_recorded ~seed ~iter case in
      let t' = Fuzz.Oracle.replay ~seed ~iter case codes in
      Alcotest.(check bool)
        (Fmt.str "seed %d iter %d: replay verdict matches" seed iter)
        (Result.is_ok (Fuzz.Oracle.lin_check case t))
        (Result.is_ok (Fuzz.Oracle.lin_check case t')))
    [ (42, 0, false); (42, 3, false); (planted_seed, planted_iter, true) ]

let test_corpus_roundtrip () =
  let entry =
    {
      Fuzz.Corpus.seed = 11;
      iter = 7;
      oracle = "lin";
      case = Some (Fuzz.Case.Registers { impl = Fuzz.Case.Abd; n = 3 });
      schedule = [| 0; 5; 2; 0; 9 |];
      expect = Fuzz.Corpus.Fail;
      detail = "round-trip";
    }
  in
  match Fuzz.Corpus.of_json (Fuzz.Corpus.to_json entry) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok entry' ->
      Alcotest.(check bool) "round-trip preserves the entry" true
        (entry = entry')

let test_corpus_files_byte_identical () =
  (* the same (seed, budget) session writes byte-identical corpus files:
     the acceptance property CI relies on *)
  let tmp1 = Filename.temp_file "fuzz-corpus" "" in
  let tmp2 = Filename.temp_file "fuzz-corpus" "" in
  Sys.remove tmp1;
  Sys.remove tmp2;
  let session dir =
    Fuzz.Engine.run ~corpus_dir:dir ~planted:true ~dist_trials:50
      ~seed:planted_seed
      ~budget:(Fuzz.Engine.Iterations (planted_iter + 1))
      ()
  in
  let read_all path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let s1 = session tmp1 in
  let s2 = session tmp2 in
  Alcotest.(check int) "both sessions found a failure" 1
    (List.length s1.Fuzz.Engine.failures);
  Alcotest.(check (list string)) "same file names"
    (List.map Filename.basename s1.Fuzz.Engine.corpus_files)
    (List.map Filename.basename s2.Fuzz.Engine.corpus_files);
  List.iter2
    (fun p1 p2 ->
      Alcotest.(check string)
        (Fmt.str "%s byte-identical" (Filename.basename p1))
        (read_all p1) (read_all p2))
    s1.Fuzz.Engine.corpus_files s2.Fuzz.Engine.corpus_files

let test_engine_deterministic_summary () =
  let session () =
    Fuzz.Engine.run ~dist_trials:50 ~seed:42
      ~budget:(Fuzz.Engine.Iterations 64) ()
  in
  let s1 = session () in
  let s2 = Fuzz.Engine.run ~jobs:4 ~dist_trials:50 ~seed:42
      ~budget:(Fuzz.Engine.Iterations 64) () in
  Alcotest.(check string) "identical summaries at jobs 1 vs 4"
    (Fmt.str "%a" Fuzz.Engine.pp_summary s1)
    (Fmt.str "%a" Fuzz.Engine.pp_summary s2);
  Alcotest.(check bool) "no failures on healthy implementations" false
    (Fuzz.Engine.has_failures s1);
  ignore (s2 = s1)

(* ---- budget parsing -------------------------------------------------- *)

let test_parse_budget () =
  let check s expected =
    match (Fuzz.Engine.parse_budget s, expected) with
    | Ok b, Some b' ->
        Alcotest.(check bool) (Fmt.str "budget %S" s) true (b = b')
    | Error _, None -> ()
    | Ok _, None -> Alcotest.failf "budget %S unexpectedly parsed" s
    | Error e, Some _ -> Alcotest.failf "budget %S rejected: %s" s e
  in
  check "10000" (Some (Fuzz.Engine.Iterations 10000));
  check "300s" (Some (Fuzz.Engine.Seconds 300.));
  check "5m" (Some (Fuzz.Engine.Seconds 300.));
  check "1h" (Some (Fuzz.Engine.Seconds 3600.));
  check "" None;
  check "bogus" None;
  check "-3" None

(* ---- pool teardown --------------------------------------------------- *)

exception Oracle_failed

let test_with_pool_exception_safe () =
  let before = Par.Pool.spawned_domains () in
  (match
     Par.Pool.with_pool ~jobs:4 (fun pool ->
         ignore (Par.Pool.map pool ~n:8 (fun i -> i * i));
         raise Oracle_failed)
   with
  | exception Oracle_failed -> ()
  | _ -> Alcotest.fail "expected Oracle_failed to propagate");
  Alcotest.(check int) "no live worker domains after a raised failure"
    before
    (Par.Pool.spawned_domains ())

let test_engine_failure_leaves_no_domains () =
  let before = Par.Pool.spawned_domains () in
  (* a planted session finds failures, shrinks and reports them — and
     still unwinds its pool *)
  let s =
    Fuzz.Engine.run ~jobs:4 ~planted:true ~dist_trials:50 ~max_failures:1
      ~seed:planted_seed
      ~budget:(Fuzz.Engine.Iterations (planted_iter + 1))
      ()
  in
  Alcotest.(check bool) "planted session found the failure" true
    (Fuzz.Engine.has_failures s);
  Alcotest.(check int) "no live worker domains after the session" before
    (Par.Pool.spawned_domains ())

(* ---- oracles on healthy implementations ------------------------------ *)

let test_lockstep_oracle_healthy () =
  for iter = 0 to 49 do
    match Fuzz.Oracle.model_lockstep ~seed:1234 ~iter with
    | None -> ()
    | Some f ->
        Alcotest.failf "lockstep oracle failed at iter %d: %s" iter
          f.Fuzz.Oracle.detail
  done

let test_dist_oracle_healthy () =
  match Fuzz.Oracle.dist ~seed:42 ~trials:200 ~k:2 () with
  | None -> ()
  | Some f -> Alcotest.failf "dist oracle failed: %s" f.Fuzz.Oracle.detail

(* ---- committed regression corpus ------------------------------------- *)

let corpus_dir = "corpus"

let test_replay_committed_corpus () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check bool) "committed corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      match Fuzz.Engine.replay_file (Filename.concat corpus_dir f) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" f e)
    files

let tests =
  [
    Alcotest.test_case "shrink: rejects passing input" `Quick
      test_shrink_requires_failing_input;
    Alcotest.test_case "shrink: synthetic unique minimum" `Quick
      test_shrink_synthetic_minimum;
    Alcotest.test_case "shrink: planted violation shrinks and still fails"
      `Quick test_shrink_planted_violation;
    Alcotest.test_case "shrink: idempotent on planted violation" `Quick
      test_shrink_idempotent;
    Alcotest.test_case "shrink: 1-minimal on planted violation" `Quick
      test_shrink_one_minimal;
    Alcotest.test_case "replay reproduces the recorded verdict" `Quick
      test_replay_matches_recording;
    Alcotest.test_case "corpus entries round-trip through JSON" `Quick
      test_corpus_roundtrip;
    Alcotest.test_case "same seed writes byte-identical corpus files" `Quick
      test_corpus_files_byte_identical;
    Alcotest.test_case "engine summary identical at jobs 1 vs 4" `Quick
      test_engine_deterministic_summary;
    Alcotest.test_case "budget parsing" `Quick test_parse_budget;
    Alcotest.test_case "with_pool joins domains on exception" `Quick
      test_with_pool_exception_safe;
    Alcotest.test_case "failing session leaves no domains" `Quick
      test_engine_failure_leaves_no_domains;
    Alcotest.test_case "lockstep oracle passes on 50 seeds" `Quick
      test_lockstep_oracle_healthy;
    Alcotest.test_case "dist oracle passes on healthy ABD" `Quick
      test_dist_oracle_healthy;
    Alcotest.test_case "committed corpus replays" `Quick
      test_replay_committed_corpus;
  ]
