(* Tests for the linearizability checkers: the history checker, the
   strong/tail-strong tree checker, and the Theorem 5.1 ABD linearization. *)

open Util
open History
open Lin

let spec_reg = Spec.register ~init:(Value.int 0)

(* Handy history constructors. *)
let call ?(obj = "R") ?(proc = 0) ?(tag = "t") inv meth arg =
  Action.Call { obj_name = obj; meth; arg; inv; proc; tag }

let ret ?(obj = "R") ?(proc = 0) inv value = Action.Ret { inv; value; proc; obj_name = obj }

let test_sequential_ok () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
    ]
  in
  Alcotest.(check bool) "linearizable" true (Check.check spec_reg h)

let test_stale_read_rejected () =
  (* W(1) completes strictly before R, yet R returns 0: not linearizable *)
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 0) ~proc:1;
    ]
  in
  Alcotest.(check bool) "not linearizable" false (Check.check spec_reg h)

let test_concurrent_flexible () =
  (* W(1) concurrent with R: R may return 0 or 1 *)
  let h v =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int v) ~proc:1;
      ret 0 Value.unit ~proc:0;
    ]
  in
  Alcotest.(check bool) "R=0 ok" true (Check.check spec_reg (h 0));
  Alcotest.(check bool) "R=1 ok" true (Check.check spec_reg (h 1));
  Alcotest.(check bool) "R=2 not ok" false (Check.check spec_reg (h 2))

let test_pending_can_take_effect () =
  (* a write whose return is missing may still be linearized *)
  let h =
    [
      call 0 "write" (Value.int 7) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 7) ~proc:1;
    ]
  in
  Alcotest.(check bool) "pending write visible" true (Check.check spec_reg h)

let test_new_old_inversion_rejected () =
  (* two sequential reads observing a concurrent write in the wrong order *)
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
      call 2 "read" Value.unit ~proc:1;
      ret 2 (Value.int 0) ~proc:1;
      ret 0 Value.unit ~proc:0;
    ]
  in
  Alcotest.(check bool) "inversion rejected" false (Check.check spec_reg h)

let test_find_witness_validates () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
      ret 0 Value.unit ~proc:0;
      call 2 "write" (Value.int 2) ~proc:0;
      ret 2 Value.unit ~proc:0;
    ]
  in
  match Check.find spec_reg h with
  | None -> Alcotest.fail "expected a witness"
  | Some lin -> Alcotest.(check bool) "witness validates" true (Check.validate spec_reg h lin)

let test_validate_rejects_wrong_order () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "write" (Value.int 2) ~proc:0;
      ret 1 Value.unit ~proc:0;
    ]
  in
  let bad =
    [
      { Check.inv = 1; meth = "write"; arg = Value.int 2; ret = Value.unit };
      { Check.inv = 0; meth = "write"; arg = Value.int 1; ret = Value.unit };
    ]
  in
  Alcotest.(check bool) "wrong real-time order" false (Check.validate spec_reg h bad)

let test_snapshot_spec () =
  let spec = Spec.snapshot ~n:2 ~init:(Value.int 0) in
  let h =
    [
      call 0 "update" (Value.pair (Value.int 0) (Value.int 5)) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "scan" Value.unit ~proc:1;
      ret 1 (Value.list [ Value.int 5; Value.int 0 ]) ~proc:1;
    ]
  in
  Alcotest.(check bool) "snapshot history ok" true (Check.check spec h);
  let h_bad =
    [
      call 0 "update" (Value.pair (Value.int 0) (Value.int 5)) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "scan" Value.unit ~proc:1;
      ret 1 (Value.list [ Value.int 0; Value.int 0 ]) ~proc:1;
    ]
  in
  Alcotest.(check bool) "missed completed update" false (Check.check spec h_bad)

let test_linearizations_extending_counts () =
  (* two concurrent completed writes: two orders, each optionally visible *)
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "write" (Value.int 2) ~proc:1;
      ret 0 Value.unit ~proc:0;
      ret 1 Value.unit ~proc:1;
    ]
  in
  let all = List.of_seq (Check.linearizations_extending spec_reg h []) in
  Alcotest.(check int) "both orders enumerated" 2 (List.length all)

(* ------------------------------------------------------------------ *)
(* Strong-linearizability tree checker                                  *)

(* A "sticky" register: only the first write takes effect. Its inflexible
   write order makes forced-commitment scenarios easy to build. *)
let sticky : Spec.t =
  {
    name = "sticky";
    init = Value.int 0;
    apply =
      (fun state ~meth ~arg ->
        match meth with
        | "read" -> Some (state, state)
        | "write" ->
            if Value.equal state (Value.int 0) then Some (arg, Value.unit)
            else Some (state, Value.unit)
        | _ -> None);
  }

(* Root: R0 returns 0, then W1 and W2 both complete. Children disagree on
   which write won, so no prefix-preserving linearization function exists. *)
let violation_tree ~root_complete =
  let base =
    [
      call 0 "read" Value.unit ~proc:2;
      ret 0 (Value.int 0) ~proc:2;
      call 1 "write" (Value.int 1) ~proc:0;
      call 2 "write" (Value.int 2) ~proc:1;
      ret 1 Value.unit ~proc:0;
      ret 2 Value.unit ~proc:1;
    ]
  in
  let child v inv =
    Lin.Tree.leaf ~descr:(Fmt.str "reads %d" v) ~complete:true
      (base @ [ call inv "read" Value.unit ~proc:2; ret inv (Value.int v) ~proc:2 ])
  in
  Lin.Tree.node ~descr:"root" ~complete:root_complete base [ child 1 3; child 2 4 ]

let test_strong_violation_detected () =
  Alcotest.(check bool)
    "no prefix-preserving f" false
    (Lin.Tree.strongly_linearizable sticky (violation_tree ~root_complete:true));
  match Lin.Tree.first_violation sticky (violation_tree ~root_complete:true) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a violation report"

let test_tail_strong_unconstrained_root () =
  (* marking the root incomplete (its writes have not passed their
     preamble) removes the constraint: tail strong linearizability holds *)
  Alcotest.(check bool)
    "incomplete root unconstrained" true
    (Lin.Tree.strongly_linearizable sticky (violation_tree ~root_complete:false))

let test_strong_positive_chain () =
  (* a sequential chain of executions is trivially strongly linearizable *)
  let h1 = [ call 0 "write" (Value.int 1) ~proc:0 ] in
  let h2 = h1 @ [ ret 0 Value.unit ~proc:0 ] in
  let h3 = h2 @ [ call 1 "read" Value.unit ~proc:1; ret 1 (Value.int 1) ~proc:1 ] in
  let tree =
    Lin.Tree.node ~complete:true h1
      [ Lin.Tree.node ~complete:true h2 [ Lin.Tree.leaf ~complete:true h3 ] ]
  in
  Alcotest.(check bool) "chain ok" true (Lin.Tree.strongly_linearizable spec_reg tree)

(* ------------------------------------------------------------------ *)
(* Enumeration: the atomic register is strongly linearizable            *)

let atomic_pair_config () =
  let reg = Objects.Atomic_register.make ~name:"X" ~init:(Value.int 0) in
  let program ~self =
    let open Sim.Proc.Syntax in
    match self with
    | 0 ->
        let* _ =
          Sim.Obj_impl.call reg ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1)
        in
        Sim.Proc.return ()
    | _ ->
        let* _ = Sim.Obj_impl.call reg ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
        Sim.Proc.return ()
  in
  {
    Sim.Runtime.n = 2;
    objects = [ reg ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let test_atomic_strongly_linearizable () =
  let tree =
    Lin.Enumerate.tree ~preamble_map:Lin.Preamble_map.trivial (atomic_pair_config ())
  in
  Alcotest.(check bool) "tree nonempty" true (Lin.Tree.size tree > 10);
  Alcotest.(check bool)
    "atomic register strongly linearizable" true
    (Lin.Tree.strongly_linearizable spec_reg tree)

let test_enumeration_counts_executions () =
  let traces = Lin.Enumerate.executions (atomic_pair_config ()) in
  (* each process takes 4 steps (call marker, register access, return
     marker, termination): C(8,4) = 70 interleavings *)
  Alcotest.(check int) "70 maximal executions" 70 (List.length traces)

(* ------------------------------------------------------------------ *)
(* Theorem 5.1: ABD's timestamp linearization is prefix-preserving      *)

let abd_client_config ~k () =
  let n = 3 in
  let r =
    if k = 0 then Objects.Abd.make ~name:"R" ~n ~init:(Value.int 0)
    else Objects.Abd.make_k ~k ~name:"R" ~n ~init:(Value.int 0)
  in
  let program ~self =
    let open Sim.Proc.Syntax in
    let* _ =
      Sim.Obj_impl.call r ~self ~tag:"w" ~meth:"write"
        ~arg:(Value.int (self + 10))
    in
    let* _ = Sim.Obj_impl.call r ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
    Sim.Proc.return ()
  in
  {
    Sim.Runtime.n = n;
    objects = [ r ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let test_abd_prefix_preserving () =
  for seed = 1 to 25 do
    let t = Scheds.run_random ~seed (abd_client_config ~k:0 ()) in
    Alcotest.(check bool)
      (Fmt.str "prefix-preserving (seed %d)" seed)
      true
      (Lin.Abd_lin.prefix_preserving ~obj_name:"R" (Sim.Runtime.trace t))
  done

let test_abd_k_prefix_preserving () =
  for seed = 1 to 10 do
    let t = Scheds.run_random ~seed (abd_client_config ~k:2 ()) in
    Alcotest.(check bool)
      (Fmt.str "ABD^2 prefix-preserving (seed %d)" seed)
      true
      (Lin.Abd_lin.prefix_preserving ~obj_name:"R" (Sim.Runtime.trace t))
  done

let test_abd_linearization_validates () =
  for seed = 1 to 15 do
    let t = Scheds.run_random ~seed (abd_client_config ~k:0 ()) in
    let entries = Sim.Trace.entries (Sim.Runtime.trace t) in
    let f_e = Lin.Abd_lin.linearize ~obj_name:"R" entries in
    let h = Sim.Runtime.history t in
    Alcotest.(check bool)
      (Fmt.str "f(e) is a valid linearization (seed %d)" seed)
      true
      (Check.validate spec_reg h f_e)
  done

let tests =
  [
    Alcotest.test_case "sequential history ok" `Quick test_sequential_ok;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
    Alcotest.test_case "concurrent reads flexible" `Quick test_concurrent_flexible;
    Alcotest.test_case "pending write can take effect" `Quick test_pending_can_take_effect;
    Alcotest.test_case "new/old inversion rejected" `Quick test_new_old_inversion_rejected;
    Alcotest.test_case "witness validates" `Quick test_find_witness_validates;
    Alcotest.test_case "validate rejects wrong order" `Quick test_validate_rejects_wrong_order;
    Alcotest.test_case "snapshot spec histories" `Quick test_snapshot_spec;
    Alcotest.test_case "linearization enumeration" `Quick test_linearizations_extending_counts;
    Alcotest.test_case "strong-lin violation detected" `Quick test_strong_violation_detected;
    Alcotest.test_case "tail strong: incomplete root unconstrained" `Quick
      test_tail_strong_unconstrained_root;
    Alcotest.test_case "strong-lin positive chain" `Quick test_strong_positive_chain;
    Alcotest.test_case "atomic register strongly linearizable (enumerated)" `Slow
      test_atomic_strongly_linearizable;
    Alcotest.test_case "enumeration counts maximal executions" `Quick
      test_enumeration_counts_executions;
    Alcotest.test_case "Thm 5.1: ABD f prefix-preserving" `Slow test_abd_prefix_preserving;
    Alcotest.test_case "Thm 5.1: ABD^2 f prefix-preserving" `Slow
      test_abd_k_prefix_preserving;
    Alcotest.test_case "Thm 5.1: f(e) validates" `Slow test_abd_linearization_validates;
  ]

(* ------------------------------------------------------------------ *)
(* Theorem 5.1-style prefix preservation for the Section 5.3/5.4 objects
   (the paper: "the proof of tail strong linearizability is similar to the
   one for the ABD register") *)

let va_client_config () =
  let n = 3 in
  let r = Objects.Vitanyi_awerbuch.make ~name:"V" ~n ~init:(Value.int 0) in
  let program ~self =
    let open Sim.Proc.Syntax in
    let* _ =
      Sim.Obj_impl.call r ~self ~tag:"w" ~meth:"write" ~arg:(Value.int (self + 10))
    in
    let* _ = Sim.Obj_impl.call r ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
    Sim.Proc.return ()
  in
  { Sim.Runtime.n; objects = [ r ]; program; enable_crashes = false; max_crashes = 0 }

let test_va_prefix_preserving () =
  for seed = 1 to 20 do
    let t = Scheds.run_random ~seed (va_client_config ()) in
    Alcotest.(check bool)
      (Fmt.str "VA prefix-preserving (seed %d)" seed)
      true
      (Lin.Abd_lin.prefix_preserving ~obj_name:"V" (Sim.Runtime.trace t))
  done

let il_client_config () =
  let n = 3 and writer = 0 in
  let r = Objects.Israeli_li.make ~name:"I" ~n ~writer ~init:(Value.int 0) in
  let program ~self =
    let open Sim.Proc.Syntax in
    if self = writer then
      let* _ = Sim.Obj_impl.call r ~self ~tag:"w1" ~meth:"write" ~arg:(Value.int 1) in
      let* _ = Sim.Obj_impl.call r ~self ~tag:"w2" ~meth:"write" ~arg:(Value.int 2) in
      Sim.Proc.return ()
    else
      let* _ = Sim.Obj_impl.call r ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
      let* _ = Sim.Obj_impl.call r ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
      Sim.Proc.return ()
  in
  { Sim.Runtime.n; objects = [ r ]; program; enable_crashes = false; max_crashes = 0 }

let test_il_prefix_preserving () =
  for seed = 1 to 20 do
    let t = Scheds.run_random ~seed (il_client_config ()) in
    Alcotest.(check bool)
      (Fmt.str "IL prefix-preserving (seed %d)" seed)
      true
      (Lin.Abd_lin.prefix_preserving ~obj_name:"I" (Sim.Runtime.trace t))
  done

let more_tests =
  [
    Alcotest.test_case "Sec 5.3: VA f prefix-preserving" `Slow test_va_prefix_preserving;
    Alcotest.test_case "Sec 5.4: IL f prefix-preserving" `Slow test_il_prefix_preserving;
  ]

(* ------------------------------------------------------------------ *)
(* Locality (multi-object linearizability), on real weakener histories  *)

let weakener_specs =
  [
    ("R", Spec.register ~init:Value.none);
    ("C", Spec.register ~init:(Value.int (-1)));
  ]

let test_locality_on_weakener () =
  for seed = 1 to 15 do
    let config = Programs.Weakener.abd_config () in
    let rng = Rng.of_int seed in
    let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.split rng)) in
    (match Sim.Runtime.run t ~max_steps:1_000_000 (fun _ evs -> Rng.pick rng evs) with
    | Sim.Runtime.Completed -> ()
    | _ -> Alcotest.fail "weakener run incomplete");
    let h = Sim.Runtime.history t in
    let local = Multi.check_local weakener_specs h in
    let mono = Multi.check_monolithic weakener_specs h in
    Alcotest.(check bool) (Fmt.str "local ok (seed %d)" seed) true local;
    Alcotest.(check bool) (Fmt.str "locality agreement (seed %d)" seed) local mono
  done

let test_locality_rejects_cross_object_nonsense () =
  (* an inversion inside one object fails both checks *)
  let h =
    [
      call 0 "write" (Value.int 1) ~obj:"R" ~proc:0;
      ret 0 Value.unit ~proc:0 ~obj:"R";
      call 1 "read" Value.unit ~obj:"R" ~proc:1;
      ret 1 Value.none ~proc:1 ~obj:"R";
      call 2 "read" Value.unit ~obj:"C" ~proc:1;
      ret 2 (Value.int (-1)) ~proc:1 ~obj:"C";
    ]
  in
  Alcotest.(check bool) "local rejects" false (Multi.check_local weakener_specs h);
  Alcotest.(check bool) "monolithic rejects" false
    (Multi.check_monolithic weakener_specs h)

let test_locality_unknown_object () =
  let h = [ call 0 "read" Value.unit ~obj:"X" ~proc:0 ] in
  Alcotest.(check bool) "unknown object fails" false
    (Multi.check_local weakener_specs h)

let locality_tests =
  [
    Alcotest.test_case "locality agreement on weakener histories" `Slow
      test_locality_on_weakener;
    Alcotest.test_case "locality rejects bad single-object history" `Quick
      test_locality_rejects_cross_object_nonsense;
    Alcotest.test_case "locality with unknown object" `Quick test_locality_unknown_object;
  ]
