(* Tests for the simulator substrate: determinism, mailboxes, registers,
   enabledness, crash handling. *)

open Util
open Sim
open Sim.Proc.Syntax

let value = Alcotest.testable Value.pp Value.equal

(* A trivial one-object configuration: each process writes then reads an
   atomic register. *)
let trivial_config () =
  let reg = Objects.Atomic_register.make ~name:"X" ~init:Value.none in
  let program ~self =
    let* _ =
      Obj_impl.call reg ~self ~tag:"w" ~meth:"write" ~arg:(Value.int self)
    in
    let* _ = Obj_impl.call reg ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
    Proc.return ()
  in
  {
    Runtime.n = 3;
    objects = [ reg ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let test_trivial_completes () =
  let t = Scheds.run_random (trivial_config ()) in
  Alcotest.(check bool) "finished" true (Runtime.finished t);
  let h = Runtime.history t in
  Alcotest.(check int) "six operations" 6 (List.length (History.Hist.ops h))

let test_determinism_same_schedule () =
  (* record the schedule of one run, replay it, compare traces *)
  let rng = Rng.of_int 7 in
  let t1 = Runtime.create (trivial_config ()) (Runtime.Gen (Rng.copy rng)) in
  let sched = ref [] in
  let choose _t evs =
    let e = Rng.pick rng evs in
    sched := e :: !sched;
    e
  in
  (match Runtime.run t1 ~max_steps:10_000 choose with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "run did not complete");
  let t2 = Runtime.create (trivial_config ()) (Runtime.Gen (Rng.of_int 9)) in
  Runtime.run_schedule t2 (List.rev !sched);
  let show t = Fmt.str "%a" Trace.pp (Runtime.trace t) in
  Alcotest.(check string) "same trace" (show t1) (show t2)

let test_mailbox_fifo () =
  (* p0 sends three tagged messages to p1; p1 receives them in delivery
     order when the scheduler delivers in send order *)
  let dummy : Obj_impl.t =
    {
      name = "chan";
      invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
      on_message = None;
      init_server = None;
      registers = (fun ~n:_ -> []);
    }
  in
  let got = ref [] in
  let program ~self =
    match self with
    | 0 ->
        Proc.iter [ 1; 2; 3 ] (fun i ->
            Proc.send 1 (Message.make ~obj_name:"chan" (Value.int i)))
    | 1 ->
        let* () =
          Proc.iter [ (); (); () ] (fun () ->
              let* m = Proc.recv ~descr:"any" (fun _ -> true) in
              got := Value.to_int m.body :: !got;
              Proc.return ())
        in
        Proc.return ()
    | _ -> Proc.return ()
  in
  let config =
    {
      Runtime.n = 2;
      objects = [ dummy ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let t = Runtime.create config (Runtime.Gen (Rng.of_int 1)) in
  (* deliver in send order, then let p1 drain *)
  let choose _t evs =
    match
      List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs
    with
    | Some e -> e
    | None -> (
        match
          List.find_opt (function Runtime.Step 0 -> true | _ -> false) evs
        with
        | Some e -> e
        | None -> List.hd evs)
  in
  (match Runtime.run t ~max_steps:1000 choose with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !got)

let test_recv_blocks () =
  let dummy : Obj_impl.t =
    {
      name = "chan";
      invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
      on_message = None;
      init_server = None;
      registers = (fun ~n:_ -> []);
    }
  in
  let program ~self =
    match self with
    | 0 ->
        let* _ = Proc.recv ~descr:"never" (fun _ -> true) in
        Proc.return ()
    | _ -> Proc.return ()
  in
  let config =
    {
      Runtime.n = 1;
      objects = [ dummy ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let t = Runtime.create config (Runtime.Gen (Rng.of_int 1)) in
  Alcotest.(check bool) "p0 blocked" true (Runtime.blocked t 0);
  Alcotest.(check int) "nothing enabled" 0 (List.length (Runtime.enabled t));
  Alcotest.(check bool) "not finished" false (Runtime.finished t)

let test_register_discipline () =
  (* a register writable only by process 0; process 1 writing must fault *)
  let rid = Base_reg.id ~obj_name:"o" "r" in
  let obj : Obj_impl.t =
    {
      name = "o";
      invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
      on_message = None;
      init_server = None;
      registers =
        (fun ~n:_ ->
          [ { Base_reg.id = rid; init = Value.int 0; writers = Some [ 0 ]; readers = None } ]);
    }
  in
  let program ~self =
    if self = 1 then Proc.write_reg rid (Value.int 5) else Proc.return ()
  in
  let config =
    {
      Runtime.n = 2;
      objects = [ obj ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let t = Runtime.create config (Runtime.Gen (Rng.of_int 1)) in
  Alcotest.check_raises "discipline violation"
    (Base_reg.Discipline_violation "process 1 may not write o.r")
    (fun () -> Runtime.step t (Runtime.Step 1))

let test_tape_randomness () =
  let dummy : Obj_impl.t =
    {
      name = "o";
      invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
      on_message = None;
      init_server = None;
      registers = (fun ~n:_ -> []);
    }
  in
  let drawn = ref [] in
  let program ~self:_ =
    let* a = Proc.random ~kind:Proc.Program_random 10 in
    let* b = Proc.random ~kind:Proc.Program_random 4 in
    drawn := [ a; b ];
    Proc.return ()
  in
  let config =
    {
      Runtime.n = 1;
      objects = [ dummy ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let t = Runtime.create config (Runtime.Tape [| 7; 6 |]) in
  (match Runtime.run t ~max_steps:100 (fun _ evs -> List.hd evs) with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check (list int)) "tape respected (6 mod 4 = 2)" [ 7; 2 ] !drawn

let test_tape_exhaustion () =
  let dummy : Obj_impl.t =
    {
      name = "o";
      invoke = (fun ~self:_ ~meth:_ ~arg:_ -> Proc.return Value.unit);
      on_message = None;
      init_server = None;
      registers = (fun ~n:_ -> []);
    }
  in
  let program ~self:_ =
    let* _ = Proc.random ~kind:Proc.Program_random 2 in
    Proc.return ()
  in
  let config =
    {
      Runtime.n = 1;
      objects = [ dummy ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let t = Runtime.create config (Runtime.Tape [||]) in
  Alcotest.check_raises "exhausted" Runtime.Tape_exhausted (fun () ->
      Runtime.step t (Runtime.Step 0))

let test_crash_event () =
  let config = { (trivial_config ()) with enable_crashes = true; max_crashes = 1 } in
  let t = Runtime.create config (Runtime.Gen (Rng.of_int 1)) in
  Runtime.step t (Runtime.Crash 2);
  Alcotest.(check bool) "p2 crashed" true (Runtime.is_crashed t 2);
  (* no more crash events should be enabled (max_crashes = 1) *)
  let crashes =
    List.filter (function Runtime.Crash _ -> true | _ -> false) (Runtime.enabled t)
  in
  Alcotest.(check int) "no further crash enabled" 0 (List.length crashes)

let test_history_well_formed () =
  let t = Scheds.run_random ~seed:3 (trivial_config ()) in
  Alcotest.(check bool) "well formed" true (History.Hist.well_formed (Runtime.history t))

let test_outcome_extraction () =
  let t = Scheds.run_random ~seed:5 (trivial_config ()) in
  let outcome = Runtime.outcome t in
  (* every process reads some value previously written (0, 1 or 2) *)
  List.iter
    (fun occ ->
      match History.Outcome.find outcome ~tag:"r" ~occurrence:occ with
      | Some (Value.Int v) -> Alcotest.(check bool) "read a written id" true (v >= 0 && v <= 2)
      | Some other -> Alcotest.failf "unexpected read %a" Value.pp other
      | None -> Alcotest.fail "missing read outcome")
    [ 0; 1; 2 ]

(* A History-level trace must keep outcomes, labels and the exact
   step/message counts of a Full run of the same schedule, while
   materializing none of the hot per-event entries. *)
let test_trace_history_level () =
  let run level =
    let t =
      Runtime.create ?trace_level:level
        (Programs.Weakener.abd_config ())
        (Runtime.Gen (Rng.of_int 11))
    in
    (match Runtime.run t ~max_steps:100_000 Adversary.Schedulers.eager_delivery with
    | Runtime.Completed -> ()
    | _ -> Alcotest.fail "weakener run did not complete");
    t
  in
  let tf = run None and th = run (Some Trace.History) in
  Alcotest.(check int)
    "step counts agree"
    (Trace.count_steps (Runtime.trace tf))
    (Trace.count_steps (Runtime.trace th));
  Alcotest.(check int)
    "message counts agree"
    (Trace.count_messages (Runtime.trace tf))
    (Trace.count_messages (Runtime.trace th));
  Alcotest.(check bool)
    "full run recorded per-event entries" true
    (List.exists
       (function Trace.Sent _ -> true | _ -> false)
       (Trace.entries (Runtime.trace tf)));
  Alcotest.(check bool)
    "history run materialized none" false
    (List.exists
       (function
         | Trace.Sent _ | Trace.Delivered _ | Trace.Received _
         | Trace.Reg_read _ | Trace.Reg_write _ | Trace.Randomized _ ->
             true
         | _ -> false)
       (Trace.entries (Runtime.trace th)));
  (* outcomes come from Action entries, which History keeps *)
  let bindings t =
    List.map
      (fun ((tag, occ), v) -> Fmt.str "%s/%d=%a" tag occ Value.pp v)
      (History.Outcome.bindings (Runtime.outcome t))
  in
  Alcotest.(check (list string)) "outcomes agree" (bindings tf) (bindings th)

let value_roundtrip () =
  Alcotest.check value "none/some" (Value.some (Value.int 3)) (Value.some (Value.int 3));
  Alcotest.(check (option value)) "to_option none" None (Value.to_option Value.none);
  Alcotest.(check (option value))
    "to_option some" (Some (Value.int 3))
    (Value.to_option (Value.some (Value.int 3)))

let tests =
  [
    Alcotest.test_case "trivial program completes" `Quick test_trivial_completes;
    Alcotest.test_case "replay determinism" `Quick test_determinism_same_schedule;
    Alcotest.test_case "mailbox is FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "recv blocks without message" `Quick test_recv_blocks;
    Alcotest.test_case "register discipline enforced" `Quick test_register_discipline;
    Alcotest.test_case "tape randomness" `Quick test_tape_randomness;
    Alcotest.test_case "tape exhaustion raises" `Quick test_tape_exhaustion;
    Alcotest.test_case "crash event" `Quick test_crash_event;
    Alcotest.test_case "histories are well-formed" `Quick test_history_well_formed;
    Alcotest.test_case "outcome extraction" `Quick test_outcome_extraction;
    Alcotest.test_case "trace History level" `Quick test_trace_history_level;
    Alcotest.test_case "value option roundtrip" `Quick value_roundtrip;
  ]
