(* Tests for schedulers, Monte-Carlo estimation, and the Figure 1 scripted
   strong adversary against the real simulated ABD. *)

open Sim

let test_figure1_wins_both_coins () =
  Alcotest.(check bool) "adversary forces non-termination" true
    (Adversary.Figure1.always_wins ())

let test_figure1_traces_linearizable () =
  (* even while being defeated probabilistically, ABD stays linearizable *)
  let spec_r = History.Spec.register ~init:Util.Value.none in
  let spec_c = History.Spec.register ~init:(Util.Value.int (-1)) in
  List.iter
    (fun coin ->
      let t = Adversary.Figure1.run ~coin in
      let h = Runtime.history t in
      Alcotest.(check bool)
        (Fmt.str "R linearizable (coin %d)" coin)
        true
        (Lin.Check.check spec_r (History.Hist.project_obj h "R"));
      Alcotest.(check bool)
        (Fmt.str "C linearizable (coin %d)" coin)
        true
        (Lin.Check.check spec_c (History.Hist.project_obj h "C")))
    [ 0; 1 ]

let test_figure1_outcome_details () =
  (* coin 0: u1 = 0, u2 = 1; coin 1: u1 = 1, u2 = 0 *)
  List.iter
    (fun coin ->
      let t = Adversary.Figure1.run ~coin in
      let o = Runtime.outcome t in
      let get tag =
        match History.Outcome.find1 o tag with
        | Some (Util.Value.Int v) -> v
        | _ -> Alcotest.failf "missing %s" tag
      in
      Alcotest.(check int) (Fmt.str "u1 (coin %d)" coin) coin (get Programs.Weakener.tag_u1);
      Alcotest.(check int) (Fmt.str "u2 (coin %d)" coin) (1 - coin) (get Programs.Weakener.tag_u2);
      Alcotest.(check int) (Fmt.str "c (coin %d)" coin) coin (get Programs.Weakener.tag_c))
    [ 0; 1 ]

let test_figure1_is_strong_adversary () =
  (* the schedule prefixes up to (and including) the coin flip coincide for
     both tapes: the script does not peek at future randomness *)
  let entries_until_flip t =
    let rec take acc = function
      | [] -> List.rev acc
      | Trace.Randomized { kind = Proc.Program_random; _ } :: _ -> List.rev acc
      | e :: rest -> take (e :: acc) rest
    in
    take [] (Trace.entries (Runtime.trace t))
  in
  let t0 = Adversary.Figure1.run ~coin:0 in
  let t1 = Adversary.Figure1.run ~coin:1 in
  let show t = Fmt.str "%a" (Fmt.list ~sep:Fmt.cut Trace.pp_entry) (entries_until_flip t) in
  Alcotest.(check string) "common prefix" (show t0) (show t1)

let test_monte_carlo_atomic_weakener () =
  (* random (fair) scheduling is far from adversarial: bad is rare *)
  let r =
    Adversary.Monte_carlo.estimate ~trials:300 ~seed:11
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.atomic_config
  in
  Alcotest.(check bool) "well below adversarial 1/2" true (r.fraction < 0.3)

let test_monte_carlo_abd_weakener_completes () =
  let r =
    Adversary.Monte_carlo.estimate ~trials:100 ~seed:13
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.abd_config
  in
  Alcotest.(check int) "all trials ran" 100 r.trials;
  Alcotest.(check bool) "ci sane" true (r.ci_low <= r.fraction && r.fraction <= r.ci_high)

let test_monte_carlo_counts_deadlocks () =
  (* every process blocks on a message that never arrives: the estimate
     must count the deadlocks, not raise *)
  let deadlock_config () =
    let program ~self:_ =
      let open Sim.Proc.Syntax in
      let* _ = Sim.Proc.recv ~descr:"never" (fun _ -> false) in
      Sim.Proc.return ()
    in
    {
      Runtime.n = 2;
      objects = [];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let r =
    Adversary.Monte_carlo.estimate ~trials:5 ~seed:3
      ~scheduler:Adversary.Schedulers.uniform
      ~bad:(fun _ -> true)
      deadlock_config
  in
  Alcotest.(check int) "all trials counted" 5 r.trials;
  Alcotest.(check int) "all deadlocked" 5 r.deadlocks;
  Alcotest.(check int) "none step-limited" 0 r.step_limited;
  (* abnormal trials never count as bad: the outcome was not observed *)
  Alcotest.(check int) "no bad outcomes" 0 r.bad;
  Alcotest.(check (float 0.0)) "fraction over all trials" 0.0 r.fraction

let test_monte_carlo_counts_step_limits () =
  (* the ABD weakener needs ~190 steps; a 50-step budget cannot finish *)
  let r =
    Adversary.Monte_carlo.estimate ~max_steps:50 ~trials:5 ~seed:7
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.abd_config
  in
  Alcotest.(check int) "all trials counted" 5 r.trials;
  Alcotest.(check int) "all step-limited" 5 r.step_limited;
  Alcotest.(check int) "none deadlocked" 0 r.deadlocks;
  Alcotest.(check int) "no bad outcomes" 0 r.bad

let test_round_robin_scheduler_completes () =
  let config = Programs.Weakener.abd_config () in
  let t = Runtime.create config (Runtime.Gen (Util.Rng.of_int 5)) in
  match Runtime.run t ~max_steps:100_000 (Adversary.Schedulers.round_robin ()) with
  | Runtime.Completed -> ()
  | Runtime.Deadlocked -> Alcotest.fail "deadlock"
  | Runtime.Step_limit_reached -> Alcotest.fail "step limit"

let test_eager_delivery_completes () =
  let config = Programs.Weakener.abd_k_config ~k:3 in
  let t = Runtime.create config (Runtime.Gen (Util.Rng.of_int 5)) in
  match Runtime.run t ~max_steps:200_000 Adversary.Schedulers.eager_delivery with
  | Runtime.Completed -> ()
  | Runtime.Deadlocked -> Alcotest.fail "deadlock"
  | Runtime.Step_limit_reached -> Alcotest.fail "step limit"

let test_prefer_process () =
  (* preferring p2 starves nobody here but biases the interleaving; the
     run must still complete and stay linearizable *)
  let config = Programs.Weakener.abd_config () in
  let t = Runtime.create config (Runtime.Gen (Util.Rng.of_int 9)) in
  let sched =
    Adversary.Schedulers.prefer_process 2 Adversary.Schedulers.eager_delivery
  in
  (match Runtime.run t ~max_steps:100_000 sched with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  let spec = History.Spec.register ~init:Util.Value.none in
  Alcotest.(check bool) "R linearizable" true
    (Lin.Check.check spec (History.Hist.project_obj (Runtime.history t) "R"))

let tests =
  [
    Alcotest.test_case "Figure 1 adversary wins for both coins" `Quick
      test_figure1_wins_both_coins;
    Alcotest.test_case "Figure 1 traces stay linearizable" `Quick
      test_figure1_traces_linearizable;
    Alcotest.test_case "Figure 1 outcome values match A.2" `Quick
      test_figure1_outcome_details;
    Alcotest.test_case "Figure 1 script is a strong adversary" `Quick
      test_figure1_is_strong_adversary;
    Alcotest.test_case "Monte Carlo: fair scheduling is benign" `Quick
      test_monte_carlo_atomic_weakener;
    Alcotest.test_case "Monte Carlo: ABD weakener estimation" `Quick
      test_monte_carlo_abd_weakener_completes;
    Alcotest.test_case "Monte Carlo: deadlocked trials are counted" `Quick
      test_monte_carlo_counts_deadlocks;
    Alcotest.test_case "Monte Carlo: step-limited trials are counted" `Quick
      test_monte_carlo_counts_step_limits;
    Alcotest.test_case "round-robin scheduler" `Quick test_round_robin_scheduler_completes;
    Alcotest.test_case "eager-delivery scheduler" `Quick test_eager_delivery_completes;
    Alcotest.test_case "prefer-process scheduler" `Quick test_prefer_process;
  ]
