(* Tests for the object implementations: linearizability under adversarial
   random schedules, O^k equivalence (Theorem 4.1), fault tolerance, access
   discipline, message complexity. *)

open Util
open Sim
open Sim.Proc.Syntax

let reg_spec = History.Spec.register ~init:(Value.int 0)

(* A generic concurrent client: process i writes i+10, reads, writes i+20,
   reads again. Distinct values make linearizability checking sharp. *)
let rw_client obj ~self =
  let* _ =
    Obj_impl.call obj ~self ~tag:"w1" ~meth:"write" ~arg:(Value.int (self + 10))
  in
  let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
  let* _ =
    Obj_impl.call obj ~self ~tag:"w2" ~meth:"write" ~arg:(Value.int (self + 20))
  in
  let* _ = Obj_impl.call obj ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
  Proc.return ()

let config_of_obj ?(n = 3) obj program =
  ignore obj;
  { Runtime.n; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }

let check_linearizable ?(n = 3) ~make_obj ~seeds () =
  List.iter
    (fun seed ->
      let obj = make_obj () in
      let t = Scheds.run_random ~seed (config_of_obj ~n obj (rw_client obj)) in
      let h = Runtime.history t in
      if not (Lin.Check.check reg_spec h) then
        Alcotest.failf "seed %d: non-linearizable history:@.%a" seed
          History.Hist.pp h)
    seeds

let seeds = List.init 20 (fun i -> i * 7 + 1)

let test_abd_linearizable () =
  check_linearizable ~make_obj:(fun () -> Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)) ~seeds ()

let test_abd_n5_linearizable () =
  check_linearizable ~n:5
    ~make_obj:(fun () -> Objects.Abd.make ~name:"R" ~n:5 ~init:(Value.int 0))
    ~seeds:(List.init 8 (fun i -> i + 1))
    ()

let test_abd_k_linearizable () =
  List.iter
    (fun k ->
      check_linearizable
        ~make_obj:(fun () -> Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0))
        ~seeds:(List.init 8 (fun i -> (i * 3) + k))
        ())
    [ 1; 2; 3 ]

let test_abd_sw_linearizable () =
  (* only process 0 writes *)
  let make_obj () =
    Objects.Abd.make_single_writer ~name:"R" ~n:3 ~writer:0 ~init:(Value.int 0)
  in
  let client obj ~self =
    if self = 0 then rw_client obj ~self
    else
      let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
      let* _ = Obj_impl.call obj ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
      Proc.return ()
  in
  List.iter
    (fun seed ->
      let obj = make_obj () in
      let t = Scheds.run_random ~seed (config_of_obj obj (client obj)) in
      let h = Runtime.history t in
      if not (Lin.Check.check reg_spec h) then
        Alcotest.failf "seed %d: non-linearizable SW-ABD history:@.%a" seed
          History.Hist.pp h)
    seeds

let test_va_linearizable () =
  check_linearizable
    ~make_obj:(fun () ->
      Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0))
    ~seeds ()

let test_va_k_linearizable () =
  check_linearizable
    ~make_obj:(fun () ->
      Objects.Vitanyi_awerbuch.make_k ~k:2 ~name:"R" ~n:3 ~init:(Value.int 0))
    ~seeds:(List.init 10 (fun i -> i + 2))
    ()

let test_il_linearizable () =
  let writer = 0 in
  let make_obj () =
    Objects.Israeli_li.make ~name:"R" ~n:3 ~writer ~init:(Value.int 0)
  in
  let client obj ~self =
    if self = writer then begin
      let* _ =
        Obj_impl.call obj ~self ~tag:"w1" ~meth:"write" ~arg:(Value.int 1)
      in
      let* _ =
        Obj_impl.call obj ~self ~tag:"w2" ~meth:"write" ~arg:(Value.int 2)
      in
      Proc.return ()
    end
    else
      let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
      let* _ = Obj_impl.call obj ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
      Proc.return ()
  in
  List.iter
    (fun seed ->
      let obj = make_obj () in
      let t = Scheds.run_random ~seed (config_of_obj obj (client obj)) in
      let h = Runtime.history t in
      if not (Lin.Check.check reg_spec h) then
        Alcotest.failf "seed %d: non-linearizable IL history:@.%a" seed
          History.Hist.pp h)
    seeds

let test_il_k_linearizable () =
  let writer = 0 in
  let obj = Objects.Israeli_li.make_k ~k:3 ~name:"R" ~n:3 ~writer ~init:(Value.int 0) in
  let client ~self =
    if self = writer then
      let* _ = Obj_impl.call obj ~self ~tag:"w1" ~meth:"write" ~arg:(Value.int 1) in
      Proc.return ()
    else
      let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
      Proc.return ()
  in
  List.iter
    (fun seed ->
      let t = Scheds.run_random ~seed (config_of_obj obj client) in
      Alcotest.(check bool)
        (Fmt.str "IL^3 linearizable (seed %d)" seed)
        true
        (Lin.Check.check reg_spec (Runtime.history t)))
    (List.init 10 (fun i -> i + 1))

let snapshot_spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0)

let snapshot_client obj ~self =
  let* _ =
    Obj_impl.call obj ~self ~tag:"u1" ~meth:"update"
      ~arg:(Value.pair (Value.int self) (Value.int (self + 1)))
  in
  let* _ = Obj_impl.call obj ~self ~tag:"s1" ~meth:"scan" ~arg:Value.unit in
  let* _ =
    Obj_impl.call obj ~self ~tag:"u2" ~meth:"update"
      ~arg:(Value.pair (Value.int self) (Value.int (self + 4)))
  in
  let* _ = Obj_impl.call obj ~self ~tag:"s2" ~meth:"scan" ~arg:Value.unit in
  Proc.return ()

let test_snapshot_linearizable () =
  List.iter
    (fun seed ->
      let obj = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed (config_of_obj obj (snapshot_client obj)) in
      let h = Runtime.history t in
      if not (Lin.Check.check snapshot_spec h) then
        Alcotest.failf "seed %d: non-linearizable snapshot history:@.%a" seed
          History.Hist.pp h)
    seeds

let test_snapshot_k_linearizable () =
  List.iter
    (fun seed ->
      let obj = Objects.Afek_snapshot.make_k ~k:2 ~name:"S" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed (config_of_obj obj (snapshot_client obj)) in
      Alcotest.(check bool)
        (Fmt.str "snapshot^2 linearizable (seed %d)" seed)
        true
        (Lin.Check.check snapshot_spec (Runtime.history t)))
    (List.init 8 (fun i -> (i * 5) + 3))

let test_snapshot_sees_own_update () =
  (* sequentially: update then scan must reflect the update *)
  let obj = Objects.Afek_snapshot.make ~name:"S" ~n:2 ~init:(Value.int 0) in
  let result = ref Value.unit in
  let program ~self =
    if self = 0 then begin
      let* _ =
        Obj_impl.call obj ~self ~tag:"u" ~meth:"update"
          ~arg:(Value.pair (Value.int 0) (Value.int 42))
      in
      let* s = Obj_impl.call obj ~self ~tag:"s" ~meth:"scan" ~arg:Value.unit in
      result := s;
      Proc.return ()
    end
    else Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = 2; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Gen (Rng.of_int 1))
  in
  (match Runtime.run t ~max_steps:10_000 (fun _ evs -> List.hd evs) with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check bool)
    "scan sees own update" true
    (Value.equal !result (Value.list [ Value.int 42; Value.int 0 ]))

(* Theorem 4.1 flavor: ABD^k produces register-linearizable histories and
   the same set of sequential outcomes as ABD for a sequential schedule. *)
let test_abd_k_equivalent_sequential () =
  let run_sequential make_obj =
    let obj = make_obj () in
    let results = ref [] in
    let program ~self =
      if self = 0 then begin
        let* _ = Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 9) in
        let* v = Obj_impl.call obj ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
        results := [ v ];
        Proc.return ()
      end
      else Proc.return ()
    in
    let t =
      Runtime.create
        {
          Runtime.n = 3;
          objects = [ obj ];
          program;
          enable_crashes = false;
          max_crashes = 0;
        }
        (Runtime.Gen (Rng.of_int 5))
    in
    (match Runtime.run t ~max_steps:100_000 Scheds.eager_scheduler with
    | Runtime.Completed -> ()
    | _ -> Alcotest.fail "sequential run incomplete");
    !results
  in
  let base = run_sequential (fun () -> Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)) in
  List.iter
    (fun k ->
      let transformed =
        run_sequential (fun () ->
            Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0))
      in
      Alcotest.(check bool)
        (Fmt.str "ABD^%d sequential outcome matches ABD" k)
        true
        (List.for_all2 Value.equal base transformed))
    [ 1; 2; 4 ]

(* Message complexity: one ABD^k operation broadcasts k query messages and
   one update message, i.e. (k+1) * n point-to-point sends by the client. *)
let test_abd_k_message_count () =
  List.iter
    (fun k ->
      let n = 3 in
      let obj = Objects.Abd.make_k ~k ~name:"R" ~n ~init:(Value.int 0) in
      let program ~self =
        if self = 0 then
          let* _ = Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1) in
          Proc.return ()
        else Proc.return ()
      in
      let t =
        Runtime.create
          { Runtime.n = n; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
          (Runtime.Gen (Rng.of_int 2))
      in
      (match Runtime.run t ~max_steps:100_000 Scheds.eager_scheduler with
      | Runtime.Completed -> ()
      | _ -> Alcotest.fail "incomplete");
      let sends =
        List.filter
          (function
            | Trace.Sent { src; msg; _ } ->
                src = 0
                &&
                let tag = Message.tag_of msg.body in
                tag = "query" || tag = "update"
            | _ -> false)
          (Trace.entries (Runtime.trace t))
      in
      (* client sends: k query broadcasts + 1 update broadcast, n msgs each *)
      Alcotest.(check int)
        (Fmt.str "client sends for k=%d" k)
        ((k + 1) * n)
        (List.length sends))
    [ 1; 2; 3; 5 ]

(* Fault tolerance: ABD completes despite a crashed minority. *)
let test_abd_tolerates_minority_crash () =
  let n = 3 in
  let obj = Objects.Abd.make ~name:"R" ~n ~init:(Value.int 0) in
  let program ~self =
    if self = 2 then rw_client obj ~self else Proc.return ()
  in
  let config =
    { Runtime.n; objects = [ obj ]; program; enable_crashes = true; max_crashes = 1 }
  in
  let rng = Rng.of_int 11 in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  (* crash p0 immediately, then schedule fairly at random *)
  Runtime.step t (Runtime.Crash 0);
  let choose _t evs =
    let no_crash =
      List.filter (function Runtime.Crash _ -> false | _ -> true) evs
    in
    Rng.pick rng (if no_crash = [] then evs else no_crash)
  in
  (match Runtime.run t ~max_steps:100_000 choose with
  | Runtime.Completed -> ()
  | Runtime.Deadlocked -> Alcotest.fail "deadlocked despite quorum alive"
  | Runtime.Step_limit_reached -> Alcotest.fail "step limit");
  Alcotest.(check bool)
    "history linearizable" true
    (Lin.Check.check reg_spec (Runtime.history t))

(* With a crashed majority, an ABD operation can never complete: the client
   blocks awaiting a quorum. *)
let test_abd_blocks_without_quorum () =
  let n = 3 in
  let obj = Objects.Abd.make ~name:"R" ~n ~init:(Value.int 0) in
  let program ~self =
    if self = 2 then
      let* _ = Obj_impl.call obj ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
      Proc.return ()
    else Proc.return ()
  in
  let config =
    { Runtime.n; objects = [ obj ]; program; enable_crashes = true; max_crashes = 2 }
  in
  let t = Runtime.create config (Runtime.Gen (Rng.of_int 3)) in
  Runtime.step t (Runtime.Crash 0);
  Runtime.step t (Runtime.Crash 1);
  let rng = Rng.of_int 13 in
  let choose _t evs =
    let no_crash =
      List.filter (function Runtime.Crash _ -> false | _ -> true) evs
    in
    Rng.pick rng (if no_crash = [] then evs else no_crash)
  in
  (match Runtime.run t ~max_steps:5_000 choose with
  | Runtime.Completed -> Alcotest.fail "should not complete without a quorum"
  | Runtime.Deadlocked | Runtime.Step_limit_reached -> ());
  Alcotest.(check bool) "p2 still active" true (Runtime.is_active t 2)

(* QCheck: ABD histories are linearizable for arbitrary seeds. *)
let prop_abd_linearizable =
  QCheck.Test.make ~count:30 ~name:"ABD random-schedule linearizability"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let obj = Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed:(seed + 1) (config_of_obj obj (rw_client obj)) in
      Lin.Check.check reg_spec (Runtime.history t))

let prop_va_linearizable =
  QCheck.Test.make ~count:30 ~name:"VA random-schedule linearizability"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let obj = Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed:(seed + 1) (config_of_obj obj (rw_client obj)) in
      Lin.Check.check reg_spec (Runtime.history t))

let prop_snapshot_linearizable =
  QCheck.Test.make ~count:20 ~name:"snapshot random-schedule linearizability"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let obj = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed:(seed + 1) (config_of_obj obj (snapshot_client obj)) in
      Lin.Check.check snapshot_spec (Runtime.history t))

let prop_abd_k_linearizable =
  QCheck.Test.make ~count:20 ~name:"ABD^k random-schedule linearizability"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, k) ->
      let obj = Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0) in
      let t = Scheds.run_random ~seed:(seed + 1) (config_of_obj obj (rw_client obj)) in
      Lin.Check.check reg_spec (Runtime.history t))

let tests =
  [
    Alcotest.test_case "ABD linearizable (n=3)" `Quick test_abd_linearizable;
    Alcotest.test_case "ABD linearizable (n=5)" `Slow test_abd_n5_linearizable;
    Alcotest.test_case "ABD^k linearizable" `Quick test_abd_k_linearizable;
    Alcotest.test_case "single-writer ABD linearizable" `Quick test_abd_sw_linearizable;
    Alcotest.test_case "Vitanyi-Awerbuch linearizable" `Quick test_va_linearizable;
    Alcotest.test_case "VA^2 linearizable" `Quick test_va_k_linearizable;
    Alcotest.test_case "Israeli-Li linearizable" `Quick test_il_linearizable;
    Alcotest.test_case "IL^3 linearizable" `Quick test_il_k_linearizable;
    Alcotest.test_case "Afek snapshot linearizable" `Quick test_snapshot_linearizable;
    Alcotest.test_case "snapshot^2 linearizable" `Quick test_snapshot_k_linearizable;
    Alcotest.test_case "snapshot sees own update" `Quick test_snapshot_sees_own_update;
    Alcotest.test_case "Thm 4.1: sequential equivalence" `Quick
      test_abd_k_equivalent_sequential;
    Alcotest.test_case "ABD^k message complexity" `Quick test_abd_k_message_count;
    Alcotest.test_case "ABD tolerates minority crash" `Quick
      test_abd_tolerates_minority_crash;
    Alcotest.test_case "ABD blocks without quorum" `Quick test_abd_blocks_without_quorum;
    QCheck_alcotest.to_alcotest prop_abd_linearizable;
    QCheck_alcotest.to_alcotest prop_va_linearizable;
    QCheck_alcotest.to_alcotest prop_snapshot_linearizable;
    QCheck_alcotest.to_alcotest prop_abd_k_linearizable;
  ]

(* ---- max register (the strongly linearizable positive case, Sec. 6) --- *)

let max_spec = History.Spec.max_register

let test_max_register_linearizable () =
  List.iter
    (fun seed ->
      let obj = Objects.Max_register.make ~name:"M" ~bound:8 in
      let program ~self =
        let call tag meth arg = Obj_impl.call obj ~self ~tag ~meth ~arg in
        let* _ = call "w1" "write" (Value.int (self + 1)) in
        let* _ = call "r1" "read" Value.unit in
        let* _ = call "w2" "write" (Value.int (self + 4)) in
        let* _ = call "r2" "read" Value.unit in
        Proc.return ()
      in
      let t =
        Scheds.run_random ~seed
          { Runtime.n = 3; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      in
      if not (Lin.Check.check max_spec (Runtime.history t)) then
        Alcotest.failf "seed %d: max register not linearizable:@.%a" seed
          History.Hist.pp (Runtime.history t))
    (List.init 25 (fun i -> i + 1))

let test_max_register_sequential () =
  let obj = Objects.Max_register.make ~name:"M" ~bound:10 in
  let got = ref [] in
  let program ~self =
    if self = 0 then begin
      let call tag meth arg = Obj_impl.call obj ~self ~tag ~meth ~arg in
      let* _ = call "w" "write" (Value.int 5) in
      let* a = call "r1" "read" Value.unit in
      let* _ = call "w2" "write" (Value.int 3) in
      let* b = call "r2" "read" Value.unit in
      got := [ a; b ];
      Proc.return ()
    end
    else Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = 1; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Gen (Rng.of_int 1))
  in
  (match Runtime.run t ~max_steps:1000 (fun _ evs -> List.hd evs) with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check bool) "max semantics: 5 then still 5" true
    (!got = [ Value.int 5; Value.int 5 ])

let test_max_register_bounds () =
  let obj = Objects.Max_register.make ~name:"M" ~bound:4 in
  let program ~self =
    if self = 0 then
      let* _ = Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 9) in
      Proc.return ()
    else Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = 1; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Gen (Rng.of_int 1))
  in
  (* the out-of-bounds write must fault when its step executes *)
  let rec drive () =
    match Runtime.enabled t with
    | [] -> Alcotest.fail "expected Invalid_argument"
    | e :: _ -> Runtime.step t e; drive ()
  in
  (try drive () with Invalid_argument _ -> ())

(* ---- broken ABD: the checker catches a real protocol bug ------------- *)

(* Scripted new/old inversion against ABD-without-write-back: p0's write
   reaches only server 1; the first read sees it through server 1, the
   second read queries the two stale servers and travels back in time. *)
let test_no_writeback_inversion_detected () =
  let n = 3 in
  let obj = Objects.Abd.make_no_writeback ~name:"R" ~n ~init:Value.none in
  let program ~self =
    match self with
    | 0 ->
        let* _ = Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1) in
        Proc.return ()
    | 2 ->
        let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
        let* _ = Obj_impl.call obj ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
        Proc.return ()
    | _ -> Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = n; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Gen (Rng.of_int 1))
  in
  let run_to_block p =
    while List.mem (Runtime.Step p) (Runtime.enabled t) do
      Runtime.step t (Runtime.Step p)
    done
  in
  let deliver ~tag ~src ~dst =
    let matches (m : Runtime.in_transit) =
      m.src = src && m.dst = dst && Message.tag_of m.msg.body = tag
    in
    match List.find_opt matches (List.rev (Runtime.in_transit t)) with
    | Some m ->
        Runtime.step t (Runtime.Deliver m.msg_id);
        run_to_block dst
    | None -> Alcotest.failf "no %s message p%d->p%d in transit" tag src dst
  in
  (* p0's write: query via servers 0 and 1, update reaches server 1 only *)
  run_to_block 0;
  deliver ~tag:"query" ~src:0 ~dst:0;
  deliver ~tag:"query" ~src:0 ~dst:1;
  deliver ~tag:"reply" ~src:0 ~dst:0;
  deliver ~tag:"reply" ~src:1 ~dst:0;
  deliver ~tag:"update" ~src:0 ~dst:1;
  (* first read: replies from servers 1 (new) and 0 (stale) *)
  run_to_block 2;
  deliver ~tag:"query" ~src:2 ~dst:1;
  deliver ~tag:"query" ~src:2 ~dst:0;
  deliver ~tag:"reply" ~src:1 ~dst:2;
  deliver ~tag:"reply" ~src:0 ~dst:2;
  (* second read: replies from the two stale servers 0 and 2 *)
  deliver ~tag:"query" ~src:2 ~dst:0;
  deliver ~tag:"query" ~src:2 ~dst:2;
  deliver ~tag:"reply" ~src:0 ~dst:2;
  deliver ~tag:"reply" ~src:2 ~dst:2;
  let h = Runtime.history t in
  let o = Runtime.outcome t in
  Alcotest.(check bool) "r1 saw the write" true
    (History.Outcome.find1 o "r1" = Some (Value.int 1));
  Alcotest.(check bool) "r2 travelled back in time" true
    (History.Outcome.find1 o "r2" = Some Value.none);
  Alcotest.(check bool) "checker rejects the inversion" false
    (Lin.Check.check (History.Spec.register ~init:Value.none) h)

(* With the write-back restored, the same adversarial delivery pattern is
   impossible: the first read's write-back refreshes a quorum. *)
let test_writeback_prevents_inversion () =
  for seed = 1 to 25 do
    let obj = Objects.Abd.make ~name:"R" ~n:3 ~init:Value.none in
    let program ~self =
      match self with
      | 0 ->
          let* _ = Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1) in
          Proc.return ()
      | 2 ->
          let* _ = Obj_impl.call obj ~self ~tag:"r1" ~meth:"read" ~arg:Value.unit in
          let* _ = Obj_impl.call obj ~self ~tag:"r2" ~meth:"read" ~arg:Value.unit in
          Proc.return ()
      | _ -> Proc.return ()
    in
    let t =
      Scheds.run_random ~seed
        { Runtime.n = 3; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
    in
    Alcotest.(check bool)
      (Fmt.str "linearizable (seed %d)" seed)
      true
      (Lin.Check.check (History.Spec.register ~init:Value.none) (Runtime.history t))
  done

let more_tests =
  [
    Alcotest.test_case "max register linearizable" `Quick test_max_register_linearizable;
    Alcotest.test_case "max register sequential semantics" `Quick
      test_max_register_sequential;
    Alcotest.test_case "max register bound enforcement" `Quick test_max_register_bounds;
    Alcotest.test_case "no-write-back ABD: inversion detected" `Quick
      test_no_writeback_inversion_detected;
    Alcotest.test_case "write-back prevents inversion" `Quick
      test_writeback_prevents_inversion;
  ]

(* ---- the transformation itself (Algorithm 2, label/choice mechanics) --- *)

(* A transparent test object: preamble notes which iteration ran; the tail
   notes which locals it received. Lets us check Algorithm 2's mechanics
   (k iterations, uniform choice honored, labels emitted) via the trace. *)
let probe_split : Objects.Transform.split =
  {
    preamble =
      (fun ~self:_ ~meth:_ ~arg:_ ->
        let* nonce = Proc.fresh in
        let* () = Proc.note "preamble_ran" (Value.int nonce) in
        Proc.return (Value.int nonce));
    tail =
      (fun ~self:_ ~meth:_ ~arg:_ locals ->
        let* () = Proc.note "tail_got" locals in
        Proc.return locals);
  }

let run_probe ~k ~tape =
  let obj : Obj_impl.t =
    {
      name = "probe";
      invoke = Objects.Transform.iterated_invoke ~k probe_split;
      on_message = None;
      init_server = None;
      registers = (fun ~n:_ -> []);
    }
  in
  let program ~self =
    if self = 0 then
      let* _ = Obj_impl.call obj ~self ~tag:"op" ~meth:"m" ~arg:Value.unit in
      Proc.return ()
    else Proc.return ()
  in
  let t =
    Runtime.create
      { Runtime.n = 1; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      (Runtime.Tape tape)
  in
  (match Runtime.run t ~max_steps:1000 (fun _ evs -> List.hd evs) with
  | Runtime.Completed -> ()
  | _ -> Alcotest.fail "probe run incomplete");
  Runtime.trace t

let noted name trace =
  List.filter_map
    (function
      | Trace.Noted { name = n'; value; _ } when n' = name -> Some value
      | _ -> None)
    (Trace.entries trace)

let test_transform_runs_k_preambles () =
  List.iter
    (fun k ->
      let trace = run_probe ~k ~tape:[| 0 |] in
      Alcotest.(check int)
        (Fmt.str "k=%d preambles ran" k)
        k
        (List.length (noted "preamble_ran" trace));
      Alcotest.(check int) "one tail" 1 (List.length (noted "tail_got" trace)))
    [ 1; 2; 5 ]

let test_transform_choice_honored () =
  (* with tape value j, the tail receives iteration j's locals *)
  List.iter
    (fun j ->
      let trace = run_probe ~k:3 ~tape:[| j |] in
      let preambles = noted "preamble_ran" trace in
      let tail = List.hd (noted "tail_got" trace) in
      Alcotest.(check bool)
        (Fmt.str "tape %d selects iteration %d" j j)
        true
        (Value.equal tail (List.nth preambles j)))
    [ 0; 1; 2 ]

let test_transform_labels () =
  let trace = run_probe ~k:2 ~tape:[| 1 |] in
  List.iter
    (fun lbl ->
      Alcotest.(check bool) (lbl ^ " emitted") true
        (List.exists
           (function Trace.Labeled { name; _ } -> name = lbl | _ -> false)
           (Trace.entries trace)))
    [ Objects.Transform.iter_label 1;
      Objects.Transform.iter_label 2;
      Objects.Transform.chosen_label ]

let test_transform_k_must_be_positive () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Transform.iterated_invoke: k must be >= 1") (fun () ->
      ignore
        (Objects.Transform.iterated_invoke ~k:0 probe_split ~self:0 ~meth:"m"
           ~arg:Value.unit))

let test_transform_object_random_kind () =
  (* the added choice is an *object* random step, distinguishable from
     program randomness (the accounting Theorem 4.2 relies on) *)
  let trace = run_probe ~k:4 ~tape:[| 2 |] in
  match Trace.random_draws trace with
  | [ (Proc.Object_random, 4, 2) ] -> ()
  | other ->
      Alcotest.failf "unexpected random draws (%d)" (List.length other)

let transform_tests =
  [
    Alcotest.test_case "Algorithm 2 runs k preambles" `Quick test_transform_runs_k_preambles;
    Alcotest.test_case "Algorithm 2 honors the choice" `Quick test_transform_choice_honored;
    Alcotest.test_case "Algorithm 2 emits control-point labels" `Quick test_transform_labels;
    Alcotest.test_case "Algorithm 2 rejects k = 0" `Quick test_transform_k_must_be_positive;
    Alcotest.test_case "the choice is an object random step" `Quick
      test_transform_object_random_kind;
  ]
