(* Tests for the allocation-site profiler: the aggregation, rollups, JSON
   round-trip, collapsed-stack export and the schema-v5 results wiring.
   Real Gc.Memprof sampling exists only on OCaml >= 5.3, so everything
   here drives the aggregation through [inject] (which works on every
   compiler); [start] itself is probed against [supported], asserting the
   stub's error on 5.1/5.2 and a live session on 5.3. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* Profiler state is process-global (like Metrics and Span): start each
   test clean and leave nothing behind, or later Results.to_json calls in
   this process would grow an allocation_profile block. *)
let with_profiler f =
  Obs.Memprof.reset ();
  Fun.protect ~finally:(fun () -> Obs.Memprof.reset ()) f

(* Frames are "<fn>@<file>:<line>", innermost first; the site is the
   innermost frame under lib/. *)
let f_solver = "expand@lib/mdp/solver.ml:120"
let f_hash = "hash@stdlib/hashtbl.ml:540"
let f_runtime = "caml_alloc@runtime/alloc.c:99"
let f_sim = "step@lib/sim/runtime.ml:300"

let test_start_matches_support () =
  with_profiler @@ fun () ->
  match Obs.Memprof.start ~sampling_rate:1e-3 () with
  | Ok () ->
      Alcotest.(check bool) "Ok start implies supported" true Obs.Memprof.supported;
      Alcotest.(check bool) "running" true (Obs.Memprof.running ());
      Obs.Memprof.stop ();
      Alcotest.(check bool) "stopped" false (Obs.Memprof.running ())
  | Error e ->
      Alcotest.(check bool) "Error start implies unsupported" false
        Obs.Memprof.supported;
      Alcotest.(check bool) "error names the version floor" true
        (contains ~affix:"5.3" e);
      Alcotest.(check bool) "not running after failed start" false
        (Obs.Memprof.running ())

let test_no_profile_until_started () =
  with_profiler @@ fun () ->
  Alcotest.(check bool) "profile is None before any session" true
    (Obs.Memprof.profile () = None)

let inject_reference_samples () =
  (* two stacks sharing the solver site, one sim site, one unattributed *)
  Obs.Memprof.inject ~domain:0 ~section:"E5" ~phase:Obs.Memprof.Expand
    ~frames:[ f_hash; f_solver ] ~minor:true ~n_samples:2 ~words:24 ();
  Obs.Memprof.inject ~domain:1 ~section:"E5" ~phase:Obs.Memprof.Steal
    ~frames:[ f_hash; f_solver ] ~minor:true ~n_samples:1 ~words:8 ();
  Obs.Memprof.inject ~domain:0 ~section:"E2" ~phase:Obs.Memprof.Sim_run
    ~frames:[ f_sim ] ~minor:false ~n_samples:1 ~words:16 ();
  Obs.Memprof.inject ~domain:0 ~section:"E5" ~phase:Obs.Memprof.Expand
    ~frames:[ f_runtime ] ~minor:true ~n_samples:1 ~words:4 ()

let test_site_aggregation () =
  with_profiler @@ fun () ->
  inject_reference_samples ();
  match Obs.Memprof.profile () with
  | None -> Alcotest.fail "profile missing after inject"
  | Some p ->
      Alcotest.(check int) "blocks" 4 p.blocks;
      Alcotest.(check int) "samples" 5 p.samples;
      Alcotest.(check int) "minor words" 36 p.sampled_minor_words;
      Alcotest.(check int) "major words" 16 p.sampled_major_words;
      Alcotest.(check (float 1e-9))
        "attributed excludes the runtime-only stack"
        (100.0 *. 48.0 /. 52.0)
        p.attributed_pct;
      Alcotest.(check (list string))
        "sites sorted by sampled words, site = innermost lib/ frame"
        [ f_solver; f_sim; "<unattributed>" ]
        (List.map (fun (s : Obs.Memprof.site) -> s.site) p.sites);
      let solver = List.hd p.sites in
      Alcotest.(check int) "site hash is the stable string hash"
        (Hashtbl.hash f_solver) solver.site_hash;
      Alcotest.(check int) "solver minor samples" 3 solver.minor_samples;
      Alcotest.(check int) "solver minor words" 32 solver.minor_words;
      Alcotest.(check (float 1e-9))
        "solver share" (100.0 *. 32.0 /. 52.0) solver.share_pct;
      Alcotest.(check (list (pair string int)))
        "solver phase rollup (slot order)"
        [ ("expand", 24); ("steal", 8) ]
        solver.by_phase;
      Alcotest.(check (list (pair int int)))
        "solver domain rollup" [ (0, 24); (1, 8) ] solver.by_domain;
      (* profile-level rollups *)
      Alcotest.(check (list (pair string int)))
        "sections sorted by words" [ ("E5", 36); ("E2", 16) ] p.by_section;
      Alcotest.(check (list (pair string int)))
        "phase totals"
        [ ("expand", 28); ("steal", 8); ("sim-run", 16) ]
        p.by_phase;
      Alcotest.(check (list (pair int int)))
        "domain totals" [ (0, 44); (1, 8) ] p.by_domain

(* inject without explicit attribution picks up the ambient span, the
   calling domain's phase tag, and "(none)" when no span is open *)
let test_ambient_attribution () =
  with_profiler @@ fun () ->
  Obs.Memprof.set_phase (Some Obs.Memprof.Claim_wait);
  Alcotest.(check bool) "phase reads back" true
    (Obs.Memprof.phase () = Some Obs.Memprof.Claim_wait);
  Obs.Memprof.inject ~frames:[ f_solver ] ~minor:true ~n_samples:1 ~words:10 ();
  Obs.Memprof.set_phase None;
  Alcotest.(check bool) "phase cleared" true (Obs.Memprof.phase () = None);
  match Obs.Memprof.profile () with
  | None -> Alcotest.fail "profile missing"
  | Some p ->
      Alcotest.(check (list (pair string int)))
        "no open span lands in (none)" [ ("(none)", 10) ] p.by_section;
      Alcotest.(check (list (pair string int)))
        "ambient phase tag applied" [ ("claim-wait", 10) ] p.by_phase;
      Alcotest.(check (list (pair int int)))
        "charged to the calling domain"
        [ ((Domain.self () :> int), 10) ]
        p.by_domain

let test_json_round_trip () =
  with_profiler @@ fun () ->
  inject_reference_samples ();
  match Obs.Memprof.profile () with
  | None -> Alcotest.fail "profile missing"
  | Some p -> (
      match Obs.Memprof.of_json (Obs.Memprof.to_json p) with
      | Error e -> Alcotest.failf "profile did not parse back: %s" e
      | Ok p' ->
          (* the JSON printer's %.17g float repr makes this exact *)
          Alcotest.(check bool) "parsed profile equals original" true (p = p'))

let test_of_json_rejects_junk () =
  (match Obs.Memprof.of_json (Obs.Json.String "x") with
  | Error e ->
      Alcotest.(check bool) "names the object requirement" true
        (contains ~affix:"object" e)
  | Ok _ -> Alcotest.fail "non-object accepted");
  match
    Obs.Memprof.of_json
      (Obs.Json.Obj
         [ ("sites", Obs.Json.List [ Obs.Json.Obj [ ("site_hash", Obs.Json.Int 3) ] ]) ])
  with
  | Error e ->
      Alcotest.(check bool) "site entries need a site name" true
        (contains ~affix:"site" e)
  | Ok _ -> Alcotest.fail "nameless site entry accepted"

let test_collapsed_lines () =
  with_profiler @@ fun () ->
  inject_reference_samples ();
  Alcotest.(check (list string))
    "collapsed stacks: root-first frames, sampled-word weights"
    [
      f_runtime ^ " 4";
      f_solver ^ ";" ^ f_hash ^ " 32";
      f_sim ^ " 16";
    ]
    (Obs.Memprof.collapsed_lines ())

let test_results_v5 () =
  with_profiler @@ fun () ->
  (* no session: the document stays profile-free *)
  let bare = Obs.Results.create ~generated_by:"test" () in
  (match Obs.Results.to_json bare with
  | Obs.Json.Obj kvs ->
      Alcotest.(check bool) "no allocation_profile without a session" false
        (List.mem_assoc "allocation_profile" kvs)
  | _ -> Alcotest.fail "results doc is not an object");
  inject_reference_samples ();
  let doc = Obs.Results.create ~generated_by:"test" () in
  let s = Obs.Results.section doc ~id:"E1" ~title:"t" in
  Obs.Results.row s ~quantity:"q" ~paper:"p" ~measured:"m" ();
  let j = Obs.Results.to_json doc in
  (match Option.bind (Obs.Json.member "schema_version" j) Obs.Json.to_int_opt with
  | Some v -> Alcotest.(check int) "writes current schema" Obs.Results.schema_version v
  | None -> Alcotest.fail "schema_version missing");
  Alcotest.(check bool) "allocation_profile block present" true
    (Obs.Json.member "allocation_profile" j <> None);
  (match Obs.Results.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v5 document with profile fails validation: %s" e);
  (* the profile block itself parses back *)
  (match Obs.Json.member "allocation_profile" j with
  | Some pj -> (
      match Obs.Memprof.of_json pj with
      | Ok p -> Alcotest.(check int) "embedded profile carries the samples" 5 p.samples
      | Error e -> Alcotest.failf "embedded profile: %s" e)
  | None -> Alcotest.fail "allocation_profile vanished");
  (* a corrupted block must fail validation, not slide through *)
  let corrupt =
    match j with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "allocation_profile" then (k, Obs.Json.String "nope")
               else (k, v))
             kvs)
    | _ -> assert false
  in
  match Obs.Results.validate corrupt with
  | Error e ->
      Alcotest.(check bool) "error names the block" true
        (contains ~affix:"allocation_profile" e)
  | Ok () -> Alcotest.fail "corrupt allocation_profile validated"

let test_span_current_nesting () =
  Alcotest.(check (option string)) "no span open" None (Obs.Span.current ());
  ignore
    (Obs.Span.time "outer" (fun () ->
         Alcotest.(check (option string))
           "outer visible" (Some "outer") (Obs.Span.current ());
         ignore
           (Obs.Span.time "inner" (fun () ->
                Alcotest.(check (option string))
                  "inner shadows outer" (Some "inner") (Obs.Span.current ())));
         Alcotest.(check (option string))
           "outer restored" (Some "outer") (Obs.Span.current ())));
  Alcotest.(check (option string)) "stack empty again" None (Obs.Span.current ());
  (* the name pops even when the body raises *)
  (try ignore (Obs.Span.time "boom" (fun () -> raise Exit)) with Exit -> ());
  Alcotest.(check (option string))
    "exception unwinds the span stack" None (Obs.Span.current ())

let test_pp_flags_hot_sites () =
  with_profiler @@ fun () ->
  inject_reference_samples ();
  match Obs.Memprof.profile () with
  | None -> Alcotest.fail "profile missing"
  | Some p ->
      let rendered = Fmt.str "%a" (Obs.Memprof.pp ~top:2) p in
      Alcotest.(check bool) "solver site flagged over 10%" true
        (contains ~affix:"WARN: site " rendered);
      Alcotest.(check bool) "flag names the site" true
        (contains ~affix:f_solver rendered);
      Alcotest.(check bool) "truncation noted" true
        (contains ~affix:"1 more site" rendered)

let tests =
  [
    Alcotest.test_case "start agrees with backend support" `Quick
      test_start_matches_support;
    Alcotest.test_case "no profile until a session starts" `Quick
      test_no_profile_until_started;
    Alcotest.test_case "site aggregation and rollups" `Quick test_site_aggregation;
    Alcotest.test_case "ambient section/phase/domain attribution" `Quick
      test_ambient_attribution;
    Alcotest.test_case "profile JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "of_json rejects malformed input" `Quick
      test_of_json_rejects_junk;
    Alcotest.test_case "collapsed-stack export" `Quick test_collapsed_lines;
    Alcotest.test_case "results schema v5 wiring" `Quick test_results_v5;
    Alcotest.test_case "Span.current nesting" `Quick test_span_current_nesting;
    Alcotest.test_case "pp flags >10% sites" `Quick test_pp_flags_hot_sites;
  ]
