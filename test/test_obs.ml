(* Tests for the observability layer: metrics registry semantics, the JSON
   printer/parser round-trip, structured trace export (JSONL and Chrome
   trace), solver work statistics, and the results-document schema. *)

open Util

(* ---- metrics -------------------------------------------------------- *)

let test_counter_semantics () =
  let c = Obs.Metrics.counter ~help:"test counter" "test.obs.c1" in
  let before = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "incr + add" (before + 5) (Obs.Metrics.counter_value c);
  (* registration is idempotent by name: same cell comes back *)
  let c' = Obs.Metrics.counter "test.obs.c1" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same cell" (before + 6) (Obs.Metrics.counter_value c);
  Alcotest.(check (option int))
    "find_counter sees it" (Some (before + 6))
    (Obs.Metrics.find_counter "test.obs.c1");
  (* a name cannot change kind *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Metrics: \"test.obs.c1\" already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.c1"))

let test_gauge_semantics () =
  let g = Obs.Metrics.gauge "test.obs.g1" in
  Obs.Metrics.set_gauge g 3.0;
  Obs.Metrics.max_gauge g 1.0;
  Alcotest.(check (float 0.0)) "max keeps high-water" 3.0 (Obs.Metrics.gauge_value g);
  Obs.Metrics.max_gauge g 7.5;
  Alcotest.(check (float 0.0)) "max raises" 7.5 (Obs.Metrics.gauge_value g)

let test_histogram_semantics () =
  let h = Obs.Metrics.histogram ~buckets:[ 1.0; 10.0; 100.0 ] "test.obs.h1" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.0; 50.0; 500.0; 2.0 ];
  let s = Obs.Metrics.histogram_summary h in
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check (float 1e-9)) "sum" 557.5 s.sum;
  Alcotest.(check (float 0.0)) "min" 0.5 s.min;
  Alcotest.(check (float 0.0)) "max" 500.0 s.max;
  (* cumulative counts over the non-empty buckets, +inf last *)
  List.iter
    (fun (ub, expect) ->
      match List.assoc_opt ub s.buckets with
      | Some n -> Alcotest.(check int) (Fmt.str "bucket <= %g" ub) expect n
      | None -> Alcotest.failf "bucket %g missing" ub)
    [ (1.0, 1); (10.0, 3); (100.0, 4); (infinity, 5) ]

let test_histogram_percentiles () =
  let h = Obs.Metrics.histogram ~buckets:[ 1.0; 10.0; 100.0 ] "test.obs.h2" in
  (* empty histogram: percentiles are nan, and the snapshot renders them
     (via the JSON printer's non-finite rule) as null *)
  let s0 = Obs.Metrics.histogram_summary h in
  Alcotest.(check bool) "empty p50 is nan" true (Float.is_nan s0.p50);
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.0; 50.0; 500.0; 2.0 ];
  let s = Obs.Metrics.histogram_summary h in
  (* counts per bucket: <=1 -> 1, <=10 -> 2, <=100 -> 1, overflow -> 1.
     p50: rank 2.5 interpolates inside (1, 10]: 1 + 9 * 1.5/2 = 7.75.
     p90/p99: rank 4.5/4.95 inside the overflow bucket (100, vmax=500]. *)
  Alcotest.(check (float 1e-9)) "p50 interpolated" 7.75 s.p50;
  Alcotest.(check (float 1e-9)) "p90 in overflow bucket" 300.0 s.p90;
  Alcotest.(check (float 1e-9)) "p99 in overflow bucket" 480.0 s.p99;
  (* one observation: every percentile collapses to it (clamped to min/max) *)
  let h1 = Obs.Metrics.histogram ~buckets:[ 1.0; 10.0 ] "test.obs.h3" in
  Obs.Metrics.observe h1 3.0;
  let s1 = Obs.Metrics.histogram_summary h1 in
  List.iter
    (fun (name, v) -> Alcotest.(check (float 1e-9)) name 3.0 v)
    [ ("single p50", s1.p50); ("single p90", s1.p90); ("single p99", s1.p99) ];
  (* percentiles are monotone in q and bounded by the observed range *)
  Alcotest.(check bool) "p50 <= p90 <= p99" true (s.p50 <= s.p90 && s.p90 <= s.p99);
  Alcotest.(check bool) "within [min, max]" true (s.min <= s.p50 && s.p99 <= s.max)

(* Regression: one observation must report itself as every percentile
   even when it lands in the overflow bucket or exactly on a bucket
   bound, where the interpolation path (rather than the min/max clamp)
   used to be the only thing producing the answer. *)
let test_histogram_single_sample () =
  List.iter
    (fun v ->
      let name = Fmt.str "test.obs.single_%h" v in
      let h = Obs.Metrics.histogram ~buckets:[ 1.0; 10.0 ] name in
      Obs.Metrics.observe h v;
      let s = Obs.Metrics.histogram_summary h in
      Alcotest.(check int) "count" 1 s.count;
      List.iter
        (fun (which, got) ->
          Alcotest.(check (float 0.0)) (Fmt.str "%s of single %g" which v) v got)
        [ ("p50", s.p50); ("p90", s.p90); ("p99", s.p99); ("min", s.min); ("max", s.max) ])
    [ 0.37 (* interior *); 10.0 (* exact bound *); 250.0 (* overflow bucket *) ]

let test_snapshot_shape_and_reset () =
  let c = Obs.Metrics.counter "test.obs.reset_me" in
  Obs.Metrics.add c 41;
  (match Obs.Metrics.snapshot () with
  | Obs.Json.Obj fields ->
      List.iter
        (fun k ->
          match List.assoc_opt k fields with
          | Some (Obs.Json.Obj _) -> ()
          | _ -> Alcotest.failf "snapshot missing object %S" k)
        [ "counters"; "gauges"; "histograms" ]
  | _ -> Alcotest.fail "snapshot is not an object");
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c)

(* ---- json ----------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", String "a \"quoted\"\nline\twith \\ escapes");
          ("i", Int (-42));
          ("f", Float 0.125);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; Float 2.5; String "x"; List []; Obj [] ]);
        ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* the indented printer parses back too *)
  match Obs.Json.of_string (Fmt.str "%a" Obs.Json.pp v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "truex"; "1 2" ]

(* Regression: non-finite floats must render as RFC-legal null, in both
   printers, and a results document carrying one must still validate after
   a round-trip (the nan becomes Null, which the schema accepts wherever a
   number is optional). *)
let test_json_non_finite () =
  List.iter
    (fun v ->
      Alcotest.(check string)
        (Fmt.str "compact %h" v)
        "null"
        (Obs.Json.to_string (Obs.Json.Float v));
      Alcotest.(check string)
        (Fmt.str "pretty %h" v)
        "null"
        (Fmt.str "%a" Obs.Json.pp (Obs.Json.Float v)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* nested: the list/object printers hit the same code path *)
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.List [ Obs.Json.Float Float.nan ])) with
  | Ok (Obs.Json.List [ Obs.Json.Null ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Obs.Json.to_string j)
  | Error e -> Alcotest.failf "nested nan did not round-trip: %s" e);
  let doc = Obs.Results.create ~generated_by:"test suite" () in
  let s = Obs.Results.section doc ~id:"E0" ~title:"non-finite" in
  Obs.Results.row s ~paper_value:0.5 ~measured_value:Float.nan
    ~quantity:"states/sec on an instant solve" ~paper:"1/2" ~measured:"nan" ();
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Results.to_json doc)) with
  | Error e -> Alcotest.failf "doc with nan did not parse: %s" e
  | Ok j -> (
      match Obs.Results.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "null measured_value rejected: %s" e)

(* ---- trace export --------------------------------------------------- *)

let weakener_trace () =
  let config = Programs.Weakener.abd_config () in
  let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.of_int 3)) in
  (match Sim.Runtime.run t ~max_steps:100_000 Adversary.Schedulers.eager_delivery with
  | Sim.Runtime.Completed -> ()
  | _ -> Alcotest.fail "weakener run did not complete");
  Sim.Runtime.trace t

let test_jsonl_round_trip () =
  let tr = weakener_trace () in
  let lines =
    String.split_on_char '\n' (Sim.Trace_export.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per entry"
    (List.length (Sim.Trace.entries tr))
    (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "line %d invalid: %s" i e
      | Ok json ->
          Alcotest.(check (option int))
            (Fmt.str "seq of line %d" i)
            (Some i)
            (Option.bind (Obs.Json.member "seq" json) Obs.Json.to_int_opt);
          (match Option.bind (Obs.Json.member "type" json) Obs.Json.to_string_opt with
          | Some _ -> ()
          | None -> Alcotest.failf "line %d has no type" i))
    lines

let test_chrome_round_trip () =
  let tr = weakener_trace () in
  let events = Sim.Trace_export.chrome_events tr in
  let doc = Obs.Chrome_trace.to_json events in
  (* the document survives our own parser *)
  (match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome doc invalid: %s" e
  | Ok json -> (
      match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          Alcotest.(check int) "all events rendered" (List.length events)
            (List.length evs)));
  (* begin/end slices balance per lane, so Perfetto can nest them *)
  let opens = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Chrome_trace.event) ->
      let d =
        match e.phase with Obs.Chrome_trace.Begin -> 1 | End -> -1 | _ -> 0
      in
      let cur = Option.value ~default:0 (Hashtbl.find_opt opens e.tid) in
      Hashtbl.replace opens e.tid (cur + d);
      Alcotest.(check bool) "never closes an unopened slice" true (cur + d >= 0))
    events;
  Hashtbl.iter
    (fun tid depth ->
      Alcotest.(check int) (Fmt.str "lane %d balanced" tid) 0 depth)
    opens;
  (* metadata names every lane that carries events *)
  let named =
    List.filter_map
      (fun (e : Obs.Chrome_trace.event) ->
        if e.name = "thread_name" then Some e.tid else None)
      events
  in
  List.iter
    (fun (e : Obs.Chrome_trace.event) ->
      match e.phase with
      | Obs.Chrome_trace.Metadata -> ()
      | _ ->
          Alcotest.(check bool)
            (Fmt.str "lane %d named" e.tid)
            true (List.mem e.tid named))
    events

let test_trace_accessors_cached () =
  let tr = weakener_trace () in
  (* the forward list is cached: same physical list on repeated access *)
  Alcotest.(check bool) "entries cached" true
    (Sim.Trace.entries tr == Sim.Trace.entries tr);
  let sent =
    List.length
      (List.filter
         (function Sim.Trace.Sent _ -> true | _ -> false)
         (Sim.Trace.entries tr))
  in
  Alcotest.(check int) "count_messages = #Sent" sent (Sim.Trace.count_messages tr)

(* ---- spans ---------------------------------------------------------- *)

let test_spans () =
  Obs.Span.reset ();
  let v, dt = Obs.Span.time "test.span" (fun () -> 6 * 7) in
  Alcotest.(check int) "result passed through" 42 v;
  Alcotest.(check bool) "duration non-negative" true (dt >= 0.0);
  (match Obs.Span.spans () with
  | [ s ] ->
      Alcotest.(check string) "span name" "test.span" s.Obs.Span.name;
      Alcotest.(check bool) "span duration" true (s.Obs.Span.dur_us >= 0.0)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  Alcotest.(check int) "one chrome slice" 1
    (List.length
       (List.filter
          (fun (e : Obs.Chrome_trace.event) ->
            match e.phase with Obs.Chrome_trace.Complete _ -> true | _ -> false)
          (Obs.Span.chrome_events ())));
  Obs.Span.reset ()

(* ---- solver stats --------------------------------------------------- *)

(* A tiny acyclic game: countdown from n, two moves per state (one
   deterministic, one a fair chance step that may shortcut to 0). *)
module Tiny = struct
  type state = int
  type move = Walk | Gamble

  let moves s = if s = 0 then [] else [ Walk; Gamble ]

  type transition = Det of state | Chance of (float * state) list

  let apply s = function
    | Walk -> Det (s - 1)
    | Gamble -> Chance [ (0.5, s - 1); (0.5, 0) ]

  let terminal_value _ = 1.0
  let encode = string_of_int
  let encode_into s b = Mdp.Key.raw b (encode s)
  let pp_move ppf m = Fmt.string ppf (match m with Walk -> "walk" | Gamble -> "gamble")
end

module Tiny_solver = Mdp.Solver.Make (Tiny)

let test_solver_stats_memoization () =
  Tiny_solver.reset ();
  let v = Tiny_solver.value 8 in
  Alcotest.(check (float 1e-9)) "value" 1.0 v;
  let s1 = Tiny_solver.stats () in
  Alcotest.(check int) "states 0..8 memoized" 9 s1.states;
  Alcotest.(check int) "one miss per state" 9 s1.memo_misses;
  Alcotest.(check bool) "revisits hit the memo" true (s1.memo_hits > 0);
  Alcotest.(check int) "depth reached the countdown" 8 s1.max_depth;
  (* solving the same root again is a single memo hit: no new work *)
  let _ = Tiny_solver.value 8 in
  let s2 = Tiny_solver.stats () in
  Alcotest.(check int) "no new states" s1.states s2.states;
  Alcotest.(check int) "no new misses" s1.memo_misses s2.memo_misses;
  Alcotest.(check int) "exactly one more hit" (s1.memo_hits + 1) s2.memo_hits;
  Alcotest.(check bool) "hit rate grew" true
    (Mdp.Solver.hit_rate s2 > Mdp.Solver.hit_rate s1);
  (* best_move exists away from terminals and is optimal-value-attaining *)
  (match Tiny_solver.best_move 3 with
  | Some _ -> ()
  | None -> Alcotest.fail "no best move at 3");
  Tiny_solver.reset ();
  let s3 = Tiny_solver.stats () in
  Alcotest.(check int) "reset zeroes stats" 0
    (s3.states + s3.memo_hits + s3.memo_misses + s3.max_depth)

let test_solver_progress_hook () =
  Tiny_solver.reset ();
  let ticks : Mdp.Solver.progress list ref = ref [] in
  Tiny_solver.set_progress ~interval_states:3 (Some (fun p -> ticks := p :: !ticks));
  let _ = Tiny_solver.value 20 in
  let ticks_during = List.rev !ticks in
  (* 21 distinct states (20..0), one miss each: the hook fires at every
     multiple of 3 misses — seven times, from inside the recursion *)
  Alcotest.(check int) "fires every interval" 7 (List.length ticks_during);
  List.iteri
    (fun i (p : Mdp.Solver.progress) ->
      Alcotest.(check int)
        (Fmt.str "tick %d at a 3-state boundary" i)
        (3 * (i + 1))
        p.stats.memo_misses;
      Alcotest.(check bool) "elapsed non-negative" true (p.elapsed_s >= 0.0);
      Alcotest.(check bool)
        "rate consistent with elapsed" true
        (p.states_per_sec >= 0.0 && Float.is_finite p.states_per_sec))
    ticks_during;
  (* progress never fires outside a solve: re-solving the memoized root is
     pure hits, and stats/best_move queries do not tick *)
  let n = List.length !ticks in
  let _ = Tiny_solver.value 20 in
  let _ = Tiny_solver.best_move 5 in
  let _ = Tiny_solver.stats () in
  Alcotest.(check int) "no ticks after the solve" n (List.length !ticks);
  (* None uninstalls the hook *)
  Tiny_solver.set_progress None;
  Tiny_solver.reset ();
  let _ = Tiny_solver.value 9 in
  Alcotest.(check int) "uninstalled hook is silent" n (List.length !ticks);
  Tiny_solver.reset ()

(* ---- results document ----------------------------------------------- *)

let test_results_schema () =
  let doc = Obs.Results.create ~generated_by:"test suite" () in
  let s = Obs.Results.section doc ~id:"E0" ~title:"schema self-test" in
  Obs.Results.row s ~quantity:"prose only" ~paper:"1/2" ~measured:"0.5003" ();
  Obs.Results.row s ~paper_value:0.5 ~measured_value:0.5003 ~quantity:"numeric"
    ~paper:"1/2" ~measured:"0.5003" ();
  Obs.Results.add_section_metrics s [ ("states", Obs.Json.Int 12) ];
  let json = Obs.Results.to_json doc in
  (match Obs.Results.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid doc rejected: %s" e);
  (* the serialized form validates too *)
  (match Obs.Json.of_string (Obs.Json.to_string json) with
  | Ok j -> (
      match Obs.Results.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "round-tripped doc rejected: %s" e)
  | Error e -> Alcotest.failf "doc did not parse: %s" e);
  (* broken documents are named, not accepted *)
  List.iter
    (fun bad ->
      match Obs.Results.validate bad with
      | Ok () -> Alcotest.fail "invalid doc accepted"
      | Error _ -> ())
    [
      Obs.Json.Obj [];
      Obs.Json.Obj [ ("schema_version", Obs.Json.Int 999) ];
      Obs.Json.Null;
    ]

(* Schema v3/v4 only add optional section-metric fields and v5 an
   optional top-level allocation_profile block, so hand-built v1 and v2
   documents — stand-ins for the BENCH_*.json baselines saved by earlier
   versions — must still validate, while unknown future versions stay
   rejected. *)
let test_schema_version_compat () =
  Alcotest.(check int) "current schema version" 6 Obs.Results.schema_version;
  let minimal_doc v =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int v);
        ("generated_by", Obs.Json.String "test suite");
        ( "experiments",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("id", Obs.Json.String "E1");
                  ("title", Obs.Json.String "compat");
                  ("rows", Obs.Json.List []);
                  ("metrics", Obs.Json.Obj []);
                ];
            ] );
        ( "metrics",
          Obs.Json.Obj
            [
              ("counters", Obs.Json.Obj []);
              ("gauges", Obs.Json.Obj []);
              ("histograms", Obs.Json.Obj []);
            ] );
        ("spans", Obs.Json.List []);
      ]
  in
  List.iter
    (fun v ->
      match Obs.Results.validate (minimal_doc v) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "v%d document rejected: %s" v e)
    [ 1; 2; 3; 4; 5; 6 ];
  match Obs.Results.validate (minimal_doc 7) with
  | Ok () -> Alcotest.fail "future schema version accepted"
  | Error _ -> ()

(* ---- log levels ----------------------------------------------------- *)

let test_log_levels () =
  List.iter
    (fun s ->
      match Obs.Log.level_of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%S rejected: %s" s e)
    Obs.Log.verbosity_values;
  (match Obs.Log.level_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus level accepted"
  | Error _ -> ());
  match Obs.Log.set_verbosity "quiet" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "quiet rejected: %s" e

let tests =
  [
    Alcotest.test_case "metrics: counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "metrics: gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "metrics: histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "metrics: histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "metrics: single-sample percentiles" `Quick
      test_histogram_single_sample;
    Alcotest.test_case "metrics: snapshot shape, reset" `Quick
      test_snapshot_shape_and_reset;
    Alcotest.test_case "json: round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: non-finite floats render null" `Quick
      test_json_non_finite;
    Alcotest.test_case "trace export: JSONL round-trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "trace export: Chrome trace" `Quick test_chrome_round_trip;
    Alcotest.test_case "trace: cached accessors" `Quick test_trace_accessors_cached;
    Alcotest.test_case "spans: timing and export" `Quick test_spans;
    Alcotest.test_case "solver: memo-hit statistics" `Quick
      test_solver_stats_memoization;
    Alcotest.test_case "solver: progress hook" `Quick test_solver_progress_hook;
    Alcotest.test_case "results: schema round-trip" `Quick test_results_schema;
    Alcotest.test_case "results: v1-v3 stay valid" `Quick test_schema_version_compat;
    Alcotest.test_case "log: verbosity levels" `Quick test_log_levels;
  ]
