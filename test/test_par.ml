(* The parallel engine's determinism contract: Monte-Carlo tallies and
   solver values must be bit-identical at every job count, and the
   canonical state keys the parallel memo tables rely on must agree with
   structural equality on reachable states. *)

let exact = Alcotest.(check (float 0.0))

(* ---- Monte-Carlo: per-trial RNG streams make trials order-free ------- *)

let mc_result ~jobs ~seed ~trials config =
  Adversary.Monte_carlo.estimate ~jobs ~trials ~seed
    ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad config

let check_mc_identical ~seed ~trials config name =
  let base = mc_result ~jobs:1 ~seed ~trials config in
  List.iter
    (fun jobs ->
      let r = mc_result ~jobs ~seed ~trials config in
      Alcotest.(check bool)
        (Fmt.str "%s: jobs=%d tallies identical to sequential" name jobs)
        true
        (r = base))
    [ 2; 4 ]

let test_mc_parallel_identical () =
  check_mc_identical ~seed:7 ~trials:240 Programs.Weakener.atomic_config
    "atomic weakener";
  check_mc_identical ~seed:20260 ~trials:40 Programs.Weakener.abd_config
    "ABD weakener"

(* ---- solver: frontier parallel value = sequential value -------------- *)

module Atomic_solver = Mdp.Solver.Make (Model.Weakener_atomic.Game)
module Abd_solver = Mdp.Solver.Make (Model.Weakener_abd.Game)

let test_par_solver_atomic () =
  let seq = Atomic_solver.value Model.Weakener_atomic.init in
  exact "atomic sequential value" 0.5 seq;
  List.iter
    (fun jobs ->
      exact
        (Fmt.str "atomic value_par jobs=%d" jobs)
        seq
        (Atomic_solver.value_par ~jobs Model.Weakener_atomic.init))
    [ 1; 2; 4 ]

let test_par_solver_abd1 () =
  let s = Model.Weakener_abd.init ~k:1 () in
  let seq = Abd_solver.value s in
  exact "ABD^1 sequential value" 1.0 seq;
  List.iter
    (fun jobs ->
      exact (Fmt.str "ABD^1 value_par jobs=%d" jobs) seq
        (Abd_solver.value_par ~jobs s))
    [ 2; 4 ]

(* ---- canonical keys agree with structural equality ------------------- *)

(* BFS the reachable states (capped) and require a bijection between
   structurally distinct states and distinct encode strings: an encode
   collision between structurally different states would silently merge
   them in the memo table; a split would only cost speed, but betrays a
   non-canonical encoder. *)
let check_encode (type s) (module G : Mdp.Solver.GAME with type state = s)
    ~(init : s) ~cap name =
  let by_key : (string, s) Hashtbl.t = Hashtbl.create 1024 in
  let seen : (s, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Queue.add init queue;
  while (not (Queue.is_empty queue)) && Hashtbl.length seen < cap do
    let s = Queue.pop queue in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      let key = G.encode s in
      Alcotest.(check string)
        (Fmt.str "%s: encode is deterministic" name)
        key (G.encode s);
      (match Hashtbl.find_opt by_key key with
      | Some s' ->
          if s' <> s then
            Alcotest.failf "%s: encode collision between distinct states" name
      | None -> Hashtbl.add by_key key s);
      List.iter
        (fun m ->
          match G.apply s m with
          | G.Det s' -> Queue.add s' queue
          | G.Chance dist -> List.iter (fun (_, s') -> Queue.add s' queue) dist)
        (G.moves s)
    end
  done;
  Alcotest.(check int)
    (Fmt.str "%s: one key per distinct state (%d states)" name
       (Hashtbl.length seen))
    (Hashtbl.length seen) (Hashtbl.length by_key)

let test_encode_canonical () =
  check_encode
    (module Model.Weakener_atomic.Game)
    ~init:Model.Weakener_atomic.init ~cap:10_000 "weakener_atomic";
  check_encode
    (module Model.Weakener_abd.Game)
    ~init:(Model.Weakener_abd.init ~k:1 ())
    ~cap:4_000 "weakener_abd";
  check_encode
    (module Model.Weakener_va.Game)
    ~init:(Model.Weakener_va.init ~k:1)
    ~cap:4_000 "weakener_va";
  check_encode
    (module Model.Ghw_snapshot_game.Game)
    ~init:(Model.Ghw_snapshot_game.init ~k:1)
    ~cap:4_000 "ghw_snapshot";
  check_encode
    (module Model.Ghw_multi_game.Game)
    ~init:(Model.Ghw_multi_game.init ~k:1)
    ~cap:4_000 "ghw_multi"

(* ---- the pool itself ------------------------------------------------- *)

let test_pool_map_positional () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let a = Par.Pool.map pool ~n:1000 (fun i -> i * i) in
      Alcotest.(check int) "length" 1000 (Array.length a);
      Array.iteri
        (fun i v -> if v <> i * i then Alcotest.failf "a.(%d) = %d" i v)
        a)

let test_pool_propagates_exception () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      match Par.Pool.map pool ~n:100 (fun i -> if i = 57 then failwith "boom" else i) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_domain_ids () =
  Alcotest.(check int) "no workers before" 0 (Par.Pool.spawned_domains ());
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let ids = Par.Pool.domain_ids pool in
      Alcotest.(check int) "jobs - 1 workers listed" 3 (List.length ids);
      Alcotest.(check int)
        "ids are distinct" 3
        (List.length (List.sort_uniq compare ids));
      Alcotest.(check bool)
        "caller is not listed" false
        (List.mem (Domain.self () :> int) ids);
      Alcotest.(check int) "spawned count matches" 3 (Par.Pool.spawned_domains ());
      (* stable across reads for the pool's lifetime *)
      Alcotest.(check (list int)) "ids stable" ids (Par.Pool.domain_ids pool));
  Alcotest.(check int) "all joined after with_pool" 0 (Par.Pool.spawned_domains ());
  (* a single-job pool spawns nothing: regions run on the caller *)
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "jobs=1 lists no workers" [] (Par.Pool.domain_ids pool))

(* ---- per-domain telemetry of the last value_par ----------------------- *)

let test_last_par_stats () =
  Atomic_solver.reset ();
  Alcotest.(check bool)
    "no telemetry before any value_par" true
    (Atomic_solver.last_par_stats () = None);
  (* sequential state count: the yardstick the duplicate figures are
     measured against *)
  let _ = Atomic_solver.value Model.Weakener_atomic.init in
  let seq_states = Atomic_solver.explored () in
  Atomic_solver.reset ();
  let _ = Atomic_solver.value_par ~jobs:2 Model.Weakener_atomic.init in
  (match Atomic_solver.last_par_stats () with
  | None -> Alcotest.fail "value_par left no telemetry"
  | Some p ->
      Alcotest.(check bool) "at least one participant" true (p.domains <> []);
      let ids = List.map (fun (d : Mdp.Solver.domain_stats) -> d.domain_id) p.domains in
      Alcotest.(check (list int)) "participants sorted by domain id" (List.sort compare ids) ids;
      let summed =
        List.fold_left
          (fun acc (d : Mdp.Solver.domain_stats) -> acc + d.stats.memo_misses)
          0 p.domains
      in
      Alcotest.(check bool) "some states evaluated on workers" true (summed > 0);
      Alcotest.(check bool)
        "distinct <= total evaluated" true
        (p.distinct_keys <= summed && p.distinct_keys > 0);
      Alcotest.(check bool)
        "worker tables cover no more than the reachable set" true
        (p.distinct_keys <= seq_states);
      Alcotest.(check bool)
        "duplicated keys within distinct" true
        (p.duplicated_keys >= 0 && p.duplicated_keys <= p.distinct_keys);
      exact "duplicated work pct consistent"
        (100.0 *. float_of_int (summed - p.distinct_keys) /. float_of_int summed)
        p.duplicated_work_pct);
  (* reset discards the retained tables along with the memo *)
  Atomic_solver.reset ();
  Alcotest.(check bool)
    "reset clears telemetry" true
    (Atomic_solver.last_par_stats () = None)

let test_rng_stream_pure () =
  (* streams are pure functions of (seed, index): re-derivation agrees,
     and distinct indices give distinct streams *)
  let draw ~seed ~index =
    let r = Util.Rng.stream ~seed ~index in
    List.init 8 (fun _ -> Util.Rng.int r 1_000_000)
  in
  Alcotest.(check (list int))
    "re-derived stream identical" (draw ~seed:42 ~index:3) (draw ~seed:42 ~index:3);
  Alcotest.(check bool)
    "adjacent indices differ" true
    (draw ~seed:42 ~index:3 <> draw ~seed:42 ~index:4);
  Alcotest.(check bool)
    "seeds differ" true
    (draw ~seed:42 ~index:3 <> draw ~seed:43 ~index:3)

let tests =
  [
    Alcotest.test_case "MC tallies identical at jobs 1/2/4" `Quick
      test_mc_parallel_identical;
    Alcotest.test_case "value_par = value (atomic game)" `Quick
      test_par_solver_atomic;
    Alcotest.test_case "value_par = value (ABD^1)" `Slow test_par_solver_abd1;
    Alcotest.test_case "encode agrees with structural equality" `Quick
      test_encode_canonical;
    Alcotest.test_case "pool map is positional" `Quick test_pool_map_positional;
    Alcotest.test_case "pool re-raises worker exceptions" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool reports worker domain ids" `Quick test_pool_domain_ids;
    Alcotest.test_case "value_par leaves per-domain telemetry" `Quick
      test_last_par_stats;
    Alcotest.test_case "Rng.stream is pure in (seed, index)" `Quick
      test_rng_stream_pure;
  ]
