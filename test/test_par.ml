(* The parallel engine's determinism contract: Monte-Carlo tallies and
   solver values must be bit-identical at every job count, and the
   canonical state keys the parallel memo tables rely on must agree with
   structural equality on reachable states. *)

let exact = Alcotest.(check (float 0.0))

(* ---- Monte-Carlo: per-trial RNG streams make trials order-free ------- *)

let mc_result ~jobs ~seed ~trials config =
  Adversary.Monte_carlo.estimate ~jobs ~trials ~seed
    ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad config

let check_mc_identical ~seed ~trials config name =
  let base = mc_result ~jobs:1 ~seed ~trials config in
  List.iter
    (fun jobs ->
      let r = mc_result ~jobs ~seed ~trials config in
      Alcotest.(check bool)
        (Fmt.str "%s: jobs=%d tallies identical to sequential" name jobs)
        true
        (r = base))
    [ 2; 4 ]

let test_mc_parallel_identical () =
  check_mc_identical ~seed:7 ~trials:240 Programs.Weakener.atomic_config
    "atomic weakener";
  check_mc_identical ~seed:20260 ~trials:40 Programs.Weakener.abd_config
    "ABD weakener"

(* ---- solver: frontier parallel value = sequential value -------------- *)

module Atomic_solver = Mdp.Solver.Make (Model.Weakener_atomic.Game)
module Abd_solver = Mdp.Solver.Make (Model.Weakener_abd.Game)

let test_par_solver_atomic () =
  let seq = Atomic_solver.value Model.Weakener_atomic.init in
  exact "atomic sequential value" 0.5 seq;
  List.iter
    (fun jobs ->
      exact
        (Fmt.str "atomic value_par jobs=%d" jobs)
        seq
        (Atomic_solver.value_par ~jobs Model.Weakener_atomic.init))
    [ 1; 2; 4 ]

let test_par_solver_abd1 () =
  let s = Model.Weakener_abd.init ~k:1 () in
  let seq = Abd_solver.value s in
  exact "ABD^1 sequential value" 1.0 seq;
  List.iter
    (fun jobs ->
      exact (Fmt.str "ABD^1 value_par jobs=%d" jobs) seq
        (Abd_solver.value_par ~jobs s))
    [ 2; 4 ]

(* ---- canonical keys agree with structural equality ------------------- *)

(* BFS the reachable states (capped) and require a bijection between
   structurally distinct states and distinct encode strings: an encode
   collision between structurally different states would silently merge
   them in the memo table; a split would only cost speed, but betrays a
   non-canonical encoder. *)
let check_encode (type s) (module G : Mdp.Solver.GAME with type state = s)
    ~(init : s) ~cap name =
  let by_key : (string, s) Hashtbl.t = Hashtbl.create 1024 in
  let seen : (s, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Queue.add init queue;
  while (not (Queue.is_empty queue)) && Hashtbl.length seen < cap do
    let s = Queue.pop queue in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      let key = G.encode s in
      Alcotest.(check string)
        (Fmt.str "%s: encode is deterministic" name)
        key (G.encode s);
      (match Hashtbl.find_opt by_key key with
      | Some s' ->
          if s' <> s then
            Alcotest.failf "%s: encode collision between distinct states" name
      | None -> Hashtbl.add by_key key s);
      List.iter
        (fun m ->
          match G.apply s m with
          | G.Det s' -> Queue.add s' queue
          | G.Chance dist -> List.iter (fun (_, s') -> Queue.add s' queue) dist)
        (G.moves s)
    end
  done;
  Alcotest.(check int)
    (Fmt.str "%s: one key per distinct state (%d states)" name
       (Hashtbl.length seen))
    (Hashtbl.length seen) (Hashtbl.length by_key)

let test_encode_canonical () =
  check_encode
    (module Model.Weakener_atomic.Game)
    ~init:Model.Weakener_atomic.init ~cap:10_000 "weakener_atomic";
  check_encode
    (module Model.Weakener_abd.Game)
    ~init:(Model.Weakener_abd.init ~k:1 ())
    ~cap:4_000 "weakener_abd";
  check_encode
    (module Model.Weakener_va.Game)
    ~init:(Model.Weakener_va.init ~k:1)
    ~cap:4_000 "weakener_va";
  check_encode
    (module Model.Ghw_snapshot_game.Game)
    ~init:(Model.Ghw_snapshot_game.init ~k:1)
    ~cap:4_000 "ghw_snapshot";
  check_encode
    (module Model.Ghw_multi_game.Game)
    ~init:(Model.Ghw_multi_game.init ~k:1)
    ~cap:4_000 "ghw_multi"

(* ---- the pool itself ------------------------------------------------- *)

let test_pool_map_positional () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let a = Par.Pool.map pool ~n:1000 (fun i -> i * i) in
      Alcotest.(check int) "length" 1000 (Array.length a);
      Array.iteri
        (fun i v -> if v <> i * i then Alcotest.failf "a.(%d) = %d" i v)
        a)

let test_pool_propagates_exception () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      match Par.Pool.map pool ~n:100 (fun i -> if i = 57 then failwith "boom" else i) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_rng_stream_pure () =
  (* streams are pure functions of (seed, index): re-derivation agrees,
     and distinct indices give distinct streams *)
  let draw ~seed ~index =
    let r = Util.Rng.stream ~seed ~index in
    List.init 8 (fun _ -> Util.Rng.int r 1_000_000)
  in
  Alcotest.(check (list int))
    "re-derived stream identical" (draw ~seed:42 ~index:3) (draw ~seed:42 ~index:3);
  Alcotest.(check bool)
    "adjacent indices differ" true
    (draw ~seed:42 ~index:3 <> draw ~seed:42 ~index:4);
  Alcotest.(check bool)
    "seeds differ" true
    (draw ~seed:42 ~index:3 <> draw ~seed:43 ~index:3)

let tests =
  [
    Alcotest.test_case "MC tallies identical at jobs 1/2/4" `Quick
      test_mc_parallel_identical;
    Alcotest.test_case "value_par = value (atomic game)" `Quick
      test_par_solver_atomic;
    Alcotest.test_case "value_par = value (ABD^1)" `Slow test_par_solver_abd1;
    Alcotest.test_case "encode agrees with structural equality" `Quick
      test_encode_canonical;
    Alcotest.test_case "pool map is positional" `Quick test_pool_map_positional;
    Alcotest.test_case "pool re-raises worker exceptions" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "Rng.stream is pure in (seed, index)" `Quick
      test_rng_stream_pure;
  ]
