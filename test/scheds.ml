(* Shared scheduling helpers for the test suites. *)

open Sim

(* Uniformly random choice among enabled events: a probabilistically fair
   scheduler, adequate for termination of quorum-based algorithms. *)
let random_scheduler rng _t evs = Util.Rng.pick rng evs

(* Run a configuration to completion under a random schedule and return the
   runtime. *)
let run_random ?(seed = 42) ?(max_steps = 100_000) config =
  let rng = Util.Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Util.Rng.split rng)) in
  match Runtime.run t ~max_steps (random_scheduler rng) with
  | Runtime.Completed -> t
  | Runtime.Deadlocked -> Alcotest.fail "run_random: deadlock"
  | Runtime.Step_limit_reached -> Alcotest.fail "run_random: step limit"

(* Deliver-eagerly scheduler: prefers message deliveries, else steps the
   lowest-id runnable process. Produces sequential-looking executions. *)
let eager_scheduler _t evs =
  let delivery = List.find_opt (function Runtime.Deliver _ -> true | _ -> false) evs in
  match delivery with Some e -> e | None -> List.hd evs
