let () =
  Alcotest.run "blunting"
    [
      ("util", Test_util.tests);
      ("history", Test_history.tests);
      ("sim", Test_sim.tests);
      ("lin", Test_lin.tests);
      ("lin-more", Test_lin.more_tests);
      ("lin-locality", Test_lin.locality_tests);
      ("objects", Test_objects.tests);
      ("objects-more", Test_objects.more_tests);
      ("transform", Test_objects.transform_tests);
      ("core", Test_core.tests);
      ("mdp+model", Test_model.tests);
      ("model-more", Test_model.more_tests);
      ("model-ghw", Test_model.ghw_tests);
      ("model-ghw-multi", Test_model.multi_ghw_tests);
      ("model-va", Test_model.va_tests);
      ("adversary", Test_adversary.tests);
      ("par", Test_par.tests);
      ("solver-inplace", Test_inplace.tests);
      ("solver-par", Test_solver_par.tests);
      ("store", Test_store.tests);
      ("obs", Test_obs.tests);
      ("obs-ring", Test_ring.tests);
      ("obs-memprof", Test_memprof.tests);
      ("obs-diff", Test_diff.tests);
      ("programs", Test_programs.tests);
      ("programs-benor", Test_programs.ben_or_tests);
      ("fuzz", Test_fuzz.tests);
    ]
