(* Tests for the regression-diff layer: Obs.Diff severity policy and
   tolerances, schema-version handling (v1 baselines against v2 runs),
   Obs.Gc_stats deltas, and Obs.Trajectory table extraction. *)

(* Build a results document programmatically; [rows] are
   (quantity, paper_value option, measured_value) triples and [metrics]
   free-form numeric section metrics. *)
let make_doc ?(id = "E1") ?(title = "test section") ?(rows = []) ?(metrics = [])
    () =
  let doc = Obs.Results.create ~generated_by:"test suite" () in
  let s = Obs.Results.section doc ~id ~title in
  List.iter
    (fun (quantity, paper_value, measured_value) ->
      Obs.Results.row s ?paper_value ~measured_value ~quantity ~paper:"-"
        ~measured:(Fmt.str "%g" measured_value)
        ())
    rows;
  if metrics <> [] then
    Obs.Results.add_section_metrics s
      (List.map (fun (k, v) -> (k, Obs.Json.Float v)) metrics);
  Obs.Results.to_json doc

let run_diff ?config ~baseline ~current () =
  match Obs.Diff.diff ?config ~baseline ~current () with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff errored: %s" e

let count sev (r : Obs.Diff.report) =
  List.length (List.filter (fun (f : Obs.Diff.finding) -> f.severity = sev) r.findings)

(* ---- Obs.Diff -------------------------------------------------------- *)

let test_self_diff_clean () =
  let doc =
    make_doc
      ~rows:[ ("exact value", Some 0.5, 0.5); ("trials", None, 60.0) ]
      ~metrics:[ ("states", 106_000.0); ("solve_seconds_k1", 2.5) ]
      ()
  in
  let r = run_diff ~baseline:doc ~current:doc () in
  Alcotest.(check int) "no findings" 0 (List.length r.findings);
  Alcotest.(check int) "exit 0" 0 (Obs.Diff.exit_code r);
  Alcotest.(check int) "rows compared" 2 r.rows_compared;
  Alcotest.(check int) "metrics compared" 2 r.metrics_compared;
  Alcotest.(check int) "sections compared" 1 r.sections_compared

let test_paper_drift_fails () =
  (* paper drift is detected within the CURRENT document alone *)
  let bad = make_doc ~rows:[ ("exact value", Some 0.5, 0.5002) ] () in
  let r = run_diff ~baseline:bad ~current:bad () in
  Alcotest.(check int) "one hard failure" 1 (count Obs.Diff.Fail r);
  Alcotest.(check int) "exit 1" 1 (Obs.Diff.exit_code r);
  (* ... and tolerance is respected on both sides of the edge *)
  let within = make_doc ~rows:[ ("exact value", Some 0.5, 0.5 +. 5e-7) ] () in
  let r = run_diff ~baseline:within ~current:within () in
  Alcotest.(check int) "within tolerance" 0 (count Obs.Diff.Fail r);
  let custom = { Obs.Diff.default_config with paper_tol = 1e-3 } in
  let r = run_diff ~config:custom ~baseline:bad ~current:bad () in
  Alcotest.(check int) "widened tolerance passes" 0 (count Obs.Diff.Fail r)

let test_measured_drift_fails_hard () =
  let baseline = make_doc ~rows:[ ("exact value", None, 0.625) ] () in
  let current = make_doc ~rows:[ ("exact value", None, 0.6250001) ] () in
  let r = run_diff ~baseline ~current () in
  Alcotest.(check int) "deterministic drift is Fail" 1 (count Obs.Diff.Fail r);
  Alcotest.(check int) "exit 1" 1 (Obs.Diff.exit_code r)

let test_time_drift_warns_only () =
  (* timing-shaped keys: generous tolerance, and never worse than Warn *)
  let baseline = make_doc ~metrics:[ ("solve_seconds_k2", 1.0) ] () in
  let slower = make_doc ~metrics:[ ("solve_seconds_k2", 10.0) ] () in
  let r = run_diff ~baseline ~current:slower () in
  Alcotest.(check int) "no hard failure" 0 (count Obs.Diff.Fail r);
  Alcotest.(check int) "one warning" 1 (count Obs.Diff.Warn r);
  Alcotest.(check int) "exit 0 on warnings" 0 (Obs.Diff.exit_code r);
  let wobbly = make_doc ~metrics:[ ("solve_seconds_k2", 1.3) ] () in
  let r = run_diff ~baseline ~current:wobbly () in
  Alcotest.(check int) "30% wobble tolerated" 0 (List.length r.findings)

let test_missing_section_warns () =
  let baseline =
    Obs.Json.(
      match make_doc ~id:"E1" () with
      | Obj fields ->
          (* a second section the current run will not have *)
          let extra =
            match make_doc ~id:"E5" ~title:"skipped" () with
            | Obj f -> (
                match List.assoc "experiments" f with
                | List l -> l
                | _ -> [])
            | _ -> []
          in
          Obj
            (List.map
               (function
                 | "experiments", List l -> ("experiments", List (l @ extra))
                 | kv -> kv)
               fields)
      | _ -> Alcotest.fail "doc is not an object")
  in
  let current = make_doc ~id:"E1" () in
  let r = run_diff ~baseline ~current () in
  Alcotest.(check int) "missing section is Warn" 1 (count Obs.Diff.Warn r);
  Alcotest.(check int) "not a failure" 0 (Obs.Diff.exit_code r);
  (* the reverse direction: a section the baseline has never seen is Info *)
  let r = run_diff ~baseline:current ~current:baseline () in
  Alcotest.(check int) "new section is Info" 1 (count Obs.Diff.Info r);
  Alcotest.(check int) "no warnings" 0 (count Obs.Diff.Warn r)

let test_row_set_changes () =
  let baseline =
    make_doc ~rows:[ ("kept", None, 1.0); ("removed", None, 2.0) ] ()
  in
  let current = make_doc ~rows:[ ("kept", None, 1.0); ("added", None, 3.0) ] () in
  let r = run_diff ~baseline ~current () in
  let subjects sev =
    List.filter_map
      (fun (f : Obs.Diff.finding) ->
        if f.severity = sev then Some f.subject else None)
      r.findings
  in
  Alcotest.(check (list string)) "removed row warns" [ "removed" ]
    (subjects Obs.Diff.Warn);
  Alcotest.(check (list string)) "added row informs" [ "added" ]
    (subjects Obs.Diff.Info);
  Alcotest.(check int) "still exit 0" 0 (Obs.Diff.exit_code r)

let test_invalid_documents_rejected () =
  let good = make_doc () in
  let bogus = Obs.Json.Obj [ ("schema_version", Obs.Json.Int 999) ] in
  (match Obs.Diff.diff ~baseline:bogus ~current:good () with
  | Error e ->
      Alcotest.(check bool) "names the baseline" true
        (String.length e > 9 && String.sub e 0 9 = "baseline:")
  | Ok _ -> Alcotest.fail "unversioned baseline accepted");
  match Obs.Diff.diff ~baseline:good ~current:Obs.Json.Null () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "null current accepted"

let test_v1_baseline_against_v2 () =
  (* a committed v1 baseline must diff cleanly against a v2 run, with the
     version skew surfaced as an informational finding *)
  let v1 =
    Obs.Json.(
      match make_doc ~rows:[ ("exact value", Some 0.5, 0.5) ] () with
      | Obj fields ->
          Obj
            (List.map
               (function
                 | "schema_version", _ -> ("schema_version", Int 1)
                 | kv -> kv)
               fields)
      | _ -> Alcotest.fail "doc is not an object")
  in
  (match Obs.Results.validate v1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v1 document rejected by validator: %s" e);
  let v2 = make_doc ~rows:[ ("exact value", Some 0.5, 0.5) ] () in
  let r = run_diff ~baseline:v1 ~current:v2 () in
  Alcotest.(check int) "no failures across versions" 0 (count Obs.Diff.Fail r);
  let skew =
    List.filter
      (fun (f : Obs.Diff.finding) -> f.subject = "schema_version")
      r.findings
  in
  (match skew with
  | [ f ] -> Alcotest.(check bool) "skew is Info" true (f.severity = Obs.Diff.Info)
  | _ -> Alcotest.fail "schema-version skew not reported");
  Alcotest.(check int) "exit 0" 0 (Obs.Diff.exit_code r)

let test_nested_metrics_and_report_render () =
  (* nested gc/counters objects compare per leaf, and the renderer names
     hard failures *)
  let with_gc words =
    let doc = Obs.Results.create ~generated_by:"test suite" () in
    let s = Obs.Results.section doc ~id:"E1" ~title:"t" in
    Obs.Results.add_section_metrics s
      [
        ( "counters",
          Obs.Json.Obj [ ("sim.steps", Obs.Json.Int 100) ] );
        ("gc", Obs.Json.Obj [ ("minor_words", Obs.Json.Float words) ]);
      ];
    Obs.Results.to_json doc
  in
  let r = run_diff ~baseline:(with_gc 1e6) ~current:(with_gc 1e8) () in
  (* gc.minor_words is a soft key: 100x drift warns but cannot fail *)
  Alcotest.(check int) "gc drift warns" 1 (count Obs.Diff.Warn r);
  Alcotest.(check int) "gc drift never fails" 0 (count Obs.Diff.Fail r);
  Alcotest.(check int) "both leaves compared" 2 r.metrics_compared;
  let bad = make_doc ~rows:[ ("q", Some 0.5, 0.75) ] () in
  let r = run_diff ~baseline:bad ~current:bad () in
  let rendered = Fmt.str "@[<v>%a@]" Obs.Diff.pp_report r in
  List.iter
    (fun needle ->
      let has =
        let nl = String.length needle and rl = String.length rendered in
        let rec go i = i + nl <= rl && (String.sub rendered i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Fmt.str "report mentions %S" needle) true has)
    [ "REGRESSION"; "FAIL"; "q" ]

(* Per-row PAR speedups: a parallel row slower than sequential surfaces
   as a Warn (never a Fail — timing is machine-dependent, --min-speedup
   is the opt-in hard gate), a genuine speedup as an Info. The committed
   BENCH_2026-08-08-par4.json carries a 0.19x solve row that used to sit
   silently in the metrics. *)
let test_par_speedup_rows () =
  let doc =
    make_doc ~id:"PAR" ~title:"parallel engine"
      ~metrics:
        [
          ("mc_speedup_timing", 0.61);
          ("solve_speedup_timing", 1.8);
          ("mc_seq_seconds", 2.0);
        ]
      ()
  in
  let r = run_diff ~baseline:doc ~current:doc () in
  let speedups sev =
    List.filter
      (fun (f : Obs.Diff.finding) ->
        f.severity = sev
        && String.length f.subject > 8
        && String.sub f.subject 0 8 = "speedup ")
      r.findings
  in
  (match speedups Obs.Diff.Warn with
  | [ f ] ->
      Alcotest.(check string) "slow row named" "speedup mc" f.subject;
      Alcotest.(check bool) "detail carries the ratio" true
        (let affix = "0.61x" in
         let n = String.length affix and m = String.length f.detail in
         let rec go i =
           i + n <= m && (String.sub f.detail i n = affix || go (i + 1))
         in
         go 0)
  | fs -> Alcotest.failf "expected 1 speedup warning, got %d" (List.length fs));
  (match speedups Obs.Diff.Info with
  | [ f ] -> Alcotest.(check string) "fast row named" "speedup solve" f.subject
  | fs -> Alcotest.failf "expected 1 speedup info, got %d" (List.length fs));
  Alcotest.(check int) "sub-1.0x is never a hard failure" 0 (count Obs.Diff.Fail r);
  Alcotest.(check int) "exit 0" 0 (Obs.Diff.exit_code r);
  (* non-PAR sections never grow speedup findings *)
  let other = make_doc ~id:"E5" ~metrics:[ ("mc_speedup_timing", 0.4) ] () in
  let r = run_diff ~baseline:other ~current:other () in
  Alcotest.(check int) "no speedup findings outside PAR" 0
    (List.length
       (List.filter
          (fun (f : Obs.Diff.finding) ->
            String.length f.subject > 8 && String.sub f.subject 0 8 = "speedup ")
          r.findings))

(* The --max-alloc-ratio gate: per-step allocation past the ceiling is a
   hard Fail, within it an Info; steps normalize away trial-count
   changes; a gated run with no GC data anywhere fails loudly. *)
let alloc_doc ?steps ~minor_words () =
  let doc = Obs.Results.create ~generated_by:"test suite" () in
  let s = Obs.Results.section doc ~id:"E9" ~title:"rounds" in
  Obs.Results.add_section_metrics s
    ([ ("gc", Obs.Json.Obj [ ("minor_words", Obs.Json.Float minor_words) ]) ]
    @
    match steps with
    | Some n -> [ ("counters", Obs.Json.Obj [ ("sim.steps", Obs.Json.Int n) ]) ]
    | None -> []);
  Obs.Results.to_json doc

let test_max_alloc_ratio_gate () =
  let gated ratio = { Obs.Diff.default_config with max_alloc_ratio = Some ratio } in
  let alloc_findings (r : Obs.Diff.report) =
    List.filter (fun (f : Obs.Diff.finding) -> f.subject = "alloc_ratio") r.findings
  in
  (* 1000 -> 900 words over the same steps: well within 1.5x, Info only *)
  let baseline = alloc_doc ~steps:50 ~minor_words:1000.0 () in
  let better = alloc_doc ~steps:50 ~minor_words:900.0 () in
  let r = run_diff ~config:(gated 1.5) ~baseline ~current:better () in
  (match alloc_findings r with
  | [ f ] -> Alcotest.(check bool) "within ceiling is Info" true (f.severity = Obs.Diff.Info)
  | fs -> Alcotest.failf "expected 1 alloc finding, got %d" (List.length fs));
  Alcotest.(check int) "exit 0" 0 (Obs.Diff.exit_code r);
  (* 2x the per-step allocation: Fail past a 1.5x ceiling *)
  let worse = alloc_doc ~steps:50 ~minor_words:2000.0 () in
  let r = run_diff ~config:(gated 1.5) ~baseline ~current:worse () in
  (match alloc_findings r with
  | [ f ] -> Alcotest.(check bool) "past ceiling is Fail" true (f.severity = Obs.Diff.Fail)
  | fs -> Alcotest.failf "expected 1 alloc finding, got %d" (List.length fs));
  Alcotest.(check int) "exit 1" 1 (Obs.Diff.exit_code r);
  (* same total words over 2x the steps: per-step allocation halved, so a
     trial-count change does not read as an allocation change *)
  let more_steps = alloc_doc ~steps:100 ~minor_words:1000.0 () in
  let r = run_diff ~config:(gated 1.01) ~baseline ~current:more_steps () in
  (* (the sim.steps metric itself drifts hard here — only the gate's own
     verdict is under test) *)
  Alcotest.(check int) "per-step normalization passes" 0
    (List.length
       (List.filter (fun (f : Obs.Diff.finding) -> f.severity = Obs.Diff.Fail)
          (alloc_findings r)));
  (* no steps counter on either side: raw minor words compare *)
  let raw_base = alloc_doc ~minor_words:1000.0 () in
  let raw_worse = alloc_doc ~minor_words:1600.0 () in
  let r = run_diff ~config:(gated 1.5) ~baseline:raw_base ~current:raw_worse () in
  Alcotest.(check int) "raw-words fallback fails past ceiling" 1 (count Obs.Diff.Fail r);
  (* ungated, the same drift stays a soft Warn at worst *)
  let r = run_diff ~baseline ~current:worse () in
  Alcotest.(check int) "ungated drift never fails" 0 (count Obs.Diff.Fail r);
  (* a gated run with no GC data anywhere fails loudly instead of
     silently skipping *)
  let dry = make_doc ~metrics:[ ("states", 10.0) ] () in
  let r = run_diff ~config:(gated 1.5) ~baseline:dry ~current:dry () in
  (match alloc_findings r with
  | [ f ] -> Alcotest.(check bool) "missing GC data is Fail" true (f.severity = Obs.Diff.Fail)
  | fs -> Alcotest.failf "expected 1 alloc finding, got %d" (List.length fs));
  Alcotest.(check int) "exit 1 on missing data" 1 (Obs.Diff.exit_code r)

(* ---- Obs.Gc_stats ---------------------------------------------------- *)

let test_gc_stats_measure () =
  let (), d = Obs.Gc_stats.measure (fun () -> ignore (Sys.opaque_identity (List.init 10_000 (fun i -> i)))) in
  Alcotest.(check bool) "allocation observed" true (Obs.Gc_stats.allocated_words d > 0.0);
  Alcotest.(check bool) "minor words grew" true (d.minor_words > 0.0);
  Alcotest.(check bool) "collections monotone" true
    (d.minor_collections >= 0 && d.major_collections >= 0 && d.compactions >= 0);
  Alcotest.(check bool) "heap high-water positive" true (d.top_heap_words > 0);
  (* the JSON form parses back and carries every field *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Gc_stats.to_json d)) with
  | Error e -> Alcotest.failf "gc json: %s" e
  | Ok j ->
      List.iter
        (fun k ->
          match Obs.Json.member k j with
          | Some _ -> ()
          | None -> Alcotest.failf "gc json missing %S" k)
        [
          "minor_words";
          "promoted_words";
          "major_words";
          "allocated_words";
          "minor_collections";
          "major_collections";
          "compactions";
          "top_heap_words";
        ]

(* ---- Obs.Trajectory -------------------------------------------------- *)

let traj_doc ~states ~seconds ~value =
  let doc = Obs.Results.create ~generated_by:"test suite" () in
  let s = Obs.Results.section doc ~id:"E5" ~title:"convergence" in
  Obs.Results.row s ~measured_value:value ~quantity:"exact Prob[bad]" ~paper:"-"
    ~measured:(Fmt.str "%g" value) ();
  Obs.Results.add_section_metrics s
    [
      ("states_k1", Obs.Json.Int states);
      ("solve_seconds_k1", Obs.Json.Float seconds);
    ];
  Obs.Results.to_json doc

let test_trajectory_tables () =
  let p label doc =
    match Obs.Trajectory.of_json ~label doc with
    | Ok p -> p
    | Error e -> Alcotest.failf "point %s: %s" label e
  in
  let a = p "a" (traj_doc ~states:1000 ~seconds:2.0 ~value:0.75)
  and b = p "b" (traj_doc ~states:1000 ~seconds:1.0 ~value:0.75) in
  match Obs.Trajectory.tables [ a; b ] with
  | [ t ] ->
      Alcotest.(check string) "section id" "E5" t.section_id;
      Alcotest.(check string) "title" "convergence" t.title;
      Alcotest.(check (list string)) "columns in order" [ "a"; "b" ] t.columns;
      let series key =
        match List.assoc_opt key t.rows with
        | Some vs -> vs
        | None -> Alcotest.failf "series %S missing" key
      in
      Alcotest.(check (list (option (float 1e-9))))
        "measured values" [ Some 0.75; Some 0.75 ]
        (series "exact Prob[bad]");
      Alcotest.(check (list (option (float 1e-9))))
        "derived states/sec" [ Some 500.0; Some 1000.0 ]
        (series "states/s_k1")
  | ts -> Alcotest.failf "expected 1 table, got %d" (List.length ts)

(* The derived GC series: sections carrying both gc.minor_words and
   counters.sim.steps grow a gc.minor_words_per_step row; sections
   missing either (or with zero steps) don't. *)
let test_trajectory_gc_series () =
  let gc_doc ~minor_words ~steps =
    let doc = Obs.Results.create ~generated_by:"test suite" () in
    let s = Obs.Results.section doc ~id:"E9" ~title:"rounds" in
    Obs.Results.add_section_metrics s
      ([ ("gc", Obs.Json.Obj [ ("minor_words", Obs.Json.Float minor_words) ]) ]
      @
      match steps with
      | Some n ->
          [ ("counters", Obs.Json.Obj [ ("sim.steps", Obs.Json.Int n) ]) ]
      | None -> []);
    Obs.Results.to_json doc
  in
  let p label doc =
    match Obs.Trajectory.of_json ~label doc with
    | Ok p -> p
    | Error e -> Alcotest.failf "point %s: %s" label e
  in
  let a = p "a" (gc_doc ~minor_words:1000.0 ~steps:(Some 50))
  and b = p "b" (gc_doc ~minor_words:900.0 ~steps:None) in
  match Obs.Trajectory.tables [ a; b ] with
  | [ t ] -> (
      match List.assoc_opt "gc.minor_words_per_step" t.rows with
      | Some vs ->
          Alcotest.(check (list (option (float 1e-9))))
            "derived only where both inputs exist" [ Some 20.0; None ] vs
      | None -> Alcotest.fail "gc.minor_words_per_step series missing")
  | ts -> Alcotest.failf "expected 1 table, got %d" (List.length ts)

let test_trajectory_scan () =
  let dir = Filename.temp_file "blunting_traj" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Obs.Json.write_file
        (Filename.concat dir "BENCH_2026-01-01.json")
        (traj_doc ~states:10 ~seconds:1.0 ~value:0.5);
      Obs.Json.write_file
        (Filename.concat dir "BENCH_2026-02-01.json")
        (traj_doc ~states:20 ~seconds:1.0 ~value:0.5);
      (* non-matching names are ignored *)
      Obs.Json.write_file (Filename.concat dir "notes.json") Obs.Json.Null;
      (match Obs.Trajectory.scan ~dir with
      | Error e -> Alcotest.failf "scan: %s" e
      | Ok points ->
          Alcotest.(check (list string))
            "chronological labels" [ "2026-01-01"; "2026-02-01" ]
            (List.map (fun (p : Obs.Trajectory.point) -> p.label) points));
      (* a corrupt trajectory point is an error, not silently skipped *)
      Obs.Json.write_file
        (Filename.concat dir "BENCH_2026-03-01.json")
        (Obs.Json.Obj [ ("schema_version", Obs.Json.Int 999) ]);
      match Obs.Trajectory.scan ~dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "invalid point accepted")

let tests =
  [
    Alcotest.test_case "diff: self-diff is clean" `Quick test_self_diff_clean;
    Alcotest.test_case "diff: paper drift fails hard" `Quick test_paper_drift_fails;
    Alcotest.test_case "diff: measured drift fails hard" `Quick
      test_measured_drift_fails_hard;
    Alcotest.test_case "diff: timing drift only warns" `Quick
      test_time_drift_warns_only;
    Alcotest.test_case "diff: missing/new sections" `Quick test_missing_section_warns;
    Alcotest.test_case "diff: added/removed rows" `Quick test_row_set_changes;
    Alcotest.test_case "diff: invalid documents rejected" `Quick
      test_invalid_documents_rejected;
    Alcotest.test_case "diff: v1 baseline vs v2 current" `Quick
      test_v1_baseline_against_v2;
    Alcotest.test_case "diff: nested metrics, rendering" `Quick
      test_nested_metrics_and_report_render;
    Alcotest.test_case "diff: per-row PAR speedups" `Quick test_par_speedup_rows;
    Alcotest.test_case "diff: max-alloc-ratio gate" `Quick test_max_alloc_ratio_gate;
    Alcotest.test_case "gc-stats: measure and serialize" `Quick test_gc_stats_measure;
    Alcotest.test_case "trajectory: per-section tables" `Quick test_trajectory_tables;
    Alcotest.test_case "trajectory: derived GC series" `Quick
      test_trajectory_gc_series;
    Alcotest.test_case "trajectory: directory scan" `Quick test_trajectory_scan;
  ]
