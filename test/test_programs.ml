(* Tests for the randomized programs: the weakener, the GHW snapshot
   variant, and the round-based program of Section 7. *)

open Util
open Sim

let run_random ?(seed = 1) ?(max_steps = 2_000_000) config =
  let rng = Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  match Runtime.run t ~max_steps (fun _ evs -> Rng.pick rng evs) with
  | Runtime.Completed -> t
  | Runtime.Deadlocked -> Alcotest.fail "deadlock"
  | Runtime.Step_limit_reached -> Alcotest.fail "step limit"

let test_weakener_runs_all_configs () =
  List.iter
    (fun (name, config) ->
      let t = run_random (config ()) in
      let o = Runtime.outcome t in
      List.iter
        (fun tag ->
          if History.Outcome.find1 o tag = None then
            Alcotest.failf "%s: missing outcome %s" name tag)
        [ Programs.Weakener.tag_u1; Programs.Weakener.tag_u2; Programs.Weakener.tag_c ])
    [
      ("atomic", Programs.Weakener.atomic_config);
      ("abd", Programs.Weakener.abd_config);
      ("abd^2", fun () -> Programs.Weakener.abd_k_config ~k:2);
      ("abd^4", fun () -> Programs.Weakener.abd_k_config ~k:4);
    ]

let test_weakener_bad_predicate () =
  let mk u1 u2 c =
    History.Outcome.empty
    |> (fun o -> History.Outcome.record o ~tag:Programs.Weakener.tag_u1 ~occurrence:0 u1)
    |> (fun o -> History.Outcome.record o ~tag:Programs.Weakener.tag_u2 ~occurrence:0 u2)
    |> fun o -> History.Outcome.record o ~tag:Programs.Weakener.tag_c ~occurrence:0 c
  in
  Alcotest.(check bool) "0,1,0 bad" true
    (Programs.Weakener.bad (mk (Value.int 0) (Value.int 1) (Value.int 0)));
  Alcotest.(check bool) "1,0,1 bad" true
    (Programs.Weakener.bad (mk (Value.int 1) (Value.int 0) (Value.int 1)));
  Alcotest.(check bool) "0,1,1 good" false
    (Programs.Weakener.bad (mk (Value.int 0) (Value.int 1) (Value.int 1)));
  Alcotest.(check bool) "bot u1 good" false
    (Programs.Weakener.bad (mk Value.none (Value.int 1) (Value.int 0)));
  Alcotest.(check bool) "unwritten c good" false
    (Programs.Weakener.bad (mk (Value.int 0) (Value.int 1) (Value.int (-1))))

let test_weakener_program_random_count () =
  (* the weakener has exactly one program random step (r = 1 in Thm 4.2) *)
  let t = run_random (Programs.Weakener.abd_k_config ~k:2) in
  let program_steps =
    List.filter
      (fun (kind, _, _) -> kind = Proc.Program_random)
      (Trace.random_draws (Runtime.trace t))
  in
  Alcotest.(check int) "one coin flip" 1 (List.length program_steps);
  (* and 4 object random steps for R (W0, W1, R1, R2) plus 2 for C ops by
     p1 and p2: every ABD^k operation has exactly one *)
  let object_steps =
    List.filter
      (fun (kind, _, _) -> kind = Proc.Object_random)
      (Trace.random_draws (Runtime.trace t))
  in
  Alcotest.(check int) "six object choices" 6 (List.length object_steps)

let test_ghw_configs_run () =
  List.iter
    (fun (name, config) ->
      let t = run_random (config ()) in
      let o = Runtime.outcome t in
      if History.Outcome.find1 o Programs.Ghw_snapshot.tag_s1 = None then
        Alcotest.failf "%s: missing s1" name)
    [
      ("afek", Programs.Ghw_snapshot.afek_config);
      ("afek^2", fun () -> Programs.Ghw_snapshot.afek_k_config ~k:2);
      ("atomic", Programs.Ghw_snapshot.atomic_config);
    ]

let test_ghw_u_classifier () =
  Alcotest.(check (option int)) "only p0" (Some 0)
    (Programs.Ghw_snapshot.u (Value.list [ Value.int 1; Value.int 0; Value.int 0 ]));
  Alcotest.(check (option int)) "only p1" (Some 1)
    (Programs.Ghw_snapshot.u (Value.list [ Value.int 0; Value.int 1; Value.int 0 ]));
  Alcotest.(check (option int)) "both" None
    (Programs.Ghw_snapshot.u (Value.list [ Value.int 1; Value.int 1; Value.int 0 ]));
  Alcotest.(check (option int)) "neither" None
    (Programs.Ghw_snapshot.u (Value.list [ Value.int 0; Value.int 0; Value.int 0 ]))

let test_ghw_snapshot_histories_linearizable () =
  let spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0) in
  for seed = 1 to 10 do
    let t = run_random ~seed (Programs.Ghw_snapshot.afek_config ()) in
    Alcotest.(check bool)
      (Fmt.str "S linearizable (seed %d)" seed)
      true
      (Lin.Check.check spec (History.Hist.project_obj (Runtime.history t) "S"))
  done

let test_round_based_agrees () =
  let max_rounds = 80 in
  let config =
    Programs.Round_based.config ~n:3 ~rounds_before_fallback:4 ~max_rounds ~k:5
  in
  let t = run_random ~seed:21 ~max_steps:4_000_000 config in
  match Programs.Round_based.agreed_round_of_trace (Runtime.trace t) ~n:3 ~max_rounds with
  | Some r -> Alcotest.(check bool) "agreed within budget" true (r < max_rounds)
  | None -> Alcotest.fail "no agreement"

let test_round_based_histories_linearizable () =
  let max_rounds = 40 in
  let config =
    Programs.Round_based.config ~n:2 ~rounds_before_fallback:2 ~max_rounds ~k:3
  in
  let t = run_random ~seed:8 ~max_steps:4_000_000 config in
  let spec = History.Spec.register ~init:(Value.list []) in
  List.iter
    (fun i ->
      let name = Fmt.str "F%d" i in
      Alcotest.(check bool)
        (name ^ " linearizable")
        true
        (Lin.Check.check spec (History.Hist.project_obj (Runtime.history t) name)))
    [ 0; 1 ]

let tests =
  [
    Alcotest.test_case "weakener runs on all register choices" `Quick
      test_weakener_runs_all_configs;
    Alcotest.test_case "weakener bad predicate" `Quick test_weakener_bad_predicate;
    Alcotest.test_case "weakener random-step accounting" `Quick
      test_weakener_program_random_count;
    Alcotest.test_case "GHW snapshot configs run" `Quick test_ghw_configs_run;
    Alcotest.test_case "GHW u classifier" `Quick test_ghw_u_classifier;
    Alcotest.test_case "GHW snapshot histories linearizable" `Slow
      test_ghw_snapshot_histories_linearizable;
    Alcotest.test_case "round-based program agrees" `Slow test_round_based_agrees;
    Alcotest.test_case "round-based registers linearizable" `Slow
      test_round_based_histories_linearizable;
  ]

(* ---- Ben-Or randomized consensus (the motivating application class) --- *)

let run_ben_or ?(crash = None) ~seed ~inputs () =
  let n = List.length inputs in
  let config = Programs.Ben_or.config ~n ~f:1 ~inputs ~max_rounds:60 in
  let config =
    if crash = None then { config with Runtime.enable_crashes = false } else config
  in
  let rng = Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  (match crash with
  | Some p ->
      (* let everyone take a few steps, then fail p *)
      for _ = 1 to 6 do
        match Runtime.enabled t with
        | [] -> ()
        | evs -> (
            match List.find_opt (function Runtime.Step _ -> true | _ -> false) evs with
            | Some e -> Runtime.step t e
            | None -> Runtime.step t (List.hd evs))
      done;
      if Runtime.is_active t p then Runtime.step t (Runtime.Crash p)
  | None -> ());
  let sched _t evs =
    let no_crash = List.filter (function Runtime.Crash _ -> false | _ -> true) evs in
    Rng.pick rng (if no_crash = [] then evs else no_crash)
  in
  match Runtime.run t ~max_steps:2_000_000 sched with
  | Runtime.Completed -> t
  | Runtime.Deadlocked -> Alcotest.fail "ben-or deadlock"
  | Runtime.Step_limit_reached -> Alcotest.fail "ben-or step limit"

let test_ben_or_agreement_validity () =
  for seed = 1 to 25 do
    let inputs = [ seed mod 2; (seed / 2) mod 2; (seed / 4) mod 2 ] in
    let t = run_ben_or ~seed ~inputs () in
    let ds = Programs.Ben_or.decisions (Runtime.trace t) ~n:3 in
    Alcotest.(check bool) (Fmt.str "all decide (seed %d)" seed) true
      (List.for_all (( <> ) None) ds);
    Alcotest.(check bool) (Fmt.str "agreement (seed %d)" seed) true
      (Programs.Ben_or.agreement ds);
    Alcotest.(check bool) (Fmt.str "validity (seed %d)" seed) true
      (Programs.Ben_or.validity ~inputs ds)
  done

let test_ben_or_unanimous_fast () =
  (* unanimous input v must decide v *)
  List.iter
    (fun v ->
      for seed = 1 to 8 do
        let t = run_ben_or ~seed ~inputs:[ v; v; v ] () in
        let ds = Programs.Ben_or.decisions (Runtime.trace t) ~n:3 in
        List.iter
          (fun d ->
            Alcotest.(check (option int)) (Fmt.str "decides input %d" v) (Some v) d)
          ds
      done)
    [ 0; 1 ]

let test_ben_or_tolerates_crash () =
  for seed = 1 to 15 do
    let inputs = [ 0; 1; seed mod 2 ] in
    let t = run_ben_or ~crash:(Some (seed mod 3)) ~seed ~inputs () in
    let ds = Programs.Ben_or.decisions (Runtime.trace t) ~n:3 in
    let crashed = seed mod 3 in
    (* every surviving process decides; agreement and validity hold *)
    List.iteri
      (fun p d ->
        if p <> crashed && Runtime.is_crashed t p = false then
          Alcotest.(check bool) (Fmt.str "p%d decided (seed %d)" p seed) true
            (d <> None))
      ds;
    Alcotest.(check bool) (Fmt.str "agreement (seed %d)" seed) true
      (Programs.Ben_or.agreement ds);
    Alcotest.(check bool) (Fmt.str "validity (seed %d)" seed) true
      (Programs.Ben_or.validity ~inputs ds)
  done

let test_ben_or_rejects_bad_params () =
  Alcotest.check_raises "n <= 2f" (Invalid_argument "Ben_or.config: need n > 2f")
    (fun () -> ignore (Programs.Ben_or.config ~n:2 ~f:1 ~inputs:[ 0; 1 ] ~max_rounds:5))

let ben_or_tests =
  [
    Alcotest.test_case "Ben-Or: agreement & validity" `Slow test_ben_or_agreement_validity;
    Alcotest.test_case "Ben-Or: unanimous decides input" `Quick test_ben_or_unanimous_fast;
    Alcotest.test_case "Ben-Or: tolerates one crash" `Slow test_ben_or_tolerates_crash;
    Alcotest.test_case "Ben-Or: parameter validation" `Quick test_ben_or_rejects_bad_params;
  ]
