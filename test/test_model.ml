(* Tests for the exact game models: the solver itself on hand-solvable toy
   games, and the weakener models against the paper's claims. *)

let feq = Alcotest.(check (float 1e-9))

(* A toy game: the adversary picks one of two coins to flip; coin A wins
   with probability 1/3, coin B with 2/3. Optimal value: 2/3. *)
module Toy = struct
  type state = Start | Flipped of bool
  type move = PickA | PickB
  type transition = Det of state | Chance of (float * state) list

  let moves = function Start -> [ PickA; PickB ] | Flipped _ -> []

  let apply _ = function
    | PickA -> Chance [ (1.0 /. 3.0, Flipped true); (2.0 /. 3.0, Flipped false) ]
    | PickB -> Chance [ (2.0 /. 3.0, Flipped true); (1.0 /. 3.0, Flipped false) ]

  let terminal_value = function Flipped true -> 1.0 | _ -> 0.0

  let encode = function
    | Start -> "s"
    | Flipped true -> "t"
    | Flipped false -> "f"

  let encode_into s b = Mdp.Key.raw b (encode s)
  let pp_move ppf _ = Fmt.string ppf "pick"
end

module ToySolver = Mdp.Solver.Make (Toy)

let test_solver_toy () =
  feq "optimal pick" (2.0 /. 3.0) (ToySolver.value Toy.Start);
  Alcotest.(check bool) "best move is B" true (ToySolver.best_move Toy.Start = Some Toy.PickB);
  Alcotest.(check bool) "explored both" true (ToySolver.explored () >= 3)

(* A cyclic game must be reported, not looped on. *)
module Cyclic = struct
  type state = A | B
  type move = Go
  type transition = Det of state | Chance of (float * state) list

  let moves _ = [ Go ]
  let apply s Go = Det (match s with A -> B | B -> A)
  let terminal_value _ = 0.0
  let encode = function A -> "a" | B -> "b"
  let encode_into s b = Mdp.Key.raw b (encode s)
  let pp_move ppf Go = Fmt.string ppf "go"
end

module CyclicSolver = Mdp.Solver.Make (Cyclic)

let test_solver_detects_cycle () =
  Alcotest.check_raises "cycle" Mdp.Solver.Cyclic (fun () ->
      ignore (CyclicSolver.value Cyclic.A))

(* A depth-2 max/chance alternation with a suboptimal trap. *)
module Depth2 = struct
  type state = Root | Mid of int | Leaf of float
  type move = M of int
  type transition = Det of state | Chance of (float * state) list

  let moves = function
    | Root -> [ M 0; M 1 ]
    | Mid _ -> [ M 0; M 1 ]
    | Leaf _ -> []

  let apply s (M i) =
    match s with
    | Root -> Chance [ (0.5, Mid i); (0.5, Leaf 0.2) ]
    | Mid j -> Det (Leaf (if i = j then 1.0 else 0.0))
    | Leaf _ -> assert false

  let terminal_value = function Leaf v -> v | _ -> 0.0

  let encode = function
    | Root -> "r"
    | Mid i -> "m" ^ string_of_int i
    | Leaf v -> "l" ^ string_of_float v

  let encode_into s b = Mdp.Key.raw b (encode s)
  let pp_move ppf (M i) = Fmt.pf ppf "m%d" i
end

module Depth2Solver = Mdp.Solver.Make (Depth2)

let test_solver_depth2 () =
  (* adversary matches j at the Mid node: value = 0.5*1 + 0.5*0.2 = 0.6 *)
  feq "depth-2 value" 0.6 (Depth2Solver.value Depth2.Root)

(* ---- the weakener models ---- *)

let test_atomic_weakener_half () =
  (* Appendix A.1: the adversary-optimal bad probability is exactly 1/2 *)
  feq "atomic = 1/2" 0.5 (Model.Weakener_atomic.bad_probability ())

let test_abd1_wins_always () =
  (* Appendix A.2 / Figure 1: with plain ABD the adversary always wins *)
  feq "ABD^1 = 1" 1.0 (Model.Weakener_abd.bad_probability ~k:1 ())

let test_abd2_is_five_eighths () =
  (* Appendix A.3.2 proves bad <= 5/8; the exact game value shows the
     refined analysis is tight *)
  feq "ABD^2 = 5/8" 0.625 (Model.Weakener_abd.bad_probability ~k:2 ())

let test_abd_within_paper_bounds () =
  List.iter
    (fun k ->
      let v = Model.Weakener_abd.bad_probability ~k () in
      let bound = Core.Bound.weakener_instance ~k in
      Alcotest.(check bool)
        (Fmt.str "Thm 4.2 holds at k=%d (%.4f <= %.4f)" k v bound)
        true
        (v <= bound +. 1e-9);
      Alcotest.(check bool)
        (Fmt.str "atomic lower bound at k=%d" k)
        true (v >= 0.5 -. 1e-9))
    [ 1; 2 ]

let test_abd_monotone_k () =
  let v1 = Model.Weakener_abd.bad_probability ~k:1 () in
  let v2 = Model.Weakener_abd.bad_probability ~k:2 () in
  Alcotest.(check bool) "decreasing in k" true (v2 < v1)

let test_abd3_formula () =
  (* the machine-derived exact law for this instance: (k^2 + 1) / (2 k^2) *)
  feq "ABD^3 = 5/9" (5.0 /. 9.0) (Model.Weakener_abd.bad_probability ~k:3 ())

let tests =
  [
    Alcotest.test_case "solver: toy chance game" `Quick test_solver_toy;
    Alcotest.test_case "solver: cycle detection" `Quick test_solver_detects_cycle;
    Alcotest.test_case "solver: depth-2 alternation" `Quick test_solver_depth2;
    Alcotest.test_case "A.1: atomic weakener = 1/2" `Quick test_atomic_weakener_half;
    Alcotest.test_case "A.2: ABD^1 = 1" `Slow test_abd1_wins_always;
    Alcotest.test_case "A.3: ABD^2 = 5/8 (refined bound tight)" `Slow
      test_abd2_is_five_eighths;
    Alcotest.test_case "Thm 4.2 sandwiches exact values" `Slow
      test_abd_within_paper_bounds;
    Alcotest.test_case "exact value decreases with k" `Slow test_abd_monotone_k;
    Alcotest.test_case "ABD^3 = 5/9 (exact law)" `Slow test_abd3_formula;
  ]

(* The atomic-C substitution, validated: modelling C as a second ABD^k
   instance leaves the exact values unchanged. *)
let test_abd_c_substitution_k1 () =
  feq "k=1, C as ABD" 1.0 (Model.Weakener_abd.bad_probability ~atomic_c:false ~k:1 ())

let test_abd_c_substitution_k2 () =
  feq "k=2, C as ABD" 0.625
    (Model.Weakener_abd.bad_probability ~atomic_c:false ~k:2 ())

(* Random playouts of the game respect basic invariants: every play
   terminates, terminal payoffs are 0/1, and the in-transit multiset stays
   canonically sorted. *)
let test_model_playout_invariants () =
  let rng = Util.Rng.of_int 2718 in
  for _ = 1 to 200 do
    let rec play s steps =
      if steps > 10_000 then Alcotest.fail "playout did not terminate";
      match Model.Weakener_abd.Game.moves s with
      | [] ->
          let v = Model.Weakener_abd.Game.terminal_value s in
          Alcotest.(check bool) "payoff is 0 or 1" true (v = 0.0 || v = 1.0)
      | ms -> (
          let m = Util.Rng.pick rng ms in
          match Model.Weakener_abd.Game.apply s m with
          | Model.Weakener_abd.Game.Det s' -> play s' (steps + 1)
          | Model.Weakener_abd.Game.Chance dist ->
              let total = List.fold_left (fun acc (p, _) -> acc +. p) 0.0 dist in
              Alcotest.(check (float 1e-9)) "chance sums to 1" 1.0 total;
              play (snd (Util.Rng.pick rng dist)) (steps + 1))
    in
    play (Model.Weakener_abd.init ~k:2 ()) 0
  done

let more_tests =
  [
    Alcotest.test_case "substitution: C as ABD, k=1" `Slow test_abd_c_substitution_k1;
    Alcotest.test_case "substitution: C as ABD, k=2 (tight 5/8)" `Slow
      test_abd_c_substitution_k2;
    Alcotest.test_case "model playout invariants" `Quick test_model_playout_invariants;
  ]

(* ---- the snapshot weakener game (Programs.Ghw_snapshot, exact) ---- *)

let test_ghw_atomic_half () =
  feq "atomic snapshot = 1/2" 0.5 (Model.Ghw_snapshot_game.atomic_bad_probability ())

let test_ghw_afek_equals_atomic () =
  (* the single-update snapshot weakener cannot be weakened through the
     Afek implementation: the deciding pair of equal collects is fixed
     before any post-coin step can influence it *)
  List.iter
    (fun k ->
      feq
        (Fmt.str "afek^%d = 1/2" k)
        0.5
        (Model.Ghw_snapshot_game.afek_bad_probability ~k ()))
    [ 1; 2; 3 ]

let test_ghw_playout_invariants () =
  let rng = Util.Rng.of_int 99 in
  for _ = 1 to 200 do
    let rec play s steps =
      if steps > 5000 then Alcotest.fail "ghw playout did not terminate";
      match Model.Ghw_snapshot_game.Game.moves s with
      | [] ->
          let v = Model.Ghw_snapshot_game.Game.terminal_value s in
          Alcotest.(check bool) "payoff 0/1" true (v = 0.0 || v = 1.0)
      | ms -> (
          match Model.Ghw_snapshot_game.Game.apply s (Util.Rng.pick rng ms) with
          | Model.Ghw_snapshot_game.Game.Det s' -> play s' (steps + 1)
          | Model.Ghw_snapshot_game.Game.Chance dist ->
              play (snd (Util.Rng.pick rng dist)) (steps + 1))
    in
    play (Model.Ghw_snapshot_game.init ~k:2) 0
  done

let ghw_tests =
  [
    Alcotest.test_case "GHW game: atomic snapshot = 1/2" `Quick test_ghw_atomic_half;
    Alcotest.test_case "GHW game: Afek = atomic for all k" `Quick
      test_ghw_afek_equals_atomic;
    Alcotest.test_case "GHW game: playout invariants" `Quick test_ghw_playout_invariants;
  ]

(* ---- multi-update snapshot weakener (borrowed views reachable) ---- *)

let test_multi_ghw_values () =
  feq "multi-update atomic = 1/2" 0.5 (Model.Ghw_multi_game.atomic_bad_probability ());
  List.iter
    (fun k ->
      feq
        (Fmt.str "multi-update afek^%d = 1/2" k)
        0.5
        (Model.Ghw_multi_game.afek_bad_probability ~k ()))
    [ 1; 2 ]

(* The borrow path really fires: a handcrafted schedule makes p2 observe p0
   move twice within one scan body and finish by borrowing. *)
let test_multi_ghw_borrow_reachable () =
  let open Model.Ghw_multi_game in
  let det = function Game.Det s -> s | Game.Chance l -> snd (List.hd l) in
  let step p s =
    let m =
      List.find
        (fun m -> Fmt.str "%a" Game.pp_move m = Fmt.str "step(p%d)" p)
        (Game.moves s)
    in
    Game.apply s m
  in
  let dstep p s = det (step p s) in
  let rec n_times f n s = if n = 0 then s else n_times f (n - 1) (f s) in
  let s = init ~k:1 in
  let s = s |> dstep 2 |> dstep 2 |> dstep 2 in
  let s = n_times (dstep 0) 6 s in
  let s = dstep 0 s in
  let s = s |> dstep 2 |> dstep 2 |> dstep 2 in
  let s = n_times (dstep 0) 6 s in
  let s = dstep 0 s in
  let s = s |> dstep 2 |> dstep 2 in
  match step 2 s with
  | Game.Chance _ -> () (* the body finished at collect 3: borrow fired *)
  | Game.Det _ -> Alcotest.fail "borrow did not fire on the crafted schedule"

let multi_ghw_tests =
  [
    Alcotest.test_case "multi-update GHW game: all values 1/2" `Quick
      test_multi_ghw_values;
    Alcotest.test_case "multi-update GHW game: borrow reachable" `Quick
      test_multi_ghw_borrow_reachable;
  ]

(* ---- the VA weakener game: shared memory blocks the attack ---- *)

let test_va_weakener_atomic_value () =
  (* plain VA already achieves the atomic 1/2 on the weakener: unlike ABD,
     its collect reads are instantaneous — there is no in-transit state to
     freeze pre-coin and deliver post-coin, so the adversary cannot
     condition the linearization order on the coin *)
  List.iter
    (fun k ->
      feq (Fmt.str "VA^%d = 1/2" k) 0.5 (Model.Weakener_va.bad_probability ~k ()))
    [ 1; 2; 3 ]

(* Scripted playout validating the model's VA semantics: once W1's write
   landed (pre-coin) and W0 runs after it, W0 adopts timestamp (2,0) and
   its value 0 dominates every later read. With the coin forced to 1, p2's
   first read returning 0 makes the bad outcome impossible — the model
   must prune to a terminal losing state. *)
let test_va_model_semantics () =
  let open Model.Weakener_va in
  let take_branch i = function
    | Game.Det s -> s
    | Game.Chance l -> snd (List.nth l i)
  in
  let step ?(branch = 0) p s =
    let m =
      List.find
        (fun m -> Fmt.str "%a" Game.pp_move m = Fmt.str "step(p%d)" p)
        (Game.moves s)
    in
    take_branch branch (Game.apply s m)
  in
  let rec n_times f n s = if n = 0 then s else n_times f (n - 1) (f s) in
  let s = init ~k:1 in
  (* W1 runs to completion: start + 3 collect reads + choose + write *)
  let s = n_times (step 1) 6 s in
  (* coin := 1 (second chance branch), then the C write *)
  let s = step ~branch:1 1 s in
  let s = step 1 s in
  (* W0 runs fully after W1: its collect sees (1,(1,1)) -> ts (2,0) *)
  let s = n_times (step 0) 6 s in
  (* p2's first read: start + 3 reads + choose => returns 0 via (0,(2,0)) *)
  let s = n_times (step 2) 5 s in
  (* u1 = 0 <> coin = 1: bad is impossible, the game is over and lost *)
  Alcotest.(check bool) "pruned terminal" true (Game.moves s = []);
  feq "losing terminal" 0.0 (Game.terminal_value s);
  feq "value check" 0.5 (bad_probability ~k:1 ())

let va_tests =
  [
    Alcotest.test_case "VA weakener: atomic value for all k" `Quick
      test_va_weakener_atomic_value;
    Alcotest.test_case "VA model semantics playout" `Quick test_va_model_semantics;
  ]
