(* Tests for the history substrate: actions, well-formedness, projections,
   sequential specifications, outcomes. *)

open Util
open History

let call ?(obj = "R") ?(proc = 0) ?(tag = "t") inv meth arg =
  Action.Call { obj_name = obj; meth; arg; inv; proc; tag }

let ret ?(obj = "R") ?(proc = 0) inv value =
  Action.Ret { inv; value; proc; obj_name = obj }

let test_well_formed_accepts () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 0 Value.unit ~proc:0;
      ret 1 (Value.int 1) ~proc:1;
    ]
  in
  Alcotest.(check bool) "ok" true (Hist.well_formed h)

let test_well_formed_rejects_double_call () =
  let h = [ call 0 "read" Value.unit ~proc:0; ret 0 (Value.int 0) ~proc:0; call 0 "read" Value.unit ~proc:1 ] in
  Alcotest.(check bool) "duplicate inv" false (Hist.well_formed h)

let test_well_formed_rejects_orphan_ret () =
  Alcotest.(check bool) "orphan ret" false (Hist.well_formed [ ret 5 Value.unit ])

let test_well_formed_rejects_overlap_same_proc () =
  (* a process cannot have two pending invocations *)
  let h = [ call 0 "read" Value.unit ~proc:0; call 1 "read" Value.unit ~proc:0 ] in
  Alcotest.(check bool) "per-process sequential" false (Hist.well_formed h)

let test_well_formed_rejects_ret_wrong_proc () =
  let h = [ call 0 "read" Value.unit ~proc:0; ret 0 (Value.int 0) ~proc:1 ] in
  Alcotest.(check bool) "ret by other process" false (Hist.well_formed h)

let test_ops_extraction () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
    ]
  in
  let ops = Hist.ops h in
  Alcotest.(check int) "two ops" 2 (List.length ops);
  let pending = Hist.pending h in
  Alcotest.(check int) "one pending" 1 (List.length pending);
  Alcotest.(check int) "pending is the write" 0 (List.hd pending).call.inv

let test_complete_removes_pending () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
    ]
  in
  let c = Hist.complete h in
  Alcotest.(check int) "call removed" 2 (List.length c);
  Alcotest.(check bool) "still well-formed" true (Hist.well_formed c);
  Alcotest.(check int) "no pending" 0 (List.length (Hist.pending c))

let test_projections () =
  let h =
    [
      call 0 "write" (Value.int 1) ~obj:"R" ~proc:0;
      call 1 "read" Value.unit ~obj:"C" ~proc:1;
      ret 0 Value.unit ~obj:"R" ~proc:0;
      ret 1 (Value.int 0) ~obj:"C" ~proc:1;
    ]
  in
  Alcotest.(check int) "R actions" 2 (List.length (Hist.project_obj h "R"));
  Alcotest.(check int) "C actions" 2 (List.length (Hist.project_obj h "C"));
  Alcotest.(check int) "p0 actions" 2 (List.length (Hist.project_proc h 0));
  Alcotest.(check bool) "projection well-formed" true
    (Hist.well_formed (Hist.project_obj h "R"))

let test_is_sequential () =
  let seq =
    [ call 0 "read" Value.unit; ret 0 (Value.int 0); call 1 "read" Value.unit ~proc:1; ret 1 (Value.int 0) ~proc:1 ]
  in
  Alcotest.(check bool) "sequential" true (Hist.is_sequential seq);
  let conc = [ call 0 "read" Value.unit ~proc:0; call 1 "read" Value.unit ~proc:1 ] in
  Alcotest.(check bool) "concurrent" false (Hist.is_sequential conc)

let test_precedes () =
  let h =
    [
      call 0 "write" (Value.int 1) ~proc:0;
      ret 0 Value.unit ~proc:0;
      call 1 "read" Value.unit ~proc:1;
      ret 1 (Value.int 1) ~proc:1;
    ]
  in
  match Hist.ops h with
  | [ w; r ] ->
      Alcotest.(check bool) "w < r" true (Hist.precedes h w r);
      Alcotest.(check bool) "not r < w" false (Hist.precedes h r w)
  | _ -> Alcotest.fail "expected two ops"

(* ---- sequential specifications ---- *)

let test_spec_run_register () =
  let spec = Spec.register ~init:(Value.int 0) in
  match Spec.run spec [ ("write", Value.int 5); ("read", Value.unit) ] with
  | Some (state, [ r1; r2 ]) ->
      Alcotest.(check bool) "final state" true (Value.equal state (Value.int 5));
      Alcotest.(check bool) "write ret" true (Value.equal r1 Value.unit);
      Alcotest.(check bool) "read ret" true (Value.equal r2 (Value.int 5))
  | _ -> Alcotest.fail "run failed"

let test_spec_run_illegal () =
  let spec = Spec.register ~init:(Value.int 0) in
  Alcotest.(check bool) "unknown method" true
    (Spec.run spec [ ("bump", Value.unit) ] = None)

let test_spec_counter () =
  match
    Spec.run Spec.counter
      [ ("inc", Value.unit); ("inc", Value.unit); ("read", Value.unit) ]
  with
  | Some (_, rets) ->
      Alcotest.(check bool) "reads 2" true
        (Value.equal (List.nth rets 2) (Value.int 2))
  | None -> Alcotest.fail "counter run failed"

let test_spec_max_register () =
  match
    Spec.run Spec.max_register
      [ ("write", Value.int 5); ("write", Value.int 3); ("read", Value.unit) ]
  with
  | Some (_, rets) ->
      Alcotest.(check bool) "max wins" true
        (Value.equal (List.nth rets 2) (Value.int 5))
  | None -> Alcotest.fail "max run failed"

let test_spec_snapshot_bad_index () =
  let spec = Spec.snapshot ~n:2 ~init:(Value.int 0) in
  Alcotest.(check bool) "component out of range" true
    (Spec.run spec [ ("update", Value.pair (Value.int 7) (Value.int 1)) ] = None)

(* ---- outcomes ---- *)

let test_outcome_occurrences () =
  let h =
    [
      call 0 "read" Value.unit ~tag:"loop" ~proc:0;
      ret 0 (Value.int 1) ~proc:0;
      call 1 "read" Value.unit ~tag:"loop" ~proc:0;
      ret 1 (Value.int 2) ~proc:0;
    ]
  in
  let o = Outcome.of_history h in
  Alcotest.(check (option int)) "first occurrence" (Some 1)
    (Option.map Value.to_int (Outcome.find o ~tag:"loop" ~occurrence:0));
  Alcotest.(check (option int)) "second occurrence" (Some 2)
    (Option.map Value.to_int (Outcome.find o ~tag:"loop" ~occurrence:1));
  Alcotest.(check (option int)) "no third" None
    (Option.map Value.to_int (Outcome.find o ~tag:"loop" ~occurrence:2))

let test_outcome_skips_pending () =
  let h = [ call 0 "read" Value.unit ~tag:"r" ] in
  let o = Outcome.of_history h in
  Alcotest.(check bool) "pending has no outcome" true (Outcome.find1 o "r" = None)

(* ---- properties ---- *)

(* Any spec-generated sequential history is linearizable w.r.t. the spec. *)
let prop_sequential_histories_linearizable =
  QCheck.Test.make ~count:100 ~name:"spec-generated sequential histories linearizable"
    QCheck.(small_list (pair bool (int_bound 5)))
    (fun script ->
      let spec = Spec.register ~init:(Value.int 0) in
      let _, h =
        List.fold_left
          (fun (i, acc) (is_read, v) ->
            let meth = if is_read then "read" else "write" in
            let arg = if is_read then Value.unit else Value.int v in
            (* compute the legal return by replaying the prefix *)
            let prior =
              List.filter_map
                (function
                  | Action.Call c -> Some (c.meth, c.arg)
                  | Action.Ret _ -> None)
                acc
            in
            let ret_v =
              match Spec.run spec (List.rev ((meth, arg) :: prior)) with
              | Some (_, rets) -> List.nth rets (List.length rets - 1)
              | None -> Value.unit
            in
            (i + 1, ret i ret_v :: call i meth arg :: acc))
          (0, []) script
      in
      let h = List.rev h in
      Hist.well_formed h && Lin.Check.check spec h)

(* Removing a pending invocation preserves linearizability. *)
let prop_dropping_pending_preserves_lin =
  QCheck.Test.make ~count:60 ~name:"dropping pending preserves linearizability"
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* random ABD run truncated mid-flight produces pending ops *)
      let open Sim in
      let obj = Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0) in
      let open Sim.Proc.Syntax in
      let program ~self =
        let* _ =
          Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int self)
        in
        let* _ = Obj_impl.call obj ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
        Proc.return ()
      in
      let config =
        { Runtime.n = 3; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
      in
      let rng = Rng.of_int (seed + 1) in
      let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
      let budget = 20 + Rng.int rng 60 in
      (try
         for _ = 1 to budget do
           match Runtime.enabled t with
           | [] -> raise Exit
           | evs -> Runtime.step t (Rng.pick rng evs)
         done
       with Exit -> ());
      let h = Runtime.history t in
      let spec = Spec.register ~init:(Value.int 0) in
      (* truncated ABD histories are linearizable, and so is the completed
         projection *)
      Lin.Check.check spec h && Lin.Check.check spec (Hist.complete h))

let tests =
  [
    Alcotest.test_case "well-formed accepts" `Quick test_well_formed_accepts;
    Alcotest.test_case "well-formed rejects duplicate inv" `Quick
      test_well_formed_rejects_double_call;
    Alcotest.test_case "well-formed rejects orphan ret" `Quick
      test_well_formed_rejects_orphan_ret;
    Alcotest.test_case "well-formed rejects overlapping ops per process" `Quick
      test_well_formed_rejects_overlap_same_proc;
    Alcotest.test_case "well-formed rejects foreign ret" `Quick
      test_well_formed_rejects_ret_wrong_proc;
    Alcotest.test_case "ops extraction" `Quick test_ops_extraction;
    Alcotest.test_case "complete removes pending" `Quick test_complete_removes_pending;
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "is_sequential" `Quick test_is_sequential;
    Alcotest.test_case "precedes" `Quick test_precedes;
    Alcotest.test_case "spec: register run" `Quick test_spec_run_register;
    Alcotest.test_case "spec: illegal method" `Quick test_spec_run_illegal;
    Alcotest.test_case "spec: counter" `Quick test_spec_counter;
    Alcotest.test_case "spec: max register" `Quick test_spec_max_register;
    Alcotest.test_case "spec: snapshot bad index" `Quick test_spec_snapshot_bad_index;
    Alcotest.test_case "outcome occurrences" `Quick test_outcome_occurrences;
    Alcotest.test_case "outcome skips pending" `Quick test_outcome_skips_pending;
    QCheck_alcotest.to_alcotest prop_sequential_histories_linearizable;
    QCheck_alcotest.to_alcotest prop_dropping_pending_preserves_lin;
  ]
