(* Tests for the util substrate: values, RNG, statistics, tables. *)

open Util

let value = Alcotest.testable Value.pp Value.equal

let test_value_compare_total () =
  let vs =
    [
      Value.unit;
      Value.bool true;
      Value.int 3;
      Value.str "x";
      Value.pair (Value.int 1) (Value.int 2);
      Value.list [ Value.int 1 ];
      Value.none;
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2);
          Alcotest.(check bool) "equal iff compare 0" (Value.equal a b) (c1 = 0))
        vs)
    vs

let test_value_triple () =
  let t = Value.triple (Value.int 1) (Value.int 2) (Value.int 3) in
  let a, b, c = Value.to_triple t in
  Alcotest.check value "fst" (Value.int 1) a;
  Alcotest.check value "snd" (Value.int 2) b;
  Alcotest.check value "trd" (Value.int 3) c

let test_value_type_errors () =
  Alcotest.check_raises "to_int of bool"
    (Value.Type_error ("int", Value.bool true))
    (fun () -> ignore (Value.to_int (Value.bool true)))

let test_ts_order () =
  Alcotest.(check bool) "int part dominates" true (Value.ts_compare (Value.ts 1 5) (Value.ts 2 0) < 0);
  Alcotest.(check bool) "pid breaks ties" true (Value.ts_compare (Value.ts 1 0) (Value.ts 1 1) < 0);
  Alcotest.(check int) "reflexive" 0 (Value.ts_compare (Value.ts 3 2) (Value.ts 3 2))

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  let da = List.init 50 (fun _ -> Rng.int a 1000) in
  let db = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" da db

let test_rng_split_independent () =
  let a = Rng.of_int 42 in
  let c = Rng.split a in
  let da = List.init 20 (fun _ -> Rng.int a 1000) in
  let dc = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "streams differ" true (da <> dc)

let prop_rng_bounds =
  QCheck.Test.make ~count:200 ~name:"Rng.int respects bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng n in
      0 <= v && v < n)

let prop_shuffle_permutation =
  QCheck.Test.make ~count:100 ~name:"Rng.shuffle is a permutation"
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Rng.of_int seed in
      List.sort compare (Rng.shuffle rng xs) = List.sort compare xs)

let test_stats_mean_var () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "variance" 1.0 (Stats.variance [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [])

let test_wilson_interval () =
  let lo, hi = Stats.binomial_ci ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "nontrivial" true (hi -. lo < 0.25);
  let lo0, hi0 = Stats.binomial_ci ~successes:0 ~trials:100 in
  Alcotest.(check (float 1e-9)) "zero successes lo" 0.0 lo0;
  Alcotest.(check bool) "zero successes hi small" true (hi0 < 0.05)

let test_table_render () =
  let t = Table.create [ "k"; "value" ] in
  Table.add_row t [ "1"; "1.0" ];
  Table.add_row t [ "2"; "0.625" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "rows present" true
    (String.split_on_char '\n' s |> List.length = 4)

let prop_value_hash_consistent =
  QCheck.Test.make ~count:200 ~name:"Value.hash consistent with equal"
    QCheck.(pair (int_bound 100) (int_bound 100))
    (fun (a, b) ->
      let va = Value.pair (Value.int a) (Value.int (a * 2)) in
      let vb = Value.pair (Value.int b) (Value.int (b * 2)) in
      (not (Value.equal va vb)) || Value.hash va = Value.hash vb)

let tests =
  [
    Alcotest.test_case "value compare is a total order" `Quick test_value_compare_total;
    Alcotest.test_case "value triple roundtrip" `Quick test_value_triple;
    Alcotest.test_case "value type errors" `Quick test_value_type_errors;
    Alcotest.test_case "timestamp ordering" `Quick test_ts_order;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "stats mean/variance" `Quick test_stats_mean_var;
    Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    QCheck_alcotest.to_alcotest prop_rng_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_value_hash_consistent;
  ]
