(* The in-place solving contract: [encode_into] must agree with [encode]
   byte-for-byte under buffer reuse for every game (the memo table probes
   on the reused buffer slice), and the packed presentation of the
   weakener-over-VA game must agree with its pure specification move by
   move — same enabled moves, same branch counts and bitwise-equal
   probabilities, byte-identical encodings along every walk, and a trail
   journal whose rewind restores the working state cell-for-cell. When
   all of that holds, the two solvers' values and work counters are
   bit-identical, which the last test checks end to end. *)

let exact = Alcotest.(check (float 0.0))

(* ---- encode_into agrees with encode, on one reused buffer ----------- *)

(* BFS the reachable states (capped) writing every key through a single
   shared buffer — the solver's usage pattern. Each key must match the
   fresh-buffer [encode] string exactly; a stale-cursor or short-reset
   bug would surface as a prefix/suffix mismatch after the first state
   whose key is shorter than its predecessor's. Injectivity then follows
   from the pure-encode battery in [Test_par.test_encode_canonical]. *)
let check_encode_into (type s) (module G : Mdp.Solver.GAME with type state = s)
    ~(init : s) ~cap name =
  let buf = Mdp.Key.create ~size:8 () in
  let seen : (s, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Queue.add init queue;
  while (not (Queue.is_empty queue)) && Hashtbl.length seen < cap do
    let s = Queue.pop queue in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      Mdp.Key.reset buf;
      G.encode_into s buf;
      let reused = Mdp.Key.contents buf in
      if not (String.equal reused (G.encode s)) then
        Alcotest.failf "%s: encode_into under buffer reuse diverged from encode"
          name;
      List.iter
        (fun m ->
          match G.apply s m with
          | G.Det s' -> Queue.add s' queue
          | G.Chance dist -> List.iter (fun (_, s') -> Queue.add s' queue) dist)
        (G.moves s)
    end
  done;
  Alcotest.(check bool)
    (Fmt.str "%s: visited a real state set" name)
    true
    (Hashtbl.length seen > 10)

let test_encode_into_roundtrip () =
  check_encode_into
    (module Model.Weakener_atomic.Game)
    ~init:Model.Weakener_atomic.init ~cap:10_000 "weakener_atomic";
  check_encode_into
    (module Model.Weakener_abd.Game)
    ~init:(Model.Weakener_abd.init ~k:1 ())
    ~cap:4_000 "weakener_abd";
  check_encode_into
    (module Model.Weakener_va.Game)
    ~init:(Model.Weakener_va.init ~k:1)
    ~cap:4_000 "weakener_va";
  check_encode_into
    (module Model.Ghw_snapshot_game.Game)
    ~init:(Model.Ghw_snapshot_game.init ~k:1)
    ~cap:4_000 "ghw_snapshot";
  check_encode_into
    (module Model.Ghw_multi_game.Game)
    ~init:(Model.Ghw_multi_game.init ~k:1)
    ~cap:4_000 "ghw_multi"

(* ---- packed VA vs pure VA, move by move ----------------------------- *)

module Pure = Model.Weakener_va.Game
module Packed = Model.Weakener_va_packed.Game

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* index of the r-th set bit, ascending — the order Make_inplace folds *)
let nth_set_bit mask r =
  let rec go m i r =
    if m land 1 = 1 then if r = 0 then i else go (m lsr 1) (i + 1) (r - 1)
    else go (m lsr 1) (i + 1) r
  in
  go mask 0 r

let packed_key qs = Mdp.Key.run (Packed.encode_into qs)

(* One seeded random walk driving both presentations in lockstep. At
   every step: agreeing encodings, agreeing move sets (the pure list is
   ascending by process id, the packed mask is folded ascending — the
   numbering GAME_INPLACE requires), agreeing branch counts with
   bitwise-equal probabilities; and before committing each step, the
   packed side applies / rewinds once and must land back exactly on the
   pre-step cells (compared against an independent deep copy, so the
   journal itself is what's under test). *)
let lockstep_walk ~k ~rng ~max_steps =
  let ps = ref (Model.Weakener_va.init ~k) in
  let qs = Model.Weakener_va_packed.init ~k in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps do
    incr steps;
    Alcotest.(check string)
      (Fmt.str "k=%d step %d: encodings agree" k !steps)
      (Pure.encode !ps) (packed_key qs);
    let pure_moves = Pure.moves !ps in
    let mask = Packed.moves qs in
    Alcotest.(check int)
      (Fmt.str "k=%d step %d: same move count" k !steps)
      (List.length pure_moves) (popcount mask);
    if mask = 0 then begin
      exact
        (Fmt.str "k=%d step %d: terminal values agree" k !steps)
        (Pure.terminal_value !ps)
        (Packed.terminal_value qs);
      continue := false
    end
    else begin
      let r = Util.Rng.int rng (List.length pure_moves) in
      let mid = nth_set_bit mask r in
      let pure_children =
        match Pure.apply !ps (List.nth pure_moves r) with
        | Pure.Det s' ->
            Alcotest.(check int)
              (Fmt.str "k=%d step %d: deterministic on both sides" k !steps)
              0 (Packed.branches qs mid);
            [| s' |]
        | Pure.Chance dist ->
            Alcotest.(check int)
              (Fmt.str "k=%d step %d: same branch count" k !steps)
              (List.length dist) (Packed.branches qs mid);
            List.iteri
              (fun j (p, _) ->
                exact
                  (Fmt.str "k=%d step %d: branch %d probability bitwise" k
                     !steps j)
                  p
                  (Packed.prob qs mid j))
              dist;
            Array.of_list (List.map snd dist)
      in
      let j = Util.Rng.int rng (Array.length pure_children) in
      (* apply, compare the child, rewind, compare the parent *)
      let snap = Model.Weakener_va_packed.copy qs in
      let parent_key = packed_key qs in
      let u = Packed.checkpoint qs in
      Packed.apply qs ~move:mid ~branch:j;
      Alcotest.(check string)
        (Fmt.str "k=%d step %d: child encodings agree" k !steps)
        (Pure.encode pure_children.(j))
        (packed_key qs);
      Packed.restore qs u;
      if not (Model.Weakener_va_packed.equal snap qs) then
        Alcotest.failf "k=%d step %d: rewind did not restore every cell" k
          !steps;
      Alcotest.(check string)
        (Fmt.str "k=%d step %d: rewound encoding is the parent's" k !steps)
        parent_key (packed_key qs);
      (* commit the step for real and walk on *)
      Packed.apply qs ~move:mid ~branch:j;
      ps := pure_children.(j)
    end
  done

let test_lockstep_random_walks () =
  List.iter
    (fun k ->
      let rng = Util.Rng.stream ~seed:20260 ~index:k in
      for _walk = 1 to 40 do
        lockstep_walk ~k ~rng ~max_steps:200
      done)
    [ 1; 2; 3 ]

(* Nested LIFO rewinds across several plies: checkpoints taken down a
   branch restore in reverse order, each landing exactly on its own
   snapshot — the discipline the DFS imposes on the journal. *)
let test_nested_undo () =
  let rng = Util.Rng.stream ~seed:7 ~index:0 in
  for _round = 1 to 50 do
    let qs = Model.Weakener_va_packed.init ~k:2 in
    (* walk a random prefix to a non-trivial interior state *)
    let depth = ref 0 in
    while !depth < 15 && Packed.moves qs <> 0 do
      incr depth;
      let mask = Packed.moves qs in
      let mid = nth_set_bit mask (Util.Rng.int rng (popcount mask)) in
      let n = Packed.branches qs mid in
      Packed.apply qs ~move:mid ~branch:(if n = 0 then 0 else Util.Rng.int rng n)
    done;
    (* then nest d checkpoints and unwind them all *)
    let stack = ref [] in
    let d = ref 0 in
    while !d < 8 && Packed.moves qs <> 0 do
      incr d;
      stack := (Packed.checkpoint qs, Model.Weakener_va_packed.copy qs) :: !stack;
      let mask = Packed.moves qs in
      let mid = nth_set_bit mask (Util.Rng.int rng (popcount mask)) in
      let n = Packed.branches qs mid in
      Packed.apply qs ~move:mid ~branch:(if n = 0 then 0 else Util.Rng.int rng n)
    done;
    List.iter
      (fun (u, snap) ->
        Packed.restore qs u;
        if not (Model.Weakener_va_packed.equal snap qs) then
          Alcotest.fail "nested rewind missed a cell")
      !stack
  done

(* ---- end to end: bit-identical values, stats, and a clean rewind ---- *)

module Pure_solver = Mdp.Solver.Make (Model.Weakener_va.Game)
module Inplace_solver = Mdp.Solver.Make_inplace (Model.Weakener_va_packed.Game)

let test_solver_bit_identical () =
  List.iter
    (fun k ->
      Pure_solver.reset ();
      let v_pure = Pure_solver.value (Model.Weakener_va.init ~k) in
      let st_pure = Pure_solver.stats () in
      Inplace_solver.reset ();
      let qs = Model.Weakener_va_packed.init ~k in
      let snap = Model.Weakener_va_packed.copy qs in
      let v_ip = Inplace_solver.value qs in
      let st_ip = Inplace_solver.stats () in
      exact (Fmt.str "k=%d: values bit-identical" k) v_pure v_ip;
      Alcotest.(check int)
        (Fmt.str "k=%d: same distinct states" k)
        st_pure.states st_ip.states;
      Alcotest.(check int)
        (Fmt.str "k=%d: same memo hits" k)
        st_pure.memo_hits st_ip.memo_hits;
      Alcotest.(check int)
        (Fmt.str "k=%d: same memo misses" k)
        st_pure.memo_misses st_ip.memo_misses;
      Alcotest.(check int)
        (Fmt.str "k=%d: same max depth" k)
        st_pure.max_depth st_ip.max_depth;
      (* the solve mutated the working state throughout and must hand it
         back journal-exactly *)
      if not (Model.Weakener_va_packed.equal snap qs) then
        Alcotest.failf "k=%d: solve did not rewind the working state" k)
    [ 1; 2; 3 ]

(* the public entry point routes sequential solves through the packed
   presentation — same value and same stats surface as the pure engine *)
let test_dispatch_agrees () =
  Model.Weakener_va.reset ();
  let v_seq = Model.Weakener_va.bad_probability ~k:2 () in
  let states_seq = Model.Weakener_va.explored_states () in
  Pure_solver.reset ();
  let v_pure = Pure_solver.value (Model.Weakener_va.init ~k:2) in
  exact "dispatched sequential value" v_pure v_seq;
  Alcotest.(check int)
    "dispatched state count" (Pure_solver.stats ()).states states_seq

let tests =
  [
    Alcotest.test_case "encode_into = encode under buffer reuse" `Quick
      test_encode_into_roundtrip;
    Alcotest.test_case "packed VA tracks pure VA move by move" `Quick
      test_lockstep_random_walks;
    Alcotest.test_case "nested checkpoint/restore is exact" `Quick
      test_nested_undo;
    Alcotest.test_case "in-place solve bit-identical to pure" `Slow
      test_solver_bit_identical;
    Alcotest.test_case "sequential dispatch routes in-place" `Quick
      test_dispatch_agrees;
  ]
