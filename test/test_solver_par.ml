(* The work-stealing solver's soundness battery: the Chase–Lev deque and
   the sharded claim table uphold their exactly-once contracts under
   concurrency, value_par is bit-identical to the sequential solve at
   every job count with and without pruning, pruning only ever shrinks
   the explored set while preserving values, and the parallel telemetry
   is fresh (never describes work an intervening solve overwrote). *)

let exact = Alcotest.(check (float 0.0))

(* ---- Par.Deque ------------------------------------------------------- *)

let test_deque_orders () =
  let q = Par.Deque.create () in
  Alcotest.(check bool) "fresh deque empty" true (Par.Deque.is_empty q);
  Alcotest.(check (option int)) "pop on empty" None (Par.Deque.pop q);
  for i = 1 to 10 do
    Par.Deque.push q i
  done;
  Alcotest.(check int) "length" 10 (Par.Deque.length q);
  (* owner end is LIFO: freshly pushed (hot) work first *)
  for i = 10 downto 1 do
    Alcotest.(check (option int)) "pop is LIFO" (Some i) (Par.Deque.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Par.Deque.pop q);
  (* thief end is FIFO: the oldest (largest) subtree first *)
  for i = 1 to 10 do
    Par.Deque.push q i
  done;
  for i = 1 to 10 do
    match Par.Deque.steal q with
    | Par.Deque.Stolen x -> Alcotest.(check int) "steal is FIFO" i x
    | _ -> Alcotest.fail "steal on non-empty deque"
  done;
  match Par.Deque.steal q with
  | Par.Deque.Empty -> ()
  | _ -> Alcotest.fail "steal on drained deque"

let test_deque_interleaved () =
  let q = Par.Deque.create () in
  Par.Deque.push q 1;
  Par.Deque.push q 2;
  Alcotest.(check (option int)) "pop newest" (Some 2) (Par.Deque.pop q);
  Par.Deque.push q 3;
  Alcotest.(check (option int)) "pop newest again" (Some 3) (Par.Deque.pop q);
  Alcotest.(check (option int)) "pop oldest" (Some 1) (Par.Deque.pop q);
  Alcotest.(check (option int)) "empty" None (Par.Deque.pop q)

let test_deque_growth () =
  let q = Par.Deque.create ~capacity:4 () in
  let c0 = Par.Deque.capacity q in
  Alcotest.(check bool) "minimum capacity" true (c0 >= 4);
  let n = 1_000 in
  for i = 0 to n - 1 do
    Par.Deque.push q i
  done;
  Alcotest.(check bool)
    "capacity grew to hold the items" true
    (Par.Deque.capacity q >= n);
  Alcotest.(check int) "nothing lost across growth" n (Par.Deque.length q);
  let seen = Array.make n false in
  for _ = 1 to n do
    match Par.Deque.pop q with
    | Some x -> seen.(x) <- true
    | None -> Alcotest.fail "premature empty"
  done;
  Alcotest.(check bool)
    "every pushed item came back" true
    (Array.for_all Fun.id seen)

(* Conservation under concurrent stealing: the owner pushes (and
   sometimes pops) while three thieves steal; afterwards, every pushed
   item must have been returned exactly once across all four ends. *)
let test_deque_steal_stress () =
  let q = Par.Deque.create () in
  let n = 20_000 in
  let finished = Atomic.make false in
  let stealer () =
    let rec go acc =
      match Par.Deque.steal q with
      | Par.Deque.Stolen x -> go (x :: acc)
      | Par.Deque.Contended -> go acc
      | Par.Deque.Empty ->
          if Atomic.get finished then acc
          else begin
            Domain.cpu_relax ();
            go acc
          end
    in
    go []
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn stealer) in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Par.Deque.push q i;
    if i mod 3 = 0 then
      match Par.Deque.pop q with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Par.Deque.pop q with
    | Some x ->
        popped := x :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set finished true;
  let stolen = List.concat_map Domain.join thieves in
  let all = List.sort compare (!popped @ stolen) in
  Alcotest.(check int) "item count conserved" n (List.length all);
  List.iteri
    (fun i x ->
      if i <> x then Alcotest.failf "item %d returned %d times or reordered" i (x - i))
    all

(* ---- Par.Sharded_tbl ------------------------------------------------- *)

let test_tbl_claim_protocol () =
  let t : int Par.Sharded_tbl.t = Par.Sharded_tbl.create () in
  (match Par.Sharded_tbl.find_or_claim t "k" ~owner:0 with
  | `Claimed -> ()
  | _ -> Alcotest.fail "first probe must claim");
  (match Par.Sharded_tbl.find_or_claim t "k" ~owner:0 with
  | `Busy 0 -> ()  (* self re-entry: what the solver maps to Cyclic *)
  | _ -> Alcotest.fail "self re-probe must report own claim");
  (match Par.Sharded_tbl.find_or_claim t "k" ~owner:1 with
  | `Busy 0 -> ()
  | _ -> Alcotest.fail "other owner must see the claimant's id");
  Alcotest.(check (option int)) "claimed is not resolved" None
    (Par.Sharded_tbl.get t "k");
  Alcotest.(check int) "length counts claims" 1 (Par.Sharded_tbl.length t);
  Alcotest.(check int) "resolved excludes claims" 0 (Par.Sharded_tbl.resolved t);
  Par.Sharded_tbl.resolve t "k" 42;
  (match Par.Sharded_tbl.find_or_claim t "k" ~owner:1 with
  | `Value 42 -> ()
  | _ -> Alcotest.fail "post-resolve probe must return the value");
  Alcotest.(check (option int)) "get after resolve" (Some 42)
    (Par.Sharded_tbl.get t "k");
  Alcotest.(check int) "resolved" 1 (Par.Sharded_tbl.resolved t);
  let collected = ref [] in
  Par.Sharded_tbl.iter_resolved t (fun k v -> collected := (k, v) :: !collected);
  Alcotest.(check (list (pair string int)))
    "iter_resolved sees the binding" [ ("k", 42) ] !collected

let test_tbl_double_resolve () =
  let t : int Par.Sharded_tbl.t = Par.Sharded_tbl.create () in
  ignore (Par.Sharded_tbl.find_or_claim t "k" ~owner:0);
  Par.Sharded_tbl.resolve t "k" 1;
  match Par.Sharded_tbl.resolve t "k" 2 with
  | () -> Alcotest.fail "double resolve must raise"
  | exception Invalid_argument _ -> ()

let test_tbl_shard_rounding () =
  Alcotest.(check int) "default shards" 128
    (Par.Sharded_tbl.shard_count (Par.Sharded_tbl.create () : int Par.Sharded_tbl.t));
  Alcotest.(check int) "rounded up to a power of two" 128
    (Par.Sharded_tbl.shard_count
       (Par.Sharded_tbl.create ~shards:100 () : int Par.Sharded_tbl.t));
  Alcotest.(check int) "one shard accepted" 1
    (Par.Sharded_tbl.shard_count
       (Par.Sharded_tbl.create ~shards:1 () : int Par.Sharded_tbl.t))

(* Four domains race find_or_claim over the same key set, each visiting
   the keys in a different order: every key must be claimed by exactly
   one domain, and the claim sets must partition the key space. *)
let test_tbl_concurrent_claims () =
  let t : int Par.Sharded_tbl.t = Par.Sharded_tbl.create () in
  let nkeys = 2_000 in
  let keys = Array.init nkeys (fun i -> "key:" ^ string_of_int i) in
  let claim_worker wid =
    let mine = ref [] in
    for j = 0 to nkeys - 1 do
      (* odd stride, coprime with the even key count: a full permutation,
         different per worker *)
      let i = ((j * ((2 * wid) + 1)) + (wid * 37)) mod nkeys in
      match Par.Sharded_tbl.find_or_claim t keys.(i) ~owner:wid with
      | `Claimed ->
          Par.Sharded_tbl.resolve t keys.(i) wid;
          mine := i :: !mine
      | `Busy _ | `Value _ -> ()
    done;
    !mine
  in
  let others = List.init 3 (fun k -> Domain.spawn (fun () -> claim_worker (k + 1))) in
  let mine = claim_worker 0 in
  let all = mine @ List.concat_map Domain.join others in
  Alcotest.(check int) "every key claimed exactly once" nkeys (List.length all);
  Alcotest.(check int) "claim sets disjoint" nkeys
    (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "every key resolved" nkeys (Par.Sharded_tbl.resolved t)

(* ---- Par.Pool.scatter ------------------------------------------------ *)

let test_scatter_exactly_once () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 64 in
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      Par.Pool.scatter pool ~n (fun i -> Atomic.incr counts.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "index %d ran %d times" i (Atomic.get c))
        counts);
  (* the sequential jobs=1 path *)
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      let hit = ref 0 in
      Par.Pool.scatter pool ~n:5 (fun _ -> incr hit);
      Alcotest.(check int) "jobs=1 runs every index" 5 !hit)

(* ---- determinism battery: value_par = value, prune on/off ------------ *)

(* Fresh solver instances, so this battery cannot interfere with
   test_par.ml's instances over the same games. *)
module Atomic_s = Mdp.Solver.Make (Model.Weakener_atomic.Game)
module Abd_s = Mdp.Solver.Make (Model.Weakener_abd.Game)
module Va_s = Mdp.Solver.Make (Model.Weakener_va.Game)
module Ghw_s = Mdp.Solver.Make (Model.Ghw_snapshot_game.Game)

type 'a harness = {
  value : ?prune:bool -> 'a -> float;
  value_par : ?prune:bool -> jobs:int -> 'a -> float;
  explored : unit -> int;
  pruned : unit -> int;
  last : unit -> Mdp.Solver.par_stats option;
  reset : unit -> unit;
}

let atomic_h =
  {
    value = (fun ?prune s -> Atomic_s.value ?prune s);
    value_par = (fun ?prune ~jobs s -> Atomic_s.value_par ?prune ~jobs s);
    explored = Atomic_s.explored;
    pruned = Atomic_s.pruned_subtrees;
    last = Atomic_s.last_par_stats;
    reset = Atomic_s.reset;
  }

let abd_h =
  {
    value = (fun ?prune s -> Abd_s.value ?prune s);
    value_par = (fun ?prune ~jobs s -> Abd_s.value_par ?prune ~jobs s);
    explored = Abd_s.explored;
    pruned = Abd_s.pruned_subtrees;
    last = Abd_s.last_par_stats;
    reset = Abd_s.reset;
  }

let va_h =
  {
    value = (fun ?prune s -> Va_s.value ?prune s);
    value_par = (fun ?prune ~jobs s -> Va_s.value_par ?prune ~jobs s);
    explored = Va_s.explored;
    pruned = Va_s.pruned_subtrees;
    last = Va_s.last_par_stats;
    reset = Va_s.reset;
  }

let ghw_h =
  {
    value = (fun ?prune s -> Ghw_s.value ?prune s);
    value_par = (fun ?prune ~jobs s -> Ghw_s.value_par ?prune ~jobs s);
    explored = Ghw_s.explored;
    pruned = Ghw_s.pruned_subtrees;
    last = Ghw_s.last_par_stats;
    reset = Ghw_s.reset;
  }

(* For every job count and prune setting: values bit-identical to the
   sequential solve. Unpruned parallel solves additionally evaluate each
   shared-phase state exactly once: summed worker misses equal the
   table's distinct key count bit-exactly, and no key is ever duplicated
   — the shared-memo claim protocol's whole point, and the
   duplicate-share < 5% acceptance bar met at 0. distinct_keys is
   bounded by the sequential explored count (the root-side plan interior
   is evaluated by the caller, outside the shared table). *)
let check_matrix h name init jobs_list =
  h.reset ();
  let seq = h.value init in
  let n_seq = h.explored () in
  List.iter
    (fun jobs ->
      List.iter
        (fun prune ->
          h.reset ();
          let v = h.value_par ~prune ~jobs init in
          exact (Fmt.str "%s: value_par jobs=%d prune=%b" name jobs prune) seq v;
          if (not prune) && jobs > 1 then
            match h.last () with
            | None -> Alcotest.failf "%s: jobs=%d left no telemetry" name jobs
            | Some p ->
                if p.distinct_keys <= 0 || p.distinct_keys > n_seq then
                  Alcotest.failf
                    "%s: jobs=%d distinct keys %d outside (0, %d] (sequential \
                     state count)"
                    name jobs p.distinct_keys n_seq;
                Alcotest.(check int)
                  (Fmt.str "%s: jobs=%d no duplicated keys" name jobs)
                  0 p.duplicated_keys;
                exact
                  (Fmt.str "%s: jobs=%d duplicated work share" name jobs)
                  0.0 p.duplicated_work_pct;
                let summed =
                  List.fold_left
                    (fun acc (d : Mdp.Solver.domain_stats) ->
                      acc + d.stats.memo_misses)
                    0 p.domains
                in
                Alcotest.(check int)
                  (Fmt.str "%s: jobs=%d each distinct key evaluated once" name
                     jobs)
                  p.distinct_keys summed)
        [ false; true ])
    jobs_list;
  (* pruning is sound and monotone sequentially too *)
  h.reset ();
  let v_pruned = h.value ~prune:true init in
  exact (Fmt.str "%s: pruned seq value" name) seq v_pruned;
  let n_pruned = h.explored () in
  Alcotest.(check bool)
    (Fmt.str "%s: pruned explored %d <= unpruned %d" name n_pruned n_seq)
    true (n_pruned <= n_seq);
  h.reset ();
  (n_seq, n_pruned)

let test_matrix_atomic () =
  ignore (check_matrix atomic_h "atomic" Model.Weakener_atomic.init [ 1; 2; 4; 8 ])

let test_matrix_abd () =
  let n_seq, n_pruned =
    check_matrix abd_h "ABD^1" (Model.Weakener_abd.init ~k:1 ()) [ 2; 4; 8 ]
  in
  (* ABD^1's value is 1.0, so max cuts must actually fire: pruning
     strictly reduces the explored set here, not just weakly *)
  Alcotest.(check bool)
    (Fmt.str "ABD^1: pruning strictly reduces exploration (%d < %d)" n_pruned
       n_seq)
    true (n_pruned < n_seq);
  Abd_s.reset ();
  let _ = Abd_s.value ~prune:true (Model.Weakener_abd.init ~k:1 ()) in
  Alcotest.(check bool)
    "ABD^1: cuts were taken" true
    (Abd_s.pruned_subtrees () > 0);
  Abd_s.reset ()

let test_matrix_va () =
  ignore (check_matrix va_h "VA^1" (Model.Weakener_va.init ~k:1) [ 2; 8 ])

let test_matrix_ghw () =
  ignore (check_matrix ghw_h "ghw^1" (Model.Ghw_snapshot_game.init ~k:1) [ 2; 8 ])

(* ---- audit mode ------------------------------------------------------ *)

let test_prune_audit_clean () =
  Atomic_s.reset ();
  Atomic_s.set_prune_audit true;
  let v =
    Fun.protect
      ~finally:(fun () -> Atomic_s.set_prune_audit false)
      (fun () -> Atomic_s.value ~prune:true Model.Weakener_atomic.init)
  in
  exact "audited pruned value" 0.5 v;
  Atomic_s.reset ()

let test_set_bounds_validation () =
  (match Atomic_s.set_bounds ~lo:1.0 ~hi:0.0 with
  | () -> Alcotest.fail "inverted bounds accepted"
  | exception Invalid_argument _ -> ());
  Atomic_s.set_bounds ~lo:0.0 ~hi:1.0;
  let lo, hi = Atomic_s.bounds () in
  exact "lo" 0.0 lo;
  exact "hi" 1.0 hi

(* ---- telemetry freshness (the staleness regression) ------------------ *)

let test_par_stats_freshness () =
  Atomic_s.reset ();
  let _ = Atomic_s.value_par ~jobs:2 Model.Weakener_atomic.init in
  Alcotest.(check bool)
    "value_par leaves telemetry" true
    (Atomic_s.last_par_stats () <> None);
  (* any subsequent root solve overwrites the memo the report described:
     the report must be cleared, not left stale *)
  let _ = Atomic_s.value Model.Weakener_atomic.init in
  Alcotest.(check bool)
    "sequential solve clears stale telemetry" true
    (Atomic_s.last_par_stats () = None);
  let _ = Atomic_s.value_par ~jobs:2 Model.Weakener_atomic.init in
  let _ = Atomic_s.value_par ~jobs:1 Model.Weakener_atomic.init in
  Alcotest.(check bool)
    "jobs=1 value_par (sequential path) clears telemetry too" true
    (Atomic_s.last_par_stats () = None);
  Atomic_s.reset ();
  Alcotest.(check bool)
    "reset clears telemetry" true
    (Atomic_s.last_par_stats () = None)

(* steal/claim counters are schedule-dependent, but their invariants are
   not: non-negative, and claim hits equal the summed domain hits *)
let test_par_stats_counters () =
  Atomic_s.reset ();
  let _ = Atomic_s.value_par ~jobs:4 Model.Weakener_atomic.init in
  (match Atomic_s.last_par_stats () with
  | None -> Alcotest.fail "no telemetry"
  | Some p ->
      Alcotest.(check bool) "steals >= 0" true (p.steals >= 0);
      Alcotest.(check bool) "claim_misses >= 0" true (p.claim_misses >= 0);
      Alcotest.(check int) "no cuts without ~prune" 0 p.pruned_subtrees;
      let summed_hits =
        List.fold_left
          (fun acc (d : Mdp.Solver.domain_stats) -> acc + d.stats.memo_hits)
          0 p.domains
      in
      Alcotest.(check int) "claim_hits = summed domain hits" summed_hits
        p.claim_hits);
  Atomic_s.reset ()

let tests =
  [
    Alcotest.test_case "deque: LIFO pop, FIFO steal" `Quick test_deque_orders;
    Alcotest.test_case "deque: interleaved push/pop" `Quick
      test_deque_interleaved;
    Alcotest.test_case "deque: growth conserves items" `Quick test_deque_growth;
    Alcotest.test_case "deque: concurrent steal conservation" `Quick
      test_deque_steal_stress;
    Alcotest.test_case "sharded_tbl: claim protocol" `Quick
      test_tbl_claim_protocol;
    Alcotest.test_case "sharded_tbl: double resolve raises" `Quick
      test_tbl_double_resolve;
    Alcotest.test_case "sharded_tbl: shard count rounding" `Quick
      test_tbl_shard_rounding;
    Alcotest.test_case "sharded_tbl: concurrent claims partition" `Quick
      test_tbl_concurrent_claims;
    Alcotest.test_case "pool scatter runs each index once" `Quick
      test_scatter_exactly_once;
    Alcotest.test_case "matrix: atomic, jobs 1/2/4/8 x prune" `Quick
      test_matrix_atomic;
    Alcotest.test_case "matrix: ABD^1, jobs 2/4/8 x prune + strict cuts" `Slow
      test_matrix_abd;
    Alcotest.test_case "matrix: VA^1, jobs 2/8 x prune" `Quick test_matrix_va;
    Alcotest.test_case "matrix: ghw^1, jobs 2/8 x prune" `Quick test_matrix_ghw;
    Alcotest.test_case "prune audit mode is clean" `Quick test_prune_audit_clean;
    Alcotest.test_case "set_bounds validates" `Quick test_set_bounds_validation;
    Alcotest.test_case "par telemetry is never stale" `Quick
      test_par_stats_freshness;
    Alcotest.test_case "par telemetry counter invariants" `Quick
      test_par_stats_counters;
  ]
