(* Ben-Or randomized binary consensus on the message-passing substrate —
   the application class that motivates the paper (randomized round-based
   protocols whose termination probability a strong adversary attacks
   through implemented shared objects).

     dune exec examples/consensus_demo.exe
*)

open Util
open Sim

let n = 3
let trials = 20

let run ~seed ~inputs ~crash =
  let config = Programs.Ben_or.config ~n ~f:1 ~inputs ~max_rounds:60 in
  let config =
    if crash = None then { config with Runtime.enable_crashes = false } else config
  in
  let rng = Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  (match crash with
  | Some p ->
      for _ = 1 to 6 do
        match Runtime.enabled t with
        | [] -> ()
        | e :: _ -> Runtime.step t e
      done;
      if Runtime.is_active t p then Runtime.step t (Runtime.Crash p)
  | None -> ());
  let sched _t evs =
    let no_crash = List.filter (function Runtime.Crash _ -> false | _ -> true) evs in
    Rng.pick rng (if no_crash = [] then evs else no_crash)
  in
  match Runtime.run t ~max_steps:2_000_000 sched with
  | Runtime.Completed -> Some t
  | _ -> None

let flips t =
  List.length
    (List.filter
       (fun (k, _, _) -> k = Proc.Program_random)
       (Trace.random_draws (Runtime.trace t)))

let () =
  Fmt.pr "=== Ben-Or randomized consensus (n = %d, f = 1) ============@.@." n;
  Fmt.pr "--- mixed inputs, fair scheduling -----------------------@.";
  let agree = ref 0 in
  for seed = 1 to trials do
    let inputs = [ seed mod 2; (seed / 2) mod 2; 1 - (seed mod 2) ] in
    match run ~seed ~inputs ~crash:None with
    | Some t ->
        let ds = Programs.Ben_or.decisions (Runtime.trace t) ~n in
        let show =
          String.concat ","
            (List.map (function Some v -> string_of_int v | None -> "?") ds)
        in
        if Programs.Ben_or.agreement ds && Programs.Ben_or.validity ~inputs ds then
          incr agree;
        Fmt.pr "trial %2d: inputs %s -> decisions %s (%d coin flips, %d steps)@."
          seed
          (String.concat "," (List.map string_of_int inputs))
          show (flips t)
          (Trace.count_steps (Runtime.trace t))
    | None -> Fmt.pr "trial %2d: did not complete@." seed
  done;
  Fmt.pr "@.agreement + validity: %d/%d trials@.@." !agree trials;

  Fmt.pr "--- one process crashes mid-protocol ---------------------@.";
  (match run ~seed:7 ~inputs:[ 0; 1; 0 ] ~crash:(Some 1) with
  | Some t ->
      let ds = Programs.Ben_or.decisions (Runtime.trace t) ~n in
      List.iteri
        (fun p d ->
          Fmt.pr "p%d: %s@." p
            (match d with
            | Some v -> Fmt.str "decided %d" v
            | None -> if Runtime.is_crashed t p then "crashed" else "undecided"))
        ds;
      Fmt.pr "agreement: %b@." (Programs.Ben_or.agreement ds)
  | None -> Fmt.pr "crash run did not complete@.");
  Fmt.pr
    "@.Section 7's recipe applies to protocols of exactly this shape: with@.\
     s flips per round and a T-round high-probability window, running any@.\
     shared objects the protocol uses as O^k with k > T*s blunts a strong@.\
     adversary for the whole window.@."
