(* The paper's running example end to end: Algorithm 1 (the weakener) with
   atomic registers, plain ABD, and ABD^k.

   - replays the Figure 1 strong adversary against the real simulated ABD
     and shows it forces the bad outcome for both coin results;
   - solves the exact adversary game for atomic and ABD^k registers;
   - contrasts with a fair (random) scheduler via Monte Carlo.

     dune exec examples/weakener_demo.exe
*)

open Sim

let () =
  Fmt.pr "=== The weakener (Algorithm 1) =========================@.";
  Fmt.pr
    "p0: R := 0; p1: R := 1, C := coin; p2: u1 := R, u2 := R, c := C;@.\
     p2 loops forever iff u1 = c and u2 = 1 - c.@.@.";

  (* 1. Figure 1: the crafted strong adversary vs the real ABD simulation *)
  Fmt.pr "--- Figure 1 adversary vs simulated ABD ----------------@.";
  List.iter
    (fun coin ->
      let t = Adversary.Figure1.run ~coin in
      let o = Runtime.outcome t in
      let get tag =
        match History.Outcome.find1 o tag with
        | Some v -> Fmt.str "%a" Util.Value.pp v
        | None -> "?"
      in
      Fmt.pr "coin = %d:  u1 = %s, u2 = %s, c = %s  =>  p2 %s@." coin
        (get Programs.Weakener.tag_u1)
        (get Programs.Weakener.tag_u2)
        (get Programs.Weakener.tag_c)
        (if Programs.Weakener.bad o then "LOOPS FOREVER" else "terminates"))
    [ 0; 1 ];
  Fmt.pr "adversary wins with probability 1 (Appendix A.2).@.@.";

  (* 2. Exact adversary-optimal probabilities (game solving) *)
  Fmt.pr "--- exact adversary-optimal bad probabilities ----------@.";
  Fmt.pr "atomic registers: %.4f  (paper: exactly 1/2)@."
    (Model.Weakener_atomic.bad_probability ());
  List.iter
    (fun k ->
      let v = Model.Weakener_abd.bad_probability ~k () in
      let bound = Core.Bound.weakener_instance ~k in
      Fmt.pr "ABD^%d: %.4f  (Theorem 4.2 upper bound: %.4f)@." k v bound)
    [ 1; 2; 3 ];
  Fmt.pr "@.";

  (* 3. Monte Carlo with a fair scheduler, for contrast *)
  Fmt.pr "--- fair random scheduling (not adversarial) -----------@.";
  let mc name config =
    let r =
      Adversary.Monte_carlo.estimate ~trials:400 ~seed:31
        ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad config
    in
    Fmt.pr "%s: bad = %a@." name Adversary.Monte_carlo.pp r
  in
  mc "atomic " Programs.Weakener.atomic_config;
  mc "ABD    " Programs.Weakener.abd_config;
  mc "ABD^2  " (fun () -> Programs.Weakener.abd_k_config ~k:2);
  Fmt.pr
    "@.A fair scheduler almost never produces the bad outcome; only a@.\
     strong adversary exploits the linearizable implementation.@."
