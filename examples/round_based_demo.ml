(* The Section 7 mitigation for round-based programs: choose k larger than
   the number of random steps in the high-probability window and fall back
   to the plain (cheap) operations afterwards.

   The program is "agreement by luck": every round each of n processes
   flips a coin, publishes it through its ABD register, collects everyone's
   round vote, and decides when all agree (probability 2^(1-n) per round).

     dune exec examples/round_based_demo.exe
*)

open Util
open Sim

let n = 3
let max_rounds = 100

let run ~k ~rounds_before_fallback ~seed =
  let config =
    Programs.Round_based.config ~n ~rounds_before_fallback ~max_rounds ~k
  in
  let rng = Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  match Runtime.run t ~max_steps:10_000_000 (Adversary.Schedulers.uniform rng) with
  | Runtime.Completed ->
      Programs.Round_based.agreed_round_of_trace (Runtime.trace t) ~n ~max_rounds
  | _ -> None

let () =
  (* The paper's recipe: with s = 1 random step per round and a window of
     T rounds, pick k > T * s. *)
  let window = 6 in
  let k = Core.Round_based.recommended_k ~rounds:window ~steps_per_round:1 in
  Fmt.pr "window T = %d rounds, s = 1 flip/round  =>  k = %d@." window k;
  Fmt.pr "probability of termination within T rounds: %.3f@.@."
    (1.0 -. ((1.0 -. (2.0 ** float_of_int (1 - n))) ** float_of_int window));

  let decided = ref 0 and within_window = ref 0 and trials = 30 in
  for seed = 1 to trials do
    match run ~k ~rounds_before_fallback:window ~seed with
    | Some r ->
        incr decided;
        if r < window then incr within_window;
        Fmt.pr "trial %2d: agreed at round %d%s@." seed r
          (if r < window then " (blunted window)" else " (plain fallback)")
    | None -> Fmt.pr "trial %2d: gave up@." seed
  done;
  Fmt.pr "@.%d/%d trials decided; %d within the k-protected window.@." !decided
    trials !within_window;
  Fmt.pr
    "Inside the window every operation pays k = %d query phases; after it,@.\
     the program downgrades to plain ABD operations on the same registers.@."
    k
