(* Quickstart: simulate an ABD register shared by three crash-prone
   processes, run a concurrent workload under a random schedule, print the
   history, and check it linearizable.

     dune exec examples/quickstart.exe
*)

open Util
open Sim
open Sim.Proc.Syntax

let () =
  let n = 3 in
  (* Each process writes its id, reads, writes again, reads again; the
     workload is parameterized by the register implementation. *)
  let mk_config ?(quiet = false) reg =
    let program ~self =
      let call tag meth arg = Obj_impl.call reg ~self ~tag ~meth ~arg in
      let* _ = call "w1" "write" (Value.int self) in
      let* v1 = call "r1" "read" Value.unit in
      if not quiet then Fmt.pr "p%d first read:  %a@." self Value.pp v1;
      let* _ = call "w2" "write" (Value.int (self + 10)) in
      let* v2 = call "r2" "read" Value.unit in
      if not quiet then Fmt.pr "p%d second read: %a@." self Value.pp v2;
      Proc.return ()
    in
    { Runtime.n; objects = [ reg ]; program; enable_crashes = false; max_crashes = 0 }
  in

  (* The shared object: a multi-writer ABD register (Algorithm 3 of the
     paper), replicated at every process with majority quorums. *)
  let config = mk_config (Objects.Abd.make ~name:"R" ~n ~init:Value.none) in

  (* Run to completion under a uniformly random (fair) schedule: at every
     step the scheduler picks among all enabled events — process steps and
     message deliveries. *)
  let rng = Rng.of_int 2024 in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  (match Runtime.run t ~max_steps:100_000 (Adversary.Schedulers.uniform rng) with
  | Runtime.Completed -> ()
  | _ -> failwith "run did not complete");

  Fmt.pr "@.--- history -------------------------------------------@.";
  Fmt.pr "%a@." History.Hist.pp (Runtime.history t);

  let spec = History.Spec.register ~init:Value.none in
  let ok = Lin.Check.check spec (Runtime.history t) in
  Fmt.pr "@.linearizable: %b@." ok;
  Fmt.pr "messages sent: %d, total steps: %d@."
    (Trace.count_messages (Runtime.trace t))
    (Trace.count_steps (Runtime.trace t));

  (* The same workload on the transformed register ABD^3: same interface,
     same linearizability, more query phases. *)
  let config3 =
    mk_config ~quiet:true (Objects.Abd.make_k ~k:3 ~name:"R" ~n ~init:Value.none)
  in
  let t3 = Runtime.create config3 (Runtime.Gen (Rng.split rng)) in
  (match Runtime.run t3 ~max_steps:200_000 (Adversary.Schedulers.uniform rng) with
  | Runtime.Completed -> ()
  | _ -> failwith "ABD^3 run did not complete");
  let client_sends t =
    List.length
      (List.filter
         (function
           | Trace.Sent { msg; _ } ->
               let tag = Message.tag_of msg.body in
               tag = "query" || tag = "update"
           | _ -> false)
         (Trace.entries (Runtime.trace t)))
  in
  Fmt.pr "@.ABD^3: linearizable: %b, client messages: %d (vs %d for ABD —@."
    (Lin.Check.check spec (Runtime.history t3))
    (client_sends t3) (client_sends t);
  Fmt.pr "the k query phases are the price of blunting the adversary)@."
