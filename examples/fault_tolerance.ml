(* Crash fault tolerance of the ABD register (the reason it exists at all):
   with n = 5 replicas and majority quorums, any 2 processes may crash and
   the survivors' operations still complete and stay linearizable; with 3
   crashes, operations block forever.

     dune exec examples/fault_tolerance.exe
*)

open Util
open Sim
open Sim.Proc.Syntax

let n = 5

let make_config () =
  let reg = Objects.Abd.make ~name:"R" ~n ~init:Value.none in
  let program ~self =
    if self >= 3 then begin
      (* processes 3 and 4 are the clients; 0-2 only serve *)
      let call tag meth arg = Obj_impl.call reg ~self ~tag ~meth ~arg in
      let* _ = call "w" "write" (Value.int self) in
      let* v = call "r" "read" Value.unit in
      Fmt.pr "p%d read %a@." self Value.pp v;
      Proc.return ()
    end
    else Proc.return ()
  in
  { Runtime.n; objects = [ reg ]; program; enable_crashes = true; max_crashes = 3 }

let run_with_crashes crashed =
  let t = Runtime.create (make_config ()) (Runtime.Gen (Rng.of_int 99)) in
  List.iter (fun p -> Runtime.step t (Runtime.Crash p)) crashed;
  let rng = Rng.of_int 100 in
  let scheduler _t evs =
    (* never crash anyone else; otherwise fair *)
    let evs' = List.filter (function Runtime.Crash _ -> false | _ -> true) evs in
    Rng.pick rng (if evs' = [] then evs else evs')
  in
  Runtime.run t ~max_steps:100_000 scheduler |> fun result -> (t, result)

let () =
  Fmt.pr "=== ABD with n = 5, majority quorum = 3 ==================@.@.";
  Fmt.pr "--- 2 crashes (minority): operations complete -----------@.";
  let t, result = run_with_crashes [ 0; 1 ] in
  (match result with
  | Runtime.Completed ->
      let spec = History.Spec.register ~init:Value.none in
      Fmt.pr "completed; history linearizable: %b@.@."
        (Lin.Check.check spec (Runtime.history t))
  | _ -> failwith "expected completion despite minority crashes");

  Fmt.pr "--- 3 crashes (majority): clients block forever ----------@.";
  let t, result = run_with_crashes [ 0; 1; 2 ] in
  (match result with
  | Runtime.Step_limit_reached | Runtime.Deadlocked ->
      Fmt.pr "clients still pending after the step budget: p3 active=%b p4 active=%b@."
        (Runtime.is_active t 3) (Runtime.is_active t 4);
      Fmt.pr "no quorum of replicas is alive, as the ABD bound requires.@."
  | Runtime.Completed -> failwith "operations should not complete without a quorum")
