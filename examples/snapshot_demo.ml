(* The Afek et al. wait-free snapshot (Section 5.2) and its transformed
   version Snapshot^k, on a producer/observer workload:

   - three processes publish a stream of values into their components while
     an observer scans;
   - histories are checked against the sequential snapshot specification;
   - the GHW-style randomized program compares plain and transformed
     snapshots under fair scheduling.

     dune exec examples/snapshot_demo.exe
*)

open Util
open Sim
open Sim.Proc.Syntax

let run_workload ~make_snapshot ~seed =
  let n = 3 in
  let snap = make_snapshot () in
  let program ~self =
    let call tag meth arg = Obj_impl.call snap ~self ~tag ~meth ~arg in
    if self < 2 then
      (* producers: publish three increasing values *)
      Proc.iter [ 1; 2; 3 ] (fun v ->
          let* _ =
            call (Fmt.str "u%d" v) "update"
              (Value.pair (Value.int self) (Value.int ((10 * self) + v)))
          in
          Proc.return ())
    else
      (* observer: scan repeatedly *)
      Proc.iter [ 1; 2; 3 ] (fun i ->
          let* s = call (Fmt.str "s%d" i) "scan" Value.unit in
          Fmt.pr "observer scan %d: %a@." i Value.pp s;
          Proc.return ())
  in
  let config =
    { Runtime.n; objects = [ snap ]; program; enable_crashes = false; max_crashes = 0 }
  in
  let rng = Rng.of_int seed in
  let t = Runtime.create config (Runtime.Gen (Rng.split rng)) in
  (match Runtime.run t ~max_steps:200_000 (Adversary.Schedulers.uniform rng) with
  | Runtime.Completed -> ()
  | _ -> failwith "snapshot workload did not complete");
  t

let () =
  Fmt.pr "=== Afek et al. snapshot =================================@.";
  let t =
    run_workload ~seed:7 ~make_snapshot:(fun () ->
        Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0))
  in
  let spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0) in
  Fmt.pr "history linearizable w.r.t. snapshot spec: %b@.@."
    (Lin.Check.check spec (Runtime.history t));

  Fmt.pr "=== Snapshot^2 (preamble-iterated) =======================@.";
  let t2 =
    run_workload ~seed:7 ~make_snapshot:(fun () ->
        Objects.Afek_snapshot.make_k ~k:2 ~name:"S" ~n:3 ~init:(Value.int 0))
  in
  Fmt.pr "history linearizable w.r.t. snapshot spec: %b@."
    (Lin.Check.check spec (Runtime.history t2));
  Fmt.pr "register reads: plain %d vs transformed %d (the cost of blunting)@.@."
    (List.length
       (List.filter
          (function Trace.Reg_read _ -> true | _ -> false)
          (Trace.entries (Runtime.trace t))))
    (List.length
       (List.filter
          (function Trace.Reg_read _ -> true | _ -> false)
          (Trace.entries (Runtime.trace t2))));

  Fmt.pr "=== GHW-style randomized program over the snapshot =======@.";
  let mc name config =
    let r =
      Adversary.Monte_carlo.estimate ~trials:300 ~seed:17
        ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Ghw_snapshot.bad
        config
    in
    Fmt.pr "%s: bad = %a@." name Adversary.Monte_carlo.pp r
  in
  mc "atomic snapshot " Programs.Ghw_snapshot.atomic_config;
  mc "Afek snapshot   " Programs.Ghw_snapshot.afek_config;
  mc "Afek snapshot^2 " (fun () -> Programs.Ghw_snapshot.afek_k_config ~k:2)
