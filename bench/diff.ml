(* Regression diff between two bench results documents.

     dune exec bench/diff.exe -- BENCH_2026-08-06.json bench_smoke.json
     dune exec bench/diff.exe -- --paper-tol 1e-4 baseline.json current.json

   Thin CLI over Obs.Diff: validates both documents (schema v1 and v2 both
   accepted), compares paper-vs-measured agreement in CURRENT and
   CURRENT-vs-BASELINE drift, prints the findings table, and exits 1 on
   hard failures, 2 on unloadable/invalid input. The @smoke alias runs the
   freshly emitted smoke document through this against the committed
   baseline. *)

let () =
  let config = ref Obs.Diff.default_config in
  let paths = ref [] in
  let usage () =
    Fmt.epr
      "usage: diff.exe [--paper-tol F] [--value-rtol F] [--time-rtol F] \
       [--no-spans] [--min-speedup F] [--max-alloc-ratio F] BASELINE.json \
       CURRENT.json@.";
    exit 2
  in
  let float_arg name v rest k =
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> k f rest
    | _ ->
        Fmt.epr "%s: expected a non-negative number, got %s@." name v;
        usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--paper-tol" :: v :: rest ->
        float_arg "--paper-tol" v rest (fun f rest ->
            config := { !config with paper_tol = f };
            parse rest)
    | "--value-rtol" :: v :: rest ->
        float_arg "--value-rtol" v rest (fun f rest ->
            config := { !config with value_rtol = f };
            parse rest)
    | "--time-rtol" :: v :: rest ->
        float_arg "--time-rtol" v rest (fun f rest ->
            config := { !config with time_rtol = f };
            parse rest)
    | "--no-spans" :: rest ->
        config := { !config with compare_spans = false };
        parse rest
    | "--min-speedup" :: v :: rest ->
        float_arg "--min-speedup" v rest (fun f rest ->
            config := { !config with min_speedup = Some f };
            parse rest)
    | "--max-alloc-ratio" :: v :: rest ->
        float_arg "--max-alloc-ratio" v rest (fun f rest ->
            config := { !config with max_alloc_ratio = Some f };
            parse rest)
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        paths := arg :: !paths;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !paths with
  | [ baseline; current ] -> (
      match Obs.Diff.run_files ~config:!config ~baseline ~current Fmt.stdout with
      | Ok rc -> exit rc
      | Error e ->
          Fmt.epr "%s@." e;
          exit 2)
  | _ -> usage ()
